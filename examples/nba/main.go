// NBA newsroom monitor: the paper's motivating scenario (§I, §VII).
//
// A synthetic 13-season box-score stream (same attribute inventory and
// cardinalities as the paper's real NBA dataset) flows through the engine
// under the §VII case-study setting: d=5, m=7, d̂=3, m̂=3. Whenever an
// arrival's best fact clears the prominence threshold τ, the example
// prints a narrated "sports record" — the analogue of the paper's
// Lamar Odom / Allen Iverson / Damon Stoudamire bullets.
//
// Run with:
//
//	go run ./examples/nba [-n 20000] [-tau 400]
package main

import (
	"flag"
	"fmt"
	"log"

	situfact "repro"
	"repro/internal/gen"
	"repro/internal/relation"
)

func main() {
	n := flag.Int("n", 20000, "number of box-score rows to stream")
	tau := flag.Float64("tau", 400, "prominence threshold τ")
	seed := flag.Int64("seed", 2014, "workload seed")
	flag.Parse()

	// The d=5 NBA space of Table V: player, season, month, team, opp_team;
	// the m=7 measure space of Table VI (fouls and turnovers
	// smaller-is-better).
	g, err := gen.NewNBA(gen.NBAConfig{Seed: *seed}, 5, 7)
	if err != nil {
		log.Fatal(err)
	}
	tb := relation.NewTable(g.Schema())
	if err := g.Fill(tb, *n); err != nil {
		log.Fatal(err)
	}

	eng, err := situfact.New(situfact.WrapSchema(g.Schema()), situfact.Options{
		Algorithm:      situfact.AlgoSBottomUp,
		MaxBoundDims:   3, // d̂ = 3: avoid over-specific contexts
		MaxMeasureDims: 3, // m̂ = 3: avoid over-specific measure combinations
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("streaming %d box scores, reporting prominent facts with τ = %g ...\n\n", *n, *tau)
	records := 0
	for i := 0; i < tb.Len(); i++ {
		tu := tb.At(i)
		dims := make([]string, g.Schema().NumDims())
		for j := range dims {
			dims[j] = tb.Dict().Decode(j, tu.Dims[j])
		}
		arr, err := eng.Append(dims, tu.Raw)
		if err != nil {
			log.Fatal(err)
		}
		prom := arr.Prominent(*tau)
		if len(prom) == 0 {
			continue
		}
		records++
		values := map[string]float64{}
		for j := 0; j < g.Schema().NumMeasures(); j++ {
			values[g.Schema().Measure(j).Name] = tu.Raw[j]
		}
		player := dims[0]
		fmt.Printf("[game %6d] %s\n", arr.TupleID, situfact.Narrate(prom[0], player, values))
		if len(prom) > 1 {
			fmt.Printf("             (+%d more facts at the same prominence %.0f)\n",
				len(prom)-1, prom[0].Prominence)
		}
	}

	m := eng.Metrics()
	fmt.Printf("\n%d prominent records over %d games — %.2f per 1K tuples\n",
		records, *n, float64(records)*1000/float64(*n))
	fmt.Printf("engine: %s | %d comparisons | %d lattice constraints traversed | %d stored skyline entries\n",
		eng.Algorithm(), m.Comparisons, m.Traversed, m.StoredTuples)
}
