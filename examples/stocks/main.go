// Stock screener: the paper's intro example 1 — "Stock A becomes the
// first stock in history with price over $300 and market cap over $400
// billion" is a contextual skyline statement over {price, market_cap}.
//
// A synthetic daily quote stream (sector/exchange dimensions; price,
// market cap, volume and dividend-yield measures) runs through a
// file-backed engine — demonstrating the FS* variants of §VI-C, which
// survive tables that outgrow memory — and prints newly set records.
//
// Run with:
//
//	go run ./examples/stocks [-n 8000] [-days 250]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	situfact "repro"
)

type stock struct {
	symbol   string
	sector   string
	exchange string
	price    float64
	shares   float64 // billions
	yield    float64
}

func main() {
	n := flag.Int("n", 8000, "number of quote rows to stream")
	tau := flag.Float64("tau", 150, "prominence threshold τ")
	seed := flag.Int64("seed", 11, "simulation seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	sectors := []string{"Tech", "Energy", "Finance", "Health", "Retail", "Industrials"}
	exchanges := []string{"NYSE", "NASDAQ"}
	stocks := make([]stock, 120)
	for i := range stocks {
		stocks[i] = stock{
			symbol:   fmt.Sprintf("S%03d", i),
			sector:   sectors[rng.Intn(len(sectors))],
			exchange: exchanges[rng.Intn(len(exchanges))],
			price:    20 + 150*rng.Float64(),
			shares:   0.2 + 3*rng.Float64(),
			yield:    3 * rng.Float64(),
		}
	}

	schema, err := situfact.NewSchemaBuilder("quotes").
		Dimension("symbol").
		Dimension("sector").
		Dimension("exchange").
		Dimension("quarter").
		Measure("price", situfact.LargerBetter).
		Measure("market_cap", situfact.LargerBetter).
		Measure("volume", situfact.LargerBetter).
		Measure("pe_ratio", situfact.SmallerBetter). // cheap is good
		Build()
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "situfact-stocks-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := situfact.New(schema, situfact.Options{
		Algorithm:      situfact.AlgoSTopDown,
		StoreDir:       dir, // file-backed µ store: the FS* setting of §VI-C
		MaxBoundDims:   2,
		MaxMeasureDims: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("streaming %d quotes through a file-backed engine (store: %s) ...\n\n", *n, dir)
	records := 0
	day := 0
	for i := 0; i < *n; i++ {
		if i%len(stocks) == 0 {
			day++
		}
		s := &stocks[rng.Intn(len(stocks))]
		// Geometric random walk with drift; occasional jumps make records.
		s.price *= math.Exp(0.0005 + 0.02*rng.NormFloat64())
		if rng.Float64() < 0.002 {
			s.price *= 1.25 // earnings surprise
		}
		cap := s.price * s.shares // $B
		volume := math.Abs(rng.NormFloat64()) * 20
		pe := 10 + 40*rng.Float64()
		quarter := fmt.Sprintf("Q%d-%d", (day/63)%4+1, 2013+day/252)

		arr, err := eng.Append(
			[]string{s.symbol, s.sector, s.exchange, quarter},
			[]float64{round2(s.price), round2(cap), round2(volume), round2(pe)})
		if err != nil {
			log.Fatal(err)
		}
		prom := arr.Prominent(*tau)
		if len(prom) == 0 {
			continue
		}
		records++
		f := prom[0]
		fmt.Printf("[%s %s] %s\n", quarter, s.symbol,
			situfact.Narrate(f, s.symbol, map[string]float64{
				"price": round2(s.price), "market_cap": round2(cap),
				"volume": round2(volume), "pe_ratio": round2(pe),
			}))
	}

	m := eng.Metrics()
	fmt.Printf("\n%d records over %d quotes; %d cell-file reads, %d writes\n",
		records, *n, m.Reads, m.Writes)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
