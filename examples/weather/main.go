// Weather extremes monitor: the paper's second dataset (§VI) and intro
// example 2 ("City B has never encountered such high wind speed and
// humidity in March").
//
// A synthetic forecast stream with the Met Office archive's shape (5,365
// locations, 6 countries, 7 measures) flows through a TopDown engine —
// the memory-frugal choice the paper recommends for this larger dataset —
// and the example flags arrivals that set multi-measure records within
// their (location, month, …) contexts.
//
// Run with:
//
//	go run ./examples/weather [-n 15000] [-tau 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	situfact "repro"
	"repro/internal/gen"
	"repro/internal/relation"
)

func main() {
	n := flag.Int("n", 15000, "number of forecast records to stream")
	tau := flag.Float64("tau", 200, "prominence threshold τ")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	g, err := gen.NewWeather(gen.WeatherConfig{Seed: *seed}, 5, 7)
	if err != nil {
		log.Fatal(err)
	}
	tb := relation.NewTable(g.Schema())
	if err := g.Fill(tb, *n); err != nil {
		log.Fatal(err)
	}

	eng, err := situfact.New(situfact.WrapSchema(g.Schema()), situfact.Options{
		Algorithm:      situfact.AlgoSTopDown, // frugal storage for the big archive
		MaxBoundDims:   3,
		MaxMeasureDims: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("streaming %d forecasts; flagging records with prominence ≥ %g ...\n\n", *n, *tau)
	alerts := 0
	for i := 0; i < tb.Len(); i++ {
		tu := tb.At(i)
		dims := make([]string, g.Schema().NumDims())
		for j := range dims {
			dims[j] = tb.Dict().Decode(j, tu.Dims[j])
		}
		arr, err := eng.Append(dims, tu.Raw)
		if err != nil {
			log.Fatal(err)
		}
		prom := arr.Prominent(*tau)
		if len(prom) == 0 {
			continue
		}
		alerts++
		f := prom[0]
		where := "across all stations"
		if len(f.Conditions) > 0 {
			parts := make([]string, len(f.Conditions))
			for k, c := range f.Conditions {
				parts[k] = c.Attr + "=" + c.Value
			}
			where = "for " + strings.Join(parts, ", ")
		}
		vals := make([]string, len(f.Measures))
		for k, mName := range f.Measures {
			idx := g.Schema().MeasureIndex(mName)
			vals[k] = fmt.Sprintf("%s=%g", mName, tu.Raw[idx])
		}
		fmt.Printf("[record %6d] WEATHER ALERT %s: unprecedented %s (1 of %d skyline readings out of %d)\n",
			arr.TupleID, where, strings.Join(vals, ", "), f.SkylineSize, f.ContextSize)
	}

	m := eng.Metrics()
	fmt.Printf("\n%d alerts over %d records; engine %s stored %d skyline entries in %d cells\n",
		alerts, *n, eng.Algorithm(), m.StoredTuples, m.Cells)
}
