// Public-safety dashboard: the paper's intro example 3 — "There were 35
// DUI arrests and 20 collisions in city C yesterday, the first time in
// 2013" is a contextual skyline statement over daily incident aggregates.
//
// A synthetic city-day incident stream runs through a BottomUp engine with
// deletion enabled: late-arriving corrections retract a day's row and
// re-append fixed numbers (the §VIII update extension), and the engine's
// facts stay exact throughout.
//
// Run with:
//
//	go run ./examples/crime [-days 1200] [-tau 80]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	situfact "repro"
)

func main() {
	days := flag.Int("days", 1200, "number of city-days to stream")
	tau := flag.Float64("tau", 80, "prominence threshold τ")
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cities := []string{"Arlington", "Bexley", "Corinth", "Dunmore", "Easton"}
	weekdays := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	seasons := []string{"Winter", "Spring", "Summer", "Fall"}

	schema, err := situfact.NewSchemaBuilder("incidents").
		Dimension("city").
		Dimension("weekday").
		Dimension("season").
		Measure("dui_arrests", situfact.LargerBetter). // "record high" facts
		Measure("collisions", situfact.LargerBetter).
		Measure("response_minutes", situfact.SmallerBetter). // faster is better
		Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := situfact.New(schema, situfact.Options{
		Algorithm:    situfact.AlgoBottomUp, // deletion-capable family
		MaxBoundDims: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	baseRate := map[string]float64{}
	for _, c := range cities {
		baseRate[c] = 5 + 20*rng.Float64()
	}

	type pendingFix struct {
		id   int64
		dims []string
	}
	var corrections []pendingFix
	records, fixes := 0, 0
	for d := 0; d < *days; d++ {
		city := cities[rng.Intn(len(cities))]
		dims := []string{city, weekdays[d%7], seasons[(d/90)%4]}
		weekend := d%7 >= 5
		rate := baseRate[city]
		if weekend {
			rate *= 1.6
		}
		dui := math.Floor(rate * math.Exp(0.4*rng.NormFloat64()) / 2)
		col := math.Floor(rate * math.Exp(0.35*rng.NormFloat64()) / 3)
		resp := 6 + 10*rng.Float64()

		arr, err := eng.Append(dims, []float64{dui, col, math.Round(resp)})
		if err != nil {
			log.Fatal(err)
		}
		if prom := arr.Prominent(*tau); len(prom) != 0 {
			records++
			fmt.Printf("[day %4d] %s\n", d,
				situfact.Narrate(prom[0], city, map[string]float64{
					"dui_arrests": dui, "collisions": col, "response_minutes": math.Round(resp),
				}))
		}
		// ~2% of rows turn out to be clerical errors, corrected 30 days on.
		if rng.Float64() < 0.02 {
			corrections = append(corrections, pendingFix{id: arr.TupleID, dims: dims})
		}
		if len(corrections) > 0 && corrections[0].id <= arr.TupleID-30 {
			fix := corrections[0]
			corrections = corrections[1:]
			if _, err := eng.Update(fix.id, fix.dims, []float64{
				math.Floor(dui * 0.8), math.Floor(col * 0.8), math.Round(resp),
			}); err != nil {
				log.Fatal(err)
			}
			fixes++
		}
	}
	m := eng.Metrics()
	fmt.Printf("\n%d record alerts over %d city-days (with %d retroactive corrections applied exactly)\n",
		records, *days, fixes)
	fmt.Printf("engine: %s | %d live tuples | %d stored skyline entries\n",
		eng.Algorithm(), eng.Len(), m.StoredTuples)
}
