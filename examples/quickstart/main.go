// Quickstart: the paper's Table I mini-world of basketball gamelogs.
//
// Seven box-score rows arrive one by one; when the last one (David
// Wesley's 12/13/5 game for the Celtics against the Nets) is appended, the
// engine reports every constraint–measure pair that makes it a contextual
// skyline tuple, ranked by prominence — exactly Example 1 of the paper.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	situfact "repro"
)

func main() {
	schema, err := situfact.NewSchemaBuilder("gamelog").
		Dimension("player").
		Dimension("month").
		Dimension("season").
		Dimension("team").
		Dimension("opp_team").
		Measure("points", situfact.LargerBetter).
		Measure("assists", situfact.LargerBetter).
		Measure("rebounds", situfact.LargerBetter).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	eng, err := situfact.New(schema, situfact.Options{}) // default: SBottomUp + prominence
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	rows := []struct {
		dims     []string
		measures []float64
	}{
		{[]string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, []float64{4, 12, 5}},
		{[]string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, []float64{24, 5, 15}},
		{[]string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, []float64{13, 13, 5}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3}},
		{[]string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, []float64{27, 18, 8}},
		{[]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, []float64{12, 13, 5}},
	}

	var last *situfact.Arrival
	for _, r := range rows {
		if last, err = eng.Append(r.dims, r.measures); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("t7 (Wesley 12/13/5) is a contextual skyline tuple for %d constraint-measure pairs.\n\n", len(last.Facts))

	fmt.Println("Top 5 by prominence:")
	for _, f := range last.Top(5) {
		fmt.Println(" ", f)
	}

	fmt.Println("\nProminent facts (τ = 3):")
	for _, f := range last.Prominent(3) {
		fmt.Println(" ", situfact.Narrate(f, "David Wesley", map[string]float64{
			"points": 12, "assists": 13, "rebounds": 5,
		}))
	}

	m := eng.Metrics()
	fmt.Printf("\nengine: %s | %d tuples, %d facts, %d comparisons, %d stored skyline entries\n",
		eng.Algorithm(), m.Tuples, m.Facts, m.Comparisons, m.StoredTuples)
}
