package situfact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/persist"
)

// The testdata fixtures were written by the pre-refactor engine — cells
// were map[CellKey][]*Tuple then — and pin the snapshot wire format
// across the interned-id/SoA-cell storage rewrite: a snapshot taken
// before the refactor must restore into the new layout with identical
// metrics, identical logical cell contents, and identical discovery
// behaviour afterwards.

type fixtureGolden struct {
	Algorithm   string   `json:"algorithm"`
	Metrics     Metrics  `json:"metrics"`
	NextFacts   []string `json:"next_facts"`
	NextMetrics Metrics  `json:"next_metrics"`
}

var fixtureNextRow = struct {
	dims     []string
	measures []float64
}{
	[]string{"Strickland", "Feb", "1995-96", "Blazers", "Nets"},
	[]float64{22, 15, 9},
}

func fixtureSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchemaBuilder("gamelog").
		Dimension("player").Dimension("month").Dimension("season").
		Dimension("team").Dimension("opp_team").
		Measure("points", LargerBetter).
		Measure("assists", LargerBetter).
		Measure("rebounds", LargerBetter).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// canonicalCells renders a decoded snapshot's cells in a stable order:
// one line per cell, sorted, with member ids in stored order.
func canonicalCells(sf *persist.EngineSnapshot) []string {
	out := make([]string, 0, len(sf.Cells))
	for _, c := range sf.Cells {
		out = append(out, fmt.Sprintf("%x/%x=%v", c.CKey, c.M, c.IDs))
	}
	sort.Strings(out)
	return out
}

func TestPreRefactorSnapshotFixtures(t *testing.T) {
	for _, name := range []string{"prerefactor_bottomup", "prerefactor_topdown"} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", name+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			var golden fixtureGolden
			if err := json.Unmarshal(raw, &golden); err != nil {
				t.Fatal(err)
			}
			snap, err := os.ReadFile(filepath.Join("testdata", name+".snapshot"))
			if err != nil {
				t.Fatal(err)
			}

			eng, err := LoadSnapshot(fixtureSchema(t), bytes.NewReader(snap))
			if err != nil {
				t.Fatalf("pre-refactor snapshot failed to restore: %v", err)
			}
			defer eng.Close()
			if eng.Algorithm() == "" || string(golden.Algorithm) == "" {
				t.Fatal("fixture missing algorithm")
			}
			if got := eng.Metrics(); got != golden.Metrics {
				t.Errorf("restored metrics = %+v, want %+v", got, golden.Metrics)
			}

			// Re-encoding the restored engine must reproduce the fixture's
			// logical content exactly: same dictionary, tuples, tombstones,
			// counters, and cell membership (cell order is map-iteration
			// dependent in both generations, so compare canonically).
			var buf bytes.Buffer
			if err := eng.SaveSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			want, err := persist.DecodeEngine(bytes.NewReader(snap))
			if err != nil {
				t.Fatal(err)
			}
			got, err := persist.DecodeEngine(&buf)
			if err != nil {
				t.Fatal(err)
			}
			wantCells, gotCells := canonicalCells(want), canonicalCells(got)
			if len(wantCells) != len(gotCells) {
				t.Fatalf("re-encoded snapshot has %d cells, fixture %d", len(gotCells), len(wantCells))
			}
			for i := range wantCells {
				if wantCells[i] != gotCells[i] {
					t.Fatalf("cell %d differs:\n  fixture: %s\n  re-encoded: %s", i, wantCells[i], gotCells[i])
				}
			}
			got.Cells, want.Cells = nil, nil
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Errorf("re-encoded snapshot header differs:\n  fixture: %+v\n  re-encoded: %+v", want, got)
			}

			// The restored engine must keep discovering exactly as the
			// pre-refactor engine did: the recorded follow-up arrival's
			// facts and cumulative metrics are the golden oracle.
			arr, err := eng.Append(fixtureNextRow.dims, fixtureNextRow.measures)
			if err != nil {
				t.Fatal(err)
			}
			facts := make([]string, 0, len(arr.Facts))
			for _, f := range arr.Facts {
				facts = append(facts, f.String())
			}
			if len(facts) != len(golden.NextFacts) {
				t.Fatalf("next arrival emitted %d facts, fixture recorded %d", len(facts), len(golden.NextFacts))
			}
			for i := range facts {
				if facts[i] != golden.NextFacts[i] {
					t.Errorf("fact %d = %q, want %q", i, facts[i], golden.NextFacts[i])
				}
			}
			if got := eng.Metrics(); got != golden.NextMetrics {
				t.Errorf("metrics after next arrival = %+v, want %+v", got, golden.NextMetrics)
			}
		})
	}
}
