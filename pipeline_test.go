package situfact

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// newPipelinedPool builds a pool with the ingest pipeline running.
func newPipelinedPool(t *testing.T, shards int, depth int) *Pool {
	t.Helper()
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: shards, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartPipeline(PipelineOptions{QueueDepth: depth}); err != nil {
		p.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPipelineEquivalence is the pipeline's acceptance property: routed
// through the per-shard batching writers, every arrival's facts and the
// pool's final metrics are bit-identical to the direct Pool.Append path
// over the same substream — via Append, AppendBatch, and interleaved
// Deletes.
func TestPipelineEquivalence(t *testing.T) {
	rows := poolRows(200)
	direct, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	piped := newPipelinedPool(t, 3, 0)

	for i, r := range rows {
		want, err := direct.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		got, err := piped.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		if got.Shard != want.Shard {
			t.Fatalf("row %d routed to shard %d, direct path routed to %d", i, got.Shard, want.Shard)
		}
		factsEqual(t, fmt.Sprintf("row %d (pipelined Append)", i), want, got)
		// Interleave deletes so the queue carries both op types in order.
		if i%17 == 3 {
			if err := direct.Delete(want.Shard, want.TupleID); err != nil {
				t.Fatal(err)
			}
			if err := piped.Delete(got.Shard, got.TupleID); err != nil {
				t.Fatalf("pipelined delete of %d:%d: %v", got.Shard, got.TupleID, err)
			}
		}
	}
	if dm, pm := direct.Metrics(), piped.Metrics(); dm != pm {
		t.Errorf("pipelined metrics %+v != direct %+v", pm, dm)
	}
	if direct.Len() != piped.Len() {
		t.Errorf("pipelined Len %d != direct %d", piped.Len(), direct.Len())
	}

	// AppendBatch through the pipeline, against the same direct reference.
	directB, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer directB.Close()
	pipedB := newPipelinedPool(t, 3, 8) // small queue: batches must split
	var wantArrs, gotArrs []*Arrival
	for lo := 0; lo < len(rows); lo += 32 {
		hi := min(lo+32, len(rows))
		w, err := directB.AppendBatch(rows[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		g, err := pipedB.AppendBatch(rows[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		wantArrs = append(wantArrs, w...)
		gotArrs = append(gotArrs, g...)
	}
	for i := range wantArrs {
		factsEqual(t, fmt.Sprintf("row %d (pipelined AppendBatch)", i), wantArrs[i], gotArrs[i])
	}
	if dm, pm := directB.Metrics(), pipedB.Metrics(); dm != pm {
		t.Errorf("pipelined batch metrics %+v != direct %+v", pm, dm)
	}
}

// TestPipelineAdaptiveEquivalence is TestPipelineEquivalence with every
// multicore feature on at once: adaptive queue depths, parallel-bottomup
// shard engines, and the completion worker pool (always on under the
// pipeline). Facts and metrics must stay bit-identical both to the
// direct path over the same engines and to a fixed-depth pipeline —
// queue-capacity movement is pure mechanics, invisible to discovery.
func TestPipelineAdaptiveEquivalence(t *testing.T) {
	eng := Options{Algorithm: AlgoParallelBottomUp, Workers: 2}
	newP := func(pipelined, adaptive bool) *Pool {
		p, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team", Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		if pipelined {
			if err := p.StartPipeline(PipelineOptions{QueueDepth: 64, AdaptiveQueue: adaptive}); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	direct, fixed, adaptive := newP(false, false), newP(true, false), newP(true, true)
	for i, r := range poolRows(180) {
		want, err := direct.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := fixed.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := adaptive.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		factsEqual(t, fmt.Sprintf("row %d (fixed-depth)", i), want, gf)
		factsEqual(t, fmt.Sprintf("row %d (adaptive-depth)", i), want, ga)
		if i%13 == 5 {
			for name, p := range map[string]*Pool{"direct": direct, "fixed": fixed, "adaptive": adaptive} {
				if err := p.Delete(want.Shard, want.TupleID); err != nil {
					t.Fatalf("row %d: %s delete: %v", i, name, err)
				}
			}
		}
	}
	dm := direct.Metrics()
	if fm := fixed.Metrics(); fm != dm {
		t.Errorf("fixed-depth metrics %+v != direct %+v", fm, dm)
	}
	if am := adaptive.Metrics(); am != dm {
		t.Errorf("adaptive-depth metrics %+v != direct %+v", am, dm)
	}
	if direct.Len() != fixed.Len() || direct.Len() != adaptive.Len() {
		t.Errorf("Len: direct %d, fixed %d, adaptive %d", direct.Len(), fixed.Len(), adaptive.Len())
	}
	// The adaptive writers must report capacities inside [floor, ceiling];
	// the fixed ones must sit exactly at the configured depth.
	for i, st := range adaptive.PipelineStats() {
		if st.Cap < 16 || st.Cap > 64 {
			t.Errorf("adaptive shard %d cap = %d, want within [16, 64]", i, st.Cap)
		}
	}
	for i, st := range fixed.PipelineStats() {
		if st.Cap != 64 || st.Resizes != 0 {
			t.Errorf("fixed shard %d cap = %d resizes = %d, want 64 and 0", i, st.Cap, st.Resizes)
		}
	}
	if sum := adaptive.IngestSummary(); !sum.Pipeline || sum.Enqueued == 0 || sum.QueueCap < 3*16 {
		t.Errorf("adaptive IngestSummary = %+v, want a live pipeline with summed caps", sum)
	}
}

// TestPipelineCompletionStress hammers a journaled adaptive pipeline
// from many goroutines while the pipeline is stopped and restarted
// mid-flight: every acknowledged op must be applied exactly once, and
// shutdown must drain the completion pool (a lost wg.Done here deadlocks
// the test). Run under -race in CI with -count=3.
func TestPipelineCompletionStress(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 4, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w, err := OpenWAL(p, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	start := func() {
		// Tiny ceiling: queues fill constantly, so grows, full-wait blocks
		// and many small commit groups all happen under the race detector.
		if err := p.StartPipeline(PipelineOptions{QueueDepth: 8, AdaptiveQueue: true}); err != nil {
			t.Error(err)
		}
	}
	start()
	const workers, perWorker = 8, 50
	rows := poolRows(workers * perWorker)
	var appended, deleted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, r := range rows[g*perWorker : (g+1)*perWorker] {
				arr, err := p.Append(r.Dims, r.Measures)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				appended++
				mu.Unlock()
				if i%7 == 2 {
					if err := p.Delete(arr.Shard, arr.TupleID); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					deleted++
					mu.Unlock()
				}
			}
		}(g)
	}
	// Bounce the pipeline mid-flight: racing ops fall back to the direct
	// path, and the restart races new enqueues against fresh writers.
	for i := 0; i < 3; i++ {
		p.StopPipeline()
		start()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if want := int(appended - deleted); p.Len() != want {
		t.Errorf("Len = %d, want %d (appended %d − deleted %d)", p.Len(), want, appended, deleted)
	}
	p.StopPipeline()
	if st := w.Stats(); st.LastLSN != st.SyncedLSN {
		t.Errorf("wal last LSN %d != synced %d after stop", st.LastLSN, st.SyncedLSN)
	}
}

// TestPipelineWALReplay journals a pipelined stream (appends + deletes),
// then replays the log into a fresh pool: recovered metrics and length
// must equal the original — the batched journal pass preserves
// journal-order-equals-apply-order per shard.
func TestPipelineWALReplay(t *testing.T) {
	rows := poolRows(120)
	dir := t.TempDir()
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(p, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := p.StartPipeline(PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
	var arrs []*Arrival
	for _, r := range rows {
		arr, err := p.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, arr)
	}
	for i := 0; i < len(arrs); i += 13 {
		if err := p.Delete(arrs[i].Shard, arrs[i].TupleID); err != nil {
			t.Fatal(err)
		}
	}
	wantMetrics, wantLen := p.Metrics(), p.Len()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w2, err := OpenWAL(r, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	stats, err := r.ReplayWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed > 0 {
		t.Errorf("replay re-failed %d records of a clean stream", stats.Failed)
	}
	if got := r.Metrics(); got != wantMetrics {
		t.Errorf("replayed metrics %+v, want %+v", got, wantMetrics)
	}
	if r.Len() != wantLen {
		t.Errorf("replayed Len %d, want %d", r.Len(), wantLen)
	}
}

// TestPipelineCheckpointTail checkpoints mid-stream with the pipeline
// running, keeps ingesting, and recovers snapshot + tail: the per-shard
// LSN watermarks captured under the shard lock must stay exact even
// though journaling is batched.
func TestPipelineCheckpointTail(t *testing.T) {
	rows := poolRows(160)
	dir := t.TempDir()
	snapDir := t.TempDir()
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(p, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := p.StartPipeline(PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:100] {
		if _, err := p.Append(r.Dims, r.Measures); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Checkpoint(snapDir, nil); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[100:] {
		if _, err := p.Append(r.Dims, r.Measures); err != nil {
			t.Fatal(err)
		}
	}
	wantMetrics, wantLen := p.Metrics(), p.Len()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, _, err := RestorePool(poolSchema(t), snapDir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w2, err := OpenWAL(r, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	stats, err := r.ReplayWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == 0 {
		t.Error("replay skipped nothing; the checkpoint's watermarks were lost")
	}
	if got := r.Metrics(); got != wantMetrics {
		t.Errorf("recovered metrics %+v, want %+v", got, wantMetrics)
	}
	if r.Len() != wantLen {
		t.Errorf("recovered Len %d, want %d", r.Len(), wantLen)
	}
}

// TestPipelineStress hammers one pipelined pool from many goroutines —
// mixed Append, AppendBatch and Delete, with a WAL attached and a small
// queue so backpressure engages. Run under -race (CI does); the
// assertions are conservation properties: every acknowledged row is
// either live or deleted, and the stats counters account for every op.
func TestPipelineStress(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 4, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w, err := OpenWAL(p, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := p.StartPipeline(PipelineOptions{QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 60
	rows := poolRows(workers * perWorker)
	var appended, deleted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := rows[g*perWorker : (g+1)*perWorker]
			for i := 0; i < len(mine); {
				if g%3 == 0 && i+8 <= len(mine) { // every third worker batches
					arrs, err := p.AppendBatch(mine[i : i+8])
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					appended += int64(len(arrs))
					mu.Unlock()
					i += 8
					continue
				}
				arr, err := p.Append(mine[i].Dims, mine[i].Measures)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				appended++
				mu.Unlock()
				if i%9 == 4 { // delete my own acked row: per-shard FIFO orders it after the append
					if err := p.Delete(arr.Shard, arr.TupleID); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					deleted++
					mu.Unlock()
				}
				i++
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if want := int(appended - deleted); p.Len() != want {
		t.Errorf("Len = %d, want %d (appended %d − deleted %d)", p.Len(), want, appended, deleted)
	}
	var enq uint64
	for _, st := range p.PipelineStats() {
		enq += st.Enqueued
		var hist uint64
		for _, c := range st.BatchHist {
			hist += c
		}
		if hist != st.Batches {
			t.Errorf("shard histogram sums to %d, want %d batches", hist, st.Batches)
		}
	}
	if want := uint64(appended + deleted); enq != want {
		t.Errorf("writers enqueued %d ops, want %d", enq, want)
	}
	// The log must carry exactly one record per acknowledged op.
	if st := w.Stats(); st.LastLSN != uint64(appended+deleted) {
		t.Errorf("wal holds %d records, want %d", st.LastLSN, appended+deleted)
	}
}

// TestPipelineLifecycle pins start/stop semantics: double start errors,
// stop reverts to the direct path, and both paths ingest correctly.
func TestPipelineLifecycle(t *testing.T) {
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 2, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.StartPipeline(PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.StartPipeline(PipelineOptions{}); err == nil {
		t.Fatal("second StartPipeline succeeded")
	} else if !strings.Contains(err.Error(), "already has an ingest pipeline") {
		t.Fatalf("second StartPipeline error = %v", err)
	}
	if p.PipelineStats() == nil {
		t.Fatal("PipelineStats = nil while running")
	}
	rows := poolRows(10)
	if _, err := p.Append(rows[0].Dims, rows[0].Measures); err != nil {
		t.Fatal(err)
	}
	p.StopPipeline()
	if p.PipelineStats() != nil {
		t.Fatal("PipelineStats non-nil after stop")
	}
	if _, err := p.Append(rows[1].Dims, rows[1].Measures); err != nil {
		t.Fatalf("direct append after StopPipeline: %v", err)
	}
	p.StopPipeline() // idempotent
	if err := p.StartPipeline(PipelineOptions{}); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	if _, err := p.Append(rows[2].Dims, rows[2].Measures); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
}

// TestPipelineRejectsBadRows pins the pre-queue validation: malformed
// and oversized rows fail synchronously, are never journaled, and never
// reach the writers.
func TestPipelineRejectsBadRows(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 2, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w, err := OpenWAL(p, dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := p.StartPipeline(PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]string{"only-one"}, []float64{1, 2}); err == nil {
		t.Error("short row accepted")
	}
	huge := strings.Repeat("x", 17<<20)
	if _, err := p.Append([]string{huge, "p", "Jan"}, []float64{1, 2}); !errors.Is(err, ErrRowTooLarge) {
		t.Errorf("oversized row error = %v, want ErrRowTooLarge", err)
	}
	if _, err := p.AppendBatch([]Row{{Dims: []string{huge, "p", "Jan"}, Measures: []float64{1, 2}}}); !errors.Is(err, ErrRowTooLarge) {
		t.Errorf("oversized batch row error = %v, want ErrRowTooLarge", err)
	}
	if st := w.Stats(); st.LastLSN != 0 {
		t.Errorf("rejected rows left %d WAL records", st.LastLSN)
	}
	for _, st := range p.PipelineStats() {
		if st.Enqueued != 0 {
			t.Errorf("rejected rows reached a writer queue (enqueued %d)", st.Enqueued)
		}
	}
	// Unsupported deletes are rejected before the queue and the journal.
	tp, err := NewPool(poolSchema(t), PoolOptions{Shards: 2, ShardDim: "team",
		Engine: Options{Algorithm: AlgoSTopDown}})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if err := tp.StartPipeline(PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := tp.Delete(0, 0); !errors.Is(err, ErrDeleteUnsupported) {
		t.Errorf("TopDown pipelined delete error = %v, want ErrDeleteUnsupported", err)
	}
	for _, st := range tp.PipelineStats() {
		if st.Enqueued != 0 {
			t.Errorf("unsupported delete reached a writer queue")
		}
	}
}
