package situfact

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/factindex"
	"repro/internal/lattice"
	"repro/internal/store"
	"repro/internal/subspace"
)

// The pool's read path: point lookups of stored tuples and paginated,
// filtered scans of the current fact set (every (context, subspace) cell
// of the µ store IS a contextual skyline, i.e. a group of situational
// facts). Reads take each shard's read lock only while collecting that
// shard's page, so they ride alongside ingest instead of stalling it —
// and, through the same methods, a read-only follower serves the exact
// query surface the leader does.
//
// Determinism contract: results are ordered by (shard, constraint key,
// subspace mask) — coordinates that are a pure function of the logical
// cell, independent of interning order or store layout. A leader and a
// follower that hold the same logical state therefore return bit-identical
// pages for the same query, which is what the replication tests assert.

// FactFilter selects facts for Pool.QueryFacts. The zero value selects
// everything.
type FactFilter struct {
	// Shard restricts the scan to one shard; negative scans all shards.
	// The zero value selects shard 0; use -1 (or AllShards) for all.
	Shard int
	// Conditions, when non-empty, keep only facts whose context binds
	// every listed attribute to exactly the listed value. Attributes not
	// listed are unconstrained (bound or wildcard).
	Conditions []Condition
	// Measures, when non-empty, keeps only facts over exactly this measure
	// subspace (order-insensitive).
	Measures []string
	// WithTuple, when true, keeps only facts whose contextual skyline
	// contains TupleID. Tuple ids are per-shard coordinates, so it
	// requires Shard >= 0.
	WithTuple bool
	TupleID   int64
}

// AllShards is the FactFilter.Shard value that scans every shard.
const AllShards = -1

// QueryFact is one fact group of a query result: one (context, subspace)
// cell of a shard's µ store, i.e. one contextual skyline.
type QueryFact struct {
	Shard       int
	Conditions  []Condition
	Measures    []string
	ContextSize int64
	SkylineSize int
	Prominence  float64
	// TupleIDs are the skyline members (per-shard tuple ids), ascending.
	TupleIDs []int64

	// Pagination coordinates (constraint key bytes + subspace mask);
	// internal, carried so the pool can order results and mint cursors.
	sortKey  string
	sortMask uint32
}

// String renders the fact group in the paper's notation.
func (q QueryFact) String() string {
	f := Fact{
		Conditions: q.Conditions, Measures: q.Measures,
		ContextSize: q.ContextSize, SkylineSize: q.SkylineSize,
		Prominence: q.Prominence,
	}
	return f.String()
}

// FactPage is one page of Pool.QueryFacts results.
type FactPage struct {
	Facts []QueryFact
	// NextCursor resumes the scan after the last returned fact; empty
	// when the scan may be complete. (A cursor can point past the final
	// fact, in which case the next page is empty with an empty cursor.)
	NextCursor string
}

// TupleInfo is one stored tuple, decoded, as returned by Pool.Tuple.
type TupleInfo struct {
	Shard    int
	TupleID  int64
	Dims     []string
	Measures []float64
	Deleted  bool
}

// queryPlan is a FactFilter validated against the schema: condition and
// measure names resolved to dimension indices and a subspace mask. Values
// stay as strings — they resolve per shard, against each shard's own
// dictionary.
type queryPlan struct {
	condDims []int
	condVals []string
	mask     subspace.Mask
	haveMask bool
	tuple    bool
	tupleID  int64
}

func (p *Pool) planQuery(f FactFilter) (queryPlan, error) {
	var q queryPlan
	rs := p.schema.rs
	seen := make(map[int]string, len(f.Conditions))
	for _, c := range f.Conditions {
		dim := rs.DimIndex(c.Attr)
		if dim < 0 {
			return q, fmt.Errorf("situfact: query: unknown dimension attribute %q", c.Attr)
		}
		if prev, dup := seen[dim]; dup {
			if prev != c.Value {
				return q, fmt.Errorf("situfact: query: attribute %q constrained to both %q and %q",
					c.Attr, prev, c.Value)
			}
			continue
		}
		seen[dim] = c.Value
		q.condDims = append(q.condDims, dim)
		q.condVals = append(q.condVals, c.Value)
	}
	for _, name := range f.Measures {
		i := rs.MeasureIndex(name)
		if i < 0 {
			return q, fmt.Errorf("situfact: query: unknown measure attribute %q", name)
		}
		q.mask |= 1 << uint(i)
		q.haveMask = true
	}
	if f.WithTuple {
		if f.Shard < 0 {
			return q, fmt.Errorf("situfact: query: a tuple filter needs a shard (tuple ids are per-shard)")
		}
		if f.TupleID < 0 {
			return q, fmt.Errorf("situfact: query: negative tuple id %d", f.TupleID)
		}
		q.tuple = true
		q.tupleID = f.TupleID
	}
	return q, nil
}

// queryCursor is a decoded pagination cursor: resume strictly after the
// cell (key, mask) of the given shard.
type queryCursor struct {
	shard int
	key   string
	mask  uint32
}

const cursorVersion = "v1"

func encodeCursor(c queryCursor) string {
	raw := fmt.Sprintf("%s|%d|%s|%d", cursorVersion, c.shard, hex.EncodeToString([]byte(c.key)), c.mask)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

func decodeCursor(s string) (queryCursor, error) {
	var c queryCursor
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("situfact: query: malformed cursor")
	}
	parts := strings.Split(string(raw), "|")
	if len(parts) != 4 || parts[0] != cursorVersion {
		return c, fmt.Errorf("situfact: query: malformed cursor")
	}
	shard, err := strconv.Atoi(parts[1])
	if err != nil || shard < 0 {
		return c, fmt.Errorf("situfact: query: malformed cursor")
	}
	key, err := hex.DecodeString(parts[2])
	if err != nil {
		return c, fmt.Errorf("situfact: query: malformed cursor")
	}
	mask, err := strconv.ParseUint(parts[3], 10, 32)
	if err != nil {
		return c, fmt.Errorf("situfact: query: malformed cursor")
	}
	c.shard, c.key, c.mask = shard, string(key), uint32(mask)
	return c, nil
}

// QueryFacts scans the pool's fact groups matching the filter, ordered by
// (shard, constraint key, subspace mask), returning up to limit of them
// (limit <= 0 = no cap) starting after the cursor ("" = from the start).
// Each shard's read lock is held only while that shard's cells are
// collected — one shard at a time, never across the whole call — so
// queries and ingest interleave per shard.
func (p *Pool) QueryFacts(f FactFilter, cursor string, limit int) (FactPage, error) {
	return p.QueryFactsContext(context.Background(), f, cursor, limit)
}

// QueryFactsContext is QueryFacts with a cancellation point between
// shards: a ctx that ends mid-scan (client disconnect, request
// deadline) stops before the next shard's lock is taken and returns
// ctx's error. The per-shard work itself is not interrupted — a shard's
// read lock is held only for one page fragment, which is the bounded
// unit of work.
func (p *Pool) QueryFactsContext(ctx context.Context, f FactFilter, cursor string, limit int) (FactPage, error) {
	if f.Shard >= len(p.shards) {
		return FactPage{}, fmt.Errorf("situfact: query: shard %d of %d: %w", f.Shard, len(p.shards), ErrNotFound)
	}
	plan, err := p.planQuery(f)
	if err != nil {
		return FactPage{}, err
	}
	var cur *queryCursor
	if cursor != "" {
		c, err := decodeCursor(cursor)
		if err != nil {
			return FactPage{}, err
		}
		if c.shard >= len(p.shards) {
			return FactPage{}, fmt.Errorf("situfact: query: malformed cursor")
		}
		if f.Shard >= 0 && c.shard != f.Shard {
			return FactPage{}, fmt.Errorf("situfact: query: cursor belongs to a different query")
		}
		cur = &c
	}
	first, last := 0, len(p.shards)-1
	if f.Shard >= 0 {
		first, last = f.Shard, f.Shard
	}
	if !p.scanQueries.Load() {
		return p.queryFactsIndexed(ctx, plan, cur, first, last, limit)
	}
	var page FactPage
	for shard := first; shard <= last; shard++ {
		if cur != nil && shard < cur.shard {
			continue
		}
		if err := ctx.Err(); err != nil {
			return FactPage{}, fmt.Errorf("situfact: query: %w", err)
		}
		s := &p.shards[shard]
		s.mu.RLock()
		facts, err := s.eng.queryFacts(plan, shard)
		s.mu.RUnlock()
		if err != nil {
			return FactPage{}, err
		}
		sort.Slice(facts, func(i, j int) bool {
			if facts[i].sortKey != facts[j].sortKey {
				return facts[i].sortKey < facts[j].sortKey
			}
			return facts[i].sortMask < facts[j].sortMask
		})
		for i := range facts {
			qf := facts[i]
			if cur != nil && shard == cur.shard {
				if qf.sortKey < cur.key || (qf.sortKey == cur.key && qf.sortMask <= cur.mask) {
					continue
				}
			}
			page.Facts = append(page.Facts, qf)
			if limit > 0 && len(page.Facts) == limit {
				// More may follow: later cells of this shard, or any later
				// shard. Only the very last cell of the last shard ends the
				// scan with certainty.
				if i < len(facts)-1 || shard < last {
					page.NextCursor = encodeCursor(queryCursor{
						shard: shard, key: qf.sortKey, mask: qf.sortMask,
					})
				}
				return page, nil
			}
		}
	}
	return page, nil
}

// queryFactsIndexed is QueryFacts over the incremental fact index: per
// shard, one O(log n) seek to the resume position and an O(page) forward
// walk, never collecting or sorting the shard's full fact set. It must
// return bit-identical pages (cursors included) to the scan loop above —
// the equivalence property test holds the two paths together.
func (p *Pool) queryFactsIndexed(ctx context.Context, plan queryPlan, cur *queryCursor, first, last, limit int) (FactPage, error) {
	var page FactPage
	for shard := first; shard <= last; shard++ {
		if cur != nil && shard < cur.shard {
			continue
		}
		if err := ctx.Err(); err != nil {
			return FactPage{}, fmt.Errorf("situfact: query: %w", err)
		}
		var after *queryCursor
		if cur != nil && shard == cur.shard {
			after = cur
		}
		want := 0
		if limit > 0 {
			want = limit - len(page.Facts)
		}
		s := &p.shards[shard]
		s.mu.RLock()
		facts, more, err := s.eng.queryFactsSeek(plan, shard, after, want)
		s.mu.RUnlock()
		if err != nil {
			return FactPage{}, err
		}
		page.Facts = append(page.Facts, facts...)
		if limit > 0 && len(page.Facts) == limit {
			// Same certainty rule as the scan path: only the last matching
			// cell of the last shard ends the scan without a cursor.
			if more || shard < last {
				qf := page.Facts[len(page.Facts)-1]
				page.NextCursor = encodeCursor(queryCursor{
					shard: shard, key: qf.sortKey, mask: qf.sortMask,
				})
			}
			return page, nil
		}
	}
	return page, nil
}

// queryFacts collects the shard engine's fact groups matching the plan.
// The caller holds the shard's read lock.
func (e *Engine) queryFacts(q queryPlan, shard int) ([]QueryFact, error) {
	mem, ok := memoryStoreOf(e.disc)
	if !ok {
		return nil, fmt.Errorf("situfact: queries require a lattice algorithm over the in-memory store (engine runs %s)", e.disc.Name())
	}
	// Resolve condition values against this shard's dictionary: a value
	// the shard never saw matches nothing here (other shards may hold it).
	d := e.table.Dict()
	condCodes := make([]int32, len(q.condDims))
	for i, dim := range q.condDims {
		code, ok := d.Lookup(dim, q.condVals[i])
		if !ok {
			return nil, nil
		}
		condCodes[i] = code
	}
	nd := e.schema.NumDims()
	var out []QueryFact
	var walkErr error
	mem.Walk(func(k store.CellKey, c store.Cell) {
		if walkErr != nil {
			return
		}
		if q.haveMask && k.M != q.mask {
			return
		}
		if q.tuple && !c.ContainsID(q.tupleID) {
			return
		}
		cons, err := lattice.ParseKey(k.C, nd)
		if err != nil {
			walkErr = fmt.Errorf("situfact: query: shard %d: %w", shard, err)
			return
		}
		for i, dim := range q.condDims {
			if cons.Vals[dim] != condCodes[i] {
				return
			}
		}
		out = append(out, e.factFromCell(shard, string(k.C), uint32(k.M), c, cons))
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return out, nil
}

// factFromCell builds the QueryFact for one matching cell; cons must be
// the parse of key. It is the single construction point shared by the
// scan and index-backed query paths, so the two emit bit-identical facts.
func (e *Engine) factFromCell(shard int, key string, mask uint32, c store.Cell, cons lattice.Constraint) QueryFact {
	d := e.table.Dict()
	qf := QueryFact{
		Shard:       shard,
		Measures:    subspace.Names(subspace.Mask(mask), e.schema),
		SkylineSize: c.Len(),
		TupleIDs:    c.IDList(),
		sortKey:     key,
		sortMask:    mask,
	}
	sort.Slice(qf.TupleIDs, func(i, j int) bool { return qf.TupleIDs[i] < qf.TupleIDs[j] })
	for dim, v := range cons.Vals {
		if v < 0 {
			continue
		}
		qf.Conditions = append(qf.Conditions, Condition{
			Attr:  e.schema.Dim(dim).Name,
			Value: d.Decode(dim, v),
		})
	}
	if e.counter != nil {
		qf.ContextSize = e.counter.ContextSize(cons)
		if qf.SkylineSize > 0 {
			qf.Prominence = float64(qf.ContextSize) / float64(qf.SkylineSize)
		}
	}
	return qf
}

// keyAfterPrefix returns the smallest byte string ordering strictly after
// every string with the given prefix, and false when none exists (the
// prefix is empty or all 0xFF — i.e. nothing past it).
func keyAfterPrefix(prefix string) (string, bool) {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			b := []byte(prefix[:i+1])
			b[i]++
			return string(b), true
		}
	}
	return "", false
}

// queryFactsSeek collects up to want fact groups (want <= 0 = all)
// matching the plan, in (constraint key, subspace mask) order, starting
// strictly after the cursor position (nil = from the start), by seeking
// the shard's incremental fact index instead of walking the store. more
// reports whether at least one further matching cell follows the returned
// ones. Filter predicates are pushed down as re-seeks: a condition or
// subspace mismatch skips the whole non-matching key run in one O(log n)
// jump rather than visiting its cells. The caller holds the shard's read
// lock, which is what makes iterating the live tree safe.
func (e *Engine) queryFactsSeek(q queryPlan, shard int, after *queryCursor, want int) (facts []QueryFact, more bool, err error) {
	mem, ok := memoryStoreOf(e.disc)
	if !ok || e.fidx == nil {
		return nil, false, fmt.Errorf("situfact: queries require a lattice algorithm over the in-memory store (engine runs %s)", e.disc.Name())
	}
	// Resolve condition values against this shard's dictionary: a value
	// the shard never saw matches nothing here (other shards may hold it).
	d := e.table.Dict()
	condCodes := make([]int32, len(q.condDims))
	for i, dim := range q.condDims {
		code, ok := d.Lookup(dim, q.condVals[i])
		if !ok {
			return nil, false, nil
		}
		condCodes[i] = code
	}
	nd := e.schema.NumDims()
	keyLen := 4 * nd
	// Condition predicates as fixed key blocks, in increasing key-offset
	// order: the first mismatching block (leftmost) determines where the
	// matching key region continues, so pushdown must compare left to
	// right regardless of the order the filter listed the conditions.
	type condBlock struct {
		off  int
		want string
	}
	blocks := make([]condBlock, len(q.condDims))
	for i, dim := range q.condDims {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(condCodes[i]))
		blocks[i] = condBlock{off: 4 * dim, want: string(b[:])}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].off < blocks[j].off })
	in := mem.Interner()

	var it *factindex.Iter
	switch {
	case after == nil:
		it = e.fidx.Seek("", 0)
	case after.mask == ^uint32(0):
		it = e.fidx.Seek(after.key+"\x00", 0)
	default:
		it = e.fidx.Seek(after.key, after.mask+1)
	}
	for it.Valid() {
		ent := it.Entry()
		if len(ent.Key) != keyLen {
			// Surface exactly the error the scan path would (via ParseKey).
			_, perr := lattice.ParseKey(lattice.Key(ent.Key), nd)
			return nil, false, fmt.Errorf("situfact: query: shard %d: %w", shard, perr)
		}
		seeked := false
		for _, b := range blocks {
			got := ent.Key[b.off : b.off+4]
			if got == b.want {
				continue
			}
			if got < b.want {
				// The matching region for this prefix starts at the wanted
				// block value; jump to it.
				it.SeekGE(ent.Key[:b.off]+b.want, 0)
			} else if next, ok := keyAfterPrefix(ent.Key[:b.off]); ok {
				// Already past the wanted value under this prefix: no key
				// with the prefix can match anymore; skip the whole prefix.
				it.SeekGE(next, 0)
			} else {
				return facts, false, nil // nothing orders after the prefix
			}
			seeked = true
			break
		}
		if seeked {
			continue
		}
		if q.haveMask && ent.Mask != uint32(q.mask) {
			if ent.Mask < uint32(q.mask) {
				it.SeekGE(ent.Key, uint32(q.mask))
			} else {
				// Keys are fixed-length, so key+"\x00" orders after every
				// (key, mask) pair and before any other key.
				it.SeekGE(ent.Key+"\x00", 0)
			}
			continue
		}
		id, ok := in.Lookup(lattice.Key(ent.Key))
		if !ok {
			return nil, false, fmt.Errorf("situfact: query: shard %d: fact index entry %x has no interned constraint", shard, ent.Key)
		}
		c := mem.Peek(store.Ref(id, subspace.Mask(ent.Mask)))
		if c.Len() == 0 {
			return nil, false, fmt.Errorf("situfact: query: shard %d: fact index entry %x/%d has no stored cell", shard, ent.Key, ent.Mask)
		}
		if q.tuple && !c.ContainsID(q.tupleID) {
			it.Next()
			continue
		}
		if want > 0 && len(facts) == want {
			return facts, true, nil // the page is full and a match follows it
		}
		cons, perr := lattice.ParseKey(lattice.Key(ent.Key), nd)
		if perr != nil {
			return nil, false, fmt.Errorf("situfact: query: shard %d: %w", shard, perr)
		}
		facts = append(facts, e.factFromCell(shard, ent.Key, ent.Mask, c, cons))
		it.Next()
	}
	return facts, false, nil
}

// TopFacts returns the k highest-prominence fact groups currently live
// across all shards, computed from the current µ-store state (the
// incremental fact index, or the scan path when SetScanQueries(true)).
// Unlike the daemon's arrival-history leaderboard this is a live view:
// deletes and skyline churn are reflected immediately. Order: prominence
// descending, then (shard, constraint key, subspace mask) ascending so
// ties break deterministically and leader/follower agree byte-for-byte.
func (p *Pool) TopFacts(k int) ([]QueryFact, error) {
	if k <= 0 {
		return nil, nil
	}
	var all []QueryFact
	scan := p.scanQueries.Load()
	for shard := range p.shards {
		s := &p.shards[shard]
		var facts []QueryFact
		var err error
		s.mu.RLock()
		if scan {
			facts, err = s.eng.queryFacts(queryPlan{}, shard)
		} else {
			facts, _, err = s.eng.queryFactsSeek(queryPlan{}, shard, nil, 0)
		}
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		all = append(all, facts...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Prominence != b.Prominence {
			return a.Prominence > b.Prominence
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.sortKey != b.sortKey {
			return a.sortKey < b.sortKey
		}
		return a.sortMask < b.sortMask
	})
	if k < len(all) {
		all = all[:k]
	}
	return all, nil
}

// Tuple returns stored tuple tupleID of the given shard, decoded, under
// the shard's read lock.
func (p *Pool) Tuple(shard int, tupleID int64) (TupleInfo, error) {
	if shard < 0 || shard >= len(p.shards) {
		return TupleInfo{}, fmt.Errorf("situfact: pool: shard %d of %d: %w", shard, len(p.shards), ErrNotFound)
	}
	s := &p.shards[shard]
	s.mu.RLock()
	info, err := s.eng.tupleInfo(tupleID)
	s.mu.RUnlock()
	if err != nil {
		return TupleInfo{}, err
	}
	info.Shard = shard
	return info, nil
}

// tupleInfo decodes one stored tuple. The caller holds the shard's read
// lock.
func (e *Engine) tupleInfo(tupleID int64) (TupleInfo, error) {
	if tupleID < 0 || tupleID >= int64(e.table.Len()) {
		return TupleInfo{}, fmt.Errorf("situfact: tuple %d: %w", tupleID, ErrNotFound)
	}
	tu := e.table.Tuples()[tupleID]
	d := e.table.Dict()
	info := TupleInfo{
		TupleID:  tupleID,
		Dims:     make([]string, len(tu.Dims)),
		Measures: append([]float64(nil), tu.Raw...),
		Deleted:  e.deleted[tupleID],
	}
	for i, code := range tu.Dims {
		info.Dims[i] = d.Decode(i, code)
	}
	return info, nil
}
