package situfact

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// poolFixture holds the state-dir layout the WAL tests share.
type poolFixture struct {
	stateDir string
	walDir   string
}

func newPoolFixture(t *testing.T) poolFixture {
	dir := t.TempDir()
	return poolFixture{stateDir: dir, walDir: filepath.Join(dir, "wal")}
}

func (f poolFixture) openWAL(t *testing.T) *WAL {
	t.Helper()
	w, err := OpenWAL(gamelogSchema(t), f.walDir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newGamelogPool(t *testing.T) *Pool {
	t.Helper()
	p, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertPoolsAgree streams rows into both pools and fails on any
// divergence in routing, facts, metrics or tuple counts.
func assertPoolsAgree(t *testing.T, got, want *Pool, rows []struct {
	d []string
	m []float64
}) {
	t.Helper()
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("Len = %d, want %d", g, w)
	}
	if g, w := got.Metrics(), want.Metrics(); g != w {
		t.Fatalf("Metrics = %+v, want %+v", g, w)
	}
	for _, r := range rows {
		wa, err := want.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := got.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		if ga.Shard != wa.Shard || ga.TupleID != wa.TupleID {
			t.Fatalf("routing diverged: %d:%d vs %d:%d", ga.Shard, ga.TupleID, wa.Shard, wa.TupleID)
		}
		if len(ga.Facts) != len(wa.Facts) {
			t.Fatalf("tuple %d: %d facts vs %d", wa.TupleID, len(ga.Facts), len(wa.Facts))
		}
		for i := range wa.Facts {
			if ga.Facts[i].String() != wa.Facts[i].String() {
				t.Fatalf("tuple %d fact %d: %q vs %q", wa.TupleID, i, ga.Facts[i].String(), wa.Facts[i].String())
			}
		}
	}
}

// TestPoolWALReplayOnly: a fresh pool replaying a WAL (no snapshot at
// all) must equal the pool that wrote it — appends, deletes, tombstones
// and metrics.
func TestPoolWALReplayOnly(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()

	live := newGamelogPool(t)
	w := f.openWAL(t)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	var arrs []*Arrival
	for _, r := range table1Rows[:5] {
		arr, err := live.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, arr)
		if _, err := reference.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Delete(arrs[3].Shard, arrs[3].TupleID); err != nil {
		t.Fatal(err)
	}
	if err := reference.Delete(arrs[3].Shard, arrs[3].TupleID); err != nil {
		t.Fatal(err)
	}
	// A journaled delete that failed must replay as the same failure.
	if err := live.Delete(arrs[3].Shard, arrs[3].TupleID); err == nil {
		t.Fatal("double delete accepted")
	}
	live.Close() // simulated crash: no snapshot was ever taken
	w.Close()

	w2 := f.openWAL(t)
	defer w2.Close()
	recovered := newGamelogPool(t)
	defer recovered.Close()
	var replayed int
	stats, err := recovered.ReplayWAL(w2, func(a *Arrival) { replayed++ })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 6 || stats.Failed != 1 || stats.Skipped != 0 {
		t.Fatalf("replay stats = %+v, want 6 applied / 1 failed / 0 skipped", stats)
	}
	if replayed != 5 {
		t.Fatalf("onArrival saw %d appends, want 5", replayed)
	}
	if err := recovered.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	assertPoolsAgree(t, recovered, reference, table1Rows[5:])
	// The tombstone survived replay.
	if err := recovered.Delete(arrs[3].Shard, arrs[3].TupleID); err == nil {
		t.Error("tombstone lost across WAL replay")
	}
}

// TestPoolCheckpointPlusTail: recovery = newest checkpoint + WAL tail.
// The checkpoint covers a prefix; replay must apply exactly the records
// after each shard's snapshot LSN, even after the covered segments are
// truncated away.
func TestPoolCheckpointPlusTail(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()

	live := newGamelogPool(t)
	w := f.openWAL(t)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	feed := func(p *Pool, rows []struct {
		d []string
		m []float64
	}) {
		for _, r := range rows {
			if _, err := p.Append(r.d, r.m); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(live, table1Rows[:4])
	feed(reference, table1Rows[:4])
	stats, err := live.Checkpoint(f.stateDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != 1 {
		t.Fatalf("generation = %d, want 1", stats.Generation)
	}
	if stats.TruncatableLSN == 0 {
		t.Fatal("TruncatableLSN = 0 with a WAL attached and records journaled")
	}
	if err := w.TruncateBefore(stats.TruncatableLSN + 1); err != nil {
		t.Fatal(err)
	}
	// The tail: two more appends after the checkpoint.
	feed(live, table1Rows[4:6])
	feed(reference, table1Rows[4:6])
	live.Close()
	w.Close()

	w2 := f.openWAL(t)
	defer w2.Close()
	recovered, sidecars, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if len(sidecars) != 0 {
		t.Fatalf("unexpected sidecars %v", sidecars)
	}
	rstats, err := recovered.ReplayWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Applied != 2 {
		t.Fatalf("replayed %d records after checkpoint, want exactly the 2-record tail (stats %+v)", rstats.Applied, rstats)
	}
	if err := recovered.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	assertPoolsAgree(t, recovered, reference, table1Rows[6:])
}

// TestSnapshotPlusReplayEqualsReplayOnly: the two recovery paths — newest
// snapshot + tail, and full-log replay into a fresh pool — must converge
// on identical state.
func TestSnapshotPlusReplayEqualsReplayOnly(t *testing.T) {
	f := newPoolFixture(t)
	live := newGamelogPool(t)
	w := f.openWAL(t)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	var arrs []*Arrival
	for _, r := range table1Rows[:4] {
		arr, err := live.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, arr)
	}
	if _, err := live.Checkpoint(f.stateDir, nil); err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[4:] {
		if _, err := live.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Delete(arrs[2].Shard, arrs[2].TupleID); err != nil {
		t.Fatal(err)
	}
	live.Close()
	w.Close()

	// Path A: snapshot + tail. Note the WAL was NOT truncated, so replay
	// must skip the covered prefix via the manifest's shard LSNs.
	wa := f.openWAL(t)
	defer wa.Close()
	fromSnap, _, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer fromSnap.Close()
	sstats, err := fromSnap.ReplayWAL(wa, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Skipped != 4 || sstats.Applied != 4 {
		t.Fatalf("snapshot-path replay stats = %+v, want 4 skipped / 4 applied", sstats)
	}

	// Path B: replay-only.
	fromLog := newGamelogPool(t)
	defer fromLog.Close()
	if _, err := fromLog.ReplayWAL(wa, nil); err != nil {
		t.Fatal(err)
	}

	if a, b := fromSnap.Metrics(), fromLog.Metrics(); a != b {
		t.Fatalf("metrics diverge: snapshot+tail %+v, replay-only %+v", a, b)
	}
	if a, b := fromSnap.Len(), fromLog.Len(); a != b {
		t.Fatalf("len diverges: %d vs %d", a, b)
	}
	// Both continue identically.
	extra := struct {
		d []string
		m []float64
	}{[]string{"Jordan", "Jun", "1997-98", "Bulls", "Jazz"}, []float64{45, 5, 7}}
	fa, err := fromSnap.Append(extra.d, extra.m)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fromLog.Append(extra.d, extra.m)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Shard != fb.Shard || fa.TupleID != fb.TupleID || len(fa.Facts) != len(fb.Facts) {
		t.Fatalf("post-recovery arrival diverges: %d:%d/%d facts vs %d:%d/%d facts",
			fa.Shard, fa.TupleID, len(fa.Facts), fb.Shard, fb.TupleID, len(fb.Facts))
	}
	for i := range fa.Facts {
		if fa.Facts[i].String() != fb.Facts[i].String() {
			t.Fatalf("fact %d: %q vs %q", i, fa.Facts[i].String(), fb.Facts[i].String())
		}
	}
}

// TestCheckpointSidecars: sidecar payloads commit atomically with the
// snapshot and come back from RestorePool.
func TestCheckpointSidecars(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	if _, err := p.Append(table1Rows[0].d, table1Rows[0].m); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"leaderboard": []byte(`[{"id":"0:0"}]`)}
	if _, err := p.Checkpoint(f.stateDir, func() (map[string][]byte, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	restored, sidecars, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if !reflect.DeepEqual(sidecars, want) {
		t.Fatalf("sidecars = %v, want %v", sidecars, want)
	}
}

// TestPoolAppendBatchWithWAL: the batch path journals too, and a batch is
// recoverable record-by-record.
func TestPoolAppendBatchWithWAL(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()
	live := newGamelogPool(t)
	w := f.openWAL(t)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, len(table1Rows))
	for i, r := range table1Rows {
		rows[i] = Row{Dims: r.d, Measures: r.m}
	}
	if _, err := live.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := reference.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.LastLSN != uint64(len(rows)) || st.SyncedLSN != st.LastLSN {
		t.Fatalf("wal stats = %+v, want %d journaled and synced", st, len(rows))
	}
	live.Close()
	w.Close()

	w2 := f.openWAL(t)
	defer w2.Close()
	recovered := newGamelogPool(t)
	defer recovered.Close()
	if _, err := recovered.ReplayWAL(w2, nil); err != nil {
		t.Fatal(err)
	}
	if g, want := recovered.Metrics(), reference.Metrics(); g != want {
		t.Fatalf("recovered batch metrics = %+v, want %+v", g, want)
	}
}

func TestAttachWALErrors(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	defer p.Close()
	if err := p.AttachWAL(nil); err == nil {
		t.Error("nil WAL accepted")
	}
	w := f.openWAL(t)
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(w); err == nil {
		t.Error("second AttachWAL accepted")
	}
	if _, err := p.ReplayWAL(w, nil); err == nil {
		t.Error("ReplayWAL after AttachWAL accepted — would re-journal the log into itself")
	}
}

// TestWALFailedClassification: a journal failure surfaces as
// ErrWALFailed — a daemon-side fault, distinct from request defects.
func TestWALFailedClassification(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	defer p.Close()
	w := f.openWAL(t)
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	w.Close() // the pool's journal is now gone
	_, err := p.Append(table1Rows[0].d, table1Rows[0].m)
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append over closed WAL: err %v, want ErrWALFailed", err)
	}
	if _, err := p.AppendBatch([]Row{{Dims: table1Rows[0].d, Measures: table1Rows[0].m}}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("batch over closed WAL: err %v, want ErrWALFailed", err)
	}
	if err := p.Delete(0, 0); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("delete over closed WAL: err %v, want ErrWALFailed", err)
	}
}
