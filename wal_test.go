package situfact

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// poolFixture holds the state-dir layout the WAL tests share.
type poolFixture struct {
	stateDir string
	walDir   string
}

func newPoolFixture(t *testing.T) poolFixture {
	dir := t.TempDir()
	return poolFixture{stateDir: dir, walDir: filepath.Join(dir, "wal")}
}

func (f poolFixture) openWAL(t *testing.T, p *Pool) *WAL {
	t.Helper()
	w, err := OpenWAL(p, f.walDir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newGamelogPool(t *testing.T) *Pool {
	t.Helper()
	p, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertPoolsAgree streams rows into both pools and fails on any
// divergence in routing, facts, metrics or tuple counts.
func assertPoolsAgree(t *testing.T, got, want *Pool, rows []struct {
	d []string
	m []float64
}) {
	t.Helper()
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("Len = %d, want %d", g, w)
	}
	if g, w := got.Metrics(), want.Metrics(); g != w {
		t.Fatalf("Metrics = %+v, want %+v", g, w)
	}
	for _, r := range rows {
		wa, err := want.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := got.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		if ga.Shard != wa.Shard || ga.TupleID != wa.TupleID {
			t.Fatalf("routing diverged: %d:%d vs %d:%d", ga.Shard, ga.TupleID, wa.Shard, wa.TupleID)
		}
		if len(ga.Facts) != len(wa.Facts) {
			t.Fatalf("tuple %d: %d facts vs %d", wa.TupleID, len(ga.Facts), len(wa.Facts))
		}
		for i := range wa.Facts {
			if ga.Facts[i].String() != wa.Facts[i].String() {
				t.Fatalf("tuple %d fact %d: %q vs %q", wa.TupleID, i, ga.Facts[i].String(), wa.Facts[i].String())
			}
		}
	}
}

// TestPoolWALReplayOnly: a fresh pool replaying a WAL (no snapshot at
// all) must equal the pool that wrote it — appends, deletes, tombstones
// and metrics.
func TestPoolWALReplayOnly(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()

	live := newGamelogPool(t)
	w := f.openWAL(t, live)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	var arrs []*Arrival
	for _, r := range table1Rows[:5] {
		arr, err := live.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, arr)
		if _, err := reference.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Delete(arrs[3].Shard, arrs[3].TupleID); err != nil {
		t.Fatal(err)
	}
	if err := reference.Delete(arrs[3].Shard, arrs[3].TupleID); err != nil {
		t.Fatal(err)
	}
	// A journaled delete that failed must replay as the same failure.
	if err := live.Delete(arrs[3].Shard, arrs[3].TupleID); err == nil {
		t.Fatal("double delete accepted")
	}
	live.Close() // simulated crash: no snapshot was ever taken
	w.Close()

	recovered := newGamelogPool(t)
	defer recovered.Close()
	w2 := f.openWAL(t, recovered)
	defer w2.Close()
	var replayed int
	stats, err := recovered.ReplayWAL(w2, func(a *Arrival) { replayed++ })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 6 || stats.Failed != 1 || stats.Skipped != 0 {
		t.Fatalf("replay stats = %+v, want 6 applied / 1 failed / 0 skipped", stats)
	}
	if replayed != 5 {
		t.Fatalf("onArrival saw %d appends, want 5", replayed)
	}
	if err := recovered.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	assertPoolsAgree(t, recovered, reference, table1Rows[5:])
	// The tombstone survived replay.
	if err := recovered.Delete(arrs[3].Shard, arrs[3].TupleID); err == nil {
		t.Error("tombstone lost across WAL replay")
	}
}

// TestPoolCheckpointPlusTail: recovery = newest checkpoint + WAL tail.
// The checkpoint covers a prefix; replay must apply exactly the records
// after each shard's snapshot LSN, even after the covered segments are
// truncated away.
func TestPoolCheckpointPlusTail(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()

	live := newGamelogPool(t)
	w := f.openWAL(t, live)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	feed := func(p *Pool, rows []struct {
		d []string
		m []float64
	}) {
		for _, r := range rows {
			if _, err := p.Append(r.d, r.m); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(live, table1Rows[:4])
	feed(reference, table1Rows[:4])
	stats, err := live.Checkpoint(f.stateDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != 1 {
		t.Fatalf("generation = %d, want 1", stats.Generation)
	}
	if stats.TruncatableLSN == 0 {
		t.Fatal("TruncatableLSN = 0 with a WAL attached and records journaled")
	}
	if err := w.TruncateBefore(stats.TruncatableLSN + 1); err != nil {
		t.Fatal(err)
	}
	// The tail: two more appends after the checkpoint.
	feed(live, table1Rows[4:6])
	feed(reference, table1Rows[4:6])
	live.Close()
	w.Close()

	recovered, sidecars, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	w2 := f.openWAL(t, recovered)
	defer w2.Close()
	if len(sidecars) != 0 {
		t.Fatalf("unexpected sidecars %v", sidecars)
	}
	rstats, err := recovered.ReplayWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Applied != 2 {
		t.Fatalf("replayed %d records after checkpoint, want exactly the 2-record tail (stats %+v)", rstats.Applied, rstats)
	}
	if err := recovered.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	assertPoolsAgree(t, recovered, reference, table1Rows[6:])
}

// TestSnapshotPlusReplayEqualsReplayOnly: the two recovery paths — newest
// snapshot + tail, and full-log replay into a fresh pool — must converge
// on identical state.
func TestSnapshotPlusReplayEqualsReplayOnly(t *testing.T) {
	f := newPoolFixture(t)
	live := newGamelogPool(t)
	w := f.openWAL(t, live)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	var arrs []*Arrival
	for _, r := range table1Rows[:4] {
		arr, err := live.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, arr)
	}
	if _, err := live.Checkpoint(f.stateDir, nil); err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[4:] {
		if _, err := live.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Delete(arrs[2].Shard, arrs[2].TupleID); err != nil {
		t.Fatal(err)
	}
	live.Close()
	w.Close()

	// Path A: snapshot + tail. Note the WAL was NOT truncated, so replay
	// must skip the covered prefix via the manifest's shard LSNs.
	fromSnap, _, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer fromSnap.Close()
	wa := f.openWAL(t, fromSnap)
	defer wa.Close()
	sstats, err := fromSnap.ReplayWAL(wa, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Skipped != 4 || sstats.Applied != 4 {
		t.Fatalf("snapshot-path replay stats = %+v, want 4 skipped / 4 applied", sstats)
	}

	// Path B: replay-only.
	fromLog := newGamelogPool(t)
	defer fromLog.Close()
	if _, err := fromLog.ReplayWAL(wa, nil); err != nil {
		t.Fatal(err)
	}

	if a, b := fromSnap.Metrics(), fromLog.Metrics(); a != b {
		t.Fatalf("metrics diverge: snapshot+tail %+v, replay-only %+v", a, b)
	}
	if a, b := fromSnap.Len(), fromLog.Len(); a != b {
		t.Fatalf("len diverges: %d vs %d", a, b)
	}
	// Both continue identically.
	extra := struct {
		d []string
		m []float64
	}{[]string{"Jordan", "Jun", "1997-98", "Bulls", "Jazz"}, []float64{45, 5, 7}}
	fa, err := fromSnap.Append(extra.d, extra.m)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fromLog.Append(extra.d, extra.m)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Shard != fb.Shard || fa.TupleID != fb.TupleID || len(fa.Facts) != len(fb.Facts) {
		t.Fatalf("post-recovery arrival diverges: %d:%d/%d facts vs %d:%d/%d facts",
			fa.Shard, fa.TupleID, len(fa.Facts), fb.Shard, fb.TupleID, len(fb.Facts))
	}
	for i := range fa.Facts {
		if fa.Facts[i].String() != fb.Facts[i].String() {
			t.Fatalf("fact %d: %q vs %q", i, fa.Facts[i].String(), fb.Facts[i].String())
		}
	}
}

// TestCheckpointSyncsCoveredRecords: the manifest durably pins the
// captured per-shard LSNs, so Checkpoint must fsync the WAL through them
// first. Otherwise a crash loses a buffered record whose LSN the
// manifest already claims, the reopened log reassigns that LSN to a new
// acknowledged operation, and a later recovery skips it as "already in
// the snapshot". Interval-sync mode exposes the window: appends are
// acknowledged before any fsync.
func TestCheckpointSyncsCoveredRecords(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	defer p.Close()
	w, err := OpenWAL(p, f.walDir, WALOptions{SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[:3] {
		if _, err := p.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.SyncedLSN != 0 {
		t.Fatalf("pre-checkpoint synced LSN = %d; interval mode should not have fsynced yet", st.SyncedLSN)
	}
	if _, err := p.Checkpoint(f.stateDir, nil); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.SyncedLSN < 3 {
		t.Fatalf("synced LSN = %d after checkpoint; the manifest pins LSNs up to 3, which must be durable", st.SyncedLSN)
	}
}

// TestCheckpointSidecars: sidecar payloads commit atomically with the
// snapshot and come back from RestorePool.
func TestCheckpointSidecars(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	if _, err := p.Append(table1Rows[0].d, table1Rows[0].m); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"leaderboard": []byte(`[{"id":"0:0"}]`)}
	if _, err := p.Checkpoint(f.stateDir, func() (map[string][]byte, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	restored, sidecars, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if !reflect.DeepEqual(sidecars, want) {
		t.Fatalf("sidecars = %v, want %v", sidecars, want)
	}
}

// TestPoolAppendBatchWithWAL: the batch path journals too, and a batch is
// recoverable record-by-record.
func TestPoolAppendBatchWithWAL(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()
	live := newGamelogPool(t)
	w := f.openWAL(t, live)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, len(table1Rows))
	for i, r := range table1Rows {
		rows[i] = Row{Dims: r.d, Measures: r.m}
	}
	if _, err := live.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := reference.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.LastLSN != uint64(len(rows)) || st.SyncedLSN != st.LastLSN {
		t.Fatalf("wal stats = %+v, want %d journaled and synced", st, len(rows))
	}
	live.Close()
	w.Close()

	recovered := newGamelogPool(t)
	defer recovered.Close()
	w2 := f.openWAL(t, recovered)
	defer w2.Close()
	if _, err := recovered.ReplayWAL(w2, nil); err != nil {
		t.Fatal(err)
	}
	if g, want := recovered.Metrics(), reference.Metrics(); g != want {
		t.Fatalf("recovered batch metrics = %+v, want %+v", g, want)
	}
}

func TestAttachWALErrors(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	defer p.Close()
	if err := p.AttachWAL(nil); err == nil {
		t.Error("nil WAL accepted")
	}
	w := f.openWAL(t, p)
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := p.AttachWAL(w); err == nil {
		t.Error("second AttachWAL accepted")
	}
	if _, err := p.ReplayWAL(w, nil); err == nil {
		t.Error("ReplayWAL after AttachWAL accepted — would re-journal the log into itself")
	}
}

// TestPoolDeleteUnsupportedNotJournaled: a Delete against a TopDown-family
// pool must be rejected BEFORE it reaches the journal — a RecDelete such a
// pool can never apply would make every future replay of the log fatal,
// bricking the daemon's restarts.
func TestPoolDeleteUnsupportedNotJournaled(t *testing.T) {
	f := newPoolFixture(t)
	newTopDownPool := func() *Pool {
		p, err := NewPool(gamelogSchema(t), PoolOptions{
			Shards: 3, ShardDim: "team",
			Engine: Options{Algorithm: AlgoSTopDown},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	live := newTopDownPool()
	if live.CanDelete() {
		t.Fatal("stopdown pool must not report CanDelete")
	}
	w := f.openWAL(t, live)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	arr, err := live.Append(table1Rows[0].d, table1Rows[0].m)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Delete(arr.Shard, arr.TupleID); !errors.Is(err, ErrDeleteUnsupported) {
		t.Fatalf("delete on stopdown pool: err %v, want ErrDeleteUnsupported", err)
	}
	if st := w.Stats(); st.LastLSN != 1 {
		t.Fatalf("wal holds %d records after a rejected delete, want only the 1 append", st.LastLSN)
	}
	live.Close()
	w.Close()

	// The restart the rejected delete must not poison.
	recovered := newTopDownPool()
	defer recovered.Close()
	w2 := f.openWAL(t, recovered)
	defer w2.Close()
	stats, err := recovered.ReplayWAL(w2, nil)
	if err != nil {
		t.Fatalf("replay after a rejected delete: %v", err)
	}
	if stats.Applied != 1 || stats.Failed != 0 {
		t.Fatalf("replay stats = %+v, want 1 applied / 0 failed", stats)
	}
}

// TestWALLayoutBinding: RecDelete coordinates are (shard, per-shard tuple
// id), meaningful only under the layout that assigned them — a log must
// refuse to open under a different shard count or routing dimension, and a
// WAL opened for one pool must refuse to serve another.
func TestWALLayoutBinding(t *testing.T) {
	f := newPoolFixture(t)
	live := newGamelogPool(t) // 3 shards over "team"
	w := f.openWAL(t, live)
	if err := live.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Append(table1Rows[0].d, table1Rows[0].m); err != nil {
		t.Fatal(err)
	}
	live.Close()
	w.Close()

	for _, tc := range []struct {
		name string
		opt  PoolOptions
	}{
		{"shard count", PoolOptions{Shards: 5, ShardDim: "team"}},
		{"shard dimension", PoolOptions{Shards: 3, ShardDim: "opp_team"}},
	} {
		p, err := NewPool(gamelogSchema(t), tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenWAL(p, f.walDir, WALOptions{}); err == nil {
			t.Errorf("log reopened under a different %s", tc.name)
		}
		p.Close()
	}

	// Same-process mismatch: a WAL opened for pool A must not attach to or
	// replay into a differently-laid-out pool B.
	a := newGamelogPool(t)
	defer a.Close()
	wa := f.openWAL(t, a)
	defer wa.Close()
	b, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 5, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.AttachWAL(wa); err == nil {
		t.Error("AttachWAL accepted a WAL opened under a different layout")
	}
	if _, err := b.ReplayWAL(wa, nil); err == nil {
		t.Error("ReplayWAL accepted a WAL opened under a different layout")
	}
}

// TestWALEpochMismatchResetsWatermarks: snapshot LSN watermarks are only
// meaningful against the exact log instance they were captured from. If
// the operator discards the journal (the documented way to drop it), the
// replacement log's LSNs count from 1 again — recovery must NOT skip
// them against the old manifest's high watermarks, or acknowledged rows
// vanish.
func TestWALEpochMismatchResetsWatermarks(t *testing.T) {
	f := newPoolFixture(t)
	reference := newGamelogPool(t)
	defer reference.Close()

	// Run 1: journal four rows, checkpoint (manifest pins epoch-1 LSNs).
	run1 := newGamelogPool(t)
	w1 := f.openWAL(t, run1)
	if err := run1.AttachWAL(w1); err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[:4] {
		if _, err := run1.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := run1.Checkpoint(f.stateDir, nil); err != nil {
		t.Fatal(err)
	}
	run1.Close()
	w1.Close()

	// The operator discards the journal; a fresh log gets a new epoch.
	if err := os.RemoveAll(f.walDir); err != nil {
		t.Fatal(err)
	}

	// Run 2: recover, ingest two more rows into the fresh log (LSNs 1-2),
	// then crash without checkpointing.
	run2, _, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := f.openWAL(t, run2)
	if _, err := run2.ReplayWAL(w2, nil); err != nil {
		t.Fatal(err)
	}
	if err := run2.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[4:6] {
		if _, err := run2.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	run2.Close()
	w2.Close()

	// Run 3: the manifest still pins epoch-1 LSNs up to 4, the log is
	// epoch 2 with records 1-2. Both acknowledged rows must replay.
	run3, _, err := RestorePool(gamelogSchema(t), f.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer run3.Close()
	w3 := f.openWAL(t, run3)
	defer w3.Close()
	stats, err := run3.ReplayWAL(w3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 2 || stats.Skipped != 0 {
		t.Fatalf("replay stats = %+v, want the fresh log's 2 records applied, none skipped", stats)
	}
	if err := run3.AttachWAL(w3); err != nil {
		t.Fatal(err)
	}
	assertPoolsAgree(t, run3, reference, table1Rows[6:])
}

// TestPoolRejectedRowsNotJournaled: rows the pool must reject — wrong
// measure count, or an encoding over the WAL's per-record cap — are
// refused BEFORE journaling (the log must hold no garbage records), and
// the oversize rejection is ErrRowTooLarge, a request defect distinct
// from the retryable ErrWALFailed.
func TestPoolRejectedRowsNotJournaled(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	defer p.Close()
	w := f.openWAL(t, p)
	defer w.Close()
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(table1Rows[0].d, []float64{1, 2}); err == nil {
		t.Error("short measure row accepted")
	}
	big := append([]string{strings.Repeat("x", 16<<20)}, table1Rows[0].d[1:]...)
	if _, err := p.Append(big, table1Rows[0].m); !errors.Is(err, ErrRowTooLarge) || errors.Is(err, ErrWALFailed) {
		t.Errorf("oversized append: err %v, want ErrRowTooLarge and not ErrWALFailed", err)
	}
	if _, err := p.AppendBatch([]Row{{Dims: big, Measures: table1Rows[0].m}}); !errors.Is(err, ErrRowTooLarge) {
		t.Errorf("oversized batch row: err %v, want ErrRowTooLarge", err)
	}
	if st := w.Stats(); st.LastLSN != 0 {
		t.Fatalf("wal holds %d records after only rejected rows", st.LastLSN)
	}
	// The rejections left the WAL healthy.
	if _, err := p.Append(table1Rows[0].d, table1Rows[0].m); err != nil {
		t.Fatalf("append after rejections: %v", err)
	}
}

// TestWALFailedClassification: a journal failure surfaces as
// ErrWALFailed — a daemon-side fault, distinct from request defects.
func TestWALFailedClassification(t *testing.T) {
	f := newPoolFixture(t)
	p := newGamelogPool(t)
	defer p.Close()
	w := f.openWAL(t, p)
	if err := p.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	w.Close() // the pool's journal is now gone
	_, err := p.Append(table1Rows[0].d, table1Rows[0].m)
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append over closed WAL: err %v, want ErrWALFailed", err)
	}
	if _, err := p.AppendBatch([]Row{{Dims: table1Rows[0].d, Measures: table1Rows[0].m}}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("batch over closed WAL: err %v, want ErrWALFailed", err)
	}
	if err := p.Delete(0, 0); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("delete over closed WAL: err %v, want ErrWALFailed", err)
	}
}
