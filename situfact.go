package situfact

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/factindex"
	"repro/internal/prominence"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// Sentinel errors for Delete/Update outcomes; test with errors.Is. The
// returned errors wrap these with the offending shard/tuple in the text.
var (
	// ErrNotFound reports a shard or tuple id that does not exist.
	ErrNotFound = errors.New("not found")
	// ErrAlreadyDeleted reports a tuple that was already retracted.
	ErrAlreadyDeleted = errors.New("already deleted")
	// ErrDeleteUnsupported reports a Delete against an engine whose
	// algorithm cannot retract tuples (only the BottomUp family can).
	ErrDeleteUnsupported = errors.New("delete unsupported")
)

// Direction selects the preferred ordering of a measure attribute.
type Direction = relation.Direction

// Measure direction values.
const (
	LargerBetter  = relation.LargerBetter
	SmallerBetter = relation.SmallerBetter
)

// Algorithm names a discovery algorithm from the paper.
type Algorithm string

// The available algorithms. STopDown and SBottomUp share computation
// across measure subspaces (§V-C); the baselines exist mainly for
// benchmarking. The Parallel* drivers partition the measure subspaces
// across Options.Workers goroutines running the non-shared lattice
// algorithms over one shared striped-lock store — an engineering
// extension beyond the single-threaded paper. Algorithm names resolve
// through the core registry (core.Register), so extensions register
// themselves without touching this package.
const (
	AlgoBruteForce       Algorithm = "bruteforce"
	AlgoBaselineSeq      Algorithm = "baselineseq"
	AlgoBaselineIdx      Algorithm = "baselineidx"
	AlgoCCSC             Algorithm = "ccsc"
	AlgoBottomUp         Algorithm = "bottomup"
	AlgoTopDown          Algorithm = "topdown"
	AlgoSBottomUp        Algorithm = "sbottomup"
	AlgoSTopDown         Algorithm = "stopdown"
	AlgoParallelTopDown  Algorithm = "parallel-topdown"
	AlgoParallelBottomUp Algorithm = "parallel-bottomup"
)

// Algorithms returns the names of every registered algorithm, sorted.
func Algorithms() []string { return core.Algorithms() }

// Options configures an Engine. The zero value selects SBottomUp (the
// paper's fastest in-memory algorithm) with prominence tracking, no caps,
// and in-memory storage.
type Options struct {
	// Algorithm selects the discovery algorithm; empty = SBottomUp.
	Algorithm Algorithm
	// MaxBoundDims is the paper's d̂: constraints may bind at most this
	// many dimension attributes. 0 or negative = no cap.
	MaxBoundDims int
	// MaxMeasureDims is the paper's m̂: measure subspaces contain at most
	// this many attributes. 0 or negative = no cap.
	MaxMeasureDims int
	// StoreDir, when non-empty, selects the file-backed µ(C,M) store
	// rooted at this directory (the paper's FS* variants). Only the
	// lattice algorithms use a store.
	StoreDir string
	// DisableProminence turns off context counting and fact scoring;
	// Arrival.Facts then carries prominence 0. Prominence requires a
	// lattice algorithm (BottomUp/TopDown family).
	DisableProminence bool
	// SkybandK ≥ 2 switches the engine to contextual k-skyband discovery
	// (a fact needs fewer than k dominators instead of none) — an
	// extension beyond the paper; see core.Skyband. It overrides
	// Algorithm and implies DisableProminence.
	SkybandK int
	// Workers is the goroutine count of the Parallel* algorithms; 0 or
	// negative selects GOMAXPROCS. Sequential algorithms ignore it.
	Workers int
}

// Condition is one bound attribute of a fact's context, e.g. team=Celtics.
type Condition struct {
	Attr  string
	Value string
}

// Fact is one discovered situational fact, decoded for human consumption.
type Fact struct {
	// Conditions is the conjunctive context constraint; empty means the
	// whole table.
	Conditions []Condition
	// Measures names the attributes of the measure subspace.
	Measures []string
	// ContextSize is |σ_C(R)| including the new tuple (0 when prominence
	// tracking is disabled).
	ContextSize int64
	// SkylineSize is |λ_M(σ_C(R))| including the new tuple (0 when
	// prominence tracking is disabled).
	SkylineSize int
	// Prominence is ContextSize/SkylineSize (0 when tracking is disabled).
	Prominence float64
}

// String renders the fact in the paper's notation.
func (f Fact) String() string {
	var b strings.Builder
	if len(f.Conditions) == 0 {
		b.WriteString("⊤")
	}
	for i, c := range f.Conditions {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		fmt.Fprintf(&b, "%s=%s", c.Attr, c.Value)
	}
	b.WriteString(" | {")
	b.WriteString(strings.Join(f.Measures, ", "))
	b.WriteString("}")
	if f.SkylineSize > 0 {
		fmt.Fprintf(&b, " (prominence %.3g = %d/%d)", f.Prominence, f.ContextSize, f.SkylineSize)
	}
	return b.String()
}

// Arrival reports the outcome of appending one tuple.
type Arrival struct {
	// TupleID is the arrival position (0-based). For Pool arrivals it is
	// the position within the owning shard's substream.
	TupleID int64
	// Shard is the index of the pool shard that processed the arrival; 0
	// for a standalone Engine.
	Shard int
	// Facts are the situational facts pertinent to this arrival, sorted
	// by descending prominence when tracking is enabled.
	Facts []Fact
}

// Top returns the k highest-prominence facts.
func (a *Arrival) Top(k int) []Fact {
	if k <= 0 || k >= len(a.Facts) {
		return a.Facts
	}
	return a.Facts[:k]
}

// Prominent returns the facts attaining the arrival's maximum prominence,
// provided it is at least tau — the paper's §VII definition. It returns
// nil when prominence tracking is disabled.
func (a *Arrival) Prominent(tau float64) []Fact {
	if len(a.Facts) == 0 || a.Facts[0].SkylineSize == 0 {
		return nil
	}
	best := a.Facts[0].Prominence
	if best < tau {
		return nil
	}
	out := make([]Fact, 0, 4)
	for _, f := range a.Facts {
		if f.Prominence != best {
			break
		}
		out = append(out, f)
	}
	return out
}

// Metrics is a snapshot of the engine's work counters.
type Metrics struct {
	// Tuples, Comparisons, Traversed, Facts mirror core.Metrics.
	Tuples, Comparisons, Traversed, Facts int64
	// StoredTuples and Cells describe the µ store (Fig 10b's quantity).
	StoredTuples, Cells int64
	// Reads and Writes count store I/O operations (file store only does
	// real I/O).
	Reads, Writes int64
}

// Add accumulates o into m field-by-field; the one place the counter list
// is spelled out for merging (Pool.Metrics, per-shard monitoring views).
func (m *Metrics) Add(o Metrics) {
	m.Tuples += o.Tuples
	m.Comparisons += o.Comparisons
	m.Traversed += o.Traversed
	m.Facts += o.Facts
	m.StoredTuples += o.StoredTuples
	m.Cells += o.Cells
	m.Reads += o.Reads
	m.Writes += o.Writes
}

// Engine is the streaming discovery engine. It is not safe for concurrent
// use; arrivals are inherently ordered.
type Engine struct {
	schema  *relation.Schema
	table   *relation.Table
	disc    core.Discoverer
	sizer   core.SkylineSizer
	counter *core.ContextCounter
	fileSt  *store.File
	deleted map[int64]bool

	// fidx is the incremental fact index over the engine's µ store: the
	// live cell coordinates in (constraint key, subspace mask) order,
	// maintained through the store's cell-lifecycle observer so EVERY
	// mutation path — ingest, delete, WAL replay, snapshot-restore cell
	// replay, follower tail apply — keeps it current without its own hook.
	// Nil for engines without an in-memory lattice store (which cannot
	// serve queries anyway).
	fidx *factindex.Index

	// construction parameters retained for snapshots
	algorithm  Algorithm
	maxBound   int
	maxMeasure int
}

// New creates an engine over the schema.
func New(schema *Schema, opt Options) (*Engine, error) {
	if schema == nil || schema.rs == nil {
		return nil, fmt.Errorf("situfact: nil schema")
	}
	rs := schema.rs
	maxBound := opt.MaxBoundDims
	if maxBound <= 0 {
		maxBound = -1
	}
	maxMeasure := opt.MaxMeasureDims
	if maxMeasure <= 0 {
		maxMeasure = -1
	}
	cfg := core.Config{Schema: rs, MaxBound: maxBound, MaxMeasure: maxMeasure}
	algo := opt.Algorithm
	if algo == "" {
		algo = AlgoSBottomUp
	}
	if opt.StoreDir != "" && (algo == AlgoParallelTopDown || algo == AlgoParallelBottomUp) {
		// The parallel drivers own a shared in-memory sharded store; fail
		// before creating the on-disk directory.
		return nil, fmt.Errorf("situfact: %s does not support StoreDir (parallel workers share an in-memory store)", algo)
	}
	var fileSt *store.File
	if opt.StoreDir != "" {
		fs, err := store.NewFile(opt.StoreDir, rs)
		if err != nil {
			return nil, err
		}
		cfg.Store = fs
		fileSt = fs
	}
	// Every error return below this point must release the file store.
	fail := func(err error) (*Engine, error) {
		if fileSt != nil {
			fileSt.Close()
		}
		return nil, err
	}
	cfg.Workers = opt.Workers
	if opt.SkybandK >= 2 {
		sb, err := core.NewSkyband(cfg, opt.SkybandK)
		if err != nil {
			return fail(err)
		}
		return &Engine{schema: rs, table: relation.NewTable(rs), disc: sb, fileSt: fileSt}, nil
	}
	disc, err := core.NewDiscoverer(string(algo), cfg)
	if err != nil {
		// The registry error is re-prefixed here; drop its internal
		// package prefix so callers see one coherent message.
		return fail(fmt.Errorf("situfact: %s", strings.TrimPrefix(err.Error(), "core: ")))
	}
	// The lattice families (and the parallel drivers over them) can size
	// contextual skylines; the baselines cannot.
	sizer, _ := disc.(core.SkylineSizer)
	eng := &Engine{
		schema:     rs,
		table:      relation.NewTable(rs),
		disc:       disc,
		fileSt:     fileSt,
		algorithm:  algo,
		maxBound:   maxBound,
		maxMeasure: maxMeasure,
	}
	if !opt.DisableProminence {
		if sizer == nil {
			return fail(fmt.Errorf("situfact: prominence tracking requires a lattice algorithm (BottomUp/TopDown family); %q has no µ store", algo))
		}
		eng.sizer = sizer
		eng.counter = core.NewContextCounter(rs.NumDims(), maxBound)
	}
	if mem, ok := memoryStoreOf(disc); ok {
		idx := factindex.New()
		mem.SetObserver(func(k store.CellKey, created bool) {
			if created {
				idx.Insert(string(k.C), uint32(k.M))
			} else {
				idx.Delete(string(k.C), uint32(k.M))
			}
		})
		eng.fidx = idx
	}
	return eng, nil
}

// Append processes one arriving tuple: dims are the dimension values in
// schema order, measures the measure values in schema order. It returns
// the arrival's situational facts.
func (e *Engine) Append(dims []string, measures []float64) (*Arrival, error) {
	tu, err := e.table.Append(dims, measures)
	if err != nil {
		return nil, err
	}
	raw := e.disc.Process(tu)
	arr := &Arrival{TupleID: tu.ID}
	if e.counter != nil {
		e.counter.Observe(tu)
		scored := prominence.Score(raw, e.counter, e.sizer)
		arr.Facts = make([]Fact, 0, len(scored))
		for _, sf := range scored {
			f := e.decode(sf.Fact)
			f.ContextSize = sf.ContextSize
			f.SkylineSize = sf.SkylineSize
			f.Prominence = sf.Prominence
			arr.Facts = append(arr.Facts, f)
		}
		return arr, nil
	}
	arr.Facts = make([]Fact, 0, len(raw))
	for _, rf := range raw {
		arr.Facts = append(arr.Facts, e.decode(rf))
	}
	sort.Slice(arr.Facts, func(i, j int) bool {
		return arr.Facts[i].String() < arr.Facts[j].String()
	})
	return arr, nil
}

func (e *Engine) decode(rf core.Fact) Fact {
	f := Fact{Measures: subspace.Names(rf.Subspace, e.schema)}
	for i, v := range rf.Constraint.Vals {
		if v < 0 {
			continue
		}
		f.Conditions = append(f.Conditions, Condition{
			Attr:  e.schema.Dim(i).Name,
			Value: e.table.Dict().Decode(i, v),
		})
	}
	return f
}

// Delete retracts a previously appended tuple by ID — the paper's §VIII
// "deletion and update of data" extension. The µ store is repaired
// exactly (tuples that the deleted one was suppressing re-enter their
// contextual skylines) and prominence counters are decremented.
//
// Deletion is supported by the BottomUp family — including the parallel
// driver over BottomUp workers — only (Invariant 1 makes local repair
// possible); engines running other algorithms return an error. An update
// is a Delete followed by an Append.
func (e *Engine) Delete(tupleID int64) error {
	if !e.CanDelete() {
		return fmt.Errorf("situfact: Delete requires the BottomUp family; engine runs %s: %w",
			e.disc.Name(), ErrDeleteUnsupported)
	}
	bu := e.disc.(deleter) // CanDelete just proved the assertion holds
	if tupleID < 0 || tupleID >= int64(e.table.Len()) {
		return fmt.Errorf("situfact: Delete: tuple %d: %w", tupleID, ErrNotFound)
	}
	if e.deleted[tupleID] {
		return fmt.Errorf("situfact: Delete: tuple %d: %w", tupleID, ErrAlreadyDeleted)
	}
	tu := e.table.At(int(tupleID))
	bu.Delete(tu, e.alive())
	if e.counter != nil {
		e.counter.Unobserve(tu)
	}
	if e.deleted == nil {
		e.deleted = make(map[int64]bool)
	}
	e.deleted[tupleID] = true
	return nil
}

// CanDelete reports whether Delete supports this engine's algorithm
// (the BottomUp family, including the parallel driver over BottomUp
// workers).
func (e *Engine) CanDelete() bool {
	bu, ok := e.disc.(deleter)
	return ok && bu.CanDelete()
}

// Update retracts tuple tupleID and appends its replacement, returning
// the replacement's arrival. Like Delete it requires the BottomUp family.
func (e *Engine) Update(tupleID int64, dims []string, measures []float64) (*Arrival, error) {
	if err := e.Delete(tupleID); err != nil {
		return nil, err
	}
	return e.Append(dims, measures)
}

// deleter is the deletion capability the engine discovers on its
// algorithm: core.BottomUp and core.Parallel both satisfy it, the latter
// reporting CanDelete only over BottomUp workers.
type deleter interface {
	CanDelete() bool
	Delete(u *relation.Tuple, alive []*relation.Tuple)
}

// alive returns the non-deleted tuples.
func (e *Engine) alive() []*relation.Tuple {
	if len(e.deleted) == 0 {
		return e.table.Tuples()
	}
	out := make([]*relation.Tuple, 0, e.table.Len()-len(e.deleted))
	for _, tu := range e.table.Tuples() {
		if !e.deleted[tu.ID] {
			out = append(out, tu)
		}
	}
	return out
}

// Len returns the number of live (appended and not deleted) tuples.
func (e *Engine) Len() int { return e.table.Len() - len(e.deleted) }

// Algorithm returns the name of the underlying algorithm.
func (e *Engine) Algorithm() string { return e.disc.Name() }

// Workers returns the number of discovery goroutines one Process call
// runs: the Parallel* engines' (possibly clamped) worker count, 1 for
// every single-threaded algorithm.
func (e *Engine) Workers() int {
	if p, ok := e.disc.(*core.Parallel); ok {
		return p.Workers()
	}
	return 1
}

// Metrics returns a snapshot of the work counters.
func (e *Engine) Metrics() Metrics {
	m := e.disc.Metrics()
	s := e.disc.StoreStats()
	return Metrics{
		Tuples: m.Tuples, Comparisons: m.Comparisons,
		Traversed: m.Traversed, Facts: m.Facts,
		StoredTuples: s.StoredTuples, Cells: s.Cells,
		Reads: s.Reads, Writes: s.Writes,
	}
}

// Close releases the engine's resources (file-store handles).
func (e *Engine) Close() error { return e.disc.Close() }

// DestroyStore removes the on-disk store directory of a file-backed
// engine; it is a no-op for in-memory engines.
func (e *Engine) DestroyStore() error {
	if e.fileSt == nil {
		return nil
	}
	return e.fileSt.Destroy()
}
