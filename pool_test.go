package situfact

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func poolSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchemaBuilder("feed").
		Dimension("team").Dimension("player").Dimension("month").
		Measure("points", LargerBetter).
		Measure("assists", LargerBetter).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var poolTeams = []string{"Celtics", "Lakers", "Bulls", "Heat", "Pacers", "Suns"}

// poolRows builds a deterministic multi-team feed.
func poolRows(n int) []Row {
	rng := rand.New(rand.NewSource(7))
	players := []string{"p1", "p2", "p3", "p4", "p5"}
	months := []string{"Jan", "Feb", "Mar"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Dims: []string{
				poolTeams[rng.Intn(len(poolTeams))],
				players[rng.Intn(len(players))],
				months[rng.Intn(len(months))],
			},
			Measures: []float64{float64(rng.Intn(40)), float64(rng.Intn(20))},
		}
	}
	return rows
}

func factsEqual(t *testing.T, label string, want, got *Arrival) {
	t.Helper()
	if want.TupleID != got.TupleID {
		t.Fatalf("%s: TupleID %d != solo %d", label, got.TupleID, want.TupleID)
	}
	if len(want.Facts) != len(got.Facts) {
		t.Fatalf("%s: %d facts, solo engine has %d", label, len(got.Facts), len(want.Facts))
	}
	for i := range want.Facts {
		w, g := want.Facts[i], got.Facts[i]
		if w.String() != g.String() || w.ContextSize != g.ContextSize ||
			w.SkylineSize != g.SkylineSize || w.Prominence != g.Prominence {
			t.Fatalf("%s: fact %d differs: %s vs solo %s", label, i, g, w)
		}
	}
}

// soloArrivals replays each shard's substream through a standalone engine
// and returns the arrival each row would produce there.
func soloArrivals(t *testing.T, p *Pool, rows []Row) []*Arrival {
	t.Helper()
	out := make([]*Arrival, len(rows))
	for s := 0; s < p.Shards(); s++ {
		eng, err := New(poolSchema(t), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		for i, r := range rows {
			if p.ShardFor(r.Dims[0]) != s {
				continue
			}
			arr, err := eng.Append(r.Dims, r.Measures)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = arr
		}
	}
	return out
}

// TestPoolShardEquivalence is the acceptance property of the sharded
// front-end: for every shard's substream, the pool produces the exact
// facts (conditions, measures, prominence numerator and denominator) a
// standalone Engine produces over that substream — via both Append and
// AppendBatch.
func TestPoolShardEquivalence(t *testing.T) {
	rows := poolRows(150)
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	solo := soloArrivals(t, p, rows)

	for i, r := range rows {
		arr, err := p.Append(r.Dims, r.Measures)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.ShardFor(r.Dims[0]); arr.Shard != want {
			t.Fatalf("row %d routed to shard %d, want %d", i, arr.Shard, want)
		}
		factsEqual(t, fmt.Sprintf("row %d (Append)", i), solo[i], arr)
	}
	if p.Len() != len(rows) {
		t.Errorf("Len = %d, want %d", p.Len(), len(rows))
	}

	pb, err := NewPool(poolSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	var batched []*Arrival
	for lo := 0; lo < len(rows); lo += 32 {
		hi := min(lo+32, len(rows))
		arrs, err := pb.AppendBatch(rows[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		batched = append(batched, arrs...)
	}
	for i := range rows {
		factsEqual(t, fmt.Sprintf("row %d (AppendBatch)", i), solo[i], batched[i])
	}
}

// TestPoolRoutingDeterminism pins the routing function: same key → same
// shard within a pool, across pools, and across runs/processes (FNV-1a is
// specified, so the expected indices are hard-coded).
func TestPoolRoutingDeterminism(t *testing.T) {
	p1, err := NewPool(poolSchema(t), PoolOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := NewPool(poolSchema(t), PoolOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, v := range poolTeams {
		if p1.ShardFor(v) != p2.ShardFor(v) {
			t.Errorf("%s routes to %d and %d in twin pools", v, p1.ShardFor(v), p2.ShardFor(v))
		}
	}
	// FNV-1a(32) of the team names, mod 3: stable across runs by spec.
	want := map[string]int{"Celtics": 2, "Lakers": 1, "Bulls": 2, "Heat": 2, "Pacers": 1, "Suns": 2}
	for v, s := range want {
		if got := p1.ShardFor(v); got != s {
			t.Errorf("ShardFor(%s) = %d, want %d", v, got, s)
		}
	}
	// Arrivals must carry the routing decision.
	arr, err := p1.Append([]string{"Lakers", "p1", "Jan"}, []float64{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if arr.Shard != 1 {
		t.Errorf("Lakers arrival on shard %d, want 1", arr.Shard)
	}
}

// TestPoolConcurrentAppend drives one pool from many goroutines; under
// -race this exercises the per-shard locking. Totals must be exact.
func TestPoolConcurrentAppend(t *testing.T) {
	p, err := NewPool(poolSchema(t), PoolOptions{Shards: 4, ShardDim: "team"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rows := poolRows(200)
	const writers = 8
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(rows); i += writers {
				if _, err := p.Append(rows[i].Dims, rows[i].Measures); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Len() != len(rows) {
		t.Errorf("Len = %d, want %d", p.Len(), len(rows))
	}
	m := p.Metrics()
	if m.Tuples != int64(len(rows)) {
		t.Errorf("merged Tuples = %d, want %d", m.Tuples, len(rows))
	}
	if m.Facts == 0 || m.StoredTuples == 0 {
		t.Errorf("implausible merged metrics: %+v", m)
	}
}

func TestPoolOptionErrors(t *testing.T) {
	if _, err := NewPool(nil, PoolOptions{}); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewPool(poolSchema(t), PoolOptions{ShardDim: "nope"}); err == nil {
		t.Error("unknown shard dimension accepted")
	}
	if _, err := NewPool(poolSchema(t), PoolOptions{Engine: Options{Algorithm: "nope"}}); err == nil {
		t.Error("unknown engine algorithm accepted")
	}
	p, err := NewPool(poolSchema(t), PoolOptions{}) // defaults: GOMAXPROCS shards, first dim
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Shards() < 1 {
		t.Errorf("default Shards = %d", p.Shards())
	}
	if p.ShardDim() != "team" {
		t.Errorf("default ShardDim = %q, want first dimension", p.ShardDim())
	}
	if _, err := p.Append([]string{"too", "few"}, []float64{1, 2}); err == nil {
		t.Error("bad dimension arity accepted")
	}
	if _, err := p.AppendBatch([]Row{{Dims: []string{"a", "b", "c"}, Measures: []float64{1}}}); err == nil {
		t.Error("bad batch row arity accepted")
	}
	if err := p.DestroyStore(); err != nil {
		t.Errorf("in-memory DestroyStore: %v", err)
	}
}

// TestPoolFileStore exercises the per-shard StoreDir fan-out.
func TestPoolFileStore(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPool(poolSchema(t), PoolOptions{
		Shards:   2,
		ShardDim: "team",
		Engine:   Options{Algorithm: AlgoSTopDown, StoreDir: dir + "/cells"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppendBatch(poolRows(20)); err != nil {
		t.Fatal(err)
	}
	if p.Metrics().Writes == 0 {
		t.Error("file-backed pool did no writes")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.DestroyStore(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolParallelEngines stacks both concurrency layers: a sharded pool
// whose engines are themselves parallel drivers.
func TestPoolParallelEngines(t *testing.T) {
	p, err := NewPool(poolSchema(t), PoolOptions{
		Shards:   2,
		ShardDim: "team",
		Engine:   Options{Algorithm: AlgoParallelBottomUp, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rows := poolRows(60)
	arrs, err := p.AppendBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	solo := soloArrivals(t, p, rows)
	for i := range rows {
		if len(arrs[i].Facts) != len(solo[i].Facts) {
			t.Fatalf("row %d: %d facts via parallel engines, solo has %d",
				i, len(arrs[i].Facts), len(solo[i].Facts))
		}
	}
	if !strings.Contains(p.Algorithm(), "Parallel") {
		t.Errorf("pool algorithm = %q", p.Algorithm())
	}
}
