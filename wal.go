package situfact

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/persist"
)

// Write-ahead logging: with a WAL attached, a Pool journals every
// Append/AppendBatch/Delete before applying it, so a crash between
// snapshots loses nothing acknowledged. Recovery is snapshot + tail:
// restore the newest checkpoint (RestorePool), replay the log's uncovered
// records (Pool.ReplayWAL), then attach the WAL for live journaling
// (Pool.AttachWAL). Periodic Pool.Checkpoint calls bound the tail and let
// WAL.TruncateBefore reclaim covered segments.
//
// Durability contract: with WALOptions.SyncInterval zero, an operation
// returns only after its record is fsynced — concurrent operations
// group-commit into shared fsyncs. With a positive interval, operations
// return as soon as the record is buffered and a background loop fsyncs
// on the interval: faster, but a crash can lose up to one interval of
// acknowledged records. WALStats reports the unsynced lag either way.

// ErrWALFailed marks an ingest failure caused by the write-ahead log —
// a failed journal write or durability wait — rather than by the request
// itself. Callers mapping errors onto a wire protocol should report it
// as a server-side fault (retryable), not a request defect.
var ErrWALFailed = errors.New("wal failure")

// ErrRowTooLarge reports a row whose journaled encoding would exceed the
// WAL's per-record cap (16 MiB) — a request defect, not a log fault, so
// unlike ErrWALFailed it is not retryable. Only journaled ingest enforces
// the cap; pools without a WAL accept rows of any size.
var ErrRowTooLarge = errors.New("row too large to journal")

// WALOptions configures OpenWAL.
type WALOptions struct {
	// SegmentBytes is the log's segment-rotation threshold; 0 = 64 MiB.
	SegmentBytes int64
	// SyncInterval selects the durability mode: 0 fsyncs before every
	// acknowledgement (group-committed); > 0 fsyncs on this interval in
	// the background and acknowledges immediately.
	SyncInterval time.Duration
	// FS is the filesystem seam segment I/O goes through; nil = the real
	// one. Fault tests inject a faultfs.Faulty here (see internal/faultfs).
	FS faultfs.FS
}

// WAL is an open write-ahead log, bound to one pool identity (schema and
// shard layout). It is safe for concurrent use.
type WAL struct {
	w        *persist.WAL
	meta     string // the pool identity the log was opened under
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// walMeta is the identity a log is bound to. Beyond the schema it covers
// the shard layout: RecDelete records name tuples by (shard, per-shard
// tuple id), coordinates that are only meaningful under the shard count
// and routing dimension that assigned them.
func (p *Pool) walMeta() string {
	return fmt.Sprintf("%s|shards=%d|shard-dim=%s",
		schemaSig(p.schema.rs), len(p.shards), p.ShardDim())
}

// OpenWAL opens (or creates) the log rooted at dir, repairing a torn
// final record left by a crash. The log is bound to the pool's identity —
// schema, shard count and shard dimension: reopening it under a different
// one fails rather than replaying rows into the wrong relation or deletes
// against the wrong shard coordinates.
func OpenWAL(pool *Pool, dir string, opt WALOptions) (*WAL, error) {
	if pool == nil {
		return nil, fmt.Errorf("situfact: nil pool")
	}
	meta := pool.walMeta()
	pw, err := persist.OpenWAL(dir, persist.WALOptions{
		SegmentBytes: opt.SegmentBytes,
		Meta:         meta,
		FS:           opt.FS,
	})
	if err != nil {
		return nil, fmt.Errorf("situfact: %w", err)
	}
	w := &WAL{w: pw, meta: meta, interval: opt.SyncInterval}
	if opt.SyncInterval > 0 {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go func() {
			defer close(w.done)
			t := time.NewTicker(opt.SyncInterval)
			defer t.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-t.C:
					w.w.Sync() // sticky failure surfaces on the next operation
				}
			}
		}()
	}
	return w, nil
}

// commit makes lsn durable under the log's durability mode: a blocking
// (group-committed) fsync wait by default, a no-op in interval mode.
func (w *WAL) commit(lsn uint64) error {
	if w.interval > 0 {
		return nil
	}
	return w.w.WaitSync(lsn)
}

// Sync forces every journaled record to disk, regardless of mode.
func (w *WAL) Sync() error { return w.w.Sync() }

// Err returns the log's sticky failure (a poisoned write buffer or a
// failed fsync), or nil while healthy. A non-nil Err means every ingest
// operation is failing with ErrWALFailed: the degraded state Repair (or
// a restart) clears.
func (w *WAL) Err() error { return w.w.Err() }

// Repair attempts to clear a sticky log failure in place: truncate the
// torn tail the fault left, burn the destroyed (never-acknowledged)
// records' LSNs with noop frames so the log stays dense, and resume
// journaling. It returns how many records were lost to the fault — all
// unacknowledged — or an error when the fault still holds (retry later)
// or the tail is genuinely corrupt. See persist.WAL.Repair.
func (w *WAL) Repair() (lost uint64, err error) { return w.w.Repair() }

// WALStats is a monitoring snapshot of the log; see persist.WALStats.
type WALStats = persist.WALStats

// Stats returns a monitoring snapshot: last and synced LSN (their
// difference is the unsynced-record lag) and the live segment count.
func (w *WAL) Stats() WALStats { return w.w.Stats() }

// TruncateBefore removes log segments fully covered by a checkpoint —
// every record with LSN < lsn. Call it with CheckpointStats.TruncatableLSN+1
// after a successful Checkpoint.
func (w *WAL) TruncateBefore(lsn uint64) error { return w.w.TruncateBefore(lsn) }

// Close stops the background syncer (if any), flushes and closes the log.
func (w *WAL) Close() error {
	w.once.Do(func() {
		if w.stop != nil {
			close(w.stop)
			<-w.done
		}
	})
	return w.w.Close()
}

// AttachWAL binds the pool to an open log: every subsequent
// Append/AppendBatch/Delete is journaled before it is applied. Attach
// after recovery (ReplayWAL) and before serving traffic; attaching while
// arrivals are in flight is a race, and a pool accepts only one WAL.
func (p *Pool) AttachWAL(w *WAL) error {
	if w == nil {
		return fmt.Errorf("situfact: nil WAL")
	}
	if p.wal != nil {
		return fmt.Errorf("situfact: pool already has a WAL attached")
	}
	if w.meta != p.walMeta() {
		return fmt.Errorf("situfact: WAL was opened under %q, not this pool's %q", w.meta, p.walMeta())
	}
	p.adoptWAL(w)
	p.wal = w
	return nil
}

// adoptWAL reconciles the pool's per-shard LSN watermarks with the log
// instance it is about to replay or journal into. Watermarks restored
// from a snapshot are only meaningful against the exact log they were
// captured from; against any other instance (the manifest predates the
// log, or the operator replaced the log) the new log's LSNs count from 1
// again, and a stale high watermark would silently skip them as "already
// covered". So on an epoch mismatch the watermarks are cleared — every
// record of the new log replays, which is exactly right for a log that
// started after the snapshot's state was already in place.
func (p *Pool) adoptWAL(w *WAL) {
	if p.walEpoch == w.w.Epoch() {
		return
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.lastLSN = 0
		s.mu.Unlock()
	}
	p.walEpoch = w.w.Epoch()
}

// ReplayStats reports what a ReplayWAL pass did.
type ReplayStats struct {
	// Records is the total number of journaled records read.
	Records int
	// Applied counts records applied to a shard (appends + deletes).
	Applied int
	// Skipped counts records already reflected in the restored snapshot.
	Skipped int
	// Failed counts records whose re-application failed exactly as the
	// original application did (e.g. a journaled delete of an unknown
	// tuple) — deterministic re-failures, not corruption.
	Failed int
	// LastLSN is the highest LSN observed.
	LastLSN uint64
}

// ReplayWAL applies the log's records that are not yet reflected in the
// pool — for a pool restored by RestorePool, exactly the tail after its
// checkpoint; for a fresh pool, the whole log. onArrival, when non-nil,
// observes every replayed append's arrival (facts included), letting a
// daemon rebuild derived state such as its leaderboard. Call before
// AttachWAL, before serving traffic.
func (p *Pool) ReplayWAL(w *WAL, onArrival func(*Arrival)) (ReplayStats, error) {
	if w == nil {
		return ReplayStats{}, fmt.Errorf("situfact: nil WAL")
	}
	if p.wal != nil {
		return ReplayStats{}, fmt.Errorf("situfact: replay after AttachWAL would re-journal the log into itself")
	}
	if p.pipe.Load() != nil {
		return ReplayStats{}, fmt.Errorf("situfact: replay with the ingest pipeline running would race its writers; replay before StartPipeline")
	}
	if w.meta != p.walMeta() {
		return ReplayStats{}, fmt.Errorf("situfact: WAL was opened under %q, not this pool's %q", w.meta, p.walMeta())
	}
	p.adoptWAL(w)
	var stats ReplayStats
	err := w.w.Replay(func(rec persist.Record) error {
		return p.applyRecord(rec, &stats, onArrival)
	})
	if err != nil {
		return stats, err
	}
	return stats, nil
}

// applyRecord applies one journaled record to the owning shard, skipping
// records at or below the shard's watermark — the shared re-application
// step behind crash recovery (ReplayWAL) and follower catch-up
// (ApplyTail). Each record takes its shard's write lock for exactly the
// journal-order apply a live ingest would.
func (p *Pool) applyRecord(rec persist.Record, stats *ReplayStats, onArrival func(*Arrival)) error {
	stats.Records++
	stats.LastLSN = rec.LSN
	switch rec.Type {
	case persist.RecAppend:
		if len(rec.Dims) != p.schema.rs.NumDims() {
			return fmt.Errorf("situfact: wal replay: record %d has %d dimension values for schema %s",
				rec.LSN, len(rec.Dims), p.schema.rs)
		}
		shard := p.ShardFor(rec.Dims[p.shardDim])
		s := &p.shards[shard]
		s.mu.Lock()
		if rec.LSN <= s.lastLSN {
			s.mu.Unlock()
			stats.Skipped++
			return nil
		}
		arr, err := s.eng.Append(rec.Dims, rec.Measures)
		if err == nil {
			s.lastLSN = rec.LSN
		}
		s.mu.Unlock()
		if err != nil {
			// The original application failed the same deterministic
			// way (journaling precedes applying), so the record adds
			// nothing to recovered state.
			stats.Failed++
			return nil
		}
		arr.Shard = shard
		stats.Applied++
		if onArrival != nil {
			onArrival(arr)
		}
	case persist.RecDelete:
		if rec.Shard < 0 || rec.Shard >= len(p.shards) {
			return fmt.Errorf("situfact: wal replay: record %d targets shard %d of %d",
				rec.LSN, rec.Shard, len(p.shards))
		}
		s := &p.shards[rec.Shard]
		s.mu.Lock()
		if rec.LSN <= s.lastLSN {
			s.mu.Unlock()
			stats.Skipped++
			return nil
		}
		err := s.eng.Delete(rec.TupleID)
		if err == nil {
			s.lastLSN = rec.LSN
		}
		s.mu.Unlock()
		switch {
		case err == nil:
			stats.Applied++
		case errors.Is(err, ErrNotFound) || errors.Is(err, ErrAlreadyDeleted):
			stats.Failed++ // the original Delete failed identically
		default:
			// Pool.Delete rejects unsupported deletes before journaling,
			// so a RecDelete proves the writing pool applied (or could
			// have applied) it. ErrDeleteUnsupported here means the pool
			// was restarted under a non-deleting algorithm — real drift,
			// like any other unexpected failure.
			return fmt.Errorf("situfact: wal replay: record %d: %w", rec.LSN, err)
		}
	case persist.RecNoop:
		// Repair filler over an LSN a write fault destroyed: no operation,
		// no shard, no watermark to advance.
		stats.Skipped++
	default:
		return fmt.Errorf("situfact: wal replay: record %d has unknown type %d", rec.LSN, rec.Type)
	}
	return nil
}
