package situfact

import (
	"bytes"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip: continuing a stream from a snapshot must behave
// exactly like never having stopped, including prominence counters,
// deletions and the µ store.
func TestSnapshotRoundTrip(t *testing.T) {
	mk := func() *Engine {
		eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoBottomUp})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	reference := mk()
	snapped := mk()
	for _, r := range table1Rows[:5] {
		if _, err := reference.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
		if _, err := snapped.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := reference.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := snapped.Delete(3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := snapped.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(gamelogSchema(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != reference.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), reference.Len())
	}

	// Continue both streams identically; results must agree fact-by-fact.
	for _, r := range table1Rows[5:] {
		want, err := reference.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Facts) != len(got.Facts) {
			t.Fatalf("arrival %d: %d facts vs %d after restore", want.TupleID, len(want.Facts), len(got.Facts))
		}
		for i := range want.Facts {
			if want.Facts[i].String() != got.Facts[i].String() {
				t.Fatalf("arrival %d fact %d: %q vs %q", want.TupleID, i,
					want.Facts[i].String(), got.Facts[i].String())
			}
		}
	}
	// Deletion state must survive too.
	if err := restored.Delete(3); err == nil {
		t.Error("tombstone lost: double delete accepted after restore")
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Baseline engines cannot snapshot.
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoBaselineSeq, DisableProminence: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err == nil {
		t.Error("baseline snapshot accepted")
	}

	// Garbage input.
	if _, err := LoadSnapshot(gamelogSchema(t), strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}

	// Schema mismatch.
	good, err := New(gamelogSchema(t), Options{Algorithm: AlgoTopDown})
	if err != nil {
		t.Fatal(err)
	}
	good.Append(table1Rows[0].d, table1Rows[0].m)
	buf.Reset()
	if err := good.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := NewSchemaBuilder("other").Dimension("x").Measure("y", LargerBetter).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(other, &buf); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := LoadSnapshot(nil, &buf); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestSnapshotWithoutProminence(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoSTopDown, DisableProminence: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[:3] {
		eng.Append(r.d, r.m)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(gamelogSchema(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := restored.Append(table1Rows[3].d, table1Rows[3].m)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Facts) == 0 {
		t.Error("restored prominence-free engine found no facts")
	}
	if arr.Facts[0].Prominence != 0 {
		t.Error("prominence tracked after prominence-free restore")
	}
}
