package situfact

import (
	"bytes"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip: continuing a stream from a snapshot must behave
// exactly like never having stopped, including prominence counters,
// deletions and the µ store.
func TestSnapshotRoundTrip(t *testing.T) {
	mk := func() *Engine {
		eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoBottomUp})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	reference := mk()
	snapped := mk()
	for _, r := range table1Rows[:5] {
		if _, err := reference.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
		if _, err := snapped.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := reference.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := snapped.Delete(3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := snapped.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(gamelogSchema(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != reference.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), reference.Len())
	}

	// Continue both streams identically; results must agree fact-by-fact.
	for _, r := range table1Rows[5:] {
		want, err := reference.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Facts) != len(got.Facts) {
			t.Fatalf("arrival %d: %d facts vs %d after restore", want.TupleID, len(want.Facts), len(got.Facts))
		}
		for i := range want.Facts {
			if want.Facts[i].String() != got.Facts[i].String() {
				t.Fatalf("arrival %d fact %d: %q vs %q", want.TupleID, i,
					want.Facts[i].String(), got.Facts[i].String())
			}
		}
	}
	// Deletion state must survive too.
	if err := restored.Delete(3); err == nil {
		t.Error("tombstone lost: double delete accepted after restore")
	}
}

// TestPoolSnapshotRoundTrip: a pool restored from SaveSnapshot must be
// indistinguishable from one that never stopped — merged metrics, live
// tuple count, routing, tombstones, and the facts of every subsequent
// arrival.
func TestPoolSnapshotRoundTrip(t *testing.T) {
	mk := func() *Pool {
		p, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 3, ShardDim: "team"})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	reference := mk()
	defer reference.Close()
	snapped := mk()
	feed := func(p *Pool, rows []struct {
		d []string
		m []float64
	}) []*Arrival {
		var out []*Arrival
		for _, r := range rows {
			arr, err := p.Append(r.d, r.m)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, arr)
		}
		return out
	}
	refArrs := feed(reference, table1Rows[:5])
	snapArrs := feed(snapped, table1Rows[:5])
	// Retract row 3 from both pools via its (shard, tupleID) pair.
	if err := reference.Delete(refArrs[3].Shard, refArrs[3].TupleID); err != nil {
		t.Fatal(err)
	}
	if err := snapped.Delete(snapArrs[3].Shard, snapArrs[3].TupleID); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := snapped.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if err := snapped.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPoolSnapshot(gamelogSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	if restored.Shards() != reference.Shards() {
		t.Fatalf("restored Shards = %d, want %d", restored.Shards(), reference.Shards())
	}
	if restored.ShardDim() != "team" {
		t.Fatalf("restored ShardDim = %q, want team", restored.ShardDim())
	}
	if restored.Len() != reference.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), reference.Len())
	}
	if got, want := restored.Metrics(), reference.Metrics(); got != want {
		t.Fatalf("restored Metrics = %+v, want %+v", got, want)
	}

	// Continue both pools identically; every arrival must agree.
	for _, r := range table1Rows[5:] {
		want, err := reference.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		if want.Shard != got.Shard || want.TupleID != got.TupleID {
			t.Fatalf("routing diverged: shard %d tuple %d vs shard %d tuple %d after restore",
				want.Shard, want.TupleID, got.Shard, got.TupleID)
		}
		if len(want.Facts) != len(got.Facts) {
			t.Fatalf("tuple %d: %d facts vs %d after restore", want.TupleID, len(want.Facts), len(got.Facts))
		}
		for i := range want.Facts {
			if want.Facts[i].String() != got.Facts[i].String() {
				t.Fatalf("tuple %d fact %d: %q vs %q", want.TupleID, i,
					want.Facts[i].String(), got.Facts[i].String())
			}
		}
	}
	// Tombstones survive the round trip.
	if err := restored.Delete(snapArrs[3].Shard, snapArrs[3].TupleID); err == nil {
		t.Error("tombstone lost: double delete accepted after pool restore")
	}
}

func TestPoolSnapshotErrors(t *testing.T) {
	if _, err := LoadPoolSnapshot(gamelogSchema(t), t.TempDir()); err == nil {
		t.Error("empty directory accepted as pool snapshot")
	}
	if _, err := LoadPoolSnapshot(nil, t.TempDir()); err == nil {
		t.Error("nil schema accepted")
	}

	// A snapshot taken under one schema must not load under another.
	pool, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Append(table1Rows[0].d, table1Rows[0].m); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := pool.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	other, err := NewSchemaBuilder("other").Dimension("x").Measure("y", LargerBetter).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPoolSnapshot(other, dir); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Baseline engines cannot snapshot.
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoBaselineSeq, DisableProminence: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err == nil {
		t.Error("baseline snapshot accepted")
	}

	// Garbage input.
	if _, err := LoadSnapshot(gamelogSchema(t), strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}

	// Schema mismatch.
	good, err := New(gamelogSchema(t), Options{Algorithm: AlgoTopDown})
	if err != nil {
		t.Fatal(err)
	}
	good.Append(table1Rows[0].d, table1Rows[0].m)
	buf.Reset()
	if err := good.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := NewSchemaBuilder("other").Dimension("x").Measure("y", LargerBetter).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(other, &buf); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := LoadSnapshot(nil, &buf); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestSnapshotWithoutProminence(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoSTopDown, DisableProminence: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[:3] {
		eng.Append(r.d, r.m)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(gamelogSchema(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := restored.Append(table1Rows[3].d, table1Rows[3].m)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Facts) == 0 {
		t.Error("restored prominence-free engine found no facts")
	}
	if arr.Facts[0].Prominence != 0 {
		t.Error("prominence tracked after prominence-free restore")
	}
}
