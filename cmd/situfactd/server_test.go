package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// table1 is the paper's Table I mini-world, identical to the root
// package's example_test.go: after the first six rows, David Wesley's
// 12/13/5 game must yield 195 facts, topped by
// "month=Feb | {assists} (prominence 5 = 5/1)".
var table1 = []rowWire{
	{Dims: []string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, Measures: []float64{4, 12, 5}},
	{Dims: []string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, Measures: []float64{24, 5, 15}},
	{Dims: []string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, Measures: []float64{13, 13, 5}},
	{Dims: []string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, Measures: []float64{2, 5, 2}},
	{Dims: []string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, Measures: []float64{3, 5, 3}},
	{Dims: []string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, Measures: []float64{27, 18, 8}},
}

var wesley = rowWire{
	Dims:     []string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"},
	Measures: []float64{12, 13, 5},
}

func reqOf(r rowWire) tupleRequest { return tupleRequest{Dims: r.Dims, Measures: r.Measures} }

func gamelogConfig(shards int, stateDir string) config {
	return config{
		relation: "gamelog",
		dims:     "player,month,season,team,opp_team",
		measures: "points,assists,rebounds",
		shards:   shards,
		shardDim: "team",
		stateDir: stateDir,
		boardCap: 128,
	}
}

// startServer builds the app and serves it on a random port.
func startServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp
}

// TestServerTableI is the end-to-end acceptance test: stream the Table I
// mini-world over HTTP on a single shard (the whole relation is one
// substream, so the facts must match example_test.go exactly), shut down
// writing snapshots, restart, and observe identical state.
func TestServerTableI(t *testing.T) {
	stateDir := t.TempDir()
	s, ts := startServer(t, gamelogConfig(1, stateDir))

	for i, row := range table1 {
		var arr arrivalResponse
		if resp := doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), &arr); resp.StatusCode != 200 {
			t.Fatalf("row %d: status %d", i, resp.StatusCode)
		}
	}
	var arr arrivalResponse
	req := tupleRequest{
		Dims: wesley.Dims, Measures: wesley.Measures,
		Top: 1, Narrate: &narrateRequest{Subject: "David Wesley"},
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/tuples", req, &arr); resp.StatusCode != 200 {
		t.Fatalf("wesley: status %d", resp.StatusCode)
	}
	if arr.FactCount != 195 {
		t.Errorf("fact_count = %d, want 195", arr.FactCount)
	}
	if len(arr.Facts) != 1 {
		t.Fatalf("got %d facts, want 1 (top=1)", len(arr.Facts))
	}
	const wantTop = "month=Feb | {assists} (prominence 5 = 5/1)"
	if arr.Facts[0].Text != wantTop {
		t.Errorf("top fact %q, want %q", arr.Facts[0].Text, wantTop)
	}
	if !strings.Contains(arr.Facts[0].Narration, "David Wesley") {
		t.Errorf("narration %q does not mention the subject", arr.Facts[0].Narration)
	}
	if arr.ID != "0:6" {
		t.Errorf("arrival id = %q, want 0:6", arr.ID)
	}

	var health healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	if health.Status != "ok" || health.Tuples != 7 {
		t.Errorf("healthz = %+v, want ok/7", health)
	}
	var beforeStop metricsResponse
	doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &beforeStop)
	if beforeStop.Merged.Tuples != 7 || beforeStop.Len != 7 || len(beforeStop.PerShard) != 1 {
		t.Errorf("metrics before shutdown = %+v", beforeStop)
	}

	// SIGTERM-equivalent shutdown: stop accepting, drain, snapshot, close —
	// the same sequence serve() runs on a signal.
	ts.Close()
	if err := s.saveState(); err != nil {
		t.Fatal(err)
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the state directory: tuple count and metrics survive.
	s2, ts2 := startServer(t, gamelogConfig(1, stateDir))
	defer s2.close()
	if got := s2.db().Len(); got != 7 {
		t.Fatalf("restored Len = %d, want 7", got)
	}
	var restored metricsResponse
	doJSON(t, "GET", ts2.URL+"/v1/metrics", nil, &restored)
	if restored.Merged != beforeStop.Merged {
		t.Errorf("restored merged metrics = %+v, want %+v", restored.Merged, beforeStop.Merged)
	}
	if restored.Len != 7 {
		t.Errorf("restored len = %d, want 7", restored.Len)
	}

	// The restored stream continues: deleting the Wesley arrival works.
	req2, _ := http.NewRequest("DELETE", ts2.URL+"/v1/tuples/0:6", nil)
	resp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE after restore: status %d, want 204", resp.StatusCode)
	}
}

func TestServerBatchDeleteAndErrors(t *testing.T) {
	_, ts := startServer(t, gamelogConfig(3, ""))

	var batch batchResponse
	req := batchRequest{Rows: append(append([]rowWire{}, table1...), wesley), Top: 2}
	if resp := doJSON(t, "POST", ts.URL+"/v1/tuples:batch", req, &batch); resp.StatusCode != 200 {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(batch.Arrivals) != 7 {
		t.Fatalf("got %d arrivals, want 7", len(batch.Arrivals))
	}
	for i, arr := range batch.Arrivals {
		if want := fmt.Sprintf("%d:%d", arr.Shard, arr.TupleID); arr.ID != want {
			t.Errorf("arrival %d id = %q, want %q", i, arr.ID, want)
		}
		if len(arr.Facts) > 2 {
			t.Errorf("arrival %d returned %d facts, want ≤ 2 (top=2)", i, len(arr.Facts))
		}
	}

	// Rows of one team share a shard: the three Celtics home rows agree.
	if batch.Arrivals[2].Shard != batch.Arrivals[3].Shard ||
		batch.Arrivals[3].Shard != batch.Arrivals[4].Shard {
		t.Errorf("Celtics rows scattered: shards %d/%d/%d",
			batch.Arrivals[2].Shard, batch.Arrivals[3].Shard, batch.Arrivals[4].Shard)
	}

	var schema schemaResponse
	doJSON(t, "GET", ts.URL+"/v1/schema", nil, &schema)
	if schema.ShardDim != "team" || schema.Shards != 3 || len(schema.Dimensions) != 5 ||
		len(schema.Measures) != 3 || schema.Algorithm == "" {
		t.Errorf("schema = %+v", schema)
	}

	del := func(id string) int {
		r, _ := http.NewRequest("DELETE", ts.URL+"/v1/tuples/"+id, nil)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	target := batch.Arrivals[0].ID
	if got := del(target); got != http.StatusNoContent {
		t.Errorf("DELETE %s: status %d, want 204", target, got)
	}
	if got := del(target); got != http.StatusConflict {
		t.Errorf("double DELETE %s: status %d, want 409", target, got)
	}
	if got := del("9:0"); got != http.StatusNotFound {
		t.Errorf("DELETE unknown shard: status %d, want 404", got)
	}
	if got := del("0:999"); got != http.StatusNotFound {
		t.Errorf("DELETE unknown tuple: status %d, want 404", got)
	}
	if got := del("bogus"); got != http.StatusBadRequest {
		t.Errorf("DELETE malformed id: status %d, want 400", got)
	}
	// A bare id is ambiguous on a multi-shard pool — it must not silently
	// target shard 0.
	if got := del("1"); got != http.StatusBadRequest {
		t.Errorf("DELETE bare id on 3 shards: status %d, want 400", got)
	}

	// Malformed appends are rejected before touching the pool.
	if resp := doJSON(t, "POST", ts.URL+"/v1/tuples",
		tupleRequest{Dims: []string{"only", "two"}, Measures: []float64{1, 2, 3}}, nil); resp.StatusCode != 400 {
		t.Errorf("short row: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/tuples:batch", batchRequest{}, nil); resp.StatusCode != 400 {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestServerTopFacts(t *testing.T) {
	_, ts := startServer(t, gamelogConfig(1, ""))
	for _, row := range append(append([]rowWire{}, table1...), wesley) {
		doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil)
	}
	var top topFactsResponse
	doJSON(t, "GET", ts.URL+"/v1/facts/top?k=5", nil, &top)
	if len(top.Facts) != 5 {
		t.Fatalf("got %d leaderboard entries, want 5", len(top.Facts))
	}
	for i := 1; i < len(top.Facts); i++ {
		if top.Facts[i].Prominence > top.Facts[i-1].Prominence {
			t.Errorf("leaderboard out of order at %d: %g > %g",
				i, top.Facts[i].Prominence, top.Facts[i-1].Prominence)
		}
	}
	if resp := doJSON(t, "GET", ts.URL+"/v1/facts/top?k=-1", nil, nil); resp.StatusCode != 400 {
		t.Errorf("negative k: status %d, want 400", resp.StatusCode)
	}
}

func TestLeaderboard(t *testing.T) {
	b := &leaderboard{cap: 3}
	b.offerAll([]boardEntry{{ID: "0", Prominence: 1}, {ID: "1", Prominence: 5}, {ID: "2", Prominence: 3}})
	b.offerAll([]boardEntry{{ID: "3", Prominence: 4}, {ID: "4", Prominence: 2}, {ID: "5", Prominence: 6}})
	got := b.top(10)
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3 (capacity)", len(got))
	}
	for i, want := range []float64{6, 5, 4} {
		if got[i].Prominence != want {
			t.Errorf("entry %d prominence = %g, want %g", i, got[i].Prominence, want)
		}
	}
}

func TestParseTupleID(t *testing.T) {
	for _, tc := range []struct {
		in      string
		shard   int
		tuple   int64
		wantErr bool
	}{
		{"2:17", 2, 17, false},
		{"0:0", 0, 0, false},
		{"5", 0, 5, false}, // bare id = shard 0
		{"a:b", 0, 0, true},
		{"1:", 0, 0, true},
		{"", 0, 0, true},
	} {
		shard, tuple, err := parseTupleID(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseTupleID(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && (shard != tc.shard || tuple != tc.tuple) {
			t.Errorf("parseTupleID(%q) = %d,%d, want %d,%d", tc.in, shard, tuple, tc.shard, tc.tuple)
		}
	}
}

// TestServerStateDirValidation: algorithms that cannot snapshot are
// rejected at startup, not at the first shutdown.
func TestServerStateDirValidation(t *testing.T) {
	cfg := gamelogConfig(1, t.TempDir())
	// parallel-bottomup builds a working pool (prominence included) but
	// cannot snapshot — the capability check, not pool construction, must
	// reject it.
	cfg.algo = "parallel-bottomup"
	if _, err := newServer(cfg); err == nil {
		t.Error("parallel-bottomup with -state-dir accepted")
	}
	// A corrupt manifest must fail startup, not silently start empty.
	corrupt := t.TempDir()
	if err := os.WriteFile(filepath.Join(corrupt, "pool.manifest"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = gamelogConfig(1, corrupt)
	if _, err := newServer(cfg); err == nil {
		t.Error("corrupt manifest accepted as fresh start")
	}

	cfg.stateDir = ""
	cfg.algo = ""
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	if err := s.saveState(); err != nil {
		t.Errorf("saveState without state-dir must be a no-op, got %v", err)
	}
}

// walConfig enables the journal on a gamelog config.
func walConfig(shards int, stateDir string) config {
	cfg := gamelogConfig(shards, stateDir)
	cfg.wal = true
	return cfg
}

// TestServerWALCrashRecovery simulates a kill -9 in-process: feed a
// daemon with -wal, never save a snapshot, abandon it, and start a fresh
// one over the same state dir. Replay alone must rebuild the relation,
// the metrics and the leaderboard.
func TestServerWALCrashRecovery(t *testing.T) {
	stateDir := t.TempDir()
	_, ts := startServer(t, walConfig(2, stateDir))

	rows := append(append([]rowWire{}, table1...), wesley)
	for i, row := range rows {
		if resp := doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != 200 {
			t.Fatalf("row %d: status %d", i, resp.StatusCode)
		}
	}
	var beforeMetrics metricsResponse
	doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &beforeMetrics)
	if !beforeMetrics.WAL.Enabled || beforeMetrics.WAL.LastLSN != uint64(len(rows)) {
		t.Fatalf("wal metrics before crash = %+v, want enabled with last_lsn %d", beforeMetrics.WAL, len(rows))
	}
	if beforeMetrics.WAL.LagRecords != 0 {
		t.Errorf("lag_records = %d after synchronous acks, want 0", beforeMetrics.WAL.LagRecords)
	}
	if !beforeMetrics.Snapshot.Enabled || beforeMetrics.Snapshot.SecondsSinceLast != -1 {
		t.Errorf("snapshot metrics before any checkpoint = %+v, want enabled with seconds_since_last -1", beforeMetrics.Snapshot)
	}
	var beforeTop topFactsResponse
	doJSON(t, "GET", ts.URL+"/v1/facts/top?k=50", nil, &beforeTop)
	if len(beforeTop.Facts) == 0 {
		t.Fatal("no leaderboard entries before crash")
	}

	// Crash: no saveState, no graceful close. (The WAL fsynced every
	// acknowledged append, so abandoning the server loses nothing.)
	ts.Close()

	s2, ts2 := startServer(t, walConfig(2, stateDir))
	defer s2.close()
	if got := s2.db().Len(); got != len(rows) {
		t.Fatalf("recovered Len = %d, want %d", got, len(rows))
	}
	var afterMetrics metricsResponse
	doJSON(t, "GET", ts2.URL+"/v1/metrics", nil, &afterMetrics)
	if afterMetrics.Merged != beforeMetrics.Merged {
		t.Errorf("recovered merged metrics = %+v, want %+v", afterMetrics.Merged, beforeMetrics.Merged)
	}
	var afterTop topFactsResponse
	doJSON(t, "GET", ts2.URL+"/v1/facts/top?k=50", nil, &afterTop)
	if !reflect.DeepEqual(afterTop, beforeTop) {
		t.Errorf("recovered leaderboard diverged:\n got %+v\nwant %+v", afterTop, beforeTop)
	}
}

// TestServerCheckpointPlusWALTail: a mid-stream checkpoint (with the
// leaderboard sidecar) plus the WAL tail after it must recover the same
// state as never stopping — and truncate covered segments.
func TestServerCheckpointPlusWALTail(t *testing.T) {
	stateDir := t.TempDir()
	cfg := walConfig(1, stateDir)
	cfg.walSegBytes = 256 // force rotation so truncation has segments to reclaim
	s, ts := startServer(t, cfg)

	for _, row := range table1[:4] {
		doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil)
	}
	if err := s.checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, row := range append(append([]rowWire{}, table1[4:]...), wesley) {
		doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil)
	}
	var before metricsResponse
	doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &before)
	if !before.Snapshot.Enabled || before.Snapshot.Generation != 1 || before.Snapshot.SecondsSinceLast < 0 {
		t.Errorf("snapshot metrics after checkpoint = %+v", before.Snapshot)
	}
	var beforeTop topFactsResponse
	doJSON(t, "GET", ts.URL+"/v1/facts/top?k=50", nil, &beforeTop)

	ts.Close() // crash

	s2, ts2 := startServer(t, cfg)
	defer s2.close()
	var after metricsResponse
	doJSON(t, "GET", ts2.URL+"/v1/metrics", nil, &after)
	if after.Merged != before.Merged || after.Len != before.Len {
		t.Errorf("recovered metrics = %+v/%d, want %+v/%d", after.Merged, after.Len, before.Merged, before.Len)
	}
	var afterTop topFactsResponse
	doJSON(t, "GET", ts2.URL+"/v1/facts/top?k=50", nil, &afterTop)
	if !reflect.DeepEqual(afterTop, beforeTop) {
		t.Errorf("recovered leaderboard diverged:\n got %+v\nwant %+v", afterTop, beforeTop)
	}

	// The David Wesley arrival survived via the WAL tail; deleting it
	// proves the recovered stream continues normally.
	req, _ := http.NewRequest("DELETE", ts2.URL+"/v1/tuples/0:6", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE after recovery: status %d, want 204", resp.StatusCode)
	}
}

// TestServerWALFlagValidation: -wal without -state-dir is refused.
func TestServerWALFlagValidation(t *testing.T) {
	cfg := gamelogConfig(1, "")
	cfg.wal = true
	if _, err := newServer(cfg); err == nil {
		t.Error("-wal without -state-dir accepted")
	}
}

func TestLeaderboardPersistence(t *testing.T) {
	b := &leaderboard{cap: 3}
	b.offerAll([]boardEntry{
		{ID: "0:1", Prominence: 5, Fact: factWire{Text: "a"}},
		{ID: "0:2", Prominence: 3, Fact: factWire{Text: "b"}},
	})
	data, err := b.marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a smaller board: trimmed, still sorted.
	b2 := &leaderboard{cap: 1}
	if err := b2.restore(data); err != nil {
		t.Fatal(err)
	}
	if got := b2.top(5); len(got) != 1 || got[0].ID != "0:1" {
		t.Fatalf("restored+trimmed board = %+v", got)
	}
	// Re-offering an entry already on the board (as WAL replay does) must
	// not duplicate it.
	b3 := &leaderboard{cap: 4}
	if err := b3.restore(data); err != nil {
		t.Fatal(err)
	}
	b3.offerAll([]boardEntry{{ID: "0:1", Prominence: 5, Fact: factWire{Text: "a"}}})
	if got := b3.top(5); len(got) != 2 {
		t.Fatalf("re-offer duplicated a board entry: %+v", got)
	}
	// A distinct fact at the same prominence still enters.
	b3.offerAll([]boardEntry{{ID: "1:9", Prominence: 5, Fact: factWire{Text: "c"}}})
	if got := b3.top(5); len(got) != 3 {
		t.Fatalf("distinct same-prominence entry rejected: %+v", got)
	}
	if err := b3.restore([]byte("junk")); err == nil {
		t.Error("garbage sidecar accepted")
	}
}

// TestServerConcurrentIngestAndCheckpoint hammers the gate/sidecar
// interplay: many writers (singles and batches) race repeated checkpoints
// and metrics reads. Run under -race in CI; afterwards, crash-recovery
// must still rebuild the exact state.
func TestServerConcurrentIngestAndCheckpoint(t *testing.T) {
	stateDir := t.TempDir()
	cfg := walConfig(3, stateDir)
	cfg.walSegBytes = 1024
	// A board big enough never to evict: with eviction, which of several
	// prominence-TIED entries survives depends on insertion order, which
	// concurrency (and replay's LSN order) legitimately permutes. Without
	// eviction the recovered membership is fully deterministic.
	cfg.boardCap = 1 << 20
	s, ts := startServer(t, cfg)

	const writers, perWriter = 4, 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				row := rowWire{
					Dims:     []string{fmt.Sprintf("p%d-%d", w, i), "Feb", "1991-92", fmt.Sprintf("team-%d", i%5), "Hawks"},
					Measures: []float64{float64(i), float64(w), 1},
				}
				if w%2 == 0 {
					doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil)
				} else {
					doJSON(t, "POST", ts.URL+"/v1/tuples:batch", batchRequest{Rows: []rowWire{row}}, nil)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.checkpoint(); err != nil {
				t.Errorf("checkpoint under load: %v", err)
				return
			}
			var m metricsResponse
			doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &m)
		}
	}()
	wg.Wait()

	var before metricsResponse
	doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &before)
	if before.Len != writers*perWriter {
		t.Fatalf("len = %d, want %d", before.Len, writers*perWriter)
	}
	var beforeTop topFactsResponse
	doJSON(t, "GET", ts.URL+"/v1/facts/top?k=1000000", nil, &beforeTop)

	ts.Close() // crash

	s2, ts2 := startServer(t, cfg)
	defer s2.close()
	var after metricsResponse
	doJSON(t, "GET", ts2.URL+"/v1/metrics", nil, &after)
	if after.Merged != before.Merged || after.Len != before.Len {
		t.Errorf("recovered metrics = %+v/%d, want %+v/%d", after.Merged, after.Len, before.Merged, before.Len)
	}
	// Concurrency makes board *insertion order* nondeterministic for tied
	// prominences, but the recovered board must hold the same entry set.
	var afterTop topFactsResponse
	doJSON(t, "GET", ts2.URL+"/v1/facts/top?k=1000000", nil, &afterTop)
	if len(afterTop.Facts) != len(beforeTop.Facts) {
		t.Fatalf("recovered board has %d entries, want %d", len(afterTop.Facts), len(beforeTop.Facts))
	}
	key := func(e boardEntry) string { return fmt.Sprintf("%s|%s|%g", e.ID, e.Fact.Text, e.Prominence) }
	want := make(map[string]int)
	for _, e := range beforeTop.Facts {
		want[key(e)]++
	}
	for _, e := range afterTop.Facts {
		want[key(e)]--
	}
	for k, n := range want {
		if n != 0 {
			t.Errorf("board entry multiset differs at %q (Δ%d)", k, n)
		}
	}
}
