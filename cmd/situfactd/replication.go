package main

// Follower mode (-follow <leader-url>) and the leader endpoints backing
// it. A follower bootstraps by downloading the leader's snapshot stream
// (GET /v1/snapshot), restoring it like a local restart would, and then
// polls the leader's WAL tail (GET /v1/wal) forever, applying each batch
// through Pool.ApplyTail — the same per-record path crash recovery uses,
// which is what makes follower state converge to the leader's bit for
// bit. The follower pins the leader's WAL epoch at bootstrap: a tail from
// any other log instance (leader re-initialised, wrong leader) is a fatal
// error, as is a gap in the dense LSN sequence (the leader truncated the
// tail away before the follower read it). Transient poll errors retry
// with jittered exponential backoff; fatal errors trigger an automatic
// re-bootstrap — the follower re-downloads the leader's snapshot and
// swaps the restored pool in under live readers, up to
// -follow-rebootstrap-max consecutive attempts. Only when that budget is
// exhausted (or re-bootstrap is disabled) does replication stop and
// /healthz degrade to 503 until an operator restarts the process.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	situfact "repro"
	"repro/internal/persist"
)

// snapshotStreamMagic heads the GET /v1/snapshot byte stream; each file
// follows as [uvarint name length][name][uvarint size][bytes], shard
// files first and the manifest last (its presence commits the download —
// a partial stream leaves no manifest and the next bootstrap starts
// clean).
const snapshotStreamMagic = "situfact-snapshot-stream/v1\n"

const (
	walTailDefaultMax = 4096
	walTailMaxMax     = 65536
)

// ---------------------------------------------------------------- leader

// handleSnapshot ships a fresh checkpoint as one self-contained stream.
// stateMu is held across the checkpoint AND the file reads, so a
// concurrent checkpoint cannot replace the generation mid stream.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.repl != nil {
		writeErr(w, http.StatusConflict, "followers do not ship snapshots: bootstrap from the leader")
		return
	}
	if s.cfg.stateDir == "" || s.wal == nil {
		writeErr(w, http.StatusConflict, "snapshot shipping requires -state-dir and -wal (a follower needs the log tail after the snapshot)")
		return
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	stats, err := s.checkpointLocked()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "checkpoint: "+err.Error())
		return
	}
	pool := s.db()
	names := make([]string, 0, pool.Shards()+1)
	for i := 0; i < pool.Shards(); i++ {
		names = append(names, persist.ShardSnapshotName(i, stats.Generation))
	}
	names = append(names, persist.ManifestName) // last: the commit record
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := io.WriteString(w, snapshotStreamMagic); err != nil {
		return
	}
	var hdr [binary.MaxVarintLen64]byte
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.cfg.stateDir, name))
		if err != nil {
			// Headers are out; aborting mid stream is the only option. The
			// follower sees a truncated stream (no manifest) and retries.
			log.Printf("snapshot stream: %v", err)
			return
		}
		n := binary.PutUvarint(hdr[:], uint64(len(name)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return
		}
		if _, err := io.WriteString(w, name); err != nil {
			return
		}
		n = binary.PutUvarint(hdr[:], uint64(len(data)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return
		}
		if _, err := w.Write(data); err != nil {
			return
		}
	}
}

// handleWALTail serves a batch of journaled records from from_lsn on —
// the poll target of follower catch-up.
func (s *server) handleWALTail(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeErr(w, http.StatusConflict, "no write-ahead log to read: run the leader with -wal")
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from_lsn"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad from_lsn %q", v))
			return
		}
		from = n
	}
	max := walTailDefaultMax
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad max %q", v))
			return
		}
		max = min(n, walTailMaxMax)
	}
	recs, lastLSN, more, err := s.wal.ReadTail(from, max)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := walTailResponse{
		Epoch:   s.wal.Epoch(),
		LastLSN: lastLSN,
		Records: make([]walRecordWire, len(recs)),
		More:    more,
	}
	for i, rec := range recs {
		resp.Records[i] = walRecordWire{
			LSN: rec.LSN, Op: rec.Op, Shard: rec.Shard,
			Dims: rec.Dims, Measures: rec.Measures, TupleID: rec.TupleID,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// -------------------------------------------------------------- follower

// replState is a follower's replication runtime.
type replState struct {
	client *http.Client
	leader string // leader base URL, no trailing slash
	maxLag uint64 // 0 = no health bound
	poll   time.Duration

	// Re-bootstrap inputs: everything bootstrapPool needs to rebuild the
	// follower's pool from a fresh leader snapshot after a fatal error.
	schema         *situfact.Schema
	scanFacts      bool
	bootstrapDir   string
	rebootstrapMax int // consecutive attempts per fatal episode; 0 = disabled

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu        sync.Mutex
	epoch     string // leader WAL epoch pinned at (re-)bootstrap
	nextLSN   uint64 // next LSN to fetch; nextLSN-1 is applied through
	leaderLSN uint64 // leader's highest LSN at the last successful poll
	lastPoll  time.Time
	lastErr   string // transient; cleared by the next successful poll
	fatal     string // terminal; replication stopped pending re-bootstrap
	applied   situfact.ReplayStats
	// rebootstraps counts completed automatic re-bootstraps.
	rebootstraps int
}

// newFollower bootstraps a read-only follower: snapshot download, restore,
// then the background tail loop. The follower carries the leader's exact
// schema flags (-dims/-measures/-relation) — the restored manifest
// validates them — and uses -state-dir only as scratch for the bootstrap
// download (a follower never checkpoints; its durable state is the
// leader's).
func newFollower(cfg config) (*server, error) {
	schema, wires, err := buildSchema(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.stateDir == "" {
		return nil, fmt.Errorf("situfactd: -follow requires -state-dir (scratch space for the snapshot bootstrap)")
	}
	if cfg.wal {
		return nil, fmt.Errorf("situfactd: -wal conflicts with -follow: a follower replays the leader's log, it does not journal its own")
	}
	leader := strings.TrimRight(cfg.follow, "/")
	client := &http.Client{Timeout: 5 * time.Minute}
	bootstrapDir := filepath.Join(cfg.stateDir, "bootstrap")
	pool, sidecars, epoch, err := bootstrapPool(client, leader, bootstrapDir, schema, cfg.scanFacts)
	if err != nil {
		return nil, fmt.Errorf("situfactd: %w", err)
	}
	bcap := cfg.boardCap
	if bcap <= 0 {
		bcap = 128
	}
	// The follower never checkpoints (stateDir was scratch for the
	// bootstrap only), and the ingest pipeline would race ApplyTail.
	cfg.stateDir = ""
	cfg.pipeline = false
	s := &server{
		cfg:      cfg,
		schema:   schema,
		measures: wires,
		board:    &leaderboard{cap: bcap},
		started:  time.Now(),
		cache:    newReadCache(cfg),
	}
	// The same admission limits a leader enforces hold here: a follower
	// fleet is exactly where unbounded read fan-in lands.
	s.initAdmission()
	s.poolv.Store(pool)
	if lb, ok := sidecars[sidecarLeaderboard]; ok {
		if err := s.board.restore(lb); err != nil {
			log.Printf("warning: leaderboard sidecar unreadable, starting it empty: %v", err)
		}
	}
	poll := cfg.followPoll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	next := pool.TailCursor()
	s.repl = &replState{
		client:         client,
		leader:         leader,
		epoch:          epoch,
		maxLag:         cfg.followMaxLag,
		poll:           poll,
		schema:         schema,
		scanFacts:      cfg.scanFacts,
		bootstrapDir:   bootstrapDir,
		rebootstrapMax: cfg.followRebootstrapMax,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		nextLSN:        next,
		leaderLSN:      next - 1, // lag 0 until the first poll says otherwise
	}
	log.Printf("following %s from lsn %d (epoch %s, %d tuples bootstrapped)",
		leader, next, epoch, pool.Len())
	go s.repl.run(s)
	return s, nil
}

// bootstrapPool downloads the leader's snapshot stream into bootstrapDir
// (wiped first: follower state is a cache of the leader's, so a stale or
// torn download is never worth salvaging) and restores a serving pool
// from it. Shared by the initial bootstrap and the automatic re-bootstrap
// after a fatal replication error.
func bootstrapPool(client *http.Client, leader, bootstrapDir string, schema *situfact.Schema, scanFacts bool) (*situfact.Pool, map[string][]byte, string, error) {
	if err := os.RemoveAll(bootstrapDir); err != nil {
		return nil, nil, "", fmt.Errorf("clearing %s: %w", bootstrapDir, err)
	}
	if err := os.MkdirAll(bootstrapDir, 0o755); err != nil {
		return nil, nil, "", err
	}
	if err := fetchSnapshot(client, leader, bootstrapDir); err != nil {
		return nil, nil, "", fmt.Errorf("bootstrap from %s: %w", leader, err)
	}
	pool, sidecars, err := situfact.RestorePool(schema, bootstrapDir)
	if err != nil {
		return nil, nil, "", fmt.Errorf("restoring leader snapshot: %w", err)
	}
	epoch := pool.WALEpoch()
	if epoch == "" {
		pool.Close()
		return nil, nil, "", fmt.Errorf("leader snapshot carries no WAL epoch: the leader must run -wal")
	}
	// Same read path as the leader: the fact index was rebuilt during the
	// snapshot restore above and ApplyTail maintains it from here on.
	pool.SetScanQueries(scanFacts)
	return pool, sidecars, epoch, nil
}

// fetchSnapshot downloads the leader's snapshot stream into dir. Each
// file lands via an atomic write; the manifest arrives last, so a
// truncated stream leaves no manifest and the error below fires instead
// of a half-restored pool.
func fetchSnapshot(client *http.Client, leader, dir string) error {
	resp, err := client.Get(leader + "/v1/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("leader returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	br := bufio.NewReader(resp.Body)
	magic := make([]byte, len(snapshotStreamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("reading stream header: %w", err)
	}
	if string(magic) != snapshotStreamMagic {
		return fmt.Errorf("not a snapshot stream (bad magic %q)", magic)
	}
	for {
		nameLen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading file header: %w", err)
		}
		if nameLen == 0 || nameLen > 4096 {
			return fmt.Errorf("implausible file name length %d", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return fmt.Errorf("reading file name: %w", err)
		}
		name := string(nameBytes)
		// The stream names files, not paths: refuse anything that would
		// escape dir.
		if name != filepath.Base(name) || name == "." || name == ".." {
			return fmt.Errorf("unsafe file name %q in snapshot stream", name)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("reading size of %s: %w", name, err)
		}
		err = persist.WriteFileAtomic(filepath.Join(dir, name), func(w io.Writer) error {
			_, err := io.CopyN(w, br, int64(size))
			return err
		})
		if err != nil {
			return fmt.Errorf("writing %s: %w", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, persist.ManifestName)); err != nil {
		return fmt.Errorf("stream ended without the manifest (truncated download)")
	}
	return nil
}

// shutdown stops the tail loop and waits it out; safe to call twice.
func (r *replState) shutdown() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// run is the follower's tail loop: drain the leader's WAL, sleep, repeat.
// Healthy polls sleep one poll period; transient failures back off
// exponentially (capped, ±25% jitter so a follower fleet does not retry
// in lockstep) instead of hammering a struggling leader at full poll
// rate. A fatal error hands off to rebootstrap; the loop exits only on
// stop or an exhausted re-bootstrap budget.
func (r *replState) run(s *server) {
	defer close(r.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	maxDelay := max(min(32*r.poll, 30*time.Second), r.poll)
	delay := r.poll
	for {
		healthy := r.drain(s)
		if r.fatalReason() != "" {
			if !r.rebootstrap(s, rng) {
				return // budget exhausted or disabled: stay fatal until restarted
			}
			delay = r.poll
			continue
		}
		if healthy {
			delay = r.poll
		} else {
			delay = min(2*delay, maxDelay)
		}
		jittered := delay + time.Duration((rng.Float64()-0.5)*0.5*float64(delay))
		select {
		case <-r.stop:
			return
		case <-time.After(jittered):
		}
	}
}

func (r *replState) fatalReason() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fatal
}

// rebootstrap heals a fatal replication error without a restart: it
// re-runs the snapshot bootstrap and swaps the restored pool in under
// live readers (handlers hold the old pool at most for the request that
// loaded it). Up to rebootstrapMax consecutive download attempts are
// made, backing off between failures; it reports whether replication may
// continue. The old pool is left to the garbage collector — follower
// pools own no WAL or pipeline, so there is nothing to close out from
// under in-flight readers.
func (r *replState) rebootstrap(s *server, rng *rand.Rand) bool {
	if r.rebootstrapMax <= 0 {
		return false
	}
	backoff := r.poll
	for attempt := 1; attempt <= r.rebootstrapMax; attempt++ {
		select {
		case <-r.stop:
			return false
		default:
		}
		log.Printf("re-bootstrapping from %s (attempt %d/%d) after: %s",
			r.leader, attempt, r.rebootstrapMax, r.fatalReason())
		pool, sidecars, epoch, err := bootstrapPool(r.client, r.leader, r.bootstrapDir, r.schema, r.scanFacts)
		if err == nil {
			s.poolv.Store(pool)
			if lb, ok := sidecars[sidecarLeaderboard]; ok {
				if err := s.board.restore(lb); err != nil {
					log.Printf("warning: leaderboard sidecar unreadable after re-bootstrap: %v", err)
				}
			} else {
				s.board.restore([]byte("null")) // leader ships no board: clear ours
			}
			// Everything cached predates the new pool.
			if s.cache != nil {
				s.cache.InvalidateFunc(func(string) bool { return true })
			}
			next := pool.TailCursor()
			r.mu.Lock()
			r.epoch = epoch
			r.nextLSN = next
			r.leaderLSN = next - 1
			r.fatal = ""
			r.lastErr = ""
			r.rebootstraps++
			n := r.rebootstraps
			r.mu.Unlock()
			log.Printf("re-bootstrap %d complete: following %s from lsn %d (epoch %s, %d tuples)",
				n, r.leader, next, epoch, pool.Len())
			return true
		}
		log.Printf("re-bootstrap attempt %d/%d failed: %v", attempt, r.rebootstrapMax, err)
		if attempt == r.rebootstrapMax {
			break
		}
		jittered := backoff + time.Duration((rng.Float64()-0.5)*0.5*float64(backoff))
		select {
		case <-r.stop:
			return false
		case <-time.After(jittered):
		}
		backoff = min(2*backoff, 30*time.Second)
	}
	log.Printf("re-bootstrap budget (%d) exhausted; replication stays stopped until this follower is restarted", r.rebootstrapMax)
	return false
}

// drain polls and applies WAL batches until the leader has no more, a
// transient error says back off and retry, or a fatal error hands off to
// re-bootstrap. It reports false exactly when a transient error ended the
// drain — the signal run uses to back its poll delay off.
func (r *replState) drain(s *server) bool {
	for {
		select {
		case <-r.stop:
			return true
		default:
		}
		r.mu.Lock()
		if r.fatal != "" {
			r.mu.Unlock()
			return true
		}
		from := r.nextLSN
		r.mu.Unlock()
		pool := s.db()

		resp, err := r.pollTail(from)
		if err != nil {
			r.mu.Lock()
			r.lastErr = err.Error()
			r.mu.Unlock()
			return false
		}
		if resp.Epoch != r.epoch {
			r.setFatal(fmt.Sprintf("leader wal epoch changed (%s -> %s): this follower's state belongs to the old log", r.epoch, resp.Epoch))
			return true
		}
		if len(resp.Records) > 0 && resp.Records[0].LSN > from {
			// LSNs are dense; a gap means the leader truncated records the
			// follower never saw.
			r.setFatal(fmt.Sprintf("leader truncated wal records %d..%d before they replicated", from, resp.Records[0].LSN-1))
			return true
		}
		if len(resp.Records) > 0 {
			recs := make([]situfact.TailRecord, len(resp.Records))
			for i, rec := range resp.Records {
				recs[i] = situfact.TailRecord{
					LSN: rec.LSN, Op: rec.Op, Shard: rec.Shard,
					Dims: rec.Dims, Measures: rec.Measures, TupleID: rec.TupleID,
				}
			}
			before := pool.ShardLSNs()
			stats, err := pool.ApplyTail(resp.Epoch, recs, func(arr *situfact.Arrival) { s.feedBoard(arr) })
			r.mu.Lock()
			r.applied.Records += stats.Records
			r.applied.Applied += stats.Applied
			r.applied.Skipped += stats.Skipped
			r.applied.Failed += stats.Failed
			r.mu.Unlock()
			if err != nil {
				r.setFatal("applying wal tail: " + err.Error())
				return true
			}
			// Reads must see the advance — but only reads whose shard
			// actually advanced. Cached pages scoped to an untouched shard
			// are still correct, so evict just the moved shards' keys plus
			// everything cross-shard (all-shard pages and leaderboards).
			// Eviction runs BEFORE nextLSN advances: once the applied LSN is
			// observable in /v1/metrics, no pre-batch page may serve.
			if s.cache != nil {
				s.cache.InvalidateFunc(invalidatorFor(before, pool.ShardLSNs()))
			}
			r.mu.Lock()
			r.nextLSN = recs[len(recs)-1].LSN + 1
			r.mu.Unlock()
		}
		r.mu.Lock()
		r.leaderLSN = resp.LastLSN
		r.lastPoll = time.Now()
		r.lastErr = ""
		r.mu.Unlock()
		if !resp.More {
			return true
		}
	}
}

// invalidatorFor builds the read-cache eviction predicate for a tail
// batch, given the per-shard applied LSNs before and after ApplyTail.
// Keys scoped to one shard ("facts|<shard>|...") die only when that
// shard's LSN moved; cross-shard keys ("facts|-1|..." for all-shard
// pages, "top|..." for leaderboards) die when any shard moved.
func invalidatorFor(before, after []uint64) func(key string) bool {
	any := false
	moved := make(map[string]bool, len(after))
	for i := range after {
		if i >= len(before) || after[i] != before[i] {
			moved["facts|"+strconv.Itoa(i)+"|"] = true
			any = true
		}
	}
	return func(key string) bool {
		if !any {
			return false
		}
		if strings.HasPrefix(key, "top|") || strings.HasPrefix(key, "facts|-1|") {
			return true
		}
		for prefix := range moved {
			if strings.HasPrefix(key, prefix) {
				return true
			}
		}
		return false
	}
}

// pollTail fetches one WAL batch from the leader.
func (r *replState) pollTail(from uint64) (*walTailResponse, error) {
	url := fmt.Sprintf("%s/v1/wal?from_lsn=%d&max=%d", r.leader, from, walTailDefaultMax)
	resp, err := r.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("leader returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var tail walTailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		return nil, fmt.Errorf("decoding wal tail: %w", err)
	}
	return &tail, nil
}

func (r *replState) setFatal(msg string) {
	r.mu.Lock()
	if r.fatal == "" {
		r.fatal = msg
		log.Printf("replication stopped: %s", msg)
	}
	r.mu.Unlock()
}

// unhealthy returns the reason this follower should not serve reads, or
// "" when it is fine — the /healthz gate.
func (r *replState) unhealthy() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fatal != "" {
		return "replication stopped: " + r.fatal
	}
	if applied := r.nextLSN - 1; r.maxLag > 0 && r.leaderLSN > applied && r.leaderLSN-applied > r.maxLag {
		return fmt.Sprintf("replication lag %d records exceeds -follow-max-lag %d", r.leaderLSN-applied, r.maxLag)
	}
	return ""
}

// wire snapshots the replication state for GET /v1/metrics.
func (r *replState) wire() replicationWire {
	r.mu.Lock()
	defer r.mu.Unlock()
	applied := r.nextLSN - 1
	var lag uint64
	if r.leaderLSN > applied {
		lag = r.leaderLSN - applied
	}
	out := replicationWire{
		Follower:         true,
		Leader:           r.leader,
		Epoch:            r.epoch,
		AppliedLSN:       applied,
		LeaderLSN:        r.leaderLSN,
		LagRecords:       lag,
		MaxLagRecords:    r.maxLag,
		Applied:          r.applied.Applied,
		Skipped:          r.applied.Skipped,
		Failed:           r.applied.Failed,
		SecondsSincePoll: -1,
		LastError:        r.lastErr,
		Fatal:            r.fatal,
		Rebootstraps:     r.rebootstraps,
	}
	if !r.lastPoll.IsZero() {
		out.SecondsSincePoll = time.Since(r.lastPoll).Seconds()
	}
	return out
}
