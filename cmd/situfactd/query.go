package main

// The query endpoints: GET /v1/facts pages through the live fact set with
// filters, GET /v1/tuples/{id} is a point read of one ingested row. Both
// are read-only — they sit on Pool.QueryFacts/Pool.Tuple, which take each
// shard's read lock only for the page being built — and /v1/facts runs
// through the TTL'd singleflight cache when -read-cache-ttl is set.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	situfact "repro"
)

// factsQuery is a parsed GET /v1/facts request.
type factsQuery struct {
	filter situfact.FactFilter
	cursor string
	limit  int
	// key is the canonical cache key: parameters in a fixed order,
	// where-conditions sorted, so equivalent requests share one entry.
	key string
}

const (
	factsDefaultLimit = 50
	factsMaxLimit     = 500
)

// parseFactsQuery maps the URL parameters onto a FactFilter:
//
//	shard=N            restrict to one shard (default: all)
//	where=attr=value   require a constraint value (repeatable, ANDed)
//	measures=a,b       restrict to facts over exactly these measures
//	tuple=S:T          facts whose skyline contains tuple T of shard S
//	cursor=...         resume token from a previous page
//	limit=N            page size (default 50, max 500)
//
// Validation of attribute and measure names against the schema happens in
// Pool.planQuery; this layer only handles wire syntax.
func (s *server) parseFactsQuery(pool *situfact.Pool, q url.Values) (factsQuery, error) {
	var fq factsQuery
	fq.filter.Shard = situfact.AllShards
	fq.filter.TupleID = -1
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fq, fmt.Errorf("bad shard %q", v)
		}
		fq.filter.Shard = n
	}
	wheres := append([]string(nil), q["where"]...)
	sort.Strings(wheres)
	for _, w := range wheres {
		attr, val, found := strings.Cut(w, "=")
		if !found || attr == "" {
			return fq, fmt.Errorf("bad where %q: want attr=value", w)
		}
		fq.filter.Conditions = append(fq.filter.Conditions, situfact.Condition{Attr: attr, Value: val})
	}
	if v := q.Get("measures"); v != "" {
		for _, m := range strings.Split(v, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				return fq, fmt.Errorf("bad measures %q: empty name", v)
			}
			fq.filter.Measures = append(fq.filter.Measures, m)
		}
	}
	if v := q.Get("tuple"); v != "" {
		if !strings.Contains(v, ":") {
			// A bare id needs a shard to be meaningful; on a single-shard
			// pool that is shard 0, otherwise require the explicit handle
			// (same rule as DELETE /v1/tuples/{id}).
			switch {
			case fq.filter.Shard >= 0:
				// shard= names it.
			case pool.Shards() == 1:
				fq.filter.Shard = 0
			default:
				return fq, fmt.Errorf("bare tuple id %q is ambiguous with %d shards: use <shard>:<tuple_id>", v, pool.Shards())
			}
		}
		shard, tupleID, err := parseTupleID(v)
		if err != nil {
			return fq, err
		}
		if strings.Contains(v, ":") {
			if fq.filter.Shard >= 0 && fq.filter.Shard != shard {
				return fq, fmt.Errorf("tuple %q names shard %d but shard=%d was also given", v, shard, fq.filter.Shard)
			}
			fq.filter.Shard = shard
		}
		fq.filter.WithTuple = true
		fq.filter.TupleID = tupleID
	}
	fq.cursor = q.Get("cursor")
	fq.limit = factsDefaultLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return fq, fmt.Errorf("bad limit %q", v)
		}
		fq.limit = min(n, factsMaxLimit)
	}
	fq.key = fmt.Sprintf("facts|%d|%s|%s|%v|%d|%s|%d",
		fq.filter.Shard, strings.Join(wheres, "&"), strings.Join(fq.filter.Measures, ","),
		fq.filter.WithTuple, fq.filter.TupleID, fq.cursor, fq.limit)
	return fq, nil
}

func (s *server) handleFacts(w http.ResponseWriter, r *http.Request) {
	pool := s.db()
	fq, err := s.parseFactsQuery(pool, r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if s.cache != nil {
		// A cache fill is shared by every request coalesced onto it; one
		// client's disconnect must not poison the others' response. The
		// fill stays bounded by the query itself, not by this request.
		ctx = context.WithoutCancel(ctx)
	}
	s.serveCached(w, fq.key, func() ([]byte, error) {
		page, err := pool.QueryFactsContext(ctx, fq.filter, fq.cursor, fq.limit)
		if err != nil {
			return nil, err
		}
		resp := factsResponse{Facts: make([]queryFactWire, len(page.Facts)), NextCursor: page.NextCursor}
		for i := range page.Facts {
			resp.Facts[i] = toQueryFactWire(&page.Facts[i])
		}
		return marshalBody(resp)
	})
}

func (s *server) handleTuple(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pool := s.db()
	if !strings.Contains(id, ":") && pool.Shards() > 1 {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("bare tuple id %q is ambiguous with %d shards: use <shard>:<tuple_id>", id, pool.Shards()))
		return
	}
	shard, tupleID, err := parseTupleID(id)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	info, err := pool.Tuple(shard, tupleID)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, situfact.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, tupleResponse{
		ID:       fmt.Sprintf("%d:%d", info.Shard, info.TupleID),
		Shard:    info.Shard,
		TupleID:  info.TupleID,
		Dims:     info.Dims,
		Measures: info.Measures,
		Deleted:  info.Deleted,
	})
}

// serveCached writes fill's body through the read cache when one is
// configured (so concurrent identical requests share a fill), directly
// otherwise. Fill errors are mapped like any query error.
func (s *server) serveCached(w http.ResponseWriter, key string, fill func() ([]byte, error)) {
	var body []byte
	var err error
	if s.cache != nil {
		body, err = s.cache.Get(key, fill)
	} else {
		body, err = fill()
	}
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, situfact.ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, context.DeadlineExceeded):
			// The -request-timeout budget ran out mid scan: the daemon is
			// overloaded, not the request malformed.
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled):
			return // client gone; nobody is reading the response
		}
		writeErr(w, status, err.Error())
		return
	}
	writeRawJSON(w, http.StatusOK, body)
}

// marshalBody renders a response body exactly as writeJSON's Encoder would
// (trailing newline included), so cached and uncached responses are
// byte-identical.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeRawJSON writes an already-rendered JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		return // client went away; nothing to do
	}
}

// toQueryFactWire converts one queried fact.
func toQueryFactWire(f *situfact.QueryFact) queryFactWire {
	conds := make([]conditionWire, len(f.Conditions))
	for i, c := range f.Conditions {
		conds[i] = conditionWire{Attr: c.Attr, Value: c.Value}
	}
	return queryFactWire{
		Shard:       f.Shard,
		Conditions:  conds,
		Measures:    f.Measures,
		ContextSize: f.ContextSize,
		SkylineSize: f.SkylineSize,
		Prominence:  f.Prominence,
		TupleIDs:    f.TupleIDs,
		Text:        f.String(),
	}
}
