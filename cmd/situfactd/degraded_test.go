package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"sync/atomic"
	"testing"
	"time"
)

// postStatus POSTs one row and returns the status code plus the
// Retry-After header (degraded-mode 503s must carry one).
func postStatus(t *testing.T, url string, r rowWire) (int, string) {
	t.Helper()
	body, _ := json.Marshal(tupleRequest{Dims: r.Dims, Measures: r.Measures})
	resp, err := http.Post(url+"/v1/tuples", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/tuples: %v", err)
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	json.NewDecoder(resp.Body).Decode(&sink)
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

func healthStatus(t *testing.T, url string) (int, healthResponse) {
	t.Helper()
	status, body := getBody(t, url+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decode /healthz %s: %v", body, err)
	}
	return status, h
}

// TestDegradedModeServesReadsAndHeals is the degraded-mode acceptance
// test, in process with the pipeline on: a sticky fsync fault must turn
// writes into 503 + Retry-After (never 500, never a false 200), leave
// every read endpoint serving, report "degraded" on /healthz and in
// /v1/metrics — and the background repair loop must heal the log without
// a restart once the fault clears.
func TestDegradedModeServesReadsAndHeals(t *testing.T) {
	cfg := gamelogConfig(2, t.TempDir())
	cfg.wal = true
	cfg.pipeline = true
	cfg.faultPlan = "fsync:from=999999" // inert; armed for real below
	s, ts := startServer(t, cfg)

	for i, row := range table1[:3] {
		if st, _ := postStatus(t, ts.URL, row); st != http.StatusOK {
			t.Fatalf("warmup row %d: status %d", i, st)
		}
	}
	if err := s.faults.Program("fsync:from=1"); err != nil {
		t.Fatal(err)
	}

	st, retry := postStatus(t, ts.URL, wesley)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("write under fsync fault: status %d, want 503", st)
	}
	if retry == "" {
		t.Error("degraded 503 carries no Retry-After header")
	}
	// Sticky: the log stays poisoned for follow-up writes too.
	if st, _ := postStatus(t, ts.URL, table1[3]); st != http.StatusServiceUnavailable {
		t.Errorf("second write under fault: status %d, want 503", st)
	}

	// Reads keep serving the durable state.
	if status, body := getBody(t, ts.URL+"/v1/facts?limit=5"); status != http.StatusOK {
		t.Errorf("GET /v1/facts while degraded: %d: %s", status, body)
	}
	if status, _ := getBody(t, ts.URL+"/v1/facts/top?k=8"); status != http.StatusOK {
		t.Errorf("GET /v1/facts/top while degraded: %d", status)
	}
	if status, h := healthStatus(t, ts.URL); status != http.StatusOK || h.Status != "degraded" {
		t.Errorf("/healthz while degraded = %d %+v, want 200 with status \"degraded\"", status, h)
	} else if h.Reason == "" {
		t.Error("degraded /healthz carries no reason")
	}
	m := getMetrics(t, ts.URL)
	if !m.WAL.Degraded || m.WAL.DegradedReason == "" {
		t.Errorf("metrics wal block while degraded = %+v, want degraded with a reason", m.WAL)
	}

	// Fault clears; the repair loop must heal without a restart.
	s.faults.Clear()
	deadline := time.Now().Add(15 * time.Second)
	healed := false
	for time.Now().Before(deadline) {
		if _, h := healthStatus(t, ts.URL); h.Status == "ok" {
			healed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !healed {
		t.Fatalf("repair loop never healed the log: metrics %+v", getMetrics(t, ts.URL).WAL)
	}
	if st, _ := postStatus(t, ts.URL, wesley); st != http.StatusOK {
		t.Fatalf("write after heal: status %d, want 200", st)
	}
	m = getMetrics(t, ts.URL)
	if m.WAL.Degraded || m.WAL.Repairs < 1 {
		t.Errorf("metrics after heal = %+v, want not degraded with repairs >= 1", m.WAL)
	}
}

// TestDegradedChildProcessEnvPlan drives the same degradation through a
// real situfactd process armed purely by the SITUFACTD_FAULT_PLAN
// environment hook — the interface the chaos harness uses. The plan's
// clear-after makes the fault self-expire, so the daemon must go
// 503 -> healed with no intervention at all.
func TestDegradedChildProcessEnvPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real daemon process")
	}
	bin := buildDaemon(t)
	addr := freeAddr(t)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-dims", "team,player",
		"-measures", "points,rebounds",
		"-shards", "2",
		"-shard-dim", "team",
		"-state-dir", t.TempDir(),
		"-wal",
	)
	cmd.Env = append(os.Environ(), "SITUFACTD_FAULT_PLAN=fsync:from=1;clear-after=1500ms")
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("daemon logs:\n%s", logs.String())
		}
	})
	url := "http://" + addr
	waitUp := time.Now().Add(30 * time.Second)
	for {
		if resp, err := http.Get(url + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(waitUp) {
			t.Fatalf("daemon never came up\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	row := rowWire{Dims: []string{"team-1", "player-1"}, Measures: []float64{10, 2}}
	st, retry := postStatus(t, url, row)
	if st != http.StatusServiceUnavailable || retry == "" {
		t.Fatalf("first write under env fault plan: status %d retry-after %q, want 503 with Retry-After", st, retry)
	}
	// clear-after expires the plan; the repair loop heals unattended.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st, _ := postStatus(t, url, row); st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never healed\n%s", logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	m := getMetrics(t, url)
	if m.WAL.Degraded || m.WAL.Repairs < 1 {
		t.Errorf("metrics after self-heal = %+v, want not degraded with repairs >= 1", m.WAL)
	}
}

// TestRebootstrapAfterEpochSwap replaces the leader behind a fixed URL
// with a different instance, exactly like TestFollowerEpochMismatch —
// but this follower runs with a re-bootstrap budget, so instead of
// staying down it must re-download the new leader's snapshot, swap its
// pool under live readers, and converge on the new history.
func TestRebootstrapAfterEpochSwap(t *testing.T) {
	var inner atomic.Value
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(stub.Close)

	cfgA := gamelogConfig(2, t.TempDir())
	cfgA.wal = true
	a, _ := startServer(t, cfgA)
	inner.Store(a.handler())
	for _, row := range table1[:2] {
		if st, _ := postStatus(t, stub.URL, row); st != http.StatusOK {
			t.Fatalf("leader A rejected row: status %d", st)
		}
	}

	fcfg := gamelogConfig(2, t.TempDir())
	fcfg.follow = stub.URL
	fcfg.followPoll = 20 * time.Millisecond
	fcfg.followRebootstrapMax = 3
	_, fts := startServer(t, fcfg)
	waitApplied(t, fts.URL, 2)

	// Swap in leader B: same URL, different WAL epoch, different history.
	cfgB := gamelogConfig(2, t.TempDir())
	cfgB.wal = true
	b, bts := startServer(t, cfgB)
	for _, row := range table1[2:5] {
		if st, _ := postStatus(t, bts.URL, row); st != http.StatusOK {
			t.Fatalf("leader B rejected row: status %d", st)
		}
	}
	inner.Store(b.handler())

	// The follower must detect the epoch change and self-heal: one
	// re-bootstrap, then convergence on B's three rows.
	deadline := time.Now().Add(30 * time.Second)
	for {
		m, err := tryMetrics(fts.URL)
		if err == nil && m.Replication != nil && m.Replication.Rebootstraps >= 1 &&
			m.Replication.Fatal == "" && m.Replication.AppliedLSN >= 3 && m.Replication.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-bootstrapped: replication state %+v", m.Replication)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status, h := healthStatus(t, fts.URL); status != http.StatusOK {
		t.Fatalf("re-bootstrapped follower /healthz = %d %+v, want 200", status, h)
	}
	assertSameReads(t, bts.URL, fts.URL, gamelogQueries)

	// More writes on B keep replicating through the swapped pool.
	if st, _ := postStatus(t, bts.URL, table1[5]); st != http.StatusOK {
		t.Fatal("leader B rejected the post-swap row")
	}
	waitApplied(t, fts.URL, 4)
	assertSameReads(t, bts.URL, fts.URL, gamelogQueries)
}
