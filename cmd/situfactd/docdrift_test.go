package main

import (
	"os"
	"regexp"
	"slices"
	"strings"
	"testing"
)

// TestAPIDocEndpoints is a doc-drift guard (the API-side sibling of the
// root package's TestREADMEAlgorithmTable): the endpoint headings in
// docs/API.md must list exactly the patterns the mux registers. Adding a
// route without documenting it — or documenting one that was removed —
// fails CI.
func TestAPIDocEndpoints(t *testing.T) {
	data, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint headings look like: ## POST /v1/tuples — append one arrival
	// A query-string hint (## GET /v1/facts/top?k= — …) documents the same
	// route; strip it before comparing.
	headRE := regexp.MustCompile(`(?m)^## (GET|POST|DELETE) (\S+)`)
	var documented []string
	for _, m := range headRE.FindAllStringSubmatch(string(data), -1) {
		path, _, _ := strings.Cut(m[2], "?")
		documented = append(documented, m[1]+" "+path)
	}
	slices.Sort(documented)

	s, err := newServer(gamelogConfig(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	var registered []string
	for pattern := range s.routes() {
		registered = append(registered, pattern)
	}
	slices.Sort(registered)

	if !slices.Equal(documented, registered) {
		t.Errorf("docs/API.md endpoint headings drifted from the mux registrations:\n  documented: %v\n  registered: %v",
			documented, registered)
	}
}
