package main

import situfact "repro"

// Wire types of the situfactd JSON API, documented in docs/API.md. Field
// names are the contract; keep them in sync with the curl examples there.

// tupleRequest is the body of POST /v1/tuples: one arriving row, in schema
// order, plus response shaping.
type tupleRequest struct {
	Dims     []string  `json:"dims"`
	Measures []float64 `json:"measures"`
	// Top caps the facts returned (0 = all facts of the arrival).
	Top int `json:"top,omitempty"`
	// Narrate, when present, adds a newsroom-style sentence to each
	// returned fact, speaking about Subject (e.g. a player name).
	Narrate *narrateRequest `json:"narrate,omitempty"`
}

type narrateRequest struct {
	Subject string `json:"subject"`
}

// rowWire is one row of POST /v1/tuples:batch.
type rowWire struct {
	Dims     []string  `json:"dims"`
	Measures []float64 `json:"measures"`
}

// batchRequest is the body of POST /v1/tuples:batch.
type batchRequest struct {
	Rows []rowWire `json:"rows"`
	// Top caps the facts returned per arrival (0 = counts only, the
	// default for batches — a batch can surface thousands of facts).
	Top int `json:"top,omitempty"`
}

// conditionWire is one bound attribute of a fact's context.
type conditionWire struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// factWire is one discovered situational fact.
type factWire struct {
	Conditions  []conditionWire `json:"conditions"`
	Measures    []string        `json:"measures"`
	ContextSize int64           `json:"context_size,omitempty"`
	SkylineSize int             `json:"skyline_size,omitempty"`
	Prominence  float64         `json:"prominence,omitempty"`
	// Text is the paper-notation rendering (Fact.String).
	Text string `json:"text"`
	// Narration is the newsroom sentence; only set when requested.
	Narration string `json:"narration,omitempty"`
}

// arrivalResponse reports the outcome of one appended row.
type arrivalResponse struct {
	// ID is "<shard>:<tuple_id>", the handle DELETE /v1/tuples/{id} takes.
	ID        string     `json:"id"`
	Shard     int        `json:"shard"`
	TupleID   int64      `json:"tuple_id"`
	FactCount int        `json:"fact_count"`
	Facts     []factWire `json:"facts,omitempty"`
}

// batchResponse is the body of a POST /v1/tuples:batch response; arrival i
// belongs to row i. On a mid-batch engine failure (HTTP 500) Error is set
// and the arrivals that did commit are still present, with the failed
// shard's unprocessed rows null — Pool.AppendBatch's partial-result
// contract, passed through so clients can reconcile instead of
// blind-retrying committed rows.
type batchResponse struct {
	Arrivals []*arrivalResponse `json:"arrivals"`
	Error    string             `json:"error,omitempty"`
}

// measureWire describes one measure attribute of GET /v1/schema.
type measureWire struct {
	Name      string `json:"name"`
	Direction string `json:"direction"` // "larger-better" | "smaller-better"
}

// schemaResponse is the body of GET /v1/schema.
type schemaResponse struct {
	Relation   string        `json:"relation"`
	Dimensions []string      `json:"dimensions"`
	Measures   []measureWire `json:"measures"`
	ShardDim   string        `json:"shard_dim"`
	Shards     int           `json:"shards"`
	Algorithm  string        `json:"algorithm"`
	// Workers is the discovery goroutines per shard engine (1 for the
	// single-threaded algorithms; >1 under -shard-workers).
	Workers int `json:"workers"`
}

// metricsWire mirrors situfact.Metrics.
type metricsWire struct {
	Tuples       int64 `json:"tuples"`
	Comparisons  int64 `json:"comparisons"`
	Traversed    int64 `json:"traversed"`
	Facts        int64 `json:"facts"`
	StoredTuples int64 `json:"stored_tuples"`
	Cells        int64 `json:"cells"`
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
}

// shardWire is one shard's row of GET /v1/metrics.
type shardWire struct {
	Shard   int         `json:"shard"`
	Len     int         `json:"len"`
	Metrics metricsWire `json:"metrics"`
}

// walWire is the write-ahead-log block of GET /v1/metrics.
type walWire struct {
	// Enabled reports whether the daemon journals to a WAL (-wal).
	Enabled bool `json:"enabled"`
	// LastLSN is the highest journaled record; SyncedLSN the highest one
	// fsynced. LagRecords = LastLSN − SyncedLSN is the number of records
	// acknowledged (interval sync mode) or buffered (momentarily, in
	// group-commit mode) but not yet durable.
	LastLSN    uint64 `json:"last_lsn"`
	SyncedLSN  uint64 `json:"synced_lsn"`
	LagRecords uint64 `json:"lag_records"`
	// Segments is the live log segment count; checkpoints truncate it.
	Segments int `json:"segments"`
	// Degraded reports a sticky log failure: writes are refused with 503
	// until the background repair loop heals the log. DegradedReason is
	// the failure; Repairs counts successful heals since start.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Repairs        uint64 `json:"repairs"`
}

// ingestShardWire is one shard writer's row of the ingest block.
type ingestShardWire struct {
	Shard int `json:"shard"`
	// QueueDepth is the writer's current pending-operation count;
	// QueueCap the queue's current capacity (fixed at -pipeline-queue, or
	// floating below it under -pipeline-adaptive).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Enqueued / Batches count accepted operations and drain wakeups;
	// their ratio is the shard's mean drained-batch size.
	Enqueued uint64 `json:"enqueued"`
	Batches  uint64 `json:"batches"`
	MaxBatch int    `json:"max_batch"`
	// FullWaits counts producer blocks on a full queue (backpressure).
	FullWaits uint64 `json:"full_waits"`
	// Canceled counts producers whose request context ended while parked
	// on the full queue — the op was never accepted or acknowledged.
	Canceled uint64 `json:"canceled"`
	// Resizes counts adaptive capacity changes (grows and shrinks).
	Resizes uint64 `json:"resizes"`
}

// ingestWire is the ingest-pipeline block of GET /v1/metrics.
type ingestWire struct {
	// Pipeline reports whether the per-shard batching writers are running
	// (-pipeline); false means requests take the direct locked path and
	// the remaining fields are zero.
	Pipeline bool `json:"pipeline"`
	// QueueDepth and QueueCap sum the shards' pending-operation counts
	// and current queue capacities.
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Enqueued   uint64 `json:"enqueued"`
	Batches    uint64 `json:"batches"`
	// MeanBatch and MaxBatch summarise drained-batch sizes across shards.
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`
	// FullWaits sums the shards' backpressure (queue-full) events.
	FullWaits uint64 `json:"full_waits"`
	// Canceled sums producers whose context ended while parked on a full
	// queue (client disconnects and request deadlines at the enqueue
	// boundary); none of them were acknowledged.
	Canceled uint64 `json:"canceled"`
	// Resizes sums the shards' adaptive capacity changes.
	Resizes uint64 `json:"resizes"`
	// BatchHist is the merged drained-batch-size histogram: bucket i
	// counts batches of size (2^(i-1), 2^i], the last bucket everything
	// larger.
	BatchHist []uint64          `json:"batch_hist,omitempty"`
	PerShard  []ingestShardWire `json:"per_shard,omitempty"`
}

// toWireIngest maps the library's merged summary (Pool.IngestSummary —
// sums, mean batch and histogram are computed there, once) onto the wire
// block; the pipeline-off summary yields the zero block.
func toWireIngest(sum situfact.IngestSummary) ingestWire {
	out := ingestWire{
		Pipeline:   sum.Pipeline,
		QueueDepth: sum.QueueDepth,
		QueueCap:   sum.QueueCap,
		Enqueued:   sum.Enqueued,
		Batches:    sum.Batches,
		MeanBatch:  sum.MeanBatch,
		MaxBatch:   sum.MaxBatch,
		FullWaits:  sum.FullWaits,
		Canceled:   sum.Canceled,
		Resizes:    sum.Resizes,
		BatchHist:  sum.BatchHist,
	}
	if !sum.Pipeline {
		return out
	}
	out.PerShard = make([]ingestShardWire, len(sum.PerShard))
	for i, st := range sum.PerShard {
		out.PerShard[i] = ingestShardWire{
			Shard: i, QueueDepth: st.Depth, QueueCap: st.Cap,
			Enqueued: st.Enqueued, Batches: st.Batches, MaxBatch: st.MaxBatch,
			FullWaits: st.FullWaits, Canceled: st.Canceled, Resizes: st.Resizes,
		}
	}
	return out
}

// snapshotWire is the checkpoint block of GET /v1/metrics.
type snapshotWire struct {
	// Enabled reports whether the daemon persists snapshots (-state-dir).
	Enabled bool `json:"enabled"`
	// Generation numbers the last checkpoint this process committed.
	Generation uint64 `json:"generation,omitempty"`
	// SecondsSinceLast is the age of that checkpoint; -1 before the first
	// one (a restored-at-boot snapshot predates this process).
	SecondsSinceLast float64 `json:"seconds_since_last"`
}

// replicationWire is the follower block of GET /v1/metrics (absent on a
// leader).
type replicationWire struct {
	Follower bool   `json:"follower"`
	Leader   string `json:"leader"`
	// Epoch is the leader WAL instance the follower is pinned to.
	Epoch string `json:"epoch"`
	// AppliedLSN is the highest leader record applied locally; LeaderLSN
	// the leader's highest assigned LSN at the last poll. LagRecords is
	// their difference — /healthz degrades when it exceeds MaxLagRecords.
	AppliedLSN    uint64 `json:"applied_lsn"`
	LeaderLSN     uint64 `json:"leader_lsn"`
	LagRecords    uint64 `json:"lag_records"`
	MaxLagRecords uint64 `json:"max_lag_records"`
	// Applied / Skipped / Failed accumulate ApplyTail's per-record
	// outcomes since bootstrap (Failed counts deterministic re-failures,
	// exactly as WAL replay does).
	Applied          int     `json:"applied"`
	Skipped          int     `json:"skipped"`
	Failed           int     `json:"failed"`
	SecondsSincePoll float64 `json:"seconds_since_poll"`
	// LastError is the most recent transient poll failure (cleared by a
	// successful poll); Fatal a terminal one (epoch mismatch, truncated
	// tail) that stops replication until the operator re-bootstraps.
	LastError string `json:"last_error,omitempty"`
	Fatal     string `json:"fatal,omitempty"`
	// Rebootstraps counts automatic snapshot re-bootstraps after fatal
	// errors (-follow-rebootstrap-max bounds consecutive attempts).
	Rebootstraps int `json:"rebootstraps"`
}

// readCacheWire is the read-cache block of GET /v1/metrics.
type readCacheWire struct {
	// Enabled reports whether the TTL'd singleflight cache fronts
	// /v1/facts and /v1/facts/top (-read-cache-ttl).
	Enabled    bool    `json:"enabled"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// Hits counts requests served from a fresh entry (shared-fill waiters
	// included); Misses counts fills run against the pool.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	// OldestAgeSeconds is the age of the oldest cached response.
	OldestAgeSeconds float64 `json:"oldest_age_seconds"`
}

// overloadWire is the admission-control block of GET /v1/metrics.
type overloadWire struct {
	// Shed counts requests rejected 503 by admission control: the
	// in-flight gate plus backpressure write shedding. Degraded-mode WAL
	// rejections are the WAL block's concern, not counted here.
	Shed uint64 `json:"shed"`
	// Limited counts requests rejected 429 by the per-client token
	// bucket (-rate-limit).
	Limited uint64 `json:"limited"`
	// Inflight is the current concurrent-request count and InflightPeak
	// its high-water mark; MaxInflight the -max-inflight bound (0 = the
	// gate is off and both counters stay 0).
	Inflight     int64 `json:"inflight"`
	InflightPeak int64 `json:"inflight_peak"`
	MaxInflight  int64 `json:"max_inflight"`
	// RateLimit echoes -rate-limit (req/s per client; 0 = off) and
	// Clients is the number of per-client buckets currently tracked.
	RateLimit float64 `json:"rate_limit"`
	Clients   int     `json:"clients"`
	// Shedding reports whether write shedding is active right now
	// (sustained pipeline backpressure for longer than -shed-window).
	Shedding bool `json:"shedding"`
	// Panics counts handler panics recovered into single-request 500s.
	Panics uint64 `json:"panics"`
}

// indexWire is the incremental-fact-index block of GET /v1/metrics.
type indexWire struct {
	// Serving reports whether /v1/facts pages are answered from the index
	// (-fact-index, the default) rather than the reference full scan. The
	// index is maintained and its counters advance either way.
	Serving bool `json:"serving"`
	// Entries is the live (key, mask) count summed over shards — one per
	// stored fact cell.
	Entries int64 `json:"entries"`
	// Inserts/Deletes count index maintenance operations since start;
	// Seeks counts ordered lookups run on behalf of queries.
	Inserts uint64 `json:"inserts"`
	Deletes uint64 `json:"deletes"`
	Seeks   uint64 `json:"seeks"`
}

// metricsResponse is the body of GET /v1/metrics.
type metricsResponse struct {
	Algorithm     string           `json:"algorithm"`
	ShardDim      string           `json:"shard_dim"`
	Shards        int              `json:"shards"`
	Len           int              `json:"len"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Merged        metricsWire      `json:"merged"`
	PerShard      []shardWire      `json:"per_shard"`
	WAL           walWire          `json:"wal"`
	Ingest        ingestWire       `json:"ingest"`
	Snapshot      snapshotWire     `json:"snapshot"`
	Replication   *replicationWire `json:"replication,omitempty"`
	ReadCache     readCacheWire    `json:"read_cache"`
	Overload      overloadWire     `json:"overload"`
	Index         indexWire        `json:"index"`
}

// boardEntry is one leaderboard row of GET /v1/facts/top.
type boardEntry struct {
	// ID names the arrival the fact belongs to ("<shard>:<tuple_id>").
	ID         string   `json:"id"`
	Prominence float64  `json:"prominence"`
	Fact       factWire `json:"fact"`
}

// topFactsResponse is the body of GET /v1/facts/top.
type topFactsResponse struct {
	Facts []boardEntry `json:"facts"`
}

// topLiveResponse is the body of GET /v1/facts/top?source=live: the
// k highest-prominence facts ranked over the current µ-store contents
// (index-backed), not the arrival history the board keeps. Entries are
// queryFactWire because they are live cells, not remembered arrivals.
type topLiveResponse struct {
	Source string          `json:"source"`
	Facts  []queryFactWire `json:"facts"`
}

// queryFactWire is one fact of GET /v1/facts. Unlike factWire (an
// arrival's view) it names the owning shard and the skyline's tuple ids,
// because a query spans shards and pages are resumable.
type queryFactWire struct {
	Shard       int             `json:"shard"`
	Conditions  []conditionWire `json:"conditions,omitempty"`
	Measures    []string        `json:"measures"`
	ContextSize int64           `json:"context_size,omitempty"`
	SkylineSize int             `json:"skyline_size"`
	Prominence  float64         `json:"prominence,omitempty"`
	// TupleIDs are the per-shard ids of the skyline tuples, ascending.
	TupleIDs []int64 `json:"tuple_ids"`
	// Text is the paper-notation rendering (Fact.String).
	Text string `json:"text"`
}

// factsResponse is the body of GET /v1/facts. NextCursor, when non-empty,
// resumes the listing exactly after the last returned fact.
type factsResponse struct {
	Facts      []queryFactWire `json:"facts"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// tupleResponse is the body of GET /v1/tuples/{id}.
type tupleResponse struct {
	ID       string    `json:"id"`
	Shard    int       `json:"shard"`
	TupleID  int64     `json:"tuple_id"`
	Dims     []string  `json:"dims"`
	Measures []float64 `json:"measures"`
	Deleted  bool      `json:"deleted"`
}

// walRecordWire is one journaled operation of GET /v1/wal.
type walRecordWire struct {
	LSN uint64 `json:"lsn"`
	// Op is "append", "delete", or "noop" (a repair-burned LSN).
	Op    string `json:"op"`
	Shard int    `json:"shard"`
	// Dims and Measures carry the appended row (appends only).
	Dims     []string  `json:"dims,omitempty"`
	Measures []float64 `json:"measures,omitempty"`
	// TupleID is the retracted tuple's per-shard id (deletes only).
	TupleID int64 `json:"tuple_id,omitempty"`
}

// walTailResponse is the body of GET /v1/wal: a batch of journaled
// records with LSN >= from_lsn. Records are dense — a first record past
// the requested from_lsn means the tail was truncated away and the
// follower must re-bootstrap from a snapshot. More reports records
// remaining past the batch; LastLSN is the log's highest assigned LSN.
type walTailResponse struct {
	Epoch   string          `json:"epoch"`
	LastLSN uint64          `json:"last_lsn"`
	Records []walRecordWire `json:"records"`
	More    bool            `json:"more"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status string `json:"status"`
	Tuples int    `json:"tuples"`
	// Reason explains a non-ok status (follower lag or a fatal
	// replication error).
	Reason string `json:"reason,omitempty"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func toWireFact(f situfact.Fact) factWire {
	w := factWire{
		Measures:    f.Measures,
		ContextSize: f.ContextSize,
		SkylineSize: f.SkylineSize,
		Prominence:  f.Prominence,
		Text:        f.String(),
	}
	for _, c := range f.Conditions {
		w.Conditions = append(w.Conditions, conditionWire{Attr: c.Attr, Value: c.Value})
	}
	return w
}

func toWireMetrics(m situfact.Metrics) metricsWire {
	return metricsWire{
		Tuples: m.Tuples, Comparisons: m.Comparisons,
		Traversed: m.Traversed, Facts: m.Facts,
		StoredTuples: m.StoredTuples, Cells: m.Cells,
		Reads: m.Reads, Writes: m.Writes,
	}
}
