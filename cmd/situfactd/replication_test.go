package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// followerOf starts an in-process read-only follower of the given leader
// URL with a fast poll, sharing the leader's schema shape.
func followerOf(t *testing.T, leaderURL string, shards int) (*server, *httptest.Server) {
	t.Helper()
	cfg := gamelogConfig(shards, t.TempDir())
	cfg.follow = leaderURL
	cfg.followPoll = 20 * time.Millisecond
	return startServer(t, cfg)
}

// waitApplied blocks until the follower reports applied_lsn >= want with
// zero lag, or fails the test after 30s.
func waitApplied(t *testing.T, url string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		m, err := tryMetrics(url)
		if err == nil && m.Replication != nil &&
			m.Replication.AppliedLSN >= want && m.Replication.LagRecords == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	m, _ := tryMetrics(url)
	t.Fatalf("follower never applied LSN %d: replication state %+v", want, m.Replication)
}

// getBody GETs a URL and returns the status code and the raw body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

// factsPages drains the /v1/facts pagination for one query, returning
// every page's raw body. Cursors come out of the previous page, so two
// stores returning byte-identical pages walk identical cursor chains.
func factsPages(t *testing.T, base, query string, limit int) [][]byte {
	t.Helper()
	cursor := ""
	var pages [][]byte
	for {
		url := fmt.Sprintf("%s/v1/facts?%s&limit=%d", base, query, limit)
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		status, body := getBody(t, url)
		if status != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, status, body)
		}
		pages = append(pages, body)
		var page factsResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
		if page.NextCursor == "" {
			return pages
		}
		cursor = page.NextCursor
		if len(pages) > 10000 {
			t.Fatalf("query %q: runaway pagination", query)
		}
	}
}

// assertSameReads is the divergence detector: for a set of queries, every
// /v1/facts page, the leaderboard, and a tuple lookup must be
// byte-identical between the two daemons.
func assertSameReads(t *testing.T, leaderURL, followerURL string, queries []string) {
	t.Helper()
	for _, q := range queries {
		lp := factsPages(t, leaderURL, q, 3)
		fp := factsPages(t, followerURL, q, 3)
		if len(lp) != len(fp) {
			t.Fatalf("query %q: leader returned %d pages, follower %d", q, len(lp), len(fp))
		}
		for i := range lp {
			if !bytes.Equal(lp[i], fp[i]) {
				t.Errorf("query %q page %d diverged:\nleader   %s\nfollower %s", q, i, lp[i], fp[i])
			}
		}
	}
	_, ltop := getBody(t, leaderURL+"/v1/facts/top?k=16")
	_, ftop := getBody(t, followerURL+"/v1/facts/top?k=16")
	if !bytes.Equal(ltop, ftop) {
		t.Errorf("leaderboard diverged:\nleader   %s\nfollower %s", ltop, ftop)
	}
	ls, lb := getBody(t, leaderURL+"/v1/tuples/0:0")
	fs, fb := getBody(t, followerURL+"/v1/tuples/0:0")
	if ls != fs || !bytes.Equal(lb, fb) {
		t.Errorf("tuple lookup diverged: leader %d %s, follower %d %s", ls, lb, fs, fb)
	}
}

var gamelogQueries = []string{
	"",
	"shard=1",
	"where=month=Feb",
	"where=month=Feb&measures=assists",
	"where=player=Wesley&where=season=1995-96",
}

// TestFollowerServesIdenticalFacts is the core replication acceptance
// test: a follower bootstrapped from a leader snapshot and tailing its
// WAL must serve byte-identical query results — after the bootstrap,
// and again after further appends and a delete — while rejecting writes
// and staying healthy.
func TestFollowerServesIdenticalFacts(t *testing.T) {
	cfg := gamelogConfig(2, t.TempDir())
	cfg.wal = true
	leader, lts := startServer(t, cfg)
	for i, row := range table1 {
		if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader: row %d: status %d", i, resp.StatusCode)
		}
	}

	_, fts := followerOf(t, lts.URL, 2)
	waitApplied(t, fts.URL, uint64(len(table1)))
	assertSameReads(t, lts.URL, fts.URL, gamelogQueries)

	// Followers are read-only: every write verb is refused.
	if resp := doJSON(t, "POST", fts.URL+"/v1/tuples", reqOf(wesley), nil); resp.StatusCode != http.StatusForbidden {
		t.Errorf("follower accepted POST /v1/tuples: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", fts.URL+"/v1/tuples:batch", batchRequest{Rows: table1[:1]}, nil); resp.StatusCode != http.StatusForbidden {
		t.Errorf("follower accepted POST /v1/tuples:batch: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "DELETE", fts.URL+"/v1/tuples/0:0", nil, nil); resp.StatusCode != http.StatusForbidden {
		t.Errorf("follower accepted DELETE: status %d", resp.StatusCode)
	}

	// A caught-up follower with no lag bound is healthy.
	if status, body := getBody(t, fts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("follower /healthz = %d: %s", status, body)
	}
	fm := getMetrics(t, fts.URL)
	if fm.Replication == nil || !fm.Replication.Follower || fm.Replication.Epoch == "" {
		t.Fatalf("follower metrics missing replication state: %+v", fm.Replication)
	}
	if fm.Replication.AppliedLSN != uint64(len(table1)) {
		t.Errorf("follower applied LSN %d, want %d", fm.Replication.AppliedLSN, len(table1))
	}

	// Mutate the leader — another append plus a delete — and require
	// convergence again.
	if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(wesley), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader: wesley rejected: status %d", resp.StatusCode)
	}
	celtics := leader.db().ShardFor("Celtics")
	if resp := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/tuples/%d:0", lts.URL, celtics), nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("leader: delete rejected: status %d", resp.StatusCode)
	}
	waitApplied(t, fts.URL, uint64(len(table1))+2)
	assertSameReads(t, lts.URL, fts.URL, gamelogQueries)

	lm, fm2 := getMetrics(t, lts.URL), getMetrics(t, fts.URL)
	if lm.Merged != fm2.Merged {
		t.Errorf("merged metrics diverged:\nleader   %+v\nfollower %+v", lm.Merged, fm2.Merged)
	}
	if !reflect.DeepEqual(lm.PerShard, fm2.PerShard) {
		t.Errorf("per-shard metrics diverged:\nleader   %+v\nfollower %+v", lm.PerShard, fm2.PerShard)
	}
}

// TestFollowerIndexedReadsIdentical pins the read path the fleet actually
// runs: leader and follower both serving from the incremental fact index
// (the -fact-index default) must stay byte-identical across appends and a
// delete — and a second follower forced onto the reference scan path must
// produce those same bytes, so the index cannot drift from the scan even
// across the replication boundary.
func TestFollowerIndexedReadsIdentical(t *testing.T) {
	cfg := gamelogConfig(2, t.TempDir())
	cfg.wal = true
	leader, lts := startServer(t, cfg)
	if leader.db().ScanQueries() {
		t.Fatal("leader is not index-backed under the default config")
	}
	for i, row := range table1 {
		if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader: row %d: status %d", i, resp.StatusCode)
		}
	}

	indexed, its := followerOf(t, lts.URL, 2)
	scanCfg := gamelogConfig(2, t.TempDir())
	scanCfg.follow = lts.URL
	scanCfg.followPoll = 20 * time.Millisecond
	scanCfg.scanFacts = true
	scanner, sts := startServer(t, scanCfg)
	if indexed.db().ScanQueries() || !scanner.db().ScanQueries() {
		t.Fatal("follower read paths not wired from config")
	}

	// Mutate past the bootstrap so both followers exercise ApplyTail's
	// index maintenance, not just the restore-time rebuild.
	if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(wesley), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader: wesley rejected: status %d", resp.StatusCode)
	}
	celtics := leader.db().ShardFor("Celtics")
	if resp := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/tuples/%d:0", lts.URL, celtics), nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("leader: delete rejected: status %d", resp.StatusCode)
	}
	head := uint64(len(table1)) + 2
	waitApplied(t, its.URL, head)
	waitApplied(t, sts.URL, head)

	assertSameReads(t, lts.URL, its.URL, gamelogQueries)
	assertSameReads(t, lts.URL, sts.URL, gamelogQueries)

	lm, fm := getMetrics(t, lts.URL), getMetrics(t, its.URL)
	if !lm.Index.Serving || !fm.Index.Serving {
		t.Errorf("index not serving: leader %+v follower %+v", lm.Index, fm.Index)
	}
	if lm.Index.Entries == 0 || lm.Index.Entries != fm.Index.Entries {
		t.Errorf("index entries diverged: leader %d follower %d", lm.Index.Entries, fm.Index.Entries)
	}
	if sm := getMetrics(t, sts.URL); sm.Index.Serving {
		t.Errorf("scan follower reports index serving: %+v", sm.Index)
	} else if sm.Index.Entries != lm.Index.Entries {
		t.Errorf("scan follower's (idle) index entries %d != leader's %d: maintenance must not depend on the read path", sm.Index.Entries, lm.Index.Entries)
	}

	// The live leaderboard ranks current cells, so it sees the delete the
	// same way on every node.
	_, ltop := getBody(t, lts.URL+"/v1/facts/top?k=16&source=live")
	_, itop := getBody(t, its.URL+"/v1/facts/top?k=16&source=live")
	if !bytes.Equal(ltop, itop) {
		t.Errorf("live leaderboard diverged:\nleader   %s\nfollower %s", ltop, itop)
	}
}

// TestInvalidatorFor pins the per-shard eviction predicate: keys scoped
// to an advanced shard die, keys scoped to a quiet shard survive, and
// cross-shard keys die whenever anything moved.
func TestInvalidatorFor(t *testing.T) {
	pred := invalidatorFor([]uint64{5, 7, 9}, []uint64{5, 8, 9})
	cases := []struct {
		key  string
		want bool
	}{
		{"facts|0|where|...", false}, // shard 0 did not move
		{"facts|1|where|...", true},  // shard 1 advanced
		{"facts|2|where|...", false},
		{"facts|-1|all-shards", true}, // cross-shard page
		{"top|10", true},              // leaderboard
		{"top|live|16", true},
	}
	for _, c := range cases {
		if got := pred(c.key); got != c.want {
			t.Errorf("pred(%q) = %v, want %v", c.key, got, c.want)
		}
	}
	if quiet := invalidatorFor([]uint64{5, 7}, []uint64{5, 7}); quiet("top|10") || quiet("facts|-1|x") {
		t.Error("nothing moved but cross-shard keys were evicted")
	}
	// A follower that grew shards mid-flight (bootstrap) treats the new
	// shard as moved.
	if grown := invalidatorFor([]uint64{5}, []uint64{5, 1}); !grown("facts|1|x") {
		t.Error("newly appeared shard not treated as moved")
	}
}

// TestFollowerPerShardCacheInvalidation drives the selective eviction end
// to end: with the read cache on, a tail batch touching only one shard
// must leave the other shard's cached page serving hits.
func TestFollowerPerShardCacheInvalidation(t *testing.T) {
	cfg := gamelogConfig(2, t.TempDir())
	cfg.wal = true
	leader, lts := startServer(t, cfg)
	for i, row := range table1 {
		if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader: row %d: status %d", i, resp.StatusCode)
		}
	}
	fcfg := gamelogConfig(2, t.TempDir())
	fcfg.follow = lts.URL
	fcfg.followPoll = 20 * time.Millisecond
	fcfg.readCacheTTL = time.Minute
	follower, fts := startServer(t, fcfg)
	waitApplied(t, fts.URL, uint64(len(table1)))

	hot := leader.db().ShardFor(wesley.Dims[3]) // shard the next append lands on
	cold := 1 - hot
	// limit=500 keeps each shard's fact set on one page, so the hot
	// shard's body is guaranteed to change when the append lands.
	hotURL := fmt.Sprintf("%s/v1/facts?shard=%d&limit=500", fts.URL, hot)
	coldURL := fmt.Sprintf("%s/v1/facts?shard=%d&limit=500", fts.URL, cold)
	_, hotBefore := getBody(t, hotURL) // warm both cache entries
	_, coldBefore := getBody(t, coldURL)

	if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(wesley), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader: wesley rejected: status %d", resp.StatusCode)
	}
	waitApplied(t, fts.URL, uint64(len(table1))+1)

	st := follower.cache.Stats()
	_, hotAfter := getBody(t, hotURL)
	_, coldAfter := getBody(t, coldURL)
	if bytes.Equal(hotBefore, hotAfter) {
		t.Errorf("shard %d page unchanged after an append routed to it", hot)
	}
	if !bytes.Equal(coldBefore, coldAfter) {
		t.Errorf("shard %d page changed by an append routed to shard %d:\nbefore %s\nafter  %s", cold, hot, coldBefore, coldAfter)
	}
	st2 := follower.cache.Stats()
	if gotMisses := st2.Misses - st.Misses; gotMisses != 1 {
		t.Errorf("re-reading both shards after a one-shard advance refilled %d entries, want 1 (the advanced shard)", gotMisses)
	}
	if gotHits := st2.Hits - st.Hits; gotHits != 1 {
		t.Errorf("quiet shard's cached page served %d hits, want 1", gotHits)
	}
}

// TestFollowerEpochMismatch replaces the leader behind a fixed URL with a
// different instance (fresh state dir = fresh WAL epoch). The follower
// must refuse to serve — 503 with the reason — rather than silently mix
// two histories, and must stop applying records.
func TestFollowerEpochMismatch(t *testing.T) {
	var inner atomic.Value // holds the current leader's http.Handler
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(stub.Close)

	cfgA := gamelogConfig(1, t.TempDir())
	cfgA.wal = true
	a, _ := startServer(t, cfgA)
	inner.Store(a.handler())
	for _, row := range table1[:2] {
		if resp := doJSON(t, "POST", stub.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader A rejected row: status %d", resp.StatusCode)
		}
	}

	_, fts := followerOf(t, stub.URL, 1)
	waitApplied(t, fts.URL, 2)

	// Swap in leader B: same URL, different WAL epoch, different history.
	cfgB := gamelogConfig(1, t.TempDir())
	cfgB.wal = true
	b, bts := startServer(t, cfgB)
	for _, row := range table1[2:5] {
		if resp := doJSON(t, "POST", bts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader B rejected row: status %d", resp.StatusCode)
		}
	}
	inner.Store(b.handler())

	var health healthResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := getBody(t, fts.URL+"/healthz")
		if status == http.StatusServiceUnavailable {
			if err := json.Unmarshal(body, &health); err != nil {
				t.Fatalf("decode /healthz body %s: %v", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stayed healthy after the leader changed epochs (last /healthz: %d %s)", status, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(health.Reason, "epoch") {
		t.Errorf("/healthz reason %q does not name the epoch mismatch", health.Reason)
	}
	m := getMetrics(t, fts.URL)
	if m.Replication == nil || !strings.Contains(m.Replication.Fatal, "epoch") {
		t.Errorf("replication metrics missing fatal epoch error: %+v", m.Replication)
	}
	if m.Replication.AppliedLSN != 2 {
		t.Errorf("follower applied LSN advanced to %d after epoch mismatch, want 2", m.Replication.AppliedLSN)
	}
}

// TestFollowerConvergesAcrossLeaderCrash runs the full read-path story
// against a real leader binary: the leader is SIGKILLed mid-ingest and
// restarted over the same state dir and address; the follower — which
// never restarts — must ride through the outage (transient poll errors,
// not fatal ones) and converge to byte-identical reads once the resumed
// stream finishes. Segments are oversized so the restarted leader cannot
// truncate records the follower still needs.
func TestFollowerConvergesAcrossLeaderCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemon processes")
	}
	bin := buildDaemon(t)
	rows := crashRows(300)
	leaderDir := t.TempDir()
	addr := freeAddr(t)
	segFlag := []string{"-wal-segment-bytes", "1048576"}

	d := startDaemonAt(t, bin, leaderDir, addr, segFlag...)
	fcfg := config{
		relation:   "stream", // the binary's -relation default
		dims:       "team,player",
		measures:   "points,rebounds",
		shards:     3,
		shardDim:   "team",
		boardCap:   64,
		stateDir:   t.TempDir(),
		follow:     d.url,
		followPoll: 20 * time.Millisecond,
	}
	_, fts := startServer(t, fcfg)

	acked := make(chan int, 1)
	go func() {
		n := 0
		for _, r := range rows {
			if !postRow(d.url, r) {
				break
			}
			n++
		}
		acked <- n
	}()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m, err := tryMetrics(d.url); err == nil && m.Merged.Tuples >= int64(len(rows)/3) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
	nAcked := <-acked
	if nAcked >= len(rows) {
		t.Fatalf("leader survived the whole stream (%d rows) — the kill was not mid-ingest", nAcked)
	}

	// While the leader is down the follower must degrade to transient
	// poll errors, not a fatal stop.
	if m, err := tryMetrics(fts.URL); err == nil && m.Replication != nil && m.Replication.Fatal != "" {
		t.Fatalf("follower went fatal during the leader outage: %s", m.Replication.Fatal)
	}

	d2 := startDaemonAt(t, bin, leaderDir, addr, segFlag...)
	defer d2.stop()
	applied := int(getMetrics(t, d2.url).Merged.Tuples)
	if applied < nAcked {
		t.Fatalf("recovered leader lost acknowledged rows: %d applied < %d acked", applied, nAcked)
	}
	for i, r := range rows[applied:] {
		if !postRow(d2.url, r) {
			t.Fatalf("resumed feed: row %d rejected", applied+i)
		}
	}

	// Every row is one WAL record and LSNs are dense, so the final head
	// is exactly len(rows).
	waitApplied(t, fts.URL, uint64(len(rows)))
	if status, body := getBody(t, fts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("follower /healthz after convergence = %d: %s", status, body)
	}
	assertSameReads(t, d2.url, fts.URL, []string{
		"",
		"shard=2",
		"where=team=team-0",
		"where=team=team-0&measures=points",
	})
	lm, fm := getMetrics(t, d2.url), getMetrics(t, fts.URL)
	if lm.Merged != fm.Merged {
		t.Errorf("merged metrics diverged:\nleader   %+v\nfollower %+v", lm.Merged, fm.Merged)
	}
}
