package main

import (
	"fmt"
	"net/url"
	"testing"
)

// FuzzParseTupleID throws arbitrary strings at the "<shard>:<tuple_id>"
// parser used by DELETE /v1/tuples/{id} and GET /v1/tuples/{id}. It must
// never panic, and any id it accepts must have a canonical form that
// parses back to the same (shard, tuple) pair — otherwise two spellings
// of one id could name different tuples.
func FuzzParseTupleID(f *testing.F) {
	f.Add("2:17")
	f.Add("17")
	f.Add("0:0")
	f.Add("-1:-1")
	f.Add("1:2:3")
	f.Add(":")
	f.Add("")
	f.Add("+1:07")
	f.Add("9999999999999999999999:1")
	f.Fuzz(func(t *testing.T, id string) {
		shard, tuple, err := parseTupleID(id)
		if err != nil {
			return
		}
		canon := fmt.Sprintf("%d:%d", shard, tuple)
		shard2, tuple2, err := parseTupleID(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted id %q does not re-parse: %v", canon, id, err)
		}
		if shard2 != shard || tuple2 != tuple {
			t.Fatalf("id %q parsed as (%d,%d) but canonical %q re-parsed as (%d,%d)",
				id, shard, tuple, canon, shard2, tuple2)
		}
	})
}

// FuzzParseFactsQuery feeds arbitrary raw query strings through
// url.ParseQuery into the GET /v1/facts parameter parser. Invariants for
// accepted queries: the page limit is clamped to [1, factsMaxLimit], a
// tuple filter always carries a concrete shard, and parsing is
// deterministic (the derived cache key in particular — two parses of the
// same query must hit the same cache entry).
func FuzzParseFactsQuery(f *testing.F) {
	cfg := gamelogConfig(2, "")
	s, err := newServer(cfg)
	if err != nil {
		f.Fatal(err)
	}
	defer s.close()

	f.Add("shard=1&where=month=Feb&limit=10")
	f.Add("where=team=t1&where=player=p3&measures=points,assists")
	f.Add("tuple=1:44&cursor=djF8MHww")
	f.Add("tuple=12&shard=0")
	f.Add("limit=0")
	f.Add("limit=99999&shard=-2")
	f.Add("where=nokey&where==&measures=,")
	f.Add("cursor=!!!not-base64!!!")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		fq, err := s.parseFactsQuery(s.db(), q)
		if err != nil {
			return
		}
		if fq.limit < 1 || fq.limit > factsMaxLimit {
			t.Fatalf("query %q: limit %d outside [1, %d]", raw, fq.limit, factsMaxLimit)
		}
		if fq.filter.WithTuple && fq.filter.Shard < 0 {
			t.Fatalf("query %q: tuple filter without a concrete shard: %+v", raw, fq.filter)
		}
		if fq.key == "" {
			t.Fatalf("query %q: empty cache key", raw)
		}
		fq2, err := s.parseFactsQuery(s.db(), q)
		if err != nil {
			t.Fatalf("query %q: second parse failed: %v", raw, err)
		}
		if fq2.key != fq.key {
			t.Fatalf("query %q: non-deterministic cache key: %q vs %q", raw, fq.key, fq2.key)
		}
	})
}
