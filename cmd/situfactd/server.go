package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	situfact "repro"
)

// config carries every run parameter; flags fill one in main.
type config struct {
	addr     string // listen address
	relation string // relation name (cosmetic, part of the schema signature)
	dims     string // comma-separated dimension column names
	measures string // comma-separated measure names ('-' prefix = smaller-is-better)
	algo     string // algorithm name (core registry)
	dhat     int    // max bound dimension attributes (0 = no cap)
	mhat     int    // max measure subspace size (0 = no cap)
	shards   int    // pool shard count
	shardDim string // dimension routing rows to shards; "" = first dimension
	workers  int    // worker count for the parallel-* algorithms
	stateDir string // snapshot directory; "" disables persistence
	boardCap int    // leaderboard capacity for GET /v1/facts/top
}

// server owns the pool and the leaderboard. Append/Delete handlers rely on
// the Pool's own per-shard locking for safety — the server adds no request
// serialization of its own, so arrivals racing for one shard are ordered by
// lock acquisition and different shards proceed in parallel (see
// docs/ARCHITECTURE.md for why that ordering is sound).
type server struct {
	cfg      config
	schema   *situfact.Schema
	measures []measureWire
	pool     *situfact.Pool
	board    *leaderboard
	started  time.Time
}

// buildSchema parses the -dims/-measures flags into a schema, returning
// the measure descriptions for GET /v1/schema alongside.
func buildSchema(cfg config) (*situfact.Schema, []measureWire, error) {
	schema, specs, err := situfact.ParseSchema(cfg.relation, cfg.dims, cfg.measures)
	if err != nil {
		return nil, nil, err
	}
	wires := make([]measureWire, len(specs))
	for i, sp := range specs {
		dir := "larger-better"
		if sp.Direction == situfact.SmallerBetter {
			dir = "smaller-better"
		}
		wires[i] = measureWire{Name: sp.Name, Direction: dir}
	}
	return schema, wires, nil
}

// newServer builds the pool — restoring it from cfg.stateDir when a
// snapshot is present there — and the server around it.
func newServer(cfg config) (*server, error) {
	schema, wires, err := buildSchema(cfg)
	if err != nil {
		return nil, err
	}
	algo := cfg.algo
	if algo == "" {
		algo = string(situfact.AlgoSBottomUp)
	}
	var pool *situfact.Pool
	if cfg.stateDir != "" {
		pool, err = situfact.LoadPoolSnapshot(schema, cfg.stateDir)
		switch {
		case errors.Is(err, situfact.ErrNoSnapshot):
			pool = nil // fresh start below
		case err != nil:
			// A corrupt or mismatched snapshot must fail startup loudly —
			// starting empty over existing state would be silent data loss.
			return nil, fmt.Errorf("situfactd: restore %s: %w", cfg.stateDir, err)
		default:
			log.Printf("restored %d shards (%d tuples) from %s",
				pool.Shards(), pool.Len(), cfg.stateDir)
			// A snapshot pins shard count, routing, algorithm and caps;
			// flags that ask for something else are overridden — say so.
			if cfg.shards > 0 && cfg.shards != pool.Shards() {
				log.Printf("warning: -shards %d ignored, snapshot has %d shards", cfg.shards, pool.Shards())
			}
			if d := strings.TrimSpace(cfg.shardDim); d != "" && d != pool.ShardDim() {
				log.Printf("warning: -shard-dim %s ignored, snapshot routes by %s", d, pool.ShardDim())
			}
			if !strings.EqualFold(pool.Algorithm(), algo) {
				log.Printf("warning: -algo %s ignored, snapshot was taken under %s", algo, pool.Algorithm())
			}
			if cfg.dhat != 0 || cfg.mhat != 0 || cfg.workers != 0 {
				log.Printf("warning: -dhat/-mhat/-workers are pinned by the snapshot; flag values ignored")
			}
		}
	}
	if pool == nil {
		pool, err = situfact.NewPool(schema, situfact.PoolOptions{
			Shards:   cfg.shards,
			ShardDim: strings.TrimSpace(cfg.shardDim),
			Engine: situfact.Options{
				Algorithm:      situfact.Algorithm(algo),
				MaxBoundDims:   cfg.dhat,
				MaxMeasureDims: cfg.mhat,
				Workers:        cfg.workers,
			},
		})
		if err != nil {
			return nil, err
		}
	}
	// Refuse -state-dir with an engine snapshots cannot serialise now,
	// not at the first SIGTERM.
	if cfg.stateDir != "" && !pool.CanSnapshot() {
		pool.Close()
		return nil, fmt.Errorf("situfactd: -state-dir requires a snapshot-capable algorithm (lattice family over the in-memory store), not %q", algo)
	}
	bcap := cfg.boardCap
	if bcap <= 0 {
		bcap = 128
	}
	return &server{
		cfg:      cfg,
		schema:   schema,
		measures: wires,
		pool:     pool,
		board:    &leaderboard{cap: bcap},
		started:  time.Now(),
	}, nil
}

// handler routes the API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/facts/top", s.handleTopFacts)
	mux.HandleFunc("POST /v1/tuples", s.handleAppend)
	mux.HandleFunc("POST /v1/tuples:batch", s.handleBatch)
	mux.HandleFunc("DELETE /v1/tuples/{id}", s.handleDelete)
	return mux
}

// saveState writes the pool snapshot; a no-op without -state-dir.
func (s *server) saveState() error {
	if s.cfg.stateDir == "" {
		return nil
	}
	return s.pool.SaveSnapshot(s.cfg.stateDir)
}

func (s *server) close() error { return s.pool.Close() }

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Tuples: s.pool.Len()})
}

func (s *server) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, schemaResponse{
		Relation:   s.cfg.relation,
		Dimensions: s.schema.DimensionNames(),
		Measures:   s.measures,
		ShardDim:   s.pool.ShardDim(),
		Shards:     s.pool.Shards(),
		Algorithm:  s.pool.Algorithm(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// One ShardStats sweep supplies both views, so per_shard always sums
	// to merged even under concurrent ingest (Pool.Metrics would re-take
	// the shard locks in a second pass that could disagree).
	stats := s.pool.ShardStats()
	resp := metricsResponse{
		Algorithm:     s.pool.Algorithm(),
		ShardDim:      s.pool.ShardDim(),
		Shards:        s.pool.Shards(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		PerShard:      make([]shardWire, len(stats)),
	}
	var merged situfact.Metrics
	for i, st := range stats {
		resp.Len += st.Len
		resp.PerShard[i] = shardWire{Shard: st.Shard, Len: st.Len, Metrics: toWireMetrics(st.Metrics)}
		merged.Add(st.Metrics)
	}
	resp.Merged = toWireMetrics(merged)
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTopFacts(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad k %q", q))
			return
		}
		k = n
	}
	writeJSON(w, http.StatusOK, topFactsResponse{Facts: s.board.top(k)})
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req tupleRequest
	if !decodeBody(w, r, 1<<20, &req) {
		return
	}
	arr, err := s.pool.Append(req.Dims, req.Measures)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := s.toArrival(arr, req.Top, true)
	if req.Narrate != nil {
		values := make(map[string]float64, len(s.measures))
		for i, m := range s.measures {
			values[m.Name] = req.Measures[i]
		}
		for i := range resp.Facts {
			f := arr.Facts[i]
			resp.Facts[i].Narration = situfact.Narrate(f, req.Narrate.Subject, values)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, 32<<20, &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	rows := make([]situfact.Row, len(req.Rows))
	for i, rw := range req.Rows {
		rows[i] = situfact.Row{Dims: rw.Dims, Measures: rw.Measures}
	}
	arrs, batchErr := s.pool.AppendBatch(rows)
	if batchErr != nil && arrs == nil {
		// Pre-validation failure: nothing was processed.
		writeErr(w, http.StatusBadRequest, batchErr.Error())
		return
	}
	resp := batchResponse{Arrivals: make([]*arrivalResponse, len(arrs))}
	for i, arr := range arrs {
		if arr == nil {
			continue // unprocessed row of a failed shard
		}
		a := s.toArrival(arr, req.Top, req.Top > 0)
		resp.Arrivals[i] = &a
	}
	if batchErr != nil {
		// Mid-batch engine failure: the arrivals present above DID commit;
		// report them with the error so the client can reconcile.
		resp.Error = strings.TrimPrefix(batchErr.Error(), "situfact: ")
		writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.Contains(id, ":") && s.pool.Shards() > 1 {
		// A bare number would silently target shard 0 — on a multi-shard
		// pool that could retract the wrong tuple, so refuse it loudly.
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("bare tuple id %q is ambiguous with %d shards: use <shard>:<tuple_id>", id, s.pool.Shards()))
		return
	}
	shard, tupleID, err := parseTupleID(id)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.pool.Delete(shard, tupleID); err != nil {
		writeErr(w, deleteStatus(err), err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// toArrival converts an arrival, caps the returned facts at top (0 = all
// when includeFacts), and feeds the leaderboard with every scored fact.
func (s *server) toArrival(arr *situfact.Arrival, top int, includeFacts bool) arrivalResponse {
	id := fmt.Sprintf("%d:%d", arr.Shard, arr.TupleID)
	// Pre-filter against the board's floor before paying for wire
	// conversion: after warmup almost no fact clears a full board. The
	// floor only rises, so a stale read can only admit extra candidates —
	// offerAll rechecks under its own lock.
	floor, full := s.board.floor()
	var scored []boardEntry
	for _, f := range arr.Facts {
		if f.Prominence > 0 && (!full || f.Prominence > floor) {
			scored = append(scored, boardEntry{ID: id, Prominence: f.Prominence, Fact: toWireFact(f)})
		}
	}
	s.board.offerAll(scored)
	resp := arrivalResponse{
		ID:        id,
		Shard:     arr.Shard,
		TupleID:   arr.TupleID,
		FactCount: len(arr.Facts),
	}
	if includeFacts {
		facts := arr.Facts
		if top > 0 {
			facts = arr.Top(top)
		}
		resp.Facts = make([]factWire, len(facts))
		for i, f := range facts {
			resp.Facts[i] = toWireFact(f)
		}
	}
	return resp
}

// parseTupleID parses the "<shard>:<tuple_id>" handle; a bare number is
// accepted as shard 0 for single-shard deployments.
func parseTupleID(id string) (shard int, tupleID int64, err error) {
	shardStr, tupleStr, found := strings.Cut(id, ":")
	if !found {
		shardStr, tupleStr = "0", id
	}
	shard, err = strconv.Atoi(shardStr)
	if err != nil {
		return 0, 0, fmt.Errorf("bad tuple id %q: want <shard>:<tuple_id>", id)
	}
	tupleID, err = strconv.ParseInt(tupleStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad tuple id %q: want <shard>:<tuple_id>", id)
	}
	return shard, tupleID, nil
}

// deleteStatus maps Pool.Delete errors onto HTTP statuses.
func deleteStatus(err error) int {
	switch {
	case errors.Is(err, situfact.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, situfact.ErrAlreadyDeleted):
		return http.StatusConflict
	default: // e.g. the algorithm does not support deletion
		return http.StatusBadRequest
	}
}

// decodeBody decodes a size-capped JSON body, writing the error response
// itself when decoding fails.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: strings.TrimPrefix(msg, "situfact: ")})
}

// leaderboard retains the highest-prominence facts seen since startup for
// GET /v1/facts/top. It is a monitoring view, not part of the discovery
// semantics: entries are not retracted when their tuple is deleted.
type leaderboard struct {
	mu      sync.Mutex
	cap     int
	entries []boardEntry
}

// offerAll inserts the entries in descending-prominence order (stable for
// ties: earlier arrivals rank first), dropping whatever falls beyond the
// capacity. One lock acquisition covers the whole batch — an arrival can
// carry hundreds of scored facts, and the board is shared by all shards.
func (b *leaderboard) offerAll(entries []boardEntry) {
	if len(entries) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range entries {
		if len(b.entries) == b.cap && e.Prominence <= b.entries[len(b.entries)-1].Prominence {
			continue
		}
		i := sort.Search(len(b.entries), func(i int) bool {
			return b.entries[i].Prominence < e.Prominence
		})
		b.entries = append(b.entries, boardEntry{})
		copy(b.entries[i+1:], b.entries[i:])
		b.entries[i] = e
		if len(b.entries) > b.cap {
			b.entries = b.entries[:b.cap]
		}
	}
}

// floor returns the prominence of the board's weakest entry and whether
// the board is at capacity (only then is the floor a rejection threshold).
func (b *leaderboard) floor() (float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.entries) < b.cap {
		return 0, false
	}
	return b.entries[len(b.entries)-1].Prominence, true
}

// top returns the k highest-prominence entries.
func (b *leaderboard) top(k int) []boardEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k > len(b.entries) {
		k = len(b.entries)
	}
	out := make([]boardEntry, k)
	copy(out, b.entries[:k])
	return out
}
