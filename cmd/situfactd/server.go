package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	situfact "repro"
	"repro/internal/faultfs"
	"repro/internal/middleware"
	"repro/internal/readcache"
)

// config carries every run parameter; flags fill one in main.
type config struct {
	addr         string        // listen address
	relation     string        // relation name (cosmetic, part of the schema signature)
	dims         string        // comma-separated dimension column names
	measures     string        // comma-separated measure names ('-' prefix = smaller-is-better)
	algo         string        // algorithm name (core registry)
	dhat         int           // max bound dimension attributes (0 = no cap)
	mhat         int           // max measure subspace size (0 = no cap)
	shards       int           // pool shard count
	shardDim     string        // dimension routing rows to shards; "" = first dimension
	workers      int           // worker count for the parallel-* algorithms
	shardWorkers int           // >1 = parallel-bottomup with N workers per shard
	stateDir     string        // snapshot directory; "" disables persistence
	wal          bool          // journal ingest to <stateDir>/wal, replay on start
	walSync      time.Duration // 0 = fsync before every ack; >0 = background interval fsync
	walSegBytes  int64         // WAL segment rotation threshold (0 = 64 MiB)
	snapInterval time.Duration // background checkpoint period; 0 = shutdown-only snapshots
	boardCap     int           // leaderboard capacity for GET /v1/facts/top
	pipeline     bool          // per-shard batching ingest writers (Pool.StartPipeline)
	pipeQueue    int           // per-shard ingest queue depth (0 = 256)
	pipeAdaptive bool          // adaptive queue capacities (PipelineOptions.AdaptiveQueue)
	pprofAddr    string        // extra net/http/pprof listener; "" = off
	follow       string        // leader base URL; non-empty = read-only follower
	followPoll   time.Duration // follower WAL-tail poll period (0 = 500ms)
	followMaxLag uint64        // replication lag (records) beyond which /healthz degrades
	readCacheTTL time.Duration // TTL of the read cache over /v1/facts{,/top}; 0 = off
	scanFacts    bool          // serve reads from the reference full scan (-fact-index=false); zero value = index-backed
	faultPlan    string        // faultfs plan injected under the WAL (testing only); "" = none
	// followRebootstrapMax caps automatic follower re-bootstraps after a
	// fatal replication error; 0 = never re-bootstrap (fatal states stand
	// until an operator restarts the process).
	followRebootstrapMax int

	// Overload protection & request lifecycle (see internal/middleware and
	// docs/ARCHITECTURE.md "Overload control & admission").
	configPath     string        // JSON config file; flags override its keys
	logRequests    bool          // structured per-request log lines
	rateLimit      float64       // per-client token-bucket rate (req/s); 0 = off
	rateBurst      int           // token-bucket burst; 0 = 2×rate
	maxInflight    int           // concurrent in-flight request bound; 0 = off
	shedWindow     time.Duration // sustained-backpressure window before shedding writes; 0 = off
	requestTimeout time.Duration // per-request context deadline; 0 = none
	readTimeout    time.Duration // http.Server.ReadTimeout (whole request read); 0 = none
	writeTimeout   time.Duration // http.Server.WriteTimeout; 0 = none (snapshot streams!)
	idleTimeout    time.Duration // http.Server.IdleTimeout for keep-alives
	maxBody        int64         // POST /v1/tuples body cap in bytes
	maxBatchBody   int64         // POST /v1/tuples:batch body cap in bytes
	factIndex      bool          // flag view of the read path (scanFacts = !factIndex)
	walVerifyMode  bool          // -wal-verify: offline fsck then exit
}

// server owns the pool and the leaderboard. Append/Delete handlers rely on
// the Pool's own ingest discipline for safety — the server adds no request
// serialization of its own. By default the pool runs the ingest pipeline
// (-pipeline): handlers enqueue onto per-shard batching writers and
// arrivals racing for one shard are applied in enqueue order; with
// -pipeline=false they take the per-shard locks directly and are ordered
// by lock acquisition. Either way different shards proceed in parallel
// (see docs/ARCHITECTURE.md for why that ordering is sound).
type server struct {
	cfg      config
	schema   *situfact.Schema
	measures []measureWire
	// poolv holds the serving pool. It is a swappable pointer because a
	// follower's automatic re-bootstrap replaces the whole pool under live
	// readers: handlers load it once per request via db() and never mix
	// two pools within one request. On a leader it is set once.
	poolv   atomic.Pointer[situfact.Pool]
	wal     *situfact.WAL // nil without -wal
	board   *leaderboard
	started time.Time
	// cache fronts the hot read endpoints (/v1/facts, /v1/facts/top) with
	// a TTL'd singleflight layer; nil without -read-cache-ttl. On a
	// leader staleness is bounded by the TTL alone; on a follower the
	// replication loop additionally invalidates it whenever the applied
	// LSN advances.
	cache *readcache.Cache
	// repl is the follower runtime (see replication.go); nil on a leader.
	repl *replState

	// faults is the injected I/O plan under the WAL (-fault-plan or the
	// SITUFACTD_FAULT_PLAN env hook); nil without one. In-process tests
	// clear or reprogram it to drive the daemon into and out of degraded
	// mode.
	faults *faultfs.Faulty
	// walRepairs counts successful background WAL repairs this process.
	walRepairs atomic.Uint64
	repairStop chan struct{} // closes to stop walRepairLoop; nil without -wal
	repairDone chan struct{}
	repairOnce sync.Once

	// Admission control (nil members = that layer is off; every accessor
	// on them is nil-safe). limiter and admit protect leaders and
	// followers alike; shedder only runs where there is a pipeline to
	// watch, so it is nil on followers and with -pipeline=false.
	limiter *middleware.Limiter
	admit   *middleware.Gate
	shedder *middleware.Shedder
	panics  atomic.Uint64 // handler panics Recover turned into 500s
	// shedStop/shedDone bound the backpressure sampler goroutine
	// (shedLoop); nil when the shedder is off.
	shedStop chan struct{}
	shedDone chan struct{}
	shedOnce sync.Once

	// stateMu serialises checkpoints (background snapshotter vs shutdown).
	stateMu sync.Mutex
	// gate orders board feeds against checkpoints: append handlers hold it
	// for read across apply+feed, and the checkpoint's sidecar callback
	// takes it for write as a barrier — so the captured leaderboard
	// contains every arrival the captured shard snapshots contain, and
	// anything newer is re-fed by WAL replay (offerAll deduplicates).
	gate sync.RWMutex
	// snapMu guards the snapshot telemetry for GET /v1/metrics.
	snapMu   sync.Mutex
	lastSnap time.Time // zero until the first checkpoint this process
	snapGen  uint64
}

// sidecarLeaderboard keys the persisted leaderboard in the snapshot
// manifest's sidecars.
const sidecarLeaderboard = "leaderboard"

// db returns the pool currently serving requests. Handlers call it once
// per request and work against that pool for the request's whole
// lifetime, so a concurrent re-bootstrap swap never mixes two pools
// within one response.
func (s *server) db() *situfact.Pool { return s.poolv.Load() }

// buildSchema parses the -dims/-measures flags into a schema, returning
// the measure descriptions for GET /v1/schema alongside.
func buildSchema(cfg config) (*situfact.Schema, []measureWire, error) {
	schema, specs, err := situfact.ParseSchema(cfg.relation, cfg.dims, cfg.measures)
	if err != nil {
		return nil, nil, err
	}
	wires := make([]measureWire, len(specs))
	for i, sp := range specs {
		dir := "larger-better"
		if sp.Direction == situfact.SmallerBetter {
			dir = "smaller-better"
		}
		wires[i] = measureWire{Name: sp.Name, Direction: dir}
	}
	return schema, wires, nil
}

// newServer builds the pool and the server around it, running the full
// recovery sequence when cfg.stateDir holds prior state: restore the
// newest snapshot (including the leaderboard sidecar), replay the WAL
// tail through the ingest path so derived state catches up, then attach
// the WAL for live journaling.
func newServer(cfg config) (*server, error) {
	if cfg.follow != "" {
		return newFollower(cfg)
	}
	schema, wires, err := buildSchema(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.wal && cfg.stateDir == "" {
		return nil, fmt.Errorf("situfactd: -wal requires -state-dir")
	}
	algo := cfg.algo
	if algo == "" {
		algo = string(situfact.AlgoSBottomUp)
	}
	workers := cfg.workers
	if cfg.shardWorkers > 1 {
		// -shard-workers is shorthand for "apply each shard's batches with
		// N discovery goroutines": it upgrades the bottomup family to
		// parallel-bottomup. An explicit -algo outside that family is a
		// contradiction, not something to silently override.
		switch situfact.Algorithm(algo) {
		case situfact.AlgoBottomUp, situfact.AlgoSBottomUp, situfact.AlgoParallelBottomUp:
			algo = string(situfact.AlgoParallelBottomUp)
			workers = cfg.shardWorkers
		default:
			return nil, fmt.Errorf("situfactd: -shard-workers %d runs parallel-bottomup per shard, which conflicts with -algo %s", cfg.shardWorkers, algo)
		}
	}
	var pool *situfact.Pool
	var sidecars map[string][]byte
	if cfg.stateDir != "" {
		pool, sidecars, err = situfact.RestorePool(schema, cfg.stateDir)
		switch {
		case errors.Is(err, situfact.ErrNoSnapshot):
			pool = nil // fresh start below
		case err != nil:
			// A corrupt or mismatched snapshot must fail startup loudly —
			// starting empty over existing state would be silent data loss.
			return nil, fmt.Errorf("situfactd: restore %s: %w", cfg.stateDir, err)
		default:
			log.Printf("restored %d shards (%d tuples) from %s",
				pool.Shards(), pool.Len(), cfg.stateDir)
			// A snapshot pins shard count, routing, algorithm and caps;
			// flags that ask for something else are overridden — say so.
			if cfg.shards > 0 && cfg.shards != pool.Shards() {
				log.Printf("warning: -shards %d ignored, snapshot has %d shards", cfg.shards, pool.Shards())
			}
			if d := strings.TrimSpace(cfg.shardDim); d != "" && d != pool.ShardDim() {
				log.Printf("warning: -shard-dim %s ignored, snapshot routes by %s", d, pool.ShardDim())
			}
			if !strings.EqualFold(pool.Algorithm(), algo) {
				log.Printf("warning: -algo %s ignored, snapshot was taken under %s", algo, pool.Algorithm())
			}
			if cfg.dhat != 0 || cfg.mhat != 0 || cfg.workers != 0 {
				log.Printf("warning: -dhat/-mhat/-workers are pinned by the snapshot; flag values ignored")
			}
		}
	}
	if pool == nil {
		pool, err = situfact.NewPool(schema, situfact.PoolOptions{
			Shards:   cfg.shards,
			ShardDim: strings.TrimSpace(cfg.shardDim),
			Engine: situfact.Options{
				Algorithm:      situfact.Algorithm(algo),
				MaxBoundDims:   cfg.dhat,
				MaxMeasureDims: cfg.mhat,
				Workers:        workers,
			},
		})
		if err != nil {
			return nil, err
		}
	}
	// -fact-index=false keeps the reference scan path on the read side;
	// the index itself is maintained either way, so the flag can be
	// flipped across restarts without any rebuild cost beyond recovery.
	pool.SetScanQueries(cfg.scanFacts)
	// Refuse -state-dir with an engine snapshots cannot serialise now,
	// not at the first SIGTERM.
	if cfg.stateDir != "" && !pool.CanSnapshot() {
		pool.Close()
		return nil, fmt.Errorf("situfactd: -state-dir requires a snapshot-capable algorithm (lattice family over the in-memory store), not %q", algo)
	}
	bcap := cfg.boardCap
	if bcap <= 0 {
		bcap = 128
	}
	s := &server{
		cfg:      cfg,
		schema:   schema,
		measures: wires,
		board:    &leaderboard{cap: bcap},
		started:  time.Now(),
		cache:    newReadCache(cfg),
	}
	s.initAdmission()
	s.poolv.Store(pool)
	if lb, ok := sidecars[sidecarLeaderboard]; ok {
		if err := s.board.restore(lb); err != nil {
			// The board is a monitoring view; a bad sidecar should not
			// block recovery of the relation itself.
			log.Printf("warning: leaderboard sidecar unreadable, starting it empty: %v", err)
		}
	}
	if !cfg.wal && cfg.stateDir != "" {
		// A journal from a prior -wal run may hold acknowledged rows past
		// the newest snapshot; starting without -wal would silently drop
		// that tail (and a later -wal restart would replay it out of
		// order). Refuse until the operator decides.
		walDir := filepath.Join(cfg.stateDir, "wal")
		ents, err := os.ReadDir(walDir)
		switch {
		case err == nil && len(ents) > 0:
			pool.Close()
			return nil, fmt.Errorf("situfactd: %s holds a write-ahead log but -wal is off: "+
				"its unreplayed tail would be silently dropped; restart with -wal, or move the wal directory away to discard it", walDir)
		case err != nil && !os.IsNotExist(err):
			// Unreadable is not the same as absent — starting anyway could
			// silently drop the very tail the guard protects.
			pool.Close()
			return nil, fmt.Errorf("situfactd: checking %s for a leftover write-ahead log: %w", walDir, err)
		}
	}
	if cfg.faultPlan != "" {
		if !cfg.wal {
			return nil, fmt.Errorf("situfactd: -fault-plan covers the write-ahead log and needs -wal")
		}
		faults, err := faultfs.NewWithPlan(faultfs.OS, cfg.faultPlan)
		if err != nil {
			return nil, fmt.Errorf("situfactd: %w", err)
		}
		s.faults = faults
		log.Printf("FAULT INJECTION ACTIVE (testing only): %s", cfg.faultPlan)
	}
	if cfg.wal {
		opts := situfact.WALOptions{
			SegmentBytes: cfg.walSegBytes,
			SyncInterval: cfg.walSync,
		}
		if s.faults != nil {
			opts.FS = s.faults
		}
		wal, err := situfact.OpenWAL(pool, filepath.Join(cfg.stateDir, "wal"), opts)
		if err != nil {
			pool.Close()
			return nil, fmt.Errorf("situfactd: %w", err)
		}
		// Replay through the ingest path: the pool re-applies the tail and
		// every replayed arrival re-feeds the leaderboard, exactly as the
		// original request did.
		stats, err := pool.ReplayWAL(wal, func(arr *situfact.Arrival) { s.feedBoard(arr) })
		if err != nil {
			wal.Close()
			pool.Close()
			return nil, fmt.Errorf("situfactd: wal replay: %w", err)
		}
		if stats.Records > 0 {
			log.Printf("wal: replayed %d records (%d applied, %d already in snapshot, %d re-failed); %d tuples live",
				stats.Records, stats.Applied, stats.Skipped, stats.Failed, pool.Len())
		}
		if err := pool.AttachWAL(wal); err != nil {
			wal.Close()
			pool.Close()
			return nil, fmt.Errorf("situfactd: %w", err)
		}
		s.wal = wal
	}
	// The pipeline starts last: recovery (restore + replay) runs on the
	// direct path, and every live request from here on batches through the
	// per-shard writers.
	if cfg.pipeline {
		if err := pool.StartPipeline(situfact.PipelineOptions{
			QueueDepth:    cfg.pipeQueue,
			AdaptiveQueue: cfg.pipeAdaptive,
		}); err != nil {
			s.close()
			return nil, fmt.Errorf("situfactd: %w", err)
		}
	}
	s.startShedLoop()
	if s.wal != nil {
		s.repairStop = make(chan struct{})
		s.repairDone = make(chan struct{})
		go s.walRepairLoop()
	}
	return s, nil
}

// walRepairLoop watches the log for a sticky failure and retries
// WAL.Repair with capped exponential backoff — the heal half of degraded
// mode: a relieved ENOSPC or transient device error clears without a
// process restart, and writers that were receiving 503s resume. See
// docs/ARCHITECTURE.md "Failure domains & degraded mode".
func (s *server) walRepairLoop() {
	defer close(s.repairDone)
	const probe = 50 * time.Millisecond
	const maxBackoff = 5 * time.Second
	backoff := probe
	for {
		select {
		case <-s.repairStop:
			return
		case <-time.After(backoff):
		}
		if s.wal.Err() == nil {
			backoff = probe
			continue
		}
		lost, err := s.wal.Repair()
		if err != nil {
			backoff = min(backoff*2, maxBackoff)
			log.Printf("wal repair failed (next attempt in %v): %v", backoff, err)
			continue
		}
		s.walRepairs.Add(1)
		backoff = probe
		log.Printf("wal repaired: resuming writes (%d journaled-but-unacknowledged records noop-filled)", lost)
	}
}

// routes is the single source of truth for the API surface;
// TestAPIDocEndpoints keeps docs/API.md's endpoint list equal to it.
func (s *server) routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"GET /healthz":           s.handleHealthz,
		"GET /v1/schema":         s.handleSchema,
		"GET /v1/metrics":        s.handleMetrics,
		"GET /v1/facts":          s.handleFacts,
		"GET /v1/facts/top":      s.handleTopFacts,
		"GET /v1/tuples/{id}":    s.handleTuple,
		"GET /v1/snapshot":       s.handleSnapshot,
		"GET /v1/wal":            s.handleWALTail,
		"POST /v1/tuples":        s.handleAppend,
		"POST /v1/tuples:batch":  s.handleBatch,
		"DELETE /v1/tuples/{id}": s.handleDelete,
	}
}

// newReadCache builds the read cache when -read-cache-ttl asks for one.
func newReadCache(cfg config) *readcache.Cache {
	if cfg.readCacheTTL <= 0 {
		return nil
	}
	return readcache.New(cfg.readCacheTTL)
}

// initAdmission builds the admission layers from the config. Both
// constructors (newServer and newFollower) call it, so every limit a
// leader enforces holds on its followers too. Layers the config leaves
// at zero come back nil, and every middleware accessor treats nil as
// "off".
func (s *server) initAdmission() {
	s.limiter = middleware.NewLimiter(s.cfg.rateLimit, s.cfg.rateBurst)
	s.admit = middleware.NewGate(s.cfg.maxInflight)
	if s.cfg.pipeline && s.cfg.follow == "" && s.cfg.shedWindow > 0 {
		// Shedding watches the ingest pipeline's backpressure; without a
		// pipeline (follower, -pipeline=false) there is nothing to watch.
		s.shedder = middleware.NewShedder(s.cfg.shedWindow)
	}
}

// shedSamplePeriod is how often shedLoop samples the pipeline for
// sustained backpressure; it must divide the -shed-window finely enough
// that a calm sample inside the window resets it.
const shedSamplePeriod = 50 * time.Millisecond

// startShedLoop launches the backpressure sampler when a shedder is
// configured; a no-op otherwise. Called after StartPipeline.
func (s *server) startShedLoop() {
	if s.shedder == nil {
		return
	}
	s.shedStop = make(chan struct{})
	s.shedDone = make(chan struct{})
	go s.shedLoop()
}

// shedLoop feeds the shedder its saturation signal: the pipeline is
// saturated when producers blocked on a full queue since the last sample
// AND some shard's queue is still at capacity now. The first condition
// alone would trip on a momentary blip the adaptive queue absorbs by
// growing; the second alone would trip on a queue that is full but
// draining fine. Only both, sustained across the whole -shed-window,
// turn shedding on — and one calm sample turns it back off.
func (s *server) shedLoop() {
	defer close(s.shedDone)
	t := time.NewTicker(shedSamplePeriod)
	defer t.Stop()
	var lastFullWaits uint64
	for {
		select {
		case <-s.shedStop:
			return
		case now := <-t.C:
			sum := s.db().IngestSummary()
			saturated := false
			if sum.FullWaits > lastFullWaits {
				for _, st := range sum.PerShard {
					if st.Depth >= st.Cap {
						saturated = true
						break
					}
				}
			}
			lastFullWaits = sum.FullWaits
			s.shedder.Observe(saturated, now)
		}
	}
}

// maxBodyBytes / maxBatchBytes are the request body caps, defaulted here
// rather than in the config so in-process tests that build a bare config
// keep the production caps.
func (s *server) maxBodyBytes() int64 {
	if s.cfg.maxBody > 0 {
		return s.cfg.maxBody
	}
	return 1 << 20
}

func (s *server) maxBatchBytes() int64 {
	if s.cfg.maxBatchBody > 0 {
		return s.cfg.maxBatchBody
	}
	return 32 << 20
}

// handler routes the API behind the admission and lifecycle middleware.
// The chain, outermost first:
//
//	Log            per-request line + the verdict slot (only with -log-requests)
//	Recover        a handler panic 500s one request, not the process
//	Limit          per-client token bucket → 429 + Retry-After
//	InflightLimit  concurrent-request bound → 503 + Retry-After
//	ShedWrites     sustained pipeline backpressure → writes 503, reads pass
//	Deadline       per-request context budget (-request-timeout)
//
// Log sits outside Recover so the line records the 500 and the "panic"
// verdict; the admission layers sit inside Recover so even a bug in them
// cannot kill the daemon. Rejections happen before the body is read or
// journaled, so a shed request was never acknowledged. routes() stays
// the undecorated source of truth for the API surface.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range s.routes() {
		mux.HandleFunc(pattern, h)
	}
	var layers []middleware.Func
	if s.cfg.logRequests {
		layers = append(layers, middleware.Log(log.Printf))
	}
	layers = append(layers,
		middleware.Recover(log.Printf, &s.panics),
		middleware.Limit(s.limiter),
		middleware.InflightLimit(s.admit),
		middleware.ShedWrites(s.shedder),
		middleware.Deadline(s.cfg.requestTimeout),
	)
	return middleware.Chain(layers...)(mux)
}

// saveState commits a checkpoint; a no-op without -state-dir. It is the
// graceful-shutdown entry point and shares checkpoint's serialisation
// with the background snapshotter.
func (s *server) saveState() error { return s.checkpoint() }

// checkpoint snapshots every shard plus the leaderboard sidecar into the
// state dir and truncates WAL segments the new generation covers.
func (s *server) checkpoint() error {
	if s.cfg.stateDir == "" {
		return nil
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	_, err := s.checkpointLocked()
	return err
}

// checkpointLocked is checkpoint's body, factored out so the snapshot
// shipper (handleSnapshot) can hold stateMu across the checkpoint AND the
// subsequent file streaming — no newer generation may replace the files
// mid stream. Caller holds s.stateMu.
func (s *server) checkpointLocked() (situfact.CheckpointStats, error) {
	stats, err := s.db().Checkpoint(s.cfg.stateDir, s.snapshotSidecars)
	if err != nil {
		return stats, err
	}
	s.snapMu.Lock()
	s.lastSnap = time.Now()
	s.snapGen = stats.Generation
	s.snapMu.Unlock()
	if s.wal != nil && stats.TruncatableLSN > 0 {
		if err := s.wal.TruncateBefore(stats.TruncatableLSN + 1); err != nil {
			// The checkpoint itself committed; stale segments only cost
			// replay time, so log rather than fail.
			log.Printf("wal truncate: %v", err)
		}
	}
	return stats, nil
}

// snapshotSidecars captures the leaderboard for the manifest. Called by
// Pool.Checkpoint after the shard files are written: the write-lock
// barrier waits out handlers mid feed, so the captured board holds every
// arrival the shard snapshots hold (anything newer is re-fed by replay).
func (s *server) snapshotSidecars() (map[string][]byte, error) {
	s.gate.Lock()
	s.gate.Unlock() // barrier only: nothing to do inside
	b, err := s.board.marshal()
	if err != nil {
		return nil, err
	}
	return map[string][]byte{sidecarLeaderboard: b}, nil
}

// snapshotLoop checkpoints on a fixed period until ctx is cancelled — the
// background companion to the WAL: the log bounds data loss, the loop
// bounds the log.
func (s *server) snapshotLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.checkpoint(); err != nil {
				log.Printf("background checkpoint: %v", err)
			}
		}
	}
}

func (s *server) close() error {
	if s.repl != nil {
		// Stop the replication loop before the pool it applies into.
		s.repl.shutdown()
	}
	if s.shedStop != nil {
		// Stop the backpressure sampler before the pool it samples.
		s.shedOnce.Do(func() { close(s.shedStop) })
		<-s.shedDone
	}
	if s.repairStop != nil {
		// Stop the repair loop before the WAL it repairs.
		s.repairOnce.Do(func() { close(s.repairStop) })
		<-s.repairDone
	}
	err := s.db().Close()
	if s.wal != nil {
		err = errors.Join(err, s.wal.Close())
	}
	return err
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	pool := s.db()
	if s.repl != nil {
		// A follower is healthy only while it can promise near-leader reads:
		// a fatal replication error (epoch mismatch, truncated-away tail) or
		// lag beyond -follow-max-lag degrades it to 503 so load balancers
		// stop routing reads here.
		if reason := s.repl.unhealthy(); reason != "" {
			writeJSON(w, http.StatusServiceUnavailable,
				healthResponse{Status: "unavailable", Tuples: pool.Len(), Reason: reason})
			return
		}
	}
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			// Degraded, not down: reads still serve (hence 200, so probes
			// that gate read traffic keep routing here), writes 503 until
			// the background repair loop clears the fault.
			writeJSON(w, http.StatusOK,
				healthResponse{Status: "degraded", Tuples: pool.Len(), Reason: "wal: " + errMsg(err)})
			return
		}
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Tuples: pool.Len()})
}

// errMsg strips the library prefix for wire-facing reasons.
func errMsg(err error) string {
	return strings.TrimPrefix(err.Error(), "situfact: ")
}

func (s *server) handleSchema(w http.ResponseWriter, r *http.Request) {
	pool := s.db()
	writeJSON(w, http.StatusOK, schemaResponse{
		Relation:   s.cfg.relation,
		Dimensions: s.schema.DimensionNames(),
		Measures:   s.measures,
		ShardDim:   pool.ShardDim(),
		Shards:     pool.Shards(),
		Algorithm:  pool.Algorithm(),
		Workers:    pool.Workers(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// One ShardStats sweep supplies both views, so per_shard always sums
	// to merged even under concurrent ingest (Pool.Metrics would re-take
	// the shard locks in a second pass that could disagree).
	pool := s.db()
	stats := pool.ShardStats()
	resp := metricsResponse{
		Algorithm:     pool.Algorithm(),
		ShardDim:      pool.ShardDim(),
		Shards:        pool.Shards(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		PerShard:      make([]shardWire, len(stats)),
	}
	var merged situfact.Metrics
	for i, st := range stats {
		resp.Len += st.Len
		resp.PerShard[i] = shardWire{Shard: st.Shard, Len: st.Len, Metrics: toWireMetrics(st.Metrics)}
		merged.Add(st.Metrics)
	}
	resp.Merged = toWireMetrics(merged)
	if s.wal != nil {
		wst := s.wal.Stats()
		resp.WAL = walWire{
			Enabled:    true,
			LastLSN:    wst.LastLSN,
			SyncedLSN:  wst.SyncedLSN,
			LagRecords: wst.LastLSN - wst.SyncedLSN,
			Segments:   wst.Segments,
			Repairs:    s.walRepairs.Load(),
		}
		if werr := s.wal.Err(); werr != nil {
			resp.WAL.Degraded = true
			resp.WAL.DegradedReason = errMsg(werr)
		}
	}
	resp.Ingest = toWireIngest(pool.IngestSummary())
	resp.Snapshot = snapshotWire{Enabled: s.cfg.stateDir != "", SecondsSinceLast: -1}
	s.snapMu.Lock()
	if !s.lastSnap.IsZero() {
		resp.Snapshot.SecondsSinceLast = time.Since(s.lastSnap).Seconds()
		resp.Snapshot.Generation = s.snapGen
	}
	s.snapMu.Unlock()
	if s.repl != nil {
		rw := s.repl.wire()
		resp.Replication = &rw
	}
	resp.ReadCache = readCacheWire{Enabled: s.cache != nil}
	if s.cache != nil {
		cst := s.cache.Stats()
		resp.ReadCache.TTLSeconds = s.cfg.readCacheTTL.Seconds()
		resp.ReadCache.Hits = cst.Hits
		resp.ReadCache.Misses = cst.Misses
		resp.ReadCache.Entries = cst.Entries
		resp.ReadCache.OldestAgeSeconds = cst.OldestAge.Seconds()
	}
	resp.Overload = overloadWire{
		Shed:         s.admit.Shed() + s.shedder.Shed(),
		Limited:      s.limiter.Limited(),
		Inflight:     s.admit.Inflight(),
		InflightPeak: s.admit.Peak(),
		MaxInflight:  s.admit.Bound(),
		RateLimit:    s.cfg.rateLimit,
		Clients:      s.limiter.Clients(),
		Shedding:     s.shedder.Shedding(),
		Panics:       s.panics.Load(),
	}
	ist := pool.IndexStats()
	resp.Index = indexWire{
		Serving: ist.Serving,
		Entries: ist.Entries,
		Inserts: ist.Inserts,
		Deletes: ist.Deletes,
		Seeks:   ist.Seeks,
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTopFacts(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad k %q", q))
			return
		}
		k = n
	}
	switch src := r.URL.Query().Get("source"); src {
	case "", "board":
		s.serveCached(w, "top|"+strconv.Itoa(k), func() ([]byte, error) {
			return marshalBody(topFactsResponse{Facts: s.board.top(k)})
		})
	case "live":
		// The live leaderboard ranks the current fact set straight out of
		// the incremental index (every cell, not just recent arrivals), so
		// it reflects deletions the arrival-history board cannot see.
		s.serveCached(w, "top|live|"+strconv.Itoa(k), func() ([]byte, error) {
			facts, err := s.db().TopFacts(k)
			if err != nil {
				return nil, err
			}
			resp := topLiveResponse{Source: "live", Facts: make([]queryFactWire, len(facts))}
			for i := range facts {
				resp.Facts[i] = toQueryFactWire(&facts[i])
			}
			return marshalBody(resp)
		})
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad source %q: want board or live", src))
	}
}

// rejectOnFollower answers write requests on a follower with 403: the
// follower's state is a replica of the leader's journal, and a local write
// would fork it. Returns true when the request was handled (rejected).
func (s *server) rejectOnFollower(w http.ResponseWriter) bool {
	if s.repl == nil {
		return false
	}
	writeErr(w, http.StatusForbidden, "read-only follower: send writes to the leader")
	return true
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	var req tupleRequest
	if !decodeBody(w, r, s.maxBodyBytes(), &req) {
		return
	}
	// The gate is held across apply + board feed (toArrival) so a
	// concurrent checkpoint's board capture never falls between them —
	// but NOT across the response write: a client that stops reading must
	// not hold up the checkpoint barrier (and, through the pending
	// writer, all other ingest). The closure's defer keeps the lock
	// panic-safe. See server.gate.
	var arr *situfact.Arrival
	var resp arrivalResponse
	err := func() error {
		s.gate.RLock()
		defer s.gate.RUnlock()
		var err error
		if arr, err = s.db().AppendContext(r.Context(), req.Dims, req.Measures); err != nil {
			return err
		}
		resp = s.toArrival(arr, req.Top, true)
		return nil
	}()
	if err != nil {
		if writeIngestCtxErr(w, r, err) {
			return
		}
		// A journal failure is the daemon's fault, not the request's: the
		// daemon is degraded but repairing itself in the background, so
		// report 503 + Retry-After — retry soon, do not drop the row as
		// malformed (and do not treat the daemon as crashed).
		if errors.Is(err, situfact.ErrWALFailed) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Narrate != nil {
		values := make(map[string]float64, len(s.measures))
		for i, m := range s.measures {
			values[m.Name] = req.Measures[i]
		}
		for i := range resp.Facts {
			f := arr.Facts[i]
			resp.Facts[i].Narration = situfact.Narrate(f, req.Narrate.Subject, values)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	var req batchRequest
	if !decodeBody(w, r, s.maxBatchBytes(), &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	rows := make([]situfact.Row, len(req.Rows))
	for i, rw := range req.Rows {
		rows[i] = situfact.Row{Dims: rw.Dims, Measures: rw.Measures}
	}
	// Like handleAppend: the gate covers apply + board feeds only, never
	// the response write, and a closure defer keeps it panic-safe.
	var arrs []*situfact.Arrival
	var resp batchResponse
	var batchErr error
	func() {
		s.gate.RLock()
		defer s.gate.RUnlock()
		arrs, batchErr = s.db().AppendBatchContext(r.Context(), rows)
		if arrs == nil {
			return // pre-validation failure: nothing applied, nothing to feed
		}
		resp.Arrivals = make([]*arrivalResponse, len(arrs))
		for i, arr := range arrs {
			if arr == nil {
				continue // unprocessed row of a failed shard
			}
			a := s.toArrival(arr, req.Top, req.Top > 0)
			resp.Arrivals[i] = &a
		}
	}()
	if batchErr != nil && arrs == nil {
		// Nothing was processed: usually a pre-validation failure (400),
		// but a poisoned WAL also fails whole batches before any arrival.
		if writeIngestCtxErr(w, r, batchErr) {
			return
		}
		if errors.Is(batchErr, situfact.ErrWALFailed) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, batchErr.Error())
			return
		}
		writeErr(w, http.StatusBadRequest, batchErr.Error())
		return
	}
	if batchErr != nil {
		// Mid-batch engine failure: the arrivals present above DID commit;
		// report them with the error so the client can reconcile. A journal
		// failure is the degraded-mode case — 503 + Retry-After, the batch
		// (minus the committed arrivals) is retryable; so is a request
		// deadline that ran out mid batch (the rows that made it in are
		// reported, the rest were never accepted).
		status := http.StatusInternalServerError
		if errors.Is(batchErr, situfact.ErrWALFailed) || errors.Is(batchErr, context.DeadlineExceeded) {
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		}
		resp.Error = strings.TrimPrefix(batchErr.Error(), "situfact: ")
		writeJSON(w, status, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	id := r.PathValue("id")
	pool := s.db()
	if !strings.Contains(id, ":") && pool.Shards() > 1 {
		// A bare number would silently target shard 0 — on a multi-shard
		// pool that could retract the wrong tuple, so refuse it loudly.
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("bare tuple id %q is ambiguous with %d shards: use <shard>:<tuple_id>", id, pool.Shards()))
		return
	}
	shard, tupleID, err := parseTupleID(id)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := pool.DeleteContext(r.Context(), shard, tupleID); err != nil {
		if writeIngestCtxErr(w, r, err) {
			return
		}
		status := deleteStatus(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, status, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeIngestCtxErr consumes the two context outcomes of the ingest
// path's enqueue boundary, reporting whether it handled the error. A
// canceled context means the client hung up while its request was
// parked on a full queue — the op was never accepted, and nobody is
// reading the response, so nothing is written. A deadline means the
// -request-timeout budget ran out waiting for queue space: the daemon
// is overloaded, so answer like every other overload rejection.
func writeIngestCtxErr(w http.ResponseWriter, r *http.Request, err error) bool {
	switch {
	case errors.Is(err, context.Canceled):
		middleware.SetVerdict(r, "canceled")
		return true
	case errors.Is(err, context.DeadlineExceeded):
		middleware.SetVerdict(r, "deadline")
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "overloaded: request deadline exceeded waiting for ingest queue space")
		return true
	}
	return false
}

// feedBoard offers an arrival's scored facts to the leaderboard — the
// live ingest path and WAL replay share it, so a recovered board sees
// exactly the offers the original run made. It returns the arrival's
// wire id so the ingest path formats it once.
func (s *server) feedBoard(arr *situfact.Arrival) string {
	id := fmt.Sprintf("%d:%d", arr.Shard, arr.TupleID)
	// Pre-filter against the board's floor before paying for wire
	// conversion: after warmup almost no fact clears a full board. The
	// floor only rises, so a stale read can only admit extra candidates —
	// offerAll rechecks under its own lock.
	floor, full := s.board.floor()
	var scored []boardEntry
	for _, f := range arr.Facts {
		if f.Prominence > 0 && (!full || f.Prominence > floor) {
			scored = append(scored, boardEntry{ID: id, Prominence: f.Prominence, Fact: toWireFact(f)})
		}
	}
	s.board.offerAll(scored)
	return id
}

// toArrival converts an arrival, caps the returned facts at top (0 = all
// when includeFacts), and feeds the leaderboard with every scored fact.
func (s *server) toArrival(arr *situfact.Arrival, top int, includeFacts bool) arrivalResponse {
	id := s.feedBoard(arr)
	resp := arrivalResponse{
		ID:        id,
		Shard:     arr.Shard,
		TupleID:   arr.TupleID,
		FactCount: len(arr.Facts),
	}
	if includeFacts {
		facts := arr.Facts
		if top > 0 {
			facts = arr.Top(top)
		}
		resp.Facts = make([]factWire, len(facts))
		for i, f := range facts {
			resp.Facts[i] = toWireFact(f)
		}
	}
	return resp
}

// parseTupleID parses the "<shard>:<tuple_id>" handle; a bare number is
// accepted as shard 0 for single-shard deployments.
func parseTupleID(id string) (shard int, tupleID int64, err error) {
	shardStr, tupleStr, found := strings.Cut(id, ":")
	if !found {
		shardStr, tupleStr = "0", id
	}
	shard, err = strconv.Atoi(shardStr)
	if err != nil {
		return 0, 0, fmt.Errorf("bad tuple id %q: want <shard>:<tuple_id>", id)
	}
	tupleID, err = strconv.ParseInt(tupleStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad tuple id %q: want <shard>:<tuple_id>", id)
	}
	return shard, tupleID, nil
}

// deleteStatus maps Pool.Delete errors onto HTTP statuses.
func deleteStatus(err error) int {
	switch {
	case errors.Is(err, situfact.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, situfact.ErrAlreadyDeleted):
		return http.StatusConflict
	case errors.Is(err, situfact.ErrWALFailed):
		return http.StatusServiceUnavailable // degraded mode: retryable, see handleDelete
	case errors.Is(err, situfact.ErrDeleteUnsupported):
		return http.StatusBadRequest // the algorithm does not support deletion
	default:
		return http.StatusBadRequest
	}
}

// Buffer pooling: every request used to pay a fresh decoder buffer on
// the way in and a fresh encoder state on the way out — per-request
// garbage that grows with connection count. Request bodies are slurped
// into pooled buffers, and responses are encoded through pooled
// buffer+encoder pairs before one Write (which also yields a
// Content-Length). Buffers that ballooned serving a large batch are
// dropped rather than pooled, so a burst of big requests cannot pin
// their high-water memory forever.

const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// jsonEncoder is a pooled response encoder bound to its own buffer.
type jsonEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := new(jsonEncoder)
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// decodeBody decodes a size-capped JSON body through a pooled read
// buffer, writing the error response itself when decoding fails.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*jsonEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Nothing has been written yet, so a plain 500 is still possible.
		log.Printf("encode response: %v", err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		encPool.Put(e)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		log.Printf("write response: %v", err)
	}
	if e.buf.Cap() <= maxPooledBuf {
		encPool.Put(e)
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: strings.TrimPrefix(msg, "situfact: ")})
}

// leaderboard retains the highest-prominence facts seen for
// GET /v1/facts/top. It is a monitoring view, not part of the discovery
// semantics: entries are not retracted when their tuple is deleted. With
// -state-dir it survives restarts — checkpoints persist it as a manifest
// sidecar, and WAL replay re-offers the tail's facts.
type leaderboard struct {
	mu      sync.Mutex
	cap     int
	entries []boardEntry
	// floorBits/full cache the rejection threshold for lock-free reads
	// (floor): floorBits is the Float64bits of the weakest entry's
	// prominence, full whether the board is at capacity. Updated under mu
	// (updateFloor); readers may see a momentarily stale pair, which can
	// only admit extra candidates — offerAll rechecks under the lock.
	floorBits atomic.Uint64
	full      atomic.Bool
}

// updateFloor refreshes the lock-free threshold cache; caller holds mu.
func (b *leaderboard) updateFloor() {
	if len(b.entries) < b.cap {
		b.full.Store(false)
		b.floorBits.Store(0)
		return
	}
	b.floorBits.Store(math.Float64bits(b.entries[len(b.entries)-1].Prominence))
	b.full.Store(true)
}

// offerAll inserts the entries in descending-prominence order (stable for
// ties: earlier arrivals rank first), dropping whatever falls beyond the
// capacity. One lock acquisition covers the whole batch — an arrival can
// carry hundreds of scored facts, and the board is shared by all shards.
//
// Offers are idempotent: an entry naming the same arrival and fact as one
// already on the board is dropped, so recovery — which re-offers facts
// the snapshot may already contain — cannot double-list a fact.
func (b *leaderboard) offerAll(entries []boardEntry) {
	if len(entries) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range entries {
		if len(b.entries) == b.cap && e.Prominence <= b.entries[len(b.entries)-1].Prominence {
			continue
		}
		i := sort.Search(len(b.entries), func(i int) bool {
			return b.entries[i].Prominence < e.Prominence
		})
		// A duplicate shares the prominence, so it can only live in the
		// equal run just above the insertion point.
		dup := false
		for j := i - 1; j >= 0 && b.entries[j].Prominence == e.Prominence; j-- {
			if b.entries[j].ID == e.ID && b.entries[j].Fact.Text == e.Fact.Text {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		b.entries = append(b.entries, boardEntry{})
		copy(b.entries[i+1:], b.entries[i:])
		b.entries[i] = e
		if len(b.entries) > b.cap {
			b.entries = b.entries[:b.cap]
		}
	}
	b.updateFloor()
}

// marshal serialises the board for the checkpoint sidecar.
func (b *leaderboard) marshal() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return json.Marshal(b.entries)
}

// restore replaces the board with a sidecar written by marshal, trimming
// to the (possibly smaller) current capacity.
func (b *leaderboard) restore(data []byte) error {
	var entries []boardEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return err
	}
	// Stored sorted; re-sort defensively so a hand-edited sidecar cannot
	// break the ordered-insert invariant.
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Prominence > entries[j].Prominence
	})
	if len(entries) > b.cap {
		entries = entries[:b.cap]
	}
	b.mu.Lock()
	b.entries = entries
	b.updateFloor()
	b.mu.Unlock()
	return nil
}

// floor returns the prominence of the board's weakest entry and whether
// the board is at capacity (only then is the floor a rejection threshold).
// It is lock-free — the ingest hot path calls it per arrival, and after
// warmup almost every arrival stops here — reading the cache offerAll
// and restore maintain; a stale read only admits extra candidates, which
// offerAll re-filters under its lock.
func (b *leaderboard) floor() (float64, bool) {
	return math.Float64frombits(b.floorBits.Load()), b.full.Load()
}

// top returns the k highest-prominence entries.
func (b *leaderboard) top(k int) []boardEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k > len(b.entries) {
		k = len(b.entries)
	}
	out := make([]boardEntry, k)
	copy(out, b.entries[:k])
	return out
}
