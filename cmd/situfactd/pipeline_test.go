package main

import (
	"fmt"
	"net/http"
	"testing"
)

// TestServerPipelineEquivalence runs the same stream through a
// pipelined daemon (-pipeline, the default binary configuration) and a
// direct-path one: responses, leaderboards and merged work counters must
// be identical, and the pipelined daemon's /v1/metrics must account for
// every operation in its ingest block.
func TestServerPipelineEquivalence(t *testing.T) {
	direct := gamelogConfig(2, "")
	piped := gamelogConfig(2, "")
	piped.pipeline = true

	sd, tsd := startServer(t, direct)
	sp, tsp := startServer(t, piped)
	defer sd.close()
	defer sp.close()

	var rows []rowWire
	rows = append(rows, table1...)
	rows = append(rows, wesley)
	var deleted int
	for i, row := range rows {
		var wantArr, gotArr arrivalResponse
		doJSON(t, http.MethodPost, tsd.URL+"/v1/tuples", reqOf(row), &wantArr)
		doJSON(t, http.MethodPost, tsp.URL+"/v1/tuples", reqOf(row), &gotArr)
		if wantArr.ID != gotArr.ID || wantArr.FactCount != gotArr.FactCount {
			t.Fatalf("row %d: pipelined arrival %s/%d facts, direct %s/%d",
				i, gotArr.ID, gotArr.FactCount, wantArr.ID, wantArr.FactCount)
		}
		// Retract one mid-stream row through both daemons: deletes ride
		// the same per-shard queues as appends.
		if i == 2 {
			for _, url := range []string{tsd.URL, tsp.URL} {
				req, err := http.NewRequest(http.MethodDelete, url+"/v1/tuples/"+gotArr.ID, nil)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Fatalf("delete %s via %s: status %d", gotArr.ID, url, resp.StatusCode)
				}
			}
			deleted++
		}
	}
	// Batch through both daemons too.
	var wantBatch, gotBatch batchResponse
	doJSON(t, http.MethodPost, tsd.URL+"/v1/tuples:batch", batchRequest{Rows: rows}, &wantBatch)
	doJSON(t, http.MethodPost, tsp.URL+"/v1/tuples:batch", batchRequest{Rows: rows}, &gotBatch)
	for i := range wantBatch.Arrivals {
		w, g := wantBatch.Arrivals[i], gotBatch.Arrivals[i]
		if w.ID != g.ID || w.FactCount != g.FactCount {
			t.Fatalf("batch row %d: pipelined %s/%d facts, direct %s/%d",
				i, g.ID, g.FactCount, w.ID, w.FactCount)
		}
	}

	var wantM, gotM metricsResponse
	doJSON(t, http.MethodGet, tsd.URL+"/v1/metrics", nil, &wantM)
	doJSON(t, http.MethodGet, tsp.URL+"/v1/metrics", nil, &gotM)
	if gotM.Merged != wantM.Merged {
		t.Errorf("pipelined merged metrics %+v, direct %+v", gotM.Merged, wantM.Merged)
	}
	if gotM.Len != wantM.Len {
		t.Errorf("pipelined len %d, direct %d", gotM.Len, wantM.Len)
	}
	var wantTop, gotTop topFactsResponse
	doJSON(t, http.MethodGet, tsd.URL+"/v1/facts/top?k=64", nil, &wantTop)
	doJSON(t, http.MethodGet, tsp.URL+"/v1/facts/top?k=64", nil, &gotTop)
	if fmt.Sprintf("%+v", gotTop) != fmt.Sprintf("%+v", wantTop) {
		t.Errorf("pipelined leaderboard diverged from direct path:\n got %+v\nwant %+v", gotTop, wantTop)
	}

	// The ingest block must account for every operation.
	if wantM.Ingest.Pipeline {
		t.Error("direct daemon reports ingest.pipeline = true")
	}
	ing := gotM.Ingest
	if !ing.Pipeline {
		t.Fatal("pipelined daemon reports ingest.pipeline = false")
	}
	wantOps := uint64(2*len(rows) + deleted)
	if ing.Enqueued != wantOps {
		t.Errorf("ingest.enqueued = %d, want %d", ing.Enqueued, wantOps)
	}
	if ing.QueueDepth != 0 {
		t.Errorf("ingest.queue_depth = %d after quiescence, want 0", ing.QueueDepth)
	}
	if ing.Batches == 0 || ing.MeanBatch <= 0 {
		t.Errorf("ingest batch summary empty: %+v", ing)
	}
	if len(ing.PerShard) != 2 {
		t.Fatalf("ingest.per_shard has %d rows, want 2", len(ing.PerShard))
	}
	var perShardOps uint64
	var hist uint64
	for _, sh := range ing.PerShard {
		perShardOps += sh.Enqueued
	}
	for _, c := range ing.BatchHist {
		hist += c
	}
	if perShardOps != wantOps {
		t.Errorf("per-shard enqueued sums to %d, want %d", perShardOps, wantOps)
	}
	if hist != ing.Batches {
		t.Errorf("batch_hist sums to %d, want %d batches", hist, ing.Batches)
	}
}

// TestServerPipelineRecovery checkpoints and restarts a pipelined
// daemon with a WAL: recovery (which runs on the direct path, before
// the pipeline starts) must hand the pipelined daemon identical state.
func TestServerPipelineRecovery(t *testing.T) {
	stateDir := t.TempDir()
	cfg := gamelogConfig(2, stateDir)
	cfg.pipeline = true
	cfg.wal = true
	s, ts := startServer(t, cfg)
	for _, row := range table1 {
		doJSON(t, http.MethodPost, ts.URL+"/v1/tuples", reqOf(row), nil)
	}
	if err := s.saveState(); err != nil {
		t.Fatal(err)
	}
	// Tail past the checkpoint, then stop without snapshotting: the WAL
	// must carry it into the restarted daemon.
	doJSON(t, http.MethodPost, ts.URL+"/v1/tuples", reqOf(wesley), nil)
	var before metricsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil, &before)
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := startServer(t, cfg)
	defer s2.close()
	var after metricsResponse
	doJSON(t, http.MethodGet, ts2.URL+"/v1/metrics", nil, &after)
	if after.Merged != before.Merged {
		t.Errorf("recovered merged metrics %+v, want %+v", after.Merged, before.Merged)
	}
	if after.Len != before.Len {
		t.Errorf("recovered len %d, want %d", after.Len, before.Len)
	}
	if !after.Ingest.Pipeline {
		t.Error("recovered daemon is not running the pipeline")
	}
	// Replay happened on the direct path: the fresh pipeline has seen no ops.
	if after.Ingest.Enqueued != 0 {
		t.Errorf("recovery enqueued %d ops onto the pipeline; replay must use the direct path", after.Ingest.Enqueued)
	}
}
