// Command situfactd serves situational-fact discovery over HTTP — the
// paper's online setting as a long-running daemon: tuples are POSTed as
// they occur in the real world, and the response carries the facts the
// arrival just made true. A situfact.Pool shards the stream across engines
// by one dimension attribute; the daemon adds the wire format, a
// prominence leaderboard, and snapshot-based persistence.
//
// Usage:
//
//	situfactd -dims player,team,opp_team -measures points,rebounds,-fouls \
//	          [-addr :8080] [-algo sbottomup] [-shards 4] [-shard-dim team] \
//	          [-dhat 0] [-mhat 0] [-workers 0] [-state-dir /var/lib/situfactd] \
//	          [-wal] [-wal-sync 0s] [-wal-segment-bytes 0] \
//	          [-snapshot-interval 0s] [-topk 128] [-relation stream] \
//	          [-pipeline] [-pipeline-queue 0] [-pipeline-adaptive] \
//	          [-shard-workers 0] [-read-cache-ttl 0s] [-fact-index] \
//	          [-follow http://leader:8080] [-follow-poll 500ms] [-follow-max-lag 0]
//
// Endpoints (wire format in docs/API.md):
//
//	POST   /v1/tuples        one arrival → its ranked facts (optional narration)
//	POST   /v1/tuples:batch  many arrivals, fanned across shards concurrently
//	DELETE /v1/tuples/{id}   retract an arrival by its "<shard>:<tuple_id>" handle
//	GET    /v1/facts         page through the live fact set with filters
//	GET    /v1/facts/top?k=  highest-prominence facts since startup
//	GET    /v1/tuples/{id}   point read of one ingested row
//	GET    /v1/metrics       merged work counters + per-shard breakdown
//	GET    /v1/schema        the relation schema the daemon was started with
//	GET    /v1/snapshot      checkpoint stream a follower bootstraps from
//	GET    /v1/wal           journaled records from a given LSN on
//	GET    /healthz          liveness (503 on a lagging or broken follower)
//
// With -follow the daemon runs as a read-only follower of another
// situfactd: it bootstraps from the leader's snapshot stream, replays the
// leader's WAL tail continuously, rejects every write endpoint with 403,
// and degrades /healthz when replication lag exceeds -follow-max-lag or
// the leader's log identity changes.
//
// With -state-dir, SIGINT/SIGTERM triggers a graceful shutdown: in-flight
// requests drain, then every shard's state is snapshotted into the
// directory, and the next start with the same schema restores it.
//
// With -wal on top, every ingest is journaled to <state-dir>/wal before
// it is applied and (by default) fsynced before it is acknowledged, so a
// crash — kill -9, power loss — loses nothing acknowledged: the next
// start restores the newest snapshot and replays the log's tail.
// -snapshot-interval adds background checkpoints that bound replay time
// and truncate covered log segments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the -pprof-addr listener's DefaultServeMux only
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/persist"
)

func main() {
	var cfg config
	registerFlags(flag.CommandLine, &cfg)
	flag.Parse()
	log.SetPrefix("situfactd: ")
	log.SetFlags(log.LstdFlags)

	if cfg.configPath != "" {
		if err := applyConfigFile(flag.CommandLine, cfg.configPath); err != nil {
			log.Fatal(err)
		}
	}
	cfg.scanFacts = !cfg.factIndex
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}

	if cfg.walVerifyMode {
		if cfg.stateDir == "" {
			log.Fatal("-wal-verify requires -state-dir (the log lives at <state-dir>/wal)")
		}
		os.Exit(runWALVerify(filepath.Join(cfg.stateDir, "wal")))
	}
	if cfg.dims == "" || cfg.measures == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := serve(cfg); err != nil {
		log.Fatal(err)
	}
}

// runWALVerify is `situfactd -wal-verify`: a read-only segment-by-segment
// scan of the log, reporting per-segment record counts and where (if
// anywhere) the log stops being clean. Exit status 0 = clean, 1 = damaged
// or unreadable.
func runWALVerify(dir string) int {
	reports, err := persist.VerifyWAL(dir)
	for _, rep := range reports {
		status := "ok"
		if rep.Torn {
			status = "torn tail (next open truncates it)"
		}
		fmt.Printf("%s  base_lsn=%d  records=%d  bytes=%d  %s\n",
			rep.Name, rep.Base, rep.Records, rep.Bytes, status)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "situfactd: wal-verify %s: %v\n", dir, err)
		return 1
	}
	total := 0
	for _, rep := range reports {
		total += rep.Records
	}
	fmt.Printf("ok: %d segments, %d records\n", len(reports), total)
	return 0
}

// newHTTPServer builds the main listener with the connection-lifecycle
// limits the config asks for. The header timeout is always on: it is
// the Slowloris defence, and -read-timeout only ever tightens it —
// a client that cannot finish its headers in 10s is not a client worth
// holding a goroutine for. The slowloris regression test shares this
// constructor, so the limits it pins are the ones production runs.
func newHTTPServer(cfg config, h http.Handler) *http.Server {
	headerTimeout := 10 * time.Second
	if cfg.readTimeout > 0 && cfg.readTimeout < headerTimeout {
		headerTimeout = cfg.readTimeout
	}
	return &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: headerTimeout,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
		MaxHeaderBytes:    1 << 20,
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains in-flight
// requests, snapshots the pool, and closes it.
func serve(cfg config) error {
	s, err := newServer(cfg)
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		// The profiler gets its own listener and mux: the API surface
		// (server.routes, guarded by TestAPIDocEndpoints) stays exactly the
		// documented set, and the debug port can be firewalled separately.
		go func() {
			log.Printf("pprof listening on %s", cfg.pprofAddr)
			// A configured server, not the bare helper: without a read
			// header timeout an idle client could hold debug-port
			// connections open forever (Slowloris).
			dbg := &http.Server{
				Addr:              cfg.pprofAddr,
				Handler:           nil, // DefaultServeMux, where pprof registered
				ReadHeaderTimeout: 10 * time.Second,
			}
			log.Printf("pprof server: %v", dbg.ListenAndServe())
		}()
	}
	srv := newHTTPServer(cfg, s.handler())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// snapDone joins the background snapshotter before saveState/close: a
	// checkpoint in flight when the shutdown signal lands must finish
	// before the pool and WAL are closed under it.
	snapDone := make(chan struct{})
	if cfg.stateDir != "" && cfg.snapInterval > 0 && cfg.follow == "" {
		go func() {
			defer close(snapDone)
			s.snapshotLoop(ctx, cfg.snapInterval)
		}()
	} else {
		close(snapDone)
	}
	errCh := make(chan error, 1)
	go func() {
		durability := "no persistence"
		switch {
		case cfg.wal:
			durability = fmt.Sprintf("wal + snapshots in %s", cfg.stateDir)
		case cfg.stateDir != "":
			durability = fmt.Sprintf("snapshots in %s", cfg.stateDir)
		}
		pool := s.db()
		log.Printf("listening on %s (%s over %d shards by %s; %s)",
			cfg.addr, pool.Algorithm(), pool.Shards(), pool.ShardDim(), durability)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		stop() // release the snapshotter's context so it can exit
		<-snapDone
		s.close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var errs []error
	drainErr := srv.Shutdown(shutdownCtx)
	<-snapDone // ctx is done; wait out any in-flight checkpoint
	if drainErr != nil {
		errs = append(errs, fmt.Errorf("drain: %w", drainErr))
	}
	if cfg.stateDir != "" && cfg.follow == "" {
		if drainErr != nil {
			// Handlers may still be appending: a snapshot taken now could
			// omit writes already acked 200. The previous snapshot
			// generation stays valid, so refusing loses nothing committed —
			// and with -wal the journal still covers every acked write.
			log.Printf("drain incomplete; NOT snapshotting to %s (previous snapshot untouched)", cfg.stateDir)
		} else if err := s.saveState(); err != nil {
			errs = append(errs, err)
		} else {
			log.Printf("snapshotted %d tuples to %s", s.db().Len(), cfg.stateDir)
		}
	}
	if err := s.close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
