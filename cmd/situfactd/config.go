package main

// The validated config surface: every run parameter is a flag, every
// flag can also come from a JSON -config file, and the merged result is
// checked as a whole before the daemon touches any state. Flags given on
// the command line override the file (operator intent at invocation time
// beats the checked-in baseline); unknown file keys, malformed values,
// out-of-range settings and contradictory combinations are all fatal at
// startup — a daemon that silently ignored half its configuration would
// be worse than one that refused to start.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	situfact "repro"
)

// registerFlags declares every situfactd flag on fs, filling cfg. main
// uses it with flag.CommandLine; config tests build private FlagSets so
// they can exercise parsing and file merging without touching globals.
func registerFlags(fs *flag.FlagSet, cfg *config) {
	fs.StringVar(&cfg.configPath, "config", "", "JSON config file mapping flag names to values; flags given on the command line override it, unknown keys are fatal")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.relation, "relation", "stream", "relation name (part of the schema signature snapshots validate)")
	fs.StringVar(&cfg.dims, "dims", "", "comma-separated dimension attribute names (required)")
	fs.StringVar(&cfg.measures, "measures", "", "comma-separated measure attribute names; '-' prefix = smaller-is-better (required)")
	fs.StringVar(&cfg.algo, "algo", "sbottomup", "algorithm: "+strings.Join(situfact.Algorithms(), "|"))
	fs.IntVar(&cfg.dhat, "dhat", 0, "max bound dimension attributes (0 = no cap)")
	fs.IntVar(&cfg.mhat, "mhat", 0, "max measure subspace size (0 = no cap)")
	fs.IntVar(&cfg.shards, "shards", 0, "pool shard count (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.shardDim, "shard-dim", "", "dimension attribute whose value routes a row to its shard (default: first of -dims)")
	fs.IntVar(&cfg.workers, "workers", 0, "goroutines per engine for the parallel-* algorithms (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.shardWorkers, "shard-workers", 0, "run each shard's discovery with this many parallel-bottomup workers (shorthand for -algo parallel-bottomup -workers N; 0/1 = keep -algo; incompatible with -state-dir)")
	fs.StringVar(&cfg.stateDir, "state-dir", "", "snapshot directory: restore on start, save on graceful shutdown (empty = no persistence)")
	fs.BoolVar(&cfg.wal, "wal", false, "write-ahead log under <state-dir>/wal: journal every ingest before applying it, replay the tail on start (requires -state-dir)")
	fs.DurationVar(&cfg.walSync, "wal-sync", 0, "WAL durability: 0 fsyncs (group-committed) before acknowledging each request; >0 fsyncs in the background on this interval, risking up to one interval of acknowledged records on crash")
	fs.Int64Var(&cfg.walSegBytes, "wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = 64 MiB)")
	fs.DurationVar(&cfg.snapInterval, "snapshot-interval", 0, "background checkpoint period: snapshot every shard and truncate covered WAL segments (0 = snapshot only on graceful shutdown)")
	fs.IntVar(&cfg.boardCap, "topk", 128, "capacity of the GET /v1/facts/top leaderboard")
	fs.BoolVar(&cfg.pipeline, "pipeline", true, "pipelined ingest: per-shard batching writer goroutines journal, fsync and apply whole queue drains at once (false = take the shard locks directly per request)")
	fs.IntVar(&cfg.pipeQueue, "pipeline-queue", 0, "per-shard ingest queue depth; a full queue blocks producers (0 = 256)")
	fs.BoolVar(&cfg.pipeAdaptive, "pipeline-adaptive", true, "let each shard's queue capacity float between a floor and -pipeline-queue, growing on backpressure and shrinking when calm (false = fixed at -pipeline-queue)")
	fs.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this extra listener (e.g. localhost:6060); empty = off. Keep it on a loopback or firewalled port")
	fs.StringVar(&cfg.follow, "follow", "", "run as a read-only follower of this leader base URL (e.g. http://leader:8080): bootstrap from its snapshot, replay its WAL tail; requires -state-dir as bootstrap scratch")
	fs.DurationVar(&cfg.followPoll, "follow-poll", 500*time.Millisecond, "follower WAL-tail poll period (transient errors back the poll off exponentially from here)")
	fs.Uint64Var(&cfg.followMaxLag, "follow-max-lag", 0, "replication lag in records beyond which the follower's /healthz degrades to 503 (0 = no bound)")
	fs.IntVar(&cfg.followRebootstrapMax, "follow-rebootstrap-max", 5, "consecutive snapshot re-bootstrap attempts a follower makes after a fatal replication error (leader WAL epoch change, truncated tail) before giving up; 0 disables self-healing")
	fs.DurationVar(&cfg.readCacheTTL, "read-cache-ttl", 0, "front /v1/facts and /v1/facts/top with a TTL'd singleflight cache; staleness is bounded by the TTL on a leader and by replication progress on a follower (0 = off)")
	fs.BoolVar(&cfg.factIndex, "fact-index", true, "serve /v1/facts pages and ?source=live leaderboards from the incremental fact index (seek + O(page) walk); false falls back to the reference full-scan read path — results are identical, only latency differs")
	fs.StringVar(&cfg.faultPlan, "fault-plan", os.Getenv("SITUFACTD_FAULT_PLAN"),
		"TESTING ONLY: inject WAL I/O faults per this plan (see internal/faultfs; e.g. 'fsync:from=3;clear-after=2s'); defaults to $SITUFACTD_FAULT_PLAN so test harnesses can arm child processes; requires -wal")
	fs.BoolVar(&cfg.walVerifyMode, "wal-verify", false, "offline fsck: scan <state-dir>/wal segment by segment (framing, CRCs, LSN density), print a report, and exit — non-zero on corruption; the log is opened read-only and never modified")

	// Overload protection & request lifecycle.
	fs.BoolVar(&cfg.logRequests, "log-requests", false, "log one structured line per request: method, path, status, bytes, duration, client, admission verdict")
	fs.Float64Var(&cfg.rateLimit, "rate-limit", 0, "per-client request rate in req/s (token bucket keyed by auth token, else remote IP); over-rate requests get 429 + Retry-After (0 = off)")
	fs.IntVar(&cfg.rateBurst, "rate-burst", 0, "token-bucket burst size per client (0 = 2×rate); requires -rate-limit")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 0, "bound on concurrently served requests; excess requests get 503 + Retry-After instead of queueing inside the daemon (0 = off)")
	fs.DurationVar(&cfg.shedWindow, "shed-window", 2*time.Second, "shed new writes with 503 + Retry-After after the ingest pipeline has been saturated (producers blocked on full queues) this long; reads keep serving; one calm sample re-admits writes (0 = never shed)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", 0, "per-request context deadline: queries stop scanning and parked writes give up their queue slot when it expires, answering 503 + Retry-After (0 = none)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute, "http.Server.ReadTimeout: the whole request, header + body, must arrive within this (also caps the 10s header timeout when set lower; 0 = none)")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 0, "http.Server.WriteTimeout: the whole response must be written within this; 0 = none, which /v1/snapshot bootstrap streams of arbitrary size rely on")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "http.Server.IdleTimeout: keep-alive connections idle this long are closed (0 = ReadTimeout governs)")
	fs.Int64Var(&cfg.maxBody, "max-body-bytes", 1<<20, "POST /v1/tuples request body cap in bytes; larger bodies get 413")
	fs.Int64Var(&cfg.maxBatchBody, "max-batch-body-bytes", 32<<20, "POST /v1/tuples:batch request body cap in bytes; larger bodies get 413")
}

// applyConfigFile merges the JSON object at path into fs: every key
// names a flag, every value is converted to the flag's text form and
// applied through fs.Set — so file values pass exactly the same parsing
// and the same validation as command-line flags. Flags the command line
// already set are left alone. Call after fs.Parse.
func applyConfigFile(fs *flag.FlagSet, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber() // keep numbers textual: 0.5, 42 and 1e6 all round-trip
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	if dec.More() {
		return fmt.Errorf("config %s: trailing data after the config object", path)
	}
	fromCLI := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { fromCLI[f.Name] = true })
	// Deterministic application (and error) order.
	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "config" {
			return fmt.Errorf("config %s: a config file cannot nest another via %q", path, k)
		}
		f := fs.Lookup(k)
		if f == nil {
			return fmt.Errorf("config %s: unknown key %q (keys are flag names, e.g. \"shards\")", path, k)
		}
		if fromCLI[k] {
			continue // explicit flag wins over the file
		}
		val, err := flagValueString(raw[k])
		if err != nil {
			return fmt.Errorf("config %s: key %q: %w", path, k, err)
		}
		if err := fs.Set(k, val); err != nil {
			return fmt.Errorf("config %s: key %q: %w", path, k, err)
		}
	}
	return nil
}

// flagValueString renders one JSON config value as the text a flag
// parser accepts. Only scalars make sense — a flag has no list or
// object form.
func flagValueString(v any) (string, error) {
	switch t := v.(type) {
	case string:
		return t, nil
	case bool:
		return strconv.FormatBool(t), nil
	case json.Number:
		return t.String(), nil
	default:
		return "", fmt.Errorf("unsupported value %v (want a string, number, or bool)", v)
	}
}

// validate checks the merged configuration as a whole: ranges first,
// then combinations that contradict each other. It runs before any
// state is touched, so a bad config can never half-start the daemon.
// Requirements with richer context (snapshot/flag mismatches, WAL
// leftovers) stay in newServer where that context lives.
func (cfg *config) validate() error {
	// Ranges.
	for _, c := range []struct {
		name string
		v    int
	}{
		{"-dhat", cfg.dhat}, {"-mhat", cfg.mhat},
		{"-shards", cfg.shards}, {"-workers", cfg.workers},
		{"-shard-workers", cfg.shardWorkers}, {"-topk", cfg.boardCap},
		{"-pipeline-queue", cfg.pipeQueue},
		{"-follow-rebootstrap-max", cfg.followRebootstrapMax},
		{"-rate-burst", cfg.rateBurst}, {"-max-inflight", cfg.maxInflight},
	} {
		if c.v < 0 {
			return fmt.Errorf("%s must be >= 0, got %d", c.name, c.v)
		}
	}
	for _, c := range []struct {
		name string
		v    time.Duration
	}{
		{"-wal-sync", cfg.walSync}, {"-snapshot-interval", cfg.snapInterval},
		{"-follow-poll", cfg.followPoll}, {"-read-cache-ttl", cfg.readCacheTTL},
		{"-shed-window", cfg.shedWindow}, {"-request-timeout", cfg.requestTimeout},
		{"-read-timeout", cfg.readTimeout}, {"-write-timeout", cfg.writeTimeout},
		{"-idle-timeout", cfg.idleTimeout},
	} {
		if c.v < 0 {
			return fmt.Errorf("%s must be >= 0, got %v", c.name, c.v)
		}
	}
	if cfg.rateLimit < 0 {
		return fmt.Errorf("-rate-limit must be >= 0, got %v", cfg.rateLimit)
	}
	if cfg.walSegBytes < 0 {
		return fmt.Errorf("-wal-segment-bytes must be >= 0, got %d", cfg.walSegBytes)
	}
	if cfg.maxBody <= 0 {
		return fmt.Errorf("-max-body-bytes must be > 0, got %d", cfg.maxBody)
	}
	if cfg.maxBatchBody < cfg.maxBody {
		return fmt.Errorf("-max-batch-body-bytes (%d) must be >= -max-body-bytes (%d): a batch of one row must fit", cfg.maxBatchBody, cfg.maxBody)
	}

	// Contradictions.
	if cfg.wal && cfg.stateDir == "" {
		return fmt.Errorf("-wal requires -state-dir (the log lives at <state-dir>/wal)")
	}
	if cfg.follow != "" && cfg.wal {
		return fmt.Errorf("-wal conflicts with -follow: a follower replays the leader's log, it does not journal its own")
	}
	if cfg.follow != "" && cfg.stateDir == "" {
		return fmt.Errorf("-follow requires -state-dir (scratch space for the snapshot bootstrap)")
	}
	if cfg.faultPlan != "" && !cfg.wal {
		return fmt.Errorf("-fault-plan covers the write-ahead log and needs -wal")
	}
	if cfg.rateBurst > 0 && cfg.rateLimit <= 0 {
		return fmt.Errorf("-rate-burst %d without -rate-limit: a burst is meaningless with no rate", cfg.rateBurst)
	}
	if cfg.shardWorkers > 1 && cfg.stateDir != "" {
		return fmt.Errorf("-shard-workers %d runs parallel-bottomup per shard, which cannot snapshot: drop -state-dir or -shard-workers", cfg.shardWorkers)
	}
	return nil
}
