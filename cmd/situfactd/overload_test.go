package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestOverloadSlowlorisBoundedGoroutines is the connection-lifecycle
// regression test: 100 clients that send a partial request line and then
// stall must all be cut off by the header timeout, and the goroutines
// serving them must drain back to near the baseline — a daemon without
// ReadHeaderTimeout grows one parked goroutine per stalled socket,
// forever.
func TestOverloadSlowlorisBoundedGoroutines(t *testing.T) {
	cfg := gamelogConfig(2, "")
	cfg.readTimeout = 300 * time.Millisecond // also tightens the header timeout
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	srv := newHTTPServer(cfg, s.handler())
	if srv.ReadHeaderTimeout != cfg.readTimeout {
		t.Fatalf("ReadHeaderTimeout = %v: -read-timeout %v below 10s must tighten it",
			srv.ReadHeaderTimeout, cfg.readTimeout)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	baseline := runtime.NumGoroutine()
	const stalled = 100
	conns := make([]net.Conn, 0, stalled)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < stalled; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		// Half a request: headers started, never finished.
		if _, err := io.WriteString(c, "GET /healthz HTTP/1.1\r\nHost: situfactd\r\nX-Stall"); err != nil {
			t.Fatal(err)
		}
	}
	// Every stalled connection must be cut off within the header timeout
	// (plus scheduling slack): the server may write a courtesy 408 first,
	// but the connection must reach EOF — a read deadline firing means a
	// goroutine is still parked on our half-request.
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, err := io.ReadAll(c)
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("conn %d: still open 5s after the %v header timeout", i, cfg.readTimeout)
		}
		if err == nil && bytes.HasPrefix(got, []byte("HTTP/1.1 200")) {
			t.Fatalf("conn %d: server served a half-request: %q", i, got)
		}
	}
	// And their serving goroutines must drain, not park.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines stuck at %d (baseline %d) after %d stalled connections",
				n, baseline, stalled)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A well-formed request still serves.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after the slowloris wave: %d", resp.StatusCode)
	}
}

// TestOverloadDrillShedsWithoutAckedLoss is the overload drill: a small
// fixed ingest queue and a low in-flight bound, hammered by far more
// posters than the daemon can seat. The daemon must shed with 503 +
// Retry-After, never exceed the configured in-flight bound — and after a
// restart over the same state dir, every row it acknowledged must still
// be there, while everything shed is simply absent (never half-applied).
func TestOverloadDrillShedsWithoutAckedLoss(t *testing.T) {
	dir := t.TempDir()
	cfg := gamelogConfig(3, dir)
	cfg.wal = true
	cfg.pipeline = true
	cfg.pipeQueue = 2
	cfg.pipeAdaptive = false
	cfg.shedWindow = 50 * time.Millisecond
	cfg.maxInflight = 16
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())

	type ack struct {
		id     string
		player string
	}
	var (
		mu       sync.Mutex
		acked    []ack
		shed     int // 503 rejections
		rejected int // anything else non-200 (should stay 0)
	)
	teams := []string{"Celtics", "Hornets", "Heat", "Blazers", "Nets"}
	const workers = 32
	var wg sync.WaitGroup
	stop := time.Now().Add(1500 * time.Millisecond)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; time.Now().Before(stop); seq++ {
				player := fmt.Sprintf("p-%d-%d", w, seq)
				row := rowWire{
					Dims:     []string{player, "Feb", "1995-96", teams[(w+seq)%len(teams)], teams[w%len(teams)]},
					Measures: []float64{float64(seq % 40), float64(w % 15), float64((w + seq) % 12)},
				}
				var out arrivalResponse
				resp := doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), &out)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					acked = append(acked, ack{id: out.ID, player: player})
				case http.StatusServiceUnavailable:
					shed++
					if resp.Header.Get("Retry-After") == "" {
						rejected++ // a 503 without Retry-After is a contract break
					}
				default:
					rejected++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	m := getMetrics(t, ts.URL)
	if rejected != 0 {
		t.Fatalf("%d requests failed outside the shed contract", rejected)
	}
	if shed == 0 {
		t.Fatal("overload run shed nothing: the drill never exceeded capacity")
	}
	if len(acked) == 0 {
		t.Fatal("overload run acknowledged nothing")
	}
	if m.Overload.InflightPeak > int64(cfg.maxInflight) {
		t.Fatalf("inflight peak %d exceeded the configured bound %d",
			m.Overload.InflightPeak, cfg.maxInflight)
	}
	if m.Overload.InflightPeak == 0 {
		t.Fatal("inflight peak is 0 under a 32-worker hammer: the gate is not wired")
	}
	if m.Overload.Shed == 0 {
		t.Fatal("metrics report zero shed despite 503 responses")
	}
	t.Logf("drill: %d acked, %d shed, inflight peak %d/%d, shedder active=%v",
		len(acked), shed, m.Overload.InflightPeak, cfg.maxInflight, m.Overload.Shedding)

	// Clean shutdown, restart over the same state dir: recovery must hold
	// exactly the acknowledged rows (by content, not just count).
	ts.Close()
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	s2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	pool := s2.db()
	if got, want := pool.Len(), len(acked); got != want {
		t.Fatalf("recovered %d rows, acked %d", got, want)
	}
	for _, a := range acked {
		shard, tupleID, err := parseTupleID(a.id)
		if err != nil {
			t.Fatal(err)
		}
		info, err := pool.Tuple(shard, tupleID)
		if err != nil {
			t.Fatalf("acked row %s (%s) lost after restart: %v", a.id, a.player, err)
		}
		if info.Dims[0] != a.player {
			t.Fatalf("acked row %s holds %q, want %q", a.id, info.Dims[0], a.player)
		}
	}
}

// TestOverloadEquivalenceHighLimits pins that the admission stack is
// observationally free when it never fires: a daemon with every limit
// set far above the workload must produce byte-identical reads to one
// with the stack off entirely.
func TestOverloadEquivalenceHighLimits(t *testing.T) {
	plain := gamelogConfig(3, "")
	_, pts := startServer(t, plain)

	limited := gamelogConfig(3, "")
	limited.logRequests = true
	limited.rateLimit = 1e6
	limited.rateBurst = 1e6
	limited.maxInflight = 1 << 20
	limited.requestTimeout = time.Minute
	limited.shedWindow = 10 * time.Second
	limited.maxBody = 1 << 20
	limited.maxBatchBody = 32 << 20
	_, lts := startServer(t, limited)

	rows := append(append([]rowWire{}, table1...), wesley)
	for i, row := range rows {
		for _, url := range []string{pts.URL, lts.URL} {
			if resp := doJSON(t, "POST", url+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("row %d to %s: status %d", i, url, resp.StatusCode)
			}
		}
	}
	for _, q := range []string{"", "?where=month=Feb", "?measures=assists", "?shard=1"} {
		pp := factsPages(t, pts.URL, q, 3)
		lp := factsPages(t, lts.URL, q, 3)
		if len(pp) != len(lp) {
			t.Fatalf("query %q: %d pages plain, %d pages limited", q, len(pp), len(lp))
		}
		for i := range pp {
			if string(pp[i]) != string(lp[i]) {
				t.Fatalf("query %q page %d diverged:\nplain   %s\nlimited %s", q, i, pp[i], lp[i])
			}
		}
	}
	_, ptop := getBody(t, pts.URL+"/v1/facts/top?k=16")
	_, ltop := getBody(t, lts.URL+"/v1/facts/top?k=16")
	if string(ptop) != string(ltop) {
		t.Fatalf("leaderboards diverged:\nplain   %s\nlimited %s", ptop, ltop)
	}
}

// TestOverloadLimiter429 drives the per-client token bucket over HTTP:
// a 1 req/s bucket admits the first request and 429s the burst behind
// it, naming a whole-second Retry-After.
func TestOverloadLimiter429(t *testing.T) {
	cfg := gamelogConfig(2, "")
	cfg.rateLimit = 1
	cfg.rateBurst = 1
	_, ts := startServer(t, cfg)

	status, _ := getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("first request: %d, want 200", status)
	}
	var got429 bool
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			got429 = true
			break
		}
	}
	if !got429 {
		t.Fatal("burst past a 1 req/s bucket never saw a 429")
	}
}

// TestOverloadLimitsHoldOnFollower pins the fleet contract: the same
// admission config on a read-only follower limits its read traffic
// exactly as it would a leader's.
func TestOverloadLimitsHoldOnFollower(t *testing.T) {
	cfg := gamelogConfig(2, t.TempDir())
	cfg.wal = true
	_, lts := startServer(t, cfg)
	for i, row := range table1 {
		if resp := doJSON(t, "POST", lts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader: row %d: status %d", i, resp.StatusCode)
		}
	}
	fcfg := gamelogConfig(2, t.TempDir())
	fcfg.follow = lts.URL
	fcfg.followPoll = 20 * time.Millisecond
	fcfg.rateLimit = 1
	fcfg.rateBurst = 1
	_, fts := startServer(t, fcfg)
	waitApplied(t, fts.URL, uint64(len(table1)))

	var got429 bool
	for i := 0; i < 5; i++ {
		resp, err := http.Get(fts.URL + "/v1/facts")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			break
		}
	}
	if !got429 {
		t.Fatal("follower never rate-limited: admission control is leader-only")
	}
}
