package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// getFacts fetches one /v1/facts page and decodes it, asserting the
// status code.
func getFacts(t *testing.T, url string, wantStatus int) factsResponse {
	t.Helper()
	status, body := getBody(t, url)
	if status != wantStatus {
		t.Fatalf("GET %s: status %d, want %d: %s", url, status, wantStatus, body)
	}
	var page factsResponse
	if wantStatus == http.StatusOK {
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return page
}

// TestFactsEndpoint exercises GET /v1/facts over the Table I mini-world:
// filters constrain results exactly, pagination is a lossless partition
// of the unpaginated listing, and malformed parameters are rejected.
func TestFactsEndpoint(t *testing.T) {
	_, ts := startServer(t, gamelogConfig(2, ""))
	for _, row := range append(append([]rowWire{}, table1...), wesley) {
		if resp := doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest rejected: status %d", resp.StatusCode)
		}
	}

	drain := func(limit int) []queryFactWire {
		var facts []queryFactWire
		cursor := ""
		for {
			url := fmt.Sprintf("%s/v1/facts?limit=%d", ts.URL, limit)
			if cursor != "" {
				url += "&cursor=" + cursor
			}
			page := getFacts(t, url, http.StatusOK)
			facts = append(facts, page.Facts...)
			if page.NextCursor == "" {
				return facts
			}
			cursor = page.NextCursor
		}
	}
	all := factsResponse{Facts: drain(500)}
	if len(all.Facts) == 0 {
		t.Fatal("unfiltered listing returned no facts")
	}

	// Pagination partitions the listing: draining limit=7 pages must
	// reproduce the limit=500 drain exactly, in order.
	if paged := drain(7); !reflect.DeepEqual(paged, all.Facts) {
		t.Errorf("paginated listing diverged: %d facts at limit=7 vs %d at limit=500", len(paged), len(all.Facts))
	}

	// A condition filter returns exactly the facts carrying it. (The
	// paper's global prominence-5 reading of month=Feb | {assists} is a
	// single-shard story — root example_test covers it; here contexts
	// are per-shard, so only the filter contract is asserted.)
	feb := getFacts(t, ts.URL+"/v1/facts?where=month=Feb&measures=assists", http.StatusOK)
	if len(feb.Facts) == 0 {
		t.Fatal("where=month=Feb&measures=assists returned no facts")
	}
	bare := false
	for _, f := range feb.Facts {
		found := false
		for _, c := range f.Conditions {
			if c.Attr == "month" && c.Value == "Feb" {
				found = true
			}
		}
		if !found {
			t.Errorf("fact %q lacks the month=Feb condition", f.Text)
		}
		if len(f.Measures) != 1 || f.Measures[0] != "assists" {
			t.Errorf("fact %q is not an {assists} fact", f.Text)
		}
		if len(f.Conditions) == 1 {
			bare = true
		}
	}
	if !bare {
		t.Error("no single-condition month=Feb | {assists} fact in the listing")
	}

	// A tuple filter returns only facts whose skyline holds that tuple.
	ref := all.Facts[0]
	tupleURL := fmt.Sprintf("%s/v1/facts?tuple=%d:%d", ts.URL, ref.Shard, ref.TupleIDs[0])
	tp := getFacts(t, tupleURL, http.StatusOK)
	if len(tp.Facts) == 0 {
		t.Fatalf("tuple filter %d:%d returned no facts", ref.Shard, ref.TupleIDs[0])
	}
	for _, f := range tp.Facts {
		if f.Shard != ref.Shard {
			t.Errorf("tuple-filtered fact %q from shard %d, want %d", f.Text, f.Shard, ref.Shard)
		}
		holds := false
		for _, id := range f.TupleIDs {
			if id == ref.TupleIDs[0] {
				holds = true
			}
		}
		if !holds {
			t.Errorf("tuple-filtered fact %q does not hold tuple %d", f.Text, ref.TupleIDs[0])
		}
	}

	for _, bad := range []string{
		"where=nokey",
		"where=bogus=x",
		"where=month=Feb&where=month=Jan",
		"measures=bogus",
		"shard=-2",
		"limit=0",
		"cursor=!!!not-base64!!!",
		"tuple=0",
	} {
		getFacts(t, ts.URL+"/v1/facts?"+bad, http.StatusBadRequest)
	}
	// An out-of-range shard is a lookup miss, not a malformed query.
	getFacts(t, ts.URL+"/v1/facts?shard=9", http.StatusNotFound)
}

// TestTupleEndpoint exercises GET /v1/tuples/{id}: round-trip of a
// stored row, delete visibility, 404 for unknown ids, and the bare-id
// ambiguity guard on multi-shard pools.
func TestTupleEndpoint(t *testing.T) {
	s, ts := startServer(t, gamelogConfig(2, ""))
	for _, row := range table1 {
		if resp := doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest rejected: status %d", resp.StatusCode)
		}
	}
	shard := s.db().ShardFor(table1[0].Dims[3]) // team routes the row

	var tu tupleResponse
	url := fmt.Sprintf("%s/v1/tuples/%d:0", ts.URL, shard)
	if resp := doJSON(t, "GET", url, nil, &tu); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if tu.ID != fmt.Sprintf("%d:0", shard) || tu.Shard != shard || tu.TupleID != 0 || tu.Deleted {
		t.Errorf("tuple wire = %+v", tu)
	}
	if len(tu.Dims) != 5 || len(tu.Measures) != 3 {
		t.Errorf("tuple carries %d dims, %d measures; want 5, 3", len(tu.Dims), len(tu.Measures))
	}

	if resp := doJSON(t, "DELETE", url, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE %s: status %d", url, resp.StatusCode)
	}
	if resp := doJSON(t, "GET", url, nil, &tu); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s after delete: status %d", url, resp.StatusCode)
	}
	if !tu.Deleted {
		t.Error("deleted tuple not marked deleted")
	}

	if status, _ := getBody(t, ts.URL+"/v1/tuples/0:999"); status != http.StatusNotFound {
		t.Errorf("unknown tuple: status %d, want 404", status)
	}
	if status, body := getBody(t, ts.URL+"/v1/tuples/3"); status != http.StatusBadRequest {
		t.Errorf("bare id on a 2-shard pool: status %d (%s), want 400", status, body)
	}
}

// TestReadCache verifies the TTL'd read cache: repeat queries are served
// from cache byte-identically, and the hit/miss counters surface in
// /v1/metrics.
func TestReadCache(t *testing.T) {
	cfg := gamelogConfig(1, "")
	cfg.readCacheTTL = time.Minute
	_, ts := startServer(t, cfg)
	for _, row := range table1 {
		if resp := doJSON(t, "POST", ts.URL+"/v1/tuples", reqOf(row), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest rejected: status %d", resp.StatusCode)
		}
	}

	url := ts.URL + "/v1/facts?limit=10&where=month=Feb"
	_, first := getBody(t, url)
	_, second := getBody(t, url)
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs from the filled one:\n%s\n%s", first, second)
	}
	_, t1 := getBody(t, ts.URL+"/v1/facts/top?k=5")
	_, t2 := getBody(t, ts.URL+"/v1/facts/top?k=5")
	if !bytes.Equal(t1, t2) {
		t.Error("cached leaderboard differs from the filled one")
	}

	m := getMetrics(t, ts.URL)
	if !m.ReadCache.Enabled {
		t.Fatal("read cache not reported enabled")
	}
	if m.ReadCache.Misses < 2 || m.ReadCache.Hits < 2 {
		t.Errorf("read cache counters hits=%d misses=%d, want >= 2 each", m.ReadCache.Hits, m.ReadCache.Misses)
	}
	if m.ReadCache.Entries < 2 {
		t.Errorf("read cache holds %d entries, want >= 2", m.ReadCache.Entries)
	}
}
