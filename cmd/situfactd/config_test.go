package main

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// validConfig is a minimal configuration that must pass validate: the
// flag defaults plus the two required schema fields. Every table case
// below starts here and breaks exactly one thing.
func validConfig() config {
	var cfg config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	registerFlags(fs, &cfg)
	if err := fs.Parse([]string{"-dims", "player,team", "-measures", "points,-fouls"}); err != nil {
		panic(err)
	}
	return cfg
}

// TestConfigDefaultsAreValid pins that a bare `situfactd -dims ...
// -measures ...` invocation passes validation — the defaults must never
// contradict each other.
func TestConfigDefaultsAreValid(t *testing.T) {
	cfg := validConfig()
	if err := cfg.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestConfigValidateTable drives validate through every rejection class:
// each case mutates one field of a valid config and names the substring
// the error must carry.
func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*config)
		wantErr string // "" = must stay valid
	}{
		{"negative shards", func(c *config) { c.shards = -1 }, "-shards"},
		{"negative dhat", func(c *config) { c.dhat = -2 }, "-dhat"},
		{"negative workers", func(c *config) { c.workers = -1 }, "-workers"},
		{"negative topk", func(c *config) { c.boardCap = -5 }, "-topk"},
		{"negative queue", func(c *config) { c.pipeQueue = -1 }, "-pipeline-queue"},
		{"negative rate burst", func(c *config) { c.rateBurst = -3 }, "-rate-burst"},
		{"negative max inflight", func(c *config) { c.maxInflight = -1 }, "-max-inflight"},
		{"negative rate limit", func(c *config) { c.rateLimit = -0.5 }, "-rate-limit"},
		{"negative wal sync", func(c *config) { c.walSync = -time.Second }, "-wal-sync"},
		{"negative shed window", func(c *config) { c.shedWindow = -time.Second }, "-shed-window"},
		{"negative request timeout", func(c *config) { c.requestTimeout = -1 }, "-request-timeout"},
		{"negative read timeout", func(c *config) { c.readTimeout = -1 }, "-read-timeout"},
		{"negative segment bytes", func(c *config) { c.walSegBytes = -1 }, "-wal-segment-bytes"},
		{"zero body cap", func(c *config) { c.maxBody = 0 }, "-max-body-bytes"},
		{"batch cap below body cap", func(c *config) { c.maxBatchBody = c.maxBody - 1 }, "must be >= -max-body-bytes"},
		{"wal without state dir", func(c *config) { c.wal = true }, "-wal requires -state-dir"},
		{"follow with wal", func(c *config) {
			c.stateDir = "/tmp/x"
			c.wal = true
			c.follow = "http://leader:8080"
		}, "-wal conflicts with -follow"},
		{"follow without state dir", func(c *config) { c.follow = "http://leader:8080" }, "-follow requires -state-dir"},
		{"fault plan without wal", func(c *config) { c.faultPlan = "fsync:from=1" }, "-fault-plan"},
		{"burst without rate", func(c *config) { c.rateBurst = 10 }, "-rate-burst"},
		{"shard workers with state dir", func(c *config) {
			c.shardWorkers = 4
			c.stateDir = "/tmp/x"
		}, "-shard-workers"},

		// Valid combinations that must NOT be rejected.
		{"wal with state dir", func(c *config) { c.stateDir = "/tmp/x"; c.wal = true }, ""},
		{"follower", func(c *config) { c.stateDir = "/tmp/x"; c.follow = "http://leader:8080" }, ""},
		{"rate limit with burst", func(c *config) { c.rateLimit = 50; c.rateBurst = 100 }, ""},
		{"admission stack", func(c *config) {
			c.rateLimit = 10
			c.maxInflight = 64
			c.requestTimeout = time.Second
		}, ""},
		{"shedding off", func(c *config) { c.shedWindow = 0 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// parseWithFile registers a fresh flag set, parses args, then merges the
// config file — exactly main's sequence.
func parseWithFile(t *testing.T, fileJSON string, args ...string) (config, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "situfactd.json")
	if err := os.WriteFile(path, []byte(fileJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var cfg config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	registerFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return cfg, applyConfigFile(fs, path)
}

// TestConfigFileMerge pins the precedence contract: the file fills flags
// the command line left at their defaults, and the command line wins
// where both speak.
func TestConfigFileMerge(t *testing.T) {
	cfg, err := parseWithFile(t,
		`{"dims": "player,team", "measures": "points", "shards": 6,
		  "rate-limit": 12.5, "wal-sync": "250ms", "pipeline-adaptive": false,
		  "max-inflight": 4}`,
		"-shards", "3", "-max-inflight", "128")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.dims != "player,team" || cfg.measures != "points" {
		t.Fatalf("file-only keys not applied: dims=%q measures=%q", cfg.dims, cfg.measures)
	}
	if cfg.shards != 3 {
		t.Fatalf("shards = %d: the -shards 3 flag must override the file's 6", cfg.shards)
	}
	if cfg.maxInflight != 128 {
		t.Fatalf("maxInflight = %d: the flag must override the file's 4", cfg.maxInflight)
	}
	if cfg.rateLimit != 12.5 {
		t.Fatalf("rateLimit = %v, want 12.5 from the file", cfg.rateLimit)
	}
	if cfg.walSync != 250*time.Millisecond {
		t.Fatalf("walSync = %v, want 250ms from the file", cfg.walSync)
	}
	if cfg.pipeAdaptive {
		t.Fatal("pipeline-adaptive=false from the file not applied")
	}
	if err := cfg.validate(); err != nil {
		t.Fatalf("merged config invalid: %v", err)
	}
}

// TestConfigFileRejects drives every file-level failure: unknown keys,
// values of the wrong shape, nesting, and trailing garbage — all fatal,
// never silently ignored.
func TestConfigFileRejects(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{"unknown key", `{"shardz": 4}`, `unknown key "shardz"`},
		{"misspelled key", `{"rate_limit": 5}`, `unknown key "rate_limit"`},
		{"bad duration", `{"wal-sync": "fast"}`, `"wal-sync"`},
		{"bad number", `{"shards": "many"}`, `"shards"`},
		{"list value", `{"dims": ["a", "b"]}`, "unsupported value"},
		{"object value", `{"shards": {"n": 4}}`, "unsupported value"},
		{"null value", `{"shards": null}`, "unsupported value"},
		{"nested config", `{"config": "other.json"}`, "cannot nest"},
		{"trailing garbage", `{"shards": 4} {"shards": 5}`, "trailing data"},
		{"not an object", `[1, 2, 3]`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseWithFile(t, tc.json)
			if err == nil {
				t.Fatalf("applyConfigFile accepted %s, want error containing %q", tc.json, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestConfigFileMissing: a -config path that does not exist is fatal.
func TestConfigFileMissing(t *testing.T) {
	var cfg config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	registerFlags(fs, &cfg)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := applyConfigFile(fs, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("applyConfigFile succeeded on a missing file")
	}
}

// TestConfigValidateProperty is the property-based sweep: any config
// drawn from the valid ranges must validate, and corrupting exactly one
// field with a known-bad value must always be caught. A fixed seed keeps
// failures reproducible.
func TestConfigValidateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfac7))
	dur := func(maxMS int) time.Duration { return time.Duration(rng.Intn(maxMS)) * time.Millisecond }
	genValid := func() config {
		cfg := validConfig()
		cfg.shards = rng.Intn(64)
		cfg.dhat = rng.Intn(8)
		cfg.mhat = rng.Intn(8)
		cfg.workers = rng.Intn(16)
		cfg.boardCap = rng.Intn(1024)
		cfg.pipeQueue = rng.Intn(4096)
		cfg.walSync = dur(5000)
		cfg.snapInterval = dur(60000)
		cfg.readCacheTTL = dur(5000)
		cfg.shedWindow = dur(10000)
		cfg.requestTimeout = dur(30000)
		cfg.readTimeout = dur(120000)
		cfg.writeTimeout = dur(120000)
		cfg.idleTimeout = dur(120000)
		cfg.maxInflight = rng.Intn(10000)
		cfg.rateLimit = float64(rng.Intn(1000))
		if cfg.rateLimit > 0 {
			cfg.rateBurst = rng.Intn(1000)
		}
		cfg.maxBody = 1 + rng.Int63n(1<<26)
		cfg.maxBatchBody = cfg.maxBody + rng.Int63n(1<<28)
		if rng.Intn(2) == 0 {
			cfg.stateDir = "/tmp/situfactd-prop"
			cfg.wal = rng.Intn(2) == 0
		}
		return cfg
	}
	corruptions := []func(*config){
		func(c *config) { c.shards = -1 - rng.Intn(100) },
		func(c *config) { c.boardCap = -1 - rng.Intn(100) },
		func(c *config) { c.rateLimit = -float64(1 + rng.Intn(100)) },
		func(c *config) { c.shedWindow = -dur(5000) - time.Millisecond },
		func(c *config) { c.requestTimeout = -dur(5000) - time.Millisecond },
		func(c *config) { c.maxBody = -c.maxBody },
		func(c *config) { c.maxBatchBody = c.maxBody - 1 - rng.Int63n(1000) },
		func(c *config) { c.rateLimit = 0; c.rateBurst = 1 + rng.Intn(100) },
		func(c *config) { c.stateDir = ""; c.wal = true },
		func(c *config) { c.follow = "http://leader"; c.stateDir = "" },
	}
	for i := 0; i < 500; i++ {
		cfg := genValid()
		if err := cfg.validate(); err != nil {
			t.Fatalf("iteration %d: generated-valid config rejected: %v\n%+v", i, err, cfg)
		}
		bad := cfg
		corruptions[rng.Intn(len(corruptions))](&bad)
		if err := bad.validate(); err == nil {
			t.Fatalf("iteration %d: corrupted config accepted:\n%+v", i, bad)
		}
	}
}
