package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestCrashRecoverySIGKILL is the end-to-end durability acceptance test:
// a real situfactd process with -state-dir -wal is SIGKILLed mid-ingest —
// no drain, no shutdown snapshot — restarted over the same state
// directory, and fed the remainder of the stream. Its final
// /v1/facts/top and /v1/metrics must equal those of an uninterrupted
// daemon over the same input.
//
// Determinism: the feeder sends rows one at a time over one connection,
// so the applied set is always a prefix of the stream; merged.tuples of
// the recovered daemon says exactly where to resume.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemon processes")
	}
	bin := buildDaemon(t)
	rows := crashRows(400)

	// Uninterrupted reference run.
	refDir := t.TempDir()
	ref := startDaemon(t, bin, refDir)
	for i, r := range rows {
		if !postRow(ref.url, r) {
			t.Fatalf("reference: row %d rejected", i)
		}
	}
	wantTop := getTop(t, ref.url)
	wantMetrics := getMetrics(t, ref.url)
	ref.stop()

	// Crash run: feed in the background, SIGKILL mid-stream.
	crashDir := t.TempDir()
	d := startDaemon(t, bin, crashDir)
	acked := make(chan int, 1)
	go func() {
		n := 0
		for _, r := range rows {
			if !postRow(d.url, r) {
				break // the kill severed us mid-request
			}
			n++
		}
		acked <- n
	}()
	// Let roughly a third of the stream through (including at least one
	// background checkpoint at the daemon's 150ms -snapshot-interval),
	// then kill -9.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m, err := tryMetrics(d.url); err == nil && m.Merged.Tuples >= int64(len(rows)/3) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
	nAcked := <-acked
	if nAcked >= len(rows) {
		t.Fatalf("daemon survived to the end of the stream (%d rows) — the kill was not mid-ingest", nAcked)
	}

	// Restart over the same state dir: recovery = newest snapshot + WAL
	// tail. Every acknowledged row must be there.
	d2 := startDaemon(t, bin, crashDir)
	defer d2.stop()
	m := getMetrics(t, d2.url)
	applied := int(m.Merged.Tuples)
	if applied < nAcked {
		t.Fatalf("recovered daemon lost acknowledged rows: %d applied < %d acked", applied, nAcked)
	}
	if applied > len(rows) {
		t.Fatalf("recovered daemon applied %d rows of a %d-row stream", applied, len(rows))
	}
	t.Logf("killed after %d acked rows; recovered %d applied rows", nAcked, applied)

	// Resume the stream exactly where the recovered state ends.
	for i, r := range rows[applied:] {
		if !postRow(d2.url, r) {
			t.Fatalf("resumed feed: row %d rejected", applied+i)
		}
	}

	gotMetrics := getMetrics(t, d2.url)
	if gotMetrics.Merged != wantMetrics.Merged {
		t.Errorf("merged metrics after crash+recovery = %+v, want uninterrupted run's %+v",
			gotMetrics.Merged, wantMetrics.Merged)
	}
	if gotMetrics.Len != wantMetrics.Len {
		t.Errorf("len after crash+recovery = %d, want %d", gotMetrics.Len, wantMetrics.Len)
	}
	gotTop := getTop(t, d2.url)
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Errorf("leaderboard after crash+recovery diverged from uninterrupted run:\n got %+v\nwant %+v",
			gotTop, wantTop)
	}
}

// buildDaemon compiles this package into a runnable binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "situfactd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type daemon struct {
	cmd *exec.Cmd
	url string
	t   *testing.T
}

// startDaemon launches the binary on a free port with crash-friendly
// settings: WAL on, frequent background checkpoints, small segments so
// rotation and truncation both happen inside the test.
func startDaemon(t *testing.T, bin, stateDir string) *daemon {
	t.Helper()
	return startDaemonAt(t, bin, stateDir, freeAddr(t))
}

// freeAddr reserves a loopback port and returns it, so a daemon can be
// restarted on the same address after a crash.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemonAt is startDaemon on a caller-chosen address; extra flags
// are appended after the defaults (the flag package keeps the last
// occurrence, so callers can override any of them).
func startDaemonAt(t *testing.T, bin, stateDir, addr string, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", addr,
		"-dims", "team,player",
		"-measures", "points,rebounds",
		"-shards", "3",
		"-shard-dim", "team",
		"-state-dir", stateDir,
		"-wal",
		"-wal-segment-bytes", "4096",
		"-snapshot-interval", "150ms",
		"-topk", "64",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, url: "http://" + addr, t: t}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("daemon logs (%s):\n%s", stateDir, logs.String())
		}
	})
	// Wait for readiness (startup includes recovery).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never became healthy\n%s", logs.String())
	return nil
}

func (d *daemon) stop() {
	if d.cmd.ProcessState == nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// crashRows builds a deterministic stream with a skewed team dimension so
// shards fill unevenly — the harder case for per-shard snapshot LSNs.
func crashRows(n int) []rowWire {
	rng := rand.New(rand.NewSource(42))
	rows := make([]rowWire, n)
	for i := range rows {
		rows[i] = rowWire{
			Dims: []string{
				fmt.Sprintf("team-%d", rng.Intn(7)*rng.Intn(2)), // skewed: team-0 is hot
				fmt.Sprintf("player-%d", rng.Intn(23)),
			},
			Measures: []float64{float64(rng.Intn(60)), float64(rng.Intn(20))},
		}
	}
	return rows
}

func postRow(url string, r rowWire) bool {
	body, _ := json.Marshal(tupleRequest{Dims: r.Dims, Measures: r.Measures})
	resp, err := http.Post(url+"/v1/tuples", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	// Drain so the connection is reused and request order is strict.
	var sink json.RawMessage
	json.NewDecoder(resp.Body).Decode(&sink)
	return resp.StatusCode == http.StatusOK
}

func tryMetrics(url string) (metricsResponse, error) {
	var m metricsResponse
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("status %d", resp.StatusCode)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

func getMetrics(t *testing.T, url string) metricsResponse {
	t.Helper()
	m, err := tryMetrics(url)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func getTop(t *testing.T, url string) topFactsResponse {
	t.Helper()
	var top topFactsResponse
	resp, err := http.Get(url + "/v1/facts/top?k=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	return top
}
