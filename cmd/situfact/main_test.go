package main

import (
	"bytes"
	"strings"
	"testing"
)

const gamelogCSV = `player,month,season,team,opp_team,points,assists,rebounds,fouls
Bogues,Feb,1991-92,Hornets,Hawks,4,12,5,2
Seikaly,Feb,1991-92,Heat,Hawks,24,5,15,3
Sherman,Dec,1993-94,Celtics,Nets,13,13,5,1
Wesley,Feb,1994-95,Celtics,Nets,2,5,2,4
Wesley,Feb,1994-95,Celtics,Timberwolves,3,5,3,2
Strickland,Jan,1995-96,Blazers,Celtics,27,18,8,5
Wesley,Feb,1995-96,Celtics,Nets,12,13,5,0
`

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(gamelogCSV), &out,
		"player,month,season,team,opp_team", "points,assists,rebounds",
		"sbottomup", 0, 0, 0, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "tuple 6") {
		t.Errorf("output missing last arrival:\n%s", s)
	}
	if !strings.Contains(s, "195 facts") {
		t.Errorf("output missing t7's 195 facts:\n%s", s)
	}
	if !strings.Contains(s, "# 7 arrivals") {
		t.Errorf("output missing summary:\n%s", s)
	}
}

func TestRunSmallerBetterAndTau(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(gamelogCSV), &out,
		"player,team", "points,-fouls",
		"bottomup", 2, 2, 2.0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PROMINENT") {
		t.Errorf("τ-filtered run printed no prominent facts:\n%s", out.String())
	}
}

func TestRunQuiet(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(gamelogCSV), &out,
		"player,team", "points", "stopdown", 0, 0, 0, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "#") {
		t.Errorf("quiet mode printed rows:\n%s", out.String())
	}
}

func TestRunBaselineDisablesProminence(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(gamelogCSV), &out,
		"player,team", "points,assists", "baselineseq", 0, 0, 0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BaselineSeq") {
		t.Errorf("summary missing algorithm name:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(gamelogCSV), &out,
		"nope", "points", "sbottomup", 0, 0, 0, 3, false); err == nil {
		t.Error("unknown dimension column accepted")
	}
	if err := run(strings.NewReader(gamelogCSV), &out,
		"player", "nope", "sbottomup", 0, 0, 0, 3, false); err == nil {
		t.Error("unknown measure column accepted")
	}
	if err := run(strings.NewReader(gamelogCSV), &out,
		"player", "points", "bogus-algo", 0, 0, 0, 3, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(strings.NewReader("a,b\nx,notanumber\n"), &out,
		"a", "b", "sbottomup", 0, 0, 0, 3, false); err == nil {
		t.Error("non-numeric measure accepted")
	}
	if err := run(strings.NewReader(""), &out,
		"a", "b", "sbottomup", 0, 0, 0, 3, false); err == nil {
		t.Error("empty input accepted")
	}
}
