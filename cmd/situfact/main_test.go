package main

import (
	"bytes"
	"strings"
	"testing"
)

const gamelogCSV = `player,month,season,team,opp_team,points,assists,rebounds,fouls
Bogues,Feb,1991-92,Hornets,Hawks,4,12,5,2
Seikaly,Feb,1991-92,Heat,Hawks,24,5,15,3
Sherman,Dec,1993-94,Celtics,Nets,13,13,5,1
Wesley,Feb,1994-95,Celtics,Nets,2,5,2,4
Wesley,Feb,1994-95,Celtics,Timberwolves,3,5,3,2
Strickland,Jan,1995-96,Blazers,Celtics,27,18,8,5
Wesley,Feb,1995-96,Celtics,Nets,12,13,5,0
`

// base returns the shared flag defaults; tests override fields as needed.
func base() config {
	return config{algo: "sbottomup", top: 3, shards: 1, batch: 64}
}

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	cfg := base()
	cfg.dims = "player,month,season,team,opp_team"
	cfg.measures = "points,assists,rebounds"
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "tuple 6") {
		t.Errorf("output missing last arrival:\n%s", s)
	}
	if !strings.Contains(s, "195 facts") {
		t.Errorf("output missing t7's 195 facts:\n%s", s)
	}
	if !strings.Contains(s, "# 7 arrivals") {
		t.Errorf("output missing summary:\n%s", s)
	}
}

func TestRunSmallerBetterAndTau(t *testing.T) {
	var out bytes.Buffer
	cfg := base()
	cfg.dims, cfg.measures = "player,team", "points,-fouls"
	cfg.algo, cfg.dhat, cfg.mhat, cfg.tau, cfg.top = "bottomup", 2, 2, 2.0, 1
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PROMINENT") {
		t.Errorf("τ-filtered run printed no prominent facts:\n%s", out.String())
	}
}

func TestRunQuiet(t *testing.T) {
	var out bytes.Buffer
	cfg := base()
	cfg.dims, cfg.measures = "player,team", "points"
	cfg.algo, cfg.quiet = "stopdown", true
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "#") {
		t.Errorf("quiet mode printed rows:\n%s", out.String())
	}
}

func TestRunBaselineDisablesProminence(t *testing.T) {
	var out bytes.Buffer
	cfg := base()
	cfg.dims, cfg.measures = "player,team", "points,assists"
	cfg.algo, cfg.top = "baselineseq", 2
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BaselineSeq") {
		t.Errorf("summary missing algorithm name:\n%s", out.String())
	}
}

func TestRunSharded(t *testing.T) {
	// The sharded front-end must see all rows and report per-shard tuples.
	for _, batch := range []int{1, 3, 64} {
		var out bytes.Buffer
		cfg := base()
		cfg.dims = "player,month,season,team,opp_team"
		cfg.measures = "points,assists,rebounds"
		cfg.shards, cfg.shardDim, cfg.batch = 3, "team", batch
		if err := run(strings.NewReader(gamelogCSV), &out, cfg); err != nil {
			t.Fatal(err)
		}
		s := out.String()
		if !strings.Contains(s, "# 7 arrivals") {
			t.Errorf("batch=%d: summary missing arrivals:\n%s", batch, s)
		}
		if !strings.Contains(s, "3 shards") {
			t.Errorf("batch=%d: summary missing shard count:\n%s", batch, s)
		}
		if !strings.Contains(s, "shard ") {
			t.Errorf("batch=%d: no per-shard arrival lines:\n%s", batch, s)
		}
	}
}

func TestRunShardedParallelWorkers(t *testing.T) {
	// Both concurrency layers stacked: sharded pool of parallel engines.
	var out bytes.Buffer
	cfg := base()
	cfg.dims = "player,month,season,team,opp_team"
	cfg.measures = "points,assists,rebounds"
	cfg.algo, cfg.workers = "parallel-bottomup", 2
	cfg.shards, cfg.shardDim = 2, "team"
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Parallel(BottomUp") {
		t.Errorf("summary missing parallel algorithm name:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	mk := func(dims, measures, algo string) config {
		cfg := base()
		cfg.dims, cfg.measures, cfg.algo = dims, measures, algo
		return cfg
	}
	if err := run(strings.NewReader(gamelogCSV), &out, mk("nope", "points", "sbottomup")); err == nil {
		t.Error("unknown dimension column accepted")
	}
	if err := run(strings.NewReader(gamelogCSV), &out, mk("player", "nope", "sbottomup")); err == nil {
		t.Error("unknown measure column accepted")
	}
	if err := run(strings.NewReader(gamelogCSV), &out, mk("player", "points", "bogus-algo")); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(strings.NewReader("a,b\nx,notanumber\n"), &out, mk("a", "b", "sbottomup")); err == nil {
		t.Error("non-numeric measure accepted")
	}
	if err := run(strings.NewReader(""), &out, mk("a", "b", "sbottomup")); err == nil {
		t.Error("empty input accepted")
	}
	// Sharded-mode errors surface too: unknown shard dimension and unknown
	// algorithm inside the pool.
	cfg := mk("player,team", "points", "sbottomup")
	cfg.shards, cfg.shardDim = 2, "nope"
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err == nil {
		t.Error("unknown shard dimension accepted")
	}
	cfg = mk("player,team", "points", "bogus-algo")
	cfg.shards = 2
	if err := run(strings.NewReader(gamelogCSV), &out, cfg); err == nil {
		t.Error("unknown algorithm accepted in sharded mode")
	}
}
