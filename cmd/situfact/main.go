// Command situfact streams CSV rows through the discovery engine and
// prints situational facts as they emerge — the "newsroom monitor" use
// case of the paper's introduction.
//
// The input's first CSV row must be a header; the -dims and -measures
// flags partition the columns. Measures default to larger-is-better;
// prefix a name with '-' for smaller-is-better (e.g. -measures
// points,assists,-fouls).
//
// Usage:
//
//	situfact -dims player,team,opp_team -measures points,rebounds,-fouls \
//	         [-algo sbottomup] [-dhat 3] [-mhat 3] [-tau 100] [-top 3] \
//	         [-shards 4] [-shard-dim team] [-workers 4] [-batch 64] [input.csv]
//
// With no input file, rows are read from stdin, enabling live pipelines:
//
//	tail -f gamelog.csv | situfact -dims ... -measures ...
//
// Concurrency comes in two independent, stackable forms: -shards N
// partitions the stream by the -shard-dim value across N engines running
// in parallel (batches of -batch rows are fanned out together), and
// -workers W with -algo parallel-topdown or parallel-bottomup
// parallelises each engine internally across measure subspaces.
//
// Sharded mode trades latency for throughput: output appears only when a
// batch fills (or at EOF), so a slow live feed can sit on buffered rows
// indefinitely. For tail -f–style pipelines use -batch 1 (per-row
// processing, still sharded) or a single engine.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	situfact "repro"
)

// config carries every run parameter; flags fill one in main.
type config struct {
	dims     string  // comma-separated dimension column names
	measures string  // comma-separated measure column names ('-' prefix = smaller-is-better)
	algo     string  // algorithm name (core registry)
	dhat     int     // max bound dimension attributes (0 = no cap)
	mhat     int     // max measure subspace size (0 = no cap)
	tau      float64 // only print arrivals with max prominence ≥ τ
	top      int     // facts to print per arrival
	quiet    bool    // summary only
	shards   int     // engine count; ≤ 1 = single engine
	shardDim string  // dimension routing rows to shards; "" = first dimension
	workers  int     // worker count for the parallel-* algorithms
	batch    int     // rows fanned out per AppendBatch in sharded mode
}

func main() {
	var cfg config
	flag.StringVar(&cfg.dims, "dims", "", "comma-separated dimension column names (required)")
	flag.StringVar(&cfg.measures, "measures", "", "comma-separated measure column names; '-' prefix = smaller-is-better (required)")
	flag.StringVar(&cfg.algo, "algo", "sbottomup", "algorithm: "+strings.Join(situfact.Algorithms(), "|"))
	flag.IntVar(&cfg.dhat, "dhat", 0, "max bound dimension attributes (0 = no cap)")
	flag.IntVar(&cfg.mhat, "mhat", 0, "max measure subspace size (0 = no cap)")
	flag.Float64Var(&cfg.tau, "tau", 0, "only print arrivals whose max prominence ≥ τ (0 = print every arrival with facts)")
	flag.IntVar(&cfg.top, "top", 3, "facts to print per arrival")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress per-arrival output; print summary only")
	flag.IntVar(&cfg.shards, "shards", 1, "partition the stream across this many engines (≤ 1 = single engine)")
	flag.StringVar(&cfg.shardDim, "shard-dim", "", "dimension column whose value routes a row to its shard (default: first of -dims)")
	flag.IntVar(&cfg.workers, "workers", 0, "goroutines per engine for the parallel-* algorithms (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.batch, "batch", 64, "rows fanned out together per batch in sharded mode (output waits for a full batch; use 1 for live feeds)")
	flag.Parse()

	if cfg.dims == "" || cfg.measures == "" {
		flag.Usage()
		os.Exit(2)
	}
	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, cfg); err != nil {
		fatal(err)
	}
}

// sink abstracts the two front-ends (single engine, sharded pool) for the
// streaming loop. append returns the arrivals that became ready with this
// row — one per row for the engine, a whole batch at fan-out points for
// the pool — paired with the dimension values of the rows they belong to;
// flush drains whatever is still buffered at EOF.
type sink interface {
	append(dims []string, measures []float64) ([]*situfact.Arrival, [][]string, error)
	flush() ([]*situfact.Arrival, [][]string, error)
	metrics() situfact.Metrics
	algorithm() string
	close() error
}

func run(in io.Reader, out io.Writer, cfg config) error {
	schema, specs, err := situfact.ParseSchema("stream", cfg.dims, cfg.measures)
	if err != nil {
		return err
	}
	dimNames := schema.DimensionNames()
	measureNames := make([]string, len(specs))
	for i, sp := range specs {
		measureNames[i] = sp.Name
	}
	opt := situfact.Options{
		Algorithm:      situfact.Algorithm(cfg.algo),
		MaxBoundDims:   cfg.dhat,
		MaxMeasureDims: cfg.mhat,
		Workers:        cfg.workers,
	}
	switch opt.Algorithm {
	case situfact.AlgoBruteForce, situfact.AlgoBaselineSeq, situfact.AlgoBaselineIdx, situfact.AlgoCCSC:
		// Baselines have no µ store, so prominence cannot be computed.
		opt.DisableProminence = true
	}
	var snk sink
	if cfg.shards > 1 {
		pool, err := situfact.NewPool(schema, situfact.PoolOptions{
			Shards:   cfg.shards,
			ShardDim: strings.TrimSpace(cfg.shardDim),
			Engine:   opt,
		})
		if err != nil {
			return err
		}
		snk = &poolSink{pool: pool, batch: max(cfg.batch, 1)}
	} else {
		eng, err := situfact.New(schema, opt)
		if err != nil {
			return err
		}
		snk = &engineSink{eng: eng}
	}
	defer snk.close()

	r := csv.NewReader(bufio.NewReader(in))
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("read header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	for _, n := range dimNames {
		if _, ok := col[strings.TrimSpace(n)]; !ok {
			return fmt.Errorf("dimension column %q not in header %v", n, header)
		}
	}
	for _, n := range measureNames {
		if _, ok := col[n]; !ok {
			return fmt.Errorf("measure column %q not in header %v", n, header)
		}
	}

	w := bufio.NewWriter(out)
	defer w.Flush()
	arrivals, printed := 0, 0
	sharded := cfg.shards > 1
	emit := func(arr *situfact.Arrival, dv []string) {
		if n := printArrival(w, arr, dv, cfg, sharded); n > 0 {
			printed++
		}
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		dv := make([]string, len(dimNames))
		for i, n := range dimNames {
			dv[i] = rec[col[strings.TrimSpace(n)]]
		}
		mv := make([]float64, len(measureNames))
		for i, n := range measureNames {
			v, err := strconv.ParseFloat(rec[col[n]], 64)
			if err != nil {
				return fmt.Errorf("row %d: measure %s: %w", arrivals+1, n, err)
			}
			mv[i] = v
		}
		arrs, dims, err := snk.append(dv, mv)
		if err != nil {
			return err
		}
		arrivals++
		for i, arr := range arrs {
			emit(arr, dims[i])
		}
	}
	arrs, dims, err := snk.flush()
	if err != nil {
		return err
	}
	for i, arr := range arrs {
		emit(arr, dims[i])
	}
	m := snk.metrics()
	fmt.Fprintf(w, "# %d arrivals, %d printed; algorithm %s", arrivals, printed, snk.algorithm())
	if sharded {
		fmt.Fprintf(w, "; %d shards", cfg.shards)
	}
	fmt.Fprintf(w, "; %d facts total; %d comparisons; %d stored entries\n",
		m.Facts, m.Comparisons, m.StoredTuples)
	return nil
}

// printArrival writes one arrival's facts subject to the quiet/τ/top
// settings, returning the number of lines a caller should count as
// "printed" (0 or 1 arrivals).
func printArrival(w io.Writer, arr *situfact.Arrival, dv []string, cfg config, sharded bool) int {
	if cfg.quiet || len(arr.Facts) == 0 {
		return 0
	}
	prefix := fmt.Sprintf("tuple %d", arr.TupleID)
	if sharded {
		prefix = fmt.Sprintf("shard %d %s", arr.Shard, prefix)
	}
	if cfg.tau > 0 {
		prom := arr.Prominent(cfg.tau)
		if len(prom) == 0 {
			return 0
		}
		fmt.Fprintf(w, "%s (%s):\n", prefix, strings.Join(dv, ","))
		for _, f := range prom[:min(cfg.top, len(prom))] {
			fmt.Fprintf(w, "  PROMINENT %s\n", f)
		}
		return 1
	}
	fmt.Fprintf(w, "%s (%s): %d facts\n", prefix, strings.Join(dv, ","), len(arr.Facts))
	for _, f := range arr.Top(cfg.top) {
		fmt.Fprintf(w, "  %s\n", f)
	}
	return 1
}

// engineSink feeds a single engine; every append returns its arrival.
type engineSink struct {
	eng *situfact.Engine
}

func (s *engineSink) append(dv []string, mv []float64) ([]*situfact.Arrival, [][]string, error) {
	arr, err := s.eng.Append(dv, mv)
	if err != nil {
		return nil, nil, err
	}
	return []*situfact.Arrival{arr}, [][]string{dv}, nil
}
func (s *engineSink) flush() ([]*situfact.Arrival, [][]string, error) { return nil, nil, nil }
func (s *engineSink) metrics() situfact.Metrics                       { return s.eng.Metrics() }
func (s *engineSink) algorithm() string                               { return s.eng.Algorithm() }
func (s *engineSink) close() error                                    { return s.eng.Close() }

// poolSink buffers rows and fans each full batch across the pool's shards
// concurrently; arrivals surface at flush points in input order.
type poolSink struct {
	pool  *situfact.Pool
	batch int
	rows  []situfact.Row
	dims  [][]string
}

func (s *poolSink) append(dv []string, mv []float64) ([]*situfact.Arrival, [][]string, error) {
	s.rows = append(s.rows, situfact.Row{Dims: dv, Measures: mv})
	s.dims = append(s.dims, dv)
	if len(s.rows) < s.batch {
		return nil, nil, nil
	}
	return s.flush()
}

func (s *poolSink) flush() ([]*situfact.Arrival, [][]string, error) {
	if len(s.rows) == 0 {
		return nil, nil, nil
	}
	arrs, err := s.pool.AppendBatch(s.rows)
	dims := s.dims
	s.rows, s.dims = nil, nil
	return arrs, dims, err
}

func (s *poolSink) metrics() situfact.Metrics { return s.pool.Metrics() }
func (s *poolSink) algorithm() string         { return s.pool.Algorithm() }
func (s *poolSink) close() error              { return s.pool.Close() }

func fatal(err error) {
	// The library prefixes its own errors with the package name; avoid
	// "situfact: situfact: …" stutter under the binary-name prefix.
	fmt.Fprintln(os.Stderr, "situfact:", strings.TrimPrefix(err.Error(), "situfact: "))
	os.Exit(1)
}
