// Command situfact streams CSV rows through the discovery engine and
// prints situational facts as they emerge — the "newsroom monitor" use
// case of the paper's introduction.
//
// The input's first CSV row must be a header; the -dims and -measures
// flags partition the columns. Measures default to larger-is-better;
// prefix a name with '-' for smaller-is-better (e.g. -measures
// points,assists,-fouls).
//
// Usage:
//
//	situfact -dims player,team,opp_team -measures points,rebounds,-fouls \
//	         [-algo sbottomup] [-dhat 3] [-mhat 3] [-tau 100] [-top 3] [input.csv]
//
// With no input file, rows are read from stdin, enabling live pipelines:
//
//	tail -f gamelog.csv | situfact -dims ... -measures ...
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	situfact "repro"
)

func main() {
	dims := flag.String("dims", "", "comma-separated dimension column names (required)")
	measures := flag.String("measures", "", "comma-separated measure column names; '-' prefix = smaller-is-better (required)")
	algo := flag.String("algo", "sbottomup", "algorithm: bottomup|topdown|sbottomup|stopdown|baselineseq|baselineidx|ccsc|bruteforce")
	dhat := flag.Int("dhat", 0, "max bound dimension attributes (0 = no cap)")
	mhat := flag.Int("mhat", 0, "max measure subspace size (0 = no cap)")
	tau := flag.Float64("tau", 0, "only print arrivals whose max prominence ≥ τ (0 = print every arrival with facts)")
	top := flag.Int("top", 3, "facts to print per arrival")
	quiet := flag.Bool("quiet", false, "suppress per-arrival output; print summary only")
	flag.Parse()

	if *dims == "" || *measures == "" {
		flag.Usage()
		os.Exit(2)
	}
	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, *dims, *measures, *algo, *dhat, *mhat, *tau, *top, *quiet); err != nil {
		fatal(err)
	}
}

func run(in io.Reader, out io.Writer, dims, measures, algo string, dhat, mhat int, tau float64, top int, quiet bool) error {
	dimNames := strings.Split(dims, ",")
	b := situfact.NewSchemaBuilder("stream")
	for _, d := range dimNames {
		b.Dimension(strings.TrimSpace(d))
	}
	var measureNames []string
	for _, m := range strings.Split(measures, ",") {
		m = strings.TrimSpace(m)
		dir := situfact.LargerBetter
		if strings.HasPrefix(m, "-") {
			dir = situfact.SmallerBetter
			m = m[1:]
		}
		measureNames = append(measureNames, m)
		b.Measure(m, dir)
	}
	schema, err := b.Build()
	if err != nil {
		return err
	}
	opt := situfact.Options{
		Algorithm:      situfact.Algorithm(algo),
		MaxBoundDims:   dhat,
		MaxMeasureDims: mhat,
	}
	switch opt.Algorithm {
	case situfact.AlgoBruteForce, situfact.AlgoBaselineSeq, situfact.AlgoBaselineIdx, situfact.AlgoCCSC:
		// Baselines have no µ store, so prominence cannot be computed.
		opt.DisableProminence = true
	}
	eng, err := situfact.New(schema, opt)
	if err != nil {
		return err
	}
	defer eng.Close()

	r := csv.NewReader(bufio.NewReader(in))
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("read header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	for _, n := range dimNames {
		if _, ok := col[strings.TrimSpace(n)]; !ok {
			return fmt.Errorf("dimension column %q not in header %v", n, header)
		}
	}
	for _, n := range measureNames {
		if _, ok := col[n]; !ok {
			return fmt.Errorf("measure column %q not in header %v", n, header)
		}
	}

	w := bufio.NewWriter(out)
	defer w.Flush()
	arrivals, printed := 0, 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		dv := make([]string, len(dimNames))
		for i, n := range dimNames {
			dv[i] = rec[col[strings.TrimSpace(n)]]
		}
		mv := make([]float64, len(measureNames))
		for i, n := range measureNames {
			v, err := strconv.ParseFloat(rec[col[n]], 64)
			if err != nil {
				return fmt.Errorf("row %d: measure %s: %w", arrivals+1, n, err)
			}
			mv[i] = v
		}
		arr, err := eng.Append(dv, mv)
		if err != nil {
			return err
		}
		arrivals++
		if quiet || len(arr.Facts) == 0 {
			continue
		}
		if tau > 0 {
			prom := arr.Prominent(tau)
			if len(prom) == 0 {
				continue
			}
			fmt.Fprintf(w, "tuple %d (%s):\n", arr.TupleID, strings.Join(dv, ","))
			for _, f := range prom[:minInt(top, len(prom))] {
				fmt.Fprintf(w, "  PROMINENT %s\n", f)
			}
			printed++
			continue
		}
		fmt.Fprintf(w, "tuple %d (%s): %d facts\n", arr.TupleID, strings.Join(dv, ","), len(arr.Facts))
		for _, f := range arr.Top(top) {
			fmt.Fprintf(w, "  %s\n", f)
		}
		printed++
	}
	m := eng.Metrics()
	fmt.Fprintf(w, "# %d arrivals, %d printed; algorithm %s; %d facts total; %d comparisons; %d stored entries\n",
		arrivals, printed, eng.Algorithm(), m.Facts, m.Comparisons, m.StoredTuples)
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "situfact:", err)
	os.Exit(1)
}
