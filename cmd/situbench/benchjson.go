package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	situfact "repro"
	"repro/internal/core"
	"repro/internal/harness"
)

// Machine-readable benchmark mode (-bench-json <path>): re-measures the
// Fig 7/8 warm points — per-tuple discovery latency against a pre-warmed
// state on the NBA feed (d=5, m=7, d̂=4) — through testing.Benchmark and
// writes one JSON document per run, so the repository's perf trajectory
// (BENCH_PR*.json) is regenerable with a single command:
//
//	go run ./cmd/situbench -bench-json BENCH_PR4.json
//
// ns/op and allocs/op come from the testing framework; cmp/tuple,
// constraints/tuple and stored entries come from the algorithm's own
// counters over warmup+measured arrivals combined.

// benchPoint is one (figure, algorithm) measurement.
type benchPoint struct {
	Figure              string  `json:"figure"`
	Algorithm           string  `json:"algorithm"`
	D                   int     `json:"d"`
	M                   int     `json:"m"`
	MaxBound            int     `json:"dhat"`
	Warmup              int     `json:"warmup"`
	Iterations          int     `json:"iterations"`
	NsPerOp             float64 `json:"ns_op"`
	AllocsPerOp         int64   `json:"allocs_op"`
	BytesPerOp          int64   `json:"bytes_op"`
	CmpPerTuple         float64 `json:"cmp_per_tuple"`
	ConstraintsPerTuple float64 `json:"constraints_per_tuple"`
	StoredEntries       int64   `json:"stored_entries"`
}

// benchDoc is the top-level JSON document.
type benchDoc struct {
	Schema    string       `json:"schema"`
	Generated string       `json:"generated"`
	GoVersion string       `json:"go_version"`
	GoOSArch  string       `json:"goos_goarch"`
	Benchtime string       `json:"benchtime"`
	Points    []benchPoint `json:"points"`
}

// benchJSONAlgorithms are the Fig 7/8 warm-point algorithms: the two
// lattice families, their sharing variants, and C-CSC as the related-work
// yardstick.
var benchJSONAlgorithms = []harness.AlgorithmID{
	harness.CCSC, harness.BottomUp, harness.TopDown, harness.SBottomUp, harness.STopDown,
}

// benchJSONWarmup returns the warm-point warmup length for an algorithm
// (scaled down for C-CSC exactly as bench_test.go does).
func benchJSONWarmup(id harness.AlgorithmID) int {
	if id == harness.CCSC {
		return 150 // an order of magnitude slower per tuple
	}
	return 600
}

// benchWarmPoint measures one algorithm at the warm point after warm
// arrivals.
func benchWarmPoint(id harness.AlgorithmID, warm int) (benchPoint, error) {
	const d, m, dhat = 5, 7, 4
	tb, err := harness.StreamSpec{Dataset: "nba", D: d, M: m, N: 8192, Seed: 42}.Build()
	if err != nil {
		return benchPoint{}, err
	}
	disc, err := harness.NewDiscoverer(id, core.Config{Schema: tb.Schema(), MaxBound: dhat, MaxMeasure: -1}, "")
	if err != nil {
		return benchPoint{}, err
	}
	defer disc.Close()
	for i := 0; i < warm; i++ {
		disc.Process(tb.At(i))
	}
	next := warm
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if next >= tb.Len() {
				next = warm // wrap: keep feeding warm-region arrivals
			}
			disc.Process(tb.At(next))
			next++
		}
	})
	met := disc.Metrics()
	p := benchPoint{
		Figure:     "fig7a/fig8a",
		Algorithm:  string(id),
		D:          d,
		M:          m,
		MaxBound:   dhat,
		Warmup:     warm,
		Iterations: res.N,
		NsPerOp:    float64(res.NsPerOp()),

		AllocsPerOp:   res.AllocsPerOp(),
		BytesPerOp:    res.AllocedBytesPerOp(),
		StoredEntries: disc.StoreStats().StoredTuples,
	}
	if met.Tuples > 0 {
		p.CmpPerTuple = float64(met.Comparisons) / float64(met.Tuples)
		p.ConstraintsPerTuple = float64(met.Traversed) / float64(met.Tuples)
	}
	return p, nil
}

// benchQueryPoint measures the pool read path warm point: one QueryFacts
// page (limit 100, cursor advanced across iterations) against a
// 4-shard pool warmed with warm NBA rows — the first read-path entry of
// the perf trajectory.
func benchQueryPoint(warm int) (benchPoint, error) {
	const d, m, dhat = 5, 7, 3
	tb, err := harness.StreamSpec{Dataset: "nba", D: d, M: m, N: warm, Seed: 42}.Build()
	if err != nil {
		return benchPoint{}, err
	}
	dict := tb.Dict()
	rows := make([]situfact.Row, warm)
	for i := range rows {
		tu := tb.At(i)
		dims := make([]string, d)
		for j := 0; j < d; j++ {
			dims[j] = dict.Decode(j, tu.Dims[j])
		}
		rows[i] = situfact.Row{Dims: dims, Measures: tu.Raw}
	}
	pool, err := situfact.NewPool(situfact.WrapSchema(tb.Schema()), situfact.PoolOptions{
		Shards:   4,
		ShardDim: "team",
		Engine:   situfact.Options{MaxBoundDims: dhat, MaxMeasureDims: 3},
	})
	if err != nil {
		return benchPoint{}, err
	}
	defer pool.Close()
	if _, err := pool.AppendBatch(rows); err != nil {
		return benchPoint{}, err
	}
	filter := situfact.FactFilter{Shard: situfact.AllShards, TupleID: -1}
	cursor := ""
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			page, err := pool.QueryFacts(filter, cursor, 100)
			if err != nil {
				b.Fatal(err)
			}
			cursor = page.NextCursor
		}
	})
	return benchPoint{
		Figure:        "read-path",
		Algorithm:     "pool-query/shards=4",
		D:             d,
		M:             m,
		MaxBound:      dhat,
		Warmup:        warm,
		Iterations:    res.N,
		NsPerOp:       float64(res.NsPerOp()),
		AllocsPerOp:   res.AllocsPerOp(),
		BytesPerOp:    res.AllocedBytesPerOp(),
		StoredEntries: pool.Metrics().StoredTuples,
	}, nil
}

// runBenchJSON measures every warm point and writes the JSON document.
func runBenchJSON(path string, progress io.Writer) error {
	doc := benchDoc{
		Schema:    "situbench-warm-points/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GoOSArch:  runtime.GOOS + "/" + runtime.GOARCH,
		Benchtime: "testing.Benchmark auto-N, NBA d=5 m=7 dhat=4, warm start",
	}
	for _, id := range benchJSONAlgorithms {
		fmt.Fprintf(progress, "bench %s...\n", id)
		p, err := benchWarmPoint(id, benchJSONWarmup(id))
		if err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		fmt.Fprintf(progress, "  %s: %.0f ns/op, %d allocs/op, %.0f cmp/tuple\n",
			id, p.NsPerOp, p.AllocsPerOp, p.CmpPerTuple)
		doc.Points = append(doc.Points, p)
	}
	fmt.Fprintf(progress, "bench pool-query...\n")
	q, err := benchQueryPoint(2048)
	if err != nil {
		return fmt.Errorf("bench pool-query: %w", err)
	}
	fmt.Fprintf(progress, "  pool-query: %.0f ns/op per page, %d allocs/op\n", q.NsPerOp, q.AllocsPerOp)
	doc.Points = append(doc.Points, q)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
