package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// stubFactsDaemon mimics the read surface the page walker touches: a
// paginated /v1/facts over nFacts synthetic facts with opaque cursors,
// plus the schema and metrics blocks the report is labelled from.
func stubFactsDaemon(t *testing.T, nFacts int, indexServing bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"dimensions":["team","player"],"measures":[{"name":"points"}],"shards":4}`))
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"index":{"serving":%v,"entries":%d}}`, indexServing, nFacts)
	})
	mux.HandleFunc("GET /v1/facts", func(w http.ResponseWriter, r *http.Request) {
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		from := 0
		if c := r.URL.Query().Get("cursor"); c != "" {
			from, _ = strconv.Atoi(strings.TrimPrefix(c, "at-"))
		}
		to := min(from+limit, nFacts)
		facts := make([]json.RawMessage, to-from)
		for i := range facts {
			facts[i] = json.RawMessage(fmt.Sprintf(`{"shard":0,"skyline_size":%d}`, from+i))
		}
		next := ""
		if to < nFacts {
			next = "at-" + strconv.Itoa(to)
		}
		json.NewEncoder(w).Encode(map[string]any{"facts": facts, "next_cursor": next})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunPageWalk(t *testing.T) {
	const nFacts, limit = 137, 10 // 14 pages, short last page
	ts := stubFactsDaemon(t, nFacts, true)
	path := filepath.Join(t.TempDir(), "walk.json")
	var out bytes.Buffer
	err := runPageWalk(&out, pageWalkParams{URL: ts.URL, Limit: limit, Walks: 3, JSONPath: path})
	if err != nil {
		t.Fatalf("runPageWalk: %v\n%s", err, out.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep pageWalkReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, buf)
	}
	if rep.Schema != "situbench-pagewalk/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Facts != nFacts || rep.PagesPerWalk != 14 {
		t.Errorf("report saw %d facts over %d pages, want %d over 14", rep.Facts, rep.PagesPerWalk, nFacts)
	}
	if !rep.IndexServing || rep.Shards != 4 {
		t.Errorf("report mislabelled the target: %+v", rep)
	}
	if len(rep.Buckets) != 10 {
		t.Fatalf("report has %d depth buckets, want 10", len(rep.Buckets))
	}
	covered := 0
	for i, b := range rep.Buckets {
		if b.LastDepth < b.FirstDepth || b.Pages != b.LastDepth-b.FirstDepth+1 {
			t.Errorf("bucket %d has inconsistent depth range: %+v", i, b)
		}
		if b.P99Ms < b.P50Ms {
			t.Errorf("bucket %d: p99 %.3f < p50 %.3f", i, b.P99Ms, b.P50Ms)
		}
		covered += b.Pages
	}
	if covered != rep.PagesPerWalk {
		t.Errorf("buckets cover %d pages, want %d", covered, rep.PagesPerWalk)
	}
	for _, want := range []string{"path=index", "14 pages", "deepest page"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunPageWalkScanLabel(t *testing.T) {
	ts := stubFactsDaemon(t, 5, false)
	var out bytes.Buffer
	if err := runPageWalk(&out, pageWalkParams{URL: ts.URL, Limit: 50, Walks: 1}); err != nil {
		t.Fatalf("runPageWalk: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "path=scan") {
		t.Errorf("summary does not label the scan path:\n%s", out.String())
	}
}
