package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestChaosHarness runs the real drill end to end, scaled down: two kill
// -9 cycles (one clean, one with a self-expiring fsync fault plan)
// against a freshly built situfactd, then the zero-loss and
// follower-convergence verification. It is the acceptance test that the
// whole fault-injection stack — env hook, degraded mode, repair loop,
// recovery, replication — composes.
func TestChaosHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and tortures real daemon processes")
	}
	bin := filepath.Join(t.TempDir(), "situfactd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/situfactd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build situfactd: %v\n%s", err, out)
	}

	jsonPath := filepath.Join(t.TempDir(), "chaos.json")
	var out bytes.Buffer
	err := runChaos(&out, chaosParams{
		Binary:     bin,
		Cycles:     2,
		Rows:       150,
		Conns:      3,
		FaultPlans: []string{"", "fsync:from=3;clear-after=400ms"},
		CycleCap:   30 * time.Second,
		JSONPath:   jsonPath,
	})
	t.Logf("chaos output:\n%s", out.String())
	if err != nil {
		t.Fatalf("chaos drill failed: %v", err)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep chaosReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("decode chaos report: %v", err)
	}
	if rep.Schema != "situbench-chaos/v1" {
		t.Errorf("report schema %q", rep.Schema)
	}
	if len(rep.Cycles) != 2 {
		t.Fatalf("report has %d cycles, want 2", len(rep.Cycles))
	}
	if rep.TotalAcked == 0 {
		t.Error("no rows were ever acked — the drill exercised nothing")
	}
	if rep.LostRows != 0 {
		t.Errorf("%d acked rows lost", rep.LostRows)
	}
	if !rep.Converged {
		t.Error("follower did not converge")
	}
	// The faulted cycle must actually have degraded (503s observed) and
	// healed (a repair logged) — otherwise the plan never bit.
	faulted := rep.Cycles[1]
	if faulted.Rejected == 0 {
		t.Errorf("faulted cycle saw no 503s: %+v", faulted)
	}
	if faulted.Repairs == 0 {
		t.Errorf("faulted cycle logged no repairs: %+v", faulted)
	}
}
