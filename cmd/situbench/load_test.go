package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon mimics the situfactd surface the load generator touches:
// appends ack unique ids, deletes succeed once per acked id.
func stubDaemon(t *testing.T, rows, deletes *atomic.Int64) *httptest.Server {
	t.Helper()
	var live sync.Map // id -> struct{}
	nextID := func() string {
		id := fmt.Sprintf("0:%d", rows.Add(1))
		live.Store(id, struct{}{})
		return id
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"dimensions":["team","player"],"measures":[{"name":"points"},{"name":"rebounds"}]}`))
	})
	mux.HandleFunc("POST /v1/tuples", func(w http.ResponseWriter, r *http.Request) {
		var row loadRow
		if err := json.NewDecoder(r.Body).Decode(&row); err != nil ||
			len(row.Dims) != 2 || len(row.Measures) != 2 {
			http.Error(w, "bad row", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, `{"id":%q,"fact_count":0}`, nextID())
	})
	mux.HandleFunc("POST /v1/tuples:batch", func(w http.ResponseWriter, r *http.Request) {
		var body loadBatchBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Rows) == 0 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		arrs := make([]*loadArrival, len(body.Rows))
		for i := range arrs {
			arrs[i] = &loadArrival{ID: nextID()}
		}
		json.NewEncoder(w).Encode(loadBatchArrivals{Arrivals: arrs})
	})
	mux.HandleFunc("DELETE /v1/tuples/{id}", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := live.LoadAndDelete(r.PathValue("id")); !ok {
			http.Error(w, "unknown tuple", http.StatusNotFound)
			return
		}
		deletes.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunLoadSingle(t *testing.T) {
	var rows atomic.Int64
	var deletes atomic.Int64
	ts := stubDaemon(t, &rows, &deletes)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 1, Card: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if rows.Load() == 0 {
		t.Error("no rows reached the stub daemon")
	}
	report := out.String()
	for _, want := range []string{"rows/s", "p50", "p99", "0 errors"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunLoadBatch(t *testing.T) {
	var rows atomic.Int64
	var deletes atomic.Int64
	ts := stubDaemon(t, &rows, &deletes)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 16, Card: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if got := rows.Load(); got == 0 || got%16 != 0 {
		t.Errorf("stub saw %d rows, want a positive multiple of 16", got)
	}
	if !strings.Contains(out.String(), "tuples:batch") {
		t.Errorf("report does not mention the batch endpoint:\n%s", out.String())
	}
}

func TestRunLoadErrors(t *testing.T) {
	// No daemon at all.
	var out bytes.Buffer
	if err := runLoad(&out, loadParams{URL: "http://127.0.0.1:1", Duration: time.Millisecond}); err == nil {
		t.Error("unreachable daemon accepted")
	}
	// Daemon that rejects every append must surface a failure.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"dimensions":["d"],"measures":[{"name":"m"}]}`))
	})
	mux.HandleFunc("POST /v1/tuples", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	out.Reset()
	err := runLoad(&out, loadParams{URL: ts.URL, Conns: 1, Duration: 50 * time.Millisecond})
	if err == nil {
		t.Error("all-failing daemon reported success")
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(lat, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
}

// TestRowGenZipf: zipf mode must skew exactly the shard dimension —
// value 0 far above its uniform share — and leave other dims uniform-ish.
func TestRowGenZipf(t *testing.T) {
	schema := loadSchema{
		Dimensions: []string{"player", "team"},
		Measures: []struct {
			Name string `json:"name"`
		}{{Name: "points"}},
		ShardDim: "team",
	}
	const card, n = 50, 5000
	gen := newRowGen(rand.New(rand.NewSource(7)), schema, loadParams{
		Card: card, Dist: "zipf", ZipfS: 1.5,
	})
	teamHot, playerHot := 0, 0
	for i := 0; i < n; i++ {
		r := gen()
		if r.Dims[1] == "team-0" {
			teamHot++
		}
		if r.Dims[0] == "player-0" {
			playerHot++
		}
	}
	uniformShare := n / card // 100
	if teamHot < 5*uniformShare {
		t.Errorf("zipf shard dim: team-0 drawn %d/%d times, want ≫ uniform share %d", teamHot, n, uniformShare)
	}
	if playerHot > 3*uniformShare {
		t.Errorf("non-shard dim skewed: player-0 drawn %d/%d times, want ≈ uniform share %d", playerHot, n, uniformShare)
	}
}

// TestRunLoadZipf drives the whole load path in zipf mode against the
// stub (whose schema carries no shard_dim — the generator falls back to
// skewing the first dimension) and checks parameter validation.
func TestRunLoadZipf(t *testing.T) {
	var rows atomic.Int64
	var deletes atomic.Int64
	ts := stubDaemon(t, &rows, &deletes)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 4, Card: 5,
		Dist: "zipf", ZipfS: 2, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad zipf: %v\n%s", err, out.String())
	}
	if rows.Load() == 0 {
		t.Error("no rows reached the stub daemon")
	}
	if !strings.Contains(out.String(), "zipf") {
		t.Errorf("report does not mention the distribution:\n%s", out.String())
	}

	if err := runLoad(&out, loadParams{URL: ts.URL, Dist: "zipf", ZipfS: 0.5}); err == nil {
		t.Error("zipf s ≤ 1 accepted")
	}
	if err := runLoad(&out, loadParams{URL: ts.URL, Dist: "pareto"}); err == nil {
		t.Error("unknown distribution accepted")
	}
}

// TestRunLoadDeleteMode drives the mixed append/delete workload: a
// third of the requests retract previously acked ids, in both single
// and batch mode, and the report accounts for them.
func TestRunLoadDeleteMode(t *testing.T) {
	for _, batch := range []int{1, 8} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			var rows, deletes atomic.Int64
			ts := stubDaemon(t, &rows, &deletes)
			var out bytes.Buffer
			err := runLoad(&out, loadParams{
				URL: ts.URL, Conns: 2, Duration: 200 * time.Millisecond,
				Batch: batch, Card: 5, DeleteFrac: 0.3, Seed: 1,
			})
			if err != nil {
				t.Fatalf("runLoad: %v\n%s", err, out.String())
			}
			if rows.Load() == 0 {
				t.Fatal("no rows reached the stub daemon")
			}
			if deletes.Load() == 0 {
				t.Error("delete-frac 0.3 issued no deletes")
			}
			if !strings.Contains(out.String(), fmt.Sprintf("deleted %d tuples", deletes.Load())) {
				t.Errorf("report does not account for %d deletes:\n%s", deletes.Load(), out.String())
			}
		})
	}
	// Validation: the fraction must leave room for appends.
	var out bytes.Buffer
	if err := runLoad(&out, loadParams{URL: "http://x", DeleteFrac: 1}); err == nil {
		t.Error("delete-frac 1 accepted")
	}
	if err := runLoad(&out, loadParams{URL: "http://x", DeleteFrac: -0.1}); err == nil {
		t.Error("negative delete-frac accepted")
	}
}

// TestRunLoadFixedWork pins -load-rows: a completed run appends exactly
// the budget, and a run cut short by the duration cap fails loudly —
// a silently truncated fixed-work run would be compared at the wrong
// relation depth.
func TestRunLoadFixedWork(t *testing.T) {
	var rows, deletes atomic.Int64
	ts := stubDaemon(t, &rows, &deletes)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 30 * time.Second, Batch: 4, Card: 5,
		Rows: 200, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad fixed-work: %v\n%s", err, out.String())
	}
	if got := rows.Load(); got != 200 {
		t.Errorf("stub saw %d rows, want exactly the 200-row budget", got)
	}

	// Unreachably large budget + tiny duration: must error, not report.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/schema" {
			w.Write([]byte(`{"dimensions":["d"],"measures":[{"name":"m"}]}`))
			return
		}
		time.Sleep(20 * time.Millisecond)
		w.Write([]byte(`{"id":"0:0","fact_count":0}`))
	}))
	defer slow.Close()
	err = runLoad(&out, loadParams{
		URL: slow.URL, Conns: 1, Duration: 100 * time.Millisecond, Batch: 1, Rows: 1 << 20, Seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("duration-capped fixed-work run returned %v, want a truncation error", err)
	}
}

// TestRunLoadJSON pins the machine-readable report: the JSON document
// must agree with the stub's own counts.
func TestRunLoadJSON(t *testing.T) {
	var rows, deletes atomic.Int64
	ts := stubDaemon(t, &rows, &deletes)
	path := filepath.Join(t.TempDir(), "load.json")
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 3, Duration: 150 * time.Millisecond,
		Batch: 4, Card: 5, DeleteFrac: 0.2, JSONPath: path, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, buf)
	}
	if rep.Schema != "situbench-load/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Conns != 3 || rep.Batch != 4 {
		t.Errorf("report carries conns=%d batch=%d, want 3/4", rep.Conns, rep.Batch)
	}
	if rep.Rows != rows.Load() {
		t.Errorf("report rows = %d, stub saw %d", rep.Rows, rows.Load())
	}
	if rep.Deletes != deletes.Load() {
		t.Errorf("report deletes = %d, stub saw %d", rep.Deletes, deletes.Load())
	}
	if rep.RowsPerSec <= 0 || rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Errorf("implausible rates/latencies: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("report errors = %d", rep.Errors)
	}
}
