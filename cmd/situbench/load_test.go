package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon mimics the situfactd surface the load generator touches.
func stubDaemon(t *testing.T, rows *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"dimensions":["team","player"],"measures":[{"name":"points"},{"name":"rebounds"}]}`))
	})
	mux.HandleFunc("POST /v1/tuples", func(w http.ResponseWriter, r *http.Request) {
		var row loadRow
		if err := json.NewDecoder(r.Body).Decode(&row); err != nil ||
			len(row.Dims) != 2 || len(row.Measures) != 2 {
			http.Error(w, "bad row", http.StatusBadRequest)
			return
		}
		rows.Add(1)
		w.Write([]byte(`{"id":"0:0","fact_count":0}`))
	})
	mux.HandleFunc("POST /v1/tuples:batch", func(w http.ResponseWriter, r *http.Request) {
		var body loadBatchBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Rows) == 0 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		rows.Add(int64(len(body.Rows)))
		w.Write([]byte(`{"arrivals":[]}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunLoadSingle(t *testing.T) {
	var rows atomic.Int64
	ts := stubDaemon(t, &rows)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 1, Card: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if rows.Load() == 0 {
		t.Error("no rows reached the stub daemon")
	}
	report := out.String()
	for _, want := range []string{"rows/s", "p50", "p99", "0 errors"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunLoadBatch(t *testing.T) {
	var rows atomic.Int64
	ts := stubDaemon(t, &rows)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 16, Card: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if got := rows.Load(); got == 0 || got%16 != 0 {
		t.Errorf("stub saw %d rows, want a positive multiple of 16", got)
	}
	if !strings.Contains(out.String(), "tuples:batch") {
		t.Errorf("report does not mention the batch endpoint:\n%s", out.String())
	}
}

func TestRunLoadErrors(t *testing.T) {
	// No daemon at all.
	var out bytes.Buffer
	if err := runLoad(&out, loadParams{URL: "http://127.0.0.1:1", Duration: time.Millisecond}); err == nil {
		t.Error("unreachable daemon accepted")
	}
	// Daemon that rejects every append must surface a failure.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"dimensions":["d"],"measures":[{"name":"m"}]}`))
	})
	mux.HandleFunc("POST /v1/tuples", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	out.Reset()
	err := runLoad(&out, loadParams{URL: ts.URL, Conns: 1, Duration: 50 * time.Millisecond})
	if err == nil {
		t.Error("all-failing daemon reported success")
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(lat, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
}

// TestRowGenZipf: zipf mode must skew exactly the shard dimension —
// value 0 far above its uniform share — and leave other dims uniform-ish.
func TestRowGenZipf(t *testing.T) {
	schema := loadSchema{
		Dimensions: []string{"player", "team"},
		Measures: []struct {
			Name string `json:"name"`
		}{{Name: "points"}},
		ShardDim: "team",
	}
	const card, n = 50, 5000
	gen := newRowGen(rand.New(rand.NewSource(7)), schema, loadParams{
		Card: card, Dist: "zipf", ZipfS: 1.5,
	})
	teamHot, playerHot := 0, 0
	for i := 0; i < n; i++ {
		r := gen()
		if r.Dims[1] == "team-0" {
			teamHot++
		}
		if r.Dims[0] == "player-0" {
			playerHot++
		}
	}
	uniformShare := n / card // 100
	if teamHot < 5*uniformShare {
		t.Errorf("zipf shard dim: team-0 drawn %d/%d times, want ≫ uniform share %d", teamHot, n, uniformShare)
	}
	if playerHot > 3*uniformShare {
		t.Errorf("non-shard dim skewed: player-0 drawn %d/%d times, want ≈ uniform share %d", playerHot, n, uniformShare)
	}
}

// TestRunLoadZipf drives the whole load path in zipf mode against the
// stub (whose schema carries no shard_dim — the generator falls back to
// skewing the first dimension) and checks parameter validation.
func TestRunLoadZipf(t *testing.T) {
	var rows atomic.Int64
	ts := stubDaemon(t, &rows)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 4, Card: 5,
		Dist: "zipf", ZipfS: 2, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad zipf: %v\n%s", err, out.String())
	}
	if rows.Load() == 0 {
		t.Error("no rows reached the stub daemon")
	}
	if !strings.Contains(out.String(), "zipf") {
		t.Errorf("report does not mention the distribution:\n%s", out.String())
	}

	if err := runLoad(&out, loadParams{URL: ts.URL, Dist: "zipf", ZipfS: 0.5}); err == nil {
		t.Error("zipf s ≤ 1 accepted")
	}
	if err := runLoad(&out, loadParams{URL: ts.URL, Dist: "pareto"}); err == nil {
		t.Error("unknown distribution accepted")
	}
}
