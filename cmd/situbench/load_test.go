package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon mimics the situfactd surface the load generator touches.
func stubDaemon(t *testing.T, rows *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"dimensions":["team","player"],"measures":[{"name":"points"},{"name":"rebounds"}]}`))
	})
	mux.HandleFunc("POST /v1/tuples", func(w http.ResponseWriter, r *http.Request) {
		var row loadRow
		if err := json.NewDecoder(r.Body).Decode(&row); err != nil ||
			len(row.Dims) != 2 || len(row.Measures) != 2 {
			http.Error(w, "bad row", http.StatusBadRequest)
			return
		}
		rows.Add(1)
		w.Write([]byte(`{"id":"0:0","fact_count":0}`))
	})
	mux.HandleFunc("POST /v1/tuples:batch", func(w http.ResponseWriter, r *http.Request) {
		var body loadBatchBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Rows) == 0 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		rows.Add(int64(len(body.Rows)))
		w.Write([]byte(`{"arrivals":[]}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunLoadSingle(t *testing.T) {
	var rows atomic.Int64
	ts := stubDaemon(t, &rows)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 1, Card: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if rows.Load() == 0 {
		t.Error("no rows reached the stub daemon")
	}
	report := out.String()
	for _, want := range []string{"rows/s", "p50", "p99", "0 errors"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunLoadBatch(t *testing.T) {
	var rows atomic.Int64
	ts := stubDaemon(t, &rows)
	var out bytes.Buffer
	err := runLoad(&out, loadParams{
		URL: ts.URL, Conns: 2, Duration: 150 * time.Millisecond, Batch: 16, Card: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if got := rows.Load(); got == 0 || got%16 != 0 {
		t.Errorf("stub saw %d rows, want a positive multiple of 16", got)
	}
	if !strings.Contains(out.String(), "tuples:batch") {
		t.Errorf("report does not mention the batch endpoint:\n%s", out.String())
	}
}

func TestRunLoadErrors(t *testing.T) {
	// No daemon at all.
	var out bytes.Buffer
	if err := runLoad(&out, loadParams{URL: "http://127.0.0.1:1", Duration: time.Millisecond}); err == nil {
		t.Error("unreachable daemon accepted")
	}
	// Daemon that rejects every append must surface a failure.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"dimensions":["d"],"measures":[{"name":"m"}]}`))
	})
	mux.HandleFunc("POST /v1/tuples", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	out.Reset()
	err := runLoad(&out, loadParams{URL: ts.URL, Conns: 1, Duration: 50 * time.Millisecond})
	if err == nil {
		t.Error("all-failing daemon reported success")
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(lat, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
}
