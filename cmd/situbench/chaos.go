package main

// Chaos mode: situbench -chaos <situfactd-binary> runs the end-to-end
// robustness acceptance drill. Each cycle launches a real journaled
// daemon over one shared state directory — optionally armed with a
// faultfs plan through the SITUFACTD_FAULT_PLAN environment hook — pushes
// concurrent ingest at it while the fault fires and (with a clear-after
// clause) heals again, and then kill -9s the process mid-flight. After
// the last cycle a clean daemon recovers from the accumulated state and
// the harness asserts the two invariants the whole robustness design
// hangs on:
//
//  1. Zero acked-row loss: every row a poster saw a 200 for is present
//     after recovery. Rows are verified by content (a unique per-row
//     dimension value), not by handle — an in-place repair can shed
//     applied-but-unacknowledged rows at the next crash, shifting
//     tuple-id handles, and the durability contract covers acknowledged
//     data, not handles.
//  2. Byte-identical convergence: a follower bootstrapped from the
//     recovered leader must serve the same /v1/facts cursor chain and
//     the same leaderboard, byte for byte.
//
// -chaos-json writes the drill's outcome as one JSON document (schema
// situbench-chaos/v1).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

type chaosParams struct {
	Binary     string        // situfactd binary to torture
	Cycles     int           // kill -9 cycles
	Rows       int64         // acked-row target per cycle (a cycle may kill earlier)
	Conns      int           // concurrent posters per cycle
	FaultPlans []string      // per-cycle faultfs plans, round-robin ("" = none)
	CycleCap   time.Duration // hard per-cycle time cap before the kill
	JSONPath   string
}

// chaosCycle is one cycle's outcome in the JSON report.
type chaosCycle struct {
	Cycle     int    `json:"cycle"`
	FaultPlan string `json:"fault_plan,omitempty"`
	Acked     int    `json:"acked"`
	Rejected  int    `json:"rejected"` // 503s observed (degraded mode doing its job)
	Repairs   uint64 `json:"repairs"`  // WAL repairs the daemon logged before the kill
}

// chaosReport is the -chaos-json document.
type chaosReport struct {
	Schema      string       `json:"schema"` // "situbench-chaos/v1"
	Binary      string       `json:"binary"`
	Cycles      []chaosCycle `json:"cycles"`
	TotalAcked  int          `json:"total_acked"`
	Recovered   int          `json:"recovered_rows"`
	LostRows    int          `json:"lost_rows"`
	FollowPages int          `json:"follower_pages_compared"`
	Converged   bool         `json:"converged"`
}

const (
	chaosDims     = "player,team,opp"
	chaosMeasures = "points,rebounds"
	chaosShards   = 3
)

// chaosDaemon launches the binary over stateDir, with an optional fault
// plan in the environment, and waits for /healthz. A non-empty leader
// starts a read-only follower instead (stateDir is bootstrap scratch; a
// follower journals nothing of its own).
func chaosDaemon(binary, stateDir, plan, leader string) (*exec.Cmd, string, chan struct{}, *bytes.Buffer, error) {
	port, err := freePort()
	if err != nil {
		return nil, "", nil, nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := []string{
		"-addr", addr,
		"-dims", chaosDims,
		"-measures", chaosMeasures,
		"-shards", strconv.Itoa(chaosShards),
		"-shard-dim", "team",
		"-state-dir", stateDir,
	}
	if leader != "" {
		args = append(args, "-follow", leader, "-follow-poll", "100ms")
	} else {
		args = append(args, "-wal", "-wal-segment-bytes", "8192", "-snapshot-interval", "150ms")
	}
	cmd := exec.Command(binary, args...)
	cmd.Env = os.Environ()
	if plan != "" {
		cmd.Env = append(cmd.Env, "SITUFACTD_FAULT_PLAN="+plan)
	}
	var logBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
	if err := cmd.Start(); err != nil {
		return nil, "", nil, nil, fmt.Errorf("start %s: %w", binary, err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }()
	base := "http://" + addr
	if err := waitHealthy(base, 15*time.Second, exited); err != nil {
		stopDaemon(cmd, exited)
		return nil, "", nil, nil, fmt.Errorf("%w; daemon log:\n%s", err, tail(logBuf.String(), 2048))
	}
	return cmd, base, exited, &logBuf, nil
}

// runChaos executes the drill.
func runChaos(w io.Writer, p chaosParams) error {
	if p.Cycles <= 0 {
		p.Cycles = 3
	}
	if p.Rows <= 0 {
		p.Rows = 400
	}
	if p.Conns <= 0 {
		p.Conns = 4
	}
	if p.CycleCap <= 0 {
		p.CycleCap = 20 * time.Second
	}
	if _, err := exec.LookPath(p.Binary); err != nil {
		return fmt.Errorf("chaos: situfactd binary %q: %w", p.Binary, err)
	}
	stateDir, err := os.MkdirTemp("", "situbench-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	rep := chaosReport{Schema: "situbench-chaos/v1", Binary: p.Binary}
	var ackedRows []string // unique player values, one per acked row
	var mu sync.Mutex

	for cycle := 0; cycle < p.Cycles; cycle++ {
		plan := ""
		if len(p.FaultPlans) > 0 {
			plan = p.FaultPlans[cycle%len(p.FaultPlans)]
		}
		cmd, base, exited, logBuf, err := chaosDaemon(p.Binary, stateDir, plan, "")
		if err != nil {
			return fmt.Errorf("chaos cycle %d: %w", cycle, err)
		}
		cyc := chaosCycle{Cycle: cycle, FaultPlan: plan}

		var cycleAcked, rejected int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		client := &http.Client{Timeout: 5 * time.Second}
		for conn := 0; conn < p.Conns; conn++ {
			wg.Add(1)
			go func(conn int) {
				defer wg.Done()
				for seq := 0; ; seq++ {
					select {
					case <-stop:
						return
					default:
					}
					player := fmt.Sprintf("p-%d-%d-%d", cycle, conn, seq)
					body, _ := json.Marshal(map[string]any{
						"dims":     []string{player, fmt.Sprintf("team-%d", seq%7), fmt.Sprintf("opp-%d", seq%5)},
						"measures": []float64{float64(seq % 37), float64(seq % 11)},
					})
					resp, err := client.Post(base+"/v1/tuples", "application/json", bytes.NewReader(body))
					if err != nil {
						return // the kill severed us
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						mu.Lock()
						ackedRows = append(ackedRows, player)
						cycleAcked++
						mu.Unlock()
					case http.StatusServiceUnavailable:
						// Degraded mode: honor Retry-After in spirit and
						// retry the stream after a beat. The row was NOT
						// acked, so it is not recorded.
						mu.Lock()
						rejected++
						mu.Unlock()
						time.Sleep(25 * time.Millisecond)
					default:
						return
					}
				}
			}(conn)
		}

		// Let the cycle run until the acked quota or the cap, then kill -9
		// mid-flight — no drain, no shutdown snapshot.
		deadline := time.Now().Add(p.CycleCap)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := cycleAcked
			mu.Unlock()
			if n >= p.Rows {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		cmd.Process.Kill()
		<-exited
		close(stop)
		wg.Wait()

		mu.Lock()
		cyc.Acked = int(cycleAcked)
		cyc.Rejected = int(rejected)
		mu.Unlock()
		cyc.Repairs = uint64(strings.Count(logBuf.String(), "wal repaired"))
		rep.Cycles = append(rep.Cycles, cyc)
		fmt.Fprintf(w, "chaos cycle %d: plan=%q acked=%d rejected=%d repairs=%d (killed -9)\n",
			cycle, plan, cyc.Acked, cyc.Rejected, cyc.Repairs)
	}
	rep.TotalAcked = len(ackedRows)

	// Clean recovery: a fault-free daemon over the battered state dir.
	cmd, base, exited, logBuf, err := chaosDaemon(p.Binary, stateDir, "", "")
	if err != nil {
		return fmt.Errorf("chaos: final recovery: %w", err)
	}
	defer stopDaemon(cmd, exited)

	have, err := chaosTuples(base)
	if err != nil {
		return fmt.Errorf("chaos: enumerating recovered tuples: %w; daemon log:\n%s", err, tail(logBuf.String(), 2048))
	}
	rep.Recovered = len(have)
	for _, player := range ackedRows {
		if !have[player] {
			rep.LostRows++
		}
	}
	fmt.Fprintf(w, "chaos recovery: %d rows recovered, %d acked, %d LOST\n",
		rep.Recovered, rep.TotalAcked, rep.LostRows)

	// Convergence: a follower bootstrapped from the recovered leader must
	// read back byte-identically.
	scratch, err := os.MkdirTemp("", "situbench-chaos-follow-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	fcmd, fbase, fexited, flog, err := chaosDaemon(p.Binary, scratch, "", base)
	if err != nil {
		return fmt.Errorf("chaos: follower bootstrap: %w", err)
	}
	defer stopDaemon(fcmd, fexited)
	if err := chaosWaitCaughtUp(fbase, 30*time.Second); err != nil {
		return fmt.Errorf("chaos: %w; follower log:\n%s", err, tail(flog.String(), 2048))
	}
	pages, err := chaosCompareReads(base, fbase)
	rep.FollowPages = pages
	rep.Converged = err == nil
	if err == nil {
		fmt.Fprintf(w, "chaos convergence: follower matched %d /v1/facts pages + leaderboard byte-for-byte\n", pages)
	}

	if p.JSONPath != "" {
		buf, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			return jerr
		}
		if werr := os.WriteFile(p.JSONPath, append(buf, '\n'), 0o644); werr != nil {
			return werr
		}
	}
	if rep.LostRows > 0 {
		return fmt.Errorf("chaos: %d acked rows LOST after recovery", rep.LostRows)
	}
	if err != nil {
		return fmt.Errorf("chaos: follower diverged: %w", err)
	}
	return nil
}

// chaosTuples enumerates every live tuple of the daemon by point reads
// (ids are dense per shard) and returns the set of player values.
func chaosTuples(base string) (map[string]bool, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	have := make(map[string]bool)
	for shard := 0; shard < chaosShards; shard++ {
		for id := int64(0); ; id++ {
			resp, err := client.Get(fmt.Sprintf("%s/v1/tuples/%d:%d", base, shard, id))
			if err != nil {
				return nil, err
			}
			if resp.StatusCode == http.StatusNotFound {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				break
			}
			var tup struct {
				Dims    []string `json:"dims"`
				Deleted bool     `json:"deleted"`
			}
			err = json.NewDecoder(resp.Body).Decode(&tup)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if !tup.Deleted && len(tup.Dims) > 0 {
				have[tup.Dims[0]] = true
			}
		}
	}
	return have, nil
}

// chaosWaitCaughtUp polls the follower's metrics until replication lag is
// zero with no fatal error.
func chaosWaitCaughtUp(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/metrics")
		if err == nil {
			var m struct {
				Replication *struct {
					AppliedLSN uint64 `json:"applied_lsn"`
					LagRecords uint64 `json:"lag_records"`
					Fatal      string `json:"fatal"`
				} `json:"replication"`
			}
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err == nil && m.Replication != nil {
				if m.Replication.Fatal != "" {
					return fmt.Errorf("follower went fatal: %s", m.Replication.Fatal)
				}
				if m.Replication.LagRecords == 0 && m.Replication.AppliedLSN > 0 {
					return nil
				}
				last = fmt.Sprintf("applied=%d lag=%d", m.Replication.AppliedLSN, m.Replication.LagRecords)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("follower never caught up (%s)", last)
}

// chaosCompareReads walks the full /v1/facts cursor chain on both
// daemons, requiring byte-identical pages, then compares the
// leaderboards. Returns the number of pages compared.
func chaosCompareReads(leader, follower string) (int, error) {
	get := func(url string) ([]byte, error) {
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, tail(string(body), 256))
		}
		return body, nil
	}
	pages := 0
	cursor := ""
	for {
		url := "/v1/facts?limit=64"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		lb, err := get(leader + url)
		if err != nil {
			return pages, err
		}
		fb, err := get(follower + url)
		if err != nil {
			return pages, err
		}
		if !bytes.Equal(lb, fb) {
			return pages, fmt.Errorf("page %d (cursor %q) differs between leader and follower", pages, cursor)
		}
		pages++
		var page struct {
			NextCursor string `json:"next_cursor"`
		}
		if err := json.Unmarshal(lb, &page); err != nil {
			return pages, err
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > 100000 {
			return pages, fmt.Errorf("runaway pagination")
		}
	}
	lt, err := get(leader + "/v1/facts/top?k=64")
	if err != nil {
		return pages, err
	}
	ft, err := get(follower + "/v1/facts/top?k=64")
	if err != nil {
		return pages, err
	}
	if !bytes.Equal(lt, ft) {
		return pages, fmt.Errorf("leaderboards differ between leader and follower")
	}
	return pages, nil
}
