package main

// Page-walk mode: situbench -serve-url ... -load-page-walk drains the
// full GET /v1/facts cursor chain end to end and reports per-page latency
// as a function of page depth. This is the probe for the read path's
// complexity class: the scan path re-walks every fact before the cursor
// on each request (page N costs O(N·page)), the incremental fact index
// seeks to the cursor and walks one page (O(log n + page)), so the shape
// of latency-vs-depth — flat or linear — is the whole story. The daemon's
// /v1/metrics index block labels which path produced the numbers.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

// pageWalkParams configures one page-walk measurement.
type pageWalkParams struct {
	URL      string // daemon base URL writes/metrics go to
	ReadURL  string // base URL pages come from ("" = URL; set = a follower)
	Limit    int    // page size (limit=)
	Walks    int    // full cursor-chain walks; latencies pool across walks
	JSONPath string // when non-empty, write the report as JSON here
}

// pageDepthBucket aggregates the latency of pages within one depth range.
type pageDepthBucket struct {
	// FirstDepth..LastDepth is the 0-based page-depth range (inclusive).
	FirstDepth int `json:"first_depth"`
	LastDepth  int `json:"last_depth"`
	Pages      int `json:"pages"`
	// Quantiles are over every page in the range, pooled across walks.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// pageWalkReport is the machine-readable form of one page-walk run
// (-load-json), schema situbench-pagewalk/v1.
type pageWalkReport struct {
	Schema   string `json:"schema"` // "situbench-pagewalk/v1"
	Endpoint string `json:"endpoint"`
	Limit    int    `json:"limit"`
	Walks    int    `json:"walks"`
	// IndexServing is the read target's /v1/metrics index.serving: true =
	// pages came from the incremental fact index, false = reference scan.
	IndexServing bool `json:"index_serving"`
	// Shards mirrors the daemon's /v1/schema; Facts/PagesPerWalk describe
	// one chain (every walk sees the same fact set — the walk is read-only).
	Shards       int `json:"shards"`
	Facts        int `json:"facts"`
	PagesPerWalk int `json:"pages_per_walk"`
	// FirstPageP50Ms and LastPageP50Ms are the ends of the depth curve;
	// their ratio is the headline O(n·pages)-vs-O(page) number.
	FirstPageP50Ms float64 `json:"first_page_p50_ms"`
	LastPageP50Ms  float64 `json:"last_page_p50_ms"`
	// Buckets is the full latency-by-depth curve, ~10 equal depth ranges.
	Buckets         []pageDepthBucket `json:"buckets"`
	DurationSeconds float64           `json:"duration_seconds"`
}

// runPageWalk executes the measurement and writes the human summary to w
// plus, with JSONPath set, the machine report.
func runPageWalk(w io.Writer, p pageWalkParams) error {
	if p.Limit <= 0 {
		p.Limit = 50
	}
	if p.Walks <= 0 {
		p.Walks = 10
	}
	base := strings.TrimRight(p.URL, "/")
	readBase := base
	if p.ReadURL != "" {
		readBase = strings.TrimRight(p.ReadURL, "/")
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	var schema loadSchema
	if err := getJSON(client, base+"/v1/schema", &schema); err != nil {
		return fmt.Errorf("fetch schema: %w", err)
	}
	var metrics struct {
		Index struct {
			Serving bool `json:"serving"`
		} `json:"index"`
	}
	if err := getJSON(client, readBase+"/v1/metrics", &metrics); err != nil {
		return fmt.Errorf("fetch metrics: %w", err)
	}

	// One chain's latencies per depth, pooled across walks. Every walk is
	// read-only against the same fact set, so all walks see the same
	// number of pages; the first walk fixes the chain length.
	var byDepth [][]time.Duration
	facts, pages := 0, 0
	start := time.Now()
	for walk := 0; walk < p.Walks; walk++ {
		cursor := ""
		depth := 0
		for {
			u := fmt.Sprintf("%s/v1/facts?limit=%d", readBase, p.Limit)
			if cursor != "" {
				u += "&cursor=" + url.QueryEscape(cursor)
			}
			t0 := time.Now()
			var page struct {
				Facts      []json.RawMessage `json:"facts"`
				NextCursor string            `json:"next_cursor"`
			}
			if err := getJSON(client, u, &page); err != nil {
				return fmt.Errorf("walk %d page %d: %w", walk, depth, err)
			}
			lat := time.Since(t0)
			if depth >= len(byDepth) {
				byDepth = append(byDepth, nil)
			}
			byDepth[depth] = append(byDepth[depth], lat)
			if walk == 0 {
				facts += len(page.Facts)
				pages++
			}
			depth++
			if page.NextCursor == "" {
				break
			}
			cursor = page.NextCursor
			if depth > 1_000_000 {
				return fmt.Errorf("runaway pagination at depth %d", depth)
			}
		}
	}
	elapsed := time.Since(start)
	if pages == 0 {
		return fmt.Errorf("the daemon served no facts to walk — ingest first (e.g. a -load-rows run)")
	}

	rep := pageWalkReport{
		Schema:          "situbench-pagewalk/v1",
		Endpoint:        readBase + "/v1/facts",
		Limit:           p.Limit,
		Walks:           p.Walks,
		IndexServing:    metrics.Index.Serving,
		Shards:          schema.Shards,
		Facts:           facts,
		PagesPerWalk:    pages,
		FirstPageP50Ms:  depthP50Ms(byDepth[0]),
		LastPageP50Ms:   depthP50Ms(byDepth[len(byDepth)-1]),
		DurationSeconds: elapsed.Seconds(),
	}
	// ~10 equal depth ranges cover the curve without drowning the report.
	nb := min(10, pages)
	for b := 0; b < nb; b++ {
		lo, hi := b*pages/nb, (b+1)*pages/nb-1
		var pool []time.Duration
		for d := lo; d <= hi; d++ {
			pool = append(pool, byDepth[d]...)
		}
		sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
		rep.Buckets = append(rep.Buckets, pageDepthBucket{
			FirstDepth: lo,
			LastDepth:  hi,
			Pages:      hi - lo + 1,
			P50Ms:      float64(percentile(pool, 0.50)) / float64(time.Millisecond),
			P99Ms:      float64(percentile(pool, 0.99)) / float64(time.Millisecond),
		})
	}

	path := "index"
	if !rep.IndexServing {
		path = "scan"
	}
	fmt.Fprintf(w, "page walk: %s limit=%d walks=%d path=%s — %d facts over %d pages\n",
		rep.Endpoint, p.Limit, p.Walks, path, facts, pages)
	for _, b := range rep.Buckets {
		fmt.Fprintf(w, "  pages %4d..%-4d  p50 %8.3fms  p99 %8.3fms\n", b.FirstDepth, b.LastDepth, b.P50Ms, b.P99Ms)
	}
	fmt.Fprintf(w, "first page p50 %.3fms, deepest page p50 %.3fms (%.1fx)\n",
		rep.FirstPageP50Ms, rep.LastPageP50Ms, rep.LastPageP50Ms/rep.FirstPageP50Ms)

	if p.JSONPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// depthP50Ms is the p50 of one depth's pooled latencies, in ms.
func depthP50Ms(lats []time.Duration) float64 {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(percentile(sorted, 0.50)) / float64(time.Millisecond)
}

// getJSON GETs a URL and decodes its JSON body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s returned %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
