package main

// HTTP load generator against a running situfactd: situbench -serve-url
// drives the daemon's ingest path end-to-end (JSON decode, pool routing,
// discovery, JSON encode) and reports throughput and tail latency, turning
// the ROADMAP's "fast as the hardware allows" claim into a number.
//
// The generator discovers the daemon's schema via GET /v1/schema, then has
// -load-conns workers each POST random rows (dimension values drawn from a
// -load-card-sized domain per attribute, uniform measures) until
// -load-duration elapses. -load-batch > 1 switches to /v1/tuples:batch
// with that many rows per request.
//
// -load-dist zipf skews the daemon's shard dimension zipfianly (tunable
// exponent -load-zipf-s > 1): a few hot partition values dominate, so a
// handful of shards absorb most of the stream and the reported tail
// latency reflects hot-shard contention instead of an idealised uniform
// spread. Other dimensions stay uniform.
//
// -load-delete-frac f mixes retractions in: each worker remembers the
// ids the daemon acknowledged to it and issues DELETE /v1/tuples/{id}
// for a random remembered id with probability f per request — the
// ROADMAP's mixed append/delete workload, with deletes riding the same
// per-shard ordering as the appends they follow.
//
// -load-rows n switches to fixed-work mode: the run ends after n
// appended rows instead of after -load-duration (which then only caps a
// hung run). Per-row discovery cost grows with the relation, so two
// configurations are only comparable at equal row counts — duration
// mode under-reports the faster side, which spends more of its run on a
// deeper relation.
//
// -load-read-frac f mixes reads in: each worker issues a query —
// alternating GET /v1/facts/top and a GET /v1/facts page, against
// -load-read-url when set (a follower), the write target otherwise —
// with probability f per request. Reads never consume the -load-rows
// budget, so a mixed fixed-work run still appends exactly the asked-for
// rows; the report adds read throughput and the read target's cache
// hit/miss deltas.
//
// -load-json <path> additionally writes the run's report as one JSON
// document (schema situbench-load/v1), the format BENCH_PR5.json's
// before/after load-test comparison is assembled from.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// loadParams configures one load run.
type loadParams struct {
	URL        string        // daemon base URL (e.g. http://localhost:8080)
	Conns      int           // concurrent connections
	Duration   time.Duration // wall-clock run length
	Batch      int           // rows per request; 1 = POST /v1/tuples
	Card       int           // distinct values per dimension attribute
	Dist       string        // shard-dim value distribution: "uniform" (default) | "zipf"
	ZipfS      float64       // zipf exponent s > 1; 0 = 1.2
	DeleteFrac float64       // fraction of requests that retract an acked id; 0 = append-only
	ReadFrac   float64       // fraction of requests that query facts; 0 = write-only
	ReadURL    string        // base URL reads go to ("" = URL — same daemon)
	Rows       int64         // stop after this many appended rows (0 = run for Duration)
	JSONPath   string        // when non-empty, also write the report as JSON here
	Seed       int64         // workload seed
}

// loadSchema is the subset of the daemon's GET /v1/schema response the
// generator needs.
type loadSchema struct {
	Dimensions []string `json:"dimensions"`
	Measures   []struct {
		Name string `json:"name"`
	} `json:"measures"`
	ShardDim string `json:"shard_dim"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"`
}

// loadIngestScrape is the sliver of GET /v1/metrics the report needs: the
// ingest queues' current capacity and resize count, sampled before and
// after the run so the report carries the run's own deltas.
type loadIngestScrape struct {
	Ingest struct {
		QueueCap int    `json:"queue_cap"`
		Resizes  uint64 `json:"resizes"`
	} `json:"ingest"`
	ReadCache struct {
		Enabled bool   `json:"enabled"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"read_cache"`
}

// scrapeIngest samples the daemon's ingest metrics; ok is false when the
// endpoint is unreachable or predates the fields (the report then omits
// them).
func scrapeIngest(client *http.Client, base string) (loadIngestScrape, bool) {
	var s loadIngestScrape
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return s, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return s, false
	}
	return s, json.NewDecoder(resp.Body).Decode(&s) == nil
}

// loadRow mirrors the daemon's row wire type.
type loadRow struct {
	Dims     []string  `json:"dims"`
	Measures []float64 `json:"measures"`
}

type loadBatchBody struct {
	Rows []loadRow `json:"rows"`
}

// workerResult accumulates one worker's observations.
type workerResult struct {
	rows      int64
	deletes   int64
	reads     int64
	requests  int64
	errors    int64
	latencies []time.Duration // per successful request
	readLats  []time.Duration // per successful read
}

// loadArrival / loadBatchArrivals are the slivers of the daemon's append
// responses the generator needs in delete mode: the acked ids.
type loadArrival struct {
	ID string `json:"id"`
}

type loadBatchArrivals struct {
	Arrivals []*loadArrival `json:"arrivals"`
}

// ackRing remembers recently acknowledged tuple ids, capped; take removes
// a random id so each is deleted at most once.
type ackRing struct {
	ids []string
	rng *rand.Rand
}

const ackRingCap = 4096

func (a *ackRing) add(id string) {
	if id == "" {
		return
	}
	if len(a.ids) < ackRingCap {
		a.ids = append(a.ids, id)
		return
	}
	a.ids[a.rng.Intn(len(a.ids))] = id
}

func (a *ackRing) take() (string, bool) {
	if len(a.ids) == 0 {
		return "", false
	}
	i := a.rng.Intn(len(a.ids))
	id := a.ids[i]
	a.ids[i] = a.ids[len(a.ids)-1]
	a.ids = a.ids[:len(a.ids)-1]
	return id, true
}

// loadReport is the machine-readable form of one load run (-load-json),
// the unit BENCH_PR*.json end-to-end comparisons are assembled from.
type loadReport struct {
	Schema   string `json:"schema"` // "situbench-load/v1"
	Endpoint string `json:"endpoint"`
	Conns    int    `json:"conns"`
	Batch    int    `json:"batch"`
	Card     int    `json:"card"`
	// GoMaxProcs is the generator host's GOMAXPROCS — on the usual
	// same-host setup, the cores the daemon and generator shared. A
	// report without it predates the multicore matrix.
	GoMaxProcs int `json:"gomaxprocs"`
	// ReadFrac / ReadURL describe a mixed read workload (-load-read-frac):
	// the fraction of requests that queried facts, and where the reads
	// went when it was not the write target (a follower).
	ReadFrac float64 `json:"read_frac,omitempty"`
	ReadURL  string  `json:"read_url,omitempty"`
	// Shards and Workers describe the daemon (GET /v1/schema): pool
	// shard count and discovery goroutines per shard engine.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// QueueCap is the ingest queues' summed capacity at run end;
	// QueueResizes the adaptive grow/shrink count during the run
	// (/v1/metrics ingest deltas; both 0 on a fixed-depth daemon).
	QueueCap        int     `json:"queue_cap,omitempty"`
	QueueResizes    uint64  `json:"queue_resizes,omitempty"`
	Dist            string  `json:"dist"`
	ZipfS           float64 `json:"zipf_s,omitempty"`
	DeleteFrac      float64 `json:"delete_frac,omitempty"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	Rows            int64   `json:"rows"`
	Deletes         int64   `json:"deletes,omitempty"`
	Reads           int64   `json:"reads,omitempty"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	RowsPerSec      float64 `json:"rows_per_sec"`
	ReqPerSec       float64 `json:"req_per_sec"`
	ReadsPerSec     float64 `json:"reads_per_sec,omitempty"`
	// ReadP50Ms/ReadP99Ms are the read requests' own latency quantiles;
	// CacheHits/CacheMisses the read target's read_cache deltas over the
	// run (absent when the target runs without -read-cache-ttl).
	ReadP50Ms   float64 `json:"read_p50_ms,omitempty"`
	ReadP99Ms   float64 `json:"read_p99_ms,omitempty"`
	CacheHits   uint64  `json:"cache_hits,omitempty"`
	CacheMisses uint64  `json:"cache_misses,omitempty"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// runLoad executes the load run, writes the human summary to w and, with
// JSONPath set, the machine report alongside. A run that saw request
// errors or fixed-work truncation still writes its reports before the
// error returns.
func runLoad(w io.Writer, p loadParams) error {
	rep, runErr := executeLoad(w, p)
	if rep != nil && p.JSONPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return runErr
}

// executeLoad runs one load measurement and returns its report — nil only
// when setup fails before any load ran. The matrix runner (matrix.go)
// calls it per grid point; runLoad adds the -load-json file around it.
func executeLoad(w io.Writer, p loadParams) (*loadReport, error) {
	if p.Conns <= 0 {
		p.Conns = 8
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Batch <= 0 {
		p.Batch = 1
	}
	if p.Card <= 0 {
		p.Card = 50
	}
	if p.Dist == "" {
		p.Dist = "uniform"
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	switch p.Dist {
	case "uniform", "zipf":
	default:
		return nil, fmt.Errorf("unknown -load-dist %q (want uniform or zipf)", p.Dist)
	}
	if p.Dist == "zipf" && p.ZipfS <= 1 {
		return nil, fmt.Errorf("-load-zipf-s must be > 1, got %g", p.ZipfS)
	}
	if p.DeleteFrac < 0 || p.DeleteFrac >= 1 {
		return nil, fmt.Errorf("-load-delete-frac must be in [0, 1), got %g", p.DeleteFrac)
	}
	if p.ReadFrac < 0 || p.ReadFrac >= 1 {
		return nil, fmt.Errorf("-load-read-frac must be in [0, 1), got %g", p.ReadFrac)
	}
	base := strings.TrimRight(p.URL, "/")
	readBase := base
	if p.ReadURL != "" {
		readBase = strings.TrimRight(p.ReadURL, "/")
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        p.Conns,
			MaxIdleConnsPerHost: p.Conns,
		},
		Timeout: 30 * time.Second,
	}

	resp, err := client.Get(base + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("fetch schema: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("fetch schema: %s returned %s: %s",
			base+"/v1/schema", resp.Status, strings.TrimSpace(string(body)))
	}
	var schema loadSchema
	err = json.NewDecoder(resp.Body).Decode(&schema)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("decode schema: %w", err)
	}
	if len(schema.Dimensions) == 0 || len(schema.Measures) == 0 {
		return nil, fmt.Errorf("daemon reported an empty schema")
	}
	before, scraped := scrapeIngest(client, base)
	// Cache counters live on the read target, which may be a follower.
	readBefore, readScraped := before, scraped
	if readBase != base {
		readBefore, readScraped = scrapeIngest(client, readBase)
	}

	endpoint := base + "/v1/tuples"
	if p.Batch > 1 {
		endpoint = base + "/v1/tuples:batch"
	}
	results := make([]workerResult, p.Conns)
	deadline := time.Now().Add(p.Duration)
	// In fixed-work mode (-load-rows) workers race this shared budget
	// instead of the clock: comparing two configurations at equal row
	// counts keeps the relation's end state — and so the per-row engine
	// cost, which grows with it — identical on both sides.
	var rowBudget atomic.Int64
	rowBudget.Store(p.Rows)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(i)))
			gen := newRowGen(rng, schema, p)
			acked := &ackRing{rng: rng}
			res := &results[i]
			for time.Now().Before(deadline) {
				if p.ReadFrac > 0 && rng.Float64() < p.ReadFrac {
					// Alternate the two hot read endpoints; reads never touch
					// the fixed-work row budget.
					url := readBase + "/v1/facts/top?k=10"
					if res.reads%2 == 1 {
						url = readBase + "/v1/facts?limit=50"
					}
					t0 := time.Now()
					res.requests++
					if !getOK(client, url) {
						res.errors++
						continue
					}
					lat := time.Since(t0)
					res.latencies = append(res.latencies, lat)
					res.readLats = append(res.readLats, lat)
					res.reads++
					continue
				}
				if p.DeleteFrac > 0 && rng.Float64() < p.DeleteFrac {
					if id, ok := acked.take(); ok {
						t0 := time.Now()
						res.requests++
						if !deleteTuple(client, base, id) {
							res.errors++
							continue
						}
						res.latencies = append(res.latencies, time.Since(t0))
						res.deletes++
						continue
					}
					// Nothing acked yet to delete; fall through to an append.
				}
				if p.Rows > 0 && rowBudget.Add(int64(-p.Batch)) < 0 {
					break
				}
				body, rows := buildBody(gen, p.Batch)
				t0 := time.Now()
				ids, ok := post(client, endpoint, body, p.DeleteFrac > 0)
				res.requests++
				if !ok {
					res.errors++
					continue
				}
				res.latencies = append(res.latencies, time.Since(t0))
				res.rows += int64(rows)
				for _, id := range ids {
					acked.add(id)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for _, r := range results {
		total.rows += r.rows
		total.deletes += r.deletes
		total.reads += r.reads
		total.requests += r.requests
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
		total.readLats = append(total.readLats, r.readLats...)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	sort.Slice(total.readLats, func(i, j int) bool { return total.readLats[i] < total.readLats[j] })

	rep := loadReport{
		Schema:          "situbench-load/v1",
		Endpoint:        endpoint,
		Conns:           p.Conns,
		Batch:           p.Batch,
		Card:            p.Card,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Shards:          schema.Shards,
		Workers:         schema.Workers,
		Dist:            p.Dist,
		DeleteFrac:      p.DeleteFrac,
		Seed:            p.Seed,
		DurationSeconds: elapsed.Seconds(),
		Rows:            total.rows,
		Deletes:         total.deletes,
		Requests:        total.requests,
		Errors:          total.errors,
		RowsPerSec:      float64(total.rows) / elapsed.Seconds(),
		ReqPerSec:       float64(total.requests) / elapsed.Seconds(),
	}
	if p.Dist == "zipf" {
		rep.ZipfS = p.ZipfS
	}
	if p.ReadFrac > 0 {
		rep.ReadFrac = p.ReadFrac
		rep.Reads = total.reads
		rep.ReadsPerSec = float64(total.reads) / elapsed.Seconds()
		if readBase != base {
			rep.ReadURL = readBase
		}
		if n := len(total.readLats); n > 0 {
			rep.ReadP50Ms = float64(percentile(total.readLats, 0.50)) / float64(time.Millisecond)
			rep.ReadP99Ms = float64(percentile(total.readLats, 0.99)) / float64(time.Millisecond)
		}
	}
	if after, ok := scrapeIngest(client, base); ok && scraped {
		rep.QueueCap = after.Ingest.QueueCap
		rep.QueueResizes = after.Ingest.Resizes - before.Ingest.Resizes
	}
	if after, ok := scrapeIngest(client, readBase); ok && readScraped && after.ReadCache.Enabled {
		rep.CacheHits = after.ReadCache.Hits - readBefore.ReadCache.Hits
		rep.CacheMisses = after.ReadCache.Misses - readBefore.ReadCache.Misses
	}
	if n := len(total.latencies); n > 0 {
		rep.P50Ms = float64(percentile(total.latencies, 0.50)) / float64(time.Millisecond)
		rep.P90Ms = float64(percentile(total.latencies, 0.90)) / float64(time.Millisecond)
		rep.P99Ms = float64(percentile(total.latencies, 0.99)) / float64(time.Millisecond)
		rep.MaxMs = float64(total.latencies[n-1]) / float64(time.Millisecond)
	}

	dist := p.Dist
	if dist == "zipf" {
		dist = fmt.Sprintf("zipf(s=%g, shard-dim %q)", p.ZipfS, schema.ShardDim)
	}
	fmt.Fprintf(w, "load: %s batch=%d conns=%d dist=%s delete-frac=%g duration=%s\n",
		endpoint, p.Batch, p.Conns, dist, p.DeleteFrac, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "ingested %d rows, deleted %d tuples in %d requests (%d errors) — %.1f rows/s, %.1f req/s\n",
		total.rows, total.deletes, total.requests, total.errors, rep.RowsPerSec, rep.ReqPerSec)
	if p.ReadFrac > 0 {
		hitRate := "no cache"
		if denom := rep.CacheHits + rep.CacheMisses; denom > 0 {
			hitRate = fmt.Sprintf("%.1f%% cache hits", 100*float64(rep.CacheHits)/float64(denom))
		}
		fmt.Fprintf(w, "reads: %d against %s — %.1f reads/s, p50 %.3fms p99 %.3fms (%s)\n",
			total.reads, readBase, rep.ReadsPerSec, rep.ReadP50Ms, rep.ReadP99Ms, hitRate)
	}
	if len(total.latencies) > 0 {
		fmt.Fprintf(w, "request latency: p50 %s  p90 %s  p99 %s  max %s\n",
			percentile(total.latencies, 0.50).Round(time.Microsecond),
			percentile(total.latencies, 0.90).Round(time.Microsecond),
			percentile(total.latencies, 0.99).Round(time.Microsecond),
			total.latencies[len(total.latencies)-1].Round(time.Microsecond))
	}
	if total.errors > 0 {
		return &rep, fmt.Errorf("%d of %d requests failed", total.errors, total.requests)
	}
	// A fixed-work run that hit the duration cap is not the run that was
	// asked for: the whole point of -load-rows is comparing configurations
	// at equal relation depth, and a silently truncated (slower) side
	// would be measured against a shallower, cheaper relation. Unclaimed
	// budget means at least one worker exited on the deadline.
	if p.Rows > 0 && rowBudget.Load() > 0 {
		return &rep, fmt.Errorf("fixed-work run truncated: %d of %d rows before the %s -load-duration cap; raise -load-duration",
			total.rows, p.Rows, p.Duration)
	}
	return &rep, nil
}

// newRowGen returns a generator of random rows under p's distribution.
// Uniform mode draws every dimension from [0, card) uniformly. Zipf mode
// draws the daemon's shard dimension from a zipfian over the same domain
// (value 0 hottest, exponent p.ZipfS) and leaves the rest uniform, so the
// pool's hash routing concentrates the stream on a few hot shards. A
// daemon whose /v1/schema predates shard_dim skews the first dimension.
func newRowGen(rng *rand.Rand, schema loadSchema, p loadParams) func() loadRow {
	shardIdx := 0
	for i, d := range schema.Dimensions {
		if d == schema.ShardDim {
			shardIdx = i
			break
		}
	}
	var zipf *rand.Zipf
	if p.Dist == "zipf" {
		zipf = rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Card-1))
	}
	return func() loadRow {
		r := loadRow{
			Dims:     make([]string, len(schema.Dimensions)),
			Measures: make([]float64, len(schema.Measures)),
		}
		for i, d := range schema.Dimensions {
			v := rng.Intn(p.Card)
			if zipf != nil && i == shardIdx {
				v = int(zipf.Uint64())
			}
			r.Dims[i] = fmt.Sprintf("%s-%d", d, v)
		}
		for i := range r.Measures {
			r.Measures[i] = float64(rng.Intn(1000))
		}
		return r
	}
}

// buildBody renders one request body of batch rows from gen, returning
// the row count it carries.
func buildBody(gen func() loadRow, batch int) ([]byte, int) {
	if batch == 1 {
		b, _ := json.Marshal(gen())
		return b, 1
	}
	body := loadBatchBody{Rows: make([]loadRow, batch)}
	for i := range body.Rows {
		body.Rows[i] = gen()
	}
	b, _ := json.Marshal(body)
	return b, batch
}

// post sends one append request, draining the response so connections
// are reused. With wantIDs (delete mode) it parses the acked arrival ids
// out of the response instead of discarding it.
func post(client *http.Client, url string, body []byte, wantIDs bool) ([]string, bool) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if !wantIDs || resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode == http.StatusOK
	}
	var ids []string
	if strings.HasSuffix(url, ":batch") {
		var br loadBatchArrivals
		if json.NewDecoder(resp.Body).Decode(&br) == nil {
			for _, a := range br.Arrivals {
				if a != nil {
					ids = append(ids, a.ID)
				}
			}
		}
	} else {
		var a loadArrival
		if json.NewDecoder(resp.Body).Decode(&a) == nil {
			ids = append(ids, a.ID)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return ids, true
}

// getOK issues one read request, draining the response for reuse.
func getOK(client *http.Client, url string) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// deleteTuple retracts one acked id, draining the response for reuse.
func deleteTuple(client *http.Client, base, id string) bool {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/tuples/"+id, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusNoContent
}

// percentile returns the p-quantile (0 < p ≤ 1) of ascending-sorted
// latencies by nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
