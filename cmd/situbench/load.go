package main

// HTTP load generator against a running situfactd: situbench -serve-url
// drives the daemon's ingest path end-to-end (JSON decode, pool routing,
// discovery, JSON encode) and reports throughput and tail latency, turning
// the ROADMAP's "fast as the hardware allows" claim into a number.
//
// The generator discovers the daemon's schema via GET /v1/schema, then has
// -load-conns workers each POST random rows (dimension values drawn from a
// -load-card-sized domain per attribute, uniform measures) until
// -load-duration elapses. -load-batch > 1 switches to /v1/tuples:batch
// with that many rows per request.
//
// -load-dist zipf skews the daemon's shard dimension zipfianly (tunable
// exponent -load-zipf-s > 1): a few hot partition values dominate, so a
// handful of shards absorb most of the stream and the reported tail
// latency reflects hot-shard contention instead of an idealised uniform
// spread. Other dimensions stay uniform.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadParams configures one load run.
type loadParams struct {
	URL      string        // daemon base URL (e.g. http://localhost:8080)
	Conns    int           // concurrent connections
	Duration time.Duration // wall-clock run length
	Batch    int           // rows per request; 1 = POST /v1/tuples
	Card     int           // distinct values per dimension attribute
	Dist     string        // shard-dim value distribution: "uniform" (default) | "zipf"
	ZipfS    float64       // zipf exponent s > 1; 0 = 1.2
	Seed     int64         // workload seed
}

// loadSchema is the subset of the daemon's GET /v1/schema response the
// generator needs.
type loadSchema struct {
	Dimensions []string `json:"dimensions"`
	Measures   []struct {
		Name string `json:"name"`
	} `json:"measures"`
	ShardDim string `json:"shard_dim"`
}

// loadRow mirrors the daemon's row wire type.
type loadRow struct {
	Dims     []string  `json:"dims"`
	Measures []float64 `json:"measures"`
}

type loadBatchBody struct {
	Rows []loadRow `json:"rows"`
}

// workerResult accumulates one worker's observations.
type workerResult struct {
	rows      int64
	requests  int64
	errors    int64
	latencies []time.Duration // per successful request
}

// runLoad executes the load run and writes the report to w.
func runLoad(w io.Writer, p loadParams) error {
	if p.Conns <= 0 {
		p.Conns = 8
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Batch <= 0 {
		p.Batch = 1
	}
	if p.Card <= 0 {
		p.Card = 50
	}
	if p.Dist == "" {
		p.Dist = "uniform"
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	switch p.Dist {
	case "uniform", "zipf":
	default:
		return fmt.Errorf("unknown -load-dist %q (want uniform or zipf)", p.Dist)
	}
	if p.Dist == "zipf" && p.ZipfS <= 1 {
		return fmt.Errorf("-load-zipf-s must be > 1, got %g", p.ZipfS)
	}
	base := strings.TrimRight(p.URL, "/")
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        p.Conns,
			MaxIdleConnsPerHost: p.Conns,
		},
		Timeout: 30 * time.Second,
	}

	resp, err := client.Get(base + "/v1/schema")
	if err != nil {
		return fmt.Errorf("fetch schema: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return fmt.Errorf("fetch schema: %s returned %s: %s",
			base+"/v1/schema", resp.Status, strings.TrimSpace(string(body)))
	}
	var schema loadSchema
	err = json.NewDecoder(resp.Body).Decode(&schema)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode schema: %w", err)
	}
	if len(schema.Dimensions) == 0 || len(schema.Measures) == 0 {
		return fmt.Errorf("daemon reported an empty schema")
	}

	endpoint := base + "/v1/tuples"
	if p.Batch > 1 {
		endpoint = base + "/v1/tuples:batch"
	}
	results := make([]workerResult, p.Conns)
	deadline := time.Now().Add(p.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := newRowGen(rand.New(rand.NewSource(p.Seed+int64(i))), schema, p)
			res := &results[i]
			for time.Now().Before(deadline) {
				body, rows := buildBody(gen, p.Batch)
				t0 := time.Now()
				ok := post(client, endpoint, body)
				res.requests++
				if !ok {
					res.errors++
					continue
				}
				res.latencies = append(res.latencies, time.Since(t0))
				res.rows += int64(rows)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for _, r := range results {
		total.rows += r.rows
		total.requests += r.requests
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	dist := p.Dist
	if dist == "zipf" {
		dist = fmt.Sprintf("zipf(s=%g, shard-dim %q)", p.ZipfS, schema.ShardDim)
	}
	fmt.Fprintf(w, "load: %s batch=%d conns=%d dist=%s duration=%s\n",
		endpoint, p.Batch, p.Conns, dist, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "ingested %d rows in %d requests (%d errors) — %.1f rows/s, %.1f req/s\n",
		total.rows, total.requests, total.errors,
		float64(total.rows)/elapsed.Seconds(), float64(total.requests)/elapsed.Seconds())
	if len(total.latencies) > 0 {
		fmt.Fprintf(w, "request latency: p50 %s  p90 %s  p99 %s  max %s\n",
			percentile(total.latencies, 0.50).Round(time.Microsecond),
			percentile(total.latencies, 0.90).Round(time.Microsecond),
			percentile(total.latencies, 0.99).Round(time.Microsecond),
			total.latencies[len(total.latencies)-1].Round(time.Microsecond))
	}
	if total.errors > 0 {
		return fmt.Errorf("%d of %d requests failed", total.errors, total.requests)
	}
	return nil
}

// newRowGen returns a generator of random rows under p's distribution.
// Uniform mode draws every dimension from [0, card) uniformly. Zipf mode
// draws the daemon's shard dimension from a zipfian over the same domain
// (value 0 hottest, exponent p.ZipfS) and leaves the rest uniform, so the
// pool's hash routing concentrates the stream on a few hot shards. A
// daemon whose /v1/schema predates shard_dim skews the first dimension.
func newRowGen(rng *rand.Rand, schema loadSchema, p loadParams) func() loadRow {
	shardIdx := 0
	for i, d := range schema.Dimensions {
		if d == schema.ShardDim {
			shardIdx = i
			break
		}
	}
	var zipf *rand.Zipf
	if p.Dist == "zipf" {
		zipf = rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Card-1))
	}
	return func() loadRow {
		r := loadRow{
			Dims:     make([]string, len(schema.Dimensions)),
			Measures: make([]float64, len(schema.Measures)),
		}
		for i, d := range schema.Dimensions {
			v := rng.Intn(p.Card)
			if zipf != nil && i == shardIdx {
				v = int(zipf.Uint64())
			}
			r.Dims[i] = fmt.Sprintf("%s-%d", d, v)
		}
		for i := range r.Measures {
			r.Measures[i] = float64(rng.Intn(1000))
		}
		return r
	}
}

// buildBody renders one request body of batch rows from gen, returning
// the row count it carries.
func buildBody(gen func() loadRow, batch int) ([]byte, int) {
	if batch == 1 {
		b, _ := json.Marshal(gen())
		return b, 1
	}
	body := loadBatchBody{Rows: make([]loadRow, batch)}
	for i := range body.Rows {
		body.Rows[i] = gen()
	}
	b, _ := json.Marshal(body)
	return b, batch
}

// post sends one request, draining the response so connections are reused.
func post(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// percentile returns the p-quantile (0 < p ≤ 1) of ascending-sorted
// latencies by nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
