package main

// Overload mode: situbench -serve-url ... -load-overload deliberately
// drives a situfactd past its configured capacity and measures how it
// degrades, where the plain load mode measures how fast it goes. Workers
// hammer POST /v1/tuples as fast as they can; every 429 (rate limited)
// and 503 (shed / degraded) is expected output, not an error — the
// worker honors the response's Retry-After with a capped backoff and
// retries. The report separates accepted, shed and limited requests and
// quotes latency quantiles over ACCEPTED requests only: the question an
// overloaded daemon must answer is "does the work you do accept still
// finish promptly", and mixing rejected requests (fast by design) into
// the quantiles would flatter exactly the wrong thing.
//
// -load-json writes the report as JSON (schema situbench-overload/v1);
// BENCH_PR10.json pairs an uncontended baseline run with a past-capacity
// run so the acceptance criterion — accepted p99 under overload within
// 2× the uncontended p99 — is a number, not a claim.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// overloadParams configures one overload run.
type overloadParams struct {
	URL        string        // daemon base URL
	Conns      int           // concurrent workers
	Duration   time.Duration // wall-clock run length
	Card       int           // distinct values per dimension attribute
	BackoffCap time.Duration // Retry-After sleeps are capped here
	JSONPath   string        // when non-empty, also write the report as JSON
	Seed       int64         // workload seed
}

// overloadReport is the machine-readable form of one overload run.
type overloadReport struct {
	Schema          string  `json:"schema"` // "situbench-overload/v1"
	Endpoint        string  `json:"endpoint"`
	Conns           int     `json:"conns"`
	Card            int     `json:"card"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Seed            int64   `json:"seed"`
	BackoffCapMs    float64 `json:"backoff_cap_ms"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Accepted counts 200s; Shed 503s (admission or backpressure);
	// Limited 429s (per-client rate limit); Errors everything else —
	// an overload run with nonzero Errors failed, rejections never do.
	Accepted int64 `json:"accepted"`
	Shed     int64 `json:"shed"`
	Limited  int64 `json:"limited"`
	Errors   int64 `json:"errors"`
	// Retries counts backoff sleeps taken after 429/503 responses;
	// MissingRetryAfter counts rejections that broke the contract by
	// omitting the Retry-After header (must stay 0).
	Retries           int64   `json:"retries"`
	MissingRetryAfter int64   `json:"missing_retry_after"`
	AcceptedPerSec    float64 `json:"accepted_per_sec"`
	ReqPerSec         float64 `json:"req_per_sec"`
	// Latency quantiles over accepted requests only (see package comment).
	AcceptedP50Ms float64 `json:"accepted_p50_ms"`
	AcceptedP99Ms float64 `json:"accepted_p99_ms"`
	AcceptedMaxMs float64 `json:"accepted_max_ms"`
	// Daemon-side admission counters (GET /v1/metrics overload deltas;
	// absent when the daemon predates the block).
	DaemonShed     uint64 `json:"daemon_shed,omitempty"`
	DaemonLimited  uint64 `json:"daemon_limited,omitempty"`
	InflightPeak   int64  `json:"inflight_peak,omitempty"`
	MaxInflight    int64  `json:"max_inflight,omitempty"`
	IngestCanceled uint64 `json:"ingest_canceled,omitempty"`
}

// overloadScrape is the sliver of GET /v1/metrics the report needs.
type overloadScrape struct {
	Overload struct {
		Shed         uint64 `json:"shed"`
		Limited      uint64 `json:"limited"`
		InflightPeak int64  `json:"inflight_peak"`
		MaxInflight  int64  `json:"max_inflight"`
	} `json:"overload"`
	Ingest struct {
		Canceled uint64 `json:"canceled"`
	} `json:"ingest"`
}

func scrapeOverload(client *http.Client, base string) (overloadScrape, bool) {
	var s overloadScrape
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return s, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return s, false
	}
	return s, json.NewDecoder(resp.Body).Decode(&s) == nil
}

// overloadWorkerResult accumulates one worker's observations.
type overloadWorkerResult struct {
	accepted, shed, limited, errors int64
	retries, missingRetryAfter      int64
	latencies                       []time.Duration // accepted requests only
}

// postOverload sends one append and classifies the outcome, returning
// the HTTP status (0 on transport error) and the Retry-After the daemon
// named on a rejection.
func postOverload(client *http.Client, url string, body []byte) (status int, retryAfter time.Duration) {
	resp, err := client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter
}

// runOverload executes the overload run, writes the human summary to w
// and, with JSONPath set, the machine report alongside.
func runOverload(w io.Writer, p overloadParams) error {
	rep, runErr := executeOverload(w, p)
	if rep != nil && p.JSONPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return runErr
}

func executeOverload(w io.Writer, p overloadParams) (*overloadReport, error) {
	if p.Conns <= 0 {
		p.Conns = 32
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Card <= 0 {
		p.Card = 50
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = time.Second
	}
	base := strings.TrimRight(p.URL, "/")
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        p.Conns,
			MaxIdleConnsPerHost: p.Conns,
		},
		Timeout: 30 * time.Second,
	}
	resp, err := client.Get(base + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("fetch schema: %w", err)
	}
	var schema loadSchema
	err = json.NewDecoder(resp.Body).Decode(&schema)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("decode schema: %w", err)
	}
	if len(schema.Dimensions) == 0 || len(schema.Measures) == 0 {
		return nil, fmt.Errorf("daemon reported an empty schema")
	}
	before, scraped := scrapeOverload(client, base)

	endpoint := base + "/v1/tuples"
	results := make([]overloadWorkerResult, p.Conns)
	deadline := time.Now().Add(p.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(i)))
			gen := newRowGen(rng, schema, loadParams{Card: p.Card, Dist: "uniform"})
			res := &results[i]
			for time.Now().Before(deadline) {
				body, _ := buildBody(gen, 1)
				t0 := time.Now()
				status, retryAfter := postOverload(client, endpoint, body)
				switch status {
				case http.StatusOK:
					res.accepted++
					res.latencies = append(res.latencies, time.Since(t0))
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					if status == http.StatusServiceUnavailable {
						res.shed++
					} else {
						res.limited++
					}
					if retryAfter == 0 {
						res.missingRetryAfter++
						retryAfter = 50 * time.Millisecond
					}
					res.retries++
					// Honor the daemon's backoff, capped so a long
					// Retry-After cannot idle the run past its deadline,
					// plus up to 50% jitter: every rejected worker got its
					// 429 at the same instant, and without jitter they all
					// wake as one herd and measure each other's scheduling.
					backoff := min(retryAfter, p.BackoffCap)
					time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff/2+1))))
				default:
					res.errors++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total overloadWorkerResult
	for _, r := range results {
		total.accepted += r.accepted
		total.shed += r.shed
		total.limited += r.limited
		total.errors += r.errors
		total.retries += r.retries
		total.missingRetryAfter += r.missingRetryAfter
		total.latencies = append(total.latencies, r.latencies...)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	requests := total.accepted + total.shed + total.limited + total.errors
	rep := overloadReport{
		Schema:          "situbench-overload/v1",
		Endpoint:        endpoint,
		Conns:           p.Conns,
		Card:            p.Card,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Seed:            p.Seed,
		BackoffCapMs:    float64(p.BackoffCap) / float64(time.Millisecond),
		DurationSeconds: elapsed.Seconds(),
		Accepted:        total.accepted,
		Shed:            total.shed,
		Limited:         total.limited,
		Errors:          total.errors,
		Retries:         total.retries,

		MissingRetryAfter: total.missingRetryAfter,
		AcceptedPerSec:    float64(total.accepted) / elapsed.Seconds(),
		ReqPerSec:         float64(requests) / elapsed.Seconds(),
	}
	if n := len(total.latencies); n > 0 {
		rep.AcceptedP50Ms = float64(percentile(total.latencies, 0.50)) / float64(time.Millisecond)
		rep.AcceptedP99Ms = float64(percentile(total.latencies, 0.99)) / float64(time.Millisecond)
		rep.AcceptedMaxMs = float64(total.latencies[n-1]) / float64(time.Millisecond)
	}
	if after, ok := scrapeOverload(client, base); ok && scraped {
		rep.DaemonShed = after.Overload.Shed - before.Overload.Shed
		rep.DaemonLimited = after.Overload.Limited - before.Overload.Limited
		rep.InflightPeak = after.Overload.InflightPeak
		rep.MaxInflight = after.Overload.MaxInflight
		rep.IngestCanceled = after.Ingest.Canceled - before.Ingest.Canceled
	}

	fmt.Fprintf(w, "overload: %s conns=%d duration=%s backoff-cap=%s\n",
		endpoint, p.Conns, elapsed.Round(time.Millisecond), p.BackoffCap)
	fmt.Fprintf(w, "accepted %d (%.1f rows/s), shed %d, limited %d, %d retries, %d errors\n",
		total.accepted, rep.AcceptedPerSec, total.shed, total.limited, total.retries, total.errors)
	if len(total.latencies) > 0 {
		fmt.Fprintf(w, "accepted latency: p50 %s  p99 %s  max %s\n",
			percentile(total.latencies, 0.50).Round(time.Microsecond),
			percentile(total.latencies, 0.99).Round(time.Microsecond),
			total.latencies[len(total.latencies)-1].Round(time.Microsecond))
	}
	if rep.MaxInflight > 0 {
		fmt.Fprintf(w, "daemon: inflight peak %d/%d, shed %d, limited %d, %d parked writes canceled\n",
			rep.InflightPeak, rep.MaxInflight, rep.DaemonShed, rep.DaemonLimited, rep.IngestCanceled)
	}
	if total.errors > 0 {
		return &rep, fmt.Errorf("%d of %d requests failed outside the 429/503 overload contract", total.errors, requests)
	}
	if total.missingRetryAfter > 0 {
		return &rep, fmt.Errorf("%d rejections arrived without Retry-After", total.missingRetryAfter)
	}
	return &rep, nil
}
