package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

// TestBenchWarmPoint exercises the -bench-json measurement path with a
// tiny warmup so CI stays fast; the real warm point is produced by
// `situbench -bench-json` runs recorded in BENCH_PR*.json.
func TestBenchWarmPoint(t *testing.T) {
	p, err := benchWarmPoint(harness.BottomUp, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "BottomUp" || p.NsPerOp <= 0 || p.Iterations <= 0 {
		t.Errorf("implausible measurement: %+v", p)
	}
	if p.CmpPerTuple <= 0 || p.StoredEntries <= 0 {
		t.Errorf("algorithm counters missing: %+v", p)
	}
}

func TestBenchJSONDocumentShape(t *testing.T) {
	// Assemble a document from one fast point and check the wire shape.
	p, err := benchWarmPoint(harness.TopDown, 8)
	if err != nil {
		t.Fatal(err)
	}
	doc := benchDoc{Schema: "situbench-warm-points/v1", Points: []benchPoint{p}}
	buf, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var back benchDoc
	raw, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 1 || back.Points[0].Algorithm != "TopDown" {
		t.Errorf("round-trip lost data: %+v", back)
	}
	for _, key := range []string{"ns_op", "allocs_op", "cmp_per_tuple"} {
		var m map[string]any
		json.Unmarshal(buf, &m)
		pts := m["points"].([]any)[0].(map[string]any)
		if _, ok := pts[key]; !ok {
			t.Errorf("JSON point missing %q field", key)
		}
	}
}
