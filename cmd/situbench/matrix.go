package main

// Multicore matrix mode: situbench -matrix <situfactd-binary> sweeps a
// grid of daemon configurations (shards × discovery workers per shard ×
// connections × delete fraction), launching a FRESH daemon per trial and
// driving each point with the fixed-work load generator (load.go), so
// every point ingests the same rows into an initially empty relation and
// the numbers are comparable across points and across binaries.
//
// The daemon is configured through flags every binary in the repo's
// BENCH_PR*.json lineage understands: workers > 1 selects
// -algo parallel-bottomup -workers N (the engine -shard-workers is
// shorthand for), workers == 1 the default sbottomup — so the same
// command benchmarks an old binary (before) and a new one (after).
//
// Each point runs -matrix-trials times and keeps the median-throughput
// trial's report. -matrix-json writes the whole sweep as one JSON
// document (schema situbench-matrix/v1) stamped with the host's
// GOMAXPROCS, the raw material of BENCH_PR6.json's multicore comparison.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// matrixParams configures one sweep.
type matrixParams struct {
	Binary      string        // situfactd binary to launch per point
	Shards      []int         // -shards values
	Workers     []int         // discovery workers per shard (1 = sbottomup)
	Conns       []int         // generator connection counts
	DeleteFracs []float64     // -load-delete-frac values
	Rows        int64         // fixed work per point (appended rows)
	Trials      int           // trials per point; the median-throughput one is kept
	Batch       int           // rows per request
	Card        int           // distinct values per dimension
	Timeout     time.Duration // per-trial cap (fixed-work runs that exceed it fail)
	Seed        int64
	JSONPath    string // when non-empty, write the matrix report here
}

// matrixPoint is one grid point's outcome.
type matrixPoint struct {
	Shards     int         `json:"shards"`
	Workers    int         `json:"workers"`
	Conns      int         `json:"conns"`
	DeleteFrac float64     `json:"delete_frac"`
	Trials     int         `json:"trials"`
	Report     *loadReport `json:"report"` // the median-throughput trial
}

// matrixReport is the -matrix-json document.
type matrixReport struct {
	Schema     string        `json:"schema"` // "situbench-matrix/v1"
	Binary     string        `json:"binary"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Rows       int64         `json:"rows"`
	Batch      int           `json:"batch"`
	Card       int           `json:"card"`
	Seed       int64         `json:"seed"`
	Points     []matrixPoint `json:"points"`
}

// matrixDims/matrixMeasures are the fixed daemon schema of every matrix
// point: the grid varies concurrency shape, not relation shape.
const (
	matrixDims     = "player,team,opp"
	matrixMeasures = "points,rebounds"
)

// runMatrix executes the sweep and writes one summary line per point.
func runMatrix(w io.Writer, p matrixParams) error {
	if p.Rows <= 0 {
		p.Rows = 4000
	}
	if p.Trials <= 0 {
		p.Trials = 1
	}
	if p.Timeout <= 0 {
		p.Timeout = 2 * time.Minute
	}
	if _, err := exec.LookPath(p.Binary); err != nil {
		return fmt.Errorf("matrix: situfactd binary %q: %w", p.Binary, err)
	}
	rep := matrixReport{
		Schema:     "situbench-matrix/v1",
		Binary:     p.Binary,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       p.Rows,
		Batch:      p.Batch,
		Card:       p.Card,
		Seed:       p.Seed,
	}
	fmt.Fprintf(w, "matrix: %s — %d rows/point, gomaxprocs=%d, %d trial(s)/point\n",
		p.Binary, p.Rows, rep.GoMaxProcs, p.Trials)
	for _, shards := range p.Shards {
		for _, workers := range p.Workers {
			for _, conns := range p.Conns {
				for _, df := range p.DeleteFracs {
					point, err := runMatrixPoint(p, shards, workers, conns, df)
					if err != nil {
						return fmt.Errorf("matrix point shards=%d workers=%d conns=%d delete-frac=%g: %w",
							shards, workers, conns, df, err)
					}
					rep.Points = append(rep.Points, point)
					fmt.Fprintf(w, "shards=%d workers=%d conns=%d delete-frac=%g: %.1f rows/s (p99 %.2f ms, %d queue resizes)\n",
						shards, workers, conns, df,
						point.Report.RowsPerSec, point.Report.P99Ms, point.Report.QueueResizes)
				}
			}
		}
	}
	if p.JSONPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runMatrixPoint measures one grid point: Trials fresh-daemon runs, the
// median-throughput report kept.
func runMatrixPoint(p matrixParams, shards, workers, conns int, deleteFrac float64) (matrixPoint, error) {
	point := matrixPoint{Shards: shards, Workers: workers, Conns: conns, DeleteFrac: deleteFrac, Trials: p.Trials}
	var reports []*loadReport
	for trial := 0; trial < p.Trials; trial++ {
		rep, err := runMatrixTrial(p, shards, workers, conns, deleteFrac, p.Seed+int64(trial))
		if err != nil {
			return point, err
		}
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].RowsPerSec < reports[j].RowsPerSec })
	point.Report = reports[len(reports)/2]
	return point, nil
}

// runMatrixTrial launches one fresh daemon, runs the fixed-work load
// against it, and tears it down.
func runMatrixTrial(p matrixParams, shards, workers, conns int, deleteFrac float64, seed int64) (*loadReport, error) {
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := []string{
		"-addr", addr,
		"-dims", matrixDims,
		"-measures", matrixMeasures,
		"-shards", strconv.Itoa(shards),
	}
	if workers > 1 {
		args = append(args, "-algo", "parallel-bottomup", "-workers", strconv.Itoa(workers))
	}
	cmd := exec.Command(p.Binary, args...)
	var daemonLog bytes.Buffer
	cmd.Stdout, cmd.Stderr = &daemonLog, &daemonLog
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", p.Binary, err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }()
	defer stopDaemon(cmd, exited)
	base := "http://" + addr
	if err := waitHealthy(base, 10*time.Second, exited); err != nil {
		return nil, fmt.Errorf("%w; daemon log:\n%s", err, tail(daemonLog.String(), 2048))
	}
	rep, err := executeLoad(io.Discard, loadParams{
		URL:        base,
		Conns:      conns,
		Duration:   p.Timeout,
		Batch:      p.Batch,
		Card:       p.Card,
		Dist:       "uniform",
		DeleteFrac: deleteFrac,
		Rows:       p.Rows,
		Seed:       seed,
	})
	if err != nil {
		return nil, fmt.Errorf("%w; daemon log:\n%s", err, tail(daemonLog.String(), 2048))
	}
	return rep, nil
}

// freePort reserves an ephemeral localhost port and releases it for the
// daemon. The tiny reuse race is harmless here: the daemon's bind fails,
// waitHealthy times out, and the point errors out rather than mismeasures.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

// waitHealthy polls GET /healthz until the daemon answers 200, it exits
// (bad flags, bind failure), or the timeout lapses.
func waitHealthy(base string, timeout time.Duration, exited <-chan struct{}) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		select {
		case <-exited:
			return fmt.Errorf("daemon exited before becoming healthy")
		default:
		}
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon not healthy after %s", timeout)
}

// stopDaemon SIGTERMs the daemon and waits briefly for the graceful path,
// escalating to SIGKILL so a wedged trial cannot hang the sweep.
func stopDaemon(cmd *exec.Cmd, exited <-chan struct{}) {
	if cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-exited:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-exited
	}
}

// tail returns the last at-most-n bytes of s, for error context.
func tail(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}

// parseIntList parses a comma-separated int list ("1,4,8").
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad %s %q: want positive comma-separated ints", flagName, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloatList parses a comma-separated float list ("0,0.1").
func parseFloatList(flagName, s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad %s %q: want comma-separated fractions in [0, 1)", flagName, s)
		}
		out = append(out, v)
	}
	return out, nil
}
