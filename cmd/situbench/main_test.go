package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestExperimentRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must be runnable by id.
	want := []string{"fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c",
		"fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c", "fig13",
		"fig14", "fig15"}
	for _, id := range want {
		if _, ok := experiments[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(order) != len(want) {
		t.Errorf("order lists %d experiments, want %d", len(order), len(want))
	}
	for _, id := range order {
		if _, ok := experiments[id]; !ok {
			t.Errorf("order entry %q not in registry", id)
		}
	}
}

func TestRunOneTextAndCSV(t *testing.T) {
	p := harness.Params{N: 60, Checkpoints: 2, Seed: 1}
	var buf bytes.Buffer
	if err := runOne(&buf, "fig8a", p, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 8a") {
		t.Errorf("text output missing title:\n%s", buf.String())
	}
	buf.Reset()
	if err := runOne(&buf, "fig8a", p, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,series,y") {
		t.Errorf("csv output malformed:\n%s", buf.String())
	}
}
