package situfact

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Schema describes a relation R(D;M): an ordered set of categorical
// dimension attributes (on which contexts are defined) and numeric measure
// attributes (on which skyline dominance is defined). Build one with
// NewSchemaBuilder.
type Schema struct {
	rs *relation.Schema
}

// DimensionNames returns the dimension attribute names in order.
func (s *Schema) DimensionNames() []string {
	out := make([]string, s.rs.NumDims())
	for i := range out {
		out[i] = s.rs.Dim(i).Name
	}
	return out
}

// MeasureNames returns the measure attribute names in order.
func (s *Schema) MeasureNames() []string {
	out := make([]string, s.rs.NumMeasures())
	for i := range out {
		out[i] = s.rs.Measure(i).Name
	}
	return out
}

// String renders the schema.
func (s *Schema) String() string { return s.rs.String() }

// SchemaBuilder assembles a Schema fluently.
type SchemaBuilder struct {
	name     string
	dims     []relation.DimAttr
	measures []relation.MeasureAttr
}

// NewSchemaBuilder starts a schema with the given relation name.
func NewSchemaBuilder(name string) *SchemaBuilder {
	return &SchemaBuilder{name: name}
}

// Dimension appends a dimension attribute.
func (b *SchemaBuilder) Dimension(name string) *SchemaBuilder {
	b.dims = append(b.dims, relation.DimAttr{Name: name})
	return b
}

// Measure appends a measure attribute with its preferred direction.
func (b *SchemaBuilder) Measure(name string, dir Direction) *SchemaBuilder {
	b.measures = append(b.measures, relation.MeasureAttr{Name: name, Direction: dir})
	return b
}

// Build validates and returns the schema.
func (b *SchemaBuilder) Build() (*Schema, error) {
	rs, err := relation.NewSchema(b.name, b.dims, b.measures)
	if err != nil {
		return nil, err
	}
	return &Schema{rs: rs}, nil
}

// WrapSchema adapts an internal schema; used by the harness and examples
// that obtain schemas from the workload generators.
func WrapSchema(rs *relation.Schema) *Schema { return &Schema{rs: rs} }

// MeasureSpec is one measure attribute as parsed by ParseSchema.
type MeasureSpec struct {
	Name      string
	Direction Direction
}

// ParseSchema builds a schema from the comma-separated attribute lists the
// command-line tools (cmd/situfact, cmd/situfactd) share: dims names the
// dimension columns; measures names the measure columns, a '-' prefix
// selecting smaller-is-better (e.g. "points,assists,-fouls"). Whitespace
// around names is trimmed. The parsed measure specs are returned alongside
// for callers that need per-measure directions (wire formats, CSV column
// mapping).
func ParseSchema(relation, dims, measures string) (*Schema, []MeasureSpec, error) {
	if dims == "" || measures == "" {
		return nil, nil, fmt.Errorf("situfact: dimension and measure lists are both required")
	}
	b := NewSchemaBuilder(relation)
	for _, d := range strings.Split(dims, ",") {
		b.Dimension(strings.TrimSpace(d))
	}
	var specs []MeasureSpec
	for _, m := range strings.Split(measures, ",") {
		m = strings.TrimSpace(m)
		dir := LargerBetter
		if strings.HasPrefix(m, "-") {
			dir = SmallerBetter
			m = strings.TrimSpace(m[1:])
		}
		b.Measure(m, dir)
		specs = append(specs, MeasureSpec{Name: m, Direction: dir})
	}
	schema, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return schema, specs, nil
}
