package situfact

import (
	"fmt"
	"strings"
)

// Narrate renders a fact as a newsroom-style sentence — the paper's §VIII
// "narrating facts in natural-language text" future-work item. subject
// describes the entity of the new tuple (e.g. a player name); values maps
// measure names to the tuple's raw values for inclusion in the sentence.
//
// Example output:
//
//	"Paul George (21 points / 11 rebounds / 5 assists) posts the best
//	 points/rebounds/assists line ever recorded among team=Pacers ∧
//	 opp_team=Bulls — 1 of 1 skyline performances out of 312."
func Narrate(f Fact, subject string, values map[string]float64) string {
	var b strings.Builder
	b.WriteString(subject)
	if len(values) > 0 {
		parts := make([]string, 0, len(f.Measures))
		for _, m := range f.Measures {
			if v, ok := values[m]; ok {
				parts = append(parts, fmt.Sprintf("%g %s", v, m))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, " / "))
		}
	}
	if f.SkylineSize == 1 {
		b.WriteString(" posts the single best ")
	} else {
		b.WriteString(" posts an undominated ")
	}
	b.WriteString(strings.Join(f.Measures, "/"))
	b.WriteString(" line")
	if len(f.Conditions) == 0 {
		b.WriteString(" across the entire history")
	} else {
		b.WriteString(" among ")
		conds := make([]string, len(f.Conditions))
		for i, c := range f.Conditions {
			conds[i] = fmt.Sprintf("%s=%s", c.Attr, c.Value)
		}
		b.WriteString(strings.Join(conds, " ∧ "))
	}
	if f.ContextSize > 0 && f.SkylineSize > 0 {
		fmt.Fprintf(&b, " — 1 of %d skyline records out of %d", f.SkylineSize, f.ContextSize)
	}
	b.WriteString(".")
	return b.String()
}
