package situfact

import (
	"os"
	"strings"
	"testing"
)

func gamelogSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchemaBuilder("gamelog").
		Dimension("player").Dimension("month").Dimension("season").
		Dimension("team").Dimension("opp_team").
		Measure("points", LargerBetter).
		Measure("assists", LargerBetter).
		Measure("rebounds", LargerBetter).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var table1Rows = []struct {
	d []string
	m []float64
}{
	{[]string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, []float64{4, 12, 5}},
	{[]string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, []float64{24, 5, 15}},
	{[]string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, []float64{13, 13, 5}},
	{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2}},
	{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3}},
	{[]string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, []float64{27, 18, 8}},
	{[]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, []float64{12, 13, 5}},
}

func TestEngineEndToEnd(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Algorithm() != "SBottomUp" {
		t.Errorf("default algorithm = %q", eng.Algorithm())
	}
	var last *Arrival
	for _, r := range table1Rows {
		last, err = eng.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
	}
	if eng.Len() != 7 || last.TupleID != 6 {
		t.Fatalf("Len=%d TupleID=%d", eng.Len(), last.TupleID)
	}
	if len(last.Facts) != 195 {
		t.Fatalf("t7 facts = %d, want 195", len(last.Facts))
	}
	// Facts must be sorted by descending prominence.
	for i := 1; i < len(last.Facts); i++ {
		if last.Facts[i].Prominence > last.Facts[i-1].Prominence {
			t.Fatal("facts not sorted by prominence")
		}
	}
	if last.Facts[0].Prominence != 5 {
		t.Errorf("max prominence = %g, want 5", last.Facts[0].Prominence)
	}
	top := last.Top(3)
	if len(top) != 3 {
		t.Errorf("Top(3) = %d facts", len(top))
	}
	prom := last.Prominent(3)
	if len(prom) == 0 {
		t.Fatal("no prominent facts at τ=3")
	}
	for _, f := range prom {
		if f.Prominence != 5 {
			t.Errorf("prominent fact with non-max prominence %g", f.Prominence)
		}
	}
	if got := last.Prominent(100); got != nil {
		t.Errorf("Prominent(100) = %v", got)
	}
	// Fact rendering.
	s := prom[0].String()
	if !strings.Contains(s, "prominence") {
		t.Errorf("Fact.String() = %q, missing prominence", s)
	}
	m := eng.Metrics()
	if m.Tuples != 7 || m.Facts == 0 || m.StoredTuples == 0 {
		t.Errorf("implausible metrics: %+v", m)
	}
}

func TestEngineAlgorithms(t *testing.T) {
	// Every algorithm must agree on |S_t7| through the public API.
	for _, algo := range []Algorithm{AlgoBruteForce, AlgoBaselineSeq, AlgoBaselineIdx, AlgoCCSC,
		AlgoBottomUp, AlgoTopDown, AlgoSBottomUp, AlgoSTopDown,
		AlgoParallelTopDown, AlgoParallelBottomUp} {
		opt := Options{Algorithm: algo}
		switch algo {
		case AlgoBruteForce, AlgoBaselineSeq, AlgoBaselineIdx, AlgoCCSC:
			opt.DisableProminence = true
		}
		eng, err := New(gamelogSchema(t), opt)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var last *Arrival
		for _, r := range table1Rows {
			last, err = eng.Append(r.d, r.m)
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(last.Facts) != 195 {
			t.Errorf("%s: |S_t7| = %d, want 195", algo, len(last.Facts))
		}
		eng.Close()
	}
}

// TestEngineParallelEquivalence: the parallel constants must reproduce
// their sequential counterparts exactly through the public API — same
// facts, same prominence numerators and denominators — for several worker
// counts.
func TestEngineParallelEquivalence(t *testing.T) {
	for _, pair := range []struct{ seq, par Algorithm }{
		{AlgoTopDown, AlgoParallelTopDown},
		{AlgoBottomUp, AlgoParallelBottomUp},
	} {
		ref, err := New(gamelogSchema(t), Options{Algorithm: pair.seq})
		if err != nil {
			t.Fatal(err)
		}
		var want []*Arrival
		for _, r := range table1Rows {
			arr, err := ref.Append(r.d, r.m)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, arr)
		}
		ref.Close()
		for _, workers := range []int{1, 2, 4} {
			eng, err := New(gamelogSchema(t), Options{Algorithm: pair.par, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(eng.Algorithm(), "Parallel") {
				t.Errorf("%s engine reports algorithm %q", pair.par, eng.Algorithm())
			}
			for i, r := range table1Rows {
				arr, err := eng.Append(r.d, r.m)
				if err != nil {
					t.Fatal(err)
				}
				if len(arr.Facts) != len(want[i].Facts) {
					t.Fatalf("%s W=%d tuple %d: %d facts, sequential has %d",
						pair.par, workers, i, len(arr.Facts), len(want[i].Facts))
				}
				for j := range arr.Facts {
					w, g := want[i].Facts[j], arr.Facts[j]
					if w.String() != g.String() || w.ContextSize != g.ContextSize ||
						w.SkylineSize != g.SkylineSize {
						t.Fatalf("%s W=%d tuple %d fact %d: %s vs sequential %s",
							pair.par, workers, i, j, g, w)
					}
				}
			}
			if got := eng.Metrics().Tuples; got != int64(len(table1Rows)) {
				t.Errorf("%s W=%d: Metrics.Tuples = %d, want %d",
					pair.par, workers, got, len(table1Rows))
			}
			eng.Close()
		}
	}
}

// TestEngineParallelDelete: deletion works through the parallel BottomUp
// driver exactly as through the sequential one (same scenario as
// TestEngineDelete), while the parallel TopDown driver refuses it.
func TestEngineParallelDelete(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoParallelBottomUp, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, r := range table1Rows[:6] {
		if _, err := eng.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(2); err != nil {
		t.Fatal(err)
	}
	last, err := eng.Append(table1Rows[6].d, table1Rows[6].m)
	if err != nil {
		t.Fatal(err)
	}
	if len(last.Facts) != 218 {
		t.Errorf("|S_t7| after parallel deletions = %d, want 218 (the sequential answer)", len(last.Facts))
	}
	td, err := New(gamelogSchema(t), Options{Algorithm: AlgoParallelTopDown})
	if err != nil {
		t.Fatal(err)
	}
	defer td.Close()
	td.Append(table1Rows[0].d, table1Rows[0].m)
	if err := td.Delete(0); err == nil {
		t.Error("parallel TopDown engine accepted Delete")
	}
}

func TestEngineFileStore(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoSTopDown, StoreDir: t.TempDir() + "/cells"})
	if err != nil {
		t.Fatal(err)
	}
	var last *Arrival
	for _, r := range table1Rows {
		last, err = eng.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(last.Facts) != 195 {
		t.Errorf("file-backed |S_t7| = %d, want 195", len(last.Facts))
	}
	if eng.Metrics().Writes == 0 {
		t.Error("file store did no writes")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.DestroyStore(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineOptionErrors(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil schema accepted")
	}
	err := func() error {
		_, err := New(gamelogSchema(t), Options{Algorithm: "nope"})
		return err
	}()
	if err == nil {
		t.Error("unknown algorithm accepted")
	} else {
		// The message must list alternatives and carry exactly one
		// package prefix (no "situfact: core:" stutter).
		if !strings.Contains(err.Error(), "sbottomup") {
			t.Errorf("unknown-algorithm error lists no alternatives: %v", err)
		}
		if strings.Contains(err.Error(), "core:") {
			t.Errorf("internal package prefix leaked: %v", err)
		}
	}
	// The parallel drivers share an in-memory store: StoreDir must be
	// rejected up front with an actionable message, creating nothing on
	// disk.
	dir := t.TempDir() + "/cells"
	if _, err := New(gamelogSchema(t), Options{Algorithm: AlgoParallelTopDown, StoreDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "StoreDir") {
		t.Errorf("parallel + StoreDir: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("rejected parallel + StoreDir still created %s", dir)
	}
	if _, err := NewPool(gamelogSchema(t), PoolOptions{
		Shards: 2,
		Engine: Options{Algorithm: AlgoParallelBottomUp, StoreDir: dir},
	}); err == nil || !strings.Contains(err.Error(), "StoreDir") {
		t.Errorf("pool parallel + StoreDir: %v", err)
	}
	// Prominence requires a lattice algorithm.
	if _, err := New(gamelogSchema(t), Options{Algorithm: AlgoBaselineSeq}); err == nil {
		t.Error("prominence with baseline accepted")
	}
	if _, err := New(gamelogSchema(t), Options{Algorithm: AlgoBaselineSeq, DisableProminence: true}); err != nil {
		t.Errorf("baseline without prominence rejected: %v", err)
	}
}

func TestEngineCaps(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{MaxBoundDims: 2, MaxMeasureDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	var last *Arrival
	for _, r := range table1Rows {
		last, _ = eng.Append(r.d, r.m)
	}
	for _, f := range last.Facts {
		if len(f.Conditions) > 2 {
			t.Fatalf("fact binds %d dims, cap is 2", len(f.Conditions))
		}
		if len(f.Measures) > 2 {
			t.Fatalf("fact has %d measures, cap is 2", len(f.Measures))
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := gamelogSchema(t)
	if got := s.DimensionNames(); len(got) != 5 || got[0] != "player" {
		t.Errorf("DimensionNames = %v", got)
	}
	if got := s.MeasureNames(); len(got) != 3 || got[2] != "rebounds" {
		t.Errorf("MeasureNames = %v", got)
	}
	if !strings.Contains(s.String(), "gamelog") {
		t.Errorf("String = %q", s.String())
	}
	if _, err := NewSchemaBuilder("bad").Build(); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestArrivalArityError(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Append([]string{"x"}, []float64{1, 2, 3}); err == nil {
		t.Error("bad arity accepted")
	}
}

func TestEngineDelete(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoBottomUp})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[:6] {
		if _, err := eng.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	// Delete t6 (Strickland, ID 5) and t3 (Sherman, ID 2) — two of t7's
	// three dominators; afterwards t7's fact set must grow accordingly.
	if err := eng.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(2); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 4 {
		t.Errorf("Len after deletes = %d, want 4", eng.Len())
	}
	if err := eng.Delete(2); err == nil {
		t.Error("double delete accepted")
	}
	if err := eng.Delete(99); err == nil {
		t.Error("deleting unknown id accepted")
	}
	last, err := eng.Append(table1Rows[6].d, table1Rows[6].m)
	if err != nil {
		t.Fatal(err)
	}
	// With only t2 (sharing month=Feb) left as a dominator, exclusion-
	// count: t2 dominates t7 in {p},{r},{p,r} with C ⊆ {month}: 6 pairs →
	// 224−6 = 218 facts.
	if len(last.Facts) != 218 {
		t.Errorf("|S_t7| after deletions = %d, want 218", len(last.Facts))
	}
	// Context counts must reflect the deletions: month=Feb context is now
	// t1,t2,t4,t5,t7 minus none (deleted rows were Dec/Jan) = 5.
	for _, f := range last.Facts {
		if len(f.Conditions) == 1 && f.Conditions[0].Attr == "month" && f.Conditions[0].Value == "Feb" {
			if f.ContextSize != 5 {
				t.Errorf("month=Feb context size = %d, want 5", f.ContextSize)
			}
			break
		}
	}
	// TopDown engines must refuse deletion.
	td, err := New(gamelogSchema(t), Options{Algorithm: AlgoTopDown})
	if err != nil {
		t.Fatal(err)
	}
	td.Append(table1Rows[0].d, table1Rows[0].m)
	if err := td.Delete(0); err == nil {
		t.Error("TopDown engine accepted Delete")
	}
}

func TestEngineUpdate(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoSBottomUp})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table1Rows[:6] {
		if _, err := eng.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	// Correct t6's stat line downwards; the replacement must no longer
	// suppress t7's full-space facts the way the original did.
	arr, err := eng.Update(5, table1Rows[5].d, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if arr.TupleID != 6 || eng.Len() != 6 {
		t.Fatalf("Update arrival id=%d len=%d", arr.TupleID, eng.Len())
	}
	last, err := eng.Append(table1Rows[6].d, table1Rows[6].m)
	if err != nil {
		t.Fatal(err)
	}
	// Exclusions now come from t2 (6 pairs) and t3 (16 pairs) with the
	// ⊤-overlap of the four point-subspaces counted once: 224−(6+16−2)=204.
	if len(last.Facts) != 204 {
		t.Errorf("|S_t7| after update = %d, want 204", len(last.Facts))
	}
	if _, err := eng.Update(99, table1Rows[0].d, table1Rows[0].m); err == nil {
		t.Error("Update of unknown id accepted")
	}
}

func TestEngineUpdateErrorPaths(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{Algorithm: AlgoBottomUp})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, r := range table1Rows[:3] {
		if _, err := eng.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-range IDs: negative and one past the end.
	if _, err := eng.Update(-1, table1Rows[0].d, table1Rows[0].m); err == nil {
		t.Error("Update(-1) accepted")
	}
	if _, err := eng.Update(3, table1Rows[0].d, table1Rows[0].m); err == nil {
		t.Error("Update of not-yet-appended id accepted")
	}
	// Updating a tuple that was already deleted must fail without
	// touching the stream.
	if err := eng.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(1, table1Rows[1].d, table1Rows[1].m); err == nil {
		t.Error("Update of deleted tuple accepted")
	}
	if eng.Len() != 2 {
		t.Errorf("failed updates changed Len to %d, want 2", eng.Len())
	}
	// Update on a non-deleting algorithm surfaces the capability error.
	td, err := New(gamelogSchema(t), Options{Algorithm: AlgoSTopDown})
	if err != nil {
		t.Fatal(err)
	}
	defer td.Close()
	td.Append(table1Rows[0].d, table1Rows[0].m)
	if _, err := td.Update(0, table1Rows[0].d, table1Rows[0].m); err == nil ||
		!strings.Contains(err.Error(), "BottomUp") {
		t.Errorf("Update on STopDown: %v", err)
	}
}

func TestEngineSkyband(t *testing.T) {
	eng, err := New(gamelogSchema(t), Options{SkybandK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Algorithm() != "Skyband(k=2)" {
		t.Errorf("Algorithm = %q", eng.Algorithm())
	}
	var last *Arrival
	for _, r := range table1Rows {
		if last, err = eng.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	// With k=2, a fact needs < 2 dominators: t7's exclusions shrink to the
	// pairs dominated by ≥ 2 of {t2, t3, t6}; the set must be a strict
	// superset of the 195 skyline facts.
	if len(last.Facts) <= 195 {
		t.Errorf("k=2 skyband has %d facts, want > 195", len(last.Facts))
	}
	if _, err := New(gamelogSchema(t), Options{SkybandK: -3}); err != nil {
		t.Errorf("SkybandK < 2 should fall back to skyline: %v", err)
	}
}

func TestNarrate(t *testing.T) {
	f := Fact{
		Conditions:  []Condition{{Attr: "team", Value: "Pacers"}, {Attr: "opp_team", Value: "Bulls"}},
		Measures:    []string{"points", "rebounds", "assists"},
		ContextSize: 312,
		SkylineSize: 1,
		Prominence:  312,
	}
	got := Narrate(f, "Paul George", map[string]float64{"points": 21, "rebounds": 11, "assists": 5})
	for _, want := range []string{"Paul George", "21 points", "team=Pacers", "opp_team=Bulls", "1 of 1", "out of 312"} {
		if !strings.Contains(got, want) {
			t.Errorf("Narrate = %q, missing %q", got, want)
		}
	}
	// Unconstrained fact.
	f2 := Fact{Measures: []string{"points"}}
	got2 := Narrate(f2, "X", nil)
	if !strings.Contains(got2, "entire history") {
		t.Errorf("Narrate(⊤) = %q", got2)
	}
	if f2.String() == "" || !strings.Contains(f2.String(), "⊤") {
		t.Errorf("Fact.String(⊤) = %q", f2.String())
	}
}
