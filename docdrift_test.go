package situfact_test

import (
	"os"
	"regexp"
	"slices"
	"testing"

	situfact "repro"
)

// TestREADMEAlgorithmTable is a doc-drift guard: the README's algorithm
// table must list exactly the algorithms the registry knows. Registering a
// new algorithm without documenting it (or documenting one that was
// removed) fails CI.
func TestREADMEAlgorithmTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	// Table rows under "## Algorithms" look like: | `sbottomup` | §V-C | … |
	rowRE := regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)`\\s*\\|")
	var documented []string
	for _, m := range rowRE.FindAllStringSubmatch(string(data), -1) {
		documented = append(documented, m[1])
	}
	slices.Sort(documented)
	registered := situfact.Algorithms() // already sorted
	if !slices.Equal(documented, registered) {
		t.Errorf("README algorithm table drifted from situfact.Algorithms():\n  documented: %v\n  registered: %v",
			documented, registered)
	}
}
