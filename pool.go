package situfact

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/persist"
)

// Pool is a sharded front-end over N independent Engines, for workloads
// that are naturally partitioned by one dimension attribute — per-league
// game feeds, per-station weather streams, per-symbol tick streams. Every
// arriving row is routed to the shard owning its partition value (a hash
// of the ShardDim value), so all rows sharing that value meet the same
// engine in arrival order.
//
// Semantics guarantee: discovery never compares tuples with different
// values of a bound attribute, so as long as callers only interpret facts
// whose context binds the shard dimension (or treat each shard as its own
// relation), the facts a shard reports are EXACTLY those a standalone
// Engine reports over that shard's substream. The unit of truth is the
// substream, not the union: a fact with an unbound shard dimension speaks
// about the shard's relation, not the global one. TestPoolShardEquivalence
// asserts the per-substream identity.
//
// Pool is safe for concurrent use: each shard serialises its own arrivals
// with a per-shard lock, and different shards proceed in parallel.
//
// With a WAL attached (AttachWAL), every mutation is journaled before it
// is applied — under the owning shard's lock, so each shard's journal
// order equals its apply order — and acknowledged only once the record is
// durable under the log's sync mode (see wal.go).
type Pool struct {
	schema   *Schema
	shardDim int
	shards   []poolShard
	wal      *WAL // nil = no journaling
	// walEpoch is the epoch of the log the shards' lastLSN watermarks
	// refer to — restored from the snapshot manifest, updated when a WAL
	// is replayed or attached. Watermarks are discarded against a log
	// with a different epoch (see Pool.adoptWAL in wal.go).
	walEpoch string
	// pipe, when non-nil, is the running ingest pipeline: one batching
	// writer goroutine per shard (see pipeline.go). Nil = direct path.
	pipe atomic.Pointer[pipeline]
	// scanQueries, when true, routes QueryFacts/TopFacts through the
	// reference full-scan path instead of the incremental fact index.
	// The index is maintained either way — only the read side switches.
	scanQueries atomic.Bool
}

type poolShard struct {
	// mu is a read/write lock: every mutation (ingest, delete, replay)
	// holds the write side, so read-only surfaces — monitoring and the
	// query API (query.go) — can share the read side and proceed against
	// each other without serialising.
	mu  sync.RWMutex
	eng *Engine
	// lastLSN is the WAL LSN of the last record successfully applied to
	// this shard (0 = none), maintained under mu. Snapshots record it so
	// recovery replays exactly the uncovered tail.
	lastLSN uint64
}

// Row is one arrival for Pool.AppendBatch: dimension values and measure
// values in schema order.
type Row struct {
	Dims     []string
	Measures []float64
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Shards is the number of engines; ≤ 0 selects GOMAXPROCS.
	Shards int
	// ShardDim names the dimension attribute whose value routes a row to
	// its shard; empty selects the schema's first dimension.
	ShardDim string
	// Engine configures every shard's engine identically. When
	// Engine.StoreDir is non-empty, shard i stores its cells under
	// <StoreDir>/shard-<i>; the parallel-* algorithms reject StoreDir
	// (their workers share an in-memory store).
	Engine Options
}

// NewPool creates a pool of engines over the schema.
func NewPool(schema *Schema, opt PoolOptions) (*Pool, error) {
	if schema == nil || schema.rs == nil {
		return nil, fmt.Errorf("situfact: nil schema")
	}
	n := opt.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	shardDim := 0
	if opt.ShardDim != "" {
		shardDim = schema.rs.DimIndex(opt.ShardDim)
		if shardDim < 0 {
			return nil, fmt.Errorf("situfact: pool shard dimension %q not in schema %s",
				opt.ShardDim, schema.rs)
		}
	}
	p := &Pool{schema: schema, shardDim: shardDim, shards: make([]poolShard, n)}
	for i := range p.shards {
		eopt := opt.Engine
		if eopt.StoreDir != "" {
			eopt.StoreDir = filepath.Join(eopt.StoreDir, fmt.Sprintf("shard-%d", i))
		}
		eng, err := New(schema, eopt)
		if err != nil {
			p.Close()
			// New's errors are already "situfact: "-prefixed; strip it so
			// the pool wrap doesn't stutter.
			return nil, fmt.Errorf("situfact: pool shard %d: %s", i,
				strings.TrimPrefix(err.Error(), "situfact: "))
		}
		p.shards[i].eng = eng
	}
	return p, nil
}

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// ShardDim returns the name of the dimension attribute rows are routed by.
func (p *Pool) ShardDim() string { return p.schema.rs.Dim(p.shardDim).Name }

// ShardFor returns the shard index owning the given shard-dimension value.
// The mapping is a pure function of the value and the shard count (FNV-1a),
// so routing is deterministic across runs and processes.
func (p *Pool) ShardFor(value string) int {
	h := fnv.New32a()
	h.Write([]byte(value))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// Append routes one arriving row to the shard owning its partition value
// and processes it there. It may be called from any number of goroutines;
// arrivals racing for one shard are serialised in lock-acquisition order
// (direct path) or enqueue order (with the ingest pipeline running —
// see StartPipeline); either way each shard applies them sequentially.
func (p *Pool) Append(dims []string, measures []float64) (*Arrival, error) {
	return p.AppendContext(context.Background(), dims, measures)
}

// AppendContext is Append with a cancellation point at the pipeline's
// queue boundary: a ctx that ends while the caller is parked on a full
// shard queue gives up — the row was never journaled, never applied and
// never acknowledged (IngestStats.Canceled counts it), so a client that
// disconnected under backpressure holds no future. Once the row is
// accepted the cancellation point has passed and the call completes
// like Append.
func (p *Pool) AppendContext(ctx context.Context, dims []string, measures []float64) (*Arrival, error) {
	// Validated before journaling (the engine would reject these too, but
	// a rejected row must not leave a permanent record in the WAL).
	if len(dims) != p.schema.rs.NumDims() {
		return nil, fmt.Errorf("situfact: pool: %d dimension values for %d attributes",
			len(dims), p.schema.rs.NumDims())
	}
	if len(measures) != p.schema.rs.NumMeasures() {
		return nil, fmt.Errorf("situfact: pool: %d measure values for %d attributes",
			len(measures), p.schema.rs.NumMeasures())
	}
	shard := p.ShardFor(dims[p.shardDim])
	// Oversized rows are rejected before the queue or the journal sees
	// them: one defective row must fail alone, not poison a whole drained
	// batch (and must never leave a permanent record in the WAL).
	if p.wal != nil && (persist.Record{Type: persist.RecAppend, Shard: shard,
		Dims: dims, Measures: measures}).Oversized() {
		return nil, fmt.Errorf("situfact: pool: %w (the WAL caps one record at 16 MiB)", ErrRowTooLarge)
	}
	if pipe := p.pipe.Load(); pipe != nil {
		if arr, err, handled := p.pipelineAppend(ctx, pipe, shard, dims, measures); handled {
			return arr, err
		}
	}
	return p.directAppend(shard, dims, measures)
}

// directAppend is the unpipelined ingest path: journal and apply under
// the shard's lock, then wait out the record's fsync. The caller has
// already validated the row and resolved its shard.
func (p *Pool) directAppend(shard int, dims []string, measures []float64) (*Arrival, error) {
	s := &p.shards[shard]
	s.mu.Lock()
	lsn, err := p.journalAppend(shard, dims, measures)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("situfact: pool: %w", err)
	}
	arr, err := s.eng.Append(dims, measures)
	if err == nil && lsn > 0 {
		s.lastLSN = lsn
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Durability wait happens outside the shard lock: later arrivals for
	// this shard can journal meanwhile and share the same fsync.
	if lsn > 0 {
		if err := p.wal.commit(lsn); err != nil {
			return nil, fmt.Errorf("situfact: pool: %w: %w", ErrWALFailed, err)
		}
	}
	arr.Shard = shard
	return arr, nil
}

// journalAppend journals one append when a WAL is attached. Caller holds
// the owning shard's lock. Errors wrap ErrWALFailed (the request was
// fine; the log was not) and carry no "situfact:" prefix — callers add
// their own context.
func (p *Pool) journalAppend(shard int, dims []string, measures []float64) (uint64, error) {
	if p.wal == nil {
		return 0, nil
	}
	rec := persist.Record{
		Type: persist.RecAppend, Shard: shard, Dims: dims, Measures: measures,
	}
	if rec.Oversized() {
		// The row, not the log, is at fault — do not wrap ErrWALFailed,
		// which callers treat as retryable.
		return 0, fmt.Errorf("%w (the WAL caps one record at 16 MiB)", ErrRowTooLarge)
	}
	lsn, err := p.wal.w.Append(rec)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrWALFailed, err)
	}
	return lsn, nil
}

// AppendBatch routes a batch of rows across the shards and processes the
// shards concurrently. Within a shard, rows are processed in input order;
// the returned arrivals are in input order (arrival i belongs to row i).
//
// The batch is pre-validated: a malformed row fails the whole call before
// any row is processed. An engine error mid-batch stops that shard and is
// reported after the remaining shards finish; arrivals already produced
// (including later rows of unaffected shards) are returned alongside the
// error, with the failed shard's unprocessed entries left nil. With the
// ingest pipeline running (StartPipeline) the rows fan out to the shard
// writers instead: every row is journaled and attempted — an engine error
// on one row no longer stops that shard's later rows — and failures are
// joined per row, with only the failed rows' entries nil.
func (p *Pool) AppendBatch(rows []Row) ([]*Arrival, error) {
	return p.AppendBatchContext(context.Background(), rows)
}

// AppendBatchContext is AppendBatch with the same queue-boundary
// cancellation as AppendContext: rows already enqueued when ctx ends
// complete normally, rows not yet enqueued fail with ctx's error.
func (p *Pool) AppendBatchContext(ctx context.Context, rows []Row) ([]*Arrival, error) {
	d, m := p.schema.rs.NumDims(), p.schema.rs.NumMeasures()
	for i, r := range rows {
		if len(r.Dims) != d || len(r.Measures) != m {
			return nil, fmt.Errorf("situfact: pool: row %d has %d/%d values for a %d/%d schema",
				i, len(r.Dims), len(r.Measures), d, m)
		}
		// Pre-check with the batch's widest possible shard index: the
		// shard varint contributes to the encoded size, and a pre-check
		// with shard 0 could pass a row that journalAppend's re-check
		// (with the real shard) rejects mid-batch.
		if p.wal != nil && (persist.Record{Type: persist.RecAppend, Shard: len(p.shards) - 1,
			Dims: r.Dims, Measures: r.Measures}).Oversized() {
			return nil, fmt.Errorf("situfact: pool: row %d: %w (the WAL caps one record at 16 MiB)",
				i, ErrRowTooLarge)
		}
	}
	if pipe := p.pipe.Load(); pipe != nil {
		return p.pipelineAppendBatch(ctx, pipe, rows)
	}
	perShard := make([][]int, len(p.shards))
	for i, r := range rows {
		s := p.ShardFor(r.Dims[p.shardDim])
		perShard[s] = append(perShard[s], i)
	}
	out := make([]*Arrival, len(rows))
	errs := make([]error, len(p.shards))
	maxLSN := make([]uint64, len(p.shards))
	var wg sync.WaitGroup
	for s, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			sh := &p.shards[s]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			for _, i := range idxs {
				lsn, err := p.journalAppend(s, rows[i].Dims, rows[i].Measures)
				if err != nil {
					errs[s] = fmt.Errorf("situfact: pool shard %d, row %d: %w", s, i, err)
					return
				}
				arr, err := sh.eng.Append(rows[i].Dims, rows[i].Measures)
				if err != nil {
					errs[s] = fmt.Errorf("situfact: pool shard %d, row %d: %w", s, i, err)
					return
				}
				if lsn > 0 {
					sh.lastLSN = lsn
					maxLSN[s] = lsn
				}
				arr.Shard = s
				out[i] = arr
			}
		}(s, idxs)
	}
	wg.Wait()
	// One durability wait covers the whole batch: a single group-committed
	// fsync at the highest journaled LSN.
	if p.wal != nil {
		var top uint64
		for _, l := range maxLSN {
			if l > top {
				top = l
			}
		}
		if top > 0 {
			if err := p.wal.commit(top); err != nil {
				errs = append(errs, fmt.Errorf("situfact: pool: %w: %w", ErrWALFailed, err))
			}
		}
	}
	return out, errors.Join(errs...)
}

// Delete retracts tuple tupleID of the given shard — TupleIDs are
// per-shard substream positions, so the pair (shard, tupleID) from an
// Arrival names a tuple uniquely. Like Engine.Delete it requires the
// BottomUp family.
func (p *Pool) Delete(shard int, tupleID int64) error {
	return p.DeleteContext(context.Background(), shard, tupleID)
}

// DeleteContext is Delete with the same queue-boundary cancellation as
// AppendContext.
func (p *Pool) DeleteContext(ctx context.Context, shard int, tupleID int64) error {
	if shard < 0 || shard >= len(p.shards) {
		return fmt.Errorf("situfact: pool: shard %d of %d: %w", shard, len(p.shards), ErrNotFound)
	}
	if !p.CanDelete() {
		// Reject before journaling: a RecDelete from an engine that cannot
		// delete would abort every future replay of the log.
		return fmt.Errorf("situfact: pool: Delete requires the BottomUp family; engines run %s: %w",
			p.Algorithm(), ErrDeleteUnsupported)
	}
	if pipe := p.pipe.Load(); pipe != nil {
		if err, handled := p.pipelineDelete(ctx, pipe, shard, tupleID); handled {
			return err
		}
	}
	s := &p.shards[shard]
	s.mu.Lock()
	var lsn uint64
	if p.wal != nil {
		// Journaled before tuple validity is known: a delete that fails
		// below (unknown or tombstoned tuple) re-fails identically at
		// replay, so the record is harmless.
		var jerr error
		lsn, jerr = p.wal.w.Append(persist.Record{
			Type: persist.RecDelete, Shard: shard, TupleID: tupleID,
		})
		if jerr != nil {
			s.mu.Unlock()
			return fmt.Errorf("situfact: pool: %w: %w", ErrWALFailed, jerr)
		}
	}
	err := s.eng.Delete(tupleID)
	if err == nil && lsn > 0 {
		s.lastLSN = lsn
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if lsn > 0 {
		if err := p.wal.commit(lsn); err != nil {
			return fmt.Errorf("situfact: pool: %w: %w", ErrWALFailed, err)
		}
	}
	return nil
}

// Algorithm returns the name of the algorithm the shard engines run.
func (p *Pool) Algorithm() string { return p.shards[0].eng.Algorithm() }

// CanDelete reports whether Delete supports this pool's engines (the
// BottomUp family; all shards run the same algorithm).
func (p *Pool) CanDelete() bool { return p.shards[0].eng.CanDelete() }

// Workers returns the discovery goroutines per shard engine (1 for the
// single-threaded algorithms; all shards run the same configuration).
func (p *Pool) Workers() int { return p.shards[0].eng.Workers() }

// ShardStat describes one shard of a pool for monitoring.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Len is the shard's live (appended and not deleted) tuple count.
	Len int
	// Metrics is the shard engine's work counters.
	Metrics Metrics
}

// SetScanQueries selects the read path: false (the default) serves
// QueryFacts/TopFacts from the incremental fact index, true from the
// reference full-scan path. Semantically the two are identical — the
// scan path survives as the reference implementation the equivalence
// tests compare against, and as an escape hatch.
func (p *Pool) SetScanQueries(scan bool) { p.scanQueries.Store(scan) }

// ScanQueries reports whether the reference scan path serves queries.
func (p *Pool) ScanQueries() bool { return p.scanQueries.Load() }

// IndexStat is a monitoring snapshot of the incremental fact index,
// summed over the shards.
type IndexStat struct {
	// Serving reports whether the index (rather than the reference scan
	// path) answers queries: the pool's engines maintain one and
	// SetScanQueries(true) was not called.
	Serving bool
	// Entries is the live indexed cell count across shards.
	Entries int64
	// Inserts and Deletes count index maintenance operations (snapshot
	// restore and WAL replay rebuild through Inserts too).
	Inserts uint64
	Deletes uint64
	// Seeks counts iterator seek operations: cursor positioning plus
	// predicate-pushdown skips.
	Seeks uint64
}

// IndexStats returns the fact-index counters merged over all shards,
// each shard read under its own lock.
func (p *Pool) IndexStats() IndexStat {
	st := IndexStat{Serving: !p.scanQueries.Load()}
	indexed := false
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		if s.eng.fidx != nil {
			indexed = true
			is := s.eng.fidx.Stats()
			st.Entries += int64(is.Entries)
			st.Inserts += is.Inserts
			st.Deletes += is.Deletes
			st.Seeks += is.Seeks
		}
		s.mu.RUnlock()
	}
	if !indexed {
		st.Serving = false
	}
	return st
}

// ShardStats returns a per-shard monitoring snapshot. Each shard is read
// under its own lock; the slice is not a cross-shard consistent cut (an
// append may land between two reads), which is fine for monitoring —
// shards are independent substreams.
func (p *Pool) ShardStats() []ShardStat {
	out := make([]ShardStat, len(p.shards))
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		out[i] = ShardStat{Shard: i, Len: s.eng.Len(), Metrics: s.eng.Metrics()}
		s.mu.RUnlock()
	}
	return out
}

// Len returns the total number of live tuples across all shards.
func (p *Pool) Len() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		total += s.eng.Len()
		s.mu.RUnlock()
	}
	return total
}

// Metrics returns the work counters merged over all shards.
func (p *Pool) Metrics() Metrics {
	var total Metrics
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		m := s.eng.Metrics()
		s.mu.RUnlock()
		total.Add(m)
	}
	return total
}

// Close releases every shard's resources; all shards are closed even if
// some fail, and the failures are joined. A running ingest pipeline is
// drained and stopped first.
func (p *Pool) Close() error {
	p.StopPipeline()
	var errs []error
	for i := range p.shards {
		if p.shards[i].eng == nil {
			continue // NewPool failed before this shard existed
		}
		if err := p.shards[i].eng.Close(); err != nil {
			errs = append(errs, fmt.Errorf("situfact: pool shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// DestroyStore removes the on-disk store directories of file-backed
// shards; it is a no-op for in-memory pools.
func (p *Pool) DestroyStore() error {
	var errs []error
	for i := range p.shards {
		if p.shards[i].eng == nil {
			continue
		}
		if err := p.shards[i].eng.DestroyStore(); err != nil {
			errs = append(errs, fmt.Errorf("situfact: pool shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
