package situfact

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// queryTestSchema builds a small 4-dim / 3-measure schema whose low
// cardinality forces heavy cell overlap — the regime where filter and
// pagination bugs hide.
func queryTestSchema(t *testing.T) *Schema {
	t.Helper()
	schema, err := NewSchemaBuilder("qtest").
		Dimension("region").Dimension("kind").Dimension("tier").Dimension("label").
		Measure("score", LargerBetter).
		Measure("cost", SmallerBetter).
		Measure("bonus", LargerBetter).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// randomRow draws a row under tight per-dimension cardinality.
func randomRow(rng *rand.Rand) Row {
	return Row{
		Dims: []string{
			fmt.Sprintf("region-%d", rng.Intn(3)),
			fmt.Sprintf("kind-%d", rng.Intn(3)),
			fmt.Sprintf("tier-%d", rng.Intn(2)),
			fmt.Sprintf("label-%d", rng.Intn(4)),
		},
		Measures: []float64{
			float64(rng.Intn(8)),
			float64(rng.Intn(8)),
			float64(rng.Intn(8)),
		},
	}
}

// factKey is the canonical comparable form of a QueryFact: every exported
// field, so two facts compare equal exactly when a client would see them
// as equal.
func factKey(q QueryFact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard=%d|", q.Shard)
	for _, c := range q.Conditions {
		fmt.Fprintf(&b, "%s=%s,", c.Attr, c.Value)
	}
	fmt.Fprintf(&b, "|%s|ctx=%d|sky=%d|prom=%v|ids=%v",
		strings.Join(q.Measures, ","), q.ContextSize, q.SkylineSize, q.Prominence, q.TupleIDs)
	return b.String()
}

// applyFilterRef filters a full scan the straightforward way — the
// brute-force reference QueryFacts is checked against.
func applyFilterRef(all []QueryFact, f FactFilter) []QueryFact {
	var out []QueryFact
	for _, q := range all {
		if f.Shard >= 0 && q.Shard != f.Shard {
			continue
		}
		ok := true
		for _, want := range f.Conditions {
			found := false
			for _, c := range q.Conditions {
				if c.Attr == want.Attr && c.Value == want.Value {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if len(f.Measures) > 0 {
			want := append([]string(nil), f.Measures...)
			got := append([]string(nil), q.Measures...)
			sort.Strings(want)
			sort.Strings(got)
			if strings.Join(want, ",") != strings.Join(got, ",") {
				continue
			}
		}
		if f.WithTuple {
			found := false
			for _, id := range q.TupleIDs {
				if id == f.TupleID {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, q)
	}
	return out
}

// collectPaginated drains QueryFacts page by page under the given limit,
// following cursors to the end.
func collectPaginated(t *testing.T, p *Pool, f FactFilter, limit int) []QueryFact {
	t.Helper()
	var out []QueryFact
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 100000 {
			t.Fatal("pagination does not terminate")
		}
		page, err := p.QueryFacts(f, cursor, limit)
		if err != nil {
			t.Fatalf("QueryFacts(cursor %q): %v", cursor, err)
		}
		out = append(out, page.Facts...)
		if page.NextCursor == "" {
			return out
		}
		cursor = page.NextCursor
	}
}

// TestPoolQueryEquivalence is the query-level divergence proof: a sharded
// pool's filtered, paginated scans must equal a brute-force filter over
// the union of per-shard solo engines fed the identical partitioned
// stream — for randomized filters and page sizes, across interleaved
// appends and deletes.
func TestPoolQueryEquivalence(t *testing.T) {
	const shards = 3
	const rowsPerRound = 60
	const rounds = 3
	schema := queryTestSchema(t)
	rng := rand.New(rand.NewSource(7))

	pool, err := NewPool(schema, PoolOptions{Shards: shards, ShardDim: "region"})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Solo engines, one per shard, fed exactly the rows the pool routes
	// there — per-shard tuple ids then coincide by construction.
	solo := make([]*Engine, shards)
	for i := range solo {
		if solo[i], err = New(schema, Options{}); err != nil {
			t.Fatal(err)
		}
		defer solo[i].Close()
	}

	var rows []Row // every live row, for drawing realistic filter values
	type handle struct {
		shard int
		id    int64
	}
	var live []handle
	for round := 0; round < rounds; round++ {
		for i := 0; i < rowsPerRound; i++ {
			r := randomRow(rng)
			rows = append(rows, r)
			arr, err := pool.Append(r.Dims, r.Measures)
			if err != nil {
				t.Fatal(err)
			}
			shard := pool.ShardFor(r.Dims[0])
			if arr.Shard != shard {
				t.Fatalf("pool routed to shard %d, ShardFor says %d", arr.Shard, shard)
			}
			sarr, err := solo[shard].Append(r.Dims, r.Measures)
			if err != nil {
				t.Fatal(err)
			}
			if sarr.TupleID != arr.TupleID {
				t.Fatalf("solo engine assigned tuple id %d, pool assigned %d", sarr.TupleID, arr.TupleID)
			}
			live = append(live, handle{shard: arr.Shard, id: arr.TupleID})
		}
		// Retract a few random tuples on both sides.
		for i := 0; i < 5 && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			h := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := pool.Delete(h.shard, h.id); err != nil {
				t.Fatal(err)
			}
			if err := solo[h.shard].Delete(h.id); err != nil {
				t.Fatal(err)
			}
		}

		// Reference: the union of full unfiltered per-shard scans.
		var all []QueryFact
		for shard, eng := range solo {
			plan, err := pool.planQuery(FactFilter{Shard: AllShards, TupleID: -1})
			if err != nil {
				t.Fatal(err)
			}
			facts, err := eng.queryFacts(plan, shard)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, facts...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Shard != all[j].Shard {
				return all[i].Shard < all[j].Shard
			}
			if all[i].sortKey != all[j].sortKey {
				return all[i].sortKey < all[j].sortKey
			}
			return all[i].sortMask < all[j].sortMask
		})

		// Randomized filters against the reference, each drained through
		// randomized page sizes.
		measureNames := []string{"score", "cost", "bonus"}
		for trial := 0; trial < 25; trial++ {
			f := FactFilter{Shard: AllShards, TupleID: -1}
			if rng.Intn(3) == 0 {
				f.Shard = rng.Intn(shards)
			}
			for _, attr := range []string{"region", "kind", "tier", "label"} {
				if rng.Intn(4) != 0 {
					continue
				}
				var val string
				if rng.Intn(5) == 0 {
					val = "never-ingested" // matches nothing anywhere
				} else {
					r := rows[rng.Intn(len(rows))]
					switch attr {
					case "region":
						val = r.Dims[0]
					case "kind":
						val = r.Dims[1]
					case "tier":
						val = r.Dims[2]
					case "label":
						val = r.Dims[3]
					}
				}
				f.Conditions = append(f.Conditions, Condition{Attr: attr, Value: val})
			}
			if rng.Intn(3) == 0 {
				k := 1 + rng.Intn(3)
				perm := rng.Perm(len(measureNames))
				for _, i := range perm[:k] {
					f.Measures = append(f.Measures, measureNames[i])
				}
			}
			if rng.Intn(5) == 0 && len(live) > 0 {
				h := live[rng.Intn(len(live))]
				f.Shard = h.shard
				f.WithTuple = true
				f.TupleID = h.id
			}

			want := applyFilterRef(all, f)
			limit := 1 + rng.Intn(7)
			got := collectPaginated(t, pool, f, limit)
			if len(got) != len(want) {
				t.Fatalf("round %d trial %d (filter %+v, limit %d): %d facts, reference has %d",
					round, trial, f, limit, len(got), len(want))
			}
			for i := range got {
				if factKey(got[i]) != factKey(want[i]) {
					t.Fatalf("round %d trial %d (filter %+v, limit %d): fact %d differs:\n  got  %s\n  want %s",
						round, trial, f, limit, i, factKey(got[i]), factKey(want[i]))
				}
			}
			// The no-limit scan must agree with its own pagination.
			whole := collectPaginated(t, pool, f, 0)
			if len(whole) != len(want) {
				t.Fatalf("round %d trial %d: unpaginated scan has %d facts, reference %d",
					round, trial, len(whole), len(want))
			}
		}
	}
}

// collectPages walks the full cursor chain, keeping every page whole —
// facts, internal sort coordinates, and the NextCursor strings — so two
// read paths can be compared byte-for-byte, pagination artifacts included.
func collectPages(t *testing.T, p *Pool, f FactFilter, limit int) []FactPage {
	t.Helper()
	var out []FactPage
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 100000 {
			t.Fatal("pagination does not terminate")
		}
		page, err := p.QueryFacts(f, cursor, limit)
		if err != nil {
			t.Fatalf("QueryFacts(cursor %q): %v", cursor, err)
		}
		out = append(out, page)
		if page.NextCursor == "" {
			return out
		}
		cursor = page.NextCursor
	}
}

// randomQueryFilter draws a filter the way TestPoolQueryEquivalence does:
// random shard restriction, conditions sampled from ingested rows (with
// the occasional never-seen value), measure subsets, and tuple membership.
func randomQueryFilter(rng *rand.Rand, shards int, rows []Row, live []poolHandle) FactFilter {
	f := FactFilter{Shard: AllShards, TupleID: -1}
	if rng.Intn(3) == 0 {
		f.Shard = rng.Intn(shards)
	}
	for d, attr := range []string{"region", "kind", "tier", "label"} {
		if rng.Intn(4) != 0 {
			continue
		}
		val := "never-ingested"
		if rng.Intn(5) != 0 && len(rows) > 0 {
			val = rows[rng.Intn(len(rows))].Dims[d]
		}
		f.Conditions = append(f.Conditions, Condition{Attr: attr, Value: val})
	}
	if rng.Intn(3) == 0 {
		names := []string{"score", "cost", "bonus"}
		k := 1 + rng.Intn(3)
		for _, i := range rng.Perm(3)[:k] {
			f.Measures = append(f.Measures, names[i])
		}
	}
	if rng.Intn(5) == 0 && len(live) > 0 {
		h := live[rng.Intn(len(live))]
		f.Shard = h.shard
		f.WithTuple = true
		f.TupleID = h.id
	}
	return f
}

type poolHandle struct {
	shard int
	id    int64
}

// comparePaths drains random filtered queries through both read paths and
// fails on the first byte-level difference: page boundaries, cursor
// strings, fact contents, and internal sort coordinates must all agree.
func comparePaths(t *testing.T, pool *Pool, rng *rand.Rand, shards, trials int, rows []Row, live []poolHandle, label string) {
	t.Helper()
	for trial := 0; trial < trials; trial++ {
		f := randomQueryFilter(rng, shards, rows, live)
		limit := rng.Intn(7) // 0 = unpaginated
		pool.SetScanQueries(false)
		idxPages := collectPages(t, pool, f, limit)
		pool.SetScanQueries(true)
		scanPages := collectPages(t, pool, f, limit)
		pool.SetScanQueries(false)
		if len(idxPages) != len(scanPages) {
			t.Fatalf("%s trial %d (filter %+v, limit %d): index path made %d pages, scan path %d",
				label, trial, f, limit, len(idxPages), len(scanPages))
		}
		for pi := range idxPages {
			ip, sp := idxPages[pi], scanPages[pi]
			if ip.NextCursor != sp.NextCursor {
				t.Fatalf("%s trial %d page %d: cursor %q (index) vs %q (scan)",
					label, trial, pi, ip.NextCursor, sp.NextCursor)
			}
			if len(ip.Facts) != len(sp.Facts) {
				t.Fatalf("%s trial %d page %d: %d facts (index) vs %d (scan)",
					label, trial, pi, len(ip.Facts), len(sp.Facts))
			}
			for i := range ip.Facts {
				a, b := ip.Facts[i], sp.Facts[i]
				if factKey(a) != factKey(b) || a.sortKey != b.sortKey || a.sortMask != b.sortMask {
					t.Fatalf("%s trial %d page %d fact %d differs:\n  index %s (%x/%d)\n  scan  %s (%x/%d)",
						label, trial, pi, i, factKey(a), a.sortKey, a.sortMask, factKey(b), b.sortKey, b.sortMask)
				}
			}
		}
	}
}

// TestPoolQueryIndexScanEquivalence is the index-vs-scan divergence
// proof: under random interleaved appends, deletes, mid-stream
// checkpoints, and full restarts (snapshot restore + WAL tail replay —
// the paths that REBUILD the index rather than grow it), every filtered,
// paginated query must come back byte-identical from the incremental
// fact index and from the reference scan, cursor strings included.
func TestPoolQueryIndexScanEquivalence(t *testing.T) {
	const shards = 3
	schema := queryTestSchema(t)
	rng := rand.New(rand.NewSource(11))
	walDir, snapDir := t.TempDir(), t.TempDir()

	pool, err := NewPool(schema, PoolOptions{Shards: shards, ShardDim: "region"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(pool, walDir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	var rows []Row
	var live []poolHandle
	mutate := func(appends, deletes int) {
		t.Helper()
		for i := 0; i < appends; i++ {
			r := randomRow(rng)
			rows = append(rows, r)
			arr, err := pool.Append(r.Dims, r.Measures)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, poolHandle{shard: arr.Shard, id: arr.TupleID})
		}
		for i := 0; i < deletes && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			h := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := pool.Delete(h.shard, h.id); err != nil {
				t.Fatal(err)
			}
		}
	}

	for phase := 0; phase < 3; phase++ {
		mutate(50, 6)
		if phase != 1 {
			// Checkpoint mid-phase so the coming restart restores a snapshot
			// AND replays a WAL tail past it; phase 1 restarts from the
			// previous snapshot with a longer tail instead.
			if _, err := pool.Checkpoint(snapDir, nil); err != nil {
				t.Fatal(err)
			}
		}
		mutate(25, 4)
		comparePaths(t, pool, rng, shards, 20, rows, live, fmt.Sprintf("phase %d", phase))

		// Full fact set (for the cross-restart identity check below).
		before := collectPaginated(t, pool, FactFilter{Shard: AllShards, TupleID: -1}, 0)

		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		pool, _, err = RestorePool(schema, snapDir)
		if err != nil {
			t.Fatal(err)
		}
		w, err = OpenWAL(pool, walDir, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pool.ReplayWAL(w, nil); err != nil {
			t.Fatal(err)
		}
		if err := pool.AttachWAL(w); err != nil {
			t.Fatal(err)
		}
		after := collectPaginated(t, pool, FactFilter{Shard: AllShards, TupleID: -1}, 0)
		if len(before) != len(after) {
			t.Fatalf("phase %d: restart changed fact count %d -> %d", phase, len(before), len(after))
		}
		for i := range before {
			if factKey(before[i]) != factKey(after[i]) {
				t.Fatalf("phase %d: restart changed fact %d:\n  before %s\n  after  %s",
					phase, i, factKey(before[i]), factKey(after[i]))
			}
		}
		comparePaths(t, pool, rng, shards, 10, rows, live, fmt.Sprintf("phase %d post-restart", phase))
	}
	if st := pool.IndexStats(); !st.Serving || st.Entries == 0 || st.Seeks == 0 {
		t.Fatalf("index stats %+v: want serving with entries and seeks", st)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryFactsValidation pins the query layer's error contract.
func TestQueryFactsValidation(t *testing.T) {
	schema := queryTestSchema(t)
	pool, err := NewPool(schema, PoolOptions{Shards: 2, ShardDim: "region"})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Append(
		[]string{"region-0", "kind-0", "tier-0", "label-0"},
		[]float64{1, 2, 3},
	); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		filter FactFilter
		cursor string
		substr string
	}{
		{"unknown attribute", FactFilter{Shard: AllShards, Conditions: []Condition{{Attr: "nope", Value: "x"}}}, "", "unknown dimension attribute"},
		{"conflicting values", FactFilter{Shard: AllShards, Conditions: []Condition{
			{Attr: "kind", Value: "a"}, {Attr: "kind", Value: "b"},
		}}, "", "constrained to both"},
		{"unknown measure", FactFilter{Shard: AllShards, Measures: []string{"nope"}}, "", "unknown measure attribute"},
		{"tuple without shard", FactFilter{Shard: AllShards, WithTuple: true, TupleID: 0}, "", "needs a shard"},
		{"negative tuple id", FactFilter{Shard: 0, WithTuple: true, TupleID: -1}, "", "negative tuple id"},
		{"shard out of range", FactFilter{Shard: 7}, "", "shard 7 of 2"},
		{"malformed cursor", FactFilter{Shard: AllShards}, "!!!not-base64!!!", "malformed cursor"},
		{"cursor shard mismatch", FactFilter{Shard: 1},
			encodeCursor(queryCursor{shard: 0, key: "", mask: 0}), "belongs to a different query"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := pool.QueryFacts(tc.filter, tc.cursor, 10)
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("err = %v, want substring %q", err, tc.substr)
			}
		})
	}

	// Duplicate non-conflicting conditions collapse instead of erroring.
	if _, err := pool.QueryFacts(FactFilter{Shard: AllShards, Conditions: []Condition{
		{Attr: "kind", Value: "kind-0"}, {Attr: "kind", Value: "kind-0"},
	}}, "", 10); err != nil {
		t.Fatalf("duplicate equal conditions: %v", err)
	}
}

// TestPoolTuple pins the point-read contract.
func TestPoolTuple(t *testing.T) {
	schema := queryTestSchema(t)
	pool, err := NewPool(schema, PoolOptions{Shards: 2, ShardDim: "region"})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dims := []string{"region-1", "kind-2", "tier-0", "label-3"}
	meas := []float64{5, 1, 7}
	arr, err := pool.Append(dims, meas)
	if err != nil {
		t.Fatal(err)
	}

	info, err := pool.Tuple(arr.Shard, arr.TupleID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != arr.Shard || info.TupleID != arr.TupleID || info.Deleted {
		t.Fatalf("info = %+v, want shard %d tuple %d live", info, arr.Shard, arr.TupleID)
	}
	if strings.Join(info.Dims, ",") != strings.Join(dims, ",") {
		t.Fatalf("dims = %v, want %v", info.Dims, dims)
	}
	for i, m := range info.Measures {
		if m != meas[i] {
			t.Fatalf("measures = %v, want %v", info.Measures, meas)
		}
	}

	if err := pool.Delete(arr.Shard, arr.TupleID); err != nil {
		t.Fatal(err)
	}
	info, err = pool.Tuple(arr.Shard, arr.TupleID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Deleted {
		t.Fatal("tuple not marked deleted after Delete")
	}

	if _, err := pool.Tuple(arr.Shard, 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-range tuple: err = %v, want ErrNotFound", err)
	}
	if _, err := pool.Tuple(99, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-range shard: err = %v, want ErrNotFound", err)
	}
}
