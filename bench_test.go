package situfact

// Benchmarks regenerating every table and figure of the paper's evaluation
// in testing.B form: one benchmark (family) per figure, one sub-benchmark
// per algorithm/parameter point. Each iteration processes ONE arriving
// tuple against a pre-warmed state, so ns/op is the per-tuple discovery
// latency the paper charts.
//
// For the full experiment drivers (checkpointed series, counters, file
// I/O, prominence distributions) run `go run ./cmd/situbench -exp all`.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/prominence"
	"repro/internal/relation"
)

const benchWarmup = 600 // tuples pre-processed before timing starts

// warmupFor scales the warmup to the algorithm's per-tuple cost so the
// whole suite stays runnable: C-CSC is ~an order slower than the lattice
// algorithms, and the file-backed variants cost SECONDS per tuple (their
// I/O cost is the very thing Figs 12–13 measure).
func warmupFor(id harness.AlgorithmID, base int) int {
	switch id {
	case harness.CCSC:
		return base / 4
	case harness.FSBottomUp, harness.FSTopDown:
		return 6
	default:
		return base
	}
}

// benchStream builds an endless NBA (or weather) feed for benchmarks.
type benchStream struct {
	tb   *relation.Table
	next int
	fill func(n int) error
}

func newBenchStream(b *testing.B, dataset string, d, m int) *benchStream {
	b.Helper()
	switch dataset {
	case "nba":
		g, err := gen.NewNBA(gen.NBAConfig{Seed: 42}, d, m)
		if err != nil {
			b.Fatal(err)
		}
		tb := relation.NewTable(g.Schema())
		return &benchStream{tb: tb, fill: func(n int) error { return g.Fill(tb, n) }}
	case "weather":
		g, err := gen.NewWeather(gen.WeatherConfig{Seed: 42}, d, m)
		if err != nil {
			b.Fatal(err)
		}
		tb := relation.NewTable(g.Schema())
		return &benchStream{tb: tb, fill: func(n int) error { return g.Fill(tb, n) }}
	default:
		b.Fatalf("unknown dataset %s", dataset)
		return nil
	}
}

func (s *benchStream) tuple(b *testing.B, i int) *relation.Tuple {
	for i >= s.tb.Len() {
		if err := s.fill(4096); err != nil {
			b.Fatal(err)
		}
	}
	return s.tb.At(i)
}

// benchAlgorithm measures per-tuple Process latency after warmup.
func benchAlgorithm(b *testing.B, dataset string, d, m int, id harness.AlgorithmID, warmup int) {
	b.Helper()
	s := newBenchStream(b, dataset, d, m)
	cfg := core.Config{Schema: s.tb.Schema(), MaxBound: 4, MaxMeasure: -1}
	dir := ""
	if id == harness.FSBottomUp || id == harness.FSTopDown {
		dir = b.TempDir()
	}
	disc, err := harness.NewDiscoverer(id, cfg, dir)
	if err != nil {
		b.Fatal(err)
	}
	defer disc.Close()
	for i := 0; i < warmup; i++ {
		disc.Process(s.tuple(b, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disc.Process(s.tuple(b, warmup+i))
	}
	b.StopTimer()
	met := disc.Metrics()
	if met.Tuples > 0 {
		b.ReportMetric(float64(met.Comparisons)/float64(met.Tuples), "cmp/tuple")
		b.ReportMetric(float64(met.Traversed)/float64(met.Tuples), "constraints/tuple")
	}
	b.ReportMetric(float64(disc.StoreStats().StoredTuples), "stored-entries")
}

// BenchmarkFig7 covers Figure 7: baselines vs BottomUp/TopDown on NBA.
// 7a is the n-series (per-tuple latency at the warm point); 7b/7c sweep d
// and m.
func BenchmarkFig7(b *testing.B) {
	algs := []harness.AlgorithmID{harness.BaselineSeq, harness.BaselineIdx, harness.CCSC,
		harness.BottomUp, harness.TopDown}
	for _, id := range algs {
		b.Run(fmt.Sprintf("a/n/%s", id), func(b *testing.B) {
			benchAlgorithm(b, "nba", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
	for _, d := range []int{4, 5, 6, 7} {
		for _, id := range algs {
			b.Run(fmt.Sprintf("b/d=%d/%s", d, id), func(b *testing.B) {
				benchAlgorithm(b, "nba", d, 7, id, warmupFor(id, benchWarmup/2))
			})
		}
	}
	for _, m := range []int{4, 5, 6, 7} {
		for _, id := range algs {
			b.Run(fmt.Sprintf("c/m=%d/%s", m, id), func(b *testing.B) {
				benchAlgorithm(b, "nba", 5, m, id, warmupFor(id, benchWarmup/2))
			})
		}
	}
}

// BenchmarkFig8 covers Figure 8: the sharing variants on NBA.
func BenchmarkFig8(b *testing.B) {
	algs := []harness.AlgorithmID{harness.CCSC, harness.BottomUp, harness.TopDown,
		harness.SBottomUp, harness.STopDown}
	for _, id := range algs {
		b.Run(fmt.Sprintf("a/n/%s", id), func(b *testing.B) {
			benchAlgorithm(b, "nba", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
	for _, d := range []int{4, 5, 6, 7} {
		for _, id := range algs {
			b.Run(fmt.Sprintf("b/d=%d/%s", d, id), func(b *testing.B) {
				benchAlgorithm(b, "nba", d, 7, id, warmupFor(id, benchWarmup/2))
			})
		}
	}
	for _, m := range []int{4, 5, 6, 7} {
		for _, id := range algs {
			b.Run(fmt.Sprintf("c/m=%d/%s", m, id), func(b *testing.B) {
				benchAlgorithm(b, "nba", 5, m, id, warmupFor(id, benchWarmup/2))
			})
		}
	}
}

// BenchmarkFig9 covers Figure 9: the weather dataset.
func BenchmarkFig9(b *testing.B) {
	for _, id := range []harness.AlgorithmID{harness.CCSC, harness.BottomUp, harness.TopDown,
		harness.SBottomUp, harness.STopDown} {
		b.Run(string(id), func(b *testing.B) {
			benchAlgorithm(b, "weather", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
}

// BenchmarkFig10 covers Figure 10 (memory): the stored-entries custom
// metric reported by every sub-benchmark is Fig 10b's quantity; multiply
// by the encoded tuple size for the Fig 10a estimate.
func BenchmarkFig10(b *testing.B) {
	for _, id := range []harness.AlgorithmID{harness.CCSC, harness.BottomUp, harness.TopDown,
		harness.SBottomUp, harness.STopDown} {
		b.Run(string(id), func(b *testing.B) {
			benchAlgorithm(b, "nba", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
}

// BenchmarkFig11 covers Figure 11 (work counters): cmp/tuple and
// constraints/tuple custom metrics are Fig 11a and Fig 11b respectively.
func BenchmarkFig11(b *testing.B) {
	for _, id := range []harness.AlgorithmID{harness.BottomUp, harness.TopDown,
		harness.SBottomUp, harness.STopDown} {
		b.Run(string(id), func(b *testing.B) {
			benchAlgorithm(b, "nba", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
}

// BenchmarkFig12 covers Figure 12: file-based FSBottomUp vs FSTopDown on
// NBA (a: warm per-tuple latency; b/c: d and m sweeps).
func BenchmarkFig12(b *testing.B) {
	fsAlgs := []harness.AlgorithmID{harness.FSBottomUp, harness.FSTopDown}
	for _, id := range fsAlgs {
		b.Run(fmt.Sprintf("a/n/%s", id), func(b *testing.B) {
			benchAlgorithm(b, "nba", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
	for _, d := range []int{4, 6} { // two sweep points: full sweep via cmd/situbench
		for _, id := range fsAlgs {
			b.Run(fmt.Sprintf("b/d=%d/%s", d, id), func(b *testing.B) {
				benchAlgorithm(b, "nba", d, 7, id, warmupFor(id, benchWarmup))
			})
		}
	}
	for _, m := range []int{4, 6} {
		for _, id := range fsAlgs {
			b.Run(fmt.Sprintf("c/m=%d/%s", m, id), func(b *testing.B) {
				benchAlgorithm(b, "nba", 5, m, id, warmupFor(id, benchWarmup))
			})
		}
	}
}

// BenchmarkFig13 covers Figure 13: file-based variants on weather.
func BenchmarkFig13(b *testing.B) {
	for _, id := range []harness.AlgorithmID{harness.FSBottomUp, harness.FSTopDown} {
		b.Run(string(id), func(b *testing.B) {
			benchAlgorithm(b, "weather", 5, 7, id, warmupFor(id, benchWarmup))
		})
	}
}

// BenchmarkFig14_15 covers Figures 14–15 and the §VII case study: the full
// prominent-fact pipeline (discovery + context counting + scoring +
// threshold test) per arriving tuple under d̂=3, m̂=3.
func BenchmarkFig14_15(b *testing.B) {
	s := newBenchStream(b, "nba", 5, 7)
	cfg := core.Config{Schema: s.tb.Schema(), MaxBound: 3, MaxMeasure: 3}
	alg, err := core.NewSBottomUp(cfg)
	if err != nil {
		b.Fatal(err)
	}
	counter := core.NewContextCounter(5, 3)
	process := func(i int) int {
		tu := s.tuple(b, i)
		facts := alg.Process(tu)
		counter.Observe(tu)
		scored := prominence.Score(facts, counter, alg)
		return len(prominence.Prominent(scored, 50))
	}
	for i := 0; i < benchWarmup; i++ {
		process(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	promFacts := 0
	for i := 0; i < b.N; i++ {
		promFacts += process(benchWarmup + i)
	}
	b.StopTimer()
	b.ReportMetric(float64(promFacts)/float64(b.N)*1000, "prominent/1Ktuples")
}

// BenchmarkTable1Quickstart measures the end-to-end public API on the
// paper's Table I mini-world (the quickstart workload): 7 arrivals with
// prominence ranking.
func BenchmarkTable1Quickstart(b *testing.B) {
	rows := []struct {
		d []string
		m []float64
	}{
		{[]string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, []float64{4, 12, 5}},
		{[]string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, []float64{24, 5, 15}},
		{[]string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, []float64{13, 13, 5}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3}},
		{[]string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, []float64{27, 18, 8}},
		{[]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, []float64{12, 13, 5}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		schema, err := NewSchemaBuilder("gamelog").
			Dimension("player").Dimension("month").Dimension("season").
			Dimension("team").Dimension("opp_team").
			Measure("points", LargerBetter).
			Measure("assists", LargerBetter).
			Measure("rebounds", LargerBetter).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		eng, err := New(schema, Options{})
		if err != nil {
			b.Fatal(err)
		}
		var last *Arrival
		for _, r := range rows {
			if last, err = eng.Append(r.d, r.m); err != nil {
				b.Fatal(err)
			}
		}
		if len(last.Facts) != 195 {
			b.Fatalf("|S_t7| = %d", len(last.Facts))
		}
		eng.Close()
	}
}

// BenchmarkPoolAppend measures sharded ingest throughput on the NBA feed,
// partitioned by team: each iteration accounts for one arriving row, fanned
// to the pool in batches of 64 via AppendBatch. ns/op is the amortised
// per-row ingest latency — with GOMAXPROCS ≥ the shard count it falls as
// shards grow, since batches are absorbed by the shards concurrently while
// per-shard results stay exactly sequential. (On a single-core box the
// sweep degenerates to measuring fan-out overhead.) Each shard count runs
// both ingest paths: direct (per-shard lock per sub-batch) and pipelined
// (per-shard batching writers, StartPipeline).
func BenchmarkPoolAppend(b *testing.B) {
	const batch = 64
	const nRows = 4096
	for _, shards := range []int{1, 2, 4, 8} {
		for _, mode := range []string{"direct", "pipelined"} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(b *testing.B) {
				s := newBenchStream(b, "nba", 5, 7)
				s.tuple(b, nRows-1) // force generation
				dict := s.tb.Dict()
				d := s.tb.Schema().NumDims()
				rows := make([]Row, nRows)
				for i := range rows {
					tu := s.tb.At(i)
					dims := make([]string, d)
					for j := 0; j < d; j++ {
						dims[j] = dict.Decode(j, tu.Dims[j])
					}
					rows[i] = Row{Dims: dims, Measures: tu.Raw}
				}
				pool, err := NewPool(WrapSchema(s.tb.Schema()), PoolOptions{
					Shards:   shards,
					ShardDim: "team",
					Engine:   Options{MaxBoundDims: 3, MaxMeasureDims: 3},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				if mode == "pipelined" {
					if err := pool.StartPipeline(PipelineOptions{}); err != nil {
						b.Fatal(err)
					}
				}
				// One reusable batch buffer: allocating it inside the timed
				// loop would charge harness cost to allocs/op, masking the
				// engine's own allocation behaviour.
				chunk := make([]Row, batch)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += batch {
					n := batch
					if rem := b.N - i; rem < n {
						n = rem
					}
					for j := 0; j < n; j++ {
						chunk[j] = rows[(i+j)%nRows]
					}
					if _, err := pool.AppendBatch(chunk[:n]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(pool.Metrics().StoredTuples), "stored-entries")
			})
		}
	}
}

// BenchmarkPoolQuery measures the read path against a warmed pool on the
// NBA feed: ns/op is one QueryFacts page (limit 100, cursor-advanced so
// successive iterations walk the whole fact set) while the "mixed" mode
// interleaves one appended row per page, so the page pays for read-lock
// acquisition against live ingest rather than an idle pool.
func BenchmarkPoolQuery(b *testing.B) {
	const nRows = 4096
	const pageLimit = 100
	for _, shards := range []int{1, 4} {
		for _, mode := range []string{"page", "mixed"} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(b *testing.B) {
				s := newBenchStream(b, "nba", 5, 7)
				s.tuple(b, nRows-1)
				dict := s.tb.Dict()
				d := s.tb.Schema().NumDims()
				rows := make([]Row, nRows)
				for i := range rows {
					tu := s.tb.At(i)
					dims := make([]string, d)
					for j := 0; j < d; j++ {
						dims[j] = dict.Decode(j, tu.Dims[j])
					}
					rows[i] = Row{Dims: dims, Measures: tu.Raw}
				}
				pool, err := NewPool(WrapSchema(s.tb.Schema()), PoolOptions{
					Shards:   shards,
					ShardDim: "team",
					Engine:   Options{MaxBoundDims: 3, MaxMeasureDims: 3},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				if _, err := pool.AppendBatch(rows); err != nil {
					b.Fatal(err)
				}
				filter := FactFilter{Shard: AllShards, TupleID: -1}
				cursor := ""
				next := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "mixed" {
						if _, err := pool.Append(rows[next%nRows].Dims, rows[next%nRows].Measures); err != nil {
							b.Fatal(err)
						}
						next++
					}
					page, err := pool.QueryFacts(filter, cursor, pageLimit)
					if err != nil {
						b.Fatal(err)
					}
					cursor = page.NextCursor // wraps to "" at the end: restart
				}
			})
		}
	}
}

// BenchmarkPoolQueryDeepCursor pins the pagination complexity class: one
// page at depth 0 versus one page deep in the cursor chain, on the scan
// path (which re-walks and re-sorts every fact before the cursor, so a
// deep page costs O(n)) and the indexed path (seek + O(page) walk, so
// depth must not matter). The index/deep:first ratio staying near 1 while
// scan/deep grows with the fact count is the tentpole's acceptance
// number.
func BenchmarkPoolQueryDeepCursor(b *testing.B) {
	const nRows = 4096
	const pageLimit = 100
	const shards = 4
	s := newBenchStream(b, "nba", 5, 7)
	s.tuple(b, nRows-1)
	dict := s.tb.Dict()
	d := s.tb.Schema().NumDims()
	rows := make([]Row, nRows)
	for i := range rows {
		tu := s.tb.At(i)
		dims := make([]string, d)
		for j := 0; j < d; j++ {
			dims[j] = dict.Decode(j, tu.Dims[j])
		}
		rows[i] = Row{Dims: dims, Measures: tu.Raw}
	}
	pool, err := NewPool(WrapSchema(s.tb.Schema()), PoolOptions{
		Shards:   shards,
		ShardDim: "team",
		Engine:   Options{MaxBoundDims: 3, MaxMeasureDims: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.AppendBatch(rows); err != nil {
		b.Fatal(err)
	}
	filter := FactFilter{Shard: AllShards, TupleID: -1}
	// Walk once to find the chain's midpoint cursor — the "deep" page.
	// Both paths produce byte-identical cursors, so one walk serves both.
	var cursors []string
	cursor := ""
	for {
		page, err := pool.QueryFacts(filter, cursor, pageLimit)
		if err != nil {
			b.Fatal(err)
		}
		if page.NextCursor == "" {
			break
		}
		cursors = append(cursors, page.NextCursor)
		cursor = page.NextCursor
	}
	if len(cursors) < 4 {
		b.Fatalf("only %d pages — too shallow to measure depth", len(cursors)+1)
	}
	deep := cursors[len(cursors)/2]
	b.Logf("%d pages of %d; deep page at depth %d", len(cursors)+1, pageLimit, len(cursors)/2+1)
	for _, path := range []string{"scan", "index"} {
		pool.SetScanQueries(path == "scan")
		for _, probe := range []struct{ name, cursor string }{{"first", ""}, {"deep", deep}} {
			b.Run(fmt.Sprintf("%s/%s", path, probe.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pool.QueryFacts(filter, probe.cursor, pageLimit); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	pool.SetScanQueries(false)
}

// TestMain keeps the benchmark file's imports exercised under plain
// `go test` as well.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
