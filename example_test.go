package situfact_test

import (
	"fmt"
	"log"

	situfact "repro"
)

// The mini-world of the paper's Table I: when David Wesley's 12/13/5 game
// arrives, the engine reports the contexts in which it stands out.
func Example() {
	schema, err := situfact.NewSchemaBuilder("gamelog").
		Dimension("player").Dimension("month").Dimension("season").
		Dimension("team").Dimension("opp_team").
		Measure("points", situfact.LargerBetter).
		Measure("assists", situfact.LargerBetter).
		Measure("rebounds", situfact.LargerBetter).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := situfact.New(schema, situfact.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	rows := []struct {
		dims     []string
		measures []float64
	}{
		{[]string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, []float64{4, 12, 5}},
		{[]string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, []float64{24, 5, 15}},
		{[]string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, []float64{13, 13, 5}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3}},
		{[]string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, []float64{27, 18, 8}},
	}
	for _, r := range rows {
		if _, err := eng.Append(r.dims, r.measures); err != nil {
			log.Fatal(err)
		}
	}
	arr, err := eng.Append(
		[]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"},
		[]float64{12, 13, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("facts: %d\n", len(arr.Facts))
	fmt.Println(arr.Facts[0])
	// Output:
	// facts: 195
	// month=Feb | {assists} (prominence 5 = 5/1)
}

// Narrate renders a fact as a newsroom sentence.
func ExampleNarrate() {
	f := situfact.Fact{
		Conditions:  []situfact.Condition{{Attr: "team", Value: "Pacers"}, {Attr: "opp_team", Value: "Bulls"}},
		Measures:    []string{"points", "rebounds", "assists"},
		ContextSize: 312,
		SkylineSize: 1,
		Prominence:  312,
	}
	fmt.Println(situfact.Narrate(f, "Paul George", map[string]float64{
		"points": 21, "rebounds": 11, "assists": 5,
	}))
	// Output:
	// Paul George (21 points / 11 rebounds / 5 assists) posts the single best points/rebounds/assists line among team=Pacers ∧ opp_team=Bulls — 1 of 1 skyline records out of 312.
}

// A Pool partitions a feed by one dimension across independent engines —
// here, per-team shards of a game log. Facts within a shard are exactly
// those a standalone engine would report over that team's substream.
func ExamplePool() {
	schema, err := situfact.NewSchemaBuilder("gamelog").
		Dimension("team").Dimension("player").
		Measure("points", situfact.LargerBetter).
		Measure("rebounds", situfact.LargerBetter).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	pool, err := situfact.NewPool(schema, situfact.PoolOptions{
		Shards:   2,
		ShardDim: "team",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// A batch fans out across the shards concurrently; rows of one team
	// always meet the same engine, in input order.
	arrs, err := pool.AppendBatch([]situfact.Row{
		{Dims: []string{"Celtics", "Sherman"}, Measures: []float64{13, 5}},
		{Dims: []string{"Pacers", "George"}, Measures: []float64{21, 11}},
		{Dims: []string{"Celtics", "Wesley"}, Measures: []float64{12, 13}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, arr := range arrs {
		fmt.Printf("shard %d tuple %d: %d facts\n", arr.Shard, arr.TupleID, len(arr.Facts))
	}
	fmt.Printf("total tuples: %d\n", pool.Metrics().Tuples)
	// Output:
	// shard 0 tuple 0: 12 facts
	// shard 1 tuple 0: 12 facts
	// shard 0 tuple 1: 10 facts
	// total tuples: 3
}

// Engines support exact retraction of earlier rows (the paper's §VIII
// future-work item) when running the BottomUp family.
func ExampleEngine_Delete() {
	schema, _ := situfact.NewSchemaBuilder("quotes").
		Dimension("symbol").
		Measure("price", situfact.LargerBetter).
		Build()
	eng, _ := situfact.New(schema, situfact.Options{Algorithm: situfact.AlgoBottomUp})
	defer eng.Close()

	eng.Append([]string{"AAA"}, []float64{10})
	eng.Append([]string{"AAA"}, []float64{30}) // id 1: an erroneous spike
	arr, _ := eng.Append([]string{"AAA"}, []float64{20})
	fmt.Printf("before correction: %d facts\n", len(arr.Facts))

	eng.Delete(1) // retract the spike
	arr, _ = eng.Append([]string{"AAA"}, []float64{25})
	fmt.Printf("after correction: %d facts\n", len(arr.Facts))
	// Output:
	// before correction: 0 facts
	// after correction: 2 facts
}
