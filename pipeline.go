package situfact

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ingest"
	"repro/internal/persist"
)

// Pipelined ingest: StartPipeline gives every shard a long-lived writer
// goroutine fed by a bounded queue, decoupling accept → journal → apply
// → respond. Append/AppendBatch/Delete keep their synchronous APIs —
// the caller still returns only after its operation is applied and (with
// a WAL) durable — but instead of taking the shard lock and journaling
// per row, they enqueue an operation and wait on its future. The writer
// drains whatever has queued since its last wakeup and pays the per-row
// overheads once per batch: one WAL append pass (persist.WAL.AppendAll),
// one shard-lock acquisition covering journal + apply, and one
// group-committed fsync. Under load, batches grow and per-row cost
// amortises toward the engine's own apply time; when idle, batches are
// single ops and the path degenerates to the direct one.
//
// Invariants carried over from the direct path, exactly:
//   - journal-before-apply, under the owning shard's lock, so each
//     shard's journal order equals its apply order (Checkpoint's
//     truncation-cover proof depends on this atomicity);
//   - acknowledgement only after the record's group-committed fsync
//     (ack-after-fsync), durability mode per WALOptions;
//   - per-shard FIFO: operations racing for one shard are applied in
//     enqueue order, and one caller's ordered operations stay ordered.
//
// Lifecycle: start the pipeline after recovery (ReplayWAL + AttachWAL)
// and before serving traffic; stop it after in-flight operations have
// drained. Stopping while calls are in flight is a lifecycle race like
// AttachWAL's — in-flight operations still complete correctly (they fall
// back to the direct path), but ordering with the draining writers is no
// longer guaranteed.

// PipelineOptions configures Pool.StartPipeline.
type PipelineOptions struct {
	// QueueDepth bounds each shard's pending-operation queue; a full
	// queue blocks producers until the writer drains (backpressure,
	// counted in IngestStats.FullWaits). <= 0 selects 256.
	QueueDepth int
	// AdaptiveQueue lets each shard's queue capacity float between a
	// floor (QueueDepth/16, at least 16) and QueueDepth instead of
	// sitting at QueueDepth: backpressure grows it, sustained calm
	// shrinks it, so idle shards hold small queues (small worst-case
	// batches and ack latency) while hot shards earn the full depth.
	// IngestStats.Cap and Resizes expose the movement.
	AdaptiveQueue bool
}

// IngestStats is one shard writer's monitoring snapshot: queue depth,
// drained-batch-size histogram, and backpressure counters.
type IngestStats = ingest.Stats

// IngestSummary is the pool-wide merge of the shard writers' snapshots —
// the one place the derived figures (sums, mean batch size, merged
// histogram) are computed, so every consumer (the daemon's /v1/metrics,
// bench reports) agrees on the derivation instead of re-deriving per
// scrape.
type IngestSummary struct {
	// Pipeline reports whether a pipeline is running; false means the
	// remaining fields are zero.
	Pipeline bool
	// QueueDepth and QueueCap sum the shards' pending operations and
	// current queue capacities.
	QueueDepth int
	QueueCap   int
	Enqueued   uint64
	Batches    uint64
	// MeanBatch is Enqueued/Batches (0 before the first drain).
	MeanBatch float64
	MaxBatch  int
	FullWaits uint64
	// Canceled sums producers whose context ended while parked on a full
	// queue: their ops were never accepted, journaled or acknowledged.
	Canceled uint64
	// Resizes sums the shards' adaptive capacity changes.
	Resizes uint64
	// BatchHist is the merged drained-batch-size histogram.
	BatchHist []uint64
	// PerShard holds the underlying snapshots, index = shard.
	PerShard []IngestStats
}

// MergeIngestStats folds per-shard writer snapshots (Pool.PipelineStats)
// into an IngestSummary; nil yields the zero (pipeline-off) summary.
func MergeIngestStats(stats []IngestStats) IngestSummary {
	out := IngestSummary{Pipeline: stats != nil, PerShard: stats}
	if stats == nil {
		return out
	}
	out.BatchHist = make([]uint64, len(IngestStats{}.BatchHist))
	for _, st := range stats {
		out.QueueDepth += st.Depth
		out.QueueCap += st.Cap
		out.Enqueued += st.Enqueued
		out.Batches += st.Batches
		out.FullWaits += st.FullWaits
		out.Canceled += st.Canceled
		out.Resizes += st.Resizes
		if st.MaxBatch > out.MaxBatch {
			out.MaxBatch = st.MaxBatch
		}
		for b, c := range st.BatchHist {
			out.BatchHist[b] += c
		}
	}
	if out.Batches > 0 {
		out.MeanBatch = float64(out.Enqueued) / float64(out.Batches)
	}
	return out
}

// IngestSummary returns the merged monitoring view of the running
// pipeline (the zero summary when none is running).
func (p *Pool) IngestSummary() IngestSummary {
	return MergeIngestStats(p.PipelineStats())
}

// pipeline is the running per-shard writer set plus the shared
// group-committer; Pool.pipe holds it.
type pipeline struct {
	writers []*ingest.Writer[*ingestOp]
	// commits feeds journaled-and-applied batches to the committer
	// goroutine, which coalesces their durability waits into shared
	// fsyncs and completes the futures. Writers hand a batch off here
	// instead of blocking on its fsync themselves, so a shard keeps
	// journaling and applying its next batch while the previous one is
	// being made durable — the fsync rate self-paces to the device
	// (one fsync in flight, everything queued meanwhile joins the next)
	// instead of tracking the batch rate.
	commits    chan commitGroup
	commitDone chan struct{}
	// completions feeds durably-committed batches to the completion
	// worker pool, which wakes the waiting callers. The committer hands
	// completed groups off here instead of calling wg.Done itself, so a
	// slow waiter (descheduled caller, contended runqueue) never delays
	// the next group fsync.
	completions chan completion
	compWG      sync.WaitGroup
}

// completionWorkers is the completion pool's size. Completion is cheap
// (flip two fields, wg.Done) — the pool exists to overlap wakeup latency
// with the committer's next fsync, not to parallelise compute, so a
// small fixed pool suffices at any shard count.
const completionWorkers = 4

// completion is one durably-committed batch whose futures are ready to
// complete; err is the group fsync's failure, if any.
type completion struct {
	ops []*ingestOp
	err error
}

// commitGroup is one drained batch awaiting durability: every op is
// journaled (≤ lsn) and applied, none are acknowledged yet.
type commitGroup struct {
	lsn uint64
	ops []*ingestOp
}

// ingestOp is one queued operation plus its completion future. The
// writer goroutine fills arr/err and calls wg.Done exactly once; the
// enqueuing caller owns the op again after wg.Wait returns.
type ingestOp struct {
	rec persist.Record // Type + Shard, Dims/Measures (append) or TupleID (delete)
	arr *Arrival       // result of a successful append
	err error
	wg  *sync.WaitGroup
}

// opPool recycles ingestOps: steady-state ingest costs no future
// allocations beyond the caller's stack WaitGroup.
var opPool = sync.Pool{New: func() any { return new(ingestOp) }}

func getOp() *ingestOp { return opPool.Get().(*ingestOp) }

func putOp(op *ingestOp) {
	*op = ingestOp{}
	opPool.Put(op)
}

// StartPipeline starts one batching writer per shard and routes every
// subsequent Append/AppendBatch/Delete through it. Call after recovery
// (ReplayWAL/AttachWAL), before serving traffic. A pool accepts one
// pipeline at a time; StopPipeline (or Close) tears it down.
func (p *Pool) StartPipeline(opt PipelineOptions) error {
	pipe := &pipeline{
		writers:     make([]*ingest.Writer[*ingestOp], len(p.shards)),
		commits:     make(chan commitGroup, 4*len(p.shards)),
		commitDone:  make(chan struct{}),
		completions: make(chan completion, 4*len(p.shards)),
	}
	for i := range pipe.writers {
		shard := i
		// recs is the writer's private journal-batch scratch: the writer
		// goroutine is the only user, so one slice serves every batch.
		var recs []persist.Record
		process := func(batch []*ingestOp) {
			recs = p.processShardBatch(pipe, shard, batch, recs[:0])
		}
		if opt.AdaptiveQueue {
			pipe.writers[i] = ingest.NewAdaptiveWriter(0, opt.QueueDepth, process)
		} else {
			pipe.writers[i] = ingest.NewWriter(opt.QueueDepth, process)
		}
	}
	pipe.compWG.Add(completionWorkers)
	for i := 0; i < completionWorkers; i++ {
		go func() {
			defer pipe.compWG.Done()
			for c := range pipe.completions {
				for _, op := range c.ops {
					// A failed durability wait reports ErrWALFailed even
					// where the apply succeeded (matching the direct path);
					// an apply error that already happened keeps its own,
					// more specific error.
					if c.err != nil && op.err == nil {
						op.arr, op.err = nil, c.err
					}
					op.wg.Done()
				}
			}
		}()
	}
	go p.commitLoop(pipe)
	if !p.pipe.CompareAndSwap(nil, pipe) {
		for _, w := range pipe.writers {
			w.Close()
		}
		close(pipe.commits)
		<-pipe.commitDone
		return fmt.Errorf("situfact: pool already has an ingest pipeline")
	}
	return nil
}

// StopPipeline detaches the pipeline, drains every shard's queue, stops
// the writers and the committer; the pool reverts to the direct ingest
// path. A no-op when no pipeline is running.
func (p *Pool) StopPipeline() {
	pipe := p.pipe.Swap(nil)
	if pipe == nil {
		return
	}
	for _, w := range pipe.writers {
		w.Close()
	}
	// Writers are drained and stopped; nothing feeds the committer now.
	close(pipe.commits)
	<-pipe.commitDone
}

// commitLoop is the pipeline's durability stage: it gathers every batch
// the writers have handed off, waits out ONE fsync covering the highest
// LSN among them, and hands the completed groups to the completion pool.
// While that fsync is on disk more batches queue up and join the next
// pass — cross-shard group commit at the granularity of whole batches.
// Futures complete off this goroutine so a slow waiter never stalls the
// next group fsync.
func (p *Pool) commitLoop(pipe *pipeline) {
	defer close(pipe.commitDone)
	// Runs before commitDone closes (LIFO): the completion pool drains
	// every handed-off group, so StopPipeline's wait covers all futures.
	defer func() {
		close(pipe.completions)
		pipe.compWG.Wait()
	}()
	var pending []commitGroup
	for {
		grp, ok := <-pipe.commits
		if !ok {
			return
		}
		pending = append(pending[:0], grp)
		closed := false
	gather:
		for {
			select {
			case g, ok := <-pipe.commits:
				if !ok {
					closed = true
					break gather
				}
				pending = append(pending, g)
			default:
				break gather
			}
		}
		var top uint64
		for _, g := range pending {
			if g.lsn > top {
				top = g.lsn
			}
		}
		err := p.wal.commit(top)
		var werr error
		if err != nil {
			werr = fmt.Errorf("%w: %w", ErrWALFailed, err)
		}
		for _, g := range pending {
			pipe.completions <- completion{ops: g.ops, err: werr}
		}
		if closed {
			return
		}
	}
}

// PipelineStats returns one monitoring snapshot per shard writer, nil
// when no pipeline is running.
func (p *Pool) PipelineStats() []IngestStats {
	pipe := p.pipe.Load()
	if pipe == nil {
		return nil
	}
	out := make([]IngestStats, len(pipe.writers))
	for i, w := range pipe.writers {
		out[i] = w.Stats()
	}
	return out
}

// processShardBatch is the shard writer's drain handler: one WAL append
// pass and one shard-lock acquisition cover the whole batch. The lock
// spans journal + apply so the shard's journal order equals its apply
// order — the same atomicity the direct path gets from journaling under
// the lock, which Checkpoint's truncation cover relies on. Journaled
// batches are then handed to the committer, which completes the futures
// once a group fsync covers them — this writer immediately drains its
// next batch instead of waiting. Unjournaled batches (no WAL) complete
// inline. Errors are stored unwrapped (no "situfact:" prefix); the
// enqueuing caller adds its own context, mirroring journalAppend's
// contract.
func (p *Pool) processShardBatch(pipe *pipeline, shard int, ops []*ingestOp, recs []persist.Record) []persist.Record {
	sh := &p.shards[shard]
	sh.mu.Lock()
	var lastLSN, firstLSN uint64
	if p.wal != nil {
		for _, op := range ops {
			recs = append(recs, op.rec)
		}
		last, err := p.wal.w.AppendAll(recs)
		if err != nil {
			sh.mu.Unlock()
			werr := fmt.Errorf("%w: %w", ErrWALFailed, err)
			for _, op := range ops {
				op.err = werr
				op.wg.Done()
			}
			return recs
		}
		lastLSN = last
		firstLSN = last - uint64(len(ops)) + 1
	}
	for i, op := range ops {
		var lsn uint64
		if lastLSN > 0 {
			lsn = firstLSN + uint64(i)
		}
		switch op.rec.Type {
		case persist.RecAppend:
			arr, err := sh.eng.Append(op.rec.Dims, op.rec.Measures)
			if err != nil {
				// Journaled but failed to apply: replay re-fails the record
				// identically, exactly as on the direct path.
				op.err = err
				continue
			}
			if lsn > 0 {
				sh.lastLSN = lsn
			}
			arr.Shard = shard
			op.arr = arr
		case persist.RecDelete:
			err := sh.eng.Delete(op.rec.TupleID)
			if err == nil && lsn > 0 {
				sh.lastLSN = lsn
			}
			op.err = err
		}
	}
	sh.mu.Unlock()
	if lastLSN > 0 {
		// Hand the batch to the committer. The ops are copied out because
		// the writer recycles its batch slice as soon as this returns.
		pipe.commits <- commitGroup{lsn: lastLSN, ops: append([]*ingestOp(nil), ops...)}
		return recs
	}
	for _, op := range ops {
		op.wg.Done()
	}
	return recs
}

// enqueueWait enqueues op on shard's writer and waits out its future.
// ok reports whether the pipeline accepted the op; when false with a
// nil error (the pipeline stopped mid-call) the caller must run its
// direct path. A non-nil error is ctx's — the caller gave up while
// parked on a full queue, before the op was accepted, so nothing was
// journaled or acknowledged (Stats.Canceled counts it). Cancellation
// only applies at the queue boundary: once accepted the op completes
// and the wait is unconditional (its record may already be journaled).
func (p *Pool) enqueueWait(ctx context.Context, pipe *pipeline, shard int, op *ingestOp) (ok bool, err error) {
	var wg sync.WaitGroup
	wg.Add(1)
	op.wg = &wg
	ok, err = pipe.writers[shard].EnqueueContext(ctx, op)
	if !ok {
		return false, err
	}
	wg.Wait()
	return true, nil
}

// pipelineAppend runs one append through the pipeline. handled reports
// whether the pipeline resolved the call (including by cancellation);
// when false the caller falls back to the direct path.
func (p *Pool) pipelineAppend(ctx context.Context, pipe *pipeline, shard int, dims []string, measures []float64) (arr *Arrival, err error, handled bool) {
	op := getOp()
	op.rec = persist.Record{Type: persist.RecAppend, Shard: shard, Dims: dims, Measures: measures}
	ok, cerr := p.enqueueWait(ctx, pipe, shard, op)
	if !ok {
		putOp(op)
		if cerr != nil {
			return nil, fmt.Errorf("situfact: pool: enqueue canceled: %w", cerr), true
		}
		return nil, nil, false
	}
	arr, err = op.arr, op.err
	putOp(op)
	if err != nil && errors.Is(err, ErrWALFailed) {
		err = fmt.Errorf("situfact: pool: %w", err)
	}
	return arr, err, true
}

// pipelineDelete runs one delete through the pipeline — the same queue
// as appends, so a shard's deletes order with its appends exactly as
// they were enqueued. handled is as in pipelineAppend.
func (p *Pool) pipelineDelete(ctx context.Context, pipe *pipeline, shard int, tupleID int64) (err error, handled bool) {
	op := getOp()
	op.rec = persist.Record{Type: persist.RecDelete, Shard: shard, TupleID: tupleID}
	ok, cerr := p.enqueueWait(ctx, pipe, shard, op)
	if !ok {
		putOp(op)
		if cerr != nil {
			return fmt.Errorf("situfact: pool: enqueue canceled: %w", cerr), true
		}
		return nil, false
	}
	err = op.err
	putOp(op)
	if err != nil && errors.Is(err, ErrWALFailed) {
		err = fmt.Errorf("situfact: pool: %w", err)
	}
	return err, true
}

// pipelineAppendBatch fans rows across the shard writers and waits for
// every future. Rows keep input order within each shard (enqueue order =
// apply order); the returned arrivals are in input order. Unlike the
// direct path, an engine error on one row does not stop that shard's
// later rows — every row is journaled and attempted, and errors are
// joined per row. A ctx that ends mid-fan-out stops ENQUEUING: rows
// already accepted complete normally (they may be journaled), rows not
// yet enqueued fail with ctx's error — never a half-acknowledged row.
func (p *Pool) pipelineAppendBatch(ctx context.Context, pipe *pipeline, rows []Row) ([]*Arrival, error) {
	ops := make([]*ingestOp, len(rows))
	var wg sync.WaitGroup
	wg.Add(len(rows))
	for i, r := range rows {
		shard := p.ShardFor(r.Dims[p.shardDim])
		op := getOp()
		op.rec = persist.Record{Type: persist.RecAppend, Shard: shard, Dims: r.Dims, Measures: r.Measures}
		op.wg = &wg
		ops[i] = op
		ok, cerr := pipe.writers[shard].EnqueueContext(ctx, op)
		if ok {
			continue
		}
		if cerr != nil {
			// Caller canceled while parked: this row (and only this row)
			// was never accepted. Resolve its future locally.
			op.err = fmt.Errorf("enqueue canceled: %w", cerr)
			wg.Done()
			continue
		}
		// Pipeline stopped mid-call (a lifecycle race the API forbids);
		// resolve this row directly so the batch still completes.
		op.arr, op.err = p.directAppend(shard, r.Dims, r.Measures)
		wg.Done()
	}
	wg.Wait()
	out := make([]*Arrival, len(rows))
	var errs []error
	for i, op := range ops {
		out[i] = op.arr
		if op.err != nil {
			errs = append(errs, fmt.Errorf("situfact: pool shard %d, row %d: %w", op.rec.Shard, i, op.err))
		}
		putOp(op)
	}
	return out, errors.Join(errs...)
}
