package situfact

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// Snapshot persistence: SaveSnapshot serialises an in-memory engine's full
// state (dictionary, tuples, tombstones, µ-store cells, prominence
// counters) with encoding/gob so a stream can be resumed later with
// LoadSnapshot — a production necessity the paper leaves implicit (its
// file-based variants persist only the cell store, not the bookkeeping).
//
// Snapshots are supported for engines running the lattice algorithms
// (BottomUp/TopDown families) over the default in-memory store; engines
// with a StoreDir already keep their cells on disk, and baseline engines
// would need their private histories replayed instead.

type snapshotFile struct {
	// Magic guards against decoding foreign files.
	Magic string
	// Schema identity check.
	SchemaSig string
	Algorithm Algorithm
	MaxBound  int
	MaxMeas   int

	DictValues [][]string
	Tuples     []snapTuple
	Deleted    []int64
	Counts     map[string]int64 // nil when prominence is disabled
	Cells      []snapCell
}

type snapTuple struct {
	Dims []int32
	Raw  []float64
}

type snapCell struct {
	CKey string
	M    uint32
	IDs  []int64
}

const snapshotMagic = "situfact-snapshot-v1"

func schemaSig(s *relation.Schema) string {
	return s.String()
}

// SaveSnapshot writes the engine's state to w. See the package note above
// for which engines support it.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	mem, ok := memoryStoreOf(e.disc)
	if !ok {
		return fmt.Errorf("situfact: snapshots require a lattice algorithm over the in-memory store (engine runs %s)", e.disc.Name())
	}
	sf := snapshotFile{
		Magic:     snapshotMagic,
		SchemaSig: schemaSig(e.schema),
		Algorithm: e.algorithm,
		MaxBound:  e.maxBound,
		MaxMeas:   e.maxMeasure,
	}
	d := e.table.Dict()
	sf.DictValues = make([][]string, e.schema.NumDims())
	for i := range sf.DictValues {
		vals := make([]string, d.Cardinality(i))
		for c := range vals {
			vals[c] = d.Decode(i, int32(c))
		}
		sf.DictValues[i] = vals
	}
	for _, tu := range e.table.Tuples() {
		sf.Tuples = append(sf.Tuples, snapTuple{Dims: tu.Dims, Raw: tu.Raw})
	}
	for id := range e.deleted {
		sf.Deleted = append(sf.Deleted, id)
	}
	if e.counter != nil {
		sf.Counts = e.counter.Snapshot()
	}
	mem.Walk(func(k store.CellKey, ts []*relation.Tuple) {
		cell := snapCell{CKey: string(k.C), M: k.M, IDs: make([]int64, len(ts))}
		for i, u := range ts {
			cell.IDs[i] = u.ID
		}
		sf.Cells = append(sf.Cells, cell)
	})
	return gob.NewEncoder(w).Encode(&sf)
}

// LoadSnapshot reconstructs an engine from a snapshot written by
// SaveSnapshot. The schema must match the one the snapshot was taken
// under.
func LoadSnapshot(schema *Schema, r io.Reader) (*Engine, error) {
	if schema == nil || schema.rs == nil {
		return nil, fmt.Errorf("situfact: nil schema")
	}
	var sf snapshotFile
	if err := gob.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("situfact: decode snapshot: %w", err)
	}
	if sf.Magic != snapshotMagic {
		return nil, fmt.Errorf("situfact: not a snapshot file")
	}
	if got := schemaSig(schema.rs); got != sf.SchemaSig {
		return nil, fmt.Errorf("situfact: snapshot schema %q does not match %q", sf.SchemaSig, got)
	}
	eng, err := New(schema, Options{
		Algorithm:         sf.Algorithm,
		MaxBoundDims:      sf.MaxBound,
		MaxMeasureDims:    sf.MaxMeas,
		DisableProminence: sf.Counts == nil,
	})
	if err != nil {
		return nil, err
	}
	mem, ok := memoryStoreOf(eng.disc)
	if !ok {
		return nil, fmt.Errorf("situfact: snapshot algorithm %q has no in-memory store", sf.Algorithm)
	}
	// Rebuild the dictionary in code order, then the table.
	d := eng.table.Dict()
	for dim, vals := range sf.DictValues {
		for _, v := range vals {
			d.Encode(dim, v)
		}
	}
	byID := make(map[int64]*relation.Tuple, len(sf.Tuples))
	for _, st := range sf.Tuples {
		tu, err := eng.table.AppendEncoded(st.Dims, st.Raw)
		if err != nil {
			return nil, fmt.Errorf("situfact: snapshot tuple: %w", err)
		}
		byID[tu.ID] = tu
	}
	for _, id := range sf.Deleted {
		if eng.deleted == nil {
			eng.deleted = make(map[int64]bool)
		}
		eng.deleted[id] = true
	}
	if sf.Counts != nil {
		eng.counter.Restore(sf.Counts)
	}
	for _, cell := range sf.Cells {
		ts := make([]*relation.Tuple, 0, len(cell.IDs))
		for _, id := range cell.IDs {
			tu, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("situfact: snapshot cell references unknown tuple %d", id)
			}
			ts = append(ts, tu)
		}
		mem.Save(store.CellKey{C: lattice.Key(cell.CKey), M: subspace.Mask(cell.M)}, ts)
	}
	return eng, nil
}

// memoryStoreOf extracts the in-memory µ store of a lattice discoverer.
// Baselines embed an (unused) default store too, so the algorithm type is
// checked explicitly: only the BottomUp/TopDown families keep their whole
// state in the µ store.
func memoryStoreOf(d core.Discoverer) (*store.Memory, bool) {
	switch d.(type) {
	case *core.BottomUp, *core.TopDown:
	default:
		return nil, false
	}
	type storer interface{ Store() store.Store }
	s, ok := d.(storer)
	if !ok {
		return nil, false
	}
	mem, ok := s.Store().(*store.Memory)
	return mem, ok
}
