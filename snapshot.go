package situfact

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/persist"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// Snapshot persistence: SaveSnapshot serialises an in-memory engine's full
// state (dictionary, tuples, tombstones, µ-store cells, prominence
// counters) so a stream can be resumed later with LoadSnapshot — a
// production necessity the paper leaves implicit. This file is a thin
// wrapper translating engine/pool state to and from internal/persist,
// which owns the codec, the generational manifest, and the write-ahead
// log (see wal.go for journaling and recovery).
//
// Snapshots are supported for engines running the lattice algorithms
// (BottomUp/TopDown families) over the default in-memory store; engines
// with a StoreDir already keep their cells on disk, and baseline engines
// would need their private histories replayed instead.

func schemaSig(s *relation.Schema) string {
	return s.String()
}

// CanSnapshot reports whether SaveSnapshot supports this engine: a
// lattice algorithm (BottomUp/TopDown family) over the in-memory store.
func (e *Engine) CanSnapshot() bool {
	_, ok := memoryStoreOf(e.disc)
	return ok
}

// CanSnapshot reports whether SaveSnapshot supports this pool's engines.
func (p *Pool) CanSnapshot() bool { return p.shards[0].eng.CanSnapshot() }

// ErrNoSnapshot reports that a directory holds no pool snapshot at all —
// as opposed to holding a corrupt or mismatched one, which is a distinct
// error. Daemons restore-or-start-fresh with errors.Is(err, ErrNoSnapshot);
// any other LoadPoolSnapshot error should fail startup loudly rather than
// silently serving an empty relation over existing state.
var ErrNoSnapshot = errors.New("no pool snapshot")

// SaveSnapshot writes the engine's state to w. See the package note above
// for which engines support it.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	mem, ok := memoryStoreOf(e.disc)
	if !ok {
		return fmt.Errorf("situfact: snapshots require a lattice algorithm over the in-memory store (engine runs %s)", e.disc.Name())
	}
	sf := persist.EngineSnapshot{
		SchemaSig: schemaSig(e.schema),
		Algorithm: string(e.algorithm),
		MaxBound:  e.maxBound,
		MaxMeas:   e.maxMeasure,
	}
	d := e.table.Dict()
	sf.DictValues = make([][]string, e.schema.NumDims())
	for i := range sf.DictValues {
		vals := make([]string, d.Cardinality(i))
		for c := range vals {
			vals[c] = d.Decode(i, int32(c))
		}
		sf.DictValues[i] = vals
	}
	for _, tu := range e.table.Tuples() {
		sf.Tuples = append(sf.Tuples, persist.SnapTuple{Dims: tu.Dims, Raw: tu.Raw})
	}
	for id := range e.deleted {
		sf.Deleted = append(sf.Deleted, id)
	}
	if e.counter != nil {
		sf.Counts = e.counter.Snapshot()
	}
	met := e.Metrics()
	sf.Counters = persist.SnapCounters{
		Tuples: met.Tuples, Comparisons: met.Comparisons,
		Traversed: met.Traversed, Facts: met.Facts,
		StoredTuples: met.StoredTuples, Cells: met.Cells,
		Reads: met.Reads, Writes: met.Writes,
	}
	// Cells persist in logical key→tuple-id form: the wire format is
	// independent of the in-memory SoA layout, so snapshots written before
	// the interned-id refactor restore identically.
	mem.Walk(func(k store.CellKey, c store.Cell) {
		sf.Cells = append(sf.Cells, persist.SnapCell{
			CKey: string(k.C),
			M:    uint32(k.M),
			IDs:  c.IDList(),
		})
	})
	return persist.EncodeEngine(w, &sf)
}

// LoadSnapshot reconstructs an engine from a snapshot written by
// SaveSnapshot. The schema must match the one the snapshot was taken
// under.
func LoadSnapshot(schema *Schema, r io.Reader) (*Engine, error) {
	if schema == nil || schema.rs == nil {
		return nil, fmt.Errorf("situfact: nil schema")
	}
	sf, err := persist.DecodeEngine(r)
	if err != nil {
		return nil, fmt.Errorf("situfact: %w", err)
	}
	if got := schemaSig(schema.rs); got != sf.SchemaSig {
		return nil, fmt.Errorf("situfact: snapshot schema %q does not match %q", sf.SchemaSig, got)
	}
	eng, err := New(schema, Options{
		Algorithm:         Algorithm(sf.Algorithm),
		MaxBoundDims:      sf.MaxBound,
		MaxMeasureDims:    sf.MaxMeas,
		DisableProminence: sf.Counts == nil,
	})
	if err != nil {
		return nil, err
	}
	mem, ok := memoryStoreOf(eng.disc)
	if !ok {
		return nil, fmt.Errorf("situfact: snapshot algorithm %q has no in-memory store", sf.Algorithm)
	}
	// Rebuild the dictionary in code order, then the table.
	d := eng.table.Dict()
	for dim, vals := range sf.DictValues {
		for _, v := range vals {
			d.Encode(dim, v)
		}
	}
	byID := make(map[int64]*relation.Tuple, len(sf.Tuples))
	for _, st := range sf.Tuples {
		tu, err := eng.table.AppendEncoded(st.Dims, st.Raw)
		if err != nil {
			return nil, fmt.Errorf("situfact: snapshot tuple: %w", err)
		}
		byID[tu.ID] = tu
	}
	// Cells store only tuple ids; the discoverer's registry must be able to
	// resolve restored ids (TopDown re-homing, SkylineSize) even though
	// these tuples never went through Process.
	if rt, ok := eng.disc.(interface{ RegisterTuple(*relation.Tuple) }); ok {
		for _, tu := range eng.table.Tuples() {
			rt.RegisterTuple(tu)
		}
	}
	for _, id := range sf.Deleted {
		if eng.deleted == nil {
			eng.deleted = make(map[int64]bool)
		}
		eng.deleted[id] = true
	}
	if sf.Counts != nil {
		eng.counter.Restore(sf.Counts)
	}
	for _, cell := range sf.Cells {
		c := store.Cell{W: mem.Width()}
		for _, id := range cell.IDs {
			tu, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("situfact: snapshot cell references unknown tuple %d", id)
			}
			c.Append(tu.ID, tu.Oriented)
		}
		mem.SaveKey(store.CellKey{C: lattice.Key(cell.CKey), M: subspace.Mask(cell.M)}, c)
	}
	// The cell replay drove the fact index through the store observer; a
	// count mismatch means the index missed a lifecycle event (or the
	// snapshot carried a duplicate/empty cell) and queries would silently
	// diverge from the scan path — fail the restore instead.
	if eng.fidx != nil && eng.fidx.Len() != len(sf.Cells) {
		return nil, fmt.Errorf("situfact: snapshot restore: fact index rebuilt %d entries for %d cells",
			eng.fidx.Len(), len(sf.Cells))
	}
	// Replaying the cells above recomputed StoredTuples/Cells but counted
	// the replay itself as I/O; overwrite all counters with the saved ones.
	// Snapshots written before Counters existed decode it as all-zero —
	// leave the replay-derived store stats in place for those rather than
	// zeroing live gauges.
	if sf.Counters != (persist.SnapCounters{}) {
		if rm, ok := eng.disc.(interface{ RestoreMetrics(core.Metrics) }); ok {
			rm.RestoreMetrics(core.Metrics{
				Tuples:      sf.Counters.Tuples,
				Comparisons: sf.Counters.Comparisons,
				Traversed:   sf.Counters.Traversed,
				Facts:       sf.Counters.Facts,
			})
		}
		mem.RestoreStats(store.Stats{
			StoredTuples: sf.Counters.StoredTuples,
			Cells:        sf.Counters.Cells,
			Reads:        sf.Counters.Reads,
			Writes:       sf.Counters.Writes,
		})
	}
	return eng, nil
}

// SaveSnapshot writes the pool's state into dir: a manifest plus one
// engine snapshot per shard. Each shard is saved under its own lock; as
// shards are independent substreams, per-shard consistency is the
// meaningful unit and no cross-shard barrier is taken. It requires the
// same engines Engine.SaveSnapshot does (lattice algorithms over the
// in-memory store). Checkpoint is the richer form used with a WAL.
func (p *Pool) SaveSnapshot(dir string) error {
	_, err := p.Checkpoint(dir, nil)
	return err
}

// CheckpointStats describes a committed pool checkpoint.
type CheckpointStats struct {
	// Generation numbers the committed snapshot.
	Generation uint64
	// TruncatableLSN is the highest WAL LSN reflected in every shard's
	// snapshot file: records at or below it will never be replayed, so
	// WAL.TruncateBefore(TruncatableLSN+1) is safe. Zero without a WAL.
	TruncatableLSN uint64
}

// Checkpoint writes the pool's state into dir as a new snapshot
// generation. When a WAL is attached, each shard file records the WAL
// position it reflects, so recovery replays exactly the uncovered tail.
// sidecars, when non-nil, is invoked after the shard files are written
// and before the manifest commits; the payloads it returns are committed
// atomically with the snapshot (the daemon persists its leaderboard this
// way — the callback ordering lets it barrier against in-flight ingest).
func (p *Pool) Checkpoint(dir string, sidecars func() (map[string][]byte, error)) (CheckpointStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return CheckpointStats{}, fmt.Errorf("situfact: pool snapshot: %w", err)
	}
	prev, havePrev, err := persist.ReadManifest(dir)
	if err != nil {
		return CheckpointStats{}, fmt.Errorf("situfact: pool snapshot: %w", err)
	}
	gen := uint64(1)
	if havePrev {
		gen = prev.Generation + 1
	}
	// New generation's shard files first; the manifest commit comes last.
	lsns := make([]uint64, len(p.shards))
	covers := make([]uint64, len(p.shards))
	var buf bytes.Buffer
	for i := range p.shards {
		s := &p.shards[i]
		buf.Reset()
		// Only the encode holds the shard lock; the file write (two fsyncs
		// plus a rename) happens after, so a checkpoint stalls the shard's
		// ingest for the serialization time, not the disk time.
		s.mu.Lock()
		lsns[i] = s.lastLSN
		// Journal and apply are atomic under this lock, so every WAL
		// record ≤ the log's current head either succeeded on this shard
		// (lsn ≤ lastLSN, inside the snapshot) or failed deterministically
		// (droppable). The head is therefore this shard's truncation
		// cover — typically well past lastLSN for shards the hash routes
		// few rows to, which would otherwise pin truncation at zero.
		if p.wal != nil {
			covers[i] = p.wal.w.LastLSN()
		}
		err := s.eng.SaveSnapshot(&buf)
		s.mu.Unlock()
		if err == nil {
			err = persist.WriteFileAtomic(filepath.Join(dir, persist.ShardSnapshotName(i, gen)), func(w io.Writer) error {
				_, werr := w.Write(buf.Bytes())
				return werr
			})
		}
		if err != nil {
			return CheckpointStats{}, fmt.Errorf("situfact: pool snapshot: shard %d: %w", i, err)
		}
	}
	// The manifest durably pins the captured LSNs, so every one of them
	// must be durable in the WAL first: a buffered-but-unsynced record
	// would be lost by a crash, its LSN reassigned to a NEW acknowledged
	// operation on restart, and a later recovery would skip that operation
	// as "already in the snapshot". This also holds in interval-sync mode,
	// where appends are acknowledged ahead of the fsync.
	if p.wal != nil {
		var top uint64
		for _, l := range lsns {
			if l > top {
				top = l
			}
		}
		if top > 0 {
			if err := p.wal.w.WaitSync(top); err != nil {
				return CheckpointStats{}, fmt.Errorf("situfact: pool snapshot: wal sync: %w", err)
			}
		}
	}
	var side map[string][]byte
	if sidecars != nil {
		if side, err = sidecars(); err != nil {
			return CheckpointStats{}, fmt.Errorf("situfact: pool snapshot: sidecars: %w", err)
		}
	}
	man := persist.Manifest{
		SchemaSig:  schemaSig(p.schema.rs),
		ShardDim:   p.ShardDim(),
		Shards:     len(p.shards),
		Generation: gen,
		Sidecars:   side,
	}
	if p.wal != nil {
		// Nil without a WAL, per the manifest contract: a WAL-less pool's
		// lastLSN values are either zero or restored from an earlier
		// WAL-era snapshot — re-pinning the latter would claim coverage of
		// a log this run never saw. The epoch names the exact log instance
		// the watermarks refer to.
		man.ShardLSNs = lsns
		man.WALEpoch = p.wal.w.Epoch()
	}
	if err := persist.WriteManifest(dir, man); err != nil {
		return CheckpointStats{}, fmt.Errorf("situfact: pool snapshot: manifest: %w", err)
	}
	// Committed; the superseded generation is garbage now.
	if havePrev {
		persist.RemoveGeneration(dir, prev.Shards, prev.Generation)
	}
	stats := CheckpointStats{Generation: gen}
	if p.wal != nil {
		stats.TruncatableLSN = covers[0]
		for _, l := range covers[1:] {
			if l < stats.TruncatableLSN {
				stats.TruncatableLSN = l
			}
		}
	}
	return stats, nil
}

// LoadPoolSnapshot reconstructs a pool from a directory written by
// Pool.SaveSnapshot. The schema must match the one the snapshot was taken
// under; shard count, routing dimension, algorithm and caps are restored
// from the snapshot itself. RestorePool additionally returns the sidecar
// payloads committed with the snapshot.
func LoadPoolSnapshot(schema *Schema, dir string) (*Pool, error) {
	p, _, err := RestorePool(schema, dir)
	return p, err
}

// RestorePool is LoadPoolSnapshot plus the snapshot's sidecar payloads
// (nil when the snapshot carries none).
func RestorePool(schema *Schema, dir string) (*Pool, map[string][]byte, error) {
	if schema == nil || schema.rs == nil {
		return nil, nil, fmt.Errorf("situfact: nil schema")
	}
	man, ok, err := persist.ReadManifest(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("situfact: pool snapshot: %w", err)
	}
	if !ok {
		return nil, nil, fmt.Errorf("situfact: %w in %s", ErrNoSnapshot, dir)
	}
	if got := schemaSig(schema.rs); got != man.SchemaSig {
		return nil, nil, fmt.Errorf("situfact: pool snapshot schema %q does not match %q", man.SchemaSig, got)
	}
	if man.Shards <= 0 {
		return nil, nil, fmt.Errorf("situfact: pool snapshot: manifest has %d shards", man.Shards)
	}
	if man.ShardLSNs != nil && len(man.ShardLSNs) != man.Shards {
		return nil, nil, fmt.Errorf("situfact: pool snapshot: %d shard LSNs for %d shards", len(man.ShardLSNs), man.Shards)
	}
	shardDim := schema.rs.DimIndex(man.ShardDim)
	if shardDim < 0 {
		return nil, nil, fmt.Errorf("situfact: pool snapshot shard dimension %q not in schema %s",
			man.ShardDim, schema.rs)
	}
	p := &Pool{schema: schema, shardDim: shardDim, shards: make([]poolShard, man.Shards)}
	for i := range p.shards {
		f, err := os.Open(filepath.Join(dir, persist.ShardSnapshotName(i, man.Generation)))
		if err != nil {
			p.Close()
			return nil, nil, fmt.Errorf("situfact: pool snapshot: %w", err)
		}
		eng, err := LoadSnapshot(schema, f)
		f.Close()
		if err != nil {
			p.Close()
			return nil, nil, fmt.Errorf("situfact: pool snapshot: shard %d: %w", i, err)
		}
		p.shards[i].eng = eng
		if man.ShardLSNs != nil {
			p.shards[i].lastLSN = man.ShardLSNs[i]
		}
	}
	p.walEpoch = man.WALEpoch
	return p, man.Sidecars, nil
}

// memoryStoreOf extracts the in-memory µ store of a lattice discoverer.
// Baselines embed an (unused) default store too, so the algorithm type is
// checked explicitly: only the BottomUp/TopDown families keep their whole
// state in the µ store.
func memoryStoreOf(d core.Discoverer) (*store.Memory, bool) {
	switch d.(type) {
	case *core.BottomUp, *core.TopDown:
	default:
		return nil, false
	}
	type storer interface{ Store() store.Store }
	s, ok := d.(storer)
	if !ok {
		return nil, false
	}
	mem, ok := s.Store().(*store.Memory)
	return mem, ok
}
