package situfact

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// Snapshot persistence: SaveSnapshot serialises an in-memory engine's full
// state (dictionary, tuples, tombstones, µ-store cells, prominence
// counters) with encoding/gob so a stream can be resumed later with
// LoadSnapshot — a production necessity the paper leaves implicit (its
// file-based variants persist only the cell store, not the bookkeeping).
//
// Snapshots are supported for engines running the lattice algorithms
// (BottomUp/TopDown families) over the default in-memory store; engines
// with a StoreDir already keep their cells on disk, and baseline engines
// would need their private histories replayed instead.

type snapshotFile struct {
	// Magic guards against decoding foreign files.
	Magic string
	// Schema identity check.
	SchemaSig string
	Algorithm Algorithm
	MaxBound  int
	MaxMeas   int

	DictValues [][]string
	Tuples     []snapTuple
	Deleted    []int64
	Counts     map[string]int64 // nil when prominence is disabled
	Cells      []snapCell
	// Counters preserves the cumulative work metrics, so a restored
	// engine's Metrics match an uninterrupted run's. Snapshots written
	// before this field decode it as zero (gob tolerates missing fields).
	Counters snapCounters
}

type snapCounters struct {
	Tuples, Comparisons, Traversed, Facts int64
	StoredTuples, Cells, Reads, Writes    int64
}

type snapTuple struct {
	Dims []int32
	Raw  []float64
}

type snapCell struct {
	CKey string
	M    uint32
	IDs  []int64
}

const snapshotMagic = "situfact-snapshot-v1"

func schemaSig(s *relation.Schema) string {
	return s.String()
}

// CanSnapshot reports whether SaveSnapshot supports this engine: a
// lattice algorithm (BottomUp/TopDown family) over the in-memory store.
func (e *Engine) CanSnapshot() bool {
	_, ok := memoryStoreOf(e.disc)
	return ok
}

// CanSnapshot reports whether SaveSnapshot supports this pool's engines.
func (p *Pool) CanSnapshot() bool { return p.shards[0].eng.CanSnapshot() }

// ErrNoSnapshot reports that a directory holds no pool snapshot at all —
// as opposed to holding a corrupt or mismatched one, which is a distinct
// error. Daemons restore-or-start-fresh with errors.Is(err, ErrNoSnapshot);
// any other LoadPoolSnapshot error should fail startup loudly rather than
// silently serving an empty relation over existing state.
var ErrNoSnapshot = errors.New("no pool snapshot")

// SaveSnapshot writes the engine's state to w. See the package note above
// for which engines support it.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	mem, ok := memoryStoreOf(e.disc)
	if !ok {
		return fmt.Errorf("situfact: snapshots require a lattice algorithm over the in-memory store (engine runs %s)", e.disc.Name())
	}
	sf := snapshotFile{
		Magic:     snapshotMagic,
		SchemaSig: schemaSig(e.schema),
		Algorithm: e.algorithm,
		MaxBound:  e.maxBound,
		MaxMeas:   e.maxMeasure,
	}
	d := e.table.Dict()
	sf.DictValues = make([][]string, e.schema.NumDims())
	for i := range sf.DictValues {
		vals := make([]string, d.Cardinality(i))
		for c := range vals {
			vals[c] = d.Decode(i, int32(c))
		}
		sf.DictValues[i] = vals
	}
	for _, tu := range e.table.Tuples() {
		sf.Tuples = append(sf.Tuples, snapTuple{Dims: tu.Dims, Raw: tu.Raw})
	}
	for id := range e.deleted {
		sf.Deleted = append(sf.Deleted, id)
	}
	if e.counter != nil {
		sf.Counts = e.counter.Snapshot()
	}
	met := e.Metrics()
	sf.Counters = snapCounters{
		Tuples: met.Tuples, Comparisons: met.Comparisons,
		Traversed: met.Traversed, Facts: met.Facts,
		StoredTuples: met.StoredTuples, Cells: met.Cells,
		Reads: met.Reads, Writes: met.Writes,
	}
	mem.Walk(func(k store.CellKey, ts []*relation.Tuple) {
		cell := snapCell{CKey: string(k.C), M: k.M, IDs: make([]int64, len(ts))}
		for i, u := range ts {
			cell.IDs[i] = u.ID
		}
		sf.Cells = append(sf.Cells, cell)
	})
	return gob.NewEncoder(w).Encode(&sf)
}

// LoadSnapshot reconstructs an engine from a snapshot written by
// SaveSnapshot. The schema must match the one the snapshot was taken
// under.
func LoadSnapshot(schema *Schema, r io.Reader) (*Engine, error) {
	if schema == nil || schema.rs == nil {
		return nil, fmt.Errorf("situfact: nil schema")
	}
	var sf snapshotFile
	if err := gob.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("situfact: decode snapshot: %w", err)
	}
	if sf.Magic != snapshotMagic {
		return nil, fmt.Errorf("situfact: not a snapshot file")
	}
	if got := schemaSig(schema.rs); got != sf.SchemaSig {
		return nil, fmt.Errorf("situfact: snapshot schema %q does not match %q", sf.SchemaSig, got)
	}
	eng, err := New(schema, Options{
		Algorithm:         sf.Algorithm,
		MaxBoundDims:      sf.MaxBound,
		MaxMeasureDims:    sf.MaxMeas,
		DisableProminence: sf.Counts == nil,
	})
	if err != nil {
		return nil, err
	}
	mem, ok := memoryStoreOf(eng.disc)
	if !ok {
		return nil, fmt.Errorf("situfact: snapshot algorithm %q has no in-memory store", sf.Algorithm)
	}
	// Rebuild the dictionary in code order, then the table.
	d := eng.table.Dict()
	for dim, vals := range sf.DictValues {
		for _, v := range vals {
			d.Encode(dim, v)
		}
	}
	byID := make(map[int64]*relation.Tuple, len(sf.Tuples))
	for _, st := range sf.Tuples {
		tu, err := eng.table.AppendEncoded(st.Dims, st.Raw)
		if err != nil {
			return nil, fmt.Errorf("situfact: snapshot tuple: %w", err)
		}
		byID[tu.ID] = tu
	}
	for _, id := range sf.Deleted {
		if eng.deleted == nil {
			eng.deleted = make(map[int64]bool)
		}
		eng.deleted[id] = true
	}
	if sf.Counts != nil {
		eng.counter.Restore(sf.Counts)
	}
	for _, cell := range sf.Cells {
		ts := make([]*relation.Tuple, 0, len(cell.IDs))
		for _, id := range cell.IDs {
			tu, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("situfact: snapshot cell references unknown tuple %d", id)
			}
			ts = append(ts, tu)
		}
		mem.Save(store.CellKey{C: lattice.Key(cell.CKey), M: subspace.Mask(cell.M)}, ts)
	}
	// Replaying the cells above recomputed StoredTuples/Cells but counted
	// the replay itself as I/O; overwrite all counters with the saved ones.
	// Snapshots written before Counters existed decode it as all-zero —
	// leave the replay-derived store stats in place for those rather than
	// zeroing live gauges.
	if sf.Counters != (snapCounters{}) {
		if rm, ok := eng.disc.(interface{ RestoreMetrics(core.Metrics) }); ok {
			rm.RestoreMetrics(core.Metrics{
				Tuples:      sf.Counters.Tuples,
				Comparisons: sf.Counters.Comparisons,
				Traversed:   sf.Counters.Traversed,
				Facts:       sf.Counters.Facts,
			})
		}
		mem.RestoreStats(store.Stats{
			StoredTuples: sf.Counters.StoredTuples,
			Cells:        sf.Counters.Cells,
			Reads:        sf.Counters.Reads,
			Writes:       sf.Counters.Writes,
		})
	}
	return eng, nil
}

// Pool snapshots: one snapshot file per shard plus a manifest recording
// the routing parameters, so a restored pool routes identically (ShardFor
// is a pure function of the value and the shard count).
//
// Saves are generational: shard files carry a generation number, and the
// manifest — written last, atomically — is the commit record naming the
// generation it covers. A save that dies partway leaves either no manifest
// (fresh directory: the next start begins clean) or the previous
// manifest still pointing at the previous generation's complete file set;
// mixed-generation restores are impossible. Files of superseded
// generations are removed after a successful commit.

type poolManifest struct {
	Magic      string
	SchemaSig  string
	ShardDim   string
	Shards     int
	Generation uint64
}

const (
	poolManifestMagic = "situfact-pool-snapshot-v1"
	poolManifestName  = "pool.manifest"
)

func shardSnapshotName(i int, gen uint64) string {
	return fmt.Sprintf("shard-%d.g%d.snap", i, gen)
}

// readPoolManifest loads dir's manifest; ok is false when none exists.
func readPoolManifest(dir string) (man poolManifest, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, poolManifestName))
	if os.IsNotExist(err) {
		return poolManifest{}, false, nil
	}
	if err != nil {
		return poolManifest{}, false, err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&man); err != nil {
		return poolManifest{}, false, fmt.Errorf("decode manifest: %w", err)
	}
	if man.Magic != poolManifestMagic {
		return poolManifest{}, false, fmt.Errorf("%s is not a pool snapshot manifest", dir)
	}
	return man, true, nil
}

// writeFileAtomic writes data produced by write to path via a temp file,
// fsync and rename, then syncs the directory — so neither a crash mid-save
// nor a power loss shortly after can leave a renamed-but-unflushed file
// behind the commit point.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveSnapshot writes the pool's state into dir: a manifest plus one
// engine snapshot per shard (shard-<i>.snap). Each shard is saved under
// its own lock; as shards are independent substreams, per-shard
// consistency is the meaningful unit and no cross-shard barrier is taken.
// It requires the same engines Engine.SaveSnapshot does (lattice
// algorithms over the in-memory store).
func (p *Pool) SaveSnapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("situfact: pool snapshot: %w", err)
	}
	prev, havePrev, err := readPoolManifest(dir)
	if err != nil {
		return fmt.Errorf("situfact: pool snapshot: %w", err)
	}
	gen := uint64(1)
	if havePrev {
		gen = prev.Generation + 1
	}
	// New generation's shard files first; the manifest commit comes last.
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		err := writeFileAtomic(filepath.Join(dir, shardSnapshotName(i, gen)), s.eng.SaveSnapshot)
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("situfact: pool snapshot: shard %d: %w", i, err)
		}
	}
	man := poolManifest{
		Magic:      poolManifestMagic,
		SchemaSig:  schemaSig(p.schema.rs),
		ShardDim:   p.ShardDim(),
		Shards:     len(p.shards),
		Generation: gen,
	}
	err = writeFileAtomic(filepath.Join(dir, poolManifestName), func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(&man)
	})
	if err != nil {
		return fmt.Errorf("situfact: pool snapshot: manifest: %w", err)
	}
	// Committed; the superseded generation is garbage now. Best-effort:
	// leftover files cannot be restored once the manifest moved on.
	if havePrev {
		for i := 0; i < prev.Shards; i++ {
			os.Remove(filepath.Join(dir, shardSnapshotName(i, prev.Generation)))
		}
	}
	return nil
}

// LoadPoolSnapshot reconstructs a pool from a directory written by
// Pool.SaveSnapshot. The schema must match the one the snapshot was taken
// under; shard count, routing dimension, algorithm and caps are restored
// from the snapshot itself.
func LoadPoolSnapshot(schema *Schema, dir string) (*Pool, error) {
	if schema == nil || schema.rs == nil {
		return nil, fmt.Errorf("situfact: nil schema")
	}
	man, ok, err := readPoolManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("situfact: pool snapshot: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("situfact: %w in %s", ErrNoSnapshot, dir)
	}
	if got := schemaSig(schema.rs); got != man.SchemaSig {
		return nil, fmt.Errorf("situfact: pool snapshot schema %q does not match %q", man.SchemaSig, got)
	}
	if man.Shards <= 0 {
		return nil, fmt.Errorf("situfact: pool snapshot: manifest has %d shards", man.Shards)
	}
	shardDim := schema.rs.DimIndex(man.ShardDim)
	if shardDim < 0 {
		return nil, fmt.Errorf("situfact: pool snapshot shard dimension %q not in schema %s",
			man.ShardDim, schema.rs)
	}
	p := &Pool{schema: schema, shardDim: shardDim, shards: make([]poolShard, man.Shards)}
	for i := range p.shards {
		f, err := os.Open(filepath.Join(dir, shardSnapshotName(i, man.Generation)))
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("situfact: pool snapshot: %w", err)
		}
		eng, err := LoadSnapshot(schema, f)
		f.Close()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("situfact: pool snapshot: shard %d: %w", i, err)
		}
		p.shards[i].eng = eng
	}
	return p, nil
}

// memoryStoreOf extracts the in-memory µ store of a lattice discoverer.
// Baselines embed an (unused) default store too, so the algorithm type is
// checked explicitly: only the BottomUp/TopDown families keep their whole
// state in the µ store.
func memoryStoreOf(d core.Discoverer) (*store.Memory, bool) {
	switch d.(type) {
	case *core.BottomUp, *core.TopDown:
	default:
		return nil, false
	}
	type storer interface{ Store() store.Store }
	s, ok := d.(storer)
	if !ok {
		return nil, false
	}
	mem, ok := s.Store().(*store.Memory)
	return mem, ok
}
