// Package situfact is a streaming engine for discovering prominent
// situational facts, reproducing Sultana, Hassan, Li, Yang & Yu,
// "Incremental Discovery of Prominent Situational Facts", ICDE 2014 —
// grown beyond the paper into a concurrent, sharded, persistable system.
//
// A situational fact is a statement of the form "with measures M, this
// new tuple stands out against all historical tuples in context C" — e.g.
// "first Pacers player with a 20/10/5 game against the Bulls". Formally,
// the engine finds every constraint–measure pair (C, M) that qualifies an
// arriving tuple as a contextual skyline tuple, and ranks those facts by
// prominence (|σ_C(R)| / |λ_M(σ_C(R))|).
//
// Basic use:
//
//	schema, _ := situfact.NewSchemaBuilder("gamelog").
//		Dimension("player").Dimension("team").Dimension("opp_team").
//		Measure("points", situfact.LargerBetter).
//		Measure("rebounds", situfact.LargerBetter).
//		Build()
//	eng, _ := situfact.New(schema, situfact.Options{})
//	arr, _ := eng.Append(
//		[]string{"Paul George", "Pacers", "Bulls"},
//		[]float64{21, 11})
//	for _, f := range arr.Top(3) {
//		fmt.Println(f)
//	}
//
// # Concurrency
//
// An Engine is single-stream (arrivals are inherently ordered) and not
// safe for concurrent use. For partitioned feeds — per-team game logs,
// per-station weather streams — Pool shards one logical stream across
// many engines by a chosen dimension and drives them concurrently; see
// Pool and ExamplePool. Within one engine, the parallel-* algorithms
// (AlgoParallelTopDown, AlgoParallelBottomUp) split discovery itself
// across Options.Workers goroutines, one measure-subspace partition each.
// The two forms stack: shards split the stream, workers split the lattice.
//
// # Persistence
//
// Engine.SaveSnapshot/LoadSnapshot serialise an in-memory engine's full
// state (dictionary, tuples, tombstones, µ-store cells, prominence
// counters, work metrics) so a stream can stop and resume exactly where it
// left off; Pool.SaveSnapshot/LoadPoolSnapshot do the same per shard, plus
// a manifest that pins the routing parameters. Options.StoreDir instead
// keeps the µ(C,M) cells on disk continuously (the paper's FS* variants).
//
// # Beyond the library
//
// Three commands wrap the package: cmd/situfact (streaming CSV monitor),
// cmd/situfactd (HTTP daemon serving discovery over JSON, documented in
// docs/API.md), and cmd/situbench (paper-figure regeneration and an HTTP
// load generator). docs/ARCHITECTURE.md maps the layers.
package situfact
