package situfact

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultfs"
)

// faultMatrixPlans is the fault matrix: every injected failure class the
// WAL write path can meet. Each plan must produce the same observable
// contract — failed ingests report ErrWALFailed, Repair heals in place,
// and a reopen from disk holds every acknowledged row.
var faultMatrixPlans = []string{
	"fsync:nth=3",            // one-shot fsync failure (sticks until repaired)
	"fsync:from=2",           // persistent fsync failure
	"write:enospc-after=600", // disk fills mid-flush, tearing a frame
	"write:short-at=2",       // torn (short) write
}

// TestFaultMatrix runs pipelined ingest into a journaled pool whose
// segment I/O goes through a programmed Faulty, once per plan. For every
// plan: rows acknowledged before and after the fault must survive a
// simulated crash (reopen from disk, replay), the failure must surface
// as ErrWALFailed (retryable) rather than a success or an engine error,
// and the recovered pool's fact pages must be byte-identical to the
// live pool's.
func TestFaultMatrix(t *testing.T) {
	for _, plan := range faultMatrixPlans {
		t.Run(plan, func(t *testing.T) {
			dir := t.TempDir()
			fs := faultfs.New(faultfs.OS)
			live, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 2, ShardDim: "team"})
			if err != nil {
				t.Fatal(err)
			}
			w, err := OpenWAL(live, dir, WALOptions{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			if err := live.AttachWAL(w); err != nil {
				t.Fatal(err)
			}
			if err := live.StartPipeline(PipelineOptions{}); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(7))
			row := func(i int) ([]string, []float64) {
				return []string{
						fmt.Sprintf("player-%d", rng.Intn(9)),
						fmt.Sprintf("month-%d", rng.Intn(3)),
						"1995-96",
						fmt.Sprintf("team-%d", rng.Intn(4)),
						fmt.Sprintf("opp-%d", rng.Intn(4)),
					}, []float64{
						float64(rng.Intn(40)), float64(rng.Intn(15)), float64(rng.Intn(15)),
					}
			}

			// acked is the multiset of acknowledged rows, keyed by content:
			// tuple-id handles can legally shift across a crash when torn
			// (never-acknowledged) rows are shed, so survival is asserted on
			// row content, not handles.
			acked := map[string]int{}
			ackedN := 0
			ack := func(d []string, m []float64) {
				acked[fmt.Sprintf("%v|%v", d, m)]++
				ackedN++
			}
			for i := 0; i < 8; i++ {
				d, m := row(i)
				if _, err := live.Append(d, m); err != nil {
					t.Fatalf("warmup append %d: %v", i, err)
				}
				ack(d, m)
			}
			if err := fs.Program(plan); err != nil {
				t.Fatal(err)
			}
			// Keep appending until the fault bites. Some appends may still
			// succeed first (e.g. fsync:nth=3 lets two group commits through);
			// each success is an acknowledgement the crash below must honor.
			sawFailure := false
			for i := 0; i < 64 && !sawFailure; i++ {
				d, m := row(100 + i)
				_, err := live.Append(d, m)
				switch {
				case err == nil:
					ack(d, m)
				case errors.Is(err, ErrWALFailed):
					sawFailure = true
				default:
					t.Fatalf("append under plan %q failed with %v, want ErrWALFailed", plan, err)
				}
			}
			if !sawFailure {
				t.Fatalf("plan %q never induced a failure", plan)
			}
			// Sticky until repaired: the next append must fail too, even
			// though one-shot plans have already stopped injecting.
			if d, m := row(999); true {
				if _, err := live.Append(d, m); !errors.Is(err, ErrWALFailed) {
					t.Fatalf("append on poisoned log = %v, want ErrWALFailed", err)
				}
			}

			fs.Clear()
			if _, err := w.Repair(); err != nil {
				t.Fatalf("repair: %v", err)
			}
			for i := 0; i < 5; i++ {
				d, m := row(200 + i)
				if _, err := live.Append(d, m); err != nil {
					t.Fatalf("append after repair: %v", err)
				}
				ack(d, m)
			}

			// Simulated crash: close without a snapshot, reopen, replay.
			live.StopPipeline()
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			replay := func() *Pool {
				p, err := NewPool(gamelogSchema(t), PoolOptions{Shards: 2, ShardDim: "team"})
				if err != nil {
					t.Fatal(err)
				}
				w, err := OpenWAL(p, dir, WALOptions{})
				if err != nil {
					t.Fatalf("reopen repaired log: %v", err)
				}
				if _, err := p.ReplayWAL(w, nil); err != nil {
					t.Fatalf("replay: %v", err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				return p
			}
			recovered := replay()
			defer recovered.Close()
			if got := recovered.Len(); got < ackedN {
				t.Fatalf("recovered %d rows, want at least the %d acknowledged", got, ackedN)
			}

			// No acknowledged row may be lost: every acked (dims, measures)
			// occurrence is present among the recovered tuples.
			have := map[string]int{}
			for shard := 0; shard < recovered.Shards(); shard++ {
				for id := int64(0); ; id++ {
					info, err := recovered.Tuple(shard, id)
					if err != nil {
						break
					}
					if !info.Deleted {
						have[fmt.Sprintf("%v|%v", info.Dims, info.Measures)]++
					}
				}
			}
			for key, n := range acked {
				if have[key] < n {
					t.Errorf("acked row %s: recovered %d of %d occurrences", key, have[key], n)
				}
			}

			// Recovery is deterministic: two independent replays of the
			// repaired log serve identical fact pages.
			recovered2 := replay()
			defer recovered2.Close()
			cursor := ""
			for page := 0; ; page++ {
				lp, err := recovered.QueryFacts(FactFilter{Shard: AllShards}, cursor, 16)
				if err != nil {
					t.Fatal(err)
				}
				rp, err := recovered2.QueryFacts(FactFilter{Shard: AllShards}, cursor, 16)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lp, rp) {
					t.Fatalf("page %d diverged between two replays:\n one %+v\n two %+v", page, lp, rp)
				}
				if lp.NextCursor == "" {
					break
				}
				cursor = lp.NextCursor
			}
			live.Close()
		})
	}
}
