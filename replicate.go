package situfact

import (
	"errors"
	"fmt"

	"repro/internal/persist"
)

// Read-path replication: a leader ships its state as a snapshot (the
// Checkpoint directory's files) plus a WAL tail (ReadTail), and a
// read-only follower restores the snapshot (RestorePool) and then applies
// successive tails (ApplyTail) through exactly the code path ReplayWAL
// uses for crash recovery. A follower therefore converges to the leader's
// state record by record — same routing, same per-shard watermarks, same
// deterministic re-failures — which is what the divergence tests assert.

// ErrEpochMismatch reports a tail from a different log instance than the
// one the pool's watermarks refer to: the leader's WAL was replaced (or
// the follower bootstrapped from an unrelated leader), so LSNs are not
// comparable and applying the tail would silently diverge. Test with
// errors.Is; a follower seeing this must re-bootstrap, not retry.
var ErrEpochMismatch = errors.New("wal epoch mismatch")

// Tail-record operations.
const (
	OpAppend = "append"
	OpDelete = "delete"
	// OpNoop ships a repair noop frame (see persist.RecNoop): it carries
	// no operation, but followers must still see it to keep their tail
	// cursor dense.
	OpNoop = "noop"
)

// TailRecord is one journaled operation in shipping form — the wire
// mirror of a WAL record, typed for transport between a leader's ReadTail
// and a follower's ApplyTail.
type TailRecord struct {
	LSN uint64
	// Op is OpAppend or OpDelete.
	Op string
	// Shard is the shard the leader applied the operation to (appends are
	// re-routed by the applier and carry it as a cross-check only;
	// deletes target it).
	Shard int
	// Dims and Measures are the appended row, in schema order (appends).
	Dims     []string
	Measures []float64
	// TupleID is the retracted tuple's per-shard id (deletes).
	TupleID int64
}

// record converts the shipping form back to a journal record.
func (tr TailRecord) record() (persist.Record, error) {
	rec := persist.Record{LSN: tr.LSN, Shard: tr.Shard}
	switch tr.Op {
	case OpAppend:
		rec.Type = persist.RecAppend
		rec.Dims = tr.Dims
		rec.Measures = tr.Measures
	case OpDelete:
		rec.Type = persist.RecDelete
		rec.TupleID = tr.TupleID
	case OpNoop:
		rec.Type = persist.RecNoop
	default:
		return rec, fmt.Errorf("situfact: tail record %d has unknown op %q", tr.LSN, tr.Op)
	}
	return rec, nil
}

func toTailRecord(rec persist.Record) (TailRecord, error) {
	tr := TailRecord{LSN: rec.LSN, Shard: rec.Shard}
	switch rec.Type {
	case persist.RecAppend:
		tr.Op = OpAppend
		tr.Dims = rec.Dims
		tr.Measures = rec.Measures
	case persist.RecDelete:
		tr.Op = OpDelete
		tr.TupleID = rec.TupleID
	case persist.RecNoop:
		tr.Op = OpNoop
	default:
		return tr, fmt.Errorf("situfact: wal record %d has unknown type %d", rec.LSN, rec.Type)
	}
	return tr, nil
}

// Epoch returns the log instance's identity (see persist.WAL.Epoch): a
// follower pins it at bootstrap and refuses tails from any other.
func (w *WAL) Epoch() string { return w.w.Epoch() }

// ReadTail returns up to max journaled records with LSN >= from, in LSN
// order, plus the log's highest assigned LSN and whether more records
// remain past the returned ones. It is the leader side of follower
// catch-up; the follower detects a truncated gap by the first returned
// LSN being greater than from (LSNs are dense).
func (w *WAL) ReadTail(from uint64, max int) (recs []TailRecord, lastLSN uint64, more bool, err error) {
	raw, lastLSN, err := w.w.ReadFrom(from, max)
	if err != nil {
		return nil, 0, false, fmt.Errorf("situfact: %w", err)
	}
	recs = make([]TailRecord, 0, len(raw))
	for _, rec := range raw {
		tr, err := toTailRecord(rec)
		if err != nil {
			return nil, 0, false, err
		}
		recs = append(recs, tr)
	}
	more = len(recs) > 0 && recs[len(recs)-1].LSN < lastLSN
	return recs, lastLSN, more, nil
}

// WALEpoch returns the epoch of the log instance the pool's per-shard
// watermarks refer to: restored from the snapshot manifest, set by
// replay/attach, or pinned by the first ApplyTail. Empty = no log yet.
func (p *Pool) WALEpoch() string { return p.walEpoch }

// ShardLSNs returns each shard's last applied WAL LSN (0 = none), read
// under the shard locks.
func (p *Pool) ShardLSNs() []uint64 {
	out := make([]uint64, len(p.shards))
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		out[i] = s.lastLSN
		s.mu.RUnlock()
	}
	return out
}

// TailCursor returns the LSN a replica must fetch from to be sure of
// missing nothing: one past the LOWEST shard watermark. Records between
// it and a higher shard's watermark re-ship, and ApplyTail skips them
// per shard exactly as crash recovery does.
func (p *Pool) TailCursor() uint64 {
	lsns := p.ShardLSNs()
	low := lsns[0]
	for _, l := range lsns[1:] {
		if l < low {
			low = l
		}
	}
	return low + 1
}

// ApplyTail applies a leader-shipped WAL tail to a follower pool through
// the same per-record path ReplayWAL uses. epoch names the log instance
// the records came from: the first ApplyTail pins it (a pool restored
// from a leader snapshot already carries it from the manifest), and a
// different epoch later fails with ErrEpochMismatch. onArrival, when
// non-nil, observes every applied append's arrival.
//
// The pool must not itself be journaling (ApplyTail re-applies another
// log's records; journaling them again would fork history) and must not
// have the ingest pipeline running.
func (p *Pool) ApplyTail(epoch string, recs []TailRecord, onArrival func(*Arrival)) (ReplayStats, error) {
	if epoch == "" {
		return ReplayStats{}, fmt.Errorf("situfact: apply tail: empty epoch")
	}
	if p.wal != nil {
		return ReplayStats{}, fmt.Errorf("situfact: apply tail: pool has its own WAL attached")
	}
	if p.pipe.Load() != nil {
		return ReplayStats{}, fmt.Errorf("situfact: apply tail with the ingest pipeline running would race its writers")
	}
	if p.walEpoch == "" {
		p.walEpoch = epoch
	} else if p.walEpoch != epoch {
		return ReplayStats{}, fmt.Errorf("situfact: apply tail: pool tracks epoch %s, tail is from %s: %w",
			p.walEpoch, epoch, ErrEpochMismatch)
	}
	var stats ReplayStats
	for _, tr := range recs {
		rec, err := tr.record()
		if err != nil {
			return stats, err
		}
		if err := p.applyRecord(rec, &stats, onArrival); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
