// Package readcache is a TTL'd singleflight response cache for hot read
// endpoints: concurrent requests for one key share a single fill (the
// thundering-herd guard), a filled value serves hits until its TTL
// expires, and the whole cache can be invalidated at once when the data
// underneath visibly advances (a follower's replayed LSN moving).
package readcache

import (
	"sync"
	"sync/atomic"
	"time"
)

// entry is one cached fill. done closes when the fill completes; val/err
// are immutable afterwards.
type entry struct {
	done chan struct{}
	val  []byte
	err  error
	at   time.Time // fill completion time; zero while in flight
}

// Cache is a TTL'd singleflight cache of rendered responses. The zero
// value is not usable; see New.
type Cache struct {
	ttl time.Duration

	mu      sync.Mutex
	entries map[string]*entry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// New returns a cache whose filled values stay fresh for ttl.
func New(ttl time.Duration) *Cache {
	return &Cache{ttl: ttl, entries: make(map[string]*entry)}
}

// Get returns the cached value for key, filling it with fill on a miss.
// Concurrent Gets for one missing key run fill once and share its result
// (waiters count as hits; only the filler counts a miss). A fill error is
// returned to everyone waiting on it and then evicted, so the next Get
// retries. Stale entries (older than the TTL) are refilled in the same
// way.
func (c *Cache) Get(key string, fill func() ([]byte, error)) ([]byte, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			c.mu.Unlock()
			<-e.done
			if e.err == nil && time.Since(e.at) <= c.ttl {
				c.hits.Add(1)
				return e.val, nil
			}
			// Expired (or errored): evict this exact entry and race to
			// refill. Another goroutine may already have replaced it —
			// the loop re-reads.
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			continue
		}
		e = &entry{done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		c.misses.Add(1)
		e.val, e.err = fill()
		e.at = time.Now()
		close(e.done)
		if e.err != nil {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			return nil, e.err
		}
		return e.val, nil
	}
}

// Invalidate drops every cached entry (in-flight fills complete and serve
// their waiters, but later Gets refill). Counters survive.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.mu.Unlock()
}

// InvalidateFunc drops only the entries whose key satisfies pred, leaving
// the rest to serve out their TTL. A follower uses this to evict just the
// responses scoped to shards whose applied LSN actually moved, instead of
// emptying the whole cache on every tail batch.
func (c *Cache) InvalidateFunc(pred func(key string) bool) {
	c.mu.Lock()
	for k := range c.entries {
		if pred(k) {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}

// Stats is a monitoring snapshot of the cache.
type Stats struct {
	// Hits counts Gets served from a fresh fill (shared-fill waiters
	// included); Misses counts fills run.
	Hits   uint64
	Misses uint64
	// Entries is the live entry count, in-flight fills included.
	Entries int
	// OldestAge is the age of the oldest completed fill still cached
	// (0 when empty) — bounded by the TTL plus eviction laziness.
	OldestAge time.Duration
}

// Stats returns a monitoring snapshot.
func (c *Cache) Stats() Stats {
	st := Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	now := time.Now()
	c.mu.Lock()
	st.Entries = len(c.entries)
	for _, e := range c.entries {
		select {
		case <-e.done:
			if age := now.Sub(e.at); age > st.OldestAge {
				st.OldestAge = age
			}
		default: // in flight; no completed fill to age
		}
	}
	c.mu.Unlock()
	return st
}
