package readcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetFillsOnceThenHits(t *testing.T) {
	c := New(time.Minute)
	fills := 0
	fill := func() ([]byte, error) { fills++; return []byte("v"), nil }
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", fill)
		if err != nil || string(v) != "v" {
			t.Fatalf("get %d = %q, %v", i, v, err)
		}
	}
	if fills != 1 {
		t.Errorf("fill ran %d times, want 1", fills)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}
	if st.OldestAge <= 0 {
		t.Errorf("oldest age = %v, want > 0", st.OldestAge)
	}
}

func TestSingleflightSharesOneFill(t *testing.T) {
	c := New(time.Minute)
	var fills atomic.Int32
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get("k", func() ([]byte, error) {
				fills.Add(1)
				<-gate // hold every other Get in the waiters path
				return []byte("v"), nil
			})
			if err != nil || string(v) != "v" {
				t.Errorf("get = %q, %v", v, err)
			}
		}()
	}
	// Let the goroutines pile up behind the one in-flight fill.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Errorf("fill ran %d times under %d concurrent gets, want 1", got, n)
	}
	st := c.Stats()
	if st.Hits+st.Misses != n {
		t.Errorf("hits %d + misses %d != %d gets", st.Hits, st.Misses, n)
	}
}

func TestTTLExpiryRefills(t *testing.T) {
	c := New(10 * time.Millisecond)
	fills := 0
	fill := func() ([]byte, error) { fills++; return []byte("v"), nil }
	c.Get("k", fill)
	time.Sleep(20 * time.Millisecond)
	c.Get("k", fill)
	if fills != 2 {
		t.Errorf("fill ran %d times across an expiry, want 2", fills)
	}
}

func TestErrorIsNotCached(t *testing.T) {
	c := New(time.Minute)
	boom := errors.New("boom")
	if _, err := c.Get("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := c.Get("k", func() ([]byte, error) { return []byte("v"), nil })
	if err != nil || string(v) != "v" {
		t.Fatalf("get after error = %q, %v, want fresh fill", v, err)
	}
}

func TestInvalidateFuncDropsOnlyMatches(t *testing.T) {
	c := New(time.Minute)
	fills := map[string]int{}
	fillFor := func(k string) func() ([]byte, error) {
		return func() ([]byte, error) { fills[k]++; return []byte(k), nil }
	}
	keys := []string{"facts|0|a", "facts|1|a", "facts|-1|a", "top|10"}
	for _, k := range keys {
		c.Get(k, fillFor(k))
	}
	// Shard 1 advanced: its keys and the cross-shard ones die, shard 0's
	// entry survives.
	c.InvalidateFunc(func(k string) bool { return k != "facts|0|a" })
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries after selective invalidate = %d, want 1", st.Entries)
	}
	for _, k := range keys {
		c.Get(k, fillFor(k))
	}
	for _, k := range keys {
		want := 2
		if k == "facts|0|a" {
			want = 1 // survived: second Get was a hit
		}
		if fills[k] != want {
			t.Errorf("key %q filled %d times, want %d", k, fills[k], want)
		}
	}
}

func TestInvalidateDropsEntries(t *testing.T) {
	c := New(time.Minute)
	fills := 0
	fill := func() ([]byte, error) { fills++; return []byte("v"), nil }
	c.Get("k", fill)
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries after invalidate = %d, want 0", st.Entries)
	}
	c.Get("k", fill)
	if fills != 2 {
		t.Errorf("fill ran %d times across an invalidate, want 2", fills)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("counters after invalidate = %+v, want them to survive (0 hits, 2 misses)", st)
	}
}
