package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
)

// Weather dimension spaces per d (the paper fixes d=5, m=7 for Figs 9 and
// 13; we provide the same nesting convention as the NBA spaces so the
// harness can sweep d if desired). The full 7-dim inventory matches the
// paper: location, country, month, time step, wind direction (day/night),
// visibility range.
var weatherDimSpaces = map[int][]string{
	4: {"location", "country", "month", "time_step"},
	5: {"location", "country", "month", "time_step", "wind_dir_day"},
	6: {"location", "country", "month", "time_step", "wind_dir_day", "wind_dir_night"},
	7: {"location", "country", "month", "time_step", "wind_dir_day", "wind_dir_night", "visibility"},
}

// Weather measure spaces per m; the paper assumes larger dominates smaller
// on all weather measures.
var weatherMeasureSpaces = map[int][]string{
	4: {"wind_speed_day", "wind_speed_night", "temp_day", "temp_night"},
	5: {"wind_speed_day", "wind_speed_night", "temp_day", "temp_night", "humidity_day"},
	6: {"wind_speed_day", "wind_speed_night", "temp_day", "temp_night", "humidity_day", "humidity_night"},
	7: {"wind_speed_day", "wind_speed_night", "temp_day", "temp_night", "humidity_day", "humidity_night", "wind_gust"},
}

// WeatherConfig sizes the simulated forecast archive. Defaults approximate
// the Met Office dataset the paper used (5,365 locations, 6 countries).
type WeatherConfig struct {
	Seed      int64
	Locations int // default 5365
	Countries int // default 6
	TimeSteps int // default 3 (day/evening/night issue times)
}

func (c *WeatherConfig) defaults() {
	if c.Locations == 0 {
		c.Locations = 5365
	}
	if c.Countries == 0 {
		c.Countries = 6
	}
	if c.TimeSteps == 0 {
		c.TimeSteps = 3
	}
}

// WeatherSchema returns the d/m weather schema.
func WeatherSchema(d, m int) (*relation.Schema, error) {
	dims, ok := weatherDimSpaces[d]
	if !ok {
		return nil, fmt.Errorf("gen: no weather dimension space for d=%d", d)
	}
	measures, ok := weatherMeasureSpaces[m]
	if !ok {
		return nil, fmt.Errorf("gen: no weather measure space for m=%d", m)
	}
	da := make([]relation.DimAttr, len(dims))
	for i, n := range dims {
		da[i] = relation.DimAttr{Name: n}
	}
	ma := make([]relation.MeasureAttr, len(measures))
	for i, n := range measures {
		ma[i] = relation.MeasureAttr{Name: n, Direction: relation.LargerBetter}
	}
	return relation.NewSchema("weather", da, ma)
}

// WeatherGenerator streams daily forecast records: the clock advances
// through months; each record belongs to a random location whose climate
// latents plus the seasonal cycle drive correlated measures.
type WeatherGenerator struct {
	cfg    WeatherConfig
	rng    *rand.Rand
	schema *relation.Schema
	dims   []string
	// per-location climate latents
	country   []int
	windiness []float64
	warmth    []float64
	humidity  []float64
	day       int // advances the simulated calendar
}

// NewWeather creates a generator for the d/m weather space.
func NewWeather(cfg WeatherConfig, d, m int) (*WeatherGenerator, error) {
	cfg.defaults()
	schema, err := WeatherSchema(d, m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &WeatherGenerator{cfg: cfg, rng: rng, schema: schema, dims: weatherDimSpaces[d]}
	g.country = make([]int, cfg.Locations)
	g.windiness = make([]float64, cfg.Locations)
	g.warmth = make([]float64, cfg.Locations)
	g.humidity = make([]float64, cfg.Locations)
	for i := 0; i < cfg.Locations; i++ {
		g.country[i] = rng.Intn(cfg.Countries)
		g.windiness[i] = 0.6 + 0.8*rng.Float64()
		g.warmth[i] = 0.7 + 0.6*rng.Float64()
		g.humidity[i] = 0.6 + 0.7*rng.Float64()
	}
	return g, nil
}

// Schema returns the generator's schema.
func (g *WeatherGenerator) Schema() *relation.Schema { return g.schema }

// Fill appends n rows to tb (which must use g.Schema()).
func (g *WeatherGenerator) Fill(tb *relation.Table, n int) error {
	for i := 0; i < n; i++ {
		dims, meas := g.next()
		if _, err := tb.Append(dims, meas); err != nil {
			return err
		}
	}
	return nil
}

var windDirs = []string{"N", "NNE", "NE", "ENE", "E", "ESE", "SE", "SSE", "S", "SSW", "SW", "WSW", "W", "WNW", "NW", "NNW"}
var visibilities = []string{"VP", "PO", "MO", "GO", "VG", "EX"}
var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

func (g *WeatherGenerator) next() ([]string, []float64) {
	rng := g.rng
	if rng.Float64() < 0.0005 {
		g.day++
	}
	month := (g.day / 30) % 12
	loc := rng.Intn(g.cfg.Locations)
	season := math.Sin(2 * math.Pi * float64(month) / 12) // crude seasonal cycle

	// A synoptic "storminess" factor correlates wind measures within a
	// record; temperature and humidity follow their own latents.
	storm := math.Exp(0.5 * rng.NormFloat64())
	windDay := g.windiness[loc] * storm * (8 + 6*rng.Float64())
	windNight := windDay * (0.7 + 0.5*rng.Float64())
	gust := windDay * (1.3 + 0.6*rng.Float64())
	tempDay := g.warmth[loc]*(12+8*season) + 4*rng.NormFloat64()
	tempNight := tempDay - (3 + 4*rng.Float64())
	humDay := math.Min(100, g.humidity[loc]*(60+15*storm)+6*rng.NormFloat64())
	humNight := math.Min(100, humDay+6+4*rng.Float64())

	all := map[string]string{
		"location":       fmt.Sprintf("L%04d", loc),
		"country":        fmt.Sprintf("Country%d", g.country[loc]),
		"month":          monthNames[month],
		"time_step":      fmt.Sprintf("T%d", rng.Intn(g.cfg.TimeSteps)),
		"wind_dir_day":   windDirs[rng.Intn(len(windDirs))],
		"wind_dir_night": windDirs[rng.Intn(len(windDirs))],
		"visibility":     visibilities[rng.Intn(len(visibilities))],
	}
	dims := make([]string, len(g.dims))
	for i, name := range g.dims {
		dims[i] = all[name]
	}
	vals := map[string]float64{
		"wind_speed_day":   math.Round(windDay),
		"wind_speed_night": math.Round(windNight),
		"temp_day":         math.Round(tempDay),
		"temp_night":       math.Round(tempNight),
		"humidity_day":     math.Round(humDay),
		"humidity_night":   math.Round(humNight),
		"wind_gust":        math.Round(gust),
	}
	meas := make([]float64, g.schema.NumMeasures())
	for i := 0; i < g.schema.NumMeasures(); i++ {
		meas[i] = vals[g.schema.Measure(i).Name]
	}
	return dims, meas
}
