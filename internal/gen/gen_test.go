package gen

import (
	"testing"

	"repro/internal/relation"
)

func TestNBASchemaSpaces(t *testing.T) {
	for d := 4; d <= 8; d++ {
		for m := 4; m <= 7; m++ {
			s, err := NBASchema(d, m)
			if err != nil {
				t.Fatalf("NBASchema(%d,%d): %v", d, m, err)
			}
			if s.NumDims() != d || s.NumMeasures() != m {
				t.Errorf("NBASchema(%d,%d) has %d/%d attrs", d, m, s.NumDims(), s.NumMeasures())
			}
		}
	}
	if _, err := NBASchema(3, 7); err == nil {
		t.Error("NBASchema(3,·) should fail")
	}
	if _, err := NBASchema(5, 9); err == nil {
		t.Error("NBASchema(·,9) should fail")
	}
	// Directions per paper: fouls and turnovers smaller-better.
	s, _ := NBASchema(5, 7)
	for i := 0; i < s.NumMeasures(); i++ {
		m := s.Measure(i)
		want := relation.LargerBetter
		if m.Name == "fouls" || m.Name == "turnovers" {
			want = relation.SmallerBetter
		}
		if m.Direction != want {
			t.Errorf("measure %s direction = %v", m.Name, m.Direction)
		}
	}
}

func TestNBADeterministicAndPlausible(t *testing.T) {
	mk := func() *relation.Table {
		g, err := NewNBA(NBAConfig{Seed: 42, Players: 50, Teams: 8, Seasons: 3}, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		tb := relation.NewTable(g.Schema())
		if err := g.Fill(tb, 500); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	a, b := mk(), mk()
	if a.Len() != 500 || b.Len() != 500 {
		t.Fatalf("Fill produced %d/%d rows", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ta, tbu := a.At(i), b.At(i)
		for j := range ta.Dims {
			if ta.Dims[j] != tbu.Dims[j] {
				t.Fatalf("row %d not deterministic (dims)", i)
			}
		}
		for j := range ta.Raw {
			if ta.Raw[j] != tbu.Raw[j] {
				t.Fatalf("row %d not deterministic (measures)", i)
			}
		}
	}
	// Plausibility: non-negative integer-ish stats, points occasionally
	// large, team ≠ opp_team.
	maxPoints := 0.0
	for _, tu := range a.Tuples() {
		for j, v := range tu.Raw {
			if v < 0 {
				t.Fatalf("negative stat %g at measure %d", v, j)
			}
		}
		if tu.Raw[0] > maxPoints {
			maxPoints = tu.Raw[0]
		}
		team := a.Dict().Decode(3, tu.Dims[3])
		opp := a.Dict().Decode(4, tu.Dims[4])
		if team == opp {
			t.Fatalf("team == opp_team (%s)", team)
		}
	}
	if maxPoints < 20 {
		t.Errorf("max points over 500 games = %g; star tail missing", maxPoints)
	}
}

func TestWeatherGenerator(t *testing.T) {
	g, err := NewWeather(WeatherConfig{Seed: 7, Locations: 40, Countries: 3}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(g.Schema())
	if err := g.Fill(tb, 300); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 300 {
		t.Fatalf("Fill produced %d rows", tb.Len())
	}
	if got := tb.Dict().Cardinality(0); got > 40 {
		t.Errorf("location cardinality %d exceeds config", got)
	}
	// Humidity bounded at 100.
	hIdx := g.Schema().MeasureIndex("humidity_day")
	for _, tu := range tb.Tuples() {
		if tu.Raw[hIdx] > 100 {
			t.Fatalf("humidity %g > 100", tu.Raw[hIdx])
		}
	}
	if _, err := NewWeather(WeatherConfig{}, 3, 7); err == nil {
		t.Error("NewWeather(d=3) should fail")
	}
	if _, err := NewWeather(WeatherConfig{}, 5, 3); err == nil {
		t.Error("NewWeather(m=3) should fail")
	}
}

func TestGenericDistributions(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, AntiCorrelated} {
		g, err := NewGeneric(GenericConfig{Seed: 1, D: 3, M: 3, Dist: dist, DimCardinality: 5})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		tb := relation.NewTable(g.Schema())
		if err := g.Fill(tb, 200); err != nil {
			t.Fatal(err)
		}
		if tb.Len() != 200 {
			t.Fatalf("%v: %d rows", dist, tb.Len())
		}
		if dist.String() == "" {
			t.Error("empty distribution name")
		}
		for _, tu := range tb.Tuples() {
			for _, d := range tu.Dims {
				if d < 0 || d >= 5 {
					t.Fatalf("dim code %d out of range", d)
				}
			}
		}
	}
	if Distribution(99).String() == "" {
		t.Error("unknown distribution should still render")
	}
}

// Correlated streams must have (far) fewer full-space skyline tuples than
// anti-correlated ones — the defining property of the regimes.
func TestGenericSkylineDensity(t *testing.T) {
	count := func(dist Distribution) int {
		g, err := NewGeneric(GenericConfig{Seed: 3, D: 1, M: 4, Dist: dist, MeasureLevels: 10000})
		if err != nil {
			t.Fatal(err)
		}
		tb := relation.NewTable(g.Schema())
		if err := g.Fill(tb, 400); err != nil {
			t.Fatal(err)
		}
		n := 0
		full := uint32(0b1111)
		for _, tu := range tb.Tuples() {
			in := true
			for _, u := range tb.Tuples() {
				if u == tu {
					continue
				}
				if dominates(u, tu, full) {
					in = false
					break
				}
			}
			if in {
				n++
			}
		}
		return n
	}
	c, a := count(Correlated), count(AntiCorrelated)
	if c*3 > a {
		t.Errorf("correlated skyline (%d) not much smaller than anti-correlated (%d)", c, a)
	}
}

func dominates(t, u *relation.Tuple, m uint32) bool {
	strict := false
	for i := 0; i < len(t.Oriented); i++ {
		if m&(1<<uint(i)) == 0 {
			continue
		}
		if t.Oriented[i] < u.Oriented[i] {
			return false
		}
		if t.Oriented[i] > u.Oriented[i] {
			strict = true
		}
	}
	return strict
}
