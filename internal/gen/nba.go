// Package gen produces the synthetic workloads of this reproduction. The
// paper evaluates on two real datasets we cannot redistribute (NBA box
// scores 1991–2004 and the UK Met Office forecast archive); the generators
// here match their attribute inventories, value cardinalities, and measure
// correlation structure, which is what the discovery algorithms are
// sensitive to (see DESIGN.md §2 for the substitution argument). All
// generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
)

// NBA dimension spaces for each d, mirroring Table V of the paper.
var nbaDimSpaces = map[int][]string{
	4: {"player", "season", "team", "opp_team"},
	5: {"player", "season", "month", "team", "opp_team"},
	6: {"position", "college", "state", "season", "team", "opp_team"},
	7: {"position", "college", "state", "season", "month", "team", "opp_team"},
	8: {"player", "position", "college", "state", "season", "month", "team", "opp_team"},
}

// NBA measure spaces for each m, mirroring Table VI.
var nbaMeasureSpaces = map[int][]string{
	4: {"points", "rebounds", "assists", "blocks"},
	5: {"points", "rebounds", "assists", "blocks", "steals"},
	6: {"points", "rebounds", "assists", "blocks", "steals", "fouls"},
	7: {"points", "rebounds", "assists", "blocks", "steals", "fouls", "turnovers"},
}

// nbaDirections: smaller values are preferred on turnovers and fouls
// (paper §VI-A), larger on all others.
var nbaDirections = map[string]relation.Direction{
	"points": relation.LargerBetter, "rebounds": relation.LargerBetter,
	"assists": relation.LargerBetter, "blocks": relation.LargerBetter,
	"steals": relation.LargerBetter, "fouls": relation.SmallerBetter,
	"turnovers": relation.SmallerBetter,
}

// NBAConfig sizes the simulated league. Zero values take the defaults
// below, which approximate the real dataset's cardinalities.
type NBAConfig struct {
	Seed     int64
	Players  int // default 1200 (≈ distinct players 1991–2004)
	Teams    int // default 29
	Colleges int // default 300
	States   int // default 50
	Seasons  int // default 13 (1991-92 .. 2003-04)
	Months   int // default 8  (Oct–May)
}

func (c *NBAConfig) defaults() {
	if c.Players == 0 {
		c.Players = 1200
	}
	if c.Teams == 0 {
		c.Teams = 29
	}
	if c.Colleges == 0 {
		c.Colleges = 300
	}
	if c.States == 0 {
		c.States = 50
	}
	if c.Seasons == 0 {
		c.Seasons = 13
	}
	if c.Months == 0 {
		c.Months = 8
	}
}

// NBASchema returns the schema for the paper's d-dimension / m-measure
// NBA space (Tables V and VI). Valid d: 4–8; valid m: 4–7.
func NBASchema(d, m int) (*relation.Schema, error) {
	dims, ok := nbaDimSpaces[d]
	if !ok {
		return nil, fmt.Errorf("gen: no NBA dimension space for d=%d", d)
	}
	measures, ok := nbaMeasureSpaces[m]
	if !ok {
		return nil, fmt.Errorf("gen: no NBA measure space for m=%d", m)
	}
	da := make([]relation.DimAttr, len(dims))
	for i, n := range dims {
		da[i] = relation.DimAttr{Name: n}
	}
	ma := make([]relation.MeasureAttr, len(measures))
	for i, n := range measures {
		ma[i] = relation.MeasureAttr{Name: n, Direction: nbaDirections[n]}
	}
	return relation.NewSchema("nba", da, ma)
}

// nbaPlayer is the latent state driving one player's stat lines.
type nbaPlayer struct {
	position int // 0..4 (PG, SG, SF, PF, C)
	college  int
	state    int
	team     int
	// skill is the per-measure scoring propensity (mean per game).
	skill [7]float64
	// debutSeason is the first season the player appears in; new players
	// entering each year keep forming new contexts (the paper's Fig 14
	// explanation).
	debutSeason int
}

// NBAGenerator streams synthetic box-score rows in chronological order.
type NBAGenerator struct {
	cfg     NBAConfig
	rng     *rand.Rand
	players []nbaPlayer
	schema  *relation.Schema
	dims    []string
	// row counters for chronological ordering
	season, month int
}

// NewNBA creates a generator for the d/m space of Tables V and VI.
func NewNBA(cfg NBAConfig, d, m int) (*NBAGenerator, error) {
	cfg.defaults()
	schema, err := NBASchema(d, m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &NBAGenerator{cfg: cfg, rng: rng, schema: schema, dims: nbaDimSpaces[d]}
	g.players = make([]nbaPlayer, cfg.Players)
	for i := range g.players {
		p := &g.players[i]
		p.position = rng.Intn(5)
		p.college = rng.Intn(cfg.Colleges)
		p.state = rng.Intn(cfg.States)
		p.team = rng.Intn(cfg.Teams)
		p.debutSeason = rng.Intn(cfg.Seasons)
		// Latent overall ability plus position-flavoured per-stat means.
		ability := 0.5 + rng.Float64() // 0.5 .. 1.5
		star := 1.0
		if rng.Float64() < 0.05 {
			star = 1.8 // a few stars generate the record-setting tail
		}
		base := ability * star
		// means: points, rebounds, assists, blocks, steals, fouls, turnovers
		p.skill = [7]float64{
			base * (6 + 10*rng.Float64()),
			base * (2 + 5*rng.Float64()),
			base * (1 + 4*rng.Float64()),
			base * (0.2 + 1.2*rng.Float64()),
			base * (0.3 + 1.0*rng.Float64()),
			2 + 2*rng.Float64(), // fouls: ability-independent
			1 + 2*rng.Float64(), // turnovers rise slightly with usage
		}
		switch p.position {
		case 0: // point guard
			p.skill[2] *= 2.2
			p.skill[1] *= 0.6
		case 3, 4: // bigs
			p.skill[1] *= 1.8
			p.skill[3] *= 2.0
			p.skill[2] *= 0.5
		}
	}
	return g, nil
}

// Schema returns the generator's schema.
func (g *NBAGenerator) Schema() *relation.Schema { return g.schema }

// Fill appends n rows to tb (which must use g.Schema()).
func (g *NBAGenerator) Fill(tb *relation.Table, n int) error {
	for i := 0; i < n; i++ {
		dims, meas := g.next()
		if _, err := tb.Append(dims, meas); err != nil {
			return err
		}
	}
	return nil
}

// next produces one chronological box-score row.
func (g *NBAGenerator) next() ([]string, []float64) {
	rng := g.rng
	// Advance the clock a little: many rows share a (season, month).
	if rng.Float64() < 0.002 {
		g.month++
		if g.month >= g.cfg.Months {
			g.month = 0
			g.season = (g.season + 1) % g.cfg.Seasons
		}
	}
	// Pick a player active this season.
	var pi int
	for {
		pi = rng.Intn(len(g.players))
		if g.players[pi].debutSeason <= g.season {
			break
		}
	}
	p := &g.players[pi]
	opp := rng.Intn(g.cfg.Teams - 1)
	if opp >= p.team {
		opp++
	}
	// Game factor correlates the counting stats within a row ("a good
	// night"), producing the correlated measure structure of real box
	// scores; fouls/turnovers stay roughly independent.
	game := math.Exp(0.45 * rng.NormFloat64())
	var stats [7]float64
	for s := 0; s < 5; s++ {
		stats[s] = poissonish(rng, p.skill[s]*game)
	}
	stats[5] = math.Min(6, poissonish(rng, p.skill[5]))
	stats[6] = poissonish(rng, p.skill[6]*math.Sqrt(game))

	all := map[string]string{
		"player":   fmt.Sprintf("P%04d", pi),
		"position": [5]string{"PG", "SG", "SF", "PF", "C"}[p.position],
		"college":  fmt.Sprintf("College%03d", p.college),
		"state":    fmt.Sprintf("State%02d", p.state),
		"season":   fmt.Sprintf("19%02d-%02d", 91+g.season, 92+g.season),
		"month":    [12]string{"Oct", "Nov", "Dec", "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep"}[g.month%12],
		"team":     fmt.Sprintf("Team%02d", p.team),
		"opp_team": fmt.Sprintf("Team%02d", opp),
	}
	dims := make([]string, len(g.dims))
	for i, name := range g.dims {
		dims[i] = all[name]
	}
	meas := make([]float64, g.schema.NumMeasures())
	order := nbaMeasureSpaces[7]
	for i := 0; i < g.schema.NumMeasures(); i++ {
		name := g.schema.Measure(i).Name
		for j, n := range order {
			if n == name {
				meas[i] = stats[j]
				break
			}
		}
	}
	return dims, meas
}

// poissonish draws a cheap integer-valued approximation of a Poisson with
// the given mean (normal approximation, clamped at zero), adequate for
// workload shaping.
func poissonish(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := mean + math.Sqrt(mean)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return math.Floor(v)
}
