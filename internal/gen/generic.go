package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Distribution selects the measure-correlation regime of the generic
// workload generator — the three classic skyline benchmarks (Börzsönyi et
// al.): independent, correlated (few skyline tuples) and anti-correlated
// (many skyline tuples). Used for ablation benches.
type Distribution int

const (
	// Independent draws each measure uniformly at random.
	Independent Distribution = iota
	// Correlated draws measures around a shared per-tuple level.
	Correlated
	// AntiCorrelated makes good values on one measure imply bad values on
	// others (maximally many skyline tuples).
	AntiCorrelated
)

func (d Distribution) String() string {
	switch d {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// GenericConfig parameterises the generic workload.
type GenericConfig struct {
	Seed int64
	// D and M size the schema.
	D, M int
	// DimCardinality is the domain size of every dimension attribute
	// (values drawn with a mild Zipf-like skew). Default 10.
	DimCardinality int
	// MeasureLevels is the number of distinct measure values (introduces
	// ties, the hard case). Default 1000.
	MeasureLevels int
	// Dist selects the correlation regime.
	Dist Distribution
}

// GenericGenerator produces schema-agnostic streams for ablations and
// stress tests.
type GenericGenerator struct {
	cfg    GenericConfig
	rng    *rand.Rand
	schema *relation.Schema
}

// NewGeneric creates the generator.
func NewGeneric(cfg GenericConfig) (*GenericGenerator, error) {
	if cfg.DimCardinality == 0 {
		cfg.DimCardinality = 10
	}
	if cfg.MeasureLevels == 0 {
		cfg.MeasureLevels = 1000
	}
	dims := make([]relation.DimAttr, cfg.D)
	for i := range dims {
		dims[i] = relation.DimAttr{Name: fmt.Sprintf("d%d", i+1)}
	}
	measures := make([]relation.MeasureAttr, cfg.M)
	for i := range measures {
		measures[i] = relation.MeasureAttr{Name: fmt.Sprintf("m%d", i+1), Direction: relation.LargerBetter}
	}
	schema, err := relation.NewSchema("generic", dims, measures)
	if err != nil {
		return nil, err
	}
	return &GenericGenerator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), schema: schema}, nil
}

// Schema returns the generator's schema.
func (g *GenericGenerator) Schema() *relation.Schema { return g.schema }

// Fill appends n rows to tb (which must use g.Schema()).
func (g *GenericGenerator) Fill(tb *relation.Table, n int) error {
	for i := 0; i < n; i++ {
		dims := make([]int32, g.cfg.D)
		for j := range dims {
			dims[j] = g.zipfish()
		}
		meas := make([]float64, g.cfg.M)
		levels := float64(g.cfg.MeasureLevels)
		switch g.cfg.Dist {
		case Correlated:
			level := g.rng.Float64()
			for j := range meas {
				v := level + 0.15*g.rng.NormFloat64()
				meas[j] = clampLevel(v, levels)
			}
		case AntiCorrelated:
			// Points near a hyperplane: total budget split across measures.
			budget := 0.5 + 0.1*g.rng.NormFloat64()
			w := make([]float64, g.cfg.M)
			sum := 0.0
			for j := range w {
				w[j] = g.rng.Float64()
				sum += w[j]
			}
			for j := range meas {
				meas[j] = clampLevel(budget*w[j]*float64(g.cfg.M)/sum, levels)
			}
		default: // Independent
			for j := range meas {
				meas[j] = clampLevel(g.rng.Float64(), levels)
			}
		}
		if _, err := tb.AppendEncoded(dims, meas); err != nil {
			return err
		}
	}
	return nil
}

// zipfish draws a dimension value with a mild skew: a handful of values
// account for most rows, like real players/teams/locations do.
func (g *GenericGenerator) zipfish() int32 {
	card := g.cfg.DimCardinality
	// P(v) ∝ 1/(v+1): cheap inverse-CDF-free approximation by rejection.
	for {
		v := g.rng.Intn(card)
		if g.rng.Float64() < 1.0/float64(v+1) {
			return int32(v)
		}
	}
}

func clampLevel(v, levels float64) float64 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return float64(int(v * levels))
}
