package middleware

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Gate bounds concurrent in-flight requests: past max, new requests are
// shed with 503 + Retry-After instead of queueing goroutines without
// bound. Admission is a single CAS-free Add/compare, so the uncontended
// cost is two atomic ops per request.
type Gate struct {
	max      int64
	inflight atomic.Int64
	peak     atomic.Int64
	shed     atomic.Uint64
}

// NewGate bounds in-flight requests at max; max <= 0 returns nil (off).
func NewGate(max int) *Gate {
	if max <= 0 {
		return nil
	}
	return &Gate{max: int64(max)}
}

// Enter admits one request, reporting false (and counting a shed) when
// the bound is reached. Every true return must be paired with Exit.
func (g *Gate) Enter() bool {
	n := g.inflight.Add(1)
	if n > g.max {
		g.inflight.Add(-1)
		g.shed.Add(1)
		return false
	}
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return true
		}
	}
}

// Exit releases one admitted request.
func (g *Gate) Exit() { g.inflight.Add(-1) }

// Inflight is the current admitted-request count.
func (g *Gate) Inflight() int64 {
	if g == nil {
		return 0
	}
	return g.inflight.Load()
}

// Peak is the highest concurrent admitted count observed; by
// construction it never exceeds the configured bound.
func (g *Gate) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Shed counts requests rejected at the bound.
func (g *Gate) Shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

// Bound returns the configured limit (0 = off).
func (g *Gate) Bound() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// InflightLimit sheds requests past the gate's bound with 503 +
// Retry-After. A nil gate is the identity.
func InflightLimit(g *Gate) Func {
	if g == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !g.Enter() {
				SetVerdict(r, "shed")
				writeShed(w, "too many in-flight requests")
				return
			}
			defer g.Exit()
			next.ServeHTTP(w, r)
		})
	}
}

// Shedder is the backpressure half of admission control: an external
// sampler feeds it saturation observations (for situfactd: "some shard
// writer's queue sits at its ceiling and producers blocked on it since
// the last sample"), and once saturation has held for the window, write
// requests are shed with 503 + Retry-After until a calm sample lands.
// A shed request was rejected before anything was journaled or applied,
// so the degraded-mode ack invariant carries over: a shed row was never
// acked.
type Shedder struct {
	window time.Duration
	// satSince is the UnixNano start of the current saturation run
	// (0 = calm). Only the sampler goroutine writes it.
	satSince atomic.Int64
	active   atomic.Bool
	shed     atomic.Uint64
}

// NewShedder sheds writes after saturation holds for window; window <= 0
// returns nil (shedding off).
func NewShedder(window time.Duration) *Shedder {
	if window <= 0 {
		return nil
	}
	return &Shedder{window: window}
}

// Observe feeds one saturation sample at time now. Called from a single
// sampler goroutine.
func (s *Shedder) Observe(saturated bool, now time.Time) {
	if !saturated {
		s.satSince.Store(0)
		s.active.Store(false)
		return
	}
	since := s.satSince.Load()
	if since == 0 {
		s.satSince.Store(now.UnixNano())
		return
	}
	if now.Sub(time.Unix(0, since)) >= s.window {
		s.active.Store(true)
	}
}

// Shedding reports whether writes are currently being shed.
func (s *Shedder) Shedding() bool {
	if s == nil {
		return false
	}
	return s.active.Load()
}

// Shed counts write requests rejected while shedding.
func (s *Shedder) Shed() uint64 {
	if s == nil {
		return 0
	}
	return s.shed.Load()
}

// ShedWrites rejects mutating requests (anything but GET/HEAD) with
// 503 + Retry-After while the shedder is active. Reads always pass: the
// saturated resource is the ingest pipeline, and shedding reads would
// only widen the outage. A nil shedder is the identity.
func ShedWrites(s *Shedder) Func {
	if s == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead && s.active.Load() {
				s.shed.Add(1)
				SetVerdict(r, "shed")
				writeShed(w, "ingest overloaded: writes are being shed")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// writeShed answers one shed request: 503, Retry-After 1 — the same
// shape degraded mode uses, so clients need one retry discipline.
func writeShed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte(`{"error":"` + msg + `"}` + "\n"))
}
