// Package middleware is situfactd's request-lifecycle and admission-
// control layer: composable http.Handler wrappers for panic recovery,
// structured request logging, per-request deadlines, per-client token-
// bucket rate limiting (limiter.go) and overload shedding (overload.go).
//
// The package is deliberately generic and dependency-free — it knows
// nothing about pools, journals or shards. The daemon composes a chain
// in front of its mux; every counter a wrapper maintains is exported
// through a snapshot method so /v1/metrics can surface it without the
// package knowing about wire formats.
//
// A request's admission outcome (the "verdict": limited, shed, panic)
// travels to the access logger through a per-request context slot, so
// the log line can say WHY a 429/503 happened without the wrappers
// knowing about each other.
package middleware

import (
	"context"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Func is one middleware layer: it wraps a handler in another.
type Func func(http.Handler) http.Handler

// Chain composes layers outermost-first: Chain(a, b)(h) serves a(b(h)).
func Chain(layers ...Func) Func {
	return func(next http.Handler) http.Handler {
		for i := len(layers) - 1; i >= 0; i-- {
			next = layers[i](next)
		}
		return next
	}
}

// verdictKey indexes the per-request verdict slot in the context.
type verdictKey struct{}

// verdictSlot is mutable so inner layers can record a verdict into a
// context installed by an outer layer (contexts themselves are
// immutable).
type verdictSlot struct{ v string }

// WithVerdict installs an empty verdict slot on the request; the access
// logger does this so inner layers' SetVerdict calls reach its log line.
func WithVerdict(r *http.Request) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), verdictKey{}, &verdictSlot{}))
}

// SetVerdict records the admission outcome ("limited", "shed", "panic")
// for the request's log line. A no-op when no slot is installed (logging
// off).
func SetVerdict(r *http.Request, v string) {
	if s, ok := r.Context().Value(verdictKey{}).(*verdictSlot); ok {
		s.v = v
	}
}

// Verdict reads the recorded admission outcome ("" = served normally).
func Verdict(r *http.Request) string {
	if s, ok := r.Context().Value(verdictKey{}).(*verdictSlot); ok {
		return s.v
	}
	return ""
}

// statusWriter records the status code and body bytes a handler wrote,
// for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush passes http.Flusher through so streaming responses (the
// snapshot stream) keep flushing under the logger.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Recover turns a handler panic into a 500 for that one request instead
// of a dead daemon: the stack goes to logf, panics increments, and the
// connection gets an error response if no bytes were written yet.
func Recover(logf func(format string, args ...any), panics *atomic.Uint64) Func {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw, isSW := w.(*statusWriter)
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if panics != nil {
					panics.Add(1)
				}
				SetVerdict(r, "panic")
				logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				// Only answer if the handler had not started the response;
				// otherwise the truncated body is the client's signal.
				if !isSW || sw.status == 0 {
					http.Error(w, `{"error":"internal server error"}`, http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// Log writes one structured line per request: method, path, status,
// bytes, duration, client and the admission verdict, via logf. It
// installs the verdict slot, so it must sit outside the admission
// layers whose outcomes it reports.
func Log(logf func(format string, args ...any)) Func {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			r = WithVerdict(r)
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			verdict := Verdict(r)
			if verdict == "" {
				verdict = "-"
			}
			logf("request method=%s path=%s status=%d bytes=%d duration=%s client=%s verdict=%s",
				r.Method, r.URL.Path, status, sw.bytes, time.Since(start).Round(time.Microsecond),
				ClientKey(r), verdict)
		})
	}
}

// Deadline bounds each request with a context deadline, so a handler
// parked downstream (a full ingest queue, a long scan) gives up when
// the budget runs out instead of holding resources for a client that
// may be long gone. d <= 0 is the identity.
func Deadline(d time.Duration) Func {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
