package middleware

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMiddlewareRecoverTurnsPanicInto500(t *testing.T) {
	var panics atomic.Uint64
	var logged string
	h := Chain(
		Log(func(format string, args ...any) {}),
		Recover(func(format string, args ...any) { logged = fmt.Sprintf(format, args...) }, &panics),
	)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if panics.Load() != 1 {
		t.Fatalf("panics = %d, want 1", panics.Load())
	}
	if !strings.Contains(logged, "kaboom") {
		t.Fatalf("panic log %q does not name the panic value", logged)
	}
	// A second request serves normally: the daemon survived.
	h = Chain(Recover(func(string, ...any) {}, &panics))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("post-panic status = %d, want 204", rec.Code)
	}
}

func TestMiddlewareLogCarriesVerdict(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	h := Chain(Log(logf))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		SetVerdict(r, "shed")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("busy"))
	}))
	req := httptest.NewRequest("POST", "/v1/tuples", nil)
	req.RemoteAddr = "198.51.100.7:4242"
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	for _, want := range []string{"method=POST", "path=/v1/tuples", "status=503", "bytes=4", "client=198.51.100.7", "verdict=shed"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("log line %q missing %q", lines[0], want)
		}
	}
}

func TestMiddlewareDeadlinePropagates(t *testing.T) {
	var sawDeadline atomic.Bool
	h := Chain(Deadline(10 * time.Millisecond))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			sawDeadline.Store(true)
		}
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
			t.Error("request context never expired")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !sawDeadline.Load() {
		t.Fatal("handler saw no context deadline")
	}
	// Deadline(0) is the identity: no deadline installed.
	h = Chain(Deadline(0))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("Deadline(0) installed a deadline")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}

func TestMiddlewareVerdictWithoutSlotIsNoop(t *testing.T) {
	r := httptest.NewRequest("GET", "/x", nil)
	SetVerdict(r, "shed") // must not panic
	if v := Verdict(r); v != "" {
		t.Fatalf("verdict without slot = %q, want empty", v)
	}
}

func TestMiddlewareChainOrder(t *testing.T) {
	var order []string
	layer := func(name string) Func {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(layer("outer"), layer("inner"))(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("execution order = %v, want [outer inner]", order)
	}
}

func TestLimiterTokenBucket(t *testing.T) {
	l := NewLimiter(10, 2) // 10/s, burst 2
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", now); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.Allow("a", now)
	if ok {
		t.Fatal("third immediate request admitted past the burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry wait = %v, want (0, 1s]", wait)
	}
	// Another client has its own bucket.
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("independent client rejected")
	}
	// 100ms accrues one token at 10/s.
	if ok, _ := l.Allow("a", now.Add(100*time.Millisecond)); !ok {
		t.Fatal("token did not accrue")
	}
	if l.Limited() != 1 {
		t.Fatalf("limited = %d, want 1", l.Limited())
	}
	if NewLimiter(0, 5) != nil {
		t.Fatal("rate 0 should build no limiter")
	}
}

func TestLimiterEvictionBoundsClients(t *testing.T) {
	l := NewLimiter(1, 1)
	now := time.Now()
	for i := 0; i < limiterMaxClients+10; i++ {
		l.Allow(fmt.Sprintf("c%d", i), now)
	}
	if n := l.Clients(); n > limiterMaxClients {
		t.Fatalf("clients = %d, want <= %d", n, limiterMaxClients)
	}
}

func TestLimitMiddleware429(t *testing.T) {
	l := NewLimiter(1, 1)
	h := Chain(Log(func(string, ...any) {}), Limit(l))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("POST", "/v1/tuples", nil)
	req.RemoteAddr = "203.0.113.9:1000"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After")
	}
}

func TestLimiterClientKey(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.RemoteAddr = "192.0.2.1:5555"
	if k := ClientKey(r); k != "192.0.2.1" {
		t.Fatalf("ip key = %q", k)
	}
	r.Header.Set("Authorization", "Bearer sekrit")
	if k := ClientKey(r); k != "token:sekrit" {
		t.Fatalf("token key = %q", k)
	}
}

func TestOverloadGateBoundsInflight(t *testing.T) {
	g := NewGate(3)
	block := make(chan struct{})
	entered := make(chan struct{}, 16)
	h := Chain(InflightLimit(g))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
	}))
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		}()
	}
	for i := 0; i < 3; i++ {
		<-entered
	}
	// The 4th is over the bound: shed synchronously with 503.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-bound status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	if g.Shed() != 1 || g.Inflight() != 3 || g.Peak() != 3 {
		t.Fatalf("shed=%d inflight=%d peak=%d, want 1/3/3", g.Shed(), g.Inflight(), g.Peak())
	}
	close(block)
	wg.Wait()
	if g.Inflight() != 0 {
		t.Fatalf("inflight after drain = %d, want 0", g.Inflight())
	}
	if g.Peak() > g.Bound() {
		t.Fatalf("peak %d exceeded bound %d", g.Peak(), g.Bound())
	}
}

func TestOverloadShedderWindow(t *testing.T) {
	s := NewShedder(100 * time.Millisecond)
	now := time.Now()
	s.Observe(true, now)
	if s.Shedding() {
		t.Fatal("shedding before the window elapsed")
	}
	s.Observe(true, now.Add(50*time.Millisecond))
	if s.Shedding() {
		t.Fatal("shedding at half the window")
	}
	s.Observe(true, now.Add(110*time.Millisecond))
	if !s.Shedding() {
		t.Fatal("not shedding after a full saturated window")
	}
	s.Observe(false, now.Add(120*time.Millisecond))
	if s.Shedding() {
		t.Fatal("one calm sample should clear shedding")
	}
	// A fresh saturation run restarts the clock.
	s.Observe(true, now.Add(130*time.Millisecond))
	s.Observe(true, now.Add(140*time.Millisecond))
	if s.Shedding() {
		t.Fatal("shedding resumed without a full new window")
	}
}

func TestOverloadShedWritesLetsReadsPass(t *testing.T) {
	s := NewShedder(time.Nanosecond)
	now := time.Now()
	s.Observe(true, now)
	s.Observe(true, now.Add(time.Millisecond))
	if !s.Shedding() {
		t.Fatal("shedder not active")
	}
	h := Chain(ShedWrites(s))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/tuples", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write during shedding = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/facts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("read during shedding = %d, want 200", rec.Code)
	}
	if s.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", s.Shed())
	}
}

func TestOverloadNilLayersAreIdentity(t *testing.T) {
	h := Chain(Limit(nil), InflightLimit(nil), ShedWrites(nil))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status through nil layers = %d, want 418", rec.Code)
	}
	if (*Gate)(nil).Inflight() != 0 || (*Shedder)(nil).Shedding() || (*Limiter)(nil).Limited() != 0 {
		t.Fatal("nil receivers must read as zero")
	}
}

func TestMiddlewareDeadlineCancelsParkedHandler(t *testing.T) {
	// The deadline must reach downstream waits: a handler parked on a
	// context-aware wait returns once the budget runs out.
	h := Chain(Deadline(20 * time.Millisecond))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		select {
		case <-ctx.Done():
			if ctx.Err() != context.DeadlineExceeded {
				t.Errorf("ctx err = %v, want deadline exceeded", ctx.Err())
			}
		case <-time.After(5 * time.Second):
			t.Error("parked handler never released")
		}
	}))
	start := time.Now()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/", nil))
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("request held %v past its 20ms budget", d)
	}
}
