package middleware

import (
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// limiterMaxClients bounds the per-client bucket map: past it, the
// stalest buckets are evicted. A full bucket is the zero state (a new
// client starts full), so eviction can only ever be generous.
const limiterMaxClients = 65536

// Limiter is a per-client token-bucket rate limiter: each client key
// accrues rate tokens per second up to burst, and a request costs one.
// A drained bucket answers (false, wait-until-one-token), which the
// middleware maps to 429 + Retry-After.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket

	limited atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time // last refill
}

// NewLimiter builds a limiter granting rate requests/second per client
// with the given burst (<= 0 selects max(2×rate, 1)). A rate <= 0
// returns nil — the middleware treats a nil limiter as "off".
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = max(2*rate, 1)
	}
	return &Limiter{rate: rate, burst: b, clients: make(map[string]*bucket)}
}

// Allow spends one token of key's bucket at time now. When the bucket
// is dry it reports false plus how long until one token accrues — the
// Retry-After the client should honor.
func (l *Limiter) Allow(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[key]
	if b == nil {
		if len(l.clients) >= limiterMaxClients {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(b.tokens+dt*l.rate, l.burst)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.limited.Add(1)
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// evictLocked drops the stalest quarter of the buckets. Caller holds mu.
func (l *Limiter) evictLocked(now time.Time) {
	cutoff := now.Add(-time.Minute)
	for k, b := range l.clients {
		if b.last.Before(cutoff) {
			delete(l.clients, k)
		}
	}
	if len(l.clients) < limiterMaxClients {
		return
	}
	// Everyone is recent: drop arbitrarily to a quarter headroom. A
	// dropped client restarts with a full bucket — generous, never unfair.
	drop := limiterMaxClients / 4
	for k := range l.clients {
		if drop == 0 {
			break
		}
		delete(l.clients, k)
		drop--
	}
}

// Limited counts requests rejected with 429 since start.
func (l *Limiter) Limited() uint64 {
	if l == nil {
		return 0
	}
	return l.limited.Load()
}

// Clients is the live bucket count (testing and metrics).
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// ClientKey identifies the client a bucket belongs to: the Authorization
// token when one is presented (so all connections of one authenticated
// client share a budget), the remote IP otherwise (port stripped — every
// connection from one host shares a budget).
func ClientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return "token:" + tok
		}
		return "auth:" + auth
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Limit rejects requests whose client bucket is dry with 429 +
// Retry-After. A nil limiter is the identity (rate limiting off).
func Limit(l *Limiter) Func {
	if l == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ok, wait := l.Allow(ClientKey(r), time.Now())
			if !ok {
				SetVerdict(r, "limited")
				w.Header().Set("Retry-After", retryAfterSeconds(wait))
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write([]byte(`{"error":"rate limit exceeded: retry after the Retry-After delay"}` + "\n"))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// retryAfterSeconds renders a wait as the whole-second Retry-After
// value, at least 1 (the header has no sub-second form).
func retryAfterSeconds(wait time.Duration) string {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs < 1 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
