// Package persist is the durability layer of the repo: everything that
// touches disk to make a long-running stream survive a crash lives here,
// behind thin public wrappers in the root package.
//
// Three cooperating pieces:
//
//   - WAL — a segmented, CRC-framed write-ahead log of ingest operations
//     (appends and deletes). Records are assigned monotonically increasing
//     LSNs, appended through one buffered writer, and made durable by
//     group-committed fsyncs: concurrent WaitSync callers coalesce into a
//     single fsync covering all of them. Segments rotate at a size
//     threshold and are deleted once a snapshot covers them.
//
//   - EngineSnapshot — the gob codec for one engine's complete state
//     (dictionary, tuples, tombstones, µ-store cells, prominence counters,
//     work metrics), previously embedded in the root snapshot.go.
//
//   - Manifest — the generational commit record of a pool snapshot
//     directory. Shard files carry a generation number; the manifest,
//     written last and atomically, names the generation it covers, the
//     per-shard WAL LSN each shard file reflects (so replay resumes
//     exactly where the snapshot ends), and small opaque sidecar payloads
//     committed atomically with the snapshot (the daemon persists its
//     prominence leaderboard this way).
//
// Crash-safety rules the WAL reader enforces: a record whose bytes are
// incomplete at the tail of the final segment is a torn write — it is
// truncated away and the log continues from the last complete record. A
// record that is fully present but fails its CRC, appears out of LSN
// sequence, or sits in a non-final segment with a short tail is corruption
// and fails loudly: recovering past it would silently lose data.
package persist
