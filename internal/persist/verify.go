package persist

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// SegmentReport is VerifyWAL's account of one segment file.
type SegmentReport struct {
	// Name is the segment's file name within the log directory.
	Name string
	// Base is the LSN of the segment's first record.
	Base uint64
	// Records is how many CRC-valid records the segment holds.
	Records int
	// Bytes is the byte offset after the last complete record.
	Bytes int64
	// Torn reports a torn tail past Bytes — tolerable in the final
	// segment (Open repairs it), corruption anywhere else.
	Torn bool
}

// VerifyWAL is the offline fsck behind `situfactd -wal-verify`: it
// replay-scans every segment of the log at dir — meta identity, framing,
// CRCs, LSN density within and across segments — without ever opening
// anything for writing, and returns what it saw. The error wraps
// ErrCorrupt on damage; reports cover the segments scanned up to and
// including the damaged one, so the caller can print how far the log was
// clean. A torn tail in the final segment is reported, not repaired, and
// is not an error: the next Open truncates it.
func VerifyWAL(dir string) ([]SegmentReport, error) {
	f, err := os.Open(filepath.Join(dir, walMetaName))
	if err != nil {
		return nil, fmt.Errorf("wal verify: %w", err)
	}
	var m walMeta
	err = gob.NewDecoder(f).Decode(&m)
	f.Close()
	if err != nil || m.Magic != walMetaMagic {
		return nil, fmt.Errorf("wal verify: %s is not a wal meta file: %w", walMetaName, ErrCorrupt)
	}
	bases, err := listSegments(faultfs.OS, dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("wal verify: no segments in %s: %w", dir, ErrCorrupt)
	}
	var reports []SegmentReport
	for i, base := range bases {
		isLast := i == len(bases)-1
		path := filepath.Join(dir, fmt.Sprintf("wal-%020d%s", base, segmentSuffix))
		rep := SegmentReport{Name: filepath.Base(path), Base: base}
		end, next, torn, err := readSegment(faultfs.OS, path, base, isLast, func(Record) error {
			rep.Records++
			return nil
		})
		if err != nil {
			reports = append(reports, rep)
			return reports, err
		}
		rep.Bytes = end
		rep.Torn = torn
		reports = append(reports, rep)
		if !isLast && bases[i+1] != next {
			return reports, fmt.Errorf("wal: gap between segments: %d ends at lsn %d, next starts at %d: %w",
				base, next-1, bases[i+1], ErrCorrupt)
		}
	}
	return reports, nil
}
