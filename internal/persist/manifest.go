package persist

import (
	"repro/internal/faultfs"

	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Pool snapshots are generational: shard files carry a generation number,
// and the manifest — written last, atomically — is the commit record
// naming the generation it covers. A save that dies partway leaves either
// no manifest (fresh directory: the next start begins clean) or the
// previous manifest still pointing at the previous generation's complete
// file set; mixed-generation restores are impossible. Files of superseded
// generations are removed after a successful commit.

// Manifest is the commit record of a pool snapshot directory.
type Manifest struct {
	Magic     string
	SchemaSig string
	ShardDim  string
	Shards    int
	// Generation numbers the committed shard-file set.
	Generation uint64
	// ShardLSNs[i] is the WAL LSN shard i's snapshot file reflects: replay
	// applies only records with a higher LSN to that shard. Nil for
	// snapshots taken without an attached WAL (and for pre-WAL snapshots,
	// which gob-decodes identically).
	ShardLSNs []uint64
	// WALEpoch is the epoch of the log the ShardLSNs refer to (see
	// WAL.Epoch). LSN watermarks are only meaningful against that exact
	// log instance; replay against a log with a different epoch must
	// discard them. Empty without an attached WAL.
	WALEpoch string
	// Sidecars are small opaque payloads committed atomically with the
	// snapshot — the daemon persists its prominence leaderboard here.
	Sidecars map[string][]byte
}

const (
	manifestMagic = "situfact-pool-snapshot-v1"
	// ManifestName is the manifest's file name inside the snapshot dir.
	ManifestName = "pool.manifest"
)

// ShardSnapshotName names shard i's snapshot file of a generation.
func ShardSnapshotName(i int, gen uint64) string {
	return fmt.Sprintf("shard-%d.g%d.snap", i, gen)
}

// ReadManifest loads dir's manifest; ok is false when none exists.
func ReadManifest(dir string) (man Manifest, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&man); err != nil {
		return Manifest{}, false, fmt.Errorf("decode manifest: %w", err)
	}
	if man.Magic != manifestMagic {
		return Manifest{}, false, fmt.Errorf("%s is not a pool snapshot manifest", dir)
	}
	return man, true, nil
}

// WriteManifest atomically commits man as dir's manifest, stamping the
// magic itself.
func WriteManifest(dir string, man Manifest) error {
	man.Magic = manifestMagic
	return WriteFileAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(&man)
	})
}

// RemoveGeneration deletes a superseded generation's shard files.
// Best-effort: once the manifest moved on they can never be restored, so
// a leftover file is garbage, not a hazard.
func RemoveGeneration(dir string, shards int, gen uint64) {
	for i := 0; i < shards; i++ {
		os.Remove(filepath.Join(dir, ShardSnapshotName(i, gen)))
	}
}

// WriteFileAtomic writes data produced by write to path via a temp file,
// fsync and rename, then syncs the directory — so neither a crash mid-save
// nor a power loss shortly after can leave a renamed-but-unflushed file
// behind the commit point.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(faultfs.OS, dir)
}
