package persist

import (
	"math"
	"testing"
)

// FuzzParsePayload drives the WAL payload decoder with arbitrary bytes.
// The decoder sits behind a CRC in normal operation, but a corrupt frame
// that happens to checksum correctly must parse-fail cleanly — never
// panic, never allocate unboundedly. For payloads that do parse, the
// decoded record must survive a re-encode/re-parse cycle unchanged:
// appendFrame writes canonical (minimal) varints, so byte equality with
// the fuzzed input is NOT required — binary.Uvarint accepts non-minimal
// encodings — but value equality is.
func FuzzParsePayload(f *testing.F) {
	seed := func(rec Record) {
		f.Add(appendFrame(nil, rec)[frameHeaderLen:])
	}
	seed(Record{Type: RecAppend, LSN: 1, Shard: 0,
		Dims: []string{"team-3", "player-11"}, Measures: []float64{41, 12.5}})
	seed(Record{Type: RecAppend, LSN: 1 << 40, Shard: 7,
		Dims: []string{"", "x", ""}, Measures: nil})
	seed(Record{Type: RecAppend, LSN: 2, Shard: 1,
		Dims: nil, Measures: []float64{math.Inf(1), math.NaN(), -0.0}})
	seed(Record{Type: RecDelete, LSN: 9, Shard: 2, TupleID: 12345})
	seed(Record{Type: RecDelete, LSN: 1, Shard: 0, TupleID: 0})
	// Malformed shapes: unknown type, truncated counts, oversized counts.
	f.Add([]byte{})
	f.Add([]byte{3, 1, 0})
	f.Add([]byte{1, 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{1, 1, 0, 1, 200})
	f.Add([]byte{2, 1, 0, 5, 99})

	f.Fuzz(func(t *testing.T, p []byte) {
		rec, err := parsePayload(p)
		if err != nil {
			return
		}
		reenc := appendFrame(nil, rec)
		rec2, err := parsePayload(reenc[frameHeaderLen:])
		if err != nil {
			t.Fatalf("re-parse of re-encoded record failed: %v\nrecord %+v", err, rec)
		}
		if !recordsEqual(rec, rec2) {
			t.Fatalf("record changed across encode/parse round trip:\n first %+v\nsecond %+v", rec, rec2)
		}
	})
}

// recordsEqual compares records by value, with measures compared as raw
// float bits so NaN payloads (expressible in a fuzzed frame) don't
// false-negative under ==.
func recordsEqual(a, b Record) bool {
	if a.Type != b.Type || a.LSN != b.LSN || a.Shard != b.Shard || a.TupleID != b.TupleID {
		return false
	}
	if len(a.Dims) != len(b.Dims) || len(a.Measures) != len(b.Measures) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	for i := range a.Measures {
		if math.Float64bits(a.Measures[i]) != math.Float64bits(b.Measures[i]) {
			return false
		}
	}
	return true
}
