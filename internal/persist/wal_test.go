package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/faultfs"
)

func appendRec(i int) Record {
	return Record{
		Type:     RecAppend,
		Shard:    i % 3,
		Dims:     []string{fmt.Sprintf("team-%d", i%5), fmt.Sprintf("player-%d", i)},
		Measures: []float64{float64(i), float64(i) * 0.5},
	}
}

func collect(t *testing.T, w *WAL) []Record {
	t.Helper()
	var out []Record
	if err := w.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 10; i++ {
		rec := appendRec(i)
		lsn, err := w.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		rec.LSN = lsn
		want = append(want, rec)
	}
	del := Record{Type: RecDelete, Shard: 2, TupleID: 7}
	lsn, err := w.Append(del)
	if err != nil {
		t.Fatal(err)
	}
	del.LSN = lsn
	want = append(want, del)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: records survive, LSNs continue.
	w2, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collect(t, w2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen mismatch")
	}
	if lsn, err := w2.Append(appendRec(99)); err != nil || lsn != uint64(len(want)+1) {
		t.Fatalf("post-reopen append: lsn %d err %v, want %d", lsn, err, len(want)+1)
	}
}

func TestWALMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "schema-a"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := OpenWAL(dir, WALOptions{Meta: "schema-b"}); err == nil {
		t.Error("log written under another schema accepted")
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig", SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("got %d segments, want rotation to have produced several", st.Segments)
	}
	if st.LastLSN != n || st.SyncedLSN != n {
		t.Fatalf("stats = %+v, want last/synced %d", st, n)
	}
	if got := collect(t, w); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}

	// Truncating below LSN 30 removes whole segments but keeps every
	// record ≥ 30 (and possibly earlier ones sharing a kept segment).
	if err := w.TruncateBefore(30); err != nil {
		t.Fatal(err)
	}
	after := w.Stats()
	if after.Segments >= st.Segments {
		t.Fatalf("truncate removed nothing: %d → %d segments", st.Segments, after.Segments)
	}
	got := collect(t, w)
	if len(got) == 0 || got[len(got)-1].LSN != n {
		t.Fatalf("tail lost by truncate")
	}
	if got[0].LSN > 30 {
		t.Fatalf("first surviving lsn %d > 30: truncate cut a covered record's segment too early", got[0].LSN)
	}
	for i := 1; i < len(got); i++ {
		if got[i].LSN != got[i-1].LSN+1 {
			t.Fatalf("gap after truncate at %d", got[i].LSN)
		}
	}
	w.Close()

	// Reopen after truncation: appends continue from the same LSN.
	w2, err := OpenWAL(dir, WALOptions{Meta: "sig", SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if lsn, err := w2.Append(appendRec(0)); err != nil || lsn != n+1 {
		t.Fatalf("append after reopen: lsn %d err %v, want %d", lsn, err, n+1)
	}
}

// TestWALTornFinalRecord: a crash mid-write leaves an incomplete record at
// the tail; Open truncates it away and the log continues from the last
// complete record.
func TestWALTornFinalRecord(t *testing.T) {
	for _, cut := range []int{1, 5, frameHeaderLen + 2} { // torn header, torn header, torn payload
		dir := t.TempDir()
		w, err := OpenWAL(dir, WALOptions{Meta: "sig"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := w.Append(appendRec(i)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		seg := w.segmentPath(1)
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate the torn write: append a record, then cut it short.
		full, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		frame := appendFrame(nil, Record{LSN: 6, Type: RecDelete, Shard: 0, TupleID: 1})
		if cut >= len(frame) {
			t.Fatalf("cut %d ≥ frame %d", cut, len(frame))
		}
		if err := os.WriteFile(seg, append(full, frame[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}

		w2, err := OpenWAL(dir, WALOptions{Meta: "sig"})
		if err != nil {
			t.Fatalf("cut=%d: open after torn tail: %v", cut, err)
		}
		got := collect(t, w2)
		if len(got) != 5 {
			t.Fatalf("cut=%d: %d records after torn-tail repair, want 5", cut, len(got))
		}
		if lsn, err := w2.Append(appendRec(9)); err != nil || lsn != 6 {
			t.Fatalf("cut=%d: append after repair: lsn %d err %v, want 6", cut, lsn, err)
		}
		if err := w2.Sync(); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		if after, err := os.Stat(seg); err != nil || after.Size() <= info.Size() {
			t.Fatalf("cut=%d: repaired segment size %v, want the tail truncated then re-extended", cut, after.Size())
		}
	}
}

// TestWALTornFinalRecordFullLength: power loss can persist the final
// record's size extension without its data — a full-length frame that is
// zero-filled or half-written, not a short read. Open must repair these
// like any torn tail: that region was never covered by a successful
// fsync.
func TestWALTornFinalRecordFullLength(t *testing.T) {
	frame := appendFrame(nil, Record{LSN: 6, Type: RecAppend, Shard: 1,
		Dims: []string{"team", "player"}, Measures: []float64{1, 2}})
	for name, tear := range map[string]func([]byte) []byte{
		"zero-filled": func(full []byte) []byte {
			return append(full, make([]byte, len(frame))...)
		},
		"half-persisted payload": func(full []byte) []byte {
			torn := append([]byte(nil), frame...)
			for i := len(torn) / 2; i < len(torn); i++ {
				torn[i] = 0 // later blocks lost, read back as zeros
			}
			return append(full, torn...)
		},
		"zero-fill past the frame": func(full []byte) []byte {
			torn := append([]byte(nil), frame...)
			for i := len(torn) - 4; i < len(torn); i++ {
				torn[i] = 0
			}
			return append(append(full, torn...), make([]byte, 4096)...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, WALOptions{Meta: "sig"})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := w.Append(appendRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			seg := w.segmentPath(1)
			full, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tear(full), 0o644); err != nil {
				t.Fatal(err)
			}
			w2, err := OpenWAL(dir, WALOptions{Meta: "sig"})
			if err != nil {
				t.Fatalf("open after %s torn tail: %v", name, err)
			}
			defer w2.Close()
			if got := collect(t, w2); len(got) != 5 {
				t.Fatalf("%d records after repair, want 5", len(got))
			}
			if lsn, err := w2.Append(appendRec(9)); err != nil || lsn != 6 {
				t.Fatalf("append after repair: lsn %d err %v, want 6", lsn, err)
			}
		})
	}
}

// TestWALCRCMismatch: a full record with a bad checksum is corruption and
// must fail loudly, not be silently skipped or treated as a torn tail.
func TestWALCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seg := w.segmentPath(1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // flip a byte inside some record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{Meta: "sig"}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt segment: err %v, want ErrCorrupt", err)
	}
}

// TestWALCorruptSealedSegment: damage in a non-final segment is reported
// by Replay (Open only scans the tail segment).
func TestWALCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig", SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	bases, err := listSegments(faultfs.OS, dir)
	if err != nil || len(bases) < 2 {
		t.Fatalf("want ≥ 2 segments, got %d (err %v)", len(bases), err)
	}
	first := w.segmentPath(bases[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	// A short tail in a sealed segment is corruption, not a torn write.
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{Meta: "sig", SegmentBytes: 128})
	if err != nil {
		t.Fatal(err) // Open scans only the final segment — intact
	}
	defer w2.Close()
	if err := w2.Replay(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over truncated sealed segment: err %v, want ErrCorrupt", err)
	}
}

// TestWALEmptySegment: a rotation can leave a fresh segment with no
// records yet; reopening must resume at the right LSN, and replay must
// walk past it.
func TestWALEmptySegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Simulate a crash immediately after rotation created the next
	// segment: an empty file whose base is the next LSN.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", 4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatalf("open with empty tail segment: %v", err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if lsn, err := w2.Append(appendRec(5)); err != nil || lsn != 4 {
		t.Fatalf("append into empty segment: lsn %d err %v, want 4", lsn, err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w2); len(got) != 4 {
		t.Fatalf("replayed %d records after append, want 4", len(got))
	}
}

// TestWALGroupCommit: concurrent appenders waiting for durability must
// all complete, coalescing into few fsyncs, with contiguous LSNs.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append(appendRec(i))
			if err == nil {
				err = w.WaitSync(lsn)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.LastLSN != n || st.SyncedLSN != n {
		t.Fatalf("stats = %+v, want last=synced=%d", st, n)
	}
	if got := collect(t, w); len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	w.Close()
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want absent", ok, err)
	}
	man := Manifest{
		SchemaSig:  "sig",
		ShardDim:   "team",
		Shards:     3,
		Generation: 7,
		ShardLSNs:  []uint64{10, 12, 9},
		Sidecars:   map[string][]byte{"leaderboard": []byte(`[{"id":"0:1"}]`)},
	}
	if err := WriteManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	man.Magic = got.Magic
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("manifest round trip:\n got %+v\nwant %+v", got, man)
	}
	// Garbage is an error, not "absent".
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ReadManifest(dir); err == nil || ok {
		t.Fatalf("garbage manifest: ok=%v err=%v, want error", ok, err)
	}
}
