package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// faultWAL opens a WAL whose segment I/O runs through a Faulty with the
// given plan.
func faultWAL(t *testing.T, dir, plan string) (*WAL, *faultfs.Faulty) {
	t.Helper()
	fs, err := faultfs.NewWithPlan(faultfs.OS, plan)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir, WALOptions{Meta: "sig", FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w, fs
}

// TestFaultFsyncRepair: a one-shot fsync fault poisons the log sticky;
// Repair clears it with nothing lost — the records were flushed, only the
// fsync acknowledgement failed — and the log keeps working.
func TestFaultFsyncRepair(t *testing.T) {
	dir := t.TempDir()
	w, _ := faultWAL(t, dir, "fsync:nth=1")
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("sync = %v, want injected fault", err)
	}
	// Sticky: the fault was one-shot, but the poisoned state is not.
	if err := w.Err(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Err() = %v, want injected fault", err)
	}
	if _, err := w.Append(appendRec(9)); err == nil {
		t.Fatal("append on poisoned log succeeded")
	}
	lost, err := w.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if lost != 0 {
		t.Fatalf("repair lost %d records, want 0 (all were flushed)", lost)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("Err() after repair = %v", err)
	}
	if _, err := w.Append(appendRec(5)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync after repair: %v", err)
	}
	if got := collect(t, w); len(got) != 6 {
		t.Fatalf("replay found %d records, want 6", len(got))
	}
}

// TestFaultRepairNoopFill: an ENOSPC fault tears a flush mid-frame. The
// unsynced (never-acknowledged) records are destroyed; Repair truncates
// the torn tail and burns their LSNs with noop frames so the log stays
// dense, and replay skips the noops.
func TestFaultRepairNoopFill(t *testing.T) {
	dir := t.TempDir()
	w, fs := faultWAL(t, dir, "")
	defer w.Close()
	// Establish a durable prefix, then arm the fault: the next flush
	// tears partway into its first frame.
	for i := 0; i < 3; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Program("write:enospc-after=10"); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 8; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync through full disk succeeded")
	}
	fs.Clear() // space relieved
	lost, err := w.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if lost != 5 {
		t.Fatalf("repair lost %d records, want the 5 unsynced ones", lost)
	}
	// The log is dense and usable; the burned LSNs replay as noops.
	var noops, rows int
	if err := w.Replay(func(r Record) error {
		if r.Type == RecNoop {
			noops++
		} else {
			rows++
		}
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rows != 3 || noops != 5 {
		t.Fatalf("replay saw %d rows / %d noops, want 3 / 5", rows, noops)
	}
	lsn, err := w.Append(appendRec(100))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 9 {
		t.Fatalf("post-repair lsn = %d, want 9 (LSNs 4-8 burned)", lsn)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// A reopen (process restart) accepts the repaired log.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatalf("reopen repaired log: %v", err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != 9 {
		t.Fatalf("reopen replay found %d records, want 9", len(got))
	}
}

// TestFaultShortWriteRepair: a torn (short) write poisons the flush; the
// half-frame on disk is truncated by Repair.
func TestFaultShortWriteRepair(t *testing.T) {
	dir := t.TempDir()
	w, fs := faultWAL(t, dir, "")
	defer w.Close()
	if _, err := w.Append(appendRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Program("write:short-at=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(appendRec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync through short write succeeded")
	}
	fs.Clear()
	lost, err := w.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if lost != 1 {
		t.Fatalf("repair lost %d, want 1", lost)
	}
	if got := collect(t, w); len(got) != 2 { // row + noop
		t.Fatalf("replay found %d records, want 2", len(got))
	}
}

// TestFaultReadFromServesDegraded: a poisoned log still serves its
// durable prefix to followers — and never serves unsynced records, which
// a later Repair may destroy.
func TestFaultReadFromServesDegraded(t *testing.T) {
	dir := t.TempDir()
	w, fs := faultWAL(t, dir, "")
	defer w.Close()
	for i := 0; i < 4; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Program("fsync:from=1"); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync under sticky fault succeeded")
	}
	recs, last, err := w.ReadFrom(1, 0)
	if err != nil {
		t.Fatalf("ReadFrom on degraded log: %v", err)
	}
	if len(recs) != 4 || last != 4 {
		t.Fatalf("ReadFrom = %d records, last %d; want 4 durable records, last 4", len(recs), last)
	}
}

// TestFaultVerifyWAL: the offline fsck counts records per segment, flags
// nothing on a clean log, and reports ErrCorrupt on real damage.
func TestFaultVerifyWAL(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Meta: "sig", SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	total := 12
	for i := 0; i < total; i++ {
		if _, err := w.Append(appendRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	reports, err := VerifyWAL(dir)
	if err != nil {
		t.Fatalf("verify clean log: %v", err)
	}
	if len(reports) < 2 {
		t.Fatalf("got %d segments, want rotation to have made several", len(reports))
	}
	sum := 0
	for _, r := range reports {
		if r.Torn {
			t.Fatalf("clean log reported torn segment %s", r.Name)
		}
		sum += r.Records
	}
	if sum != total {
		t.Fatalf("verify counted %d records, want %d", sum, total)
	}

	// Flip a payload byte in the first (sealed) segment: CRC mismatch.
	path := filepath.Join(dir, reports[0].Name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyWAL(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verify corrupt log = %v, want ErrCorrupt", err)
	}
}
