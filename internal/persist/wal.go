package persist

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

// ErrWALClosed reports an operation on a closed WAL.
var ErrWALClosed = errors.New("wal closed")

// ErrCorrupt marks unrecoverable log damage: a full record failing its
// CRC, an out-of-sequence LSN, or a short tail in a non-final segment.
// Test with errors.Is; recovering past it would silently lose data.
var ErrCorrupt = errors.New("wal corrupt")

// WALOptions configures Open.
type WALOptions struct {
	// SegmentBytes is the rotation threshold; a segment is closed once it
	// grows past this. 0 selects 64 MiB.
	SegmentBytes int64
	// Meta is an identity string (the pool's schema signature) stored in
	// the log directory on creation and verified on every reopen, so a log
	// written under one schema is never replayed into another.
	Meta string
	// FS is the filesystem the log's segments live on. nil selects the
	// real one (faultfs.OS); tests inject a faultfs.Faulty to exercise
	// fsync errors, ENOSPC, and torn writes. The wal.meta identity file
	// is deliberately NOT behind the seam: it is written once at creation
	// and a fault there is just an open error.
	FS faultfs.FS
}

const (
	defaultSegmentBytes = 64 << 20
	// walWriteBufBytes sizes each segment's write buffer. Batched appends
	// accumulate here and reach the kernel in one write per group commit;
	// the default 4 KiB bufio buffer forced a syscall every ~hundred
	// records, which showed up as ~15% CPU under sustained pipelined load.
	walWriteBufBytes = 256 << 10
	walMetaName      = "wal.meta"
	walMetaMagic     = "situfact-wal-v1"
	segmentSuffix    = ".seg"
)

type walMeta struct {
	Magic string
	Meta  string
	// Epoch uniquely identifies this log instance (random, assigned at
	// creation). Snapshot manifests record the epoch their LSN watermarks
	// refer to, so watermarks are never applied against a replacement log
	// whose LSNs count from 1 again.
	Epoch string
}

// WAL is a segmented, CRC-framed write-ahead log. Appends go through one
// buffered writer under a mutex; durability comes from WaitSync, whose
// concurrent callers group-commit into a single fsync. See the package
// doc for the crash-safety rules.
type WAL struct {
	dir     string
	segSize int64
	epoch   string     // this log instance's identity, from wal.meta
	fs      faultfs.FS // segment I/O seam; faultfs.OS in production

	// mu guards the file state: writes, rotation, truncation. The fsync
	// itself runs OUTSIDE mu (syncNow flushes under the lock, then syncs
	// the grabbed handle after releasing it), so appenders keep journaling
	// into the OS buffer while a group commit's fsync is on disk —
	// otherwise every fsync would freeze ingest for its full device
	// latency. syncingF/closeAfterSync coordinate the one hazard: a
	// rotation or Close that wants to close the very file an fsync holds
	// hands the close to the syncer instead (fsync on a closed fd would
	// fail and poison the log).
	mu             sync.Mutex
	f              faultfs.File
	bw             *bufio.Writer
	syncingF       faultfs.File // file an fsync is running on outside mu; nil = none
	closeAfterSync bool         // close syncingF when its fsync returns
	nextLSN        uint64
	segBase        uint64 // first LSN of the active segment
	segBytes       int64  // bytes written to the active segment
	segments       int    // live segment files, including the active one
	scratch        []byte
	writeErr       error // sticky: a failed write leaves the buffer torn
	closed         bool

	// syncState guards the durability watermark and the group-commit
	// election; it is never held across a file operation.
	syncState struct {
		sync.Mutex
		cond    *sync.Cond
		synced  uint64 // highest LSN guaranteed on disk
		syncing bool
		err     error // sticky fsync failure
	}
}

// OpenWAL opens (or creates) the log rooted at dir, repairing a torn tail
// left by a crash. The returned WAL is ready for Append; call Replay first
// to observe existing records.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	epoch, err := checkWALMeta(dir, opt.Meta)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, segSize: opt.SegmentBytes, epoch: epoch, fs: fsys}
	w.syncState.cond = sync.NewCond(&w.syncState.Mutex)

	bases, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
		w.nextLSN = 1
		w.segments = 1
	} else {
		// Scan the final segment to find the durable end of the log,
		// truncating a torn tail. Earlier segments were sealed by a
		// rotation fsync; Replay verifies them in full.
		base := bases[len(bases)-1]
		path := w.segmentPath(base)
		end, next, torn, err := readSegment(fsys, path, base, true, nil)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := truncateFile(fsys, path, end); err != nil {
				return nil, fmt.Errorf("wal: repair torn tail: %w", err)
			}
		}
		f, err := fsys.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, walWriteBufBytes)
		w.segBase = base
		w.segBytes = end
		w.nextLSN = next
		w.segments = len(bases)
	}
	w.syncState.synced = w.nextLSN - 1 // nothing buffered yet
	return w, nil
}

// checkWALMeta writes the identity file on first open and verifies it on
// every later one, returning the log's epoch either way.
func checkWALMeta(dir, meta string) (string, error) {
	path := filepath.Join(dir, walMetaName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		epoch, err := newEpoch()
		if err != nil {
			return "", fmt.Errorf("wal: %w", err)
		}
		return epoch, WriteFileAtomic(path, func(w io.Writer) error {
			return gob.NewEncoder(w).Encode(&walMeta{Magic: walMetaMagic, Meta: meta, Epoch: epoch})
		})
	}
	if err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var m walMeta
	if err := gob.NewDecoder(f).Decode(&m); err != nil || m.Magic != walMetaMagic {
		return "", fmt.Errorf("wal: %s is not a wal meta file: %w", path, ErrCorrupt)
	}
	if m.Meta != meta {
		return "", fmt.Errorf("wal: log at %s was written under %q, not %q", dir, m.Meta, meta)
	}
	return m.Epoch, nil
}

// newEpoch returns a random log-instance identifier.
func newEpoch() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func (w *WAL) segmentPath(base uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%020d%s", base, segmentSuffix))
}

// listSegments returns the segment base LSNs in ascending order.
func listSegments(fsys faultfs.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var bases []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), segmentSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment name %q: %w", name, ErrCorrupt)
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// createSegment opens a fresh segment whose first record will be base,
// fsyncing the directory so the name survives a crash. Caller holds mu
// (or the WAL is not yet shared).
func (w *WAL) createSegment(base uint64) error {
	f, err := w.fs.OpenFile(w.segmentPath(base), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(w.fs, w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, walWriteBufBytes)
	w.segBase = base
	w.segBytes = 0
	return nil
}

// Append journals rec, assigning and returning its LSN. The record is
// buffered, not yet durable: call WaitSync (or Sync) to make it so. A
// failed write poisons the WAL — the buffer may hold a torn frame — and
// every later operation reports the original error.
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.writeErr != nil {
		return 0, w.writeErr
	}
	if rec.Oversized() {
		// Rejected before encoding (the WAL is not poisoned and scratch is
		// not grown to the record's size): the reader caps payloads at
		// maxRecordBytes, so writing this frame would produce a log that
		// fails replay with ErrCorrupt.
		return 0, fmt.Errorf("wal append: record exceeds %d payload bytes: %w", maxRecordBytes, ErrTooLarge)
	}
	rec.LSN = w.nextLSN
	w.scratch = appendFrame(w.scratch[:0], rec)
	if _, err := w.bw.Write(w.scratch); err != nil {
		w.writeErr = fmt.Errorf("wal append: %w", err)
		return 0, w.writeErr
	}
	w.nextLSN++
	w.segBytes += int64(len(w.scratch))
	if w.segBytes >= w.segSize {
		if err := w.rotate(); err != nil {
			w.writeErr = err
			return 0, err
		}
	}
	return rec.LSN, nil
}

// AppendAll journals recs in order under one lock acquisition — the
// batched form of Append for pipelined ingest: one mutex round-trip and
// one encode pass cover the whole batch instead of one per record. It
// returns the LSN assigned to the last record; the batch's LSNs are the
// contiguous run ending there (last-len(recs)+1 … last). Like Append, the
// records are buffered, not yet durable, and any failure poisons the WAL.
// An oversized record mid-batch fails the whole call with nothing of the
// batch journaled — callers pre-validate with Record.Oversized, exactly
// as the single-record path does.
func (w *WAL) AppendAll(recs []Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.writeErr != nil {
		return 0, w.writeErr
	}
	for _, rec := range recs {
		if rec.Oversized() {
			return 0, fmt.Errorf("wal append: record exceeds %d payload bytes: %w", maxRecordBytes, ErrTooLarge)
		}
	}
	for _, rec := range recs {
		rec.LSN = w.nextLSN
		w.scratch = appendFrame(w.scratch[:0], rec)
		if _, err := w.bw.Write(w.scratch); err != nil {
			w.writeErr = fmt.Errorf("wal append: %w", err)
			return 0, w.writeErr
		}
		w.nextLSN++
		w.segBytes += int64(len(w.scratch))
		if w.segBytes >= w.segSize {
			if err := w.rotate(); err != nil {
				w.writeErr = err
				return 0, err
			}
		}
	}
	return w.nextLSN - 1, nil
}

// rotate seals the active segment (flush, fsync, close) and opens the
// next. Everything in the sealed segment is durable afterwards, so the
// sync watermark advances. Caller holds mu.
func (w *WAL) rotate() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	if w.syncingF == w.f {
		// An out-of-lock fsync holds this handle; closing it now would
		// fail that fsync. The segment is already durable (the Sync
		// above), so hand the close to the syncer.
		w.closeAfterSync = true
	} else if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	// Cleared until createSegment replaces them: if it fails, the WAL is
	// poisoned with w.f already closed, and Close must not close it again.
	w.f, w.bw = nil, nil
	sealed := w.nextLSN - 1
	if err := w.createSegment(w.nextLSN); err != nil {
		return err
	}
	w.segments++
	w.advanceSynced(sealed)
	return nil
}

func (w *WAL) advanceSynced(lsn uint64) {
	w.syncState.Lock()
	if lsn > w.syncState.synced {
		w.syncState.synced = lsn
	}
	w.syncState.Unlock()
	w.syncState.cond.Broadcast()
}

// WaitSync blocks until every record up to and including lsn is on disk,
// running the fsync itself if no one else is. Concurrent callers coalesce:
// one fsync commits every record buffered when it starts, and the rest
// just observe the advanced watermark (group commit).
func (w *WAL) WaitSync(lsn uint64) error {
	s := &w.syncState
	s.Lock()
	defer s.Unlock()
	for {
		if s.synced >= lsn {
			return nil
		}
		if s.err != nil {
			return s.err
		}
		if s.syncing {
			s.cond.Wait()
			continue
		}
		s.syncing = true
		s.Unlock()
		target, err := w.syncNow()
		s.Lock()
		s.syncing = false
		if err != nil {
			if s.err == nil {
				s.err = err
			}
		} else if target > s.synced {
			s.synced = target
		}
		s.cond.Broadcast()
	}
}

// syncNow flushes the buffer under the lock, then fsyncs the active
// segment OUTSIDE it, returning the highest LSN the fsync covers.
// Appends (and whole pipeline batches) proceed concurrently with the
// fsync; they are simply not covered by it. WaitSync's syncing flag
// guarantees at most one syncNow is in flight, so syncingF is a single
// slot; if a rotation or Close meanwhile wanted to close the file, the
// handoff flag tells this goroutine to do it.
func (w *WAL) syncNow() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	if w.writeErr != nil {
		err := w.writeErr
		w.mu.Unlock()
		return 0, err
	}
	if err := w.bw.Flush(); err != nil {
		w.writeErr = fmt.Errorf("wal sync: %w", err)
		w.mu.Unlock()
		return 0, w.writeErr
	}
	target := w.nextLSN - 1
	f := w.f
	w.syncingF = f
	w.mu.Unlock()

	serr := f.Sync()

	w.mu.Lock()
	w.syncingF = nil
	if w.closeAfterSync {
		w.closeAfterSync = false
		f.Close() // already sealed durable by the rotation/Close that deferred this
	}
	if serr != nil {
		if w.writeErr == nil {
			w.writeErr = fmt.Errorf("wal sync: %w", serr)
		}
		err := w.writeErr
		w.mu.Unlock()
		return 0, err
	}
	w.mu.Unlock()
	return target, nil
}

// Sync makes every appended record durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	last := w.nextLSN - 1
	w.mu.Unlock()
	return w.WaitSync(last)
}

// Replay streams every record of the log, in LSN order, to fn; fn's error
// aborts the walk. It verifies CRCs and LSN continuity across segments,
// failing with ErrCorrupt on damage (a torn tail of the final segment was
// already repaired by Open and simply ends the walk). Replay is meant to
// run before ingest starts; it blocks appends for its duration.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if err := w.bw.Flush(); err != nil {
		w.writeErr = fmt.Errorf("wal replay flush: %w", err)
		return w.writeErr
	}
	bases, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	for i, base := range bases {
		_, next, _, err := readSegment(w.fs, w.segmentPath(base), base, i == len(bases)-1, fn)
		if err != nil {
			return err
		}
		if i+1 < len(bases) && bases[i+1] != next {
			return fmt.Errorf("wal: gap between segments: %d ends at lsn %d, next starts at %d: %w",
				base, next-1, bases[i+1], ErrCorrupt)
		}
	}
	return nil
}

// errStopRead aborts a ReadFrom segment walk once max records are
// collected; it never escapes ReadFrom.
var errStopRead = errors.New("stop read")

// ReadFrom returns up to max DURABLE records with LSN >= from, in LSN
// order (max <= 0 = no cap), plus the synced watermark at the time of the
// read — the tail-shipping primitive behind a follower's catch-up
// polling. Serving only up to the synced watermark keeps two promises at
// once: a degraded log (sticky write/fsync error) still serves reads —
// synced frames are on disk by definition, no flush of the poisoned
// buffer is needed — and a follower never applies a record that a later
// Repair noop-fills away. Segments entirely below from are skipped by
// name; the first overlapping segment is decoded from its start with the
// early records filtered out. Like Replay it blocks appends for its
// duration, but the duration is bounded by max plus at most one segment's
// decode.
//
// LSNs are dense, so a caller can detect a truncated gap: if the first
// returned record's LSN is greater than from, records [from, first) were
// removed by TruncateBefore and the caller must re-bootstrap from a
// snapshot rather than replay the tail.
func (w *WAL) ReadFrom(from uint64, max int) (recs []Record, lastLSN uint64, err error) {
	// synced is read before mu: it only advances, so any record it admits
	// is durable by the time the scan below reaches it.
	w.syncState.Lock()
	synced := w.syncState.synced
	w.syncState.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, 0, ErrWALClosed
	}
	lastLSN = synced
	bases, err := listSegments(w.fs, w.dir)
	if err != nil {
		return nil, 0, err
	}
	for i, base := range bases {
		if i+1 < len(bases) && bases[i+1] <= from {
			continue // every record of this segment is below from
		}
		if base > synced {
			break // nothing durable at or past this segment
		}
		_, _, _, err := readSegment(w.fs, w.segmentPath(base), base, i == len(bases)-1, func(rec Record) error {
			if rec.LSN > synced {
				return errStopRead
			}
			if rec.LSN < from {
				return nil
			}
			if max > 0 && len(recs) >= max {
				return errStopRead
			}
			recs = append(recs, rec)
			return nil
		})
		if errors.Is(err, errStopRead) {
			return recs, lastLSN, nil
		}
		if err != nil {
			return nil, 0, err
		}
	}
	return recs, lastLSN, nil
}

// TruncateBefore removes segments every record of which has LSN < lsn —
// they are covered by a snapshot and will never be replayed. The active
// segment always survives. Partial segments survive too: replay skips
// their already-applied records individually.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	bases, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	removed := 0
	for i := 0; i+1 < len(bases) && bases[i+1] <= lsn; i++ {
		if bases[i] == w.segBase {
			break // never the active segment
		}
		if err := w.fs.Remove(w.segmentPath(bases[i])); err != nil {
			return fmt.Errorf("wal truncate: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.fs, w.dir); err != nil {
			return err
		}
		w.segments -= removed
	}
	return nil
}

// WALStats is a monitoring snapshot of the log.
type WALStats struct {
	// LastLSN is the highest assigned LSN (0 = empty log).
	LastLSN uint64
	// SyncedLSN is the highest LSN guaranteed on disk; LastLSN − SyncedLSN
	// is the number of unsynced (acknowledgeable-but-volatile) records.
	SyncedLSN uint64
	// Segments is the live segment-file count, including the active one.
	Segments int
}

// Stats returns a monitoring snapshot. The watermarks are read under
// separate locks, SyncedLSN first: both only advance, and synced never
// passes last at any instant, so this order keeps the reported
// LastLSN ≥ SyncedLSN (a concurrent append can only widen the gap).
func (w *WAL) Stats() WALStats {
	var st WALStats
	w.syncState.Lock()
	st.SyncedLSN = w.syncState.synced
	w.syncState.Unlock()
	w.mu.Lock()
	st.LastLSN = w.nextLSN - 1
	st.Segments = w.segments
	w.mu.Unlock()
	return st
}

// Epoch returns the log instance's random identity, assigned when the
// log directory was created. Two logs at the same path but created at
// different times (one deleted and replaced) have different epochs.
func (w *WAL) Epoch() string { return w.epoch }

// LastLSN returns the highest assigned LSN (0 = empty log).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Err returns the log's sticky failure — a poisoned write buffer or a
// failed fsync — or nil while healthy. A closed log reports ErrWALClosed.
func (w *WAL) Err() error {
	w.mu.Lock()
	werr, closed := w.writeErr, w.closed
	w.mu.Unlock()
	if closed {
		return ErrWALClosed
	}
	if werr != nil {
		return werr
	}
	w.syncState.Lock()
	defer w.syncState.Unlock()
	return w.syncState.err
}

// Repair attempts to return a poisoned log to service without a process
// restart — the degraded daemon's background heal path. It re-scans the
// active segment to find the durable end (truncating a torn tail the
// fault left), reopens the handle, and noop-fills the LSN range the fault
// destroyed: those LSNs were assigned to records that never reached disk
// intact, and since appended-but-unacknowledged rows may have advanced
// shard watermarks past them, reusing them for future records would make
// replay skip the newcomers. The noops keep the log dense instead.
//
// On success the sticky write and fsync errors are cleared, the synced
// watermark covers the whole repaired log, and blocked WaitSync callers
// wake; lost is how many records were replaced by noops (every one of
// them was unacknowledged — acked records are synced, and synced frames
// survive repair untouched). Repair returns a non-nil error and leaves
// the log poisoned when the fault still holds (the repair I/O itself
// failed — retry later) or the tail is genuinely corrupt (ErrCorrupt:
// non-zero garbage that a sequential write cannot explain).
func (w *WAL) Repair() (lost uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.syncingF != nil {
		return 0, errors.New("wal repair: an fsync is in flight; retry")
	}
	w.syncState.Lock()
	serr := w.syncState.err
	w.syncState.Unlock()
	if w.writeErr == nil && serr == nil {
		return 0, nil // healthy
	}
	// Drop the poisoned handle: its buffer may hold a torn frame. nil
	// already when a failed rotation closed it.
	if w.f != nil {
		w.f.Close()
		w.f, w.bw = nil, nil
	}
	bases, err := listSegments(w.fs, w.dir)
	if err != nil {
		return 0, err
	}
	if len(bases) == 0 {
		return 0, fmt.Errorf("wal repair: no segments on disk: %w", ErrCorrupt)
	}
	w.segments = len(bases) // recount: a fault mid-rotation may have lied
	base := bases[len(bases)-1]
	path := w.segmentPath(base)
	end, next, torn, err := readSegment(w.fs, path, base, true, nil)
	if err != nil {
		return 0, err // ErrCorrupt: not repairable
	}
	if torn {
		if err := truncateFile(w.fs, path, end); err != nil {
			return 0, fmt.Errorf("wal repair: truncate torn tail: %w", err)
		}
	}
	f, err := w.fs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, fmt.Errorf("wal repair: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal repair: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, walWriteBufBytes)
	w.segBase = base
	w.segBytes = end
	for lsn := next; lsn < w.nextLSN; lsn++ {
		w.scratch = appendFrame(w.scratch[:0], Record{LSN: lsn, Type: RecNoop})
		if _, err := w.bw.Write(w.scratch); err != nil {
			w.writeErr = fmt.Errorf("wal repair: %w", err)
			return 0, w.writeErr
		}
		w.segBytes += int64(len(w.scratch))
		lost++
	}
	if err := w.bw.Flush(); err != nil {
		w.writeErr = fmt.Errorf("wal repair: %w", err)
		return 0, w.writeErr
	}
	if err := w.f.Sync(); err != nil {
		w.writeErr = fmt.Errorf("wal repair: %w", err)
		return 0, w.writeErr
	}
	w.writeErr = nil
	w.syncState.Lock()
	w.syncState.err = nil
	if last := w.nextLSN - 1; last > w.syncState.synced {
		w.syncState.synced = last
	}
	w.syncState.Unlock()
	w.syncState.cond.Broadcast()
	if w.segBytes >= w.segSize {
		// The fault may have struck mid-rotation; finish it so the next
		// append does not land in an over-full segment.
		if err := w.rotate(); err != nil {
			w.writeErr = err
			return lost, err
		}
	}
	return lost, nil
}

// Close flushes, fsyncs and closes the log. Waiting WaitSync callers
// observe either the final watermark or ErrWALClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	var errs []error
	last := w.nextLSN - 1
	poisoned := w.writeErr != nil
	if !poisoned {
		if err := w.bw.Flush(); err != nil {
			errs = append(errs, err)
		} else if err := w.f.Sync(); err != nil {
			errs = append(errs, err)
		}
	}
	if w.f != nil { // nil after a failed rotation already closed it
		if w.syncingF == w.f {
			// An in-flight fsync holds the handle; it closes it on return
			// (the flush+sync above already made everything durable).
			w.closeAfterSync = true
		} else if err := w.f.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	w.closed = true
	w.mu.Unlock()

	w.syncState.Lock()
	if len(errs) == 0 && !poisoned && w.syncState.err == nil {
		if last > w.syncState.synced {
			w.syncState.synced = last
		}
	} else if w.syncState.err == nil {
		w.syncState.err = ErrWALClosed
	}
	w.syncState.Unlock()
	w.syncState.cond.Broadcast()
	return errors.Join(errs...)
}

// readSegment scans one segment file, verifying framing, CRCs and LSN
// continuity from base, invoking fn (when non-nil) per record. It returns
// the offset after the last complete record, the next expected LSN, and
// whether a torn tail was found. Torn tails are tolerated only in the
// final segment (isLast); anywhere else they are corruption, as is any
// full record failing its CRC.
//
// A torn tail is not only a short read: power loss can persist the final
// record's file-size extension without all of its data blocks, leaving a
// full-length frame that is zero-filled or half-written. So in the final
// segment a broken frame (bad length, CRC mismatch) followed by nothing
// but zeros is repaired as torn — that region was never covered by a
// successful fsync, or the fsync's acknowledgement never happened. A
// broken frame with NON-zero data after it cannot come from a torn
// sequential write and stays ErrCorrupt: truncating there could drop
// fsynced records.
func readSegment(fsys faultfs.FS, path string, base uint64, isLast bool, fn func(Record) error) (end int64, next uint64, torn bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var (
		off     int64
		hdr     [frameHeaderLen]byte
		payload []byte
	)
	next = base
	for {
		_, rerr := io.ReadFull(br, hdr[:])
		if rerr == io.EOF {
			return off, next, false, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			if !isLast {
				return 0, 0, false, fmt.Errorf("wal: %s: torn record header at offset %d in sealed segment: %w", path, off, ErrCorrupt)
			}
			return off, next, true, nil
		}
		if rerr != nil {
			return 0, 0, false, fmt.Errorf("wal: %s: %w", path, rerr)
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > maxRecordBytes {
			if isLast && restIsZeros(br) {
				return off, next, true, nil // zero-filled torn tail
			}
			return 0, 0, false, fmt.Errorf("wal: %s: record length %d at offset %d: %w", path, length, off, ErrCorrupt)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			if rerr == io.ErrUnexpectedEOF || rerr == io.EOF {
				if !isLast {
					return 0, 0, false, fmt.Errorf("wal: %s: torn record at offset %d in sealed segment: %w", path, off, ErrCorrupt)
				}
				return off, next, true, nil
			}
			return 0, 0, false, fmt.Errorf("wal: %s: %w", path, rerr)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if isLast && restIsZeros(br) {
				return off, next, true, nil // half-persisted torn tail
			}
			return 0, 0, false, fmt.Errorf("wal: %s: crc mismatch at offset %d (lsn %d expected): %w", path, off, next, ErrCorrupt)
		}
		rec, perr := parsePayload(payload)
		if perr != nil {
			return 0, 0, false, fmt.Errorf("wal: %s: offset %d: %v: %w", path, off, perr, ErrCorrupt)
		}
		if rec.LSN != next {
			return 0, 0, false, fmt.Errorf("wal: %s: lsn %d at offset %d, want %d: %w", path, rec.LSN, off, next, ErrCorrupt)
		}
		if fn != nil {
			if ferr := fn(rec); ferr != nil {
				return 0, 0, false, ferr
			}
		}
		next++
		off += frameHeaderLen + int64(length)
	}
}

// restIsZeros consumes the reader and reports whether every remaining
// byte is zero — an empty remainder counts. It distinguishes a torn tail
// (size extended past the durable data, un-persisted blocks read back as
// zeros) from damage followed by real records.
func restIsZeros(br *bufio.Reader) bool {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return err == io.EOF
		}
		if b != 0 {
			return false
		}
	}
}

// truncateFile cuts path to size and fsyncs it.
func truncateFile(fsys faultfs.FS, path string, size int64) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// It opens the directory read-only, so a faultfs plan never fails it.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
