package persist

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestAppendAllMatchesAppend pins the batched journal pass: AppendAll's
// frames, LSNs and rotation behaviour are indistinguishable on replay
// from the same records journaled one Append at a time.
func TestAppendAllMatchesAppend(t *testing.T) {
	recs := make([]Record, 40)
	for i := range recs {
		if i%7 == 3 {
			recs[i] = Record{Type: RecDelete, Shard: i % 3, TupleID: int64(i)}
			continue
		}
		recs[i] = Record{Type: RecAppend, Shard: i % 3,
			Dims:     []string{fmt.Sprintf("team-%d", i), "p", strings.Repeat("v", i)},
			Measures: []float64{float64(i), 0.5},
		}
	}
	// Tiny segments force several rotations inside the batched pass.
	single, err := OpenWAL(t.TempDir(), WALOptions{Meta: "m", SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	batched, err := OpenWAL(t.TempDir(), WALOptions{Meta: "m", SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	for _, rec := range recs {
		if _, err := single.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Two batches: LSNs must continue contiguously across calls.
	mid := len(recs) / 2
	last1, err := batched.AppendAll(recs[:mid])
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(mid); last1 != want {
		t.Fatalf("first AppendAll returned last LSN %d, want %d", last1, want)
	}
	last2, err := batched.AppendAll(recs[mid:])
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(recs)); last2 != want {
		t.Fatalf("second AppendAll returned last LSN %d, want %d", last2, want)
	}
	if err := batched.Sync(); err != nil {
		t.Fatal(err)
	}

	read := func(w *WAL) []Record {
		var out []Record
		if err := w.Replay(func(rec Record) error {
			out = append(out, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got, want := read(batched), read(single)
	if len(got) != len(want) {
		t.Fatalf("batched log replays %d records, single-append log %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("record %d differs:\n batched %+v\n single  %+v", i, got[i], want[i])
		}
	}
	if gs, ws := batched.Stats(), single.Stats(); gs.Segments != ws.Segments {
		t.Errorf("batched log rotated into %d segments, single-append log %d", gs.Segments, ws.Segments)
	}
}

// TestRotateDefersCloseDuringSync pins the fsync/rotation handoff: a
// rotation (or Close) that would close the file an out-of-lock fsync
// holds must defer the close to the syncer instead of pulling the fd out
// from under it.
func TestRotateDefersCloseDuringSync(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Meta: "m", SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := Record{Type: RecAppend, Dims: []string{strings.Repeat("d", 64)}, Measures: []float64{1}}

	// Emulate syncNow's pre-fsync half: flush under the lock, grab the
	// handle, mark the fsync in flight. (WaitSync's syncing flag
	// guarantees only one syncer, so faking it here is faithful.)
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	if err := w.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	f := w.f
	w.syncingF = f
	w.mu.Unlock()

	// "While the fsync runs", an append crosses the rotation threshold:
	// rotate must hand the close off instead of closing f under the sync.
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	if !w.closeAfterSync {
		t.Error("rotation during an in-flight fsync did not defer the close")
	}
	if w.f == f {
		t.Error("rotation did not open a fresh segment")
	}
	w.mu.Unlock()
	if st := w.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d, want 2 (rotation must still have happened)", st.Segments)
	}
	// The deferred handle must still be alive — this is the fsync the
	// syncer is notionally executing right now.
	if err := f.Sync(); err != nil {
		t.Fatalf("deferred file handle is dead: %v", err)
	}
	// Emulate the post-fsync half: consume the handoff.
	w.mu.Lock()
	w.syncingF = nil
	if w.closeAfterSync {
		w.closeAfterSync = false
		f.Close()
	}
	w.mu.Unlock()
	if err := f.Sync(); err == nil {
		t.Error("deferred file still open after the syncer consumed the handoff")
	}
	// The log stays fully usable afterwards.
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitSync(w.LastLSN()); err != nil {
		t.Fatal(err)
	}
}

// TestAppendAllOversized pins the all-or-nothing contract: an oversized
// record anywhere in the batch fails the call before anything is
// journaled, without poisoning the log.
func TestAppendAllOversized(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Meta: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	good := Record{Type: RecAppend, Dims: []string{"a"}, Measures: []float64{1}}
	big := Record{Type: RecAppend, Dims: []string{strings.Repeat("x", maxRecordBytes+1)}}
	if _, err := w.AppendAll([]Record{good, big, good}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("AppendAll with an oversized record = %v, want ErrTooLarge", err)
	}
	if st := w.Stats(); st.LastLSN != 0 {
		t.Errorf("failed batch journaled %d records, want 0", st.LastLSN)
	}
	// The log is not poisoned: a clean batch still journals.
	if last, err := w.AppendAll([]Record{good, good}); err != nil || last != 2 {
		t.Fatalf("AppendAll after rejected batch = (%d, %v), want (2, nil)", last, err)
	}
	if _, err := w.Append(good); err != nil {
		t.Fatalf("Append after rejected batch: %v", err)
	}
}
