package persist

import (
	"encoding/binary"
	"strings"
	"testing"
)

// TestAppendRejectsOversizedRecord: a record whose payload exceeds
// maxRecordBytes must be rejected at Append — the reader caps payloads
// there, so buffering it would create a log that fails its own replay.
// The rejection must not poison the WAL for well-formed records.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Meta: "sig"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	huge := Record{
		Type: RecAppend,
		Dims: []string{strings.Repeat("x", maxRecordBytes+1)},
	}
	if _, err := w.Append(huge); err == nil {
		t.Fatal("oversized record accepted; replay would fail with ErrCorrupt")
	}
	lsn, err := w.Append(appendRec(0))
	if err != nil {
		t.Fatalf("append after oversized rejection: %v", err)
	}
	if err := w.WaitSync(lsn); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := w.Replay(func(Record) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("replayed %d records, want only the 1 accepted", got)
	}
}

// TestParsePayloadHostileCounts: parsePayload must bound the dim and
// measure counts against the remaining payload before allocating — a
// corrupt-yet-checksummed frame has to parse-fail, not panic in
// makeslice or overflow nm*8 into a passing length check.
func TestParsePayloadHostileCounts(t *testing.T) {
	prefix := func() []byte {
		p := []byte{byte(RecAppend)}
		p = binary.AppendUvarint(p, 1) // lsn
		p = binary.AppendUvarint(p, 0) // shard
		return p
	}
	t.Run("huge dim count", func(t *testing.T) {
		p := binary.AppendUvarint(prefix(), 1<<40)
		if _, err := parsePayload(p); err == nil {
			t.Error("dim count far beyond the payload accepted")
		}
	})
	t.Run("overflowing measure count", func(t *testing.T) {
		p := binary.AppendUvarint(prefix(), 0) // no dims
		// nm*8 wraps to exactly the 8 trailing bytes: without the bound
		// check this passes the length test and allocates 2^61+1 floats.
		p = binary.AppendUvarint(p, (1<<61)+1)
		p = append(p, make([]byte, 8)...)
		if _, err := parsePayload(p); err == nil {
			t.Error("overflowing measure count accepted")
		}
	})
	t.Run("huge measure count", func(t *testing.T) {
		p := binary.AppendUvarint(prefix(), 0)
		p = binary.AppendUvarint(p, 1<<32)
		if _, err := parsePayload(p); err == nil {
			t.Error("measure count far beyond the payload accepted")
		}
	})
}
