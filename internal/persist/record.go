package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// RecordType discriminates WAL records.
type RecordType uint8

// The journaled operations.
const (
	// RecAppend journals one arriving row (dimension values + measures).
	RecAppend RecordType = 1
	// RecDelete journals the retraction of one tuple of one shard.
	RecDelete RecordType = 2
	// RecNoop carries no operation. Repair writes noop frames over the
	// LSN range a write fault destroyed: those LSNs were assigned (and may
	// have advanced shard watermarks), so reusing them for real records
	// would make replay skip the newcomers, while leaving a hole would
	// fail the density check. Replay and tailing count a noop as skipped.
	RecNoop RecordType = 3
)

// Record is one journaled ingest operation. Appends carry the row itself
// (the replaying pool re-routes it, so the shard is informational);
// deletes carry the (shard, tuple) pair that names the target.
type Record struct {
	// LSN is the record's log sequence number, assigned by WAL.Append.
	LSN  uint64
	Type RecordType

	// Shard is the pool shard the operation was applied to.
	Shard int

	// Dims and Measures are the appended row, in schema order (RecAppend).
	Dims     []string
	Measures []float64

	// TupleID is the retracted tuple's per-shard id (RecDelete).
	TupleID int64
}

// Framing: [length uint32 LE][crc32(payload) uint32 LE][payload], where
// payload = type byte, then uvarint LSN, then the type-specific fields.
// The CRC covers the payload only; the length field is sanity-capped so a
// corrupt header cannot trigger a giant allocation.

const (
	frameHeaderLen = 8
	// maxRecordBytes caps one record's payload; single rows are tiny, so
	// anything near this is corruption, not data.
	maxRecordBytes = 16 << 20
)

// ErrTooLarge reports a record whose payload would exceed maxRecordBytes —
// a defect of the record, not of the log. Test with errors.Is.
var ErrTooLarge = errors.New("record too large")

// Oversized reports whether the record's framed payload would exceed
// maxRecordBytes, without encoding it. The estimate assumes a max-width
// LSN varint, so it can exceed the true size by a few bytes: an Oversized
// record always fails Append, and a record passing this check always fits.
func (rec Record) Oversized() bool {
	size := 1 + binary.MaxVarintLen64 + uvarintLen(uint64(rec.Shard))
	switch rec.Type {
	case RecAppend:
		size += uvarintLen(uint64(len(rec.Dims)))
		for _, d := range rec.Dims {
			size += uvarintLen(uint64(len(d))) + len(d)
		}
		size += uvarintLen(uint64(len(rec.Measures))) + 8*len(rec.Measures)
	case RecDelete:
		size += uvarintLen(uint64(rec.TupleID))
	}
	return size > maxRecordBytes
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendFrame appends rec's framed encoding to buf.
func appendFrame(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = binary.AppendUvarint(buf, uint64(rec.Shard))
	switch rec.Type {
	case RecAppend:
		buf = binary.AppendUvarint(buf, uint64(len(rec.Dims)))
		for _, d := range rec.Dims {
			buf = binary.AppendUvarint(buf, uint64(len(d)))
			buf = append(buf, d...)
		}
		buf = binary.AppendUvarint(buf, uint64(len(rec.Measures)))
		for _, m := range rec.Measures {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
		}
	case RecDelete:
		buf = binary.AppendUvarint(buf, uint64(rec.TupleID))
	}
	payload := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// parsePayload decodes a CRC-verified payload back into a Record.
func parsePayload(p []byte) (Record, error) {
	var rec Record
	if len(p) == 0 {
		return rec, fmt.Errorf("empty payload")
	}
	rec.Type = RecordType(p[0])
	p = p[1:]
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("bad lsn")
	}
	rec.LSN = lsn
	p = p[n:]
	shard, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("bad shard")
	}
	rec.Shard = int(shard)
	p = p[n:]
	switch rec.Type {
	case RecAppend:
		nd, n := binary.Uvarint(p)
		if n <= 0 {
			return rec, fmt.Errorf("bad dim count")
		}
		p = p[n:]
		// Bound counts by the bytes that could hold them before allocating:
		// the payload passed its CRC, but a corrupt-yet-checksummed frame
		// must parse-fail, not panic in makeslice.
		if nd > uint64(len(p)) {
			return rec, fmt.Errorf("dim count %d exceeds %d payload bytes", nd, len(p))
		}
		rec.Dims = make([]string, nd)
		for i := range rec.Dims {
			l, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p[n:])) < l {
				return rec, fmt.Errorf("bad dim %d", i)
			}
			p = p[n:]
			rec.Dims[i] = string(p[:l])
			p = p[l:]
		}
		nm, n := binary.Uvarint(p)
		if n <= 0 {
			return rec, fmt.Errorf("bad measure count")
		}
		p = p[n:]
		// nm is bounded before nm*8: a count near 2^61 would overflow the
		// product into a passing length check and a giant allocation.
		if nm > uint64(len(p))/8 || uint64(len(p)) != nm*8 {
			return rec, fmt.Errorf("measure bytes %d for %d measures", len(p), nm)
		}
		rec.Measures = make([]float64, nm)
		for i := range rec.Measures {
			rec.Measures[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
		}
	case RecDelete:
		id, n := binary.Uvarint(p)
		if n <= 0 || len(p[n:]) != 0 {
			return rec, fmt.Errorf("bad tuple id")
		}
		rec.TupleID = int64(id)
	case RecNoop:
		if len(p) != 0 {
			return rec, fmt.Errorf("noop with %d payload bytes", len(p))
		}
	default:
		return rec, fmt.Errorf("unknown record type %d", rec.Type)
	}
	return rec, nil
}
