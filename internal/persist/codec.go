package persist

import (
	"encoding/gob"
	"fmt"
	"io"
)

// EngineSnapshot is the gob-serialised form of one engine's complete
// state: dictionary, tuples, tombstones, µ-store cells, prominence
// counters and work metrics. The root package builds and consumes it;
// this package owns the wire format. Field names are the gob contract —
// they match the original root-package encoding, so snapshots written
// before the extraction still decode.
type EngineSnapshot struct {
	// Magic guards against decoding foreign files.
	Magic string
	// SchemaSig is the schema identity check.
	SchemaSig string
	Algorithm string
	MaxBound  int
	MaxMeas   int

	// DictValues[d] lists dimension d's values in code order.
	DictValues [][]string
	Tuples     []SnapTuple
	Deleted    []int64
	// Counts is the prominence context-counter state; nil when prominence
	// is disabled.
	Counts map[string]int64
	Cells  []SnapCell
	// Counters preserves the cumulative work metrics, so a restored
	// engine's Metrics match an uninterrupted run's. Snapshots written
	// before this field decode it as zero (gob tolerates missing fields).
	Counters SnapCounters
}

// SnapCounters mirrors the engine's cumulative work metrics.
type SnapCounters struct {
	Tuples, Comparisons, Traversed, Facts int64
	StoredTuples, Cells, Reads, Writes    int64
}

// SnapTuple is one encoded tuple: dictionary codes + raw measures.
type SnapTuple struct {
	Dims []int32
	Raw  []float64
}

// SnapCell is one µ(C,M) cell: its key and member tuple ids.
type SnapCell struct {
	CKey string
	M    uint32
	IDs  []int64
}

const engineSnapshotMagic = "situfact-snapshot-v1"

// EncodeEngine gob-encodes s to w, stamping the magic itself.
func EncodeEngine(w io.Writer, s *EngineSnapshot) error {
	s.Magic = engineSnapshotMagic
	return gob.NewEncoder(w).Encode(s)
}

// DecodeEngine decodes a snapshot written by EncodeEngine, verifying the
// magic.
func DecodeEngine(r io.Reader) (*EngineSnapshot, error) {
	var s EngineSnapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	if s.Magic != engineSnapshotMagic {
		return nil, fmt.Errorf("not a snapshot file")
	}
	return &s, nil
}
