// Package ingest provides the batching half of the pipelined ingest
// path: a long-lived writer goroutine fed by a bounded queue, draining
// whatever has accumulated since its last wakeup into one batch.
//
// The package is deliberately generic and dependency-free — it knows
// nothing about rows, journals or shards. The pool builds one Writer per
// shard and supplies a process function that journals, applies and
// completes the drained operations; Writer contributes the queueing
// discipline (FIFO per writer, bounded, blocking on overflow) and the
// monitoring counters (queue depth, drained-batch-size histogram,
// backpressure waits) that /v1/metrics reports.
package ingest

import (
	"context"
	"math/bits"
	"sync"
)

// batchHistBuckets is the number of power-of-two drained-batch-size
// buckets: bucket i counts batches of size in (2^(i-1), 2^i], so bucket 0
// is single-op batches (no batching win) and the top bucket is everything
// past 2^(batchHistBuckets-2).
const batchHistBuckets = 9

// Adaptive-capacity tuning (NewAdaptiveWriter). The queue capacity floats
// between a floor and a ceiling, driven by the two signals the writer
// already collects: producer blocks on a full queue (backpressure — the
// queue is too small for the arrival rate) and drained batch sizes (a
// batch much smaller than the capacity means the queue is oversized and
// only adds worst-case latency and memory).
const (
	// shrinkWindow is the number of consecutive calm drains — no full
	// waits, batch at most cap/shrinkFactor — before the capacity halves.
	shrinkWindow = 32
	// shrinkFactor is the headroom a calm drain must leave: only batches
	// ≤ cap/shrinkFactor count toward shrinking, so capacity settles at
	// two doublings above the observed batch size, not flush against it.
	shrinkFactor = 4
)

// Writer is one batching queue/goroutine pair. Enqueue is safe for any
// number of producers; the single consumer goroutine drains the queue
// into maximal batches and hands each to the process function, so per-op
// costs the function can amortise (locks, journal passes, fsyncs) are
// paid once per batch under load and once per op when idle.
type Writer[T any] struct {
	mu      sync.Mutex
	notFull sync.Cond // waits: producers blocked on a full queue
	wake    sync.Cond // waits: the consumer, on an empty queue
	queue   []T       // pending ops, FIFO
	spare   []T       // drained buffer recycled between wakeups
	cap     int       // current capacity; floats in [floor, ceil]
	floor   int       // adaptive lower bound; floor == ceil means fixed
	ceil    int       // adaptive upper bound (the configured depth)
	closed  bool
	done    chan struct{}

	// Monitoring counters, maintained under mu.
	enqueued  uint64
	batches   uint64
	maxBatch  int
	fullWaits uint64 // producer blocks on a full queue (backpressure)
	canceled  uint64 // producers that gave up while parked on a full queue
	resizes   uint64 // adaptive capacity changes (grow + shrink)
	hist      [batchHistBuckets]uint64

	// Adaptation state, maintained under mu (see adapt).
	fullSinceDrain uint64 // full waits observed since the last drain
	calmDrains     int    // consecutive drains qualifying for a shrink
}

// Stats is a monitoring snapshot of one Writer.
type Stats struct {
	// Depth is the current queue depth (ops accepted, not yet drained).
	Depth int
	// Cap is the current queue capacity. Fixed writers report their
	// configured depth; adaptive writers report where in [floor, ceiling]
	// the capacity currently sits.
	Cap int
	// Resizes counts adaptive capacity changes (grows and shrinks); 0 for
	// a fixed writer.
	Resizes uint64
	// Enqueued is the total ops accepted since start.
	Enqueued uint64
	// Batches is the number of drain wakeups; Enqueued/Batches is the
	// mean drained-batch size.
	Batches uint64
	// MaxBatch is the largest batch drained in one wakeup.
	MaxBatch int
	// FullWaits counts producer blocks on a full queue — each is one
	// backpressure event where ingest outran the writer.
	FullWaits uint64
	// Canceled counts producers whose context ended while they were
	// parked on a full queue: the op was never accepted, never journaled
	// and never acknowledged (EnqueueContext).
	Canceled uint64
	// BatchHist is a power-of-two histogram of drained batch sizes:
	// bucket i counts batches of size (2^(i-1), 2^i], the last bucket
	// counts everything larger.
	BatchHist [batchHistBuckets]uint64
}

// NewWriter starts a writer whose queue holds at most capacity ops
// (<= 0 selects 256). process receives each drained batch on the writer
// goroutine; it must not call back into this Writer.
func NewWriter[T any](capacity int, process func(batch []T)) *Writer[T] {
	if capacity <= 0 {
		capacity = 256
	}
	return startWriter(capacity, capacity, process)
}

// NewAdaptiveWriter starts a writer whose queue capacity floats between
// floor and ceil (each <= 0 selects a default: ceiling 256, floor
// ceiling/16 but at least 16), beginning at the floor. Backpressure since
// the last drain doubles the capacity toward the ceiling; shrinkWindow
// consecutive calm drains halve it toward the floor — so an idle or
// lightly loaded shard holds a small queue (small worst-case batch, small
// ack latency, small memory) and a hot shard earns the configured depth.
// Stats.Cap and Stats.Resizes expose the current state.
func NewAdaptiveWriter[T any](floor, ceil int, process func(batch []T)) *Writer[T] {
	if ceil <= 0 {
		ceil = 256
	}
	if floor <= 0 {
		floor = ceil / 16
		if floor < 16 {
			floor = 16
		}
	}
	if floor > ceil {
		floor = ceil
	}
	return startWriter(floor, ceil, process)
}

func startWriter[T any](floor, ceil int, process func(batch []T)) *Writer[T] {
	w := &Writer[T]{cap: floor, floor: floor, ceil: ceil, done: make(chan struct{})}
	w.notFull.L = &w.mu
	w.wake.L = &w.mu
	go w.run(process)
	return w
}

// Enqueue appends op to the queue, blocking while the queue is full. It
// reports false when the writer is closed (the op was not accepted) —
// callers fall back to their direct path.
func (w *Writer[T]) Enqueue(op T) bool {
	w.mu.Lock()
	for len(w.queue) >= w.cap && !w.closed {
		w.fullWaits++
		w.fullSinceDrain++
		w.notFull.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return false
	}
	w.queue = append(w.queue, op)
	w.enqueued++
	w.mu.Unlock()
	w.wake.Signal()
	return true
}

// EnqueueContext is Enqueue with cancellation while parked: a producer
// whose ctx ends before queue space frees gives up its slot and returns
// ctx's error — the op was never accepted, so nothing will be journaled
// or acknowledged for it (counted in Stats.Canceled). Once the op is in
// the queue the cancellation point has passed and the op completes
// normally, exactly like Enqueue. ok mirrors Enqueue's: false with a nil
// error means the writer is closed and the caller should fall back to
// its direct path.
func (w *Writer[T]) EnqueueContext(ctx context.Context, op T) (ok bool, err error) {
	if ctx.Done() == nil {
		return w.Enqueue(op), nil
	}
	w.mu.Lock()
	for len(w.queue) >= w.cap && !w.closed {
		if ctx.Err() != nil {
			w.canceled++
			w.mu.Unlock()
			return false, ctx.Err()
		}
		w.fullWaits++
		w.fullSinceDrain++
		// The cond has no cancellable wait, so arrange a Broadcast when
		// ctx ends; taking mu in the callback guarantees the waiter is
		// parked (or already past the check) when the wakeup fires.
		stop := context.AfterFunc(ctx, func() {
			w.mu.Lock()
			w.notFull.Broadcast()
			w.mu.Unlock()
		})
		w.notFull.Wait()
		stop()
	}
	if w.closed {
		w.mu.Unlock()
		return false, nil
	}
	w.queue = append(w.queue, op)
	w.enqueued++
	w.mu.Unlock()
	w.wake.Signal()
	return true, nil
}

// run is the writer goroutine: drain everything queued, process it as
// one batch, repeat until closed and empty.
func (w *Writer[T]) run(process func([]T)) {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.wake.Wait()
		}
		if len(w.queue) == 0 { // closed and drained
			w.mu.Unlock()
			return
		}
		// Swap buffers so producers refill w.queue while this batch is
		// processed outside the lock.
		batch := w.queue
		w.queue = w.spare[:0]
		w.batches++
		if len(batch) > w.maxBatch {
			w.maxBatch = len(batch)
		}
		w.hist[histBucket(len(batch))]++
		w.adapt(len(batch))
		w.mu.Unlock()
		// Broadcast covers both the freed queue space and any capacity
		// grow adapt just applied.
		w.notFull.Broadcast()

		process(batch)

		clear(batch) // drop op references so pooled ops are collectable
		w.spare = batch
	}
}

// adapt applies the capacity policy at drain time (caller holds mu; the
// drained batch's size is batchLen). The state machine has three moves:
//
//	grow:   any producer blocked on the full queue since the last drain →
//	        double toward the ceiling, reset the calm streak;
//	calm:   no backpressure and the batch left shrinkFactor× headroom →
//	        extend the streak; shrinkWindow in a row halve toward the
//	        floor and restart the streak;
//	steady: no backpressure but a substantial batch → restart the streak,
//	        keep the capacity.
//
// Shrinking never evicts queued ops: Enqueue blocks while len(queue) ≥
// cap, and the next drain always takes the whole queue, so a shrink only
// delays producers until the writer catches up.
func (w *Writer[T]) adapt(batchLen int) {
	if w.floor == w.ceil {
		return // fixed-capacity writer
	}
	full := w.fullSinceDrain
	w.fullSinceDrain = 0
	switch {
	case full > 0:
		w.calmDrains = 0
		if w.cap < w.ceil {
			w.cap *= 2
			if w.cap > w.ceil {
				w.cap = w.ceil
			}
			w.resizes++
		}
	case w.cap > w.floor && batchLen*shrinkFactor <= w.cap:
		w.calmDrains++
		if w.calmDrains >= shrinkWindow {
			w.calmDrains = 0
			w.cap /= 2
			if w.cap < w.floor {
				w.cap = w.floor
			}
			w.resizes++
		}
	default:
		w.calmDrains = 0
	}
}

// histBucket maps a batch size to its power-of-two bucket.
func histBucket(n int) int {
	b := bits.Len(uint(n - 1)) // ceil(log2 n); 0 for n == 1
	if b >= batchHistBuckets {
		b = batchHistBuckets - 1
	}
	return b
}

// Close stops accepting ops, waits for the queue to drain and the writer
// goroutine to exit. Safe to call twice; Enqueue returns false afterwards.
func (w *Writer[T]) Close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.wake.Signal()
		w.notFull.Broadcast()
	}
	w.mu.Unlock()
	<-w.done
}

// Stats returns a monitoring snapshot.
func (w *Writer[T]) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Depth:     len(w.queue),
		Cap:       w.cap,
		Resizes:   w.resizes,
		Enqueued:  w.enqueued,
		Batches:   w.batches,
		MaxBatch:  w.maxBatch,
		FullWaits: w.fullWaits,
		Canceled:  w.canceled,
		BatchHist: w.hist,
	}
}
