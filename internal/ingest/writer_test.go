package ingest

import (
	"sync"
	"testing"
)

// TestWriterFIFO pins the queueing discipline: ops drain in enqueue
// order, every op exactly once, across multiple drain wakeups.
func TestWriterFIFO(t *testing.T) {
	var mu sync.Mutex
	var got []int
	w := NewWriter(4, func(batch []int) {
		mu.Lock()
		got = append(got, batch...)
		mu.Unlock()
	})
	const n = 1000
	for i := 0; i < n; i++ {
		if !w.Enqueue(i) {
			t.Fatalf("Enqueue(%d) rejected on a running writer", i)
		}
	}
	w.Close()
	if len(got) != n {
		t.Fatalf("processed %d ops, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("op %d drained at position %d: FIFO violated", v, i)
		}
	}
}

// TestWriterBatching verifies ops queued while the writer is busy drain
// as one batch, and that the stats see it.
func TestWriterBatching(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	first := true
	var batches [][]int
	w := NewWriter(64, func(batch []int) {
		if first {
			first = false
			started <- struct{}{}
			<-block // hold the writer so the rest of the ops pile up
		}
		cp := make([]int, len(batch))
		copy(cp, batch)
		batches = append(batches, cp)
	})
	w.Enqueue(0) // wakes the writer, which blocks in process
	<-started    // the writer holds batch [0]; everything below piles up
	for i := 1; i <= 16; i++ {
		w.Enqueue(i)
	}
	close(block)
	w.Close()
	if len(batches) != 2 {
		t.Fatalf("expected the 16 blocked ops to drain as one batch after [0], got %d batches", len(batches))
	}
	if len(batches[1]) != 16 {
		t.Errorf("second drain took %d ops, want the whole 16-op pile-up", len(batches[1]))
	}
	st := w.Stats()
	if st.Enqueued != 17 {
		t.Errorf("Enqueued = %d, want 17", st.Enqueued)
	}
	if st.Batches != uint64(len(batches)) {
		t.Errorf("Batches = %d, want %d", st.Batches, len(batches))
	}
	if st.MaxBatch != len(batches[1]) {
		t.Errorf("MaxBatch = %d, want %d", st.MaxBatch, len(batches[1]))
	}
	var histTotal uint64
	for _, c := range st.BatchHist {
		histTotal += c
	}
	if histTotal != st.Batches {
		t.Errorf("histogram sums to %d batches, want %d", histTotal, st.Batches)
	}
}

// TestWriterBackpressure fills a tiny queue from many producers and
// checks every op still lands exactly once, with FullWaits counting the
// overflow blocks.
func TestWriterBackpressure(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	gate := make(chan struct{})
	w := NewWriter(2, func(batch []int) {
		<-gate // slow writer: producers must outrun the queue
		mu.Lock()
		for _, v := range batch {
			if seen[v] {
				t.Errorf("op %d processed twice", v)
			}
			seen[v] = true
		}
		mu.Unlock()
	})
	const producers, per = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Enqueue(p*per + i)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case gate <- struct{}{}: // release one writer batch
		case <-done:
			close(gate) // producers finished; let the writer free-run
			w.Close()
			if len(seen) != producers*per {
				t.Fatalf("processed %d ops, want %d", len(seen), producers*per)
			}
			if st := w.Stats(); st.FullWaits == 0 {
				t.Error("FullWaits = 0; a capacity-2 queue under 8 producers should have blocked")
			}
			return
		}
	}
}

// TestWriterClose pins the shutdown contract: Close drains the queue,
// Enqueue afterwards reports false, and a second Close is a no-op.
func TestWriterClose(t *testing.T) {
	var n int
	w := NewWriter(16, func(batch []int) { n += len(batch) })
	for i := 0; i < 10; i++ {
		w.Enqueue(i)
	}
	w.Close()
	if n != 10 {
		t.Fatalf("Close drained %d ops, want 10", n)
	}
	if w.Enqueue(99) {
		t.Error("Enqueue accepted an op after Close")
	}
	w.Close() // must not hang or panic
	if st := w.Stats(); st.Depth != 0 || st.Enqueued != 10 {
		t.Errorf("stats after close = %+v, want depth 0, enqueued 10", st)
	}
}

// TestHistBucket pins the power-of-two bucket mapping.
func TestHistBucket(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8, 1 << 20: batchHistBuckets - 1}
	for n, want := range cases {
		if got := histBucket(n); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", n, got, want)
		}
	}
}
