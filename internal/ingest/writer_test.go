package ingest

import (
	"sync"
	"testing"
)

// TestWriterFIFO pins the queueing discipline: ops drain in enqueue
// order, every op exactly once, across multiple drain wakeups.
func TestWriterFIFO(t *testing.T) {
	var mu sync.Mutex
	var got []int
	w := NewWriter(4, func(batch []int) {
		mu.Lock()
		got = append(got, batch...)
		mu.Unlock()
	})
	const n = 1000
	for i := 0; i < n; i++ {
		if !w.Enqueue(i) {
			t.Fatalf("Enqueue(%d) rejected on a running writer", i)
		}
	}
	w.Close()
	if len(got) != n {
		t.Fatalf("processed %d ops, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("op %d drained at position %d: FIFO violated", v, i)
		}
	}
}

// TestWriterBatching verifies ops queued while the writer is busy drain
// as one batch, and that the stats see it.
func TestWriterBatching(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	first := true
	var batches [][]int
	w := NewWriter(64, func(batch []int) {
		if first {
			first = false
			started <- struct{}{}
			<-block // hold the writer so the rest of the ops pile up
		}
		cp := make([]int, len(batch))
		copy(cp, batch)
		batches = append(batches, cp)
	})
	w.Enqueue(0) // wakes the writer, which blocks in process
	<-started    // the writer holds batch [0]; everything below piles up
	for i := 1; i <= 16; i++ {
		w.Enqueue(i)
	}
	close(block)
	w.Close()
	if len(batches) != 2 {
		t.Fatalf("expected the 16 blocked ops to drain as one batch after [0], got %d batches", len(batches))
	}
	if len(batches[1]) != 16 {
		t.Errorf("second drain took %d ops, want the whole 16-op pile-up", len(batches[1]))
	}
	st := w.Stats()
	if st.Enqueued != 17 {
		t.Errorf("Enqueued = %d, want 17", st.Enqueued)
	}
	if st.Batches != uint64(len(batches)) {
		t.Errorf("Batches = %d, want %d", st.Batches, len(batches))
	}
	if st.MaxBatch != len(batches[1]) {
		t.Errorf("MaxBatch = %d, want %d", st.MaxBatch, len(batches[1]))
	}
	var histTotal uint64
	for _, c := range st.BatchHist {
		histTotal += c
	}
	if histTotal != st.Batches {
		t.Errorf("histogram sums to %d batches, want %d", histTotal, st.Batches)
	}
}

// TestWriterBackpressure fills a tiny queue from many producers and
// checks every op still lands exactly once, with FullWaits counting the
// overflow blocks.
func TestWriterBackpressure(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	gate := make(chan struct{})
	w := NewWriter(2, func(batch []int) {
		<-gate // slow writer: producers must outrun the queue
		mu.Lock()
		for _, v := range batch {
			if seen[v] {
				t.Errorf("op %d processed twice", v)
			}
			seen[v] = true
		}
		mu.Unlock()
	})
	const producers, per = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Enqueue(p*per + i)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case gate <- struct{}{}: // release one writer batch
		case <-done:
			close(gate) // producers finished; let the writer free-run
			w.Close()
			if len(seen) != producers*per {
				t.Fatalf("processed %d ops, want %d", len(seen), producers*per)
			}
			if st := w.Stats(); st.FullWaits == 0 {
				t.Error("FullWaits = 0; a capacity-2 queue under 8 producers should have blocked")
			}
			return
		}
	}
}

// TestWriterClose pins the shutdown contract: Close drains the queue,
// Enqueue afterwards reports false, and a second Close is a no-op.
func TestWriterClose(t *testing.T) {
	var n int
	w := NewWriter(16, func(batch []int) { n += len(batch) })
	for i := 0; i < 10; i++ {
		w.Enqueue(i)
	}
	w.Close()
	if n != 10 {
		t.Fatalf("Close drained %d ops, want 10", n)
	}
	if w.Enqueue(99) {
		t.Error("Enqueue accepted an op after Close")
	}
	w.Close() // must not hang or panic
	if st := w.Stats(); st.Depth != 0 || st.Enqueued != 10 {
		t.Errorf("stats after close = %+v, want depth 0, enqueued 10", st)
	}
}

// TestAdaptivePolicy drives adapt directly (under mu, the writer
// goroutine idles on an empty queue) and pins the capacity state machine:
// backpressure doubles toward the ceiling, shrinkWindow calm drains halve
// toward the floor, a busy drain resets the calm streak, and a fixed
// writer never moves.
func TestAdaptivePolicy(t *testing.T) {
	w := NewAdaptiveWriter(4, 64, func(batch []int) {})
	defer w.Close()
	w.mu.Lock()
	defer w.mu.Unlock()

	if w.cap != 4 {
		t.Fatalf("adaptive writer starts at cap %d, want the floor 4", w.cap)
	}
	// Grow: one full wait since the last drain doubles, up to the ceiling.
	for _, want := range []int{8, 16, 32, 64, 64} {
		w.fullSinceDrain = 1
		w.adapt(w.cap)
		if w.cap != want {
			t.Fatalf("after backpressure drain cap = %d, want %d", w.cap, want)
		}
	}
	if w.resizes != 4 {
		t.Errorf("resizes = %d after 4 grows (the 5th was already at the ceiling), want 4", w.resizes)
	}
	// Shrink: needs shrinkWindow consecutive calm drains with headroom.
	for i := 0; i < shrinkWindow-1; i++ {
		w.adapt(1)
	}
	if w.cap != 64 {
		t.Fatalf("cap moved to %d after %d calm drains, want none before the window fills", w.cap, shrinkWindow-1)
	}
	w.adapt(1)
	if w.cap != 32 {
		t.Fatalf("cap = %d after a full calm window, want 32", w.cap)
	}
	// A busy drain (no headroom) restarts the streak.
	for i := 0; i < shrinkWindow-1; i++ {
		w.adapt(1)
	}
	w.adapt(w.cap) // batch flush against cap: not calm
	w.adapt(1)     // streak restarted — one calm drain, no shrink
	if w.cap != 32 {
		t.Fatalf("cap = %d, want 32: a busy drain must reset the calm streak", w.cap)
	}
	// Shrinks stop at the floor.
	for i := 0; i < 8*shrinkWindow; i++ {
		w.adapt(1)
	}
	if w.cap != 4 {
		t.Fatalf("cap = %d after sustained calm, want the floor 4", w.cap)
	}
}

// TestAdaptiveWriterGrows runs the policy end to end: producers
// overflowing a gated writer must raise the capacity and count resizes.
func TestAdaptiveWriterGrows(t *testing.T) {
	gate := make(chan struct{})
	var n int
	w := NewAdaptiveWriter(2, 256, func(batch []int) {
		<-gate
		n += len(batch)
	})
	const ops = 200
	done := make(chan struct{})
	go func() {
		for i := 0; i < ops; i++ {
			w.Enqueue(i)
		}
		close(done)
	}()
	for {
		select {
		case gate <- struct{}{}:
		case <-done:
			close(gate)
			w.Close()
			st := w.Stats()
			if n != ops {
				t.Fatalf("processed %d ops, want %d", n, ops)
			}
			if st.Cap <= 2 || st.Resizes == 0 {
				t.Errorf("Cap = %d, Resizes = %d; sustained backpressure on a floor-2 queue should have grown it", st.Cap, st.Resizes)
			}
			return
		}
	}
}

// TestFixedWriterNeverResizes pins that NewWriter keeps its configured
// capacity under both backpressure and calm.
func TestFixedWriterNeverResizes(t *testing.T) {
	gate := make(chan struct{})
	w := NewWriter(2, func(batch []int) { <-gate })
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			w.Enqueue(i)
		}
		close(done)
	}()
	for {
		select {
		case gate <- struct{}{}:
		case <-done:
			close(gate)
			w.Close()
			if st := w.Stats(); st.Cap != 2 || st.Resizes != 0 {
				t.Errorf("fixed writer Cap = %d, Resizes = %d; want 2 and 0", st.Cap, st.Resizes)
			}
			return
		}
	}
}

// TestNewAdaptiveWriterDefaults pins the constructor's bound handling.
func TestNewAdaptiveWriterDefaults(t *testing.T) {
	w := NewAdaptiveWriter[int](0, 0, func([]int) {})
	if w.floor != 16 || w.ceil != 256 || w.cap != 16 {
		t.Errorf("defaults: floor %d ceil %d cap %d, want 16/256/16", w.floor, w.ceil, w.cap)
	}
	w.Close()
	w = NewAdaptiveWriter[int](100, 50, func([]int) {})
	if w.floor != 50 || w.ceil != 50 {
		t.Errorf("floor > ceil: floor %d ceil %d, want both clamped to 50", w.floor, w.ceil)
	}
	w.Close()
}

// TestHistBucket pins the power-of-two bucket mapping.
func TestHistBucket(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8, 1 << 20: batchHistBuckets - 1}
	for n, want := range cases {
		if got := histBucket(n); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", n, got, want)
		}
	}
}
