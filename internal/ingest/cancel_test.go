package ingest

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWriterEnqueueContextCanceled pins the enqueue-path cancellation
// contract: a producer parked on a full queue whose context ends gives
// up with the context's error, counts as Canceled, and its op is never
// accepted — while producers whose context stays live keep blocking
// until space frees.
func TestWriterEnqueueContextCanceled(t *testing.T) {
	release := make(chan struct{})
	var processed []int
	var mu sync.Mutex
	w := NewWriter(1, func(batch []int) {
		<-release
		mu.Lock()
		processed = append(processed, batch...)
		mu.Unlock()
	})
	defer w.Close()

	// Fill: op 1 drains immediately into the (blocked) process call, op 2
	// occupies the queue slot, so op 3 must park.
	if ok, err := w.EnqueueContext(context.Background(), 1); !ok || err != nil {
		t.Fatalf("enqueue 1: ok=%v err=%v", ok, err)
	}
	if ok, err := w.EnqueueContext(context.Background(), 2); !ok || err != nil {
		t.Fatalf("enqueue 2: ok=%v err=%v", ok, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		ok, err := w.EnqueueContext(ctx, 3)
		if ok {
			errCh <- errors.New("canceled op was accepted")
			return
		}
		errCh <- err
	}()
	// Give the producer time to park, then cancel it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parked enqueue returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled producer never returned")
	}
	if st := w.Stats(); st.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", st.Canceled)
	}

	close(release)
	w.Close()
	mu.Lock()
	defer mu.Unlock()
	for _, v := range processed {
		if v == 3 {
			t.Fatal("canceled op 3 was processed")
		}
	}
	if len(processed) != 2 {
		t.Fatalf("processed %v, want exactly ops 1 and 2", processed)
	}
}

// TestWriterEnqueueContextDeadline: a deadline that expires while parked
// behaves like cancellation (DeadlineExceeded), and a background context
// never cancels.
func TestWriterEnqueueContextDeadline(t *testing.T) {
	release := make(chan struct{})
	w := NewWriter(1, func(batch []int) { <-release })
	defer func() { close(release); w.Close() }()
	w.Enqueue(1)
	w.Enqueue(2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	ok, err := w.EnqueueContext(ctx, 3)
	if ok || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ok=%v err=%v, want deadline exceeded", ok, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline enqueue blocked far past its budget")
	}
}

// TestWriterEnqueueContextClosed: a closed writer reports (false, nil) —
// the direct-path fallback signal, not a cancellation.
func TestWriterEnqueueContextClosed(t *testing.T) {
	w := NewWriter(4, func(batch []int) {})
	w.Close()
	ok, err := w.EnqueueContext(context.Background(), 1)
	if ok || err != nil {
		t.Fatalf("closed writer: ok=%v err=%v, want false/nil", ok, err)
	}
}
