package store

import (
	"hash/maphash"
	"sync"

	"repro/internal/relation"
)

// Sharded is a concurrency-safe in-memory store: cells are split across
// power-of-two lock stripes selected by a hash of the cell key, each
// stripe a private Memory store guarded by its own mutex, so loads and
// saves from many goroutines never race on the maps or on the Stats
// counters (every Memory counter update happens under its stripe lock).
//
// The locks guard the stripe stores, NOT the cell slices: like Memory,
// Load returns the live slice and the caller owns it until the matching
// Save. Concurrent users must therefore never work on the same cell at
// the same time. The parallel discovery driver guarantees this
// structurally — cells are keyed by (C, M) and each measure subspace M
// belongs to exactly one worker — which is what makes a single shared
// Sharded store safe there.
type Sharded struct {
	mask    uint64
	seed    maphash.Seed
	stripes []shardStripe
}

type shardStripe struct {
	mu  sync.Mutex
	mem *Memory
}

// DefaultStripes is the stripe count NewSharded uses when given n ≤ 0.
const DefaultStripes = 32

// NewSharded creates an empty sharded store with at least n lock stripes
// (rounded up to a power of two; n ≤ 0 selects DefaultStripes).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Sharded{
		mask:    uint64(size - 1),
		seed:    maphash.MakeSeed(),
		stripes: make([]shardStripe, size),
	}
	for i := range s.stripes {
		s.stripes[i].mem = NewMemory()
	}
	return s
}

func (s *Sharded) stripe(k CellKey) *shardStripe {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(string(k.C))
	h.WriteByte(byte(k.M))
	h.WriteByte(byte(k.M >> 8))
	h.WriteByte(byte(k.M >> 16))
	h.WriteByte(byte(k.M >> 24))
	return &s.stripes[h.Sum64()&s.mask]
}

// Load implements Store.
func (s *Sharded) Load(k CellKey) []*relation.Tuple {
	st := s.stripe(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.mem.Load(k)
}

// Save implements Store.
func (s *Sharded) Save(k CellKey, ts []*relation.Tuple) {
	st := s.stripe(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.mem.Save(k, ts)
}

// Stats implements Store: the sum of the per-stripe counters, each read
// under its stripe lock. The result is a consistent total when no
// operations are in flight, and a safe approximation otherwise.
func (s *Sharded) Stats() Stats {
	var total Stats
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		m := st.mem.Stats()
		st.mu.Unlock()
		total.StoredTuples += m.StoredTuples
		total.Cells += m.Cells
		total.Reads += m.Reads
		total.Writes += m.Writes
	}
	return total
}

// Close implements Store.
func (s *Sharded) Close() error { return nil }

// Walk visits every non-empty cell, holding one stripe lock at a time;
// used by invariant checkers in tests. The callback must not re-enter the
// store.
func (s *Sharded) Walk(fn func(CellKey, []*relation.Tuple)) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.mem.Walk(fn)
		st.mu.Unlock()
	}
}

var _ Store = (*Sharded)(nil)
