package store

import (
	"math/rand"
	"sync"
)

// Sharded is a concurrency-safe in-memory store: cells are split across
// power-of-two lock stripes selected by mixing the packed cell ref, each
// stripe a private Memory store guarded by its own mutex, so loads and
// saves from many goroutines never race on the maps or on the Stats
// counters (every Memory counter update happens under its stripe lock).
// All stripes share one Interner — constraint ids must be coherent across
// the whole store because every worker addresses cells through them.
//
// The locks guard the stripe stores, NOT the cell slices: like Memory,
// Load returns the live cell and the caller owns it until the matching
// Save. Concurrent users must therefore never work on the same cell at
// the same time. The parallel discovery driver guarantees this
// structurally — cells are keyed by (C, M) and each measure subspace M
// belongs to exactly one worker — which is what makes a single shared
// Sharded store safe there.
type Sharded struct {
	in      *Interner
	width   int
	mask    uint64
	seed    uint64
	stripes []shardStripe
}

type shardStripe struct {
	mu  sync.Mutex
	mem *Memory
}

// DefaultStripes is the stripe count NewSharded uses when given n ≤ 0.
const DefaultStripes = 32

// NewSharded creates an empty sharded store with at least n lock stripes
// (rounded up to a power of two; n ≤ 0 selects DefaultStripes) for
// vectors of the given width.
func NewSharded(n, width int) *Sharded {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Sharded{
		in:      NewInterner(),
		width:   width,
		mask:    uint64(size - 1),
		seed:    rand.Uint64() | 1,
		stripes: make([]shardStripe, size),
	}
	for i := range s.stripes {
		s.stripes[i].mem = newMemoryShared(s.in, width)
	}
	return s
}

// stripe selects by the constraint id only (splitmix64 finalizer): all of
// a constraint's subspace cells share one stripe, so its dense
// subspace-slot array exists in exactly one stripe's Memory instead of
// being duplicated per stripe. Subspace-partitioned workers touching the
// same constraint therefore share a stripe lock, but the critical
// sections are two array indexings — contention stays negligible.
func (s *Sharded) stripe(ref CellRef) *shardStripe {
	x := (ref >> 32) ^ s.seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return &s.stripes[x&s.mask]
}

// Width implements Store.
func (s *Sharded) Width() int { return s.width }

// Interner implements Store: the table shared by every stripe.
func (s *Sharded) Interner() *Interner { return s.in }

// Load implements Store.
func (s *Sharded) Load(ref CellRef) Cell {
	st := s.stripe(ref)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.mem.Load(ref)
}

// Save implements Store.
func (s *Sharded) Save(ref CellRef, c Cell) {
	st := s.stripe(ref)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.mem.Save(ref, c)
}

// Stats implements Store: the sum of the per-stripe counters, each read
// under its stripe lock. The result is a consistent total when no
// operations are in flight, and a safe approximation otherwise.
func (s *Sharded) Stats() Stats {
	var total Stats
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		m := st.mem.Stats()
		st.mu.Unlock()
		total.StoredTuples += m.StoredTuples
		total.Cells += m.Cells
		total.Reads += m.Reads
		total.Writes += m.Writes
	}
	return total
}

// Close implements Store.
func (s *Sharded) Close() error { return nil }

// Walk visits every non-empty cell, holding one stripe lock at a time;
// used by invariant checkers in tests. The callback must not re-enter the
// store.
func (s *Sharded) Walk(fn func(CellKey, Cell)) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.mem.Walk(fn)
		st.mu.Unlock()
	}
}

var _ Store = (*Sharded)(nil)
