// Package store implements the µ(C,M) cell store the discovery algorithms
// maintain: for each constraint–measure-subspace pair, a small set of
// skyline tuples. Constraints are hash-consed to dense uint32 ids by an
// Interner, cells are addressed by one packed uint64 (constraint id +
// subspace mask), and a cell's members live in a single flat float64 row
// array — id-tagged, pointer-free, cache-contiguous (see
// docs/ARCHITECTURE.md § "Hot path & memory layout"). Three
// implementations cover the system's settings:
//
//   - Memory: append-only cell pages behind a dense, hash-free
//     slots[cid][mask] index (paper §VI-B) — the default, and the only
//     store snapshots serialise.
//   - File: one binary file per non-empty cell; a visit reads the whole
//     cell into a buffer, mutates the buffer, and overwrites the file when
//     the visit ends (paper §VI-C, verbatim semantics).
//   - Sharded: a striped-lock in-memory store shared by the parallel
//     drivers' workers — an extension beyond the single-threaded paper.
//
// The Load/Save protocol is shaped by the file implementation: algorithms
// Load a cell, work on the returned value, and Save it back if (and only
// if) they changed it. The memory store returns its live cell, making
// Save cheap; the file store performs real I/O and counts it in Stats
// (the cost driver of the paper's Figures 10 and 12).
package store
