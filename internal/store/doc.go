// Package store implements the µ(C,M) cell store the discovery algorithms
// maintain: for each constraint–measure-subspace pair, a small set of
// skyline tuples. Three implementations cover the system's settings:
//
//   - Memory: a hash map of cells (paper §VI-B) — the default, and the
//     only store snapshots serialise.
//   - File: one binary file per non-empty cell; a visit reads the whole
//     cell into a buffer, mutates the buffer, and overwrites the file when
//     the visit ends (paper §VI-C, verbatim semantics).
//   - Sharded: a striped-lock in-memory store shared by the parallel
//     drivers' workers — an extension beyond the single-threaded paper.
//
// The Load/Save protocol is shaped by the file implementation: algorithms
// Load a cell, work on the returned slice, and Save it back if (and only
// if) they changed it. The memory store returns its live slice, making
// Save cheap; the file store performs real I/O and counts it in Stats
// (the cost driver of the paper's Figures 10 and 12).
package store
