package store

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/relation"
)

// File is the file-backed µ(C,M) store of the paper's §VI-C: "each
// non-empty µC,M is stored as a binary file. Since the size of µC,M for any
// particular constraint-measure pair is small, all tuples in the
// corresponding file are read into a memory buffer when the pair is
// visited. Insertion and deletion are then performed on the buffer. When an
// algorithm finishes processing the pair, the file is overwritten by the
// buffer's content."
//
// Files are named by the hex of the constraint key plus the subspace mask
// and sharded into 256 subdirectories by a simple byte fold, keeping
// directory sizes manageable for large lattices.
type File struct {
	dir    string
	schema *relation.Schema
	stats  Stats
	// cellSizes tracks the entry count of every non-empty cell so that
	// StoredTuples/Cells stay O(1); it mirrors what is on disk.
	cellSizes map[CellKey]int
}

// NewFile creates (or reuses) dir as the store root. The directory and its
// 256 shard subdirectories are created eagerly, so the Save hot path does
// no mkdir work. Any pre-existing cell files are ignored (the paper's
// experiments always start from an empty store); use a fresh directory per
// run.
func NewFile(dir string, schema *relation.Schema) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	for i := 0; i < 256; i++ {
		if err := os.MkdirAll(filepath.Join(dir, fmt.Sprintf("%02x", i)), 0o755); err != nil {
			return nil, fmt.Errorf("store: create shard dir: %w", err)
		}
	}
	return &File{dir: dir, schema: schema, cellSizes: make(map[CellKey]int)}, nil
}

func (f *File) path(k CellKey) string {
	name := hex.EncodeToString([]byte(k.C)) + fmt.Sprintf("-%x.cell", k.M)
	var shard byte
	for i := 0; i < len(k.C); i++ {
		shard ^= k.C[i]
	}
	shard ^= byte(k.M)
	return filepath.Join(f.dir, fmt.Sprintf("%02x", shard), name)
}

// Load implements Store: reads the cell file into fresh tuples.
func (f *File) Load(k CellKey) []*relation.Tuple {
	n, ok := f.cellSizes[k]
	if !ok || n == 0 {
		return nil
	}
	buf, err := os.ReadFile(f.path(k))
	if err != nil {
		// The size index says the file exists; treat loss as corruption.
		panic(fmt.Sprintf("store: cell %v vanished: %v", k, err))
	}
	f.stats.Reads++
	ts, err := relation.DecodeTuples(buf, f.schema)
	if err != nil {
		panic(fmt.Sprintf("store: cell %v corrupt: %v", k, err))
	}
	return ts
}

// Save implements Store: overwrites (or deletes) the cell file.
func (f *File) Save(k CellKey, ts []*relation.Tuple) {
	old := f.cellSizes[k]
	if len(ts) == 0 {
		if old == 0 {
			return
		}
		if err := os.Remove(f.path(k)); err != nil {
			panic(fmt.Sprintf("store: remove cell %v: %v", k, err))
		}
		delete(f.cellSizes, k)
		f.stats.Cells--
		f.stats.StoredTuples -= int64(old)
		f.stats.Writes++
		return
	}
	p := f.path(k)
	if err := os.WriteFile(p, relation.EncodeTuples(f.schema, ts), 0o644); err != nil {
		panic(fmt.Sprintf("store: write cell %v: %v", k, err))
	}
	if old == 0 {
		f.stats.Cells++
	}
	f.stats.StoredTuples += int64(len(ts) - old)
	f.cellSizes[k] = len(ts)
	f.stats.Writes++
}

// Stats implements Store.
func (f *File) Stats() Stats { return f.stats }

// Close implements Store. The cell files are left on disk (they are the
// persisted state); callers remove the directory when done.
func (f *File) Close() error { return nil }

// Destroy removes the whole store directory tree.
func (f *File) Destroy() error { return os.RemoveAll(f.dir) }
