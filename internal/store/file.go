package store

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/relation"
)

// File is the file-backed µ(C,M) store of the paper's §VI-C: "each
// non-empty µC,M is stored as a binary file. Since the size of µC,M for any
// particular constraint-measure pair is small, all tuples in the
// corresponding file are read into a memory buffer when the pair is
// visited. Insertion and deletion are then performed on the buffer. When an
// algorithm finishes processing the pair, the file is overwritten by the
// buffer's content."
//
// Files are named by the hex of the constraint key plus the subspace mask
// and sharded into 256 subdirectories by a simple byte fold, keeping
// directory sizes manageable for large lattices. Each row is the SoA cell
// entry — tuple id plus the oriented vector, little endian — so a load
// rebuilds the cell without re-deriving orientation from the schema.
type File struct {
	dir   string
	in    *Interner
	width int
	stats Stats
	// cellSizes tracks the entry count of every non-empty cell so that
	// StoredTuples/Cells stay O(1); it mirrors what is on disk.
	cellSizes map[CellRef]int
	enc       []byte // reused encode buffer
}

// NewFile creates (or reuses) dir as the store root. The directory and its
// 256 shard subdirectories are created eagerly, so the Save hot path does
// no mkdir work. Any pre-existing cell files are ignored (the paper's
// experiments always start from an empty store); use a fresh directory per
// run.
func NewFile(dir string, schema *relation.Schema) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	for i := 0; i < 256; i++ {
		if err := os.MkdirAll(filepath.Join(dir, fmt.Sprintf("%02x", i)), 0o755); err != nil {
			return nil, fmt.Errorf("store: create shard dir: %w", err)
		}
	}
	return &File{
		dir:       dir,
		in:        NewInterner(),
		width:     schema.NumMeasures(),
		cellSizes: make(map[CellRef]int),
	}, nil
}

// rowSize is the encoded byte size of one cell member.
func (f *File) rowSize() int { return 8 + 8*f.width }

func (f *File) path(ref CellRef) string {
	id, mask := RefParts(ref)
	key := f.in.Key(id)
	name := hex.EncodeToString([]byte(key)) + fmt.Sprintf("-%x.cell", mask)
	var shard byte
	for i := 0; i < len(key); i++ {
		shard ^= key[i]
	}
	shard ^= byte(mask)
	return filepath.Join(f.dir, fmt.Sprintf("%02x", shard), name)
}

// Width implements Store.
func (f *File) Width() int { return f.width }

// Interner implements Store.
func (f *File) Interner() *Interner { return f.in }

// Load implements Store: reads the cell file into a fresh cell.
func (f *File) Load(ref CellRef) Cell {
	n, ok := f.cellSizes[ref]
	if !ok || n == 0 {
		return Cell{W: f.width}
	}
	buf, err := os.ReadFile(f.path(ref))
	if err != nil {
		// The size index says the file exists; treat loss as corruption.
		panic(fmt.Sprintf("store: cell %x vanished: %v", ref, err))
	}
	f.stats.Reads++
	if len(buf)%f.rowSize() != 0 {
		panic(fmt.Sprintf("store: cell %x corrupt: %d bytes, row size %d", ref, len(buf), f.rowSize()))
	}
	c := Cell{W: f.width, Rows: make([]float64, len(buf)/8)}
	for i := range c.Rows {
		c.Rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return c
}

// Save implements Store: overwrites (or deletes) the cell file.
func (f *File) Save(ref CellRef, c Cell) {
	old := f.cellSizes[ref]
	if c.Len() == 0 {
		if old == 0 {
			return
		}
		if err := os.Remove(f.path(ref)); err != nil {
			panic(fmt.Sprintf("store: remove cell %x: %v", ref, err))
		}
		delete(f.cellSizes, ref)
		f.stats.Cells--
		f.stats.StoredTuples -= int64(old)
		f.stats.Writes++
		return
	}
	f.enc = f.enc[:0]
	for _, v := range c.Rows {
		f.enc = binary.LittleEndian.AppendUint64(f.enc, math.Float64bits(v))
	}
	if err := os.WriteFile(f.path(ref), f.enc, 0o644); err != nil {
		panic(fmt.Sprintf("store: write cell %x: %v", ref, err))
	}
	if old == 0 {
		f.stats.Cells++
	}
	f.stats.StoredTuples += int64(c.Len() - old)
	f.cellSizes[ref] = c.Len()
	f.stats.Writes++
}

// Stats implements Store.
func (f *File) Stats() Stats { return f.stats }

// Close implements Store. The cell files are left on disk (they are the
// persisted state); callers remove the directory when done.
func (f *File) Close() error { return nil }

// Destroy removes the whole store directory tree.
func (f *File) Destroy() error { return os.RemoveAll(f.dir) }

var _ Store = (*File)(nil)
