package store

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
)

func storeSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkTuples(t *testing.T, s *relation.Schema, n int) []*relation.Tuple {
	t.Helper()
	out := make([]*relation.Tuple, n)
	for i := range out {
		tu, err := relation.NewTuple(s, int64(i), []int32{int32(i % 3), int32(i % 2)},
			[]float64{float64(i), float64(n - i)})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tu
	}
	return out
}

func key(t *testing.T, s *relation.Schema, tu *relation.Tuple, cm lattice.Mask, sub uint32) CellKey {
	t.Helper()
	return CellKey{C: lattice.KeyFromTuple(tu, cm), M: sub}
}

func testStoreBasics(t *testing.T, st Store) {
	s := storeSchema(t)
	ts := mkTuples(t, s, 5)
	k1 := key(t, s, ts[0], 0b01, 0b11)
	k2 := key(t, s, ts[0], 0b11, 0b01)

	if got := st.Load(k1); len(got) != 0 {
		t.Fatalf("empty cell load = %v", got)
	}
	// The store owns saved slices (the memory store keeps them live and the
	// Load/mutate/Save protocol edits them in place), so hand over copies.
	st.Save(k1, append([]*relation.Tuple(nil), ts[:3]...))
	st.Save(k2, append([]*relation.Tuple(nil), ts[3:4]...))

	stats := st.Stats()
	if stats.StoredTuples != 4 {
		t.Errorf("StoredTuples = %d, want 4", stats.StoredTuples)
	}
	if stats.Cells != 2 {
		t.Errorf("Cells = %d, want 2", stats.Cells)
	}

	got := st.Load(k1)
	if len(got) != 3 {
		t.Fatalf("loaded %d tuples, want 3", len(got))
	}
	for i, u := range got {
		if u.ID != ts[i].ID || u.Raw[0] != ts[i].Raw[0] || u.Oriented[1] != ts[i].Oriented[1] {
			t.Errorf("tuple %d mismatch: %+v vs %+v", i, u, ts[i])
		}
	}

	// Mutate: drop one, save back.
	got, removed := RemoveByID(got, ts[1].ID)
	if !removed {
		t.Fatal("RemoveByID failed")
	}
	st.Save(k1, got)
	if again := st.Load(k1); len(again) != 2 || ContainsID(again, ts[1].ID) {
		t.Errorf("after removal: %v", again)
	}
	if st.Stats().StoredTuples != 3 {
		t.Errorf("StoredTuples after removal = %d, want 3", st.Stats().StoredTuples)
	}

	// Empty a cell: it must disappear.
	st.Save(k2, nil)
	if st.Stats().Cells != 1 {
		t.Errorf("Cells after emptying = %d, want 1", st.Stats().Cells)
	}
	if got := st.Load(k2); len(got) != 0 {
		t.Errorf("emptied cell load = %v", got)
	}

	// Saving empty to an already-empty cell is a no-op, not a write.
	w := st.Stats().Writes
	st.Save(k2, nil)
	if st.Stats().Writes != w {
		t.Error("empty→empty save counted as a write")
	}
}

func TestMemoryStore(t *testing.T) {
	testStoreBasics(t, NewMemory())
}

func TestFileStore(t *testing.T) {
	s := storeSchema(t)
	st, err := NewFile(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	testStoreBasics(t, st)
}

func TestFileStoreIOCounters(t *testing.T) {
	s := storeSchema(t)
	st, err := NewFile(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	ts := mkTuples(t, s, 3)
	k := key(t, s, ts[0], 0b11, 0b11)

	// Loads of empty cells must not count as reads (the paper's file-based
	// cost model: "a file-read operation occurs if µC,M is non-empty").
	st.Load(k)
	if st.Stats().Reads != 0 {
		t.Errorf("empty load counted as read")
	}
	st.Save(k, ts)
	if st.Stats().Writes != 1 {
		t.Errorf("Writes = %d, want 1", st.Stats().Writes)
	}
	st.Load(k)
	if st.Stats().Reads != 1 {
		t.Errorf("Reads = %d, want 1", st.Stats().Reads)
	}
}

func TestFileStoreFreshTuples(t *testing.T) {
	// File store materialises new tuple values per load: identity-based
	// matching would fail, ID-based must work.
	s := storeSchema(t)
	st, err := NewFile(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	ts := mkTuples(t, s, 1)
	k := key(t, s, ts[0], 0b01, 0b01)
	st.Save(k, ts)
	got := st.Load(k)
	if got[0] == ts[0] {
		t.Error("file store returned the original pointer (unexpected aliasing)")
	}
	if _, ok := RemoveByID(got, ts[0].ID); !ok {
		t.Error("RemoveByID must match file-loaded tuples")
	}
}

func TestMemoryWalk(t *testing.T) {
	s := storeSchema(t)
	m := NewMemory()
	ts := mkTuples(t, s, 4)
	m.Save(key(t, s, ts[0], 0b01, 0b01), ts[:2])
	m.Save(key(t, s, ts[0], 0b10, 0b10), ts[2:])
	cells, entries := 0, 0
	m.Walk(func(k CellKey, ts []*relation.Tuple) {
		cells++
		entries += len(ts)
	})
	if cells != 2 || entries != 4 {
		t.Errorf("Walk saw %d cells / %d entries, want 2 / 4", cells, entries)
	}
}

func TestRemoveHelpers(t *testing.T) {
	s := storeSchema(t)
	ts := mkTuples(t, s, 3)
	sl := append([]*relation.Tuple(nil), ts...)
	sl, ok := Remove(sl, ts[1])
	if !ok || len(sl) != 2 || sl[0] != ts[0] || sl[1] != ts[2] {
		t.Errorf("Remove: %v %v", ok, sl)
	}
	if _, ok := Remove(sl, ts[1]); ok {
		t.Error("Remove found an absent tuple")
	}
	if ContainsID(sl, ts[1].ID) {
		t.Error("ContainsID found removed tuple")
	}
	if !ContainsID(sl, ts[2].ID) {
		t.Error("ContainsID missed present tuple")
	}
	if _, ok := RemoveByID(sl, 999); ok {
		t.Error("RemoveByID found an absent ID")
	}
}

func TestCellKeyString(t *testing.T) {
	k := CellKey{C: lattice.Key("\x01\x00\x00\x00"), M: 5}
	if got := k.String(); got == "" {
		t.Error("empty String()")
	}
}
