package store

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
)

func storeSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkTuples(t *testing.T, s *relation.Schema, n int) []*relation.Tuple {
	t.Helper()
	out := make([]*relation.Tuple, n)
	for i := range out {
		tu, err := relation.NewTuple(s, int64(i), []int32{int32(i % 3), int32(i % 2)},
			[]float64{float64(i), float64(n - i)})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tu
	}
	return out
}

// ref interns the constraint of C^tu selected by cm through the store's
// interner and packs the cell address.
func ref(t *testing.T, st Store, tu *relation.Tuple, cm lattice.Mask, sub uint32) CellRef {
	t.Helper()
	return Ref(st.Interner().InternTuple(tu, cm), sub)
}

// cellOf builds a SoA cell from tuples.
func cellOf(w int, ts ...*relation.Tuple) Cell {
	c := Cell{W: w}
	for _, tu := range ts {
		c.Append(tu.ID, tu.Oriented)
	}
	return c
}

func testStoreBasics(t *testing.T, st Store) {
	s := storeSchema(t)
	ts := mkTuples(t, s, 5)
	k1 := ref(t, st, ts[0], 0b01, 0b11)
	k2 := ref(t, st, ts[0], 0b11, 0b01)

	if got := st.Load(k1); got.Len() != 0 {
		t.Fatalf("empty cell load = %v", got)
	}
	// The store owns saved cells (the memory store keeps them live and the
	// Load/mutate/Save protocol edits them in place), so hand over copies.
	st.Save(k1, cellOf(st.Width(), ts[:3]...))
	st.Save(k2, cellOf(st.Width(), ts[3:4]...))

	stats := st.Stats()
	if stats.StoredTuples != 4 {
		t.Errorf("StoredTuples = %d, want 4", stats.StoredTuples)
	}
	if stats.Cells != 2 {
		t.Errorf("Cells = %d, want 2", stats.Cells)
	}

	got := st.Load(k1)
	if got.Len() != 3 {
		t.Fatalf("loaded %d tuples, want 3", got.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.ID(i) != ts[i].ID || got.Row(i)[1] != ts[i].Oriented[1] {
			t.Errorf("tuple %d mismatch: %v/%v vs %+v", i, got.ID(i), got.Row(i), ts[i])
		}
	}

	// Mutate: drop one, save back.
	if !got.RemoveID(ts[1].ID) {
		t.Fatal("RemoveID failed")
	}
	st.Save(k1, got)
	if again := st.Load(k1); again.Len() != 2 || again.ContainsID(ts[1].ID) {
		t.Errorf("after removal: %v", again)
	}
	if st.Stats().StoredTuples != 3 {
		t.Errorf("StoredTuples after removal = %d, want 3", st.Stats().StoredTuples)
	}

	// Empty a cell: it must disappear.
	st.Save(k2, Cell{W: st.Width()})
	if st.Stats().Cells != 1 {
		t.Errorf("Cells after emptying = %d, want 1", st.Stats().Cells)
	}
	if got := st.Load(k2); got.Len() != 0 {
		t.Errorf("emptied cell load = %v", got)
	}

	// Saving empty to an already-empty cell is a no-op, not a write.
	w := st.Stats().Writes
	st.Save(k2, Cell{W: st.Width()})
	if st.Stats().Writes != w {
		t.Error("empty→empty save counted as a write")
	}
}

func TestMemoryStore(t *testing.T) {
	testStoreBasics(t, NewMemory(2))
}

func TestFileStore(t *testing.T) {
	s := storeSchema(t)
	st, err := NewFile(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	testStoreBasics(t, st)
}

func TestFileStoreIOCounters(t *testing.T) {
	s := storeSchema(t)
	st, err := NewFile(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	ts := mkTuples(t, s, 3)
	k := ref(t, st, ts[0], 0b11, 0b11)

	// Loads of empty cells must not count as reads (the paper's file-based
	// cost model: "a file-read operation occurs if µC,M is non-empty").
	st.Load(k)
	if st.Stats().Reads != 0 {
		t.Errorf("empty load counted as read")
	}
	st.Save(k, cellOf(st.Width(), ts...))
	if st.Stats().Writes != 1 {
		t.Errorf("Writes = %d, want 1", st.Stats().Writes)
	}
	st.Load(k)
	if st.Stats().Reads != 1 {
		t.Errorf("Reads = %d, want 1", st.Stats().Reads)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	// File store materialises a fresh cell per load; the oriented vectors
	// must survive the disk round-trip bit-exactly.
	s := storeSchema(t)
	st, err := NewFile(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	ts := mkTuples(t, s, 2)
	k := ref(t, st, ts[0], 0b01, 0b01)
	st.Save(k, cellOf(st.Width(), ts...))
	got := st.Load(k)
	if got.Len() != 2 {
		t.Fatalf("loaded %d rows, want 2", got.Len())
	}
	for i, tu := range ts {
		if got.ID(i) != tu.ID {
			t.Errorf("row %d id = %d, want %d", i, got.ID(i), tu.ID)
		}
		for j, v := range tu.Oriented {
			if got.Row(i)[j] != v {
				t.Errorf("row %d vec[%d] = %v, want %v", i, j, got.Row(i)[j], v)
			}
		}
	}
	if !got.RemoveID(ts[0].ID) {
		t.Error("RemoveID must match file-loaded rows")
	}
}

func TestMemoryWalk(t *testing.T) {
	s := storeSchema(t)
	m := NewMemory(2)
	ts := mkTuples(t, s, 4)
	m.Save(ref(t, m, ts[0], 0b01, 0b01), cellOf(2, ts[:2]...))
	m.Save(ref(t, m, ts[0], 0b10, 0b10), cellOf(2, ts[2:]...))
	cells, entries := 0, 0
	m.Walk(func(k CellKey, c Cell) {
		cells++
		entries += c.Len()
		if want := lattice.KeyFromTuple(ts[0], 0b01); c.ContainsID(0) && k.C != want {
			t.Errorf("Walk decoded key %x, want %x", string(k.C), string(want))
		}
	})
	if cells != 2 || entries != 4 {
		t.Errorf("Walk saw %d cells / %d entries, want 2 / 4", cells, entries)
	}
}

func TestMemoryLogicalKeyAccess(t *testing.T) {
	s := storeSchema(t)
	m := NewMemory(2)
	ts := mkTuples(t, s, 2)
	k := CellKey{C: lattice.KeyFromTuple(ts[0], 0b11), M: 0b01}
	if got := m.LoadKey(k); got.Len() != 0 {
		t.Fatalf("LoadKey of absent cell = %v", got)
	}
	if m.Interner().Len() != 0 {
		t.Fatal("LoadKey of absent cell grew the intern table")
	}
	m.SaveKey(k, cellOf(2, ts...))
	if got := m.LoadKey(k); got.Len() != 2 || !got.ContainsID(ts[1].ID) {
		t.Errorf("LoadKey after SaveKey = %v", got)
	}
}

func TestCellRemoval(t *testing.T) {
	s := storeSchema(t)
	ts := mkTuples(t, s, 3)
	c := cellOf(2, ts...)
	if !c.RemoveID(ts[1].ID) {
		t.Fatal("RemoveID missed present tuple")
	}
	if c.Len() != 2 || c.ID(0) != ts[0].ID || c.ID(1) != ts[2].ID {
		t.Errorf("RemoveID did not preserve order: %v", c.IDList())
	}
	if c.Row(1)[0] != ts[2].Oriented[0] {
		t.Errorf("RemoveID left stale vector: %v", c.Rows)
	}
	if c.RemoveID(ts[1].ID) {
		t.Error("RemoveID found an absent tuple")
	}
	if c.ContainsID(ts[1].ID) {
		t.Error("ContainsID found removed tuple")
	}
	if !c.ContainsID(ts[2].ID) {
		t.Error("ContainsID missed present tuple")
	}
	if c.RemoveID(999) {
		t.Error("RemoveID found an absent ID")
	}
}

// TestCellRemoveSorted pins the batched removal path (the dominance
// kernel removes every row a candidate dominates in one compaction pass)
// against repeated RemoveAt, which is its semantic definition.
func TestCellRemoveSorted(t *testing.T) {
	mk := func(n int) Cell {
		c := Cell{W: 2}
		for i := 0; i < n; i++ {
			c.Append(int64(100+i), []float64{float64(i), float64(-i)})
		}
		return c
	}
	cases := [][]int{
		nil,
		{0},
		{7},
		{0, 1, 2},
		{5, 6, 7},
		{0, 3, 6},
		{1, 2, 5, 6},
		{0, 1, 2, 3, 4, 5, 6, 7},
	}
	for _, idxs := range cases {
		got, want := mk(8), mk(8)
		got.RemoveSorted(idxs)
		for i := len(idxs) - 1; i >= 0; i-- {
			want.RemoveAt(idxs[i])
		}
		if got.Len() != want.Len() {
			t.Errorf("RemoveSorted(%v): Len %d, want %d", idxs, got.Len(), want.Len())
			continue
		}
		for i := 0; i < want.Len(); i++ {
			if got.ID(i) != want.ID(i) {
				t.Errorf("RemoveSorted(%v): ID(%d) = %d, want %d", idxs, i, got.ID(i), want.ID(i))
			}
			for j, v := range want.Row(i) {
				if got.Row(i)[j] != v {
					t.Errorf("RemoveSorted(%v): Row(%d)[%d] = %g, want %g", idxs, i, j, got.Row(i)[j], v)
				}
			}
		}
	}
}

func TestInterner(t *testing.T) {
	s := storeSchema(t)
	ts := mkTuples(t, s, 3)
	in := NewInterner()
	a := in.InternTuple(ts[0], 0b01)
	b := in.InternTuple(ts[0], 0b11)
	if a == b {
		t.Fatal("distinct constraints interned to the same id")
	}
	// ts[0] and ts[2] share dims (i%3, i%2 collide at 0 vs 2? no: 2%3=2);
	// intern the same logical key via both paths instead.
	if got := in.Intern(lattice.KeyFromTuple(ts[0], 0b01)); got != a {
		t.Errorf("Intern(key) = %d, want %d", got, a)
	}
	if got, ok := in.Lookup(lattice.KeyFromTuple(ts[0], 0b11)); !ok || got != b {
		t.Errorf("Lookup = %d/%v, want %d/true", got, ok, b)
	}
	if _, ok := in.Lookup(lattice.Key("\xff\xff\xff\xff\xff\xff\xff\xff")); ok {
		t.Error("Lookup invented an id")
	}
	if in.Key(a) != lattice.KeyFromTuple(ts[0], 0b01) {
		t.Error("Key did not decode id back to its constraint key")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}

func TestCellKeyString(t *testing.T) {
	k := CellKey{C: lattice.Key("\x01\x00\x00\x00"), M: 5}
	if got := k.String(); got == "" {
		t.Error("empty String()")
	}
}
