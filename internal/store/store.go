package store

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// ConstraintID is a dense interned identifier for one constraint key. All
// stores hand out ids through an Interner, so equal constraints map to
// equal ids for the lifetime of the store and cells can be addressed by
// integer instead of by variable-length key string.
type ConstraintID = uint32

// CellRef addresses one µ(C,M) cell as a packed integer: the interned
// constraint id in the high 32 bits, the measure-subspace mask in the low
// 32. Map lookups on a CellRef hash eight bytes instead of a 4·d-byte
// string, which is what keeps the discovery hot loop allocation-free.
type CellRef = uint64

// Ref packs a constraint id and a subspace mask into a CellRef. The mask
// must be a subset of the store's measure space (mask < 2^Width) — the
// in-memory stores index subspaces densely on that invariant.
func Ref(c ConstraintID, m subspace.Mask) CellRef {
	return CellRef(c)<<32 | CellRef(m)
}

// RefParts unpacks a CellRef.
func RefParts(r CellRef) (ConstraintID, subspace.Mask) {
	return ConstraintID(r >> 32), subspace.Mask(r)
}

// CellKey is the logical (decoded) identity of a cell: the canonical
// constraint key plus the subspace mask. It appears on the snapshot/Walk
// boundary — the persisted form stays layout-independent — while the hot
// path speaks CellRef.
type CellKey struct {
	C lattice.Key
	M subspace.Mask
}

func (k CellKey) String() string {
	return fmt.Sprintf("µ(%x, %b)", string(k.C), k.M)
}

// Interner hash-conses constraint keys to dense ids. The forward map is
// keyed by the raw key bytes; the reverse slice decodes ids back to keys
// for snapshots, file naming and diagnostics. It is safe for concurrent
// use (the parallel driver's workers intern through one shared table); the
// steady-state path takes only a read lock and performs no allocation.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]ConstraintID
	keys []lattice.Key
}

// NewInterner creates an empty intern table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]ConstraintID)}
}

// maxKeyScratch covers 4 bytes per dimension for the deepest lattice the
// algorithms accept (core.MaxLatticeDims = 16); wider schemas fall back to
// a heap-allocated scratch buffer inside append.
const maxKeyScratch = 64

// InternTuple returns the id of the constraint of C^t selected by mask,
// building the key in stack scratch so a cell visit allocates nothing
// once the constraint has been seen.
func (in *Interner) InternTuple(t *relation.Tuple, mask lattice.Mask) ConstraintID {
	var scratch [maxKeyScratch]byte
	buf := lattice.AppendKeyFromTuple(scratch[:0], t, mask)
	in.mu.RLock()
	id, ok := in.ids[string(buf)]
	in.mu.RUnlock()
	if ok {
		return id
	}
	return in.internSlow(buf)
}

// Intern returns (assigning if needed) the id of a canonical key.
func (in *Interner) Intern(k lattice.Key) ConstraintID {
	in.mu.RLock()
	id, ok := in.ids[string(k)]
	in.mu.RUnlock()
	if ok {
		return id
	}
	return in.internSlow([]byte(k))
}

// Lookup returns the id of k without assigning one; ok is false when the
// constraint has never been interned (hence no cell can exist for it).
// Query paths (SkylineSize) use this so probing absent constraints does
// not grow the table.
func (in *Interner) Lookup(k lattice.Key) (ConstraintID, bool) {
	in.mu.RLock()
	id, ok := in.ids[string(k)]
	in.mu.RUnlock()
	return id, ok
}

func (in *Interner) internSlow(buf []byte) ConstraintID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[string(buf)]; ok { // raced another interner
		return id
	}
	k := lattice.Key(buf) // the one allocation: first sight of a constraint
	id := ConstraintID(len(in.keys))
	in.keys = append(in.keys, k)
	in.ids[string(k)] = id
	return id
}

// Key decodes an id back to its canonical constraint key.
func (in *Interner) Key(id ConstraintID) lattice.Key {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.keys[id]
}

// Len returns the number of interned constraints.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.keys)
}

// Cell is one µ(C,M) cell as a single contiguous row store: each member
// tuple occupies a (1+W)-wide row in Rows — its id (stored bit-exactly as
// a float64 payload, never operated on arithmetically) followed by its
// W-wide oriented measure vector (larger always better). The skyline scan
// streams over one flat float64 array — contiguous cache lines — instead
// of chasing tuple pointers, and a cell's whole lifetime costs a single
// heap object. Dimension values are NOT stored; algorithms resolve them
// through their tuple registry on the rare paths that need them.
type Cell struct {
	// W is the measure-vector width (the schema's measure count); the row
	// stride is W+1.
	W int
	// Rows holds the packed member rows: [idBits, v_0, …, v_{W-1}]*.
	Rows []float64
}

// Stride returns the per-member row width, 1+W.
func (c Cell) Stride() int { return c.W + 1 }

// Len returns the number of member tuples.
func (c Cell) Len() int {
	if c.W == 0 {
		return 0
	}
	return len(c.Rows) / (c.W + 1)
}

// ID returns the i-th member's tuple id.
func (c Cell) ID(i int) int64 {
	return int64(math.Float64bits(c.Rows[i*(c.W+1)]))
}

// Row returns the i-th member's oriented vector.
func (c Cell) Row(i int) []float64 {
	s := i*(c.W+1) + 1
	return c.Rows[s : s+c.W]
}

// Append adds a member; vec must be W wide. A first append allocates
// exactly one row (measured cell populations average ~1 member); later
// appends double, so a growing cell's lifetime costs O(log n) heap
// objects instead of one per insertion.
func (c *Cell) Append(id int64, vec []float64) {
	need := 1 + c.W
	if cap(c.Rows)-len(c.Rows) < need {
		newCap := 2 * cap(c.Rows)
		if newCap < len(c.Rows)+need {
			newCap = len(c.Rows) + need
		}
		grown := make([]float64, len(c.Rows), newCap)
		copy(grown, c.Rows)
		c.Rows = grown
	}
	c.Rows = append(c.Rows, math.Float64frombits(uint64(id)))
	c.Rows = append(c.Rows, vec...)
}

// RemoveAt deletes the i-th member preserving order — the single removal
// path every algorithm shares.
func (c *Cell) RemoveAt(i int) {
	stride := c.W + 1
	copy(c.Rows[i*stride:], c.Rows[(i+1)*stride:])
	c.Rows = c.Rows[:len(c.Rows)-stride]
}

// RemoveSorted deletes the members at the given ascending indices in one
// order-preserving compaction pass. The batched dominance scan collects
// every row the candidate dominates and removes them together: one O(n)
// memmove instead of one per removal (RemoveAt restarts its copy at every
// call, so r removals cost O(r·n) there).
func (c *Cell) RemoveSorted(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	stride := c.W + 1
	n := c.Len()
	dst, k := idxs[0], 0
	for i := idxs[0]; i < n; i++ {
		if k < len(idxs) && idxs[k] == i {
			k++
			continue
		}
		copy(c.Rows[dst*stride:(dst+1)*stride], c.Rows[i*stride:(i+1)*stride])
		dst++
	}
	c.Rows = c.Rows[:dst*stride]
}

// RemoveID deletes the member with the given tuple id (order-preserving),
// reporting whether a removal happened.
func (c *Cell) RemoveID(id int64) bool {
	for i, n := 0, c.Len(); i < n; i++ {
		if c.ID(i) == id {
			c.RemoveAt(i)
			return true
		}
	}
	return false
}

// ContainsID reports whether the cell holds the tuple.
func (c Cell) ContainsID(id int64) bool {
	for i, n := 0, c.Len(); i < n; i++ {
		if c.ID(i) == id {
			return true
		}
	}
	return false
}

// IDList returns the member tuple ids in insertion order (snapshot and
// test support; not a hot path).
func (c Cell) IDList() []int64 {
	out := make([]int64, c.Len())
	for i := range out {
		out[i] = c.ID(i)
	}
	return out
}

// Clone returns a deep copy (snapshot/test support; stores hand out live
// slices).
func (c Cell) Clone() Cell {
	return Cell{W: c.W, Rows: append([]float64(nil), c.Rows...)}
}

// Stats reports store-level counters used by the paper's Figures 10 and 12:
// the number of tuple entries currently stored (Fig 10b) and file I/O
// operation counts (the cost driver of §VI-C).
type Stats struct {
	// StoredTuples is the current total number of tuple entries across all
	// cells (a tuple stored in k cells counts k times).
	StoredTuples int64
	// Cells is the current number of non-empty cells.
	Cells int64
	// Reads counts cell loads that had to fetch a non-empty cell
	// (file reads for the file store).
	Reads int64
	// Writes counts cell saves that persisted a change (file writes).
	Writes int64
}

// Store is the µ(C,M) abstraction. Cells are addressed by CellRef; the
// constraint half of a ref comes from the store's Interner, which is part
// of the store because id assignment must be coherent with cell
// addressing for the store's whole lifetime.
type Store interface {
	// Width returns the cells' vector width (the schema's measure count).
	Width() int
	// Interner returns the store's constraint intern table.
	Interner() *Interner
	// Load returns cell ref. The returned cell must be treated as owned by
	// the caller until the matching Save; the caller may mutate it in
	// place (append/remove) and must call Save with the final value if it
	// changed anything.
	Load(ref CellRef) Cell
	// Save persists the (possibly mutated) cell value.
	Save(ref CellRef, c Cell)
	// Stats returns a snapshot of the store counters.
	Stats() Stats
	// Close releases resources (files); the store must not be used after.
	Close() error
}

// denseMaxWidth bounds the measure width for which Memory indexes cells
// by dense per-constraint subspace arrays (2^width int32 slots per active
// constraint — 64 KiB at width 14). Wider schemas fall back to a map.
const denseMaxWidth = 14

// Memory is the in-memory store. Cells live in append-only pages; the
// (constraint id, subspace mask) → cell resolution is a dense
// two-dimensional array lookup — slots[cid][mask] — with no hashing at
// all: the interner's ids are dense by construction and subspace masks
// are small, so the index is a few MiB even at millions of cells and
// stays cache-resident where a cell map would thrash. Saving a mutated
// existing cell writes its slot directly. Schemas wider than
// denseMaxWidth measures use a map index instead (the dense form would
// cost 4·2^m bytes per constraint).
type Memory struct {
	in    *Interner
	width int

	slots [][]int32         // dense index: per-cid mask → slab slot (-1 absent)
	idx   map[CellRef]int32 // fallback index when width > denseMaxWidth

	pages [][]Cell // fixed slabSize pages; slot i = pages[i>>slabShift][i&slabMask]
	next  int32    // first never-used slot
	free  []int32  // slots left behind by emptied cells

	stats Stats

	// observer, when set, is called from Save at every cell lifecycle
	// transition: created=true when a cell comes into existence,
	// created=false when an emptied cell is evicted. In-place updates of a
	// live cell do not fire — the cell's (key, mask) identity is unchanged,
	// which is all the incremental fact index tracks.
	observer func(k CellKey, created bool)
}

// slabShift sizes Memory's cell pages: 4096 cells (~130 KiB) per page.
const (
	slabShift = 12
	slabSize  = 1 << slabShift
	slabMask  = slabSize - 1
)

// NewMemory creates an empty in-memory store for vectors of the given
// width (the schema's measure count).
func NewMemory(width int) *Memory {
	return newMemoryShared(NewInterner(), width)
}

// newMemoryShared creates a Memory over an externally shared interner
// (the sharded store's stripes must agree on ids).
func newMemoryShared(in *Interner, width int) *Memory {
	m := &Memory{in: in, width: width}
	if width > denseMaxWidth {
		m.idx = make(map[CellRef]int32)
	}
	return m
}

// SetObserver installs the cell lifecycle callback (see the observer
// field). The observer runs synchronously inside Save under whatever
// lock the caller holds; it must not call back into the store.
func (m *Memory) SetObserver(fn func(k CellKey, created bool)) {
	m.observer = fn
}

// Width implements Store.
func (m *Memory) Width() int { return m.width }

// Interner implements Store.
func (m *Memory) Interner() *Interner { return m.in }

func (m *Memory) cellAt(i int32) *Cell {
	return &m.pages[i>>slabShift][i&slabMask]
}

// lookup resolves a ref to its slab slot, -1 when absent.
func (m *Memory) lookup(ref CellRef) int32 {
	if m.idx != nil {
		if i, ok := m.idx[ref]; ok {
			return i
		}
		return -1
	}
	cid, mask := RefParts(ref)
	if int(cid) >= len(m.slots) {
		return -1
	}
	s := m.slots[cid]
	if s == nil {
		return -1
	}
	return s[mask]
}

// setSlot binds (or, with -1, unbinds) a ref in the index.
func (m *Memory) setSlot(ref CellRef, i int32) {
	if m.idx != nil {
		if i < 0 {
			delete(m.idx, ref)
		} else {
			m.idx[ref] = i
		}
		return
	}
	cid, mask := RefParts(ref)
	for int(cid) >= len(m.slots) {
		m.slots = append(m.slots, nil)
	}
	s := m.slots[cid]
	if s == nil {
		if i < 0 {
			return
		}
		s = make([]int32, 1<<uint(m.width))
		for j := range s {
			s[j] = -1
		}
		m.slots[cid] = s
	}
	s[mask] = i
}

// Load implements Store.
func (m *Memory) Load(ref CellRef) Cell {
	i := m.lookup(ref)
	if i < 0 {
		return Cell{W: m.width}
	}
	m.stats.Reads++ // the index never holds empty cells
	return *m.cellAt(i)
}

// Peek returns the cell at ref without bumping the Reads counter. Query
// paths use it: they run under a shared (read) lock where a counter write
// would race, and a follower answering reads must not drift its store
// counters away from the leader's (snapshot byte-identity).
func (m *Memory) Peek(ref CellRef) Cell {
	i := m.lookup(ref)
	if i < 0 {
		return Cell{W: m.width}
	}
	return *m.cellAt(i)
}

// Save implements Store.
func (m *Memory) Save(ref CellRef, c Cell) {
	i := m.lookup(ref)
	switch {
	case len(c.Rows) == 0 && i >= 0:
		s := m.cellAt(i)
		m.stats.StoredTuples -= int64(s.Len())
		*s = Cell{}
		m.free = append(m.free, i)
		m.setSlot(ref, -1)
		m.stats.Cells--
		if m.observer != nil {
			cid, mask := RefParts(ref)
			m.observer(CellKey{C: m.in.Key(cid), M: mask}, false)
		}
	case len(c.Rows) > 0 && i < 0:
		if n := len(m.free); n > 0 {
			i = m.free[n-1]
			m.free = m.free[:n-1]
		} else {
			if int(m.next)>>slabShift == len(m.pages) {
				m.pages = append(m.pages, make([]Cell, slabSize))
			}
			i = m.next
			m.next++
		}
		*m.cellAt(i) = c
		m.setSlot(ref, i)
		m.stats.StoredTuples += int64(c.Len())
		m.stats.Cells++
		if m.observer != nil {
			cid, mask := RefParts(ref)
			m.observer(CellKey{C: m.in.Key(cid), M: mask}, true)
		}
	case len(c.Rows) > 0:
		s := m.cellAt(i)
		m.stats.StoredTuples += int64(c.Len() - s.Len())
		*s = c
	default:
		return // empty → empty: nothing happened
	}
	m.stats.Writes++
}

// LoadKey is Load addressed by logical key (snapshot restore, invariant
// checkers); absent constraints read as empty without growing the intern
// table.
func (m *Memory) LoadKey(k CellKey) Cell {
	id, ok := m.in.Lookup(k.C)
	if !ok {
		return Cell{W: m.width}
	}
	return m.Load(Ref(id, k.M))
}

// SaveKey is Save addressed by logical key (snapshot restore).
func (m *Memory) SaveKey(k CellKey, c Cell) {
	m.Save(Ref(m.in.Intern(k.C), k.M), c)
}

// Stats implements Store.
func (m *Memory) Stats() Stats { return m.stats }

// RestoreStats overwrites the counters after a snapshot restore has
// replayed the cells, so the store reports the cumulative I/O of the
// original run rather than the replay.
func (m *Memory) RestoreStats(s Stats) { m.stats = s }

// Close implements Store.
func (m *Memory) Close() error { return nil }

// Walk visits every non-empty cell in logical-key form; used by snapshot
// encoding and invariant checkers. The cell is the live value — callers
// must not mutate it.
func (m *Memory) Walk(fn func(CellKey, Cell)) {
	if m.idx != nil {
		for ref, i := range m.idx {
			id, mask := RefParts(ref)
			fn(CellKey{C: m.in.Key(id), M: mask}, *m.cellAt(i))
		}
		return
	}
	for cid, s := range m.slots {
		if s == nil {
			continue
		}
		var key lattice.Key
		for mask, i := range s {
			if i < 0 {
				continue
			}
			if key == "" {
				key = m.in.Key(ConstraintID(cid))
			}
			fn(CellKey{C: key, M: subspace.Mask(mask)}, *m.cellAt(i))
		}
	}
}

var _ Store = (*Memory)(nil)
