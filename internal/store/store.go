package store

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// CellKey identifies one µ(C,M) cell.
type CellKey struct {
	C lattice.Key
	M subspace.Mask
}

// Stats reports store-level counters used by the paper's Figures 10 and 12:
// the number of tuple entries currently stored (Fig 10b) and file I/O
// operation counts (the cost driver of §VI-C).
type Stats struct {
	// StoredTuples is the current total number of tuple entries across all
	// cells (a tuple stored in k cells counts k times).
	StoredTuples int64
	// Cells is the current number of non-empty cells.
	Cells int64
	// Reads counts cell loads that had to fetch a non-empty cell
	// (file reads for the file store).
	Reads int64
	// Writes counts cell saves that persisted a change (file writes).
	Writes int64
}

// Store is the µ(C,M) abstraction.
type Store interface {
	// Load returns the tuples of cell k. The returned slice must be
	// treated as owned by the caller until the matching Save; the caller
	// may mutate it in place (append/remove) and must call Save with the
	// final value if it changed anything.
	Load(k CellKey) []*relation.Tuple
	// Save persists the (possibly mutated) cell value.
	Save(k CellKey, ts []*relation.Tuple)
	// Stats returns a snapshot of the store counters.
	Stats() Stats
	// Close releases resources (files); the store must not be used after.
	Close() error
}

// Memory is the in-memory store: a map from cell key to slice.
type Memory struct {
	cells map[CellKey][]*relation.Tuple
	stats Stats
}

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{cells: make(map[CellKey][]*relation.Tuple)}
}

// Load implements Store.
func (m *Memory) Load(k CellKey) []*relation.Tuple {
	ts := m.cells[k]
	if len(ts) > 0 {
		m.stats.Reads++
	}
	return ts
}

// Save implements Store.
func (m *Memory) Save(k CellKey, ts []*relation.Tuple) {
	old, existed := m.cells[k]
	m.stats.StoredTuples += int64(len(ts) - len(old))
	switch {
	case len(ts) == 0 && existed:
		delete(m.cells, k)
		m.stats.Cells--
	case len(ts) > 0 && !existed:
		m.cells[k] = ts
		m.stats.Cells++
	case len(ts) > 0:
		m.cells[k] = ts
	default:
		return // empty → empty: nothing happened
	}
	m.stats.Writes++
}

// Stats implements Store.
func (m *Memory) Stats() Stats { return m.stats }

// RestoreStats overwrites the counters after a snapshot restore has
// replayed the cells, so the store reports the cumulative I/O of the
// original run rather than the replay.
func (m *Memory) RestoreStats(s Stats) { m.stats = s }

// Close implements Store.
func (m *Memory) Close() error { return nil }

// Walk visits every non-empty cell; used by invariant checkers in tests.
func (m *Memory) Walk(fn func(CellKey, []*relation.Tuple)) {
	for k, ts := range m.cells {
		fn(k, ts)
	}
}

// Remove deletes tuple t (by identity) from the slice, returning the
// shortened slice and whether a removal happened. Order of survivors is
// preserved. It is the one slice helper every algorithm needs.
func Remove(ts []*relation.Tuple, t *relation.Tuple) ([]*relation.Tuple, bool) {
	for i, u := range ts {
		if u == t {
			copy(ts[i:], ts[i+1:])
			ts[len(ts)-1] = nil
			return ts[:len(ts)-1], true
		}
	}
	return ts, false
}

// RemoveByID deletes the tuple with the given ID; the file store
// materialises fresh Tuple values on every load, so identity comparison
// does not work there and algorithms running over a file store match by ID.
func RemoveByID(ts []*relation.Tuple, id int64) ([]*relation.Tuple, bool) {
	for i, u := range ts {
		if u.ID == id {
			copy(ts[i:], ts[i+1:])
			ts[len(ts)-1] = nil
			return ts[:len(ts)-1], true
		}
	}
	return ts, false
}

// ContainsID reports whether the cell holds a tuple with the given ID.
func ContainsID(ts []*relation.Tuple, id int64) bool {
	for _, u := range ts {
		if u.ID == id {
			return true
		}
	}
	return false
}

func (k CellKey) String() string {
	return fmt.Sprintf("µ(%x, %b)", string(k.C), k.M)
}
