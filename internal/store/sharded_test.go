package store

import (
	"repro/internal/relation"
	"sync"
	"testing"
)

func TestShardedStore(t *testing.T) {
	testStoreBasics(t, NewSharded(4, 2))
}

func TestShardedStripeRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{-1, DefaultStripes}, {0, DefaultStripes}, {1, 1}, {2, 2}, {5, 8}, {32, 32},
	} {
		s := NewSharded(tc.n, 2)
		if len(s.stripes) != tc.want {
			t.Errorf("NewSharded(%d): %d stripes, want %d", tc.n, len(s.stripes), tc.want)
		}
	}
}

func TestShardedWalk(t *testing.T) {
	s := storeSchema(t)
	st := NewSharded(8, 2)
	ts := mkTuples(t, s, 4)
	st.Save(ref(t, st, ts[0], 0b01, 0b01), cellOf(2, ts[:2]...))
	st.Save(ref(t, st, ts[0], 0b10, 0b10), cellOf(2, ts[2:]...))
	cells, entries := 0, 0
	st.Walk(func(k CellKey, c Cell) {
		cells++
		entries += c.Len()
	})
	if cells != 2 || entries != 4 {
		t.Errorf("Walk saw %d cells / %d entries, want 2 / 4", cells, entries)
	}
}

// TestShardedConcurrent mirrors how the parallel discovery driver uses the
// store: goroutines share one Sharded instance (and its interner) but own
// disjoint cells — here each worker interns its own constraints, with some
// interleaved interning of shared ones to race the intern table on
// purpose. Under -race this validates that the index, the intern table
// and the Stats counters are properly guarded.
func TestShardedConcurrent(t *testing.T) {
	s := storeSchema(t)
	st := NewSharded(4, 2)
	ts := mkTuples(t, s, 8)
	const workers = 8
	const cellsPer = 64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cellsPer; i++ {
				// A constraint unique to this (worker, i) pair keeps the
				// cells disjoint; interning the shared tuples' constraints
				// alongside races the intern table coherently.
				own, err := relation.NewTuple(s, int64(w*cellsPer+i),
					[]int32{int32(w), int32(i)}, []float64{0, 0})
				if err != nil {
					t.Error(err)
					return
				}
				st.Interner().InternTuple(ts[i%len(ts)], 0b11)
				k := Ref(st.Interner().InternTuple(own, 0b11), 0b11)
				st.Save(k, cellOf(2, ts[:1+i%3]...))
				got := st.Load(k)
				got.RemoveID(ts[0].ID)
				st.Save(k, got)
			}
		}(w)
	}
	wg.Wait()
	stats := st.Stats()
	wantCells := int64(0)
	wantEntries := int64(0)
	for i := 0; i < cellsPer; i++ {
		n := int64(i % 3) // 1+i%3 saved, first removed
		if n > 0 {
			wantCells++
			wantEntries += n
		}
	}
	wantCells *= workers
	wantEntries *= workers
	if stats.Cells != wantCells || stats.StoredTuples != wantEntries {
		t.Errorf("Stats = %+v, want %d cells / %d entries", stats, wantCells, wantEntries)
	}
	if stats.Reads == 0 || stats.Writes == 0 {
		t.Errorf("Stats counted no I/O: %+v", stats)
	}
}
