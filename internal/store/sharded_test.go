package store

import (
	"sync"
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
)

func TestShardedStore(t *testing.T) {
	testStoreBasics(t, NewSharded(4))
}

func TestShardedStripeRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{-1, DefaultStripes}, {0, DefaultStripes}, {1, 1}, {2, 2}, {5, 8}, {32, 32},
	} {
		s := NewSharded(tc.n)
		if len(s.stripes) != tc.want {
			t.Errorf("NewSharded(%d): %d stripes, want %d", tc.n, len(s.stripes), tc.want)
		}
	}
}

func TestShardedWalk(t *testing.T) {
	s := storeSchema(t)
	st := NewSharded(8)
	ts := mkTuples(t, s, 4)
	st.Save(key(t, s, ts[0], 0b01, 0b01), ts[:2])
	st.Save(key(t, s, ts[0], 0b10, 0b10), ts[2:])
	cells, entries := 0, 0
	st.Walk(func(k CellKey, ts []*relation.Tuple) {
		cells++
		entries += len(ts)
	})
	if cells != 2 || entries != 4 {
		t.Errorf("Walk saw %d cells / %d entries, want 2 / 4", cells, entries)
	}
}

// TestShardedConcurrent mirrors how the parallel discovery driver uses the
// store: goroutines share one Sharded instance but own disjoint subspace
// masks, so no two ever touch the same cell. Under -race this validates
// that the map and the Stats counters are properly guarded.
func TestShardedConcurrent(t *testing.T) {
	s := storeSchema(t)
	st := NewSharded(4)
	ts := mkTuples(t, s, 8)
	const workers = 8
	const cellsPer = 64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sub := uint32(w + 1) // disjoint M per worker
			for i := 0; i < cellsPer; i++ {
				k := CellKey{C: lattice.KeyFromTuple(ts[i%len(ts)], 0b11), M: sub<<8 | uint32(i)}
				st.Save(k, append([]*relation.Tuple(nil), ts[:1+i%3]...))
				got := st.Load(k)
				got, _ = RemoveByID(got, ts[0].ID)
				st.Save(k, got)
			}
		}(w)
	}
	wg.Wait()
	stats := st.Stats()
	wantCells := int64(0)
	wantEntries := int64(0)
	for i := 0; i < cellsPer; i++ {
		n := int64(i % 3) // 1+i%3 saved, first removed
		if n > 0 {
			wantCells++
			wantEntries += n
		}
	}
	wantCells *= workers
	wantEntries *= workers
	if stats.Cells != wantCells || stats.StoredTuples != wantEntries {
		t.Errorf("Stats = %+v, want %d cells / %d entries", stats, wantCells, wantEntries)
	}
	if stats.Reads == 0 || stats.Writes == 0 {
		t.Errorf("Stats counted no I/O: %+v", stats)
	}
}
