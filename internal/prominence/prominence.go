// Package prominence implements §VII of Sultana et al., ICDE 2014: ranking
// the situational facts S_t of an arriving tuple by the prominence measure
//
//	prominence(C, M) = |σ_C(R)| / |λ_M(σ_C(R))|
//
// (context cardinality over contextual-skyline cardinality; larger ratios
// mean rarer, more newsworthy facts), and selecting the PROMINENT facts:
// those attaining the highest prominence among S_t, provided that value
// reaches a threshold τ. Because a context must hold at least τ tuples to
// yield prominence ≥ τ, prominent facts are intrinsically rare.
package prominence

import (
	"sort"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/subspace"
)

// ScoredFact is a fact with its prominence value and the two cardinalities
// it derives from.
type ScoredFact struct {
	core.Fact
	// ContextSize is |σ_C(R)| including the arriving tuple.
	ContextSize int64
	// SkylineSize is |λ_M(σ_C(R))| including the arriving tuple.
	SkylineSize int
	// Prominence is ContextSize / SkylineSize.
	Prominence float64
}

// ContextSizer supplies |σ_C(R)|; core.ContextCounter implements it.
type ContextSizer interface {
	ContextSize(c lattice.Constraint) int64
}

// Score computes the prominence of every fact and returns them sorted in
// descending prominence (ties broken by more bound attributes first, then
// smaller subspace, for stable and intuition-friendly output).
func Score(facts []core.Fact, ctx ContextSizer, sky core.SkylineSizer) []ScoredFact {
	out := make([]ScoredFact, 0, len(facts))
	for _, f := range facts {
		cs := ctx.ContextSize(f.Constraint)
		ss := sky.SkylineSize(f.Constraint, f.Subspace)
		sf := ScoredFact{Fact: f, ContextSize: cs, SkylineSize: ss}
		if ss > 0 {
			sf.Prominence = float64(cs) / float64(ss)
		}
		out = append(out, sf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prominence != out[j].Prominence {
			return out[i].Prominence > out[j].Prominence
		}
		bi, bj := out[i].Constraint.Bound(), out[j].Constraint.Bound()
		if bi != bj {
			return bi > bj
		}
		si, sj := subspace.Size(out[i].Subspace), subspace.Size(out[j].Subspace)
		if si != sj {
			return si < sj
		}
		if out[i].Subspace != out[j].Subspace {
			return out[i].Subspace < out[j].Subspace
		}
		return out[i].Constraint.Key() < out[j].Constraint.Key()
	})
	return out
}

// TopK returns the k highest-prominence facts (all of them if k ≤ 0 or
// k ≥ len). The input must come from Score (sorted).
func TopK(scored []ScoredFact, k int) []ScoredFact {
	if k <= 0 || k >= len(scored) {
		return scored
	}
	return scored[:k]
}

// Prominent returns the facts whose prominence equals the maximum among
// the input AND is ≥ tau — the paper's definition of the prominent facts
// pertinent to one arrival (ties make this a set). The input must come
// from Score (sorted descending).
func Prominent(scored []ScoredFact, tau float64) []ScoredFact {
	if len(scored) == 0 {
		return nil
	}
	best := scored[0].Prominence
	if best < tau {
		return nil
	}
	i := 0
	for i < len(scored) && scored[i].Prominence == best {
		i++
	}
	return scored[:i]
}
