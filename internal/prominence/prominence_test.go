package prominence

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// paperExample reproduces §VII's worked prominence computations on
// Table I: (month=Feb, {points,assists,rebounds}) has prominence 5/2 and
// (team=Celtics ∧ opp=Nets, {assists,rebounds}) has 3/2.
func TestPaperProminenceExample(t *testing.T) {
	s, err := relation.NewSchema("gamelog",
		[]relation.DimAttr{{Name: "player"}, {Name: "month"}, {Name: "season"}, {Name: "team"}, {Name: "opp_team"}},
		[]relation.MeasureAttr{
			{Name: "points", Direction: relation.LargerBetter},
			{Name: "assists", Direction: relation.LargerBetter},
			{Name: "rebounds", Direction: relation.LargerBetter},
		})
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	rows := []struct {
		d []string
		m []float64
	}{
		{[]string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, []float64{4, 12, 5}},
		{[]string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, []float64{24, 5, 15}},
		{[]string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, []float64{13, 13, 5}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2}},
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3}},
		{[]string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, []float64{27, 18, 8}},
		{[]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, []float64{12, 13, 5}},
	}
	alg, err := core.NewBottomUp(core.Config{Schema: s, MaxBound: -1, MaxMeasure: -1})
	if err != nil {
		t.Fatal(err)
	}
	cc := core.NewContextCounter(5, -1)
	var facts []core.Fact
	for _, r := range rows {
		tu, err := tb.Append(r.d, r.m)
		if err != nil {
			t.Fatal(err)
		}
		facts = alg.Process(tu)
		cc.Observe(tu)
	}
	scored := Score(facts, cc, alg)
	if len(scored) != 195 {
		t.Fatalf("t7 has %d scored facts", len(scored))
	}
	find := func(c lattice.Constraint, m subspace.Mask) *ScoredFact {
		for i := range scored {
			if scored[i].Subspace == m && scored[i].Constraint.Equal(c) {
				return &scored[i]
			}
		}
		return nil
	}
	W := lattice.Wildcard
	feb, _ := tb.Dict().Lookup(1, "Feb")
	celtics, _ := tb.Dict().Lookup(3, "Celtics")
	nets, _ := tb.Dict().Lookup(4, "Nets")

	f1 := find(lattice.Constraint{Vals: []int32{W, feb, W, W, W}}, 0b111)
	if f1 == nil {
		t.Fatal("(month=Feb, full) not among scored facts")
	}
	if f1.ContextSize != 5 || f1.SkylineSize != 2 || f1.Prominence != 2.5 {
		t.Errorf("(month=Feb, full): %d/%d = %g, want 5/2 = 2.5", f1.ContextSize, f1.SkylineSize, f1.Prominence)
	}
	f2 := find(lattice.Constraint{Vals: []int32{W, W, W, celtics, nets}}, 0b110)
	if f2 == nil {
		t.Fatal("(Celtics∧Nets, {assists,rebounds}) not among scored facts")
	}
	if f2.ContextSize != 3 || f2.SkylineSize != 2 || f2.Prominence != 1.5 {
		t.Errorf("(Celtics∧Nets, {a,r}): %d/%d = %g, want 3/2 = 1.5", f2.ContextSize, f2.SkylineSize, f2.Prominence)
	}

	// §VII claims the highest prominence among S_t7 is 3 — but Table I
	// itself refutes that: (month=Feb, {assists}) has a 5-tuple context in
	// which t7 alone (13 assists) is the skyline, i.e. prominence 5. The
	// paper's two worked examples do attain exactly 3, which we verify
	// below; the true maximum of 5 is recorded as a paper erratum in
	// EXPERIMENTS.md.
	if scored[0].Prominence != 5 {
		t.Errorf("max prominence = %g, want 5 (see erratum note)", scored[0].Prominence)
	}
	febAssists := find(lattice.Constraint{Vals: []int32{W, feb, W, W, W}}, 0b010)
	if febAssists == nil || febAssists.Prominence != 5 {
		t.Errorf("(month=Feb, {assists}) should have prominence 5, got %+v", febAssists)
	}
	wesley, _ := tb.Dict().Lookup(0, "Wesley")
	fw := find(lattice.Constraint{Vals: []int32{wesley, W, W, W, W}}, 0b100)
	if fw == nil || fw.Prominence != 3 {
		t.Errorf("(player=Wesley, {rebounds}) prominence = %+v, want 3", fw)
	}
	fc := find(lattice.Constraint{Vals: []int32{W, feb, W, celtics, W}}, 0b001)
	if fc == nil || fc.Prominence != 3 {
		t.Errorf("(month=Feb ∧ team=Celtics, {points}) prominence = %+v, want 3", fc)
	}
	// Prominent facts = the max-prominence group when it clears τ.
	prom := Prominent(scored, 3)
	if len(prom) == 0 {
		t.Fatal("no prominent facts at τ=3")
	}
	for _, f := range prom {
		if f.Prominence != 5 {
			t.Errorf("prominent fact with prominence %g ≠ max 5", f.Prominence)
		}
	}
	// With τ above the max, nothing is prominent.
	if got := Prominent(scored, 5.5); len(got) != 0 {
		t.Errorf("Prominent(τ=5.5) = %d facts, want 0", len(got))
	}
	// Ordering: descending prominence.
	for i := 1; i < len(scored); i++ {
		if scored[i].Prominence > scored[i-1].Prominence {
			t.Fatal("Score output not sorted by descending prominence")
		}
	}
	// TopK.
	if got := TopK(scored, 10); len(got) != 10 {
		t.Errorf("TopK(10) returned %d", len(got))
	}
	if got := TopK(scored, 0); len(got) != len(scored) {
		t.Errorf("TopK(0) should return all")
	}
	if got := TopK(scored, 9999); len(got) != len(scored) {
		t.Errorf("TopK(big) should return all")
	}
}

// TestSizerAgreement: the BottomUp and TopDown skyline-size computations
// must agree on random streams (they implement the same quantity over
// different storage schemes).
func TestSizerAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dims := []relation.DimAttr{{Name: "d1"}, {Name: "d2"}, {Name: "d3"}}
	measures := []relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}}
	s, err := relation.NewSchema("r", dims, measures)
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	bu, _ := core.NewBottomUp(core.Config{Schema: s, MaxBound: -1, MaxMeasure: -1})
	td, _ := core.NewTopDown(core.Config{Schema: s, MaxBound: -1, MaxMeasure: -1})
	cc := core.NewContextCounter(3, -1)
	for i := 0; i < 60; i++ {
		tu, err := tb.AppendEncoded(
			[]int32{int32(rng.Intn(2)), int32(rng.Intn(3)), int32(rng.Intn(2))},
			[]float64{float64(rng.Intn(5)), float64(rng.Intn(5))})
		if err != nil {
			t.Fatal(err)
		}
		facts := bu.Process(tu)
		td.Process(tu)
		cc.Observe(tu)
		sb := Score(facts, cc, bu)
		st := Score(facts, cc, td)
		for j := range sb {
			if sb[j].SkylineSize != st[j].SkylineSize || sb[j].Prominence != st[j].Prominence {
				t.Fatalf("tuple %d fact %d: BottomUp sizer %d vs TopDown sizer %d",
					i, j, sb[j].SkylineSize, st[j].SkylineSize)
			}
			if sb[j].SkylineSize < 1 {
				t.Fatalf("skyline size %d < 1 for an emitted fact", sb[j].SkylineSize)
			}
			if sb[j].ContextSize < int64(sb[j].SkylineSize) {
				t.Fatalf("context smaller than its skyline: %d < %d", sb[j].ContextSize, sb[j].SkylineSize)
			}
		}
	}
}

func TestEmptyScore(t *testing.T) {
	if got := Score(nil, core.NewContextCounter(2, -1), sizerFunc(func(lattice.Constraint, subspace.Mask) int { return 1 })); len(got) != 0 {
		t.Errorf("Score(nil) = %v", got)
	}
	if got := Prominent(nil, 1); got != nil {
		t.Errorf("Prominent(nil) = %v", got)
	}
}

type sizerFunc func(lattice.Constraint, subspace.Mask) int

func (f sizerFunc) SkylineSize(c lattice.Constraint, m subspace.Mask) int { return f(c, m) }
