// Package factindex is the incremental fact index: an ordered set of the
// µ(C,M) store's live cell coordinates, keyed exactly the way the query
// surface orders its results — raw constraint-key bytes first, subspace
// mask second. It is maintained in lockstep with the write path (one
// Insert when a cell comes into existence, one Delete when it is
// evicted), so a paginated read seeks to its cursor in O(log n) and walks
// forward O(page) instead of re-collecting and re-sorting every live cell
// per page.
//
// The structure is a plain in-memory B-tree. Keys are stored as Go
// strings sharing the store interner's backing bytes, so the index adds
// ~2 words per cell on top of the store itself. Concurrency follows the
// store's own discipline: mutations happen under the owning shard's
// write lock, iteration under its read lock — the tree itself takes no
// locks and must not be mutated while an Iter is live.
package factindex

import "sync/atomic"

// Entry is one indexed cell coordinate: the canonical constraint key
// bytes and the measure-subspace mask.
type Entry struct {
	Key  string
	Mask uint32
}

// less orders entries by (key bytes, mask) — byte-string lexicographic on
// the key, numeric on the mask. This must stay identical to the query
// path's result ordering: cursors are (key, mask) positions in this
// exact order.
func less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Mask < b.Mask
}

// B-tree node arity. 31 items per node keeps splits cheap (a split
// copies ~16 entries) while staying 3 levels deep past a million cells.
const (
	maxItems = 31
	minItems = maxItems / 2
)

type node struct {
	items    []Entry // ordered; len ≥ 1 except a just-emptied root
	children []*node // nil for leaves; len == len(items)+1 otherwise
}

// find returns the position of the first item ≥ e, and whether it equals e.
func (n *node) find(e Entry) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(n.items[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && !less(e, n.items[lo]) {
		return lo, true
	}
	return lo, false
}

// split divides the node at item i, returning the separator and the new
// right sibling.
func (n *node) split(i int) (Entry, *node) {
	mid := n.items[i]
	right := &node{items: append(make([]Entry, 0, maxItems), n.items[i+1:]...)}
	n.items = n.items[:i]
	if n.children != nil {
		right.children = append(make([]*node, 0, maxItems+1), n.children[i+1:]...)
		n.children = n.children[:i+1]
	}
	return mid, right
}

// insert adds e under n (known non-full), reporting whether the set grew
// (false = e was already present).
func (n *node) insert(e Entry) bool {
	i, found := n.find(e)
	if found {
		return false
	}
	if n.children == nil {
		n.items = append(n.items, Entry{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = e
		return true
	}
	if child := n.children[i]; len(child.items) == maxItems {
		mid, right := child.split(maxItems / 2)
		n.items = append(n.items, Entry{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = mid
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		switch {
		case less(mid, e):
			i++
		case !less(e, mid): // e == mid: the separator IS the entry
			return false
		}
	}
	return n.children[i].insert(e)
}

// delete removes e from the subtree under n, reporting whether it was
// present. The caller guarantees len(n.items) > minItems unless n is the
// root (the grow-before-descend discipline below maintains it).
func (n *node) delete(e Entry) bool {
	i, found := n.find(e)
	if n.children == nil {
		if !found {
			return false
		}
		copy(n.items[i:], n.items[i+1:])
		n.items = n.items[:len(n.items)-1]
		return true
	}
	if found {
		// e separates two subtrees: replace it with its in-order
		// predecessor (the max of the left subtree), removed from there.
		if len(n.children[i].items) <= minItems {
			n.grow(i)
			return n.delete(e) // indices shifted; retry from this node
		}
		n.items[i] = n.children[i].removeMax()
		return true
	}
	if len(n.children[i].items) <= minItems {
		n.grow(i)
		return n.delete(e)
	}
	return n.children[i].delete(e)
}

// removeMax extracts the subtree's largest entry.
func (n *node) removeMax() Entry {
	if n.children == nil {
		e := n.items[len(n.items)-1]
		n.items = n.items[:len(n.items)-1]
		return e
	}
	i := len(n.children) - 1
	if len(n.children[i].items) <= minItems {
		n.grow(i)
		return n.removeMax()
	}
	return n.children[i].removeMax()
}

// grow brings child i above minItems items, borrowing from a sibling
// through the separator when one has spare capacity, merging otherwise.
func (n *node) grow(i int) {
	if i > 0 && len(n.children[i-1].items) > minItems {
		// Rotate right: left sibling's max → separator → child's front.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, Entry{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if left.children != nil {
			mv := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = mv
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		// Rotate left: separator → child's back, right sibling's min up.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		copy(right.items, right.items[1:])
		right.items = right.items[:len(right.items)-1]
		if right.children != nil {
			child.children = append(child.children, right.children[0])
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
		}
		return
	}
	// Both siblings at minimum: merge child i with one around the separator.
	if i >= len(n.children)-1 {
		i--
	}
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	copy(n.items[i:], n.items[i+1:])
	n.items = n.items[:len(n.items)-1]
	copy(n.children[i+1:], n.children[i+2:])
	n.children = n.children[:len(n.children)-1]
}

// Index is the per-shard incremental fact index. See the package note for
// the locking discipline.
type Index struct {
	root *node
	len  int

	// inserts/deletes are cumulative maintenance counters, mutated under
	// the same (write) lock as the tree; seeks counts iterator seek
	// operations and is atomic because readers bump it under a shared lock.
	inserts uint64
	deletes uint64
	seeks   atomic.Uint64
}

// New returns an empty index.
func New() *Index { return &Index{} }

// Len returns the number of indexed cells.
func (ix *Index) Len() int { return ix.len }

// Stats is a monitoring snapshot of one index.
type Stats struct {
	// Entries is the live indexed cell count.
	Entries int
	// Inserts and Deletes count maintenance operations since creation
	// (snapshot restore and WAL replay rebuild through Inserts too).
	Inserts uint64
	Deletes uint64
	// Seeks counts iterator seek operations (cursor positioning and
	// predicate-pushdown skips).
	Seeks uint64
}

// Stats returns a monitoring snapshot. Call it under the same lock
// regime as Insert/Delete (the owning shard's lock, either side).
func (ix *Index) Stats() Stats {
	return Stats{Entries: ix.len, Inserts: ix.inserts, Deletes: ix.deletes, Seeks: ix.seeks.Load()}
}

// Insert adds the cell coordinate (idempotent).
func (ix *Index) Insert(key string, mask uint32) {
	ix.inserts++
	e := Entry{Key: key, Mask: mask}
	if ix.root == nil {
		ix.root = &node{items: append(make([]Entry, 0, maxItems), e)}
		ix.len = 1
		return
	}
	if len(ix.root.items) == maxItems {
		left := ix.root
		mid, right := left.split(maxItems / 2)
		ix.root = &node{items: []Entry{mid}, children: []*node{left, right}}
	}
	if ix.root.insert(e) {
		ix.len++
	}
}

// Delete removes the cell coordinate (idempotent).
func (ix *Index) Delete(key string, mask uint32) {
	ix.deletes++
	if ix.root == nil {
		return
	}
	if ix.root.delete(Entry{Key: key, Mask: mask}) {
		ix.len--
	}
	if len(ix.root.items) == 0 {
		if ix.root.children == nil {
			ix.root = nil
		} else {
			ix.root = ix.root.children[0]
		}
	}
}

// frame is one step of an iterator's root-to-position path: within n,
// subtree children[i] is (or was) being visited, and items[i] is the next
// item of n itself.
type frame struct {
	n *node
	i int
}

// Iter is a forward iterator. It holds a path into the tree, so the tree
// must not be mutated while the Iter is in use.
type Iter struct {
	ix    *Index
	stack []frame
}

// Seek returns an iterator positioned at the first entry ≥ (key, mask).
func (ix *Index) Seek(key string, mask uint32) *Iter {
	it := &Iter{ix: ix, stack: make([]frame, 0, 8)}
	it.SeekGE(key, mask)
	return it
}

// SeekGE repositions the iterator at the first entry ≥ (key, mask),
// invalid when none exists. Re-seeking an existing iterator reuses its
// path storage — the predicate-pushdown skip path.
func (it *Iter) SeekGE(key string, mask uint32) {
	it.ix.seeks.Add(1)
	it.stack = it.stack[:0]
	e := Entry{Key: key, Mask: mask}
	n := it.ix.root
	for n != nil {
		i, found := n.find(e)
		it.stack = append(it.stack, frame{n: n, i: i})
		if found || n.children == nil {
			break
		}
		n = n.children[i]
	}
	it.popToValid()
}

// popToValid discards exhausted frames until the top frame names a live
// item (the iterator's current entry) or the stack empties (iteration
// done).
func (it *Iter) popToValid() {
	for len(it.stack) > 0 {
		top := it.stack[len(it.stack)-1]
		if top.i < len(top.n.items) {
			return
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return len(it.stack) > 0 }

// Entry returns the current entry; the iterator must be Valid.
func (it *Iter) Entry() Entry {
	top := it.stack[len(it.stack)-1]
	return top.n.items[top.i]
}

// Next advances to the next entry in (key, mask) order.
func (it *Iter) Next() {
	if len(it.stack) == 0 {
		return
	}
	top := &it.stack[len(it.stack)-1]
	n := top.n
	top.i++
	if n.children != nil {
		// The subtree between the just-visited item and the next one comes
		// first: descend its left spine down to a leaf.
		for c := n.children[top.i]; ; c = c.children[0] {
			it.stack = append(it.stack, frame{n: c})
			if c.children == nil {
				return // a non-root node always holds ≥ minItems entries
			}
		}
	}
	it.popToValid()
}
