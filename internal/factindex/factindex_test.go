package factindex

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// refModel is the brute-force reference: a sorted slice with the same
// (key, mask) order as the tree.
type refModel []Entry

func (m refModel) search(e Entry) (int, bool) {
	i := sort.Search(len(m), func(i int) bool { return !less(m[i], e) })
	return i, i < len(m) && m[i] == e
}

func (m *refModel) insert(e Entry) {
	i, found := m.search(e)
	if found {
		return
	}
	*m = append(*m, Entry{})
	copy((*m)[i+1:], (*m)[i:])
	(*m)[i] = e
}

func (m *refModel) remove(e Entry) {
	i, found := m.search(e)
	if !found {
		return
	}
	copy((*m)[i:], (*m)[i+1:])
	*m = (*m)[:len(*m)-1]
}

// collect walks the whole tree through the iterator.
func collect(ix *Index) []Entry {
	var out []Entry
	for it := ix.Seek("", 0); it.Valid(); it.Next() {
		out = append(out, it.Entry())
	}
	return out
}

func randKey(rng *rand.Rand, dims int) string {
	b := make([]byte, 4*dims)
	for d := 0; d < dims; d++ {
		// Small value range to force key collisions (mask-order ties).
		binary.LittleEndian.PutUint32(b[4*d:], uint32(rng.Intn(6)))
	}
	return string(b)
}

func checkEqual(t *testing.T, ix *Index, want refModel) {
	t.Helper()
	got := collect(ix)
	if len(got) != len(want) {
		t.Fatalf("index has %d entries, reference has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: index %x/%d, reference %x/%d",
				i, got[i].Key, got[i].Mask, want[i].Key, want[i].Mask)
		}
	}
	if ix.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", ix.Len(), len(want))
	}
}

// TestIndexRandomized drives random interleaved inserts and deletes
// against the sorted-slice reference, checking full-order equality and
// invariants at every step boundary.
func TestIndexRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		var ref refModel
		for step := 0; step < 4000; step++ {
			e := Entry{Key: randKey(rng, 2), Mask: uint32(rng.Intn(8))}
			if rng.Intn(3) == 0 {
				ix.Delete(e.Key, e.Mask)
				ref.remove(e)
			} else {
				ix.Insert(e.Key, e.Mask)
				ref.insert(e)
			}
			if step%97 == 0 {
				checkEqual(t, ix, ref)
				checkInvariants(t, ix)
			}
		}
		checkEqual(t, ix, ref)
		checkInvariants(t, ix)
		// Drain completely: every delete path (rotations, merges, root
		// collapse) gets exercised on the way down.
		for len(ref) > 0 {
			e := ref[rng.Intn(len(ref))]
			ix.Delete(e.Key, e.Mask)
			ref.remove(e)
			if len(ref)%211 == 0 {
				checkEqual(t, ix, ref)
				checkInvariants(t, ix)
			}
		}
		if ix.Len() != 0 || ix.root != nil {
			t.Fatalf("seed %d: drained index not empty: len=%d root=%v", seed, ix.Len(), ix.root)
		}
	}
}

// checkInvariants verifies B-tree structural invariants: per-node item
// bounds, per-node ordering, child/item count relation, uniform leaf depth.
func checkInvariants(t *testing.T, ix *Index) {
	t.Helper()
	if ix.root == nil {
		return
	}
	leafDepth := -1
	var walk func(n *node, depth int, isRoot bool)
	walk = func(n *node, depth int, isRoot bool) {
		if len(n.items) > maxItems {
			t.Fatalf("node with %d items exceeds max %d", len(n.items), maxItems)
		}
		if !isRoot && len(n.items) < minItems {
			t.Fatalf("non-root node with %d items below min %d", len(n.items), minItems)
		}
		if isRoot && len(n.items) < 1 {
			t.Fatalf("root holds no items but was not collapsed")
		}
		for i := 1; i < len(n.items); i++ {
			if !less(n.items[i-1], n.items[i]) {
				t.Fatalf("node items out of order at %d", i)
			}
		}
		if n.children == nil {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			return
		}
		if len(n.children) != len(n.items)+1 {
			t.Fatalf("node with %d items has %d children", len(n.items), len(n.children))
		}
		for _, c := range n.children {
			walk(c, depth+1, false)
		}
	}
	walk(ix.root, 0, true)
}

// TestIndexSeek checks SeekGE against the reference for random probe
// points, including exact hits, gaps, before-first, and past-last.
func TestIndexSeek(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ix := New()
	var ref refModel
	for i := 0; i < 1500; i++ {
		e := Entry{Key: randKey(rng, 2), Mask: uint32(rng.Intn(8))}
		ix.Insert(e.Key, e.Mask)
		ref.insert(e)
	}
	probe := func(e Entry) {
		t.Helper()
		i, _ := ref.search(e)
		it := ix.Seek(e.Key, e.Mask)
		if i == len(ref) {
			if it.Valid() {
				t.Fatalf("seek %x/%d: want invalid, got %x/%d", e.Key, e.Mask, it.Entry().Key, it.Entry().Mask)
			}
			return
		}
		if !it.Valid() {
			t.Fatalf("seek %x/%d: want %x/%d, got invalid", e.Key, e.Mask, ref[i].Key, ref[i].Mask)
		}
		if got := it.Entry(); got != ref[i] {
			t.Fatalf("seek %x/%d: want %x/%d, got %x/%d", e.Key, e.Mask, ref[i].Key, ref[i].Mask, got.Key, got.Mask)
		}
		// The walk from the seek point must match the reference suffix.
		for j := i; j < len(ref) && j < i+20; j++ {
			if !it.Valid() || it.Entry() != ref[j] {
				t.Fatalf("walk after seek diverges at offset %d", j-i)
			}
			it.Next()
		}
	}
	for i := 0; i < 500; i++ {
		probe(Entry{Key: randKey(rng, 2), Mask: uint32(rng.Intn(10))})
	}
	// Exact members.
	for i := 0; i < 200; i++ {
		probe(ref[rng.Intn(len(ref))])
	}
	probe(Entry{Key: "", Mask: 0})
	probe(Entry{Key: "\xff\xff\xff\xff\xff\xff\xff\xff", Mask: ^uint32(0)})
}

// TestIndexIdempotent pins that duplicate inserts and deletes of absent
// entries leave the set unchanged while still counting as operations.
func TestIndexIdempotent(t *testing.T) {
	ix := New()
	ix.Insert("aaaa", 3)
	ix.Insert("aaaa", 3)
	if ix.Len() != 1 {
		t.Fatalf("Len after duplicate insert = %d, want 1", ix.Len())
	}
	ix.Delete("bbbb", 1)
	if ix.Len() != 1 {
		t.Fatalf("Len after absent delete = %d, want 1", ix.Len())
	}
	ix.Delete("aaaa", 3)
	ix.Delete("aaaa", 3)
	if ix.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", ix.Len())
	}
	st := ix.Stats()
	if st.Inserts != 2 || st.Deletes != 3 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 inserts / 3 deletes / 0 entries", st)
	}
}

// TestIndexSeparatorPromotion forces the insert-while-splitting edge
// where the entry being inserted equals the promoted separator.
func TestIndexSeparatorPromotion(t *testing.T) {
	ix := New()
	for i := 0; i < maxItems*4; i++ {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, uint32(i*2))
		ix.Insert(string(b), 0)
	}
	before := ix.Len()
	// Re-insert every existing entry: some will be separators in internal
	// nodes, some will be mid-split promotions.
	for i := 0; i < maxItems*4; i++ {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, uint32(i*2))
		ix.Insert(string(b), 0)
	}
	if ix.Len() != before {
		t.Fatalf("re-inserting members changed Len: %d -> %d", before, ix.Len())
	}
	checkInvariants(t, ix)
}
