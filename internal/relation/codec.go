package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary tuple codec used by the file-backed µ(C,M) store (paper §VI-C:
// "each non-empty µC,M is stored as a binary file"). The layout is
// fixed-width given a schema:
//
//	int64  ID        (little endian)
//	int32  Dims[i]   for each dimension
//	float64 Raw[i]   for each measure
//
// Oriented values are recomputed from Raw on decode, so files stay
// direction-agnostic and re-orientable if a schema is reloaded.

// EncodedSize returns the byte size of one encoded tuple under schema s.
func EncodedSize(s *Schema) int {
	return 8 + 4*s.NumDims() + 8*s.NumMeasures()
}

// EncodeTuple appends the binary encoding of t to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, s *Schema, t *Tuple) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.ID))
	for _, d := range t.Dims {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	for _, v := range t.Raw {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of src, returning the tuple
// and the remaining bytes.
func DecodeTuple(src []byte, s *Schema) (*Tuple, []byte, error) {
	need := EncodedSize(s)
	if len(src) < need {
		return nil, nil, fmt.Errorf("relation: decode: need %d bytes, have %d", need, len(src))
	}
	t := &Tuple{
		ID:       int64(binary.LittleEndian.Uint64(src)),
		Dims:     make([]int32, s.NumDims()),
		Raw:      make([]float64, s.NumMeasures()),
		Oriented: make([]float64, s.NumMeasures()),
	}
	off := 8
	for i := range t.Dims {
		t.Dims[i] = int32(binary.LittleEndian.Uint32(src[off:]))
		off += 4
	}
	for i := range t.Raw {
		v := math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
		t.Raw[i] = v
		if s.Measure(i).Direction == SmallerBetter {
			t.Oriented[i] = -v
		} else {
			t.Oriented[i] = v
		}
	}
	return t, src[need:], nil
}

// EncodeTuples encodes a whole cell (slice of tuples) into one buffer.
func EncodeTuples(s *Schema, ts []*Tuple) []byte {
	buf := make([]byte, 0, len(ts)*EncodedSize(s))
	for _, t := range ts {
		buf = EncodeTuple(buf, s, t)
	}
	return buf
}

// DecodeTuples decodes a whole cell buffer produced by EncodeTuples.
func DecodeTuples(src []byte, s *Schema) ([]*Tuple, error) {
	size := EncodedSize(s)
	if len(src)%size != 0 {
		return nil, fmt.Errorf("relation: decode: buffer length %d not a multiple of tuple size %d", len(src), size)
	}
	out := make([]*Tuple, 0, len(src)/size)
	for len(src) > 0 {
		t, rest, err := DecodeTuple(src, s)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		src = rest
	}
	return out, nil
}
