package relation

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("gamelog",
		[]DimAttr{{Name: "player"}, {Name: "month"}, {Name: "season"}, {Name: "team"}, {Name: "opp_team"}},
		[]MeasureAttr{
			{Name: "points", Direction: LargerBetter},
			{Name: "assists", Direction: LargerBetter},
			{Name: "rebounds", Direction: LargerBetter},
			{Name: "fouls", Direction: SmallerBetter},
		})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValid(t *testing.T) {
	s := testSchema(t)
	if got, want := s.NumDims(), 5; got != want {
		t.Errorf("NumDims = %d, want %d", got, want)
	}
	if got, want := s.NumMeasures(), 4; got != want {
		t.Errorf("NumMeasures = %d, want %d", got, want)
	}
	if s.Dim(0).Name != "player" || s.Measure(3).Name != "fouls" {
		t.Errorf("attribute order not preserved: %v %v", s.Dims(), s.Measures())
	}
	if s.Measure(3).Direction != SmallerBetter {
		t.Errorf("fouls direction = %v, want smaller-better", s.Measure(3).Direction)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name     string
		dims     []DimAttr
		measures []MeasureAttr
		wantSub  string
	}{
		{"no dims", nil, []MeasureAttr{{Name: "m"}}, "at least one dimension"},
		{"no measures", []DimAttr{{Name: "d"}}, nil, "at least one measure"},
		{"blank dim", []DimAttr{{Name: " "}}, []MeasureAttr{{Name: "m"}}, "blank name"},
		{"blank measure", []DimAttr{{Name: "d"}}, []MeasureAttr{{Name: ""}}, "blank name"},
		{"dup dims", []DimAttr{{Name: "x"}, {Name: "x"}}, []MeasureAttr{{Name: "m"}}, "duplicate"},
		{"dup across", []DimAttr{{Name: "x"}}, []MeasureAttr{{Name: "x"}}, "duplicate"},
		{"bad direction", []DimAttr{{Name: "d"}}, []MeasureAttr{{Name: "m", Direction: 9}}, "invalid direction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchema("r", tc.dims, tc.measures)
			if err == nil {
				t.Fatalf("NewSchema succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestSchemaTooManyAttrs(t *testing.T) {
	dims := make([]DimAttr, MaxDims+1)
	for i := range dims {
		dims[i] = DimAttr{Name: strings.Repeat("d", i+1)}
	}
	if _, err := NewSchema("r", dims, []MeasureAttr{{Name: "m"}}); err == nil {
		t.Error("NewSchema accepted more than MaxDims dimensions")
	}
}

func TestSchemaIndexLookups(t *testing.T) {
	s := testSchema(t)
	if got := s.DimIndex("season"); got != 2 {
		t.Errorf("DimIndex(season) = %d, want 2", got)
	}
	if got := s.DimIndex("nope"); got != -1 {
		t.Errorf("DimIndex(nope) = %d, want -1", got)
	}
	if got := s.MeasureIndex("rebounds"); got != 2 {
		t.Errorf("MeasureIndex(rebounds) = %d, want 2", got)
	}
	if got := s.MeasureIndex("nope"); got != -1 {
		t.Errorf("MeasureIndex(nope) = %d, want -1", got)
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project([]string{"team", "season"}, []string{"points", "fouls"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumDims() != 2 || p.Dim(0).Name != "team" || p.Dim(1).Name != "season" {
		t.Errorf("projected dims = %v", p.Dims())
	}
	if p.NumMeasures() != 2 || p.Measure(1).Direction != SmallerBetter {
		t.Errorf("projected measures = %v", p.Measures())
	}
	if _, err := s.Project([]string{"nope"}, []string{"points"}); err == nil {
		t.Error("Project accepted unknown dimension")
	}
	if _, err := s.Project([]string{"team"}, []string{"nope"}); err == nil {
		t.Error("Project accepted unknown measure")
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	str := s.String()
	for _, want := range []string{"gamelog", "player", "fouls↓", "points↑"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
