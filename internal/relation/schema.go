// Package relation defines the data model of the situational-fact system:
// schemas with dimension and measure attributes, dictionary-encoded tuples,
// and the append-only table abstraction the discovery algorithms run over.
//
// The model follows Section III of Sultana et al., ICDE 2014: a relation
// R(D;M) where D is a set of categorical dimension attributes on which
// conjunctive constraints are defined and M is a set of numeric measure
// attributes on which skyline dominance is defined.
package relation

import (
	"fmt"
	"strings"
)

// Direction states which ordering of a measure attribute is preferred when
// deciding dominance. The paper (Def. 2) allows "better" to mean larger or
// smaller per attribute; e.g. NBA points are LargerBetter while fouls are
// SmallerBetter.
type Direction int8

const (
	// LargerBetter means greater values dominate smaller ones.
	LargerBetter Direction = iota
	// SmallerBetter means smaller values dominate greater ones.
	SmallerBetter
)

// String returns a human-readable name for the direction.
func (d Direction) String() string {
	switch d {
	case LargerBetter:
		return "larger-better"
	case SmallerBetter:
		return "smaller-better"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// DimAttr describes one dimension attribute.
type DimAttr struct {
	// Name is the attribute name, e.g. "player" or "opp_team".
	Name string
}

// MeasureAttr describes one measure attribute together with its preferred
// ordering.
type MeasureAttr struct {
	// Name is the attribute name, e.g. "points".
	Name string
	// Direction states whether larger or smaller raw values are better.
	Direction Direction
}

// Schema describes a relation R(D;M). A Schema is immutable after
// construction; share it freely across goroutines.
type Schema struct {
	name     string
	dims     []DimAttr
	measures []MeasureAttr

	dimIndex     map[string]int
	measureIndex map[string]int
}

// NewSchema builds a schema from dimension and measure attribute lists.
// It returns an error when an attribute list is empty, a name is blank, or
// names collide (across both lists: attribute names must be unique).
func NewSchema(name string, dims []DimAttr, measures []MeasureAttr) (*Schema, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("relation: schema %q needs at least one dimension attribute", name)
	}
	if len(measures) == 0 {
		return nil, fmt.Errorf("relation: schema %q needs at least one measure attribute", name)
	}
	if len(dims) > MaxDims {
		return nil, fmt.Errorf("relation: schema %q has %d dimension attributes; max is %d", name, len(dims), MaxDims)
	}
	if len(measures) > MaxMeasures {
		return nil, fmt.Errorf("relation: schema %q has %d measure attributes; max is %d", name, len(measures), MaxMeasures)
	}
	s := &Schema{
		name:         name,
		dims:         append([]DimAttr(nil), dims...),
		measures:     append([]MeasureAttr(nil), measures...),
		dimIndex:     make(map[string]int, len(dims)),
		measureIndex: make(map[string]int, len(measures)),
	}
	seen := make(map[string]bool, len(dims)+len(measures))
	for i, d := range s.dims {
		if strings.TrimSpace(d.Name) == "" {
			return nil, fmt.Errorf("relation: schema %q: dimension %d has a blank name", name, i)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("relation: schema %q: duplicate attribute name %q", name, d.Name)
		}
		seen[d.Name] = true
		s.dimIndex[d.Name] = i
	}
	for i, m := range s.measures {
		if strings.TrimSpace(m.Name) == "" {
			return nil, fmt.Errorf("relation: schema %q: measure %d has a blank name", name, i)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("relation: schema %q: duplicate attribute name %q", name, m.Name)
		}
		if m.Direction != LargerBetter && m.Direction != SmallerBetter {
			return nil, fmt.Errorf("relation: schema %q: measure %q has invalid direction %d", name, m.Name, m.Direction)
		}
		seen[m.Name] = true
		s.measureIndex[m.Name] = i
	}
	return s, nil
}

// MaxDims bounds the number of dimension attributes. The per-tuple
// constraint lattice is manipulated as a bitmask, so 30 is a hard
// correctness bound; practical workloads (the paper uses d ≤ 8) are far
// below it.
const MaxDims = 30

// MaxMeasures bounds the number of measure attributes; measure subspaces
// are bitmasks too. The paper uses m ≤ 7.
const MaxMeasures = 30

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// NumDims returns |D|.
func (s *Schema) NumDims() int { return len(s.dims) }

// NumMeasures returns |𝕄|.
func (s *Schema) NumMeasures() int { return len(s.measures) }

// Dim returns the i-th dimension attribute.
func (s *Schema) Dim(i int) DimAttr { return s.dims[i] }

// Measure returns the i-th measure attribute.
func (s *Schema) Measure(i int) MeasureAttr { return s.measures[i] }

// Dims returns a copy of the dimension attribute list.
func (s *Schema) Dims() []DimAttr { return append([]DimAttr(nil), s.dims...) }

// Measures returns a copy of the measure attribute list.
func (s *Schema) Measures() []MeasureAttr { return append([]MeasureAttr(nil), s.measures...) }

// DimIndex returns the position of the named dimension attribute, or -1.
func (s *Schema) DimIndex(name string) int {
	if i, ok := s.dimIndex[name]; ok {
		return i
	}
	return -1
}

// MeasureIndex returns the position of the named measure attribute, or -1.
func (s *Schema) MeasureIndex(name string) int {
	if i, ok := s.measureIndex[name]; ok {
		return i
	}
	return -1
}

// Project returns a new schema restricted to the named dimension and
// measure attributes, in the order given. It is used by the experiment
// harness to derive the d=4..7 / m=4..7 spaces of Tables V and VI from one
// master schema.
func (s *Schema) Project(dimNames, measureNames []string) (*Schema, error) {
	dims := make([]DimAttr, 0, len(dimNames))
	for _, n := range dimNames {
		i := s.DimIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("relation: project: unknown dimension %q", n)
		}
		dims = append(dims, s.dims[i])
	}
	measures := make([]MeasureAttr, 0, len(measureNames))
	for _, n := range measureNames {
		i := s.MeasureIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("relation: project: unknown measure %q", n)
		}
		measures = append(measures, s.measures[i])
	}
	return NewSchema(s.name, dims, measures)
}

// String renders the schema as R(D;M) with directions, for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteString("(")
	for i, d := range s.dims {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Name)
	}
	b.WriteString("; ")
	for i, m := range s.measures {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(m.Name)
		if m.Direction == SmallerBetter {
			b.WriteString("↓")
		} else {
			b.WriteString("↑")
		}
	}
	b.WriteString(")")
	return b.String()
}
