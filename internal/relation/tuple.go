package relation

import (
	"fmt"
	"strings"
)

// Tuple is one row of R(D;M). Dimension values are dictionary-encoded
// (see Dict); measure values are stored twice:
//
//   - Raw holds the values exactly as supplied, for display.
//   - Oriented holds values normalised so that LARGER IS ALWAYS BETTER
//     (smaller-better attributes are negated at ingest). All dominance
//     logic operates on Oriented, which keeps the hot comparison loop
//     branch-free with respect to per-attribute directions.
//
// A Tuple is immutable after Table.Append returns it.
type Tuple struct {
	// ID is the arrival position of the tuple (0-based) in the append-only
	// table; it doubles as a timestamp.
	ID int64
	// Dims holds the dictionary codes of the dimension values.
	Dims []int32
	// Raw holds measure values as supplied.
	Raw []float64
	// Oriented holds measure values with smaller-better attributes negated,
	// so that v1 > v2 always means "v1 is better".
	Oriented []float64
}

// NewTuple builds a detached tuple (not yet in any table) from encoded
// dimensions and raw measures; the schema supplies orientation.
func NewTuple(s *Schema, id int64, dims []int32, raw []float64) (*Tuple, error) {
	if len(dims) != s.NumDims() {
		return nil, fmt.Errorf("relation: tuple has %d dimension values, schema %q has %d", len(dims), s.Name(), s.NumDims())
	}
	if len(raw) != s.NumMeasures() {
		return nil, fmt.Errorf("relation: tuple has %d measure values, schema %q has %d", len(raw), s.Name(), s.NumMeasures())
	}
	t := &Tuple{
		ID:       id,
		Dims:     append([]int32(nil), dims...),
		Raw:      append([]float64(nil), raw...),
		Oriented: make([]float64, len(raw)),
	}
	for i, v := range raw {
		if s.Measure(i).Direction == SmallerBetter {
			t.Oriented[i] = -v
		} else {
			t.Oriented[i] = v
		}
	}
	return t, nil
}

// Format renders the tuple with decoded dimension values for diagnostics.
func (t *Tuple) Format(s *Schema, dict *Dict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t%d[", t.ID)
	for i, code := range t.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", s.Dim(i).Name, dict.Decode(i, code))
	}
	b.WriteString(" | ")
	for i, v := range t.Raw {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", s.Measure(i).Name, v)
	}
	b.WriteString("]")
	return b.String()
}

// Dict maintains per-dimension dictionaries mapping string values to dense
// int32 codes and back. Codes are assigned in first-seen order, starting at
// zero, independently per dimension attribute.
//
// Dict is not safe for concurrent mutation; the table that owns it
// serialises access.
type Dict struct {
	encode []map[string]int32
	decode [][]string
}

// NewDict creates dictionaries for a schema's dimension attributes.
func NewDict(s *Schema) *Dict {
	d := &Dict{
		encode: make([]map[string]int32, s.NumDims()),
		decode: make([][]string, s.NumDims()),
	}
	for i := range d.encode {
		d.encode[i] = make(map[string]int32)
	}
	return d
}

// Encode interns value for dimension dim and returns its code, assigning a
// fresh code on first sight.
func (d *Dict) Encode(dim int, value string) int32 {
	if c, ok := d.encode[dim][value]; ok {
		return c
	}
	c := int32(len(d.decode[dim]))
	d.encode[dim][value] = c
	d.decode[dim] = append(d.decode[dim], value)
	return c
}

// Lookup returns the code for value in dimension dim without interning;
// ok is false when the value has never been seen.
func (d *Dict) Lookup(dim int, value string) (code int32, ok bool) {
	c, ok := d.encode[dim][value]
	return c, ok
}

// Decode maps a code back to its string value. Unknown codes render as
// "?<code>" rather than panicking, so diagnostics stay usable.
func (d *Dict) Decode(dim int, code int32) string {
	if code < 0 || int(code) >= len(d.decode[dim]) {
		return fmt.Sprintf("?%d", code)
	}
	return d.decode[dim][code]
}

// Cardinality returns |dom(d_i)| seen so far for dimension dim.
func (d *Dict) Cardinality(dim int) int { return len(d.decode[dim]) }

// Table is the append-only relation R the discovery algorithms observe.
// Tuples are appended one at a time; the full history is retained for
// oracle verification, baselines, and for the paper's BruteForce and
// BaselineSeq algorithms which scan it.
type Table struct {
	schema *Schema
	dict   *Dict
	tuples []*Tuple
}

// NewTable creates an empty table over schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema, dict: NewDict(schema)}
}

// Schema returns the table's schema.
func (tb *Table) Schema() *Schema { return tb.schema }

// Dict returns the table's dimension-value dictionary.
func (tb *Table) Dict() *Dict { return tb.dict }

// Len returns the number of tuples appended so far.
func (tb *Table) Len() int { return len(tb.tuples) }

// At returns the i-th tuple in arrival order.
func (tb *Table) At(i int) *Tuple { return tb.tuples[i] }

// Tuples returns the backing slice of all tuples in arrival order. Callers
// must not mutate it.
func (tb *Table) Tuples() []*Tuple { return tb.tuples }

// Append interns the dimension strings, orients the measures, assigns the
// next ID and appends the tuple, returning it.
func (tb *Table) Append(dims []string, measures []float64) (*Tuple, error) {
	if len(dims) != tb.schema.NumDims() {
		return nil, fmt.Errorf("relation: append: got %d dimension values, want %d", len(dims), tb.schema.NumDims())
	}
	codes := make([]int32, len(dims))
	for i, v := range dims {
		codes[i] = tb.dict.Encode(i, v)
	}
	t, err := NewTuple(tb.schema, int64(len(tb.tuples)), codes, measures)
	if err != nil {
		return nil, err
	}
	tb.tuples = append(tb.tuples, t)
	return t, nil
}

// AppendEncoded appends a tuple whose dimension values are already codes.
// It is used by generators that produce codes directly; the dictionary is
// extended with synthetic names on demand so decoding still works.
func (tb *Table) AppendEncoded(dims []int32, measures []float64) (*Tuple, error) {
	if len(dims) != tb.schema.NumDims() {
		return nil, fmt.Errorf("relation: append-encoded: got %d dimension values, want %d", len(dims), tb.schema.NumDims())
	}
	for i, c := range dims {
		if c < 0 {
			return nil, fmt.Errorf("relation: append-encoded: negative code %d for dimension %d", c, i)
		}
		for int(c) >= tb.dict.Cardinality(i) {
			tb.dict.Encode(i, fmt.Sprintf("%s#%d", tb.schema.Dim(i).Name, tb.dict.Cardinality(i)))
		}
	}
	t, err := NewTuple(tb.schema, int64(len(tb.tuples)), dims, measures)
	if err != nil {
		return nil, err
	}
	tb.tuples = append(tb.tuples, t)
	return t, nil
}
