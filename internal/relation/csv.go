package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV import/export for tables. The column layout is: all dimension
// attributes in schema order, then all measure attributes in schema order.
// A header row with the attribute names is written on export and verified
// on import when present.

// WriteCSV writes the table (header + rows) to w.
func WriteCSV(w io.Writer, tb *Table) error {
	cw := csv.NewWriter(w)
	s := tb.Schema()
	header := make([]string, 0, s.NumDims()+s.NumMeasures())
	for i := 0; i < s.NumDims(); i++ {
		header = append(header, s.Dim(i).Name)
	}
	for i := 0; i < s.NumMeasures(); i++ {
		header = append(header, s.Measure(i).Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range tb.Tuples() {
		for i, c := range t.Dims {
			row[i] = tb.Dict().Decode(i, c)
		}
		for i, v := range t.Raw {
			row[s.NumDims()+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV appends all rows from r into tb. If the first row equals the
// schema's attribute names it is treated as a header and skipped.
// It returns the number of tuples appended.
func ReadCSV(r io.Reader, tb *Table) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = tb.Schema().NumDims() + tb.Schema().NumMeasures()
	s := tb.Schema()
	n := 0
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("relation: read csv: %w", err)
		}
		if first {
			first = false
			if isHeader(rec, s) {
				continue
			}
		}
		dims := rec[:s.NumDims()]
		measures := make([]float64, s.NumMeasures())
		for i, f := range rec[s.NumDims():] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return n, fmt.Errorf("relation: read csv row %d: bad measure %q: %w", n+1, f, err)
			}
			measures[i] = v
		}
		if _, err := tb.Append(dims, measures); err != nil {
			return n, err
		}
		n++
	}
}

func isHeader(rec []string, s *Schema) bool {
	for i := 0; i < s.NumDims(); i++ {
		if rec[i] != s.Dim(i).Name {
			return false
		}
	}
	for i := 0; i < s.NumMeasures(); i++ {
		if rec[s.NumDims()+i] != s.Measure(i).Name {
			return false
		}
	}
	return true
}
