package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAppendAndDict(t *testing.T) {
	tb := NewTable(testSchema(t))
	t1, err := tb.Append([]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2, 3})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	t2, err := tb.Append([]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3, 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if t1.ID != 0 || t2.ID != 1 {
		t.Errorf("IDs = %d, %d; want 0, 1", t1.ID, t2.ID)
	}
	if tb.Len() != 2 || tb.At(1) != t2 {
		t.Errorf("table bookkeeping broken: len=%d", tb.Len())
	}
	// Same strings must intern to the same codes.
	if t1.Dims[0] != t2.Dims[0] || t1.Dims[3] != t2.Dims[3] {
		t.Errorf("interning failed: %v vs %v", t1.Dims, t2.Dims)
	}
	if t1.Dims[4] == t2.Dims[4] {
		t.Errorf("distinct values share a code: %v vs %v", t1.Dims, t2.Dims)
	}
	if got := tb.Dict().Decode(4, t2.Dims[4]); got != "Timberwolves" {
		t.Errorf("Decode = %q, want Timberwolves", got)
	}
	if got := tb.Dict().Cardinality(4); got != 2 {
		t.Errorf("Cardinality(opp_team) = %d, want 2", got)
	}
	if _, ok := tb.Dict().Lookup(4, "Nets"); !ok {
		t.Error("Lookup(Nets) failed")
	}
	if _, ok := tb.Dict().Lookup(4, "Bulls"); ok {
		t.Error("Lookup(Bulls) should miss")
	}
}

func TestOrientation(t *testing.T) {
	tb := NewTable(testSchema(t))
	tu, err := tb.Append([]string{"A", "B", "C", "D", "E"}, []float64{10, 4, 7, 3})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	// fouls (index 3) is smaller-better → negated.
	want := []float64{10, 4, 7, -3}
	for i, v := range want {
		if tu.Oriented[i] != v {
			t.Errorf("Oriented[%d] = %g, want %g", i, tu.Oriented[i], v)
		}
	}
	if tu.Raw[3] != 3 {
		t.Errorf("Raw[3] = %g, want 3", tu.Raw[3])
	}
}

func TestAppendArityErrors(t *testing.T) {
	tb := NewTable(testSchema(t))
	if _, err := tb.Append([]string{"only-one"}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("Append accepted wrong dimension arity")
	}
	if _, err := tb.Append([]string{"a", "b", "c", "d", "e"}, []float64{1}); err == nil {
		t.Error("Append accepted wrong measure arity")
	}
	if _, err := tb.AppendEncoded([]int32{1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("AppendEncoded accepted wrong arity")
	}
	if _, err := tb.AppendEncoded([]int32{-2, 0, 0, 0, 0}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("AppendEncoded accepted negative code")
	}
}

func TestAppendEncodedExtendsDict(t *testing.T) {
	tb := NewTable(testSchema(t))
	tu, err := tb.AppendEncoded([]int32{3, 0, 1, 2, 0}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("AppendEncoded: %v", err)
	}
	if got := tb.Dict().Cardinality(0); got != 4 {
		t.Errorf("dict cardinality(player) = %d, want 4 (codes 0..3 backfilled)", got)
	}
	if name := tb.Dict().Decode(0, tu.Dims[0]); !strings.HasPrefix(name, "player#") {
		t.Errorf("synthetic name = %q, want player#N", name)
	}
}

func TestTupleFormat(t *testing.T) {
	tb := NewTable(testSchema(t))
	tu, _ := tb.Append([]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, []float64{12, 13, 5, 2})
	got := tu.Format(tb.Schema(), tb.Dict())
	for _, want := range []string{"player=Wesley", "opp_team=Nets", "points=12", "fouls=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("Format = %q, missing %q", got, want)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := testSchema(t)
	tb := NewTable(s)
	for i := 0; i < 10; i++ {
		if _, err := tb.AppendEncoded(
			[]int32{int32(i % 3), int32(i % 2), int32(i % 5), int32(i % 4), int32(i % 7)},
			[]float64{float64(i), float64(i * i), -float64(i), float64(i) / 3}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	buf := EncodeTuples(s, tb.Tuples())
	if len(buf) != 10*EncodedSize(s) {
		t.Fatalf("encoded size = %d, want %d", len(buf), 10*EncodedSize(s))
	}
	back, err := DecodeTuples(buf, s)
	if err != nil {
		t.Fatalf("DecodeTuples: %v", err)
	}
	if len(back) != 10 {
		t.Fatalf("decoded %d tuples, want 10", len(back))
	}
	for i, orig := range tb.Tuples() {
		got := back[i]
		if got.ID != orig.ID {
			t.Errorf("tuple %d: ID = %d, want %d", i, got.ID, orig.ID)
		}
		for j := range orig.Dims {
			if got.Dims[j] != orig.Dims[j] {
				t.Errorf("tuple %d dim %d: %d != %d", i, j, got.Dims[j], orig.Dims[j])
			}
		}
		for j := range orig.Raw {
			if got.Raw[j] != orig.Raw[j] || got.Oriented[j] != orig.Oriented[j] {
				t.Errorf("tuple %d measure %d: raw %g/%g oriented %g/%g",
					i, j, got.Raw[j], orig.Raw[j], got.Oriented[j], orig.Oriented[j])
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := DecodeTuples(make([]byte, EncodedSize(s)-1), s); err == nil {
		t.Error("DecodeTuples accepted truncated buffer")
	}
	if _, _, err := DecodeTuple(nil, s); err == nil {
		t.Error("DecodeTuple accepted empty buffer")
	}
}

// Property: encode∘decode is the identity on arbitrary measure vectors.
func TestCodecProperty(t *testing.T) {
	s := testSchema(t)
	f := func(id int64, d0, d1, d2, d3, d4 uint8, m0, m1, m2, m3 float64) bool {
		tu, err := NewTuple(s, id, []int32{int32(d0), int32(d1), int32(d2), int32(d3), int32(d4)},
			[]float64{m0, m1, m2, m3})
		if err != nil {
			return false
		}
		buf := EncodeTuple(nil, s, tu)
		back, rest, err := DecodeTuple(buf, s)
		if err != nil || len(rest) != 0 {
			return false
		}
		if back.ID != tu.ID {
			return false
		}
		for i := range tu.Dims {
			if back.Dims[i] != tu.Dims[i] {
				return false
			}
		}
		for i := range tu.Raw {
			// NaN round-trips bit-exactly through Float64bits; compare bits
			// via != only for non-NaN.
			if back.Raw[i] != tu.Raw[i] && (tu.Raw[i] == tu.Raw[i] || back.Raw[i] == back.Raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSchema(t)
	tb := NewTable(s)
	rows := [][]string{
		{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"},
		{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"},
		{"Sherman", "Dec", "1993-94", "Celtics", "Nets"},
	}
	meas := [][]float64{{4, 12, 5, 2}, {24, 5, 15, 3}, {13, 13, 5, 1}}
	for i := range rows {
		if _, err := tb.Append(rows[i], meas[i]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	tb2 := NewTable(s)
	n, err := ReadCSV(&buf, tb2)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if n != 3 || tb2.Len() != 3 {
		t.Fatalf("read %d rows, want 3", n)
	}
	for i := range rows {
		got := tb2.At(i)
		for j := range rows[i] {
			if v := tb2.Dict().Decode(j, got.Dims[j]); v != rows[i][j] {
				t.Errorf("row %d dim %d = %q, want %q", i, j, v, rows[i][j])
			}
		}
		for j := range meas[i] {
			if got.Raw[j] != meas[i][j] {
				t.Errorf("row %d measure %d = %g, want %g", i, j, got.Raw[j], meas[i][j])
			}
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	s := testSchema(t)
	tb := NewTable(s)
	n, err := ReadCSV(strings.NewReader("A,B,C,D,E,1,2,3,4\n"), tb)
	if err != nil || n != 1 {
		t.Fatalf("ReadCSV = %d, %v; want 1 row", n, err)
	}
}

func TestReadCSVBadMeasure(t *testing.T) {
	s := testSchema(t)
	tb := NewTable(s)
	if _, err := ReadCSV(strings.NewReader("A,B,C,D,E,1,2,x,4\n"), tb); err == nil {
		t.Error("ReadCSV accepted non-numeric measure")
	}
}
