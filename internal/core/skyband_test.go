package core

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

func TestSkybandValidation(t *testing.T) {
	tb := table4(t)
	if _, err := NewSkyband(Config{Schema: tb.Schema()}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	sb, err := NewSkyband(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Name() != "Skyband(k=3)" || sb.K() != 3 {
		t.Errorf("Name/K = %s/%d", sb.Name(), sb.K())
	}
}

// k = 1 must coincide with the skyline problem (Oracle).
func TestSkybandK1EqualsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tb := randomTable(t, rng, 50, 3, 3, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	sb, err := NewSkyband(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tb.Tuples() {
		want := oracle.Process(tu)
		got := sb.Process(tu)
		if ok, why := sameFacts(want, got); !ok {
			t.Fatalf("tuple %d: %s", tu.ID, why)
		}
	}
}

// Facts must be monotone in k, and k ≥ n covers the whole pair space.
func TestSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tb := randomTable(t, rng, 40, 3, 2, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	var bands []*Skyband
	for _, k := range []int{1, 2, 5, 1000} {
		sb, err := NewSkyband(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		bands = append(bands, sb)
	}
	allPairs := (1 << 3) * ((1 << 2) - 1)
	for _, tu := range tb.Tuples() {
		var prev map[factKey]bool
		for i, sb := range bands {
			facts := sb.Process(tu)
			cur := factSet(facts)
			if prev != nil {
				for k := range prev {
					if !cur[k] {
						t.Fatalf("tuple %d: fact lost when k grew (band %d)", tu.ID, i)
					}
				}
			}
			prev = cur
			if sb.K() == 1000 && len(facts) != allPairs {
				t.Fatalf("tuple %d: k=1000 yields %d facts, want all %d", tu.ID, len(facts), allPairs)
			}
		}
	}
}

// Brute-force cross-check of dominator counting.
func TestSkybandCountsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tb := randomTable(t, rng, 35, 3, 2, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: 2, MaxMeasure: -1}
	const k = 2
	sb, err := NewSkyband(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	var history []*relation.Tuple
	for _, tu := range tb.Tuples() {
		got := factSet(sb.Process(tu))
		for _, c := range lattice.CtMasks(3, 2) {
			cons := lattice.FromTuple(tu, c)
			for _, sub := range subspace.Enumerate(2, -1) {
				dominators := 0
				for _, u := range history {
					if cons.Satisfies(u) && subspace.Dominates(u, tu, sub) {
						dominators++
					}
				}
				want := dominators < k
				if got[factKey{cons.Key(), sub}] != want {
					t.Fatalf("tuple %d (%v, %b): skyband=%v, brute=%v (dominators=%d)",
						tu.ID, cons.Vals, sub, got[factKey{cons.Key(), sub}], want, dominators)
				}
			}
		}
		history = append(history, tu)
	}
}
