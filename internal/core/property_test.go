package core

import (
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// Property: the single-pass cmpVecs kernel agrees with the two reference
// dominance tests for arbitrary measure vectors and subspaces.
func TestCmpInMatchesDominates(t *testing.T) {
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}, {Name: "m3"}, {Name: "m4"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v [4]int8) *relation.Tuple {
		tu, err := relation.NewTuple(s, 0, []int32{0},
			[]float64{float64(v[0] % 4), float64(v[1] % 4), float64(v[2] % 4), float64(v[3] % 4)})
		if err != nil {
			panic(err)
		}
		return tu
	}
	f := func(a, b [4]int8, subRaw uint8) bool {
		sub := subspace.Mask(subRaw)&0b1111 | 1 // non-empty
		idx := make([]uint8, 0, 4)
		for i := 0; i < 4; i++ {
			if sub&(1<<uint(i)) != 0 {
				idx = append(idx, uint8(i))
			}
		}
		ta, tb := mk(a), mk(b)
		dominated, dominates := cmpVecs(ta.Oriented, tb.Oriented, idx)
		return dominated == subspace.Dominates(tb, ta, sub) &&
			dominates == subspace.Dominates(ta, tb, sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: satisfiesMask agrees with Constraint.Satisfies for every mask.
func TestSatisfiesMaskMatchesConstraint(t *testing.T) {
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}, {Name: "d3"}},
		[]relation.MeasureAttr{{Name: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v [3]uint8) *relation.Tuple {
		tu, err := relation.NewTuple(s, 0,
			[]int32{int32(v[0] % 3), int32(v[1] % 3), int32(v[2] % 3)}, []float64{0})
		if err != nil {
			panic(err)
		}
		return tu
	}
	f := func(a, b [3]uint8, maskRaw uint8) bool {
		mask := uint32(maskRaw) & 0b111
		ta, tb := mk(a), mk(b)
		want := lattice.FromTuple(ta, mask).Satisfies(tb)
		return satisfiesMask(ta, tb, mask) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: Fact sets from STopDown are invariant under measure-value
// translation (dominance depends only on order).
func TestTranslationInvariance(t *testing.T) {
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(rows [8][4]int8, shift int8) bool {
		mkAlg := func() Discoverer {
			a, err := NewSTopDown(Config{Schema: s, MaxBound: -1, MaxMeasure: -1})
			if err != nil {
				panic(err)
			}
			return a
		}
		a1, a2 := mkAlg(), mkAlg()
		for i, r := range rows {
			t1, err := relation.NewTuple(s, int64(i),
				[]int32{int32(uint8(r[0]) % 2), int32(uint8(r[1]) % 2)},
				[]float64{float64(r[2] % 5), float64(r[3] % 5)})
			if err != nil {
				panic(err)
			}
			t2, err := relation.NewTuple(s, int64(i),
				[]int32{int32(uint8(r[0]) % 2), int32(uint8(r[1]) % 2)},
				[]float64{float64(r[2]%5) + float64(shift), float64(r[3]%5) + float64(shift)})
			if err != nil {
				panic(err)
			}
			f1, f2 := a1.Process(t1), a2.Process(t2)
			if ok, _ := sameFacts(f1, f2); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
