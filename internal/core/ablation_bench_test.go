package core

// Ablation benchmarks isolating the paper's three ideas (§IV):
//
//	constraint pruning  — BruteForce vs BaselineSeq (same full-history
//	                      scans; BaselineSeq adds Proposition-3 pruning)
//	tuple reduction     — BaselineSeq vs BottomUp (both prune constraints;
//	                      BottomUp compares against skyline tuples only)
//	sharing             — TopDown vs STopDown (identical storage; the S*
//	                      pass pre-prunes subspaces via Proposition 4)
//	index acceleration  — BaselineSeq vs BaselineIdx (k-d tree)
//
// plus the measure-correlation regimes (correlated streams have small
// skylines, anti-correlated large ones — the main workload driver of
// skyline-based algorithms).

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/relation"
)

func ablationStream(b *testing.B, dist gen.Distribution) *relation.Table {
	b.Helper()
	g, err := gen.NewGeneric(gen.GenericConfig{Seed: 9, D: 4, M: 4, Dist: dist, DimCardinality: 8, MeasureLevels: 50})
	if err != nil {
		b.Fatal(err)
	}
	tb := relation.NewTable(g.Schema())
	if err := g.Fill(tb, 1<<16); err != nil {
		b.Fatal(err)
	}
	return tb
}

func benchDiscoverer(b *testing.B, tb *relation.Table, mk func(Config) (Discoverer, error), warmup int) {
	b.Helper()
	d, err := mk(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < warmup; i++ {
		d.Process(tb.At(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(tb.At((warmup + i) % tb.Len()))
	}
	b.StopTimer()
	m := d.Metrics()
	if m.Tuples > 0 {
		b.ReportMetric(float64(m.Comparisons)/float64(m.Tuples), "cmp/tuple")
	}
}

// BenchmarkAblationConstraintPruning: BruteForce vs BaselineSeq.
func BenchmarkAblationConstraintPruning(b *testing.B) {
	tb := ablationStream(b, gen.Independent)
	b.Run("BruteForce", func(b *testing.B) {
		benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewBruteForce(c) }, 200)
	})
	b.Run("BaselineSeq", func(b *testing.B) {
		benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewBaselineSeq(c) }, 200)
	})
}

// BenchmarkAblationTupleReduction: BaselineSeq vs BottomUp.
func BenchmarkAblationTupleReduction(b *testing.B) {
	tb := ablationStream(b, gen.Independent)
	b.Run("BaselineSeq", func(b *testing.B) {
		benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewBaselineSeq(c) }, 500)
	})
	b.Run("BottomUp", func(b *testing.B) {
		benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewBottomUp(c) }, 500)
	})
}

// BenchmarkAblationSharing: TopDown vs STopDown and BottomUp vs SBottomUp.
func BenchmarkAblationSharing(b *testing.B) {
	tb := ablationStream(b, gen.Independent)
	cases := []struct {
		name string
		mk   func(Config) (Discoverer, error)
	}{
		{"TopDown", func(c Config) (Discoverer, error) { return NewTopDown(c) }},
		{"STopDown", func(c Config) (Discoverer, error) { return NewSTopDown(c) }},
		{"BottomUp", func(c Config) (Discoverer, error) { return NewBottomUp(c) }},
		{"SBottomUp", func(c Config) (Discoverer, error) { return NewSBottomUp(c) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) { benchDiscoverer(b, tb, tc.mk, 800) })
	}
}

// BenchmarkAblationIndex: BaselineSeq vs BaselineIdx.
func BenchmarkAblationIndex(b *testing.B) {
	tb := ablationStream(b, gen.Correlated)
	b.Run("BaselineSeq", func(b *testing.B) {
		benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewBaselineSeq(c) }, 500)
	})
	b.Run("BaselineIdx", func(b *testing.B) {
		benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewBaselineIdx(c) }, 500)
	})
}

// BenchmarkAblationCorrelation: SBottomUp across measure regimes.
func BenchmarkAblationCorrelation(b *testing.B) {
	for _, dist := range []gen.Distribution{gen.Correlated, gen.Independent, gen.AntiCorrelated} {
		b.Run(fmt.Sprint(dist), func(b *testing.B) {
			tb := ablationStream(b, dist)
			benchDiscoverer(b, tb, func(c Config) (Discoverer, error) { return NewSBottomUp(c) }, 800)
		})
	}
}
