package core

import (
	"testing"

	"repro/internal/relation"
)

// FuzzEquivalence drives STopDown and BottomUp against the Oracle with a
// fuzzer-chosen stream: every byte pair encodes one tuple (two dimension
// values, two measure values, all from tiny domains to maximise ties and
// shared lattices). Any divergence in the discovered fact sets fails.
//
// Run the seeds with `go test`; explore with
// `go test -fuzz FuzzEquivalence ./internal/core`.
func FuzzEquivalence(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x12, 0x34, 0x56, 0x78})
	f.Add([]byte{0xff, 0xff, 0xff, 0x00, 0x00, 0x01, 0x42, 0x99, 0x42, 0x99})
	f.Add([]byte("situational facts are contextual skylines"))

	s, err := relation.NewSchema("fuzz",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}},
		[]relation.MeasureAttr{
			{Name: "m1", Direction: relation.LargerBetter},
			{Name: "m2", Direction: relation.SmallerBetter},
		})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 { // keep the oracle affordable
			data = data[:64]
		}
		cfg := Config{Schema: s, MaxBound: -1, MaxMeasure: -1}
		oracle, err := NewOracle(cfg)
		if err != nil {
			t.Fatal(err)
		}
		std, err := NewSTopDown(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bu, err := NewBottomUp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(data); i += 2 {
			a, b := data[i], data[i+1]
			tu, err := relation.NewTuple(s, int64(i/2),
				[]int32{int32(a & 0x3), int32((a >> 2) & 0x3)},
				[]float64{float64((a >> 4) & 0x7), float64(b & 0x7)})
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.Process(tu)
			if got := std.Process(tu); len(got) != len(want) {
				t.Fatalf("tuple %d: STopDown %d facts, oracle %d", tu.ID, len(got), len(want))
			} else if ok, why := sameFacts(want, got); !ok {
				t.Fatalf("tuple %d: STopDown diverged: %s", tu.ID, why)
			}
			if got := bu.Process(tu); len(got) != len(want) {
				t.Fatalf("tuple %d: BottomUp %d facts, oracle %d", tu.ID, len(got), len(want))
			} else if ok, why := sameFacts(want, got); !ok {
				t.Fatalf("tuple %d: BottomUp diverged: %s", tu.ID, why)
			}
		}
	})
}
