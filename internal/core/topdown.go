package core

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// TopDown is Algorithm 5 of the paper. It maintains Invariant 2 — µ(C,M)
// stores a tuple exactly at its MAXIMAL skyline constraints — and
// traverses each arriving tuple's lattice top-down from ⊤. Storing each
// tuple once per maximal constraint (instead of at every skyline
// constraint, as BottomUp does) saves space at the cost of extra work:
//
//   - comparisons at a constraint cannot stop at the first dominator
//     (other stored tuples may prune different intersection lattices);
//   - deleting a dominated tuple requires re-homing it at child
//     constraints outside C^t unless an ancestor already stores it.
//
// With Shared=true it becomes STopDown (Alg. 6): the full-space pass
// records one Proposition-4 relation per distinct compared tuple, and each
// subspace pass pre-prunes from those records. Completeness of the
// pre-pruning (every subspace dominator is covered by a recorded one with
// an equal-or-larger shared mask — the transitive-chain argument of
// DESIGN.md) means subspace passes need no dominance checks at all: they
// only emit facts, insert t, and re-home tuples t dominates.
type TopDown struct {
	*base
	shared bool

	recs    []pairRec
	recSeen map[int64]bool
}

// NewTopDown creates plain TopDown.
func NewTopDown(cfg Config) (*TopDown, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &TopDown{base: b}, nil
}

// NewSTopDown creates STopDown (sharing across measure subspaces).
func NewSTopDown(cfg Config) (*TopDown, error) {
	if cfg.Subspaces != nil {
		return nil, fmt.Errorf("core: STopDown shares work across ALL subspaces; explicit subspace subsets require the non-shared algorithms")
	}
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &TopDown{base: b, shared: true}, nil
}

// Name implements Discoverer.
func (a *TopDown) Name() string {
	if a.shared {
		return "STopDown"
	}
	return "TopDown"
}

// Process implements Discoverer.
func (a *TopDown) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	facts := a.newFacts()
	if !a.shared {
		for _, m := range a.subs {
			facts = a.traverseRoot(t, m, false, facts)
		}
		return a.doneFacts(facts)
	}
	// STopDown: STopDownRoot over the full space, then STopDownNode per
	// remaining subspace.
	a.recs = a.recs[:0]
	if a.recSeen == nil {
		a.recSeen = make(map[int64]bool, 64)
	} else {
		clear(a.recSeen)
	}
	facts = a.traverseRoot(t, a.fullM, true, facts)
	for _, m := range a.subs {
		if m == a.fullM {
			continue
		}
		facts = a.traverseNode(t, m, facts)
	}
	return a.doneFacts(facts)
}

// traverseRoot is the TopDown pass (Alg. 5); with record=true it doubles
// as STopDownRoot (Alg. 6), registering Proposition-4 relations.
func (a *TopDown) traverseRoot(t *relation.Tuple, m subspace.Mask, record bool, facts []Fact) []Fact {
	a.nextEpoch()
	emitting := !record || a.mhat == a.m
	a.queue = append(a.queue[:0], 0) // ⊤
	a.inQueue[0] = a.epoch
	stride, tv, idx := a.vw+1, t.Oriented, a.midx[m]
	for len(a.queue) > 0 {
		c := a.queue[0]
		a.queue = a.queue[1:]
		a.met.Traversed++
		ref := a.cellRef(t, c, m)
		cell := a.st.Load(ref)
		n := cell.Len()
		// Batched scan (kernel.go): every row is visited — TopDown cannot
		// break at a dominator, other stored tuples may prune different
		// intersection lattices — so n Comparisons are charged, exactly as
		// the row-at-a-time loop did.
		dom, doms := scanAll(tv, cell.Rows, n, stride, idx, a.domIdx[:0], a.remIdx[:0])
		a.met.Comparisons += int64(n)
		if record {
			for i := 0; i < n; i++ {
				if uid := cell.ID(i); !a.recSeen[uid] {
					a.recSeen[uid] = true
					u := a.tupleByID(uid)
					a.recs = append(a.recs, pairRec{sharedOf(t, u), subspace.Compare(t, u, a.m)})
				}
			}
		}
		// Dominated procedure: prune C^{t,u} per dominating row.
		for _, i := range dom {
			a.markSubmasksPruned(sharedOf(t, a.tupleByID(cell.ID(i))))
		}
		a.domIdx = dom[:0]
		// Dominates procedure: evict every dominated row in one compaction
		// (ids resolved first — compaction shifts them), then re-home each
		// evictee, in row order as before.
		changed := false
		if len(doms) > 0 {
			a.rehomeIDs = a.rehomeIDs[:0]
			for _, i := range doms {
				a.rehomeIDs = append(a.rehomeIDs, cell.ID(i))
			}
			cell.RemoveSorted(doms)
			changed = true
			for _, uid := range a.rehomeIDs {
				a.rehome(t, uid, c, m)
			}
		}
		a.remIdx = doms[:0]
		if a.pruned[c] != a.epoch {
			if emitting {
				facts = a.emit(t, c, m, facts)
			}
			if a.inAnces[c] != a.epoch {
				cell.Append(t.ID, tv)
				changed = true
			}
		}
		if changed {
			a.st.Save(ref, cell)
		}
		a.enqueueChildren(c)
	}
	return facts
}

// traverseNode is STopDownNode (Alg. 6): the subspace pass after the
// full-space pass has pre-computed the complete pruned set for m.
func (a *TopDown) traverseNode(t *relation.Tuple, m subspace.Mask, facts []Fact) []Fact {
	a.nextEpoch()
	for _, r := range a.recs {
		if r.rel.DominatedIn(m) {
			a.markSubmasksPruned(r.shared)
		}
	}
	if a.allBottomsPruned() {
		// Every constraint is pruned: t is dominated in every context in
		// this subspace, so there is nothing to emit and nothing stored
		// can be dominated by t (paper Example 10, the {m1} case).
		return facts
	}
	a.queue = append(a.queue[:0], 0)
	a.inQueue[0] = a.epoch
	stride, tv, idx := a.vw+1, t.Oriented, a.midx[m]
	for len(a.queue) > 0 {
		c := a.queue[0]
		a.queue = a.queue[1:]
		if a.pruned[c] != a.epoch {
			// Only non-pruned constraints are truly "visited" (cell
			// examined); pruned ones are skipped over by the walk, which
			// is STopDown's Fig-11b advantage over TopDown.
			a.met.Traversed++
			facts = a.emit(t, c, m, facts)
			ref := a.cellRef(t, c, m)
			cell := a.st.Load(ref)
			n := cell.Len()
			// The pre-pruning is complete for this pass (no stored row can
			// dominate t at a non-pruned constraint), so only the evictions
			// matter; the batched scan's dominator list stays empty.
			_, doms := scanAll(tv, cell.Rows, n, stride, idx, a.domIdx[:0], a.remIdx[:0])
			a.met.Comparisons += int64(n)
			changed := false
			if len(doms) > 0 {
				a.rehomeIDs = a.rehomeIDs[:0]
				for _, i := range doms {
					a.rehomeIDs = append(a.rehomeIDs, cell.ID(i))
				}
				cell.RemoveSorted(doms)
				changed = true
				for _, uid := range a.rehomeIDs {
					a.rehome(t, uid, c, m)
				}
			}
			a.remIdx = doms[:0]
			if a.inAnces[c] != a.epoch {
				cell.Append(t.ID, tv)
				changed = true
			}
			if changed {
				a.st.Save(ref, cell)
			}
		}
		a.enqueueChildren(c)
	}
	return facts
}

// enqueueChildren implements the EnqueueChildren procedure: children are
// enqueued UNCONDITIONALLY (skyline constraints are downward-closed, so
// non-pruned constraints can sit below pruned ones), and inAnces
// propagates from any non-pruned parent (if C is a skyline constraint of
// t, t is stored at C or one of its ancestors, so no descendant may store
// it again).
func (a *TopDown) enqueueChildren(c lattice.Mask) {
	notPruned := a.pruned[c] != a.epoch
	for unbound := lattice.FullMask(a.d) &^ c; unbound != 0; {
		bit := unbound & -unbound
		unbound &^= bit
		ch := c | bit
		if lattice.PopCount(ch) > a.dhat {
			continue
		}
		if notPruned {
			a.inAnces[ch] = a.epoch
		}
		if a.inQueue[ch] != a.epoch {
			a.inQueue[ch] = a.epoch
			a.queue = append(a.queue, ch)
		}
	}
}

// rehome implements the Dominates procedure's maintenance half: after u
// (given by id — cells store ids, the registry resolves the tuple) is
// evicted from µ(C,m) because t ≻_m u, every child constraint of C that u
// satisfies but t does not (C' ∈ CH^u_C − C^t) becomes a candidate maximal
// skyline constraint of u; u is stored there unless an ancestor of C'
// outside C^t (a constraint binding u's differing value, i.e. a mask
// s₀∪{i} with s₀ ⊂ C) already stores it.
func (a *TopDown) rehome(t *relation.Tuple, uid int64, c lattice.Mask, m subspace.Mask) {
	if lattice.PopCount(c)+1 > a.dhat {
		return // children fall outside the d̂-truncated lattice
	}
	u := a.tupleByID(uid)
	for i := 0; i < a.d; i++ {
		bit := lattice.Mask(1) << uint(i)
		if c&bit != 0 {
			continue
		}
		if t.Dims[i] == u.Dims[i] {
			continue // child lies inside C^t: it contains t, so u is not
			// in its skyline anymore; it is handled by the traversal.
		}
		child := c | bit
		stored := false
		// Ancestors of child within C^u − C^t: masks s0|bit, s0 ⊂ c.
		// These are u's constraints, not t's, so the per-tuple id cache
		// does not apply; InternTuple still allocates nothing.
		for s0 := (c - 1) & c; ; s0 = (s0 - 1) & c {
			anc := s0 | bit
			cell := a.st.Load(store.Ref(a.in.InternTuple(u, anc), m))
			if cell.ContainsID(uid) {
				stored = true
				break
			}
			if s0 == 0 {
				break
			}
		}
		if !stored {
			ref := store.Ref(a.in.InternTuple(u, child), m)
			cell := a.st.Load(ref)
			cell.Append(uid, u.Oriented)
			a.st.Save(ref, cell)
		}
	}
}

var _ Discoverer = (*TopDown)(nil)
