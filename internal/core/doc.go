// Package core implements the situational-fact discovery algorithms of
// Sultana et al., ICDE 2014: given an append-only relation and a newly
// arrived tuple t, find every constraint–measure pair (C, M) such that t
// is a contextual skyline tuple of λ_M(σ_C(R)).
//
// Eight sequential algorithms are provided, mirroring the paper's §IV–V:
//
//	BruteForce   Alg. 2 — compare with every tuple, per constraint, per subspace
//	BaselineSeq  Alg. 3 — sequential scan + Proposition-3 pruning
//	BaselineIdx  k-d tree one-sided range queries + Proposition-3 pruning
//	CCSC         per-context compressed skycube (§II adaptation)
//	BottomUp     Alg. 4 — µ stores all skyline tuples; bottom-up lattice BFS
//	TopDown      Alg. 5 — µ stores maximal skyline constraints; top-down BFS
//	SBottomUp    §V-C — BottomUp + sharing across measure subspaces
//	STopDown     Alg. 6 — TopDown + sharing across measure subspaces
//
// plus two engineering extensions beyond the paper: Parallel partitions
// the measure subspaces across workers running BottomUp or TopDown over
// one shared striped-lock store, and Skyband generalises discovery to
// contextual k-skybands. All discovery algorithms produce identical fact
// sets; they differ in time, memory and I/O profiles (the subject of the
// paper's evaluation).
//
// Algorithms are constructed through a registry (Register/NewDiscoverer)
// keyed by lower-case name, so extensions plug in without touching the
// public API layer. Every Discoverer reports Metrics (comparisons,
// traversed constraints, facts) and its store's I/O counters; the
// BottomUp family additionally supports exact deletion (Delete), and the
// lattice families expose contextual skyline sizes (SkylineSizer) for
// prominence scoring.
package core
