package core

import (
	"math/rand"
	"testing"
)

// TestBottomUpSteadyStateAllocs pins the per-arrival allocation budget of
// BottomUp.Process on a warm store. Before the interned-id/flat-cell
// refactor the hot loop allocated a fresh key string per visited
// constraint and a Vals slice per emitted fact (thousands of objects per
// arrival at the Fig 7 warm point — 4244 allocs/op measured pre-refactor,
// 2017 after, a >50% drop). At steady state the remaining allocations are
// the returned facts slice, the occasional fact-arena block and cell
// regrowth — a small constant. The bound has ~3× headroom over the
// measured average so the test fails on a reintroduced per-visit or
// per-fact allocation, not on allocator noise.
func TestBottomUpSteadyStateAllocs(t *testing.T) {
	const (
		n        = 560
		warm     = 500
		maxAvg   = 12.0 // measured average is 4.0/op
		measured = 50   // arrivals timed by AllocsPerRun
	)
	rng := rand.New(rand.NewSource(77))
	tb := randomTable(t, rng, n, 3, 2, 2, 4)
	alg, err := NewBottomUp(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer alg.Close()
	for i := 0; i < warm; i++ {
		alg.Process(tb.At(i))
	}
	i := warm
	avg := testing.AllocsPerRun(measured, func() {
		alg.Process(tb.At(i))
		i++
	})
	if i > n {
		t.Fatalf("stream exhausted: need %d tuples, have %d", i, n)
	}
	if avg > maxAvg {
		t.Errorf("BottomUp.Process steady-state allocations = %.1f/op, budget %.0f "+
			"(a per-visited-constraint or per-fact allocation crept back into the hot path)",
			avg, maxAvg)
	}
}
