package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestParallelValidation(t *testing.T) {
	tb := table4(t)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	if _, err := NewParallel(cfg, "nope", 2); err == nil {
		t.Error("unknown base algorithm accepted")
	}
	bad := cfg
	bad.Subspaces = []uint32{1}
	if _, err := NewParallel(bad, "topdown", 2); err == nil {
		t.Error("explicit subspaces accepted")
	}
	// Worker count is capped by the subspace count (m=2 → 3 subspaces).
	p, err := NewParallel(cfg, "topdown", 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 3 {
		t.Errorf("workers = %d, want 3 (one per subspace)", p.Workers())
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

// TestParallelEquivalence: the parallel drivers must produce the exact
// fact sets of the Oracle on random streams, for both base algorithms and
// several worker counts.
func TestParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	tb := randomTable(t, rng, 60, 3, 3, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	oracle, err := NewOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ps []Discoverer
	for _, algo := range []string{"topdown", "bottomup"} {
		for _, w := range []int{1, 2, 4} {
			p, err := NewParallel(cfg, algo, w)
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, p)
		}
	}
	for _, tu := range tb.Tuples() {
		want := oracle.Process(tu)
		for _, p := range ps {
			got := p.Process(tu)
			if ok, why := sameFacts(want, got); !ok {
				t.Fatalf("tuple %d: %s disagrees with Oracle: %s", tu.ID, p.Name(), why)
			}
		}
	}
	for _, p := range ps {
		if p.StoreStats().StoredTuples == 0 {
			t.Errorf("%s stored nothing", p.Name())
		}
		// Tuples is a stream position, not worker-summed work: after n
		// arrivals it must read n regardless of the worker count.
		if got := p.Metrics().Tuples; got != int64(tb.Len()) {
			t.Errorf("%s: Metrics.Tuples = %d, want %d", p.Name(), got, tb.Len())
		}
		if err := p.Close(); err != nil {
			t.Errorf("%s: Close: %v", p.Name(), err)
		}
	}
}

// TestParallelSkylineSize: the parallel driver routes SkylineSize to the
// worker owning the subspace, so prominence denominators must match the
// equivalent sequential algorithm's for every discovered fact.
func TestParallelSkylineSize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := randomTable(t, rng, 50, 3, 3, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	for _, algo := range []string{"topdown", "bottomup"} {
		var seq interface {
			Discoverer
			SkylineSizer
		}
		var err error
		if algo == "topdown" {
			seq, err = NewTopDown(cfg)
		} else {
			seq, err = NewBottomUp(cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallel(cfg, algo, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range tb.Tuples() {
			facts := seq.Process(tu)
			par.Process(tu)
			for _, f := range facts {
				want := seq.SkylineSize(f.Constraint, f.Subspace)
				if got := par.SkylineSize(f.Constraint, f.Subspace); got != want {
					t.Fatalf("%s tuple %d: parallel SkylineSize = %d, sequential %d",
						algo, tu.ID, got, want)
				}
			}
		}
		seq.Close()
		par.Close()
	}
}

// TestParallelDelete: deletion fans out across workers (disjoint cells in
// the shared store) and must leave the same post-deletion fact sets as the
// Oracle over the shrunken history.
func TestParallelDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	tb := randomTable(t, rng, 40, 3, 3, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	oracle, err := NewOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParallel(cfg, "bottomup", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CanDelete() {
		t.Fatal("Parallel(bottomup) must report CanDelete")
	}
	pt, err := NewParallel(cfg, "topdown", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CanDelete() {
		t.Error("Parallel(topdown) must not report CanDelete")
	}
	pt.Close()
	warm := tb.Tuples()[:30]
	for _, tu := range warm {
		oracle.Process(tu)
		p.Process(tu)
	}
	// Delete a few scattered tuples from both.
	alive := append([]*relation.Tuple(nil), warm...)
	for _, victim := range []int{3, 11, 27} {
		u := tb.At(victim)
		alive = removeTuple(alive, u)
		oracle.Delete(u)
		p.Delete(u, alive)
	}
	// Post-deletion arrivals must agree exactly.
	for _, tu := range tb.Tuples()[30:] {
		want := oracle.Process(tu)
		got := p.Process(tu)
		if ok, why := sameFacts(want, got); !ok {
			t.Fatalf("tuple %d after deletions: %s", tu.ID, why)
		}
		alive = append(alive, tu)
	}
	p.Close()
	oracle.Close()
}

// TestSubspacesConfig covers the explicit-subspace restriction directly.
func TestSubspacesConfig(t *testing.T) {
	tb := table4(t)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Subspaces: []uint32{0b01, 0b11}}
	alg, err := NewTopDown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tb.Tuples() {
		for _, f := range alg.Process(tu) {
			if f.Subspace != 0b01 && f.Subspace != 0b11 {
				t.Fatalf("fact in unrequested subspace %b", f.Subspace)
			}
		}
	}
	// Invalid masks must be rejected.
	for _, bad := range []uint32{0, 0b100} {
		cfg.Subspaces = []uint32{bad}
		if _, err := NewTopDown(cfg); err == nil {
			t.Errorf("invalid subspace %b accepted", bad)
		}
	}
	cfg.Subspaces = []uint32{0b11}
	cfg.MaxMeasure = 1
	if _, err := NewTopDown(cfg); err == nil {
		t.Error("subspace exceeding m̂ accepted")
	}
	// Shared variants refuse explicit subsets.
	cfg.MaxMeasure = -1
	if _, err := NewSTopDown(cfg); err == nil {
		t.Error("STopDown accepted explicit subspaces")
	}
	if _, err := NewSBottomUp(cfg); err == nil {
		t.Error("SBottomUp accepted explicit subspaces")
	}
}
