package core

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/subspace"
)

// Skyband generalises situational-fact discovery from contextual skylines
// to contextual k-SKYBANDS: the arriving tuple t yields a fact for (C, M)
// when FEWER THAN k tuples of σ_C(R) dominate it in M. k = 1 is exactly
// the paper's problem; larger k surfaces "one of the top-k-ish"
// statements ("only the third player ever with a 20/10/5 game against the
// Bulls"), the fact form hinted at by the paper's §VIII and by the
// one-of-the-few work it cites (Wu et al., KDD'12).
//
// The implementation is baseline-style (one Proposition-4 comparison per
// historical tuple, then per-pair counting): dominator COUNTS, unlike
// dominance itself, are not preserved by the µ-store reductions — a
// skyline store cannot tell two dominators from five — so the lattice
// algorithms do not transfer. This matches the related work's positioning
// of k-skyband maintenance as a separate, heavier problem.
type Skyband struct {
	*base
	k       int
	history []*relation.Tuple
	recs    []pairRec
}

// NewSkyband creates a k-skyband discoverer. k must be ≥ 1.
func NewSkyband(cfg Config, k int) (*Skyband, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: skyband k = %d, want ≥ 1", k)
	}
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &Skyband{base: b, k: k}, nil
}

// Name implements Discoverer.
func (a *Skyband) Name() string { return fmt.Sprintf("Skyband(k=%d)", a.k) }

// K returns the skyband depth.
func (a *Skyband) K() int { return a.k }

// Process implements Discoverer: it emits every (C, M) for which fewer
// than k historical context tuples dominate t.
func (a *Skyband) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	a.recs = a.recs[:0]
	for _, u := range a.history {
		a.met.Comparisons++
		rel := subspace.Compare(t, u, a.m)
		if rel.Lt == 0 {
			continue // u never dominates t in any subspace
		}
		a.recs = append(a.recs, pairRec{sharedOf(t, u), rel})
	}
	var facts []Fact
	for _, m := range a.subs {
		for _, c := range a.ctMasks {
			a.met.Traversed++
			dominators := 0
			for _, r := range a.recs {
				if c&^r.shared == 0 && r.rel.DominatedIn(m) {
					dominators++
					if dominators >= a.k {
						break
					}
				}
			}
			if dominators < a.k {
				facts = a.emit(t, c, m, facts)
			}
		}
	}
	a.history = append(a.history, t)
	return facts
}

var _ Discoverer = (*Skyband)(nil)
