package core

import (
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// SkylineSizer reports |λ_M(σ_C(R))|, the denominator of the paper's
// prominence measure |σ_C(R)| / |λ_M(σ_C(R))| (§VII). Both µ-store
// families implement it; the cost differs because of their storage
// schemes.
type SkylineSizer interface {
	SkylineSize(c lattice.Constraint, m subspace.Mask) int
}

// SkylineSize implements SkylineSizer for the BottomUp family: Invariant 1
// makes µ(C,M) the skyline itself, so the size is the cell length. The
// probe goes through Interner.Lookup so sizing absent constraints does not
// grow the intern table.
func (a *BottomUp) SkylineSize(c lattice.Constraint, m subspace.Mask) int {
	id, ok := a.in.Lookup(c.Key())
	if !ok {
		return 0
	}
	return a.st.Load(store.Ref(id, m)).Len()
}

// SkylineSize implements SkylineSizer for the TopDown family: Invariant 2
// stores a tuple only at its maximal skyline constraints, so the skyline
// of (C,M) is the set of tuples stored at C or any of its ancestors
// (2^bound(C) cells) that satisfy C. Tuples stored at two incomparable
// ancestors are deduplicated by ID. Cells carry ids only; the satisfaction
// test resolves dimension values through the tuple registry.
func (a *TopDown) SkylineSize(c lattice.Constraint, m subspace.Mask) int {
	bound := c.BoundMask()
	var seen map[int64]bool
	count := 0
	visit := func(anc lattice.Constraint) {
		id, ok := a.in.Lookup(anc.Key())
		if !ok {
			return
		}
		cell := a.st.Load(store.Ref(id, m))
		for i, n := 0, cell.Len(); i < n; i++ {
			uid := cell.ID(i)
			if !c.Satisfies(a.tupleByID(uid)) {
				continue
			}
			if seen == nil {
				seen = make(map[int64]bool, 8)
			}
			if !seen[uid] {
				seen[uid] = true
				count++
			}
		}
	}
	// Enumerate ancestors-or-self: blank out every subset of bound attrs.
	sub := bound
	for {
		anc := lattice.Constraint{Vals: make([]int32, len(c.Vals))}
		for i := range c.Vals {
			if sub&(1<<uint(i)) != 0 {
				anc.Vals[i] = c.Vals[i]
			} else {
				anc.Vals[i] = lattice.Wildcard
			}
		}
		visit(anc)
		if sub == 0 {
			break
		}
		sub = (sub - 1) & bound
	}
	return count
}

var (
	_ SkylineSizer = (*BottomUp)(nil)
	_ SkylineSizer = (*TopDown)(nil)
)

// ContextCounter tracks |σ_C(R)| for every constraint with bound(C) ≤ d̂
// over the observed stream: each arrival increments the counters of all
// constraints it satisfies. It is the numerator of the prominence measure
// and is shared by any algorithm via composition.
type ContextCounter struct {
	masks  []lattice.Mask
	counts map[lattice.Key]int64
}

// NewContextCounter creates a counter for d dimension attributes with the
// d̂ cap (maxBound < 0: none).
func NewContextCounter(d, maxBound int) *ContextCounter {
	return &ContextCounter{
		masks:  lattice.CtMasks(d, maxBound),
		counts: make(map[lattice.Key]int64),
	}
}

// Observe folds an arrival into the counters.
func (cc *ContextCounter) Observe(t *relation.Tuple) {
	for _, m := range cc.masks {
		cc.counts[lattice.KeyFromTuple(t, m)]++
	}
}

// ContextSize returns |σ_C(R)| for the constraint (0 if never observed).
func (cc *ContextCounter) ContextSize(c lattice.Constraint) int64 {
	return cc.counts[c.Key()]
}

// Snapshot returns a copy of the raw counters, keyed by constraint key.
// Used by engine persistence.
func (cc *ContextCounter) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(cc.counts))
	for k, v := range cc.counts {
		out[string(k)] = v
	}
	return out
}

// Restore replaces the counters with a snapshot previously produced by
// Snapshot.
func (cc *ContextCounter) Restore(counts map[string]int64) {
	cc.counts = make(map[lattice.Key]int64, len(counts))
	for k, v := range counts {
		cc.counts[lattice.Key(k)] = v
	}
}
