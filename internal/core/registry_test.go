package core

import (
	"strings"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Algorithms()
	for _, want := range []string{
		"bruteforce", "baselineseq", "baselineidx", "ccsc",
		"bottomup", "topdown", "sbottomup", "stopdown",
		"parallel-topdown", "parallel-bottomup",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	tb := table4(t)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	for _, n := range names {
		d, err := NewDiscoverer(n, cfg)
		if err != nil {
			t.Errorf("NewDiscoverer(%q): %v", n, err)
			continue
		}
		if d.Name() == "" {
			t.Errorf("%q built a nameless discoverer", n)
		}
		d.Close()
	}
}

func TestRegistryUnknown(t *testing.T) {
	tb := table4(t)
	_, err := NewDiscoverer("nope", Config{Schema: tb.Schema()})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// The error must teach: it lists what IS registered.
	if !strings.Contains(err.Error(), "sbottomup") {
		t.Errorf("unknown-algorithm error does not list alternatives: %v", err)
	}
}

func TestRegistryWorkersKnob(t *testing.T) {
	tb := table4(t) // m=2 → 3 subspaces
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Workers: 2}
	d, err := NewDiscoverer("parallel-topdown", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	p, ok := d.(*Parallel)
	if !ok {
		t.Fatalf("parallel-topdown built a %T", d)
	}
	if p.Workers() != 2 {
		t.Errorf("Workers = %d, want 2 (Config.Workers)", p.Workers())
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	f := func(cfg Config) (Discoverer, error) { return NewTopDown(cfg) }
	expectPanic("empty name", func() { Register("", f) })
	expectPanic("upper-case name", func() { Register("TopDown", f) })
	expectPanic("nil factory", func() { Register("fresh-name", nil) })
	expectPanic("duplicate", func() { Register("topdown", f) })
}
