package core

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewBottomUp(Config{}); err == nil {
		t.Error("nil schema accepted")
	}
	tb := table4(t)
	if _, err := NewBottomUp(Config{Schema: tb.Schema(), MaxMeasure: 0}); err == nil {
		t.Error("m̂ = 0 accepted")
	}
}

// TestExample1Table1 reproduces the paper's Example 1 on Table I: with no
// constraint and the full measure space t7 is NOT a skyline tuple (t3 and
// t6 dominate it); with month=Feb and the full space it IS (together with
// t2); with team=Celtics ∧ opp_team=Nets and {assists, rebounds} it IS.
func TestExample1Table1(t *testing.T) {
	tb := table1(t)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	for _, alg := range allAlgorithms(t, cfg) {
		var facts []Fact
		for _, tu := range tb.Tuples() {
			facts = alg.Process(tu) // keep only t7's facts
		}
		set := factSet(facts)

		has := func(c lattice.Constraint, m subspace.Mask) bool {
			return set[factKey{c.Key(), m}]
		}
		d := tb.Dict()
		lookup := func(dim int, v string) int32 {
			code, ok := d.Lookup(dim, v)
			if !ok {
				t.Fatalf("value %q missing from dictionary", v)
			}
			return code
		}
		W := lattice.Wildcard
		full := subspace.Mask(0b111) // points, assists, rebounds

		noConstraint := lattice.Top(5)
		if has(noConstraint, full) {
			t.Errorf("%s: t7 reported as skyline with no constraint in full space", alg.Name())
		}
		feb := lattice.Constraint{Vals: []int32{W, lookup(1, "Feb"), W, W, W}}
		if !has(feb, full) {
			t.Errorf("%s: (month=Feb, full) missing from S_t7", alg.Name())
		}
		celticsNets := lattice.Constraint{Vals: []int32{W, W, W, lookup(3, "Celtics"), lookup(4, "Nets")}}
		ar := subspace.Mask(0b110) // assists, rebounds
		if !has(celticsNets, ar) {
			t.Errorf("%s: (team=Celtics ∧ opp=Nets, {assists,rebounds}) missing from S_t7", alg.Name())
		}
		// Constraint pruning example from §I: t7 dominated by t3 in full
		// space → (team=Celtics ∧ opp=Nets, full) must NOT be a fact.
		if has(celticsNets, full) {
			t.Errorf("%s: (team=Celtics ∧ opp=Nets, full) wrongly in S_t7", alg.Name())
		}
		// Season=1995-96 in full space: pruned via t6.
		season := lattice.Constraint{Vals: []int32{W, W, lookup(2, "1995-96"), W, W}}
		if has(season, full) {
			t.Errorf("%s: (season=1995-96, full) wrongly in S_t7", alg.Name())
		}
		if err := alg.Close(); err != nil {
			t.Errorf("%s: Close: %v", alg.Name(), err)
		}
	}
}

// TestSt7Count cross-checks the paper's §VII remark that t7 belongs to 196
// contextual skylines (d=5, m=3, no caps). Hand inclusion–exclusion over
// t7's dominators (t2 in {p},{r},{p,r} sharing {month}; t3 in the four
// point-subspaces sharing {team,opp}; t6 everywhere sharing {season})
// excludes 14+16+6−4−3−2+2 = 29 of the 32×7 = 224 pairs, i.e. |S_t7| =
// 195; the paper's 196 is a minor counting slip. All nine algorithm
// implementations agree on 195 (see TestEquivalenceRandom for the general
// cross-check).
func TestSt7Count(t *testing.T) {
	tb := table1(t)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	alg, err := NewOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var facts []Fact
	for _, tu := range tb.Tuples() {
		facts = alg.Process(tu)
	}
	if len(facts) != 195 {
		t.Errorf("|S_t7| = %d, want 195 (paper says 196; see comment)", len(facts))
	}
}

// TestExample7BottomUpStore reproduces Fig. 3 of the paper: the µ(C,M)
// contents for constraints of C^t5 in subspace {m1,m2} before and after
// the arrival of t5 under BottomUp.
func TestExample7BottomUpStore(t *testing.T) {
	tb := table4(t)
	mem := store.NewMemory(tb.Schema().NumMeasures())
	alg, err := NewBottomUp(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Store: mem})
	if err != nil {
		t.Fatal(err)
	}
	ts := tb.Tuples()
	for _, tu := range ts[:4] {
		alg.Process(tu)
	}
	full := subspace.Mask(0b11)
	t5 := ts[4]
	cellIDs := func(mask lattice.Mask) []int64 {
		cell := mem.LoadKey(store.CellKey{C: lattice.KeyFromTuple(t5, mask), M: full})
		return cell.IDList()
	}
	// Fig 3a (before t5): ⊤{t4}, a1{t1,t2}, b1{t4}, c1{t4}, a1b1{t2},
	// a1c1{t2}, b1c1{t4}, a1b1c1{t2}. Mask bit order: d1=bit0, d2=bit1,
	// d3=bit2; a1 = bind d1 → 0b001.
	before := map[lattice.Mask][]int64{
		0b000: {3}, 0b001: {0, 1}, 0b010: {3}, 0b100: {3},
		0b011: {1}, 0b101: {1}, 0b110: {3}, 0b111: {1},
	}
	for mask, want := range before {
		got := cellIDs(mask)
		if !sameIDSet(got, want) {
			t.Errorf("before t5: µ(%b) = %v, want %v", mask, got, want)
		}
	}
	alg.Process(t5)
	// Fig 3b (after t5): ⊤{t4}, a1{t2,t5}, b1{t4}, c1{t4}, a1b1{t2,t5},
	// a1c1{t2,t5}, b1c1{t4}, a1b1c1{t2,t5}.
	after := map[lattice.Mask][]int64{
		0b000: {3}, 0b001: {1, 4}, 0b010: {3}, 0b100: {3},
		0b011: {1, 4}, 0b101: {1, 4}, 0b110: {3}, 0b111: {1, 4},
	}
	for mask, want := range after {
		got := cellIDs(mask)
		if !sameIDSet(got, want) {
			t.Errorf("after t5: µ(%b) = %v, want %v", mask, got, want)
		}
	}
}

// TestExample9TopDownStore reproduces Fig. 4 of the paper: TopDown's µ
// contents before and after t5 in {m1,m2}, including the re-homing of t1
// at 〈a1,*,c2〉.
func TestExample9TopDownStore(t *testing.T) {
	tb := table4(t)
	mem := store.NewMemory(tb.Schema().NumMeasures())
	alg, err := NewTopDown(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Store: mem})
	if err != nil {
		t.Fatal(err)
	}
	ts := tb.Tuples()
	for _, tu := range ts[:4] {
		alg.Process(tu)
	}
	full := subspace.Mask(0b11)
	cellIDs := func(ref *relation.Tuple, mask lattice.Mask) []int64 {
		cell := mem.LoadKey(store.CellKey{C: lattice.KeyFromTuple(ref, mask), M: full})
		return cell.IDList()
	}
	t1, t5 := ts[0], ts[4]
	// Fig 4a (before t5): within C^t5: ⊤{t4}, a1{t1,t2}, everything else
	// empty. Outside: b2{t1} (via t1), c2{t3} (via t3/t1).
	checks := []struct {
		ref  *relation.Tuple
		mask lattice.Mask
		want []int64
	}{
		{t5, 0b000, []int64{3}},
		{t5, 0b001, []int64{0, 1}},
		{t5, 0b010, nil},
		{t5, 0b100, nil},
		{t5, 0b111, nil},
		{t1, 0b010, []int64{0}},    // 〈*,b2,*〉 stores t1
		{ts[2], 0b100, []int64{2}}, // 〈*,*,c2〉 stores t3
	}
	for _, c := range checks {
		if got := cellIDs(c.ref, c.mask); !sameIDSet(got, c.want) {
			t.Errorf("before t5: µ(%v) = %v, want %v",
				lattice.FromTuple(c.ref, c.mask).Vals, got, c.want)
		}
	}
	alg.Process(t5)
	// Fig 4b (after t5): ⊤{t4}, a1{t2,t5}, b2{t1}, c2{t3}, a1c2{t1},
	// a1b2{} and all other C^t5 constraints empty.
	checksAfter := []struct {
		ref  *relation.Tuple
		mask lattice.Mask
		want []int64
	}{
		{t5, 0b000, []int64{3}},
		{t5, 0b001, []int64{1, 4}},
		{t5, 0b011, nil},
		{t5, 0b101, nil},
		{t5, 0b111, nil},
		{t1, 0b010, []int64{0}},    // b2 still stores t1
		{ts[2], 0b100, []int64{2}}, // c2 still stores t3
		{t1, 0b101, []int64{0}},    // 〈a1,*,c2〉 now stores t1 (re-homed)
		{t1, 0b011, nil},           // 〈a1,b2,*〉 must NOT store t1
	}
	for _, c := range checksAfter {
		if got := cellIDs(c.ref, c.mask); !sameIDSet(got, c.want) {
			t.Errorf("after t5: µ(%v) = %v, want %v",
				lattice.FromTuple(c.ref, c.mask).Vals, got, c.want)
		}
	}
}

func sameIDSet(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[int64]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}

// TestEquivalenceRandom is the central differential test: every algorithm
// must produce the identical fact set for every arrival, across parameter
// combinations (with/without d̂ and m̂ caps).
func TestEquivalenceRandom(t *testing.T) {
	cases := []struct {
		name              string
		n, d, m           int
		dimCard, measCard int
		dhat, mhat        int
	}{
		{"tiny-ties", 40, 3, 2, 2, 3, -1, -1},
		{"mid", 60, 4, 3, 3, 4, -1, -1},
		{"capped", 60, 4, 3, 3, 4, 2, 2},
		{"deep-dims", 30, 5, 2, 2, 5, 3, -1},
		{"one-measure", 40, 3, 1, 3, 4, -1, -1},
		{"wide-measures", 25, 2, 5, 2, 3, -1, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			tb := randomTable(t, rng, tc.n, tc.d, tc.m, tc.dimCard, tc.measCard)
			cfg := Config{Schema: tb.Schema(), MaxBound: tc.dhat, MaxMeasure: tc.mhat}
			algs := allAlgorithms(t, cfg)
			for _, tu := range tb.Tuples() {
				ref := algs[0].Process(tu) // Oracle
				for _, alg := range algs[1:] {
					got := alg.Process(tu)
					if ok, why := sameFacts(ref, got); !ok {
						t.Fatalf("tuple %d: %s disagrees with Oracle: %s\noracle: %v\n%s: %v",
							tu.ID, alg.Name(), why,
							sortedFactStrings(ref, tb.Schema(), tb.Dict()),
							alg.Name(),
							sortedFactStrings(got, tb.Schema(), tb.Dict()))
					}
				}
			}
		})
	}
}

// TestEquivalenceFileStore runs the four lattice algorithms over file
// stores (the FS* variants of §VI-C) and cross-checks against the oracle.
func TestEquivalenceFileStore(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := randomTable(t, rng, 35, 3, 3, 2, 3)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	oracle, err := NewOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := []func(Config) (Discoverer, error){
		func(c Config) (Discoverer, error) { return NewBottomUp(c) },
		func(c Config) (Discoverer, error) { return NewTopDown(c) },
		func(c Config) (Discoverer, error) { return NewSBottomUp(c) },
		func(c Config) (Discoverer, error) { return NewSTopDown(c) },
	}
	var algs []Discoverer
	for _, m := range mk {
		fs, err := store.NewFile(t.TempDir(), tb.Schema())
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Store = fs
		a, err := m(c)
		if err != nil {
			t.Fatal(err)
		}
		algs = append(algs, a)
	}
	for _, tu := range tb.Tuples() {
		ref := oracle.Process(tu)
		for _, alg := range algs {
			got := alg.Process(tu)
			if ok, why := sameFacts(ref, got); !ok {
				t.Fatalf("tuple %d: FS-%s disagrees with Oracle: %s", tu.ID, alg.Name(), why)
			}
		}
	}
	// File stores must have performed real I/O.
	for _, alg := range algs {
		if alg.StoreStats().Writes == 0 {
			t.Errorf("FS-%s performed no writes", alg.Name())
		}
	}
}

// TestInvariants verifies Invariant 1 (BottomUp family) and Invariant 2
// (TopDown family) after every arrival of a random stream.
func TestInvariants(t *testing.T) {
	const d, m = 3, 3
	rng := rand.New(rand.NewSource(31337))
	tb := randomTable(t, rng, 30, d, m, 2, 3)
	cases := []struct {
		name       string
		mk         func(Config) (Discoverer, error)
		inv        int
		dhat, mhat int
	}{
		{"BottomUp", func(c Config) (Discoverer, error) { return NewBottomUp(c) }, 1, -1, -1},
		{"SBottomUp", func(c Config) (Discoverer, error) { return NewSBottomUp(c) }, 1, -1, -1},
		{"TopDown", func(c Config) (Discoverer, error) { return NewTopDown(c) }, 2, -1, -1},
		{"STopDown", func(c Config) (Discoverer, error) { return NewSTopDown(c) }, 2, -1, -1},
		{"BottomUp-capped", func(c Config) (Discoverer, error) { return NewBottomUp(c) }, 1, 2, 2},
		{"TopDown-capped", func(c Config) (Discoverer, error) { return NewTopDown(c) }, 2, 2, 2},
		{"SBottomUp-capped", func(c Config) (Discoverer, error) { return NewSBottomUp(c) }, 1, 2, 2},
		{"STopDown-capped", func(c Config) (Discoverer, error) { return NewSTopDown(c) }, 2, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := store.NewMemory(tb.Schema().NumMeasures())
			alg, err := tc.mk(Config{Schema: tb.Schema(), MaxBound: tc.dhat, MaxMeasure: tc.mhat, Store: mem})
			if err != nil {
				t.Fatal(err)
			}
			shared := tc.name[0] == 'S'
			var history []*relation.Tuple
			for i, tu := range tb.Tuples() {
				alg.Process(tu)
				history = append(history, tu)
				if i%7 != 6 && i != tb.Len()-1 {
					continue // checking is quadratic; sample arrivals
				}
				dhat, mhat := tc.dhat, tc.mhat
				if dhat < 0 {
					dhat = d
				}
				if mhat < 0 {
					mhat = m
				}
				if tc.inv == 1 {
					checkInvariant1(t, mem, history, d, dhat, m, mhat, shared)
				} else {
					checkInvariant2(t, mem, history, d, dhat, m, mhat, shared)
				}
			}
		})
	}
}

// TestMetricsSanity checks counter relationships the paper reports:
// sharing never increases comparisons or traversals for the top-down pair,
// and all counters advance.
func TestMetricsSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := randomTable(t, rng, 80, 4, 3, 3, 4)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	td, _ := NewTopDown(cfg)
	std, _ := NewSTopDown(cfg)
	bu, _ := NewBottomUp(cfg)
	sbu, _ := NewSBottomUp(cfg)
	for _, tu := range tb.Tuples() {
		td.Process(tu)
		std.Process(tu)
		bu.Process(tu)
		sbu.Process(tu)
	}
	if std.Metrics().Comparisons > td.Metrics().Comparisons {
		t.Errorf("STopDown made more comparisons (%d) than TopDown (%d)",
			std.Metrics().Comparisons, td.Metrics().Comparisons)
	}
	if std.Metrics().Traversed > td.Metrics().Traversed {
		t.Errorf("STopDown traversed more constraints (%d) than TopDown (%d)",
			std.Metrics().Traversed, td.Metrics().Traversed)
	}
	if sbu.Metrics().Traversed > bu.Metrics().Traversed {
		t.Errorf("SBottomUp traversed more constraints (%d) than BottomUp (%d)",
			sbu.Metrics().Traversed, bu.Metrics().Traversed)
	}
	// Space: BottomUp stores at least as many tuple entries as TopDown.
	if bu.StoreStats().StoredTuples < td.StoreStats().StoredTuples {
		t.Errorf("BottomUp stored fewer tuples (%d) than TopDown (%d)",
			bu.StoreStats().StoredTuples, td.StoreStats().StoredTuples)
	}
	for _, alg := range []Discoverer{td, std, bu, sbu} {
		m := alg.Metrics()
		if m.Tuples != int64(tb.Len()) || m.Facts == 0 || m.Traversed == 0 {
			t.Errorf("%s: implausible metrics %+v", alg.Name(), m)
		}
	}
}

// TestFactsWellFormed checks basic fact hygiene on a random stream: the
// constraint is satisfied by the arriving tuple, the subspace is non-empty
// and within m̂, bound(C) ≤ d̂.
func TestFactsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tb := randomTable(t, rng, 50, 4, 3, 3, 4)
	cfg := Config{Schema: tb.Schema(), MaxBound: 2, MaxMeasure: 2}
	for _, alg := range allAlgorithms(t, cfg) {
		for _, tu := range tb.Tuples() {
			for _, f := range alg.Process(tu) {
				if !f.Constraint.Satisfies(tu) {
					t.Fatalf("%s: fact constraint %v not satisfied by its tuple", alg.Name(), f.Constraint.Vals)
				}
				if f.Constraint.Bound() > 2 {
					t.Fatalf("%s: fact bound(C)=%d exceeds d̂=2", alg.Name(), f.Constraint.Bound())
				}
				if f.Subspace == 0 || subspace.Size(f.Subspace) > 2 {
					t.Fatalf("%s: fact subspace %b violates m̂=2", alg.Name(), f.Subspace)
				}
			}
		}
	}
}

// TestFirstTupleIsUniversalSkyline: the very first arrival is a fact for
// every (C, M) pair of its lattice.
func TestFirstTupleIsUniversalSkyline(t *testing.T) {
	tb := table1(t)
	cfg := Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	want := (1 << 5) * ((1 << 3) - 1) // 2^d constraints × (2^m − 1) subspaces
	for _, alg := range allAlgorithms(t, cfg) {
		facts := alg.Process(tb.Tuples()[0])
		if len(facts) != want {
			t.Errorf("%s: first tuple has %d facts, want %d", alg.Name(), len(facts), want)
		}
	}
}
