package core

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// MaxLatticeDims bounds the number of dimension attributes the discovery
// algorithms accept: per-tuple scratch state is sized 2^d. The paper uses
// d ≤ 8.
const MaxLatticeDims = 16

// Fact is one discovered situational fact: the arriving tuple is a
// contextual skyline tuple for (Constraint, Subspace).
type Fact struct {
	// Constraint is the context selector C.
	Constraint lattice.Constraint
	// Subspace is the measure subspace mask M.
	Subspace subspace.Mask
}

// Metrics aggregates the work counters reported in the paper's Figure 11
// plus general bookkeeping. Store-level counters (stored tuples, file I/O)
// live in store.Stats.
type Metrics struct {
	// Tuples is the number of processed arrivals.
	Tuples int64
	// Comparisons counts pairwise tuple dominance tests (Fig 11a).
	Comparisons int64
	// Traversed counts visited lattice constraints, accumulated over all
	// measure subspaces (Fig 11b).
	Traversed int64
	// Facts is the cumulative number of discovered facts.
	Facts int64
}

// Discoverer is the common interface of all algorithms.
type Discoverer interface {
	// Name returns the paper's algorithm name (e.g. "TopDown").
	Name() string
	// Process discovers the facts pertinent to the arrival of t and folds
	// t into the internal state. Tuples must be presented in arrival order
	// with unique IDs.
	Process(t *relation.Tuple) []Fact
	// Metrics returns a snapshot of the work counters.
	Metrics() Metrics
	// StoreStats returns the µ-store counters (zero value for algorithms
	// without a store).
	StoreStats() store.Stats
	// Close releases resources.
	Close() error
}

// Config parameterises an algorithm instance.
type Config struct {
	// Schema is the relation schema.
	Schema *relation.Schema
	// MaxBound is d̂, the maximum number of bound dimension attributes per
	// constraint; < 0 means no cap.
	MaxBound int
	// MaxMeasure is m̂, the maximum measure-subspace size; < 0 means no cap.
	MaxMeasure int
	// Store is the µ(C,M) store for the lattice algorithms; nil selects a
	// fresh in-memory store. Baselines ignore it.
	Store store.Store
	// Subspaces, when non-nil, restricts discovery to exactly these
	// measure subspaces instead of every subspace with ≤ m̂ attributes.
	// Used by the Parallel driver to partition subspaces across workers;
	// each mask must be non-empty and within the schema's measure space.
	Subspaces []subspace.Mask
	// Workers is the goroutine count of the parallel drivers (≤ 0 selects
	// GOMAXPROCS); the sequential algorithms ignore it.
	Workers int
}

func (c Config) validate() error {
	if c.Schema == nil {
		return fmt.Errorf("core: nil schema")
	}
	if c.Schema.NumDims() > MaxLatticeDims {
		return fmt.Errorf("core: %d dimension attributes exceed the lattice limit %d",
			c.Schema.NumDims(), MaxLatticeDims)
	}
	return nil
}

// base carries the precomputed lattice/subspace structure and scratch
// buffers shared by all algorithm implementations.
type base struct {
	schema *relation.Schema
	d, m   int
	dhat   int // effective d̂ (normalised: 0..d)
	mhat   int // effective m̂ (normalised: 1..m)

	ctMasks []lattice.Mask  // all constraint masks, Alg.1 order (parents first)
	bottoms []lattice.Mask  // minimal masks of the (possibly truncated) lattice
	subs    []subspace.Mask // all reported subspaces (|M| ≤ m̂), ascending mask
	fullM   subspace.Mask   // the full measure space 𝕄

	st store.Store
	in *store.Interner // st's intern table (cached to skip the interface call)
	vw int             // cell vector width == m

	// midx[s] lists the measure indices of subspace s — the dominance
	// kernel iterates this flat list instead of scanning mask bits.
	// Filled for every reported subspace plus 𝕄 at construction; indices
	// fits uint8 because masks are 32-bit.
	midx [][]uint8

	// reg resolves tuple ids back to tuples (reg[id], ids are arrival
	// positions). Cells store only ids and oriented vectors; the rare
	// paths that need dimension values — TopDown re-homing, SkylineSize,
	// the S* record passes — resolve through here.
	reg []*relation.Tuple

	met Metrics

	// Epoch-stamped per-mask scratch (avoids O(2^d) clearing per subspace).
	epoch    uint32
	pruned   []uint32
	inQueue  []uint32
	inAnces  []uint32
	queue    []lattice.Mask
	keyStamp uint32
	keyEpoch []uint32
	cids     []store.ConstraintID
	vals     []int32 // fact-constraint arena (see emit)
	factCap  int     // last arrival's fact count, seeds the next facts slice

	// Scratch of the batched cell scans (kernel.go): row indices the
	// candidate dominates / is dominated by in the cell under scan, and
	// the evictees' tuple ids resolved before the cell is compacted.
	remIdx    []int
	domIdx    []int
	rehomeIDs []int64
}

// newFacts allocates the per-arrival facts slice, pre-sized to the
// previous arrival's fact count — consecutive arrivals emit similar
// volumes, so this removes the doubling-growth copies from the hot path.
func (b *base) newFacts() []Fact {
	return make([]Fact, 0, b.factCap+8)
}

// doneFacts records the arrival's final fact count for the next newFacts.
func (b *base) doneFacts(facts []Fact) []Fact {
	b.factCap = len(facts)
	return facts
}

func newBase(cfg Config) (*base, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d, m := cfg.Schema.NumDims(), cfg.Schema.NumMeasures()
	dhat := cfg.MaxBound
	if dhat < 0 || dhat > d {
		dhat = d
	}
	mhat := cfg.MaxMeasure
	if mhat < 0 || mhat > m {
		mhat = m
	}
	if mhat < 1 {
		return nil, fmt.Errorf("core: m̂ = %d leaves no measure subspace", mhat)
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemory(m)
	} else if st.Width() != m {
		return nil, fmt.Errorf("core: store vector width %d does not match schema's %d measures", st.Width(), m)
	}
	subs := subspace.Enumerate(m, mhat)
	if cfg.Subspaces != nil {
		subs = append([]subspace.Mask(nil), cfg.Subspaces...)
		for _, s := range subs {
			if s == 0 || s&^subspace.Full(m) != 0 {
				return nil, fmt.Errorf("core: invalid explicit subspace %b for m=%d", s, m)
			}
			if subspace.Size(s) > mhat {
				return nil, fmt.Errorf("core: explicit subspace %b exceeds m̂=%d", s, mhat)
			}
		}
	}
	fullM := subspace.Full(m)
	midx := make([][]uint8, int(fullM)+1)
	fill := func(s subspace.Mask) {
		if s == 0 || midx[s] != nil {
			return
		}
		idx := make([]uint8, 0, subspace.Size(s))
		for i := 0; i < m; i++ {
			if s&(1<<uint(i)) != 0 {
				idx = append(idx, uint8(i))
			}
		}
		midx[s] = idx
	}
	for _, s := range subs {
		fill(s)
	}
	fill(fullM)
	size := 1 << uint(d)
	return &base{
		schema:   cfg.Schema,
		d:        d,
		m:        m,
		dhat:     dhat,
		mhat:     mhat,
		ctMasks:  lattice.CtMasks(d, dhat),
		bottoms:  lattice.BottomMasks(d, dhat),
		subs:     subs,
		fullM:    fullM,
		st:       st,
		in:       st.Interner(),
		vw:       m,
		midx:     midx,
		pruned:   make([]uint32, size),
		inQueue:  make([]uint32, size),
		inAnces:  make([]uint32, size),
		keyEpoch: make([]uint32, size),
		cids:     make([]store.ConstraintID, size),
	}, nil
}

// nextEpoch invalidates the pruned/inQueue/inAnces scratch marks.
func (b *base) nextEpoch() {
	b.epoch++
	if b.epoch == 0 { // wrapped: hard reset
		for i := range b.pruned {
			b.pruned[i], b.inQueue[i], b.inAnces[i] = 0, 0, 0
		}
		b.epoch = 1
	}
}

// newTupleScratch starts a fresh per-tuple generation: it registers the
// tuple in the id registry, clears the mark arrays (via a new epoch) and
// invalidates the cached constraint ids, which are per-tuple because they
// embed the tuple's dimension values.
func (b *base) newTupleScratch(t *relation.Tuple) {
	b.register(t)
	b.nextEpoch()
	b.keyStamp++
	if b.keyStamp == 0 {
		for i := range b.keyEpoch {
			b.keyEpoch[i] = 0
		}
		b.keyStamp = 1
	}
}

// register makes t resolvable by id; idempotent.
func (b *base) register(t *relation.Tuple) {
	for int64(len(b.reg)) <= t.ID {
		b.reg = append(b.reg, nil)
	}
	b.reg[t.ID] = t
}

// RegisterTuple exposes register for snapshot restore: restored cells
// reference tuples that never went through Process, and later re-homing or
// SkylineSize calls must still resolve their ids.
func (b *base) RegisterTuple(t *relation.Tuple) { b.register(t) }

// tupleByID resolves a cell member back to its tuple.
func (b *base) tupleByID(id int64) *relation.Tuple { return b.reg[id] }

// cid returns the interned constraint id of the C^t member selected by c,
// cached per tuple (the id depends only on t's dimension values and c).
func (b *base) cid(t *relation.Tuple, c lattice.Mask) store.ConstraintID {
	if b.keyEpoch[c] == b.keyStamp {
		return b.cids[c]
	}
	id := b.in.InternTuple(t, c)
	b.cids[c] = id
	b.keyEpoch[c] = b.keyStamp
	return id
}

// cellRef builds the packed store address of µ(C, M).
func (b *base) cellRef(t *relation.Tuple, c lattice.Mask, m subspace.Mask) store.CellRef {
	return store.Ref(b.cid(t, c), m)
}

// indices returns the measure-index list of subspace m, building it on
// demand for masks outside the reported set (not concurrency-safe; bases
// are single-goroutine by contract).
func (b *base) indices(m subspace.Mask) []uint8 {
	idx := b.midx[m]
	if idx == nil {
		idx = make([]uint8, 0, subspace.Size(m))
		for i := 0; i < b.m; i++ {
			if m&(1<<uint(i)) != 0 {
				idx = append(idx, uint8(i))
			}
		}
		b.midx[m] = idx
	}
	return idx
}

// emit materialises a fact. Constraint value slices are carved out of a
// block arena — one allocation per emitBlock facts instead of one per
// fact (fact emission dominated the old allocation profile). Blocks are
// never reused, so emitted facts stay valid indefinitely; the three-index
// slice keeps a fact's Vals from being overwritten by later emits.
func (b *base) emit(t *relation.Tuple, c lattice.Mask, m subspace.Mask, facts []Fact) []Fact {
	b.met.Facts++
	if cap(b.vals)-len(b.vals) < b.d {
		b.vals = make([]int32, 0, emitBlock*b.d)
	}
	start := len(b.vals)
	for i := 0; i < b.d; i++ {
		v := lattice.Wildcard
		if c&(1<<uint(i)) != 0 {
			v = t.Dims[i]
		}
		b.vals = append(b.vals, v)
	}
	vals := b.vals[start:len(b.vals):len(b.vals)]
	return append(facts, Fact{Constraint: lattice.Constraint{Vals: vals}, Subspace: m})
}

// emitBlock is the fact-arena block size, in constraints.
const emitBlock = 256

// cmpVecs is the dominance kernel: it compares two full-width oriented
// vectors over the measure indices idx (one subspace's precomputed index
// list), so the innermost loop streams flat float64 slices with no mask
// bit-scan. dominated reports t ≺ u, dominates reports t ≻ u in that
// subspace. Exactly one Metrics comparison is charged per call by the
// caller.
func cmpVecs(tv, uv []float64, idx []uint8) (dominated, dominates bool) {
	var hasGt, hasLt bool
	for _, j := range idx {
		a, b := tv[j], uv[j]
		if a > b {
			if hasLt {
				return false, false
			}
			hasGt = true
		} else if a < b {
			if hasGt {
				return false, false
			}
			hasLt = true
		}
	}
	return hasLt && !hasGt, hasGt && !hasLt
}

// cmpIn is the tuple-pair form of cmpVecs, used by the history-scanning
// algorithms (baselines, deletion repair) where both sides are tuples.
func (b *base) cmpIn(t, u *relation.Tuple, m subspace.Mask) (dominated, dominates bool) {
	return cmpVecs(t.Oriented, u.Oriented, b.indices(m))
}

// markSubmasksPruned stamps every submask of m as pruned for the current
// epoch (Proposition 3: the interval [⊥(C^{t,t'}), ⊤] of the intersection
// lattice, which in mask terms is the submask closure of the shared mask).
// All pruning in this package goes through this routine, so the pruned set
// is always submask-closed; if m itself is already stamped, so is its
// whole closure and the scan is skipped.
func (b *base) markSubmasksPruned(m lattice.Mask) {
	if b.pruned[m] == b.epoch {
		return
	}
	s := m
	for {
		b.pruned[s] = b.epoch
		if s == 0 {
			break
		}
		s = (s - 1) & m
	}
}

// allBottomsPruned reports whether every minimal mask of the truncated
// lattice is pruned; pruned sets are submask-closed, so this is equivalent
// to "every constraint is pruned".
func (b *base) allBottomsPruned() bool {
	for _, bm := range b.bottoms {
		if b.pruned[bm] != b.epoch {
			return false
		}
	}
	return true
}

// Metrics implements Discoverer.
func (b *base) Metrics() Metrics { return b.met }

// RestoreMetrics overwrites the work counters, so an engine resumed from a
// snapshot reports the same cumulative work as one that never stopped.
func (b *base) RestoreMetrics(m Metrics) { b.met = m }

// Store exposes the µ(C,M) store (engine snapshot support).
func (b *base) Store() store.Store { return b.st }

// StoreStats implements Discoverer.
func (b *base) StoreStats() store.Stats { return b.st.Stats() }

// Close implements Discoverer.
func (b *base) Close() error { return b.st.Close() }
