package core

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// MaxLatticeDims bounds the number of dimension attributes the discovery
// algorithms accept: per-tuple scratch state is sized 2^d. The paper uses
// d ≤ 8.
const MaxLatticeDims = 16

// Fact is one discovered situational fact: the arriving tuple is a
// contextual skyline tuple for (Constraint, Subspace).
type Fact struct {
	// Constraint is the context selector C.
	Constraint lattice.Constraint
	// Subspace is the measure subspace mask M.
	Subspace subspace.Mask
}

// Metrics aggregates the work counters reported in the paper's Figure 11
// plus general bookkeeping. Store-level counters (stored tuples, file I/O)
// live in store.Stats.
type Metrics struct {
	// Tuples is the number of processed arrivals.
	Tuples int64
	// Comparisons counts pairwise tuple dominance tests (Fig 11a).
	Comparisons int64
	// Traversed counts visited lattice constraints, accumulated over all
	// measure subspaces (Fig 11b).
	Traversed int64
	// Facts is the cumulative number of discovered facts.
	Facts int64
}

// Discoverer is the common interface of all algorithms.
type Discoverer interface {
	// Name returns the paper's algorithm name (e.g. "TopDown").
	Name() string
	// Process discovers the facts pertinent to the arrival of t and folds
	// t into the internal state. Tuples must be presented in arrival order
	// with unique IDs.
	Process(t *relation.Tuple) []Fact
	// Metrics returns a snapshot of the work counters.
	Metrics() Metrics
	// StoreStats returns the µ-store counters (zero value for algorithms
	// without a store).
	StoreStats() store.Stats
	// Close releases resources.
	Close() error
}

// Config parameterises an algorithm instance.
type Config struct {
	// Schema is the relation schema.
	Schema *relation.Schema
	// MaxBound is d̂, the maximum number of bound dimension attributes per
	// constraint; < 0 means no cap.
	MaxBound int
	// MaxMeasure is m̂, the maximum measure-subspace size; < 0 means no cap.
	MaxMeasure int
	// Store is the µ(C,M) store for the lattice algorithms; nil selects a
	// fresh in-memory store. Baselines ignore it.
	Store store.Store
	// Subspaces, when non-nil, restricts discovery to exactly these
	// measure subspaces instead of every subspace with ≤ m̂ attributes.
	// Used by the Parallel driver to partition subspaces across workers;
	// each mask must be non-empty and within the schema's measure space.
	Subspaces []subspace.Mask
	// Workers is the goroutine count of the parallel drivers (≤ 0 selects
	// GOMAXPROCS); the sequential algorithms ignore it.
	Workers int
}

func (c Config) validate() error {
	if c.Schema == nil {
		return fmt.Errorf("core: nil schema")
	}
	if c.Schema.NumDims() > MaxLatticeDims {
		return fmt.Errorf("core: %d dimension attributes exceed the lattice limit %d",
			c.Schema.NumDims(), MaxLatticeDims)
	}
	return nil
}

// base carries the precomputed lattice/subspace structure and scratch
// buffers shared by all algorithm implementations.
type base struct {
	schema *relation.Schema
	d, m   int
	dhat   int // effective d̂ (normalised: 0..d)
	mhat   int // effective m̂ (normalised: 1..m)

	ctMasks []lattice.Mask  // all constraint masks, Alg.1 order (parents first)
	bottoms []lattice.Mask  // minimal masks of the (possibly truncated) lattice
	subs    []subspace.Mask // all reported subspaces (|M| ≤ m̂), ascending mask
	fullM   subspace.Mask   // the full measure space 𝕄

	st  store.Store
	met Metrics

	// Epoch-stamped per-mask scratch (avoids O(2^d) clearing per subspace).
	epoch    uint32
	pruned   []uint32
	inQueue  []uint32
	inAnces  []uint32
	queue    []lattice.Mask
	keyStamp uint32
	keyEpoch []uint32
	keys     []lattice.Key
	scratch  []lattice.Mask
}

func newBase(cfg Config) (*base, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d, m := cfg.Schema.NumDims(), cfg.Schema.NumMeasures()
	dhat := cfg.MaxBound
	if dhat < 0 || dhat > d {
		dhat = d
	}
	mhat := cfg.MaxMeasure
	if mhat < 0 || mhat > m {
		mhat = m
	}
	if mhat < 1 {
		return nil, fmt.Errorf("core: m̂ = %d leaves no measure subspace", mhat)
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemory()
	}
	subs := subspace.Enumerate(m, mhat)
	if cfg.Subspaces != nil {
		subs = append([]subspace.Mask(nil), cfg.Subspaces...)
		for _, s := range subs {
			if s == 0 || s&^subspace.Full(m) != 0 {
				return nil, fmt.Errorf("core: invalid explicit subspace %b for m=%d", s, m)
			}
			if subspace.Size(s) > mhat {
				return nil, fmt.Errorf("core: explicit subspace %b exceeds m̂=%d", s, mhat)
			}
		}
	}
	size := 1 << uint(d)
	return &base{
		schema:   cfg.Schema,
		d:        d,
		m:        m,
		dhat:     dhat,
		mhat:     mhat,
		ctMasks:  lattice.CtMasks(d, dhat),
		bottoms:  lattice.BottomMasks(d, dhat),
		subs:     subs,
		fullM:    subspace.Full(m),
		st:       st,
		pruned:   make([]uint32, size),
		inQueue:  make([]uint32, size),
		inAnces:  make([]uint32, size),
		keyEpoch: make([]uint32, size),
		keys:     make([]lattice.Key, size),
	}, nil
}

// nextEpoch invalidates the pruned/inQueue/inAnces scratch marks.
func (b *base) nextEpoch() {
	b.epoch++
	if b.epoch == 0 { // wrapped: hard reset
		for i := range b.pruned {
			b.pruned[i], b.inQueue[i], b.inAnces[i] = 0, 0, 0
		}
		b.epoch = 1
	}
}

// newTupleScratch starts a fresh per-tuple generation: it clears the mark
// arrays (via a new epoch) and invalidates the cached store keys, which
// are per-tuple because they embed the tuple's dimension values.
func (b *base) newTupleScratch() {
	b.nextEpoch()
	b.keyStamp++
	if b.keyStamp == 0 {
		for i := range b.keyEpoch {
			b.keyEpoch[i] = 0
		}
		b.keyStamp = 1
	}
}

func (b *base) key(t *relation.Tuple, c lattice.Mask) lattice.Key {
	if b.keyEpoch[c] == b.keyStamp {
		return b.keys[c]
	}
	k := lattice.KeyFromTuple(t, c)
	b.keys[c] = k
	b.keyEpoch[c] = b.keyStamp
	return k
}

// cellKey builds the store key of µ(C, M).
func (b *base) cellKey(t *relation.Tuple, c lattice.Mask, m subspace.Mask) store.CellKey {
	return store.CellKey{C: b.key(t, c), M: m}
}

// emit materialises a fact.
func (b *base) emit(t *relation.Tuple, c lattice.Mask, m subspace.Mask, facts []Fact) []Fact {
	b.met.Facts++
	return append(facts, Fact{Constraint: lattice.FromTuple(t, c), Subspace: m})
}

// cmpIn performs the single-pass dominance test between t and u in
// subspace m: dominated reports t ≺_m u, dominates reports t ≻_m u.
// Exactly one Metrics comparison is charged per call by the caller.
func cmpIn(t, u *relation.Tuple, m subspace.Mask) (dominated, dominates bool) {
	var hasGt, hasLt bool
	for i := 0; m != 0; i++ {
		bit := subspace.Mask(1) << uint(i)
		if m&bit == 0 {
			continue
		}
		m &^= bit
		tv, uv := t.Oriented[i], u.Oriented[i]
		switch {
		case tv > uv:
			hasGt = true
			if hasLt {
				return false, false
			}
		case tv < uv:
			hasLt = true
			if hasGt {
				return false, false
			}
		}
	}
	return hasLt && !hasGt, hasGt && !hasLt
}

// markSubmasksPruned stamps every submask of m as pruned for the current
// epoch (Proposition 3: the interval [⊥(C^{t,t'}), ⊤] of the intersection
// lattice, which in mask terms is the submask closure of the shared mask).
// All pruning in this package goes through this routine, so the pruned set
// is always submask-closed; if m itself is already stamped, so is its
// whole closure and the scan is skipped.
func (b *base) markSubmasksPruned(m lattice.Mask) {
	if b.pruned[m] == b.epoch {
		return
	}
	s := m
	for {
		b.pruned[s] = b.epoch
		if s == 0 {
			break
		}
		s = (s - 1) & m
	}
}

// allBottomsPruned reports whether every minimal mask of the truncated
// lattice is pruned; pruned sets are submask-closed, so this is equivalent
// to "every constraint is pruned".
func (b *base) allBottomsPruned() bool {
	for _, bm := range b.bottoms {
		if b.pruned[bm] != b.epoch {
			return false
		}
	}
	return true
}

// Metrics implements Discoverer.
func (b *base) Metrics() Metrics { return b.met }

// RestoreMetrics overwrites the work counters, so an engine resumed from a
// snapshot reports the same cumulative work as one that never stopped.
func (b *base) RestoreMetrics(m Metrics) { b.met = m }

// Store exposes the µ(C,M) store (engine snapshot support).
func (b *base) Store() store.Store { return b.st }

// StoreStats implements Discoverer.
func (b *base) StoreStats() store.Stats { return b.st.Stats() }

// Close implements Discoverer.
func (b *base) Close() error { return b.st.Close() }
