package core

import (
	"testing"

	"repro/internal/lattice"
)

func TestContextCounter(t *testing.T) {
	tb := table4(t)
	cc := NewContextCounter(3, -1)
	for _, tu := range tb.Tuples() {
		cc.Observe(tu)
	}
	// ⊤ counts everything.
	if got := cc.ContextSize(lattice.Top(3)); got != 5 {
		t.Errorf("|σ_⊤| = %d, want 5", got)
	}
	// 〈a1,*,*〉 holds t1, t2, t5.
	a1, _ := tb.Dict().Lookup(0, "a1")
	c := lattice.Constraint{Vals: []int32{a1, lattice.Wildcard, lattice.Wildcard}}
	if got := cc.ContextSize(c); got != 3 {
		t.Errorf("|σ_a1| = %d, want 3", got)
	}
	// 〈a1,b1,c1〉 holds t2, t5.
	b1, _ := tb.Dict().Lookup(1, "b1")
	c1, _ := tb.Dict().Lookup(2, "c1")
	full := lattice.Constraint{Vals: []int32{a1, b1, c1}}
	if got := cc.ContextSize(full); got != 2 {
		t.Errorf("|σ_abc| = %d, want 2", got)
	}
	// Never-seen constraints count zero.
	if got := cc.ContextSize(lattice.Constraint{Vals: []int32{99, lattice.Wildcard, lattice.Wildcard}}); got != 0 {
		t.Errorf("unknown context size = %d", got)
	}

	// Unobserve reverses exactly.
	cc.Unobserve(tb.Tuples()[4]) // t5 = (a1,b1,c1)
	if got := cc.ContextSize(full); got != 1 {
		t.Errorf("after unobserve |σ_abc| = %d, want 1", got)
	}
	if got := cc.ContextSize(lattice.Top(3)); got != 4 {
		t.Errorf("after unobserve |σ_⊤| = %d, want 4", got)
	}

	// Snapshot/Restore round trip.
	snap := cc.Snapshot()
	cc2 := NewContextCounter(3, -1)
	cc2.Restore(snap)
	if got := cc2.ContextSize(c); got != cc.ContextSize(c) {
		t.Errorf("restored counter disagrees: %d vs %d", got, cc.ContextSize(c))
	}
}

func TestContextCounterRespectsCap(t *testing.T) {
	tb := table4(t)
	cc := NewContextCounter(3, 1)
	for _, tu := range tb.Tuples() {
		cc.Observe(tu)
	}
	a1, _ := tb.Dict().Lookup(0, "a1")
	b1, _ := tb.Dict().Lookup(1, "b1")
	two := lattice.Constraint{Vals: []int32{a1, b1, lattice.Wildcard}}
	if got := cc.ContextSize(two); got != 0 {
		t.Errorf("bound-2 constraint counted %d under d̂=1", got)
	}
	one := lattice.Constraint{Vals: []int32{a1, lattice.Wildcard, lattice.Wildcard}}
	if got := cc.ContextSize(one); got != 3 {
		t.Errorf("bound-1 constraint = %d, want 3", got)
	}
}
