package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// Parallel fans per-tuple discovery out over worker goroutines, an
// engineering extension beyond the (single-threaded, Java) paper. The key
// observation is that discovery decomposes perfectly by measure subspace:
// µ cells are keyed by (C, M), so passes for different subspaces touch
// disjoint state. Parallel therefore partitions the subspace set across W
// independent TopDown or BottomUp instances and runs them concurrently for
// every arrival. The workers share one striped-lock store.Sharded, so the
// cell population and its Stats are a single coherent view rather than a
// sum over private stores; disjointness of the subspace partition is what
// makes the sharing safe (no two workers ever visit the same cell).
//
// Sharing (S*) and parallelism trade off: the S* root pass creates a
// cross-subspace dependency, so workers run the non-shared algorithms.
// With enough cores, Parallel(TopDown) still beats single-threaded
// STopDown on wall-clock per tuple while storing exactly the same cells.
type Parallel struct {
	schema  *relation.Schema
	workers []Discoverer
	owner   map[subspace.Mask]Discoverer // subspace → the worker that owns it
	st      *store.Sharded
	facts   [][]Fact
	wg      sync.WaitGroup
	deletes bool // workers are BottomUp (deletion-capable)
}

// NewParallel creates a parallel discoverer over the given base algorithm
// ("topdown" or "bottomup") with the given worker count (≤ 0 selects
// GOMAXPROCS). cfg.Store and cfg.Subspaces must be unset: Parallel owns a
// shared sharded store and the subspace partition itself.
func NewParallel(cfg Config, algorithm string, workers int) (*Parallel, error) {
	if cfg.Store != nil {
		return nil, fmt.Errorf("core: parallel owns a shared sharded store; Config.Store must be nil")
	}
	if cfg.Subspaces != nil {
		return nil, fmt.Errorf("core: parallel partitions subspaces itself; Config.Subspaces must be nil")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mhat := cfg.MaxMeasure
	if mhat < 0 || mhat > cfg.Schema.NumMeasures() {
		mhat = cfg.Schema.NumMeasures()
	}
	subs := subspace.Enumerate(cfg.Schema.NumMeasures(), mhat)
	if workers > len(subs) {
		workers = len(subs)
	}
	// Round-robin partition spreads the expensive wide subspaces evenly.
	parts := make([][]subspace.Mask, workers)
	for i, s := range subs {
		parts[i%workers] = append(parts[i%workers], s)
	}
	p := &Parallel{
		schema: cfg.Schema,
		owner:  make(map[subspace.Mask]Discoverer, len(subs)),
		st:     store.NewSharded(0, cfg.Schema.NumMeasures()),
		facts:  make([][]Fact, workers),
	}
	for _, part := range parts {
		wcfg := cfg
		wcfg.Subspaces = part
		wcfg.Store = p.st
		var (
			d   Discoverer
			err error
		)
		switch algorithm {
		case "topdown":
			d, err = NewTopDown(wcfg)
		case "bottomup":
			d, err = NewBottomUp(wcfg)
			p.deletes = true
		default:
			return nil, fmt.Errorf("core: parallel base algorithm %q (want topdown or bottomup)", algorithm)
		}
		if err != nil {
			return nil, err
		}
		p.workers = append(p.workers, d)
		for _, s := range part {
			p.owner[s] = d
		}
	}
	return p, nil
}

// Name implements Discoverer.
func (p *Parallel) Name() string {
	return fmt.Sprintf("Parallel(%s×%d)", p.workers[0].Name(), len(p.workers))
}

// Workers returns the worker count.
func (p *Parallel) Workers() int { return len(p.workers) }

// Process implements Discoverer: all workers process t concurrently; the
// result is the concatenation of their fact sets (disjoint by
// construction — each subspace belongs to exactly one worker).
func (p *Parallel) Process(t *relation.Tuple) []Fact {
	p.wg.Add(len(p.workers))
	for i, w := range p.workers {
		go func(i int, w Discoverer) {
			defer p.wg.Done()
			p.facts[i] = w.Process(t)
		}(i, w)
	}
	p.wg.Wait()
	total := 0
	for _, f := range p.facts {
		total += len(f)
	}
	out := make([]Fact, 0, total)
	for _, f := range p.facts {
		out = append(out, f...)
	}
	return out
}

// SkylineSize implements SkylineSizer by routing to the worker that owns
// the subspace — both worker families implement it, so prominence scoring
// works over a parallel driver exactly as over a sequential one. Unowned
// subspaces (beyond m̂) report 0.
func (p *Parallel) SkylineSize(c lattice.Constraint, m subspace.Mask) int {
	w, ok := p.owner[m]
	if !ok {
		return 0
	}
	return w.(SkylineSizer).SkylineSize(c, m)
}

// RegisterTuple makes t resolvable by id in every worker (snapshot-restore
// support, symmetric with base.RegisterTuple).
func (p *Parallel) RegisterTuple(t *relation.Tuple) {
	for _, w := range p.workers {
		if r, ok := w.(interface{ RegisterTuple(*relation.Tuple) }); ok {
			r.RegisterTuple(t)
		}
	}
}

// CanDelete reports whether the base algorithm supports deletion (the
// BottomUp family does; see BottomUp.Delete).
func (p *Parallel) CanDelete() bool { return p.deletes }

// Delete removes tuple u from every worker's subspace partition,
// repairing Invariant 1 per cell. The workers run concurrently — their
// cells are disjoint by subspace even in the shared store. It must only
// be called when CanDelete reports true.
func (p *Parallel) Delete(u *relation.Tuple, alive []*relation.Tuple) {
	if !p.deletes {
		panic("core: Parallel.Delete on a TopDown-based driver")
	}
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		go func(bu *BottomUp) {
			defer p.wg.Done()
			bu.Delete(u, alive)
		}(w.(*BottomUp))
	}
	p.wg.Wait()
}

// Metrics implements Discoverer. Comparisons, Traversed and Facts are work
// counters and sum over workers; Tuples is a stream position, identical in
// every worker, so the maximum is reported (coherent even if a snapshot
// races a Process fan-out).
func (p *Parallel) Metrics() Metrics {
	var m Metrics
	for _, w := range p.workers {
		wm := w.Metrics()
		m.Comparisons += wm.Comparisons
		m.Traversed += wm.Traversed
		m.Facts += wm.Facts
		if wm.Tuples > m.Tuples {
			m.Tuples = wm.Tuples
		}
	}
	return m
}

// StoreStats implements Discoverer: the stats of the single shared store
// (not a per-worker sum, which would multiply-count a shared view).
func (p *Parallel) StoreStats() store.Stats { return p.st.Stats() }

// Store exposes the shared µ(C,M) store (symmetric with base.Store).
func (p *Parallel) Store() store.Store { return p.st }

// Close implements Discoverer. Worker failures are joined, each prefixed
// with the failing worker's Name.
func (p *Parallel) Close() error {
	var errs []error
	for _, w := range p.workers {
		if err := w.Close(); err != nil {
			errs = append(errs, fmt.Errorf("core: parallel worker %s: %w", w.Name(), err))
		}
	}
	return errors.Join(errs...)
}

var (
	_ Discoverer   = (*Parallel)(nil)
	_ SkylineSizer = (*Parallel)(nil)
)
