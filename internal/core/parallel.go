package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// Parallel fans per-tuple discovery out over worker goroutines, an
// engineering extension beyond the (single-threaded, Java) paper. The key
// observation is that discovery decomposes perfectly by measure subspace:
// µ cells are keyed by (C, M), so passes for different subspaces touch
// disjoint state. Parallel therefore partitions the subspace set across W
// independent TopDown or BottomUp instances (each with its own store and
// lattice scratch) and runs them concurrently for every arrival.
//
// Sharing (S*) and parallelism trade off: the S* root pass creates a
// cross-subspace dependency, so workers run the non-shared algorithms.
// With enough cores, Parallel(TopDown) still beats single-threaded
// STopDown on wall-clock per tuple while storing exactly the same cells
// (union over workers).
type Parallel struct {
	schema  *relation.Schema
	workers []Discoverer
	facts   [][]Fact
	wg      sync.WaitGroup
}

// NewParallel creates a parallel discoverer over the given base algorithm
// ("topdown" or "bottomup") with the given worker count (≤ 0 selects
// GOMAXPROCS). cfg.Store and cfg.Subspaces must be unset: each worker owns
// a fresh in-memory store and its slice of the subspace partition.
func NewParallel(cfg Config, algorithm string, workers int) (*Parallel, error) {
	if cfg.Store != nil {
		return nil, fmt.Errorf("core: parallel workers own their stores; Config.Store must be nil")
	}
	if cfg.Subspaces != nil {
		return nil, fmt.Errorf("core: parallel partitions subspaces itself; Config.Subspaces must be nil")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mhat := cfg.MaxMeasure
	if mhat < 0 || mhat > cfg.Schema.NumMeasures() {
		mhat = cfg.Schema.NumMeasures()
	}
	subs := subspace.Enumerate(cfg.Schema.NumMeasures(), mhat)
	if workers > len(subs) {
		workers = len(subs)
	}
	// Round-robin partition spreads the expensive wide subspaces evenly.
	parts := make([][]subspace.Mask, workers)
	for i, s := range subs {
		parts[i%workers] = append(parts[i%workers], s)
	}
	p := &Parallel{schema: cfg.Schema, facts: make([][]Fact, workers)}
	for _, part := range parts {
		wcfg := cfg
		wcfg.Subspaces = part
		var (
			d   Discoverer
			err error
		)
		switch algorithm {
		case "topdown":
			d, err = NewTopDown(wcfg)
		case "bottomup":
			d, err = NewBottomUp(wcfg)
		default:
			return nil, fmt.Errorf("core: parallel base algorithm %q (want topdown or bottomup)", algorithm)
		}
		if err != nil {
			return nil, err
		}
		p.workers = append(p.workers, d)
	}
	return p, nil
}

// Name implements Discoverer.
func (p *Parallel) Name() string {
	return fmt.Sprintf("Parallel(%s×%d)", p.workers[0].Name(), len(p.workers))
}

// Workers returns the worker count.
func (p *Parallel) Workers() int { return len(p.workers) }

// Process implements Discoverer: all workers process t concurrently; the
// result is the concatenation of their fact sets (disjoint by
// construction — each subspace belongs to exactly one worker).
func (p *Parallel) Process(t *relation.Tuple) []Fact {
	p.wg.Add(len(p.workers))
	for i, w := range p.workers {
		go func(i int, w Discoverer) {
			defer p.wg.Done()
			p.facts[i] = w.Process(t)
		}(i, w)
	}
	p.wg.Wait()
	total := 0
	for _, f := range p.facts {
		total += len(f)
	}
	out := make([]Fact, 0, total)
	for _, f := range p.facts {
		out = append(out, f...)
	}
	return out
}

// Metrics implements Discoverer (sums over workers).
func (p *Parallel) Metrics() Metrics {
	var m Metrics
	for _, w := range p.workers {
		wm := w.Metrics()
		m.Comparisons += wm.Comparisons
		m.Traversed += wm.Traversed
		m.Facts += wm.Facts
	}
	m.Tuples = p.workers[0].Metrics().Tuples
	return m
}

// StoreStats implements Discoverer (sums over workers).
func (p *Parallel) StoreStats() store.Stats {
	var s store.Stats
	for _, w := range p.workers {
		ws := w.StoreStats()
		s.StoredTuples += ws.StoredTuples
		s.Cells += ws.Cells
		s.Reads += ws.Reads
		s.Writes += ws.Writes
	}
	return s
}

// Close implements Discoverer.
func (p *Parallel) Close() error {
	var first error
	for _, w := range p.workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ Discoverer = (*Parallel)(nil)
